package truss

import (
	"fmt"

	"repro/internal/embu"
	"repro/internal/emtd"
)

// Engine selects which of the reproduced decomposition algorithms a Run
// uses. The paper presents one problem solved by five interchangeable
// algorithms; Engine is the tuning knob that picks among them behind the
// single Run entry point.
type Engine int

const (
	// EngineInMem is the improved in-memory algorithm (TD-inmem+,
	// Algorithm 2): O(m^1.5) time, O(m+n) space. The default.
	EngineInMem Engine = iota
	// EngineBaseline is Cohen's in-memory algorithm (TD-inmem,
	// Algorithm 1), kept as the paper's baseline.
	EngineBaseline
	// EngineParallel is level-synchronized parallel peeling across cores
	// (a multicore extension beyond the paper); see WithWorkers.
	EngineParallel
	// EngineBottomUp is the I/O-efficient bottom-up decomposition
	// (Algorithms 3-4) for graphs larger than memory; see WithBudget.
	EngineBottomUp
	// EngineTopDown is the I/O-efficient top-down computation of the
	// top-t k-classes (Algorithm 7); see WithTopT.
	EngineTopDown
	// EngineMapReduce is Cohen's distributed algorithm (TD-MR) on the
	// in-process MapReduce simulator, the baseline of Table 4.
	EngineMapReduce
)

var engineNames = map[Engine]string{
	EngineInMem:     "inmem",
	EngineBaseline:  "baseline",
	EngineParallel:  "parallel",
	EngineBottomUp:  "bottomup",
	EngineTopDown:   "topdown",
	EngineMapReduce: "mapreduce",
}

func (e Engine) String() string {
	if n, ok := engineNames[e]; ok {
		return n
	}
	return fmt.Sprintf("engine(%d)", int(e))
}

// ParseEngine resolves an engine name as used on the trussd command line:
// inmem, baseline, parallel, bottomup, topdown, mapreduce (alias mr).
func ParseEngine(s string) (Engine, error) {
	if s == "mr" {
		return EngineMapReduce, nil
	}
	for e, n := range engineNames {
		if n == s {
			return e, nil
		}
	}
	return 0, fmt.Errorf("truss: unknown engine %q (want inmem, baseline, parallel, bottomup, topdown, or mr)", s)
}

// Progress stages reported to a WithProgress observer, in order of
// occurrence.
const (
	// StageLoad: the source is being materialized (in-memory engines) or
	// spooled to disk (external engines).
	StageLoad = "load"
	// StageDecompose: the engine proper has started.
	StageDecompose = "decompose"
	// StageLevel: the engine reached peeling level / candidate round K.
	StageLevel = "level"
	// StageDone: the decomposition finished; K carries the final kmax.
	StageDone = "done"
)

// Progress is one observed step of a Run, delivered synchronously on the
// decomposing goroutine (observers must be cheap and must not block).
type Progress struct {
	// Engine is the engine doing the work.
	Engine Engine
	// Stage is one of the Stage* constants.
	Stage string
	// K is the peeling level or candidate round for StageLevel events and
	// the final kmax for StageDone; 0 otherwise.
	K int32
}

// Option configures a Run.
type Option func(*runConfig)

// runConfig is the resolved option set of one Run.
type runConfig struct {
	engine    Engine
	budget    int64
	strategy  PartitionStrategy
	seed      int64
	topT      int
	workers   int
	tempDir   string
	stats     *IOStats
	progress  func(Progress)
	maxRegion float64

	// statsReadBase/statsWriteBase snapshot the (cumulative, possibly
	// shared across runs) IOStats counters at Run entry, so the metrics
	// layer can attribute exactly this run's disk traffic.
	statsReadBase  int64
	statsWriteBase int64
}

// WithEngine selects the decomposition algorithm (default EngineInMem).
func WithEngine(e Engine) Option { return func(c *runConfig) { c.engine = e } }

// WithBudget sets the external engines' memory budget M, measured in
// adjacency entries (an in-memory subgraph with e edges consumes 2e
// entries). 0 selects a default suitable for graphs of a few million
// edges. It also bounds the record buffer of the out-of-core edge
// deduplication that file and reader sources run before an external
// engine.
func WithBudget(entries int64) Option { return func(c *runConfig) { c.budget = entries } }

// WithPartition selects the vertex-partitioning strategy of the external
// engines (default randomized, which carries the O(m/M) iteration bound).
func WithPartition(s PartitionStrategy) Option { return func(c *runConfig) { c.strategy = s } }

// WithSeed drives randomized partitioning.
func WithSeed(seed int64) Option { return func(c *runConfig) { c.seed = seed } }

// WithTopT asks EngineTopDown for only the top-t k-classes (0 = all
// classes). Other engines ignore it.
func WithTopT(t int) Option { return func(c *runConfig) { c.topT = t } }

// WithWorkers sets EngineParallel's worker count (0 = GOMAXPROCS). Other
// engines ignore it.
func WithWorkers(n int) Option { return func(c *runConfig) { c.workers = n } }

// WithMaxRegion bounds incremental maintenance (Decomposition.Update,
// truss.Open): when a mutation's affected region exceeds this fraction of
// the graph's edges, the update falls back to a full recompute. 0 selects
// the default (0.25); values >= 1 never fall back. Engines without
// incremental maintenance ignore it.
func WithMaxRegion(fraction float64) Option {
	return func(c *runConfig) { c.maxRegion = fraction }
}

// WithTempDir sets the directory for spools and sort runs of the external
// engines (default os.TempDir()).
func WithTempDir(dir string) Option { return func(c *runConfig) { c.tempDir = dir } }

// WithStats accumulates every byte the run moves to and from disk into st
// (the Aggarwal-Vitter accounting the paper's I/O analysis uses).
func WithStats(st *IOStats) Option { return func(c *runConfig) { c.stats = st } }

// WithProgress registers an observer for the run's stage transitions and
// peeling levels. fn runs synchronously on the decomposing goroutine: keep
// it cheap, and use it together with context cancellation to abort runs
// from the outside.
func WithProgress(fn func(Progress)) Option { return func(c *runConfig) { c.progress = fn } }

// emit delivers one progress event, if an observer is registered.
func (c *runConfig) emit(stage string, k int32) {
	if c.progress != nil {
		c.progress(Progress{Engine: c.engine, Stage: stage, K: k})
	}
}

// levelHook adapts the observer to the engines' per-level callbacks.
func (c *runConfig) levelHook() func(k int32) {
	if c.progress == nil {
		return nil
	}
	return func(k int32) { c.emit(StageLevel, k) }
}

// embuConfig translates the run options for the bottom-up engine.
func (c *runConfig) embuConfig() embu.Config {
	return embu.Config{
		Budget:   c.budget,
		Strategy: c.strategy,
		Seed:     c.seed,
		TempDir:  c.tempDir,
		Stats:    c.stats,
		OnRound:  c.levelHook(),
	}
}

// emtdConfig translates the run options for the top-down engine.
func (c *runConfig) emtdConfig() emtd.Config {
	return emtd.Config{
		TopT:     c.topT,
		Budget:   c.budget,
		Strategy: c.strategy,
		Seed:     c.seed,
		TempDir:  c.tempDir,
		Stats:    c.stats,
		OnRound:  c.levelHook(),
	}
}
