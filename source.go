package truss

import (
	"context"
	"errors"
	"io"
	"os"
	"strings"

	"repro/internal/extsort"
	"repro/internal/gio"
	"repro/internal/graph"
)

// Source abstracts where Run reads its graph from: an in-memory *Graph
// (FromGraph), a SNAP-text or binary edge file (FromFile), or an io.Reader
// of SNAP text (FromReader). In-memory engines materialize the source as a
// Graph; external engines stream it into a canonical on-disk edge spool
// without ever building the graph in memory.
type Source interface {
	// describe names the origin for logs and errors.
	describe() string
	// load materializes the source as an in-memory graph.
	load(ctx context.Context, st *gio.Stats) (*Graph, error)
	// stream spools the source's edges to disk, canonicalized (U < V,
	// self-loops dropped) and deduplicated, returning the spool and the
	// vertex-ID space n. The caller owns the spool.
	stream(ctx context.Context, tempDir string, budget int64, st *gio.Stats) (*gio.Spool[gio.EdgeRec], int, error)
}

// FromGraph wraps an in-memory graph as a Source.
func FromGraph(g *Graph) Source { return graphSource{g} }

// FromFile names a graph file as a Source: SNAP text, or a binary EdgeRec
// stream when the path ends in ".bin". External engines stream the file
// straight to their input spool — the graph is never materialized in
// memory, whatever its size; canonicalization and deduplication happen
// out of core via an external sort bounded by the run's memory budget.
func FromFile(path string) Source { return fileSource{path} }

// FromReader wraps a SNAP-text edge stream as a Source. The reader is
// consumed by the Run that uses it, so a Source built from a plain
// io.Reader is good for exactly one Run.
func FromReader(r io.Reader) Source { return &readerSource{r: r} }

// graphSource serves an already-built in-memory graph.
type graphSource struct{ g *Graph }

func (s graphSource) describe() string { return "in-memory graph" }

func (s graphSource) load(ctx context.Context, st *gio.Stats) (*Graph, error) {
	return s.g, nil
}

func (s graphSource) stream(ctx context.Context, tempDir string, budget int64, st *gio.Stats) (*gio.Spool[gio.EdgeRec], int, error) {
	// CSR edges are already canonical and deduplicated; spool them
	// directly so the external engines honestly exercise their disk paths.
	sp, err := gio.NewSpool[gio.EdgeRec](tempDir, "input", gio.EdgeCodec{}, st)
	if err != nil {
		return nil, 0, err
	}
	w, err := sp.Create()
	if err != nil {
		sp.Remove()
		return nil, 0, err
	}
	for i, e := range s.g.Edges() {
		if i&8191 == 0 {
			if err := ctx.Err(); err != nil {
				w.Close()
				sp.Remove()
				return nil, 0, err
			}
		}
		if err := w.Write(gio.EdgeRec{U: e.U, V: e.V}); err != nil {
			w.Close()
			sp.Remove()
			return nil, 0, err
		}
	}
	if err := w.Close(); err != nil {
		sp.Remove()
		return nil, 0, err
	}
	return sp, s.g.NumVertices(), nil
}

// fileSource reads a graph file lazily.
type fileSource struct{ path string }

func (s fileSource) describe() string { return s.path }

func (s fileSource) load(ctx context.Context, st *gio.Stats) (*Graph, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return gio.LoadGraph(s.path, st)
}

func (s fileSource) stream(ctx context.Context, tempDir string, budget int64, st *gio.Stats) (*gio.Spool[gio.EdgeRec], int, error) {
	f, err := os.Open(s.path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	if strings.HasSuffix(s.path, ".bin") {
		rd := gio.NewReader[gio.EdgeRec](f, gio.EdgeCodec{}, st)
		return spoolEdges(ctx, func(fn func(graph.Edge) error) error {
			return rd.ForEach(func(r gio.EdgeRec) error {
				return fn(graph.Edge{U: r.U, V: r.V})
			})
		}, tempDir, budget, st)
	}
	return spoolEdges(ctx, func(fn func(graph.Edge) error) error {
		return gio.ScanTextEdges(f, fn)
	}, tempDir, budget, st)
}

// readerSource parses SNAP text from an arbitrary reader, once.
type readerSource struct {
	r    io.Reader
	used bool
}

func (s *readerSource) describe() string { return "reader" }

func (s *readerSource) consume() error {
	if s.used {
		return errReaderReused
	}
	s.used = true
	return nil
}

var errReaderReused = errors.New("a FromReader source can back only one Run (the reader is consumed)")

func (s *readerSource) load(ctx context.Context, st *gio.Stats) (*Graph, error) {
	if err := s.consume(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	edges, err := gio.ReadTextEdges(s.r)
	if err != nil {
		return nil, err
	}
	return graph.FromEdges(edges), nil
}

func (s *readerSource) stream(ctx context.Context, tempDir string, budget int64, st *gio.Stats) (*gio.Spool[gio.EdgeRec], int, error) {
	if err := s.consume(); err != nil {
		return nil, 0, err
	}
	return spoolEdges(ctx, func(fn func(graph.Edge) error) error {
		return gio.ScanTextEdges(s.r, fn)
	}, tempDir, budget, st)
}

// spoolEdges streams edges into a canonical, deduplicated on-disk spool
// without materializing the graph: edges are canonicalized on the fly
// (U < V, self-loops dropped), external-sorted by endpoint pair under the
// memory budget, and adjacent duplicates are dropped during the merge.
// Peak memory is the sort buffer (budget records), independent of graph
// size. Returns the spool — sorted by (U, V), which the external engines
// accept as one valid canonical order — and the vertex-ID space n.
func spoolEdges(ctx context.Context, scan func(func(graph.Edge) error) error, tempDir string, budget int64, st *gio.Stats) (*gio.Spool[gio.EdgeRec], int, error) {
	recBudget := int(budget)
	if recBudget <= 0 {
		recBudget = 1 << 20
	}
	sorter := extsort.NewSorter[gio.EdgeRec](gio.EdgeCodec{}, func(a, b gio.EdgeRec) bool {
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	}, extsort.Config{Budget: recBudget, Dir: tempDir, Stats: st})
	// A scan error or cancellation before Sort would otherwise orphan the
	// sorter's spilled run files (after Sort this is a no-op: the iterator
	// owns and deletes them).
	defer sorter.Discard()

	maxID := int64(-1)
	count := 0
	err := scan(func(e graph.Edge) error {
		if count&8191 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		count++
		e = e.Canon()
		if e.U == e.V {
			return nil
		}
		if int64(e.V) > maxID {
			maxID = int64(e.V)
		}
		return sorter.Push(gio.EdgeRec{U: e.U, V: e.V})
	})
	if err != nil {
		return nil, 0, err
	}

	sp, err := gio.NewSpool[gio.EdgeRec](tempDir, "input", gio.EdgeCodec{}, st)
	if err != nil {
		return nil, 0, err
	}
	w, err := sp.Create()
	if err != nil {
		sp.Remove()
		return nil, 0, err
	}
	it, err := sorter.Sort()
	if err != nil {
		w.Close()
		sp.Remove()
		return nil, 0, err
	}
	var last gio.EdgeRec
	have := false
	err = it.ForEach(func(r gio.EdgeRec) error {
		if have && r == last {
			return nil
		}
		last, have = r, true
		return w.Write(r)
	})
	if err != nil {
		w.Close()
		sp.Remove()
		return nil, 0, err
	}
	if err := w.Close(); err != nil {
		sp.Remove()
		return nil, 0, err
	}
	return sp, int(maxID) + 1, nil
}
