// Fingerprinting: the paper's introduction cites "visualization and
// fingerprinting of large-scale networks" as a k-truss application. The
// truss profile — the fraction of edges in each k-class — is a compact
// structural signature: random graphs concentrate near k=2-3,
// collaboration graphs trail far to the right, community graphs sit in
// between. This example fingerprints graphs from four generator families
// and shows the profile identifies the family of an unseen graph.
//
// Run with: go run ./examples/fingerprint
package main

import (
	"context"
	"fmt"
	"log"

	truss "repro"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
)

type family struct {
	name  string
	build func(seed int64) *graph.Graph
}

var families = []family{
	{"erdos-renyi", func(s int64) *graph.Graph { return gen.ErdosRenyi(800, 4800, s) }},
	{"barabasi-albert", func(s int64) *graph.Graph { return gen.BarabasiAlbert(800, 6, s) }},
	{"community", func(s int64) *graph.Graph { return gen.Community(50, 16, 0.6, 1.5, s) }},
	{"collaboration", func(s int64) *graph.Graph { return gen.Collaboration(800, 280, 14, s) }},
}

func profileOf(g *graph.Graph) []float64 {
	d, err := truss.Run(context.Background(), truss.FromGraph(g))
	if err != nil {
		log.Fatal(err)
	}
	res, _ := truss.AsInMemory(d)
	return metrics.TrussProfile(res)
}

func sparkline(p []float64) string {
	const blocks = " .:-=+*#%@"
	out := ""
	for k := 2; k < len(p); k++ {
		idx := int(p[k] * float64(len(blocks)-1))
		if idx >= len(blocks) {
			idx = len(blocks) - 1
		}
		out += string(blocks[idx])
	}
	return out
}

func main() {
	fmt.Println("truss-profile fingerprints (mass per k-class, k = 2..kmax):")
	refs := map[string][]float64{}
	for _, f := range families {
		p := profileOf(f.build(1))
		refs[f.name] = p
		fmt.Printf("  %-16s kmax=%-3d [%s]\n", f.name, len(p)-1, sparkline(p))
	}

	fmt.Println("\nclassifying unseen graphs (new seeds) by nearest fingerprint:")
	correct, total := 0, 0
	for _, f := range families {
		for seed := int64(10); seed < 13; seed++ {
			p := profileOf(f.build(seed))
			bestName, bestSim := "", -1.0
			for name, ref := range refs {
				if s := metrics.ProfileSimilarity(p, ref); s > bestSim {
					bestSim, bestName = s, name
				}
			}
			status := "✓"
			if bestName != f.name {
				status = "✗"
			} else {
				correct++
			}
			total++
			fmt.Printf("  %-16s seed %2d -> %-16s (similarity %.3f) %s\n",
				f.name, seed, bestName, bestSim, status)
		}
	}
	fmt.Printf("\n%d/%d unseen graphs matched to their generator family\n", correct, total)
}
