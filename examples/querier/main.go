// Querier: one query surface over local and remote truss data.
//
// This example runs the same query script three times against the same
// graph through three implementations of truss.Querier:
//
//  1. a local index built the fast way (truss.BuildIndex over an
//     in-memory Result),
//  2. a local index streamed out of an external-memory decomposition
//     (truss.BuildIndexFrom over an EngineBottomUp run — the paper's
//     headline algorithm, now indexable), and
//  3. a remote graph behind a trussd HTTP server, queried through the
//     client package.
//
// The script cannot tell them apart — that is the point: which engine
// produced the decomposition, and which machine holds it, are
// deployment details, not API forks.
//
// Run with: go run ./examples/querier
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"

	truss "repro"
	"repro/client"
)

func main() {
	ctx := context.Background()

	// The paper's running example (Figure 2).
	b := truss.NewBuilder(26)
	for _, e := range [][2]uint32{
		{8, 10},
		{3, 6}, {3, 10}, {3, 11}, {4, 5}, {4, 6}, {5, 6}, {6, 7}, {6, 10}, {6, 11},
		{5, 7}, {5, 8}, {5, 9}, {7, 8}, {7, 9}, {8, 9},
		{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 4},
	} {
		b.AddEdge(e[0], e[1])
	}
	g := b.Build()

	// 1. Local index, fast path: in-memory decomposition, frozen.
	d, err := truss.Run(ctx, truss.FromGraph(g))
	if err != nil {
		log.Fatal(err)
	}
	res, _ := truss.AsInMemory(d)
	local := truss.QueryIndex(truss.BuildIndex(res))

	// 2. Local index, streamed: decompose with the I/O-efficient
	// bottom-up engine (the result lives in a disk spool), then
	// reconstruct an identical index from its edge stream. Before
	// BuildIndexFrom, external decompositions could not be indexed at
	// all.
	dbu, err := truss.Run(ctx, truss.FromGraph(g),
		truss.WithEngine(truss.EngineBottomUp),
		truss.WithTempDir(os.TempDir()))
	if err != nil {
		log.Fatal(err)
	}
	ix, err := truss.BuildIndexFrom(ctx, dbu)
	if err != nil {
		log.Fatal(err)
	}
	dbu.Close() // the index no longer needs the spool
	streamed := truss.QueryIndex(ix)

	// 3. Remote: serve the graph over HTTP and point the typed client at
	// it. (A real deployment runs `trussd serve`; the test server keeps
	// this example self-contained.)
	srv := truss.NewServer(truss.ServerOptions{})
	srv.Build("example", g, "inline")
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c, err := client.New(ts.URL)
	if err != nil {
		log.Fatal(err)
	}
	remote := c.Graph("example")

	for name, q := range map[string]truss.Querier{
		"local-index":    local,
		"streamed-index": streamed,
		"remote-http":    remote,
	} {
		fmt.Printf("== %s ==\n", name)
		script(ctx, q)
		fmt.Println()
	}
}

// script is written once against truss.Querier and runs unchanged
// against every implementation.
func script(ctx context.Context, q truss.Querier) {
	// Point lookup.
	k, ok, err := q.TrussNumber(ctx, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("truss(0,1) = %d (found=%v)\n", k, ok)

	// Batched lookup: one round-trip even over HTTP.
	answers, err := q.TrussNumbers(ctx, []truss.Edge{{U: 0, V: 1}, {U: 8, V: 10}, {U: 0, V: 11}})
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range answers {
		if a.Found {
			fmt.Printf("  batch: truss%v = %d\n", a.Edge, a.Truss)
		} else {
			fmt.Printf("  batch: %v not in graph\n", a.Edge)
		}
	}

	// Top classes and communities.
	top, err := q.TopClasses(ctx, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("innermost class: k=%d with %d edges\n", top[0].K, top[0].Size)
	comms, err := q.Communities(ctx, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3-truss communities: %d\n", len(comms))

	// Stream the innermost truss edge-by-edge (over HTTP this is NDJSON,
	// consumed off the wire without buffering the whole answer).
	seq, errf := q.KTrussEdges(ctx, top[0].K)
	n := 0
	for e, phi := range seq {
		if n < 3 {
			fmt.Printf("  T_%d edge %v phi=%d\n", top[0].K, e, phi)
		}
		n++
	}
	if err := errf(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  ... %d edges total\n", n)
}
