// Massive-network decomposition: the paper's headline scenario. A graph
// too large for the memory budget is decomposed bottom-up from disk
// (Algorithms 3-4): LowerBounding partitions the graph into
// memory-sized neighborhood subgraphs, bounds every edge's truss number,
// and strips the 2-class; the bottom-up stage then peels one k-class per
// round from a small candidate subgraph. Every byte moved to or from disk
// is counted in the Aggarwal-Vitter I/O model.
//
// Run with: go run ./examples/massive
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	truss "repro"
	"repro/internal/gen"
)

func main() {
	// A heavy-tailed web-like graph (RMAT) with planted dense subgraphs.
	g := gen.WithPlantedCliques(gen.RMAT(14, 6, 0.57, 0.19, 0.19, 3), []int{40, 25}, 3)
	fmt.Printf("graph: %d vertices, %d edges (adjacency form: %d entries)\n",
		g.NumVertices(), g.NumEdges(), 2*g.NumEdges())

	dir, err := os.MkdirTemp("", "massive")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "graph.bin")
	if err := truss.SaveGraph(path, g); err != nil {
		log.Fatal(err)
	}
	fi, _ := os.Stat(path)
	fmt.Printf("on disk: %s (%d bytes)\n\n", path, fi.Size())

	// Budget: one third of the graph's adjacency entries — the graph
	// cannot be held in memory, so the external machinery must partition.
	// The file streams straight into the engine's input spool (never
	// materialized in RAM), the context would let us cancel a multi-hour
	// run, and the progress observer watches the bottom-up rounds.
	budget := int64(2*g.NumEdges()) / 3
	var st truss.IOStats
	d, err := truss.Run(context.Background(), truss.FromFile(path),
		truss.WithEngine(truss.EngineBottomUp),
		truss.WithBudget(budget),
		truss.WithTempDir(dir),
		truss.WithStats(&st),
		truss.WithProgress(func(p truss.Progress) {
			if p.Stage == truss.StageLevel {
				fmt.Printf("  [progress] peeling class k=%d\n", p.K)
			}
		}))
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	res, _ := truss.AsBottomUp(d) // trace + disk-resident classes

	fmt.Printf("memory budget:        %d adjacency entries (%.0f%% of graph)\n",
		budget, 100*float64(budget)/float64(2*g.NumEdges()))
	fmt.Printf("kmax:                 %d\n", res.KMax)
	fmt.Printf("lower-bound passes:   %d\n", res.Trace.LBIterations)
	fmt.Printf("candidate rounds:     %d (%d oversized -> Procedure 9)\n",
		res.Trace.Rounds, res.Trace.OversizeRounds)
	fmt.Printf("disk traffic:         %d MB read, %d MB written\n",
		st.BytesRead()>>20, st.BytesWritten()>>20)
	fmt.Printf("I/Os (4KB blocks):    %d  (graph itself is %d blocks)\n\n",
		st.IOs(4096), (fi.Size()+4095)/4096)

	fmt.Println("largest classes:")
	printed := 0
	for k := res.KMax; k >= 2 && printed < 8; k-- {
		if n := res.ClassSizes[k]; n > 0 {
			fmt.Printf("  |Phi_%d| = %d\n", k, n)
			printed++
		}
	}

	// Spot-check against the in-memory algorithm.
	want := truss.Decompose(g)
	if want.KMax != res.KMax {
		log.Fatalf("kmax mismatch: external %d vs in-memory %d", res.KMax, want.KMax)
	}
	fmt.Println("\nkmax agrees with the in-memory algorithm ✓")
}
