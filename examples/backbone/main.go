// Backbone extraction: the top-down use case of Section 6. Applications
// that want only the heart of a network — the k-trusses with the largest
// k — should not pay for a full decomposition. The top-down algorithm
// upper-bounds every edge's truss number (Procedure 6), then computes just
// the top-t classes from kmax downward.
//
// Run with: go run ./examples/backbone
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	truss "repro"
	"repro/internal/gen"
)

func main() {
	// An internet-topology-like graph: heavy-tailed RMAT plus dense
	// peering meshes (cliques) among core routers.
	g := gen.WithPlantedCliques(gen.RMAT(13, 6, 0.59, 0.19, 0.19, 11), []int{30, 22, 16}, 11)
	fmt.Printf("topology: %d vertices, %d edges\n\n", g.NumVertices(), g.NumEdges())

	const topT = 3
	d, err := truss.Run(context.Background(), truss.FromGraph(g),
		truss.WithEngine(truss.EngineTopDown),
		truss.WithTopT(topT))
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	res, _ := truss.AsTopDown(d) // kinit trace + per-class sizes

	fmt.Printf("kmax = %d; top-%d classes:\n", res.KMax, topT)
	var ks []int32
	for k := range res.ClassSizes {
		if k > res.KMax-topT && res.ClassSizes[k] > 0 {
			ks = append(ks, k)
		}
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] > ks[j] })
	for _, k := range ks {
		fmt.Printf("  |Phi_%d| = %d\n", k, res.ClassSizes[k])
	}
	if res.Trace.KInitUsed {
		fmt.Printf("\n(kinit shortcut fired at k=%d: one in-memory pass covered every class above it)\n",
			res.Trace.KInit)
	}

	// Materialize the backbone: edges with truss number > kmax - topT.
	phi, err := res.PhiMap()
	if err != nil {
		log.Fatal(err)
	}
	var backboneEdges []truss.Edge
	for key, k := range phi {
		if k > res.KMax-topT {
			backboneEdges = append(backboneEdges, edgeFromKey(key))
		}
	}
	backbone := truss.FromEdges(backboneEdges)
	fmt.Printf("\nbackbone (top-%d trusses): %d edges, CC %.2f — vs %.2f for the whole topology\n",
		topT, backbone.NumEdges(),
		truss.ClusteringCoefficient(backbone), truss.ClusteringCoefficient(g))

	// Cross-check against a full in-memory decomposition.
	full := truss.Decompose(g)
	for key, k := range phi {
		e := edgeFromKey(key)
		id, ok := g.EdgeID(e.U, e.V)
		if !ok || (k > 2 && full.Phi[id] != k) {
			log.Fatalf("backbone edge %v: top-down phi=%d, full phi=%d", e, k, full.Phi[id])
		}
	}
	fmt.Println("top-down classes agree with the full decomposition ✓")
}

func edgeFromKey(key uint64) truss.Edge {
	return truss.Edge{U: uint32(key >> 32), V: uint32(key)}
}
