// Quickstart: build a small graph, run the in-memory truss decomposition,
// and inspect the k-classes and k-trusses.
//
// The graph is the paper's running example (Figure 2): vertices a..l are
// 0..11; the 5-class is the clique {a,b,c,d,e}, the 2-class the lone
// triangle-free edge (i,k).
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	truss "repro"
)

func main() {
	b := truss.NewBuilder(26)
	for _, e := range [][2]uint32{
		{8, 10}, // (i,k) — in no triangle
		{3, 6}, {3, 10}, {3, 11}, {4, 5}, {4, 6}, {5, 6}, {6, 7}, {6, 10}, {6, 11},
		{5, 7}, {5, 8}, {5, 9}, {7, 8}, {7, 9}, {8, 9}, // near-clique on {f,h,i,j}
		{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 4}, // clique {a..e}
	} {
		b.AddEdge(e[0], e[1])
	}
	g := b.Build()
	fmt.Printf("graph: %d vertices, %d edges\n\n", g.NumVertices(), g.NumEdges())

	// Decompose through the unified entry point: phi(e) is the largest k
	// such that edge e belongs to the k-truss (the largest subgraph where
	// every edge closes >= k-2 triangles inside the subgraph). EngineInMem
	// is the default; swap WithEngine to try any of the paper's five
	// algorithms through the same call.
	d, err := truss.Run(context.Background(), truss.FromGraph(g))
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	res, _ := truss.AsInMemory(d) // the full in-memory Result API
	fmt.Printf("kmax = %d\n", res.KMax)
	for k := int32(2); k <= res.KMax; k++ {
		fmt.Printf("|Phi_%d| = %2d   (edges whose truss number is exactly %d)\n",
			k, len(res.Class(k)), k)
	}

	// The k-trusses are nested: T2 (everything) down to the kmax-truss —
	// the most cohesive core of the network.
	fmt.Println("\nnested trusses:")
	for k := int32(2); k <= res.KMax; k++ {
		tk := res.Truss(k)
		fmt.Printf("  T_%d: %2d edges, clustering coefficient %.2f\n",
			k, tk.NumEdges(), truss.ClusteringCoefficient(tk))
	}

	heart := res.MaxTruss()
	fmt.Printf("\nthe %d-truss (the \"heart\"):", res.KMax)
	for _, e := range heart.Edges() {
		fmt.Printf(" (%c,%c)", 'a'+rune(e.U), 'a'+rune(e.V))
	}
	fmt.Println()

	// Sanity: the decomposition satisfies the k-truss definition.
	if err := truss.Verify(res); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Println("\ndecomposition verified against the definition ✓")
}
