// Community analysis: the paper's Section 7.4 use case. On a social
// network with planted communities, compare the kmax-truss against the
// cmax-core: the truss is smaller, denser, and far more clustered — a
// better "core" of the network — and k-trusses at decreasing k reveal the
// community hierarchy.
//
// Run with: go run ./examples/community
package main

import (
	"context"
	"fmt"
	"log"

	truss "repro"
	"repro/internal/gen"
)

func main() {
	// A planted-partition social network: 40 communities of 18 members
	// with dense intra-community ties plus random cross ties.
	g := gen.Community(40, 18, 0.6, 2.0, 7)
	fmt.Printf("social network: %d vertices, %d edges, CC %.3f\n\n",
		g.NumVertices(), g.NumEdges(), truss.ClusteringCoefficient(g))

	// Table 6 comparison: extremal truss vs extremal core.
	ts, cs := truss.MaxTrussVsMaxCore(g)
	fmt.Println("kmax-truss vs cmax-core (paper Table 6):")
	fmt.Printf("  %-12s %8s %8s %6s %6s\n", "", "vertices", "edges", "k", "CC")
	fmt.Printf("  %-12s %8d %8d %6d %6.2f\n", "kmax-truss", ts.V, ts.E, ts.K, ts.CC)
	fmt.Printf("  %-12s %8d %8d %6d %6.2f\n", "cmax-core", cs.V, cs.E, cs.K, cs.CC)
	fmt.Printf("\nthe truss keeps %.0f%% of the core's edges at %.1fx its clustering\n\n",
		100*float64(ts.E)/float64(cs.E), ts.CC/cs.CC)

	// Community structure through the truss hierarchy: as k rises, the
	// k-truss splits into tightly-knit components — the communities.
	d, err := truss.Run(context.Background(), truss.FromGraph(g))
	if err != nil {
		log.Fatal(err)
	}
	res, _ := truss.AsInMemory(d)
	fmt.Println("truss hierarchy (communities emerge as k rises):")
	for k := int32(3); k <= res.KMax; k++ {
		tk := res.Truss(k)
		if tk.NumEdges() == 0 {
			break
		}
		comps := componentCount(tk)
		fmt.Printf("  T_%-2d: %5d edges in %3d components, CC %.2f\n",
			k, tk.NumEdges(), comps, truss.ClusteringCoefficient(tk))
	}

	// The paper's closing observation: kmax bounds the maximum clique
	// size more tightly than cmax+1 does.
	fmt.Printf("\nmax-clique size bounds: kmax = %d  vs  cmax+1 = %d\n", res.KMax, cs.K+1)
}

// componentCount counts connected components among non-isolated vertices.
func componentCount(g *truss.Graph) int {
	seen := make([]bool, g.NumVertices())
	count := 0
	var stack []uint32
	for v := 0; v < g.NumVertices(); v++ {
		if seen[v] || g.Degree(uint32(v)) == 0 {
			continue
		}
		count++
		stack = append(stack[:0], uint32(v))
		seen[v] = true
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Neighbors(x) {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
	}
	return count
}
