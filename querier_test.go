// The Querier-parity suite: one query script runs against every
// implementation of the unified query surface — a local index, an index
// streamed out of an external-memory decomposition, the slow-path
// Decomposition adapter, and an HTTP client pointed at a live test
// server — and all must agree edge-for-edge with the reference.
package truss_test

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	truss "repro"
	"repro/client"
	"repro/internal/dynamic"
	"repro/internal/gen"
)

// parityFixture builds one graph and every Querier implementation over
// it, plus the reference index querier.
type parityFixture struct {
	g         *truss.Graph
	reference truss.Querier
	queriers  map[string]truss.Querier
	kmax      int32
}

func newParityFixture(t *testing.T) *parityFixture {
	t.Helper()
	ctx := context.Background()
	// Communities plus a planted clique: several k-levels, multiple
	// communities per level, and a distinct innermost class.
	g := gen.WithPlantedCliques(gen.Community(4, 12, 0.8, 1.5, 3), []int{8}, 5)

	d, err := truss.Run(ctx, truss.FromGraph(g))
	if err != nil {
		t.Fatal(err)
	}
	res, _ := truss.AsInMemory(d)
	reference := truss.QueryIndex(truss.BuildIndex(res))

	budget := int64(g.NumEdges()) * 6 / 5
	if budget < 1<<12 {
		budget = 1 << 12
	}
	dbu, err := truss.Run(ctx, truss.FromGraph(g),
		truss.WithEngine(truss.EngineBottomUp),
		truss.WithBudget(budget), truss.WithSeed(1), truss.WithTempDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dbu.Close() })
	streamed, err := truss.BuildIndexFrom(ctx, dbu)
	if err != nil {
		t.Fatal(err)
	}

	srv := truss.NewServer(truss.ServerOptions{Workers: 2, Logf: t.Logf})
	srv.Build("parity", g, "test")
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL, client.WithRetryBackoff(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}

	// Fifth implementation: the reference index round-tripped through the
	// on-disk format and served off a memory mapping.
	tixPath := filepath.Join(t.TempDir(), "parity.tix")
	if err := truss.WriteIndexFile(tixPath, truss.BuildIndex(res), "parity"); err != nil {
		t.Fatal(err)
	}
	tix, err := truss.OpenIndexFile(tixPath)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tix.Close() })

	return &parityFixture{
		g:         g,
		reference: reference,
		kmax:      res.KMax,
		queriers: map[string]truss.Querier{
			"streamed-index":   truss.QueryIndex(streamed),
			"adapter-inmem":    truss.QueryDecomposition(d),
			"adapter-bottomup": truss.QueryDecomposition(dbu),
			"http-client":      c.Graph("parity"),
			"mmap-indexfile":   truss.QueryIndex(tix.Index()),
		},
	}
}

// edgePhi is a normalized (edge, truss) pair for order-insensitive
// stream comparison.
type edgePhi struct {
	e   truss.Edge
	phi int32
}

// collectEdges drains a KTrussEdges iterator into a canonical sorted
// slice.
func collectEdges(t *testing.T, q truss.Querier, k int32) []edgePhi {
	t.Helper()
	seq, errf := q.KTrussEdges(context.Background(), k)
	var out []edgePhi
	for e, phi := range seq {
		out = append(out, edgePhi{e, phi})
	}
	if err := errf(); err != nil {
		t.Fatalf("KTrussEdges(%d): %v", k, err)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].e.U != out[j].e.U {
			return out[i].e.U < out[j].e.U
		}
		return out[i].e.V < out[j].e.V
	})
	return out
}

func TestQuerierParity(t *testing.T) {
	fx := newParityFixture(t)
	ctx := context.Background()

	// The lookup script: every edge of the graph plus misses (absent
	// pair, out-of-range vertex, self-loop).
	pairs := append([]truss.Edge(nil), fx.g.Edges()...)
	pairs = append(pairs,
		truss.Edge{U: 0, V: uint32(fx.g.NumVertices() + 7)},
		truss.Edge{U: 3, V: 3},
		truss.Edge{U: uint32(fx.g.NumVertices()), V: uint32(fx.g.NumVertices() + 1)})

	wantAnswers, err := fx.reference.TrussNumbers(ctx, pairs)
	if err != nil {
		t.Fatal(err)
	}
	wantHist, err := fx.reference.Histogram(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantTopAll, err := fx.reference.TopClasses(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantTop2, err := fx.reference.TopClasses(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fx.kmax < 4 {
		t.Fatalf("fixture too shallow: kmax=%d", fx.kmax)
	}

	for name, q := range fx.queriers {
		t.Run(name, func(t *testing.T) {
			// Point lookups, one by one.
			for _, p := range pairs[:40] { // a sample; the batch below covers all
				k, found, err := q.TrussNumber(ctx, p.U, p.V)
				if err != nil {
					t.Fatalf("TrussNumber%v: %v", p, err)
				}
				wk, wfound, _ := fx.reference.TrussNumber(ctx, p.U, p.V)
				if k != wk || found != wfound {
					t.Fatalf("TrussNumber%v = (%d,%v) want (%d,%v)", p, k, found, wk, wfound)
				}
			}

			// The whole script as one batch.
			answers, err := q.TrussNumbers(ctx, pairs)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(answers, wantAnswers) {
				t.Fatalf("TrussNumbers disagree:\n got %v\nwant %v", answers, wantAnswers)
			}

			hist, err := q.Histogram(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(hist, wantHist) {
				t.Fatalf("Histogram = %v want %v", hist, wantHist)
			}

			for _, tc := range []struct {
				t    int
				want []truss.ClassSummary
			}{{0, wantTopAll}, {2, wantTop2}} {
				got, err := q.TopClasses(ctx, tc.t)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, tc.want) {
					t.Fatalf("TopClasses(%d) = %v want %v", tc.t, got, tc.want)
				}
			}

			// Communities at every level (plus one past kmax: empty
			// everywhere, an error nowhere).
			for k := int32(3); k <= fx.kmax+1; k++ {
				want, err := fx.reference.Communities(ctx, k)
				if err != nil {
					t.Fatal(err)
				}
				got, err := q.Communities(ctx, k)
				if err != nil {
					t.Fatalf("Communities(%d): %v", k, err)
				}
				if len(got) != len(want) {
					t.Fatalf("Communities(%d): %d communities want %d", k, len(got), len(want))
				}
				for i := range want {
					if !reflect.DeepEqual(got[i], want[i]) {
						t.Fatalf("Communities(%d)[%d]:\n got %+v\nwant %+v", k, i, got[i], want[i])
					}
				}
			}
			// k < 3 is rejected by every implementation.
			if _, err := q.Communities(ctx, 2); err == nil {
				t.Fatal("Communities(2) did not error")
			}

			// Edge streaming at the interesting levels, order-normalized
			// (the stream order is the one documented liberty).
			for _, k := range []int32{0, 2, 3, fx.kmax, fx.kmax + 1} {
				got := collectEdges(t, q, k)
				want := collectEdges(t, fx.reference, k)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("KTrussEdges(%d): %d edges want %d (or payload mismatch)", k, len(got), len(want))
				}
			}
		})
	}
}

// TestQuerierCancellation: a canceled context surfaces as an error from
// every implementation rather than a silent empty answer.
func TestQuerierCancellation(t *testing.T) {
	fx := newParityFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	for name, q := range fx.queriers {
		t.Run(name, func(t *testing.T) {
			if _, err := q.TrussNumbers(ctx, fx.g.Edges()); err == nil {
				t.Error("TrussNumbers with canceled context did not error")
			}
			seq, errf := q.KTrussEdges(ctx, 0)
			n := 0
			for range seq {
				n++
			}
			if err := errf(); err == nil {
				t.Errorf("KTrussEdges with canceled context yielded %d edges and no error", n)
			}
		})
	}
}

// TestBuildIndexFromFastPath: the in-memory fast path and the forced
// streaming path agree with BuildIndex through every exported query.
func TestBuildIndexFromFastPath(t *testing.T) {
	ctx := context.Background()
	g := gen.BarabasiAlbert(150, 4, 9)
	d, err := truss.Run(ctx, truss.FromGraph(g))
	if err != nil {
		t.Fatal(err)
	}
	res, _ := truss.AsInMemory(d)
	want := truss.BuildIndex(res)

	fast, err := truss.BuildIndexFrom(ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	forced, err := truss.BuildIndexFrom(ctx, d, truss.WithIndexStreaming())
	if err != nil {
		t.Fatal(err)
	}
	for name, ix := range map[string]*truss.Index{"fast": fast, "streamed": forced} {
		if !reflect.DeepEqual(ix.Histogram(), want.Histogram()) {
			t.Fatalf("%s: histogram mismatch", name)
		}
		for _, e := range g.Edges() {
			gk, gok := ix.TrussNumber(e.U, e.V)
			wk, wok := want.TrussNumber(e.U, e.V)
			if gk != wk || gok != wok {
				t.Fatalf("%s: TrussNumber%v = (%d,%v) want (%d,%v)", name, e, gk, gok, wk, wok)
			}
		}
		for k := int32(3); k <= want.KMax(); k++ {
			if ix.CommunityCount(k) != want.CommunityCount(k) {
				t.Fatalf("%s: CommunityCount(%d) mismatch", name, k)
			}
		}
	}

	if _, err := truss.BuildIndexFrom(ctx, nil); err == nil {
		t.Fatal("BuildIndexFrom(nil) did not error")
	}
}

// TestOpenRejectsNilSource: the satellite fix — Open fails fast on a nil
// source with an error naming Open, before engine validation can
// confuse the message.
func TestOpenRejectsNilSource(t *testing.T) {
	_, err := truss.Open(context.Background(), nil)
	if err == nil {
		t.Fatal("Open(nil) did not error")
	}
	if !strings.Contains(err.Error(), "Open") || !strings.Contains(err.Error(), "non-nil Source") {
		t.Fatalf("error %q does not name Open and the nil source", err)
	}
	// Even with an invalid engine configured, the nil source wins.
	_, err = truss.Open(context.Background(), nil, truss.WithEngine(truss.EngineBottomUp))
	if err == nil || !strings.Contains(err.Error(), "non-nil Source") {
		t.Fatalf("Open(nil, bottomup) = %v, want the nil-source error", err)
	}
}

// TestMmapQuerierParityAfterPatch: the mmap-backed view must stay
// answer-for-answer with a fresh decomposition after Patch overlays a
// mutation batch on the mapped base — and keep agreeing after the
// mapping itself is closed, since Patch output is pure heap
// (copy-on-write, never aliasing mapped pages it might outlive).
func TestMmapQuerierParityAfterPatch(t *testing.T) {
	ctx := context.Background()
	g := gen.WithPlantedCliques(gen.Community(3, 11, 0.8, 1.5, 17), []int{7}, 9)
	res := truss.Decompose(g)

	path := filepath.Join(t.TempDir(), "g.tix")
	if err := truss.WriteIndexFile(path, truss.BuildIndex(res), "patch-parity"); err != nil {
		t.Fatal(err)
	}
	f, err := truss.OpenIndexFile(path)
	if err != nil {
		t.Fatal(err)
	}

	upd, err := dynamic.Update(ctx, g, res.Phi, dynamic.Batch{
		Adds: []truss.Edge{{U: 0, V: 5}, {U: 1, V: 20}, {U: 100, V: 101}},
		Dels: []truss.Edge{g.Edge(2)},
	}, dynamic.Config{})
	if err != nil {
		t.Fatal(err)
	}
	patched := f.Index().Patch(upd.G, upd.Phi, upd.KMax, upd.Remap, upd.Changed)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	q := truss.QueryIndex(patched)
	ref := truss.QueryIndex(truss.BuildIndex(truss.Decompose(upd.G)))

	pairs := upd.G.Edges()
	got, err := q.TrussNumbers(ctx, pairs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.TrussNumbers(ctx, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TrussNumbers after patch disagree:\n got %v\nwant %v", got, want)
	}
	gh, _ := q.Histogram(ctx)
	wh, _ := ref.Histogram(ctx)
	if !reflect.DeepEqual(gh, wh) {
		t.Fatalf("Histogram after patch = %v want %v", gh, wh)
	}
	for k := int32(3); k <= patched.KMax()+1; k++ {
		gc, err := q.Communities(ctx, k)
		if err != nil {
			t.Fatal(err)
		}
		wc, err := ref.Communities(ctx, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gc, wc) {
			t.Fatalf("Communities(%d) after patch: %d communities want %d", k, len(gc), len(wc))
		}
	}
}
