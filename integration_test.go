package truss_test

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	truss "repro"
	"repro/internal/experiments"
	"repro/internal/gen"
)

// TestIntegrationAllAlgorithmsAgree runs the complete pipeline every user
// would follow — generate, persist, decompose with all four algorithms plus
// the MapReduce baseline — and requires identical truss numbers everywhere.
func TestIntegrationAllAlgorithmsAgree(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *truss.Graph
	}{
		{"community", gen.Community(8, 12, 0.65, 1.5, 5)},
		{"rmat-cliques", gen.WithPlantedCliques(gen.RMAT(9, 4, 0.57, 0.19, 0.19, 6), []int{12}, 6)},
		{"collab", gen.Collaboration(300, 160, 10, 7)},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "g.bin")
			if err := truss.SaveGraph(path, tc.g); err != nil {
				t.Fatal(err)
			}
			g, err := truss.LoadGraph(path)
			if err != nil {
				t.Fatal(err)
			}

			want := truss.Decompose(g)
			if err := truss.Verify(want); err != nil {
				t.Fatal(err)
			}
			phiOf := func(u, v uint32) int32 {
				id, ok := g.EdgeID(u, v)
				if !ok {
					t.Fatalf("edge (%d,%d) missing", u, v)
				}
				return want.Phi[id]
			}

			// Baseline in-memory.
			base := truss.DecomposeBaseline(g)
			for id := range base.Phi {
				if base.Phi[id] != want.Phi[id] {
					t.Fatalf("baseline disagrees at edge %d", id)
				}
			}

			// Bottom-up external, from the file, small budget.
			bu, err := truss.BottomUpFile(path, truss.ExternalOptions{
				MemoryBudget: int64(g.NumEdges()), TempDir: dir, Seed: 3,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer bu.Close()
			buPhi, err := bu.PhiMap()
			if err != nil {
				t.Fatal(err)
			}
			if len(buPhi) != g.NumEdges() {
				t.Fatalf("bottom-up classified %d of %d edges", len(buPhi), g.NumEdges())
			}
			for key, p := range buPhi {
				e := truss.Edge{U: uint32(key >> 32), V: uint32(key)}
				if phiOf(e.U, e.V) != p {
					t.Fatalf("bottom-up: edge %v phi=%d want %d", e, p, phiOf(e.U, e.V))
				}
			}

			// Top-down external (all classes), from the file.
			td, err := truss.TopDownFile(path, 0, truss.ExternalOptions{
				MemoryBudget: int64(g.NumEdges()), TempDir: dir, Seed: 3,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer td.Close()
			tdPhi, err := td.PhiMap()
			if err != nil {
				t.Fatal(err)
			}
			if len(tdPhi) != g.NumEdges() {
				t.Fatalf("top-down classified %d of %d edges", len(tdPhi), g.NumEdges())
			}
			for key, p := range tdPhi {
				e := truss.Edge{U: uint32(key >> 32), V: uint32(key)}
				if phiOf(e.U, e.V) != p {
					t.Fatalf("top-down: edge %v phi=%d want %d", e, p, phiOf(e.U, e.V))
				}
			}

			// MapReduce baseline.
			mr := truss.MapReduceDecompose(g)
			if mr.KMax != want.KMax {
				t.Fatalf("TD-MR kmax %d want %d", mr.KMax, want.KMax)
			}
			for key, p := range mr.Phi {
				e := truss.Edge{U: uint32(key >> 32), V: uint32(key)}
				if phiOf(e.U, e.V) != p {
					t.Fatalf("TD-MR: edge %v phi=%d want %d", e, p, phiOf(e.U, e.V))
				}
			}
		})
	}
}

// TestExperimentFigures smoke-tests the experiment harness' figure
// reproductions (cheap; the tables run in cmd/experiments).
func TestExperimentFigures(t *testing.T) {
	var buf bytes.Buffer
	opts := experiments.Options{Quick: true, TempDir: t.TempDir(), Out: &buf}
	if err := experiments.Figure1(opts); err != nil {
		t.Fatal(err)
	}
	if err := experiments.Figure2(opts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Figure 1", "4-core empty: true", "5-truss empty: true",
		"Figure 2", "| Phi_5 | 10 | 10 |", "kmax = 5 (paper: 5)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestExperimentTable2Quick runs the Table 2 harness on the quick analogs
// (skipped in -short mode; it decomposes all nine datasets).
func TestExperimentTable2Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick datasets still take seconds; skipped with -short")
	}
	var buf bytes.Buffer
	opts := experiments.Options{Quick: true, TempDir: t.TempDir(), Out: &buf}
	if err := experiments.Table2(opts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, ds := range []string{"P2P", "HEP", "Amazon", "Wiki", "Skitter", "Blog", "LJ", "BTC", "Web"} {
		if !strings.Contains(out, "| "+ds+" |") {
			t.Fatalf("Table 2 missing dataset %s:\n%s", ds, out)
		}
	}
}
