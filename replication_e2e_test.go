package truss_test

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// freeAddr reserves an ephemeral port and releases it, so a server can
// be started — and later restarted — on a known address.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestReplicationFleetCrashRecovery drives a primary + follower pair of
// real trussd processes through both crash modes:
//
//   - kill -9 the primary mid-tail: the follower keeps serving reads,
//     and when the primary returns on the same address and data dir the
//     tail resumes with no gap and no double-apply (exact version match
//     plus histogram parity).
//   - kill -9 the follower: restarted on its own data dir it recovers
//     locally and re-tails from its recovered version — the hydration
//     counter stays at zero, proving resume rather than re-download.
func TestReplicationFleetCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped with -short")
	}
	dir := t.TempDir()
	trussd := buildCmd(t, dir, "trussd")
	primaryDir := filepath.Join(dir, "primary")
	followerDir := filepath.Join(dir, "follower")

	gpath := filepath.Join(dir, "square.txt")
	// A triangle plus a pendant: truss(0,1) = 3 until the K4 completes.
	if err := os.WriteFile(gpath, []byte("0 1\n1 2\n0 2\n2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	getBody := func(addr, path string, want int) []byte {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != want {
			t.Fatalf("GET %s: status %d, want %d (body %.200s)", path, resp.StatusCode, want, body)
		}
		return body
	}
	getJSON := func(addr, path string, want int) map[string]any {
		t.Helper()
		var out map[string]any
		if err := json.Unmarshal(getBody(addr, path, want), &out); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return out
	}
	mutate := func(addr, body string) float64 {
		t.Helper()
		resp, err := http.Post("http://"+addr+"/v1/graphs/g/edges", "application/json",
			strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mutation: status %d body %v", resp.StatusCode, out)
		}
		v, _ := out["version"].(float64)
		return v
	}
	waitVersion := func(addr string, version float64) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := http.Get("http://" + addr + "/v1/graphs/g")
			if err == nil {
				var info map[string]any
				dec := json.NewDecoder(resp.Body).Decode(&info)
				resp.Body.Close()
				if dec == nil && info["version"] == version {
					return
				}
			}
			time.Sleep(50 * time.Millisecond)
		}
		t.Fatalf("follower %s never reached version %v", addr, version)
	}
	waitReady := func(addr string) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := http.Get("http://" + addr + "/readyz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return
				}
			}
			time.Sleep(50 * time.Millisecond)
		}
		t.Fatalf("%s never reported ready", addr)
	}

	// The primary lives on a pre-reserved address so the follower's
	// -follow URL survives the crash/restart cycle.
	paddr := freeAddr(t)
	_, stopPrimary := startServe(t, trussd,
		"-addr", paddr, "-data-dir", primaryDir, "-load", "g="+gpath, "-wait")
	faddr, stopFollower := startServe(t, trussd,
		"-data-dir", followerDir, "-follow", "http://"+paddr, "-replica-refresh", "50ms")

	// The follower hydrates, reports ready, and serves the same answers.
	waitReady(faddr)
	waitVersion(faddr, 1)
	if body := getJSON(faddr, "/v1/graphs/g/truss?u=0&v=1", http.StatusOK); body["truss"] != float64(3) {
		t.Fatalf("follower truss(0,1) = %v, want 3", body)
	}

	// Mutations stream through the tail: complete the K4, then grow it.
	if v := mutate(paddr, `{"edges":[[0,3],[1,3]]}`); v != 2 {
		t.Fatalf("first mutation acked version %v, want 2", v)
	}
	if v := mutate(paddr, `{"edges":[[4,5]]}`); v != 3 {
		t.Fatalf("second mutation acked version %v, want 3", v)
	}
	waitVersion(faddr, 3)
	wantHist := string(getBody(paddr, "/v1/graphs/g/histogram", http.StatusOK))
	if got := string(getBody(faddr, "/v1/graphs/g/histogram", http.StatusOK)); got != wantHist {
		t.Fatalf("histogram diverged:\nprimary:  %s\nfollower: %s", wantHist, got)
	}
	if body := getJSON(faddr, "/v1/graphs/g/truss?u=0&v=1", http.StatusOK); body["truss"] != float64(4) {
		t.Fatalf("follower truss(0,1) after K4 = %v, want 4", body)
	}

	// Mutations sent to the follower bounce with the primary's address.
	resp, err := http.Post("http://"+faddr+"/v1/graphs/g/edges", "application/json",
		strings.NewReader(`{"edges":[[6,7]]}`))
	if err != nil {
		t.Fatal(err)
	}
	var reject map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&reject); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden || reject["primary"] != "http://"+paddr {
		t.Fatalf("mutation on follower: status %d body %v, want 403 naming the primary",
			resp.StatusCode, reject)
	}

	// Crash the primary mid-tail. The follower keeps answering reads.
	stopPrimary(false)
	if body := getJSON(faddr, "/v1/graphs/g/truss?u=0&v=1", http.StatusOK); body["truss"] != float64(4) {
		t.Fatalf("follower read with primary dead = %v", body)
	}

	// The primary returns on the same address and data dir; the tail
	// resumes: the next mutation is version 4 on both ends, with
	// identical histograms — no gap, no double-apply.
	_, stopPrimary = startServe(t, trussd, "-addr", paddr, "-data-dir", primaryDir)
	if v := mutate(paddr, `{"edges":[[5,6]]}`); v != 4 {
		t.Fatalf("post-restart mutation acked version %v, want 4", v)
	}
	waitVersion(faddr, 4)
	wantHist = string(getBody(paddr, "/v1/graphs/g/histogram", http.StatusOK))
	if got := string(getBody(faddr, "/v1/graphs/g/histogram", http.StatusOK)); got != wantHist {
		t.Fatalf("histogram diverged after primary crash:\nprimary:  %s\nfollower: %s", wantHist, got)
	}

	// Crash the follower. Restarted on its own data dir it recovers to
	// version 4 locally and re-tails — without downloading a snapshot.
	stopFollower(false)
	faddr, stopFollower = startServe(t, trussd,
		"-data-dir", followerDir, "-follow", "http://"+paddr, "-replica-refresh", "50ms")
	defer stopFollower(true)
	defer stopPrimary(true)
	waitReady(faddr)
	waitVersion(faddr, 4)
	if v := mutate(paddr, `{"edges":[[6,7]]}`); v != 5 {
		t.Fatalf("mutation after follower restart acked version %v, want 5", v)
	}
	waitVersion(faddr, 5)
	wantHist = string(getBody(paddr, "/v1/graphs/g/histogram", http.StatusOK))
	if got := string(getBody(faddr, "/v1/graphs/g/histogram", http.StatusOK)); got != wantHist {
		t.Fatalf("histogram diverged after follower crash:\nprimary:  %s\nfollower: %s", wantHist, got)
	}
	metrics := string(getBody(faddr, "/metrics", http.StatusOK))
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "truss_replica_hydrations_total") &&
			!strings.HasSuffix(line, " 0") {
			t.Fatalf("restarted follower re-hydrated: %s", line)
		}
	}
}
