package truss_test

import (
	"bytes"
	"path/filepath"
	"testing"

	truss "repro"
	"repro/internal/gen"
)

// paperExample rebuilds the Figure 2 graph through the public API.
func paperExample() *truss.Graph {
	return gen.PaperExample()
}

func TestFacadeInMemory(t *testing.T) {
	g := paperExample()
	r := truss.Decompose(g)
	if r.KMax != 5 {
		t.Fatalf("kmax = %d", r.KMax)
	}
	if err := truss.Verify(r); err != nil {
		t.Fatal(err)
	}
	b := truss.DecomposeBaseline(g)
	if b.KMax != 5 {
		t.Fatalf("baseline kmax = %d", b.KMax)
	}
}

func TestFacadeBuilderAndFiles(t *testing.T) {
	b := truss.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	g := b.Build()
	dir := t.TempDir()
	path := filepath.Join(dir, "tri.txt")
	if err := truss.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	back, err := truss.LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != 3 {
		t.Fatalf("loaded %d edges", back.NumEdges())
	}
	r := truss.Decompose(back)
	if r.KMax != 3 {
		t.Fatalf("triangle kmax = %d", r.KMax)
	}
}

func TestFacadeExternal(t *testing.T) {
	g := paperExample()
	var st truss.IOStats
	opts := truss.ExternalOptions{MemoryBudget: 64, TempDir: t.TempDir(), Stats: &st}
	res, err := truss.BottomUp(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if res.KMax != 5 {
		t.Fatalf("bottom-up kmax = %d", res.KMax)
	}
	if st.BytesRead() == 0 {
		t.Fatal("no I/O recorded")
	}

	td, err := truss.TopDown(g, 2, truss.ExternalOptions{TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer td.Close()
	if td.KMax != 5 || td.ClassSizes[5] != 10 || td.ClassSizes[4] != 6 {
		t.Fatalf("top-down: kmax=%d sizes=%v", td.KMax, td.ClassSizes)
	}
}

func TestFacadeExternalFromFile(t *testing.T) {
	g := paperExample()
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := truss.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	res, err := truss.BottomUpFile(path, truss.ExternalOptions{TempDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if res.KMax != 5 {
		t.Fatalf("kmax = %d", res.KMax)
	}
	td, err := truss.TopDownFile(path, 1, truss.ExternalOptions{TempDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer td.Close()
	if td.ClassSizes[5] != 10 {
		t.Fatalf("top-1 sizes = %v", td.ClassSizes)
	}
}

func TestFacadeCountTrianglesExternal(t *testing.T) {
	g := paperExample()
	dir := t.TempDir()
	path := filepath.Join(dir, "g.bin")
	if err := truss.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int64{0, 64} {
		got, err := truss.CountTrianglesExternal(path, truss.ExternalOptions{
			MemoryBudget: budget, TempDir: dir, Seed: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Figure 2 has 23 triangles: C(5,3)=10 in the 5-clique, 4 around
		// the {f,h,i,j} near-clique plus its (f,h,i),(f,h,j)... count via
		// the in-memory reference below instead of hand arithmetic.
		want := int64(0)
		for _, s := range supportsOf(g) {
			want += int64(s)
		}
		want /= 3
		if got != want {
			t.Fatalf("budget %d: triangles = %d, want %d", budget, got, want)
		}
	}
}

// supportsOf mirrors triangle.Supports through the public surface (merge
// intersection per edge).
func supportsOf(g *truss.Graph) []int {
	out := make([]int, g.NumEdges())
	for id, e := range g.Edges() {
		a, b := g.Neighbors(e.U), g.Neighbors(e.V)
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			switch {
			case a[i] < b[j]:
				i++
			case a[i] > b[j]:
				j++
			default:
				out[id]++
				i++
				j++
			}
		}
	}
	return out
}

func TestFacadeMapReduce(t *testing.T) {
	res := truss.MapReduceDecompose(paperExample())
	if res.KMax != 5 {
		t.Fatalf("TD-MR kmax = %d", res.KMax)
	}
	if res.Counters.Rounds == 0 {
		t.Fatal("no MR rounds recorded")
	}
}

func TestFacadeCommunitiesAndDOT(t *testing.T) {
	g := paperExample()
	r := truss.Decompose(g)
	comms := truss.Communities(r, 5)
	if len(comms) != 1 || len(comms[0].Edges) != 10 {
		t.Fatalf("communities at k=5: %+v", comms)
	}
	var buf bytes.Buffer
	if err := truss.WriteDOT(&buf, r, "fig2"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("graph \"fig2\"")) {
		t.Fatal("DOT output malformed")
	}
}

func TestFacadeAnalyses(t *testing.T) {
	g := paperExample()
	co := truss.CoreDecompose(g)
	if co.CMax < 3 {
		t.Fatalf("cmax = %d", co.CMax)
	}
	if cc := truss.ClusteringCoefficient(g); cc <= 0 || cc > 1 {
		t.Fatalf("cc = %f", cc)
	}
	st := truss.Stats(g)
	if st.V != 12 || st.E != 26 || st.KMax != 5 {
		t.Fatalf("stats = %+v", st)
	}
	ts, cs := truss.MaxTrussVsMaxCore(g)
	if ts.K != 5 || ts.E != 10 {
		t.Fatalf("max truss stats = %+v", ts)
	}
	if cs.E == 0 {
		t.Fatalf("max core stats = %+v", cs)
	}
}
