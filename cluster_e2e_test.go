package truss_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	truss "repro"
	"repro/client"
	"repro/internal/cluster"
	"repro/internal/obs"
)

// startTrussd launches an arbitrary trussd subcommand that serves HTTP
// (serve or coordinator) on an ephemeral port and returns its address
// and a stopper — the general form of startServe.
func startTrussd(t *testing.T, trussd, sub string, args ...string) (addr string, stop func(graceful bool)) {
	t.Helper()
	cmd := exec.Command(trussd, append([]string{sub, "-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			addr = strings.TrimSpace(line[i+len("listening on "):])
			break
		}
	}
	if addr == "" {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("trussd %s never reported its listen address", sub)
	}
	go io.Copy(io.Discard, stderr)
	return addr, func(graceful bool) {
		if graceful {
			cmd.Process.Signal(os.Interrupt)
		} else {
			cmd.Process.Kill()
		}
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	}
}

// TestClusterE2E drives the whole sharded deployment with real
// processes: a coordinator fronting two shard primaries (shard A with a
// replicating follower), ten graphs placed by rendezvous hash. It
// checks the acceptance criteria end to end — every graph served by
// exactly one shard; mutations through the shard-aware client landing
// only on the owning shard's primary; reads honoring per-graph
// X-Truss-Min-Version; the NDJSON firehose passing through the
// coordinator with incremental acks (first ack observed while the
// request body is still open); /metrics reconciling across all four
// processes; and one shard's death degrading — not downing — the rest.
func TestClusterE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped with -short")
	}
	dir := t.TempDir()
	trussd := buildCmd(t, dir, "trussd")

	getBody := func(base, path string, hdr map[string]string, want int) []byte {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, base+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != want {
			t.Fatalf("GET %s: status %d, want %d (body %.200s)", path, resp.StatusCode, want, body)
		}
		return body
	}
	getJSON := func(base, path string, hdr map[string]string, want int) map[string]any {
		t.Helper()
		var out map[string]any
		if err := json.Unmarshal(getBody(base, path, hdr, want), &out); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return out
	}
	scrape := func(base string) obs.Samples {
		t.Helper()
		samples, err := obs.ParseExposition(strings.NewReader(string(getBody(base, "/metrics", nil, http.StatusOK))))
		if err != nil {
			t.Fatalf("parsing %s/metrics: %v", base, err)
		}
		return samples
	}

	// Shards first (the coordinator's -shards needs their addresses).
	addrA, stopA := startTrussd(t, trussd, "serve", "-data-dir", filepath.Join(dir, "shard-a"))
	defer stopA(true)
	addrB, stopB := startTrussd(t, trussd, "serve", "-data-dir", filepath.Join(dir, "shard-b"))
	baseA, baseB := "http://"+addrA, "http://"+addrB

	// The test computes placement with the same exported hash the
	// coordinator uses, so it can address owners directly.
	topo := &cluster.Topology{Shards: []cluster.Shard{
		{Name: "a", Primary: baseA},
		{Name: "b", Primary: baseB},
	}}

	// Ten graphs, each loaded onto its owner: a triangle plus a pendant
	// (truss(0,1) = 3 until a later mutation completes the K4).
	const graphs = 10
	edges := `{"edges":[[0,1],[1,2],[0,2],[2,3]]}`
	owners := map[string]string{} // graph -> shard name
	owned := map[string][]string{}
	for i := 0; i < graphs; i++ {
		g := fmt.Sprintf("g%d", i)
		owner, _ := topo.Owner(g)
		owners[g] = owner.Name
		owned[owner.Name] = append(owned[owner.Name], g)
		resp, err := http.Post(owner.Primary+"/v1/graphs/"+g, "application/json", strings.NewReader(edges))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("loading %s on shard %s: status %d", g, owner.Name, resp.StatusCode)
		}
	}
	if len(owned["a"]) == 0 || len(owned["b"]) == 0 {
		t.Fatalf("degenerate placement, all graphs on one shard: %v", owned)
	}
	t.Logf("placement: a=%v b=%v", owned["a"], owned["b"])
	waitReady := func(base string) {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := http.Get(base + "/readyz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return
				}
			}
			time.Sleep(50 * time.Millisecond)
		}
		t.Fatalf("%s never became ready", base)
	}
	waitReady(baseA)
	waitReady(baseB)

	// A follower replicating shard A, then the coordinator fronting it
	// all: shard A = primary + follower, shard B = primary only.
	addrF, stopF := startTrussd(t, trussd, "serve",
		"-data-dir", filepath.Join(dir, "follower-a"),
		"-follow", baseA, "-replica-refresh", "100ms")
	defer stopF(true)
	baseF := "http://" + addrF
	waitReady(baseF)
	addrC, stopC := startTrussd(t, trussd, "coordinator",
		"-shards", fmt.Sprintf("a=%s;%s,b=%s", baseA, baseF, baseB))
	defer stopC(true)
	baseC := "http://" + addrC

	// Every graph is served by exactly one shard: its owner lists it and
	// answers queries; the other shard 404s it. The coordinator's merged
	// listing carries all ten, sorted.
	listNames := func(base string) []string {
		var body struct {
			Graphs []struct {
				Name string `json:"name"`
			} `json:"graphs"`
		}
		if err := json.Unmarshal(getBody(base, "/v1/graphs", nil, http.StatusOK), &body); err != nil {
			t.Fatal(err)
		}
		names := make([]string, 0, len(body.Graphs))
		for _, g := range body.Graphs {
			names = append(names, g.Name)
		}
		return names
	}
	haveA, haveB := listNames(baseA), listNames(baseB)
	for g, owner := range owners {
		other := baseB
		own := haveA
		if owner == "b" {
			other = baseA
			own = haveB
		}
		found := false
		for _, n := range own {
			found = found || n == g
		}
		if !found {
			t.Fatalf("graph %s missing from its owner shard %s (listing %v)", g, owner, own)
		}
		getBody(other, "/v1/graphs/"+g, nil, http.StatusNotFound)
	}
	merged := listNames(baseC)
	if len(merged) != graphs {
		t.Fatalf("coordinator merged listing has %d graphs, want %d: %v", len(merged), graphs, merged)
	}
	for i := 1; i < len(merged); i++ {
		if merged[i-1] >= merged[i] {
			t.Fatalf("merged listing not sorted: %v", merged)
		}
	}

	// Proxied reads: each graph answers through the coordinator from its
	// owner (X-Truss-Shard names it), truss(0,1) = 3 pre-mutation.
	proxied := map[string]int{}
	for g, owner := range owners {
		req, _ := http.NewRequest(http.MethodGet, baseC+"/v1/graphs/"+g+"/truss?u=0&v=1", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("proxied truss read for %s: status %d (%.200s)", g, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Truss-Shard"); got != owner {
			t.Fatalf("graph %s proxied to shard %q, owner is %q", g, got, owner)
		}
		if !strings.Contains(string(body), `"truss":3`) {
			t.Fatalf("graph %s pre-mutation truss = %.100s, want 3", g, body)
		}
		proxied[owner]++
	}

	// The firehose through the coordinator, full duplex: stream a chunk
	// of pendant-chain edges, then demand the first ack arrive while the
	// request body is still open — the proxy buffering either direction
	// would hold it back — then complete the K4 and close.
	fireGraph := owned["a"][0]
	fireVersion := uint64(0)
	{
		pr, pw := io.Pipe()
		req, err := http.NewRequest(http.MethodPost, baseC+"/v1/graphs/"+fireGraph+"/edges:stream", pr)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/x-ndjson")
		respc := make(chan *http.Response, 1)
		errc := make(chan error, 1)
		go func() {
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				errc <- err
				return
			}
			respc <- resp
		}()
		// One full server-side chunk (512 records) of chain edges, so an
		// ack becomes due while the stream stays open.
		var chunk strings.Builder
		for i := 0; i < 512; i++ {
			fmt.Fprintf(&chunk, `{"op":"add","u":%d,"v":%d}`+"\n", 1000+i, 1001+i)
		}
		if _, err := io.WriteString(pw, chunk.String()); err != nil {
			t.Fatal(err)
		}
		var resp *http.Response
		select {
		case resp = <-respc:
		case err := <-errc:
			t.Fatalf("firehose through coordinator: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("no firehose response headers while the request body is open")
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("firehose: status %d (%.200s)", resp.StatusCode, body)
		}
		acks := bufio.NewScanner(resp.Body)
		type ackLine struct {
			ok   bool
			err  error
			line map[string]any
		}
		ackc := make(chan ackLine, 1)
		go func() {
			if !acks.Scan() {
				ackc <- ackLine{err: fmt.Errorf("ack stream ended: %v", acks.Err())}
				return
			}
			var line map[string]any
			err := json.Unmarshal(acks.Bytes(), &line)
			ackc <- ackLine{ok: err == nil, err: err, line: line}
		}()
		select {
		case a := <-ackc:
			if a.err != nil {
				t.Fatalf("first firehose ack: %v", a.err)
			}
			if ok, _ := a.line["ok"].(bool); !ok {
				t.Fatalf("first ack not ok: %v", a.line)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("no firehose ack passed through the coordinator while the request body was still open: the proxy is buffering")
		}
		// Complete the K4 (adds edges 1-3 and 0-3) and close the stream.
		if _, err := io.WriteString(pw, `{"op":"add","u":1,"v":3}`+"\n"+`{"op":"add","u":0,"v":3}`+"\n"); err != nil {
			t.Fatal(err)
		}
		pw.Close()
		var done map[string]any
		for acks.Scan() {
			var line map[string]any
			if err := json.Unmarshal(acks.Bytes(), &line); err != nil {
				t.Fatalf("ack line %q: %v", acks.Text(), err)
			}
			if ok, _ := line["ok"].(bool); !ok {
				t.Fatalf("firehose ack reported failure: %v", line)
			}
			if v, okv := line["version"].(float64); okv && uint64(v) > fireVersion {
				fireVersion = uint64(v)
			}
			if d, _ := line["done"].(bool); d {
				done = line
			}
		}
		if done == nil {
			t.Fatalf("firehose never sent its done summary: %v", acks.Err())
		}
		if acc, _ := done["accepted"].(float64); int(acc) != 514 {
			t.Fatalf("firehose accepted %v records, want 514", done["accepted"])
		}
	}
	// Read-your-writes through the proxy: pin the ack's version and
	// expect the post-firehose truss number.
	body := getBody(baseC, "/v1/graphs/"+fireGraph+"/truss?u=0&v=1",
		map[string]string{"X-Truss-Min-Version": strconv.FormatUint(fireVersion, 10)}, http.StatusOK)
	if !strings.Contains(string(body), `"truss":4`) {
		t.Fatalf("post-firehose truss(0,1) = %.100s, want 4", body)
	}
	proxied["a"] += 2 // the firehose POST and this floor-pinned read

	// The shard-aware Router storm: complete the K4 on the other nine
	// graphs through ShardRouter mutations, then read each back at
	// truss 4 under its read-your-writes floor.
	ctx := context.Background()
	sr, err := client.NewShardRouter(baseC)
	if err != nil {
		t.Fatal(err)
	}
	routerMutations := map[string]int{}
	for g, owner := range owners {
		if g == fireGraph {
			continue
		}
		if _, err := sr.Graph(g).InsertEdges(ctx, []truss.Edge{{U: 1, V: 3}, {U: 0, V: 3}}); err != nil {
			t.Fatalf("router mutation on %s: %v", g, err)
		}
		routerMutations[owner]++
	}
	for g := range owners {
		rctx := ctx
		if g == fireGraph {
			// The firehose bypassed the ShardRouter, so carry its
			// version token explicitly.
			rctx = client.WithMinVersion(ctx, fireVersion)
		}
		k, ok, err := sr.Graph(g).TrussNumber(rctx, 0, 1)
		if err != nil || !ok || k != 4 {
			t.Fatalf("router read of %s: truss=%d found=%v err=%v, want 4", g, k, ok, err)
		}
	}

	// Per-graph min-version floors are honored by a lagging server: a
	// future version on the follower is a 412, never a stale 200.
	getBody(baseF, "/v1/graphs/"+fireGraph+"/truss?u=0&v=1",
		map[string]string{"X-Truss-Min-Version": strconv.FormatUint(fireVersion+1000, 10)},
		http.StatusPreconditionFailed)

	// Metrics reconciliation across all four processes. The shard-side
	// truss route (200s only) must sum to every successful truss read
	// driven above — 10 proxied + 1 floor-pinned + 10 router reads — no
	// matter how they split between the follower and the primaries; the
	// unary mutation POSTs must sit exactly on the owning primaries; and
	// the coordinator's proxy counters must equal the traffic it carried.
	sA, sB, sF, sC := scrape(baseA), scrape(baseB), scrape(baseF), scrape(baseC)
	trussRoute := "GET /v1/graphs/{name}/truss"
	reads := sA.Value("truss_http_requests_total", "route", trussRoute, "code", "200") +
		sB.Value("truss_http_requests_total", "route", trussRoute, "code", "200") +
		sF.Value("truss_http_requests_total", "route", trussRoute, "code", "200")
	if want := float64(graphs + 1 + graphs); reads != want {
		t.Fatalf("fleet served %v successful truss reads, want %v", reads, want)
	}
	mutRoute := "POST /v1/graphs/{name}/edges"
	for shard, samples := range map[string]obs.Samples{"a": sA, "b": sB} {
		got := samples.Value("truss_http_requests_total", "route", mutRoute, "code", "200")
		if got != float64(routerMutations[shard]) {
			t.Fatalf("shard %s primary served %v unary mutations, want %v (mutations must land only on the owner's primary)",
				shard, got, routerMutations[shard])
		}
	}
	if got := sF.Value("truss_http_requests_total", "route", mutRoute, "code", "200"); got != 0 {
		t.Fatalf("follower served %v mutations; it must serve none", got)
	}
	for shard, want := range proxied {
		if got := sC.Value("truss_cluster_proxy_requests_total", "shard", shard, "code", "200"); got != float64(want) {
			t.Fatalf("coordinator proxied %v requests to shard %s, want %v", got, shard, want)
		}
	}
	for _, shard := range []string{"a", "b"} {
		if up := sC.Value("truss_cluster_shard_up", "shard", shard); up != 1 {
			t.Fatalf("coordinator reports shard %s up=%v before the kill, want 1", shard, up)
		}
	}

	// Kill shard B outright. The coordinator must degrade, not die:
	// /readyz stays 200 with degraded=true, shard A's graphs keep
	// answering (proxied and via the ShardRouter), and only shard B's
	// graphs turn into 502s at the proxy.
	stopB(false)
	ready := getJSON(baseC, "/readyz", nil, http.StatusOK)
	if d, _ := ready["degraded"].(bool); !d {
		t.Fatalf("coordinator /readyz after killing shard B = %v, want degraded=true", ready)
	}
	for _, g := range owned["a"] {
		body := getBody(baseC, "/v1/graphs/"+g+"/truss?u=0&v=1", nil, http.StatusOK)
		if !strings.Contains(string(body), `"truss":4`) {
			t.Fatalf("graph %s unavailable after the other shard died: %.100s", g, body)
		}
		if k, ok, err := sr.Graph(g).TrussNumber(ctx, 0, 1); err != nil || !ok || k != 4 {
			t.Fatalf("router read of %s after shard B died: truss=%d found=%v err=%v", g, k, ok, err)
		}
	}
	getBody(baseC, "/v1/graphs/"+owned["b"][0]+"/truss?u=0&v=1", nil, http.StatusBadGateway)
	if up := scrape(baseC).Value("truss_cluster_shard_up", "shard", "b"); up != 0 {
		t.Fatalf("coordinator still reports dead shard b up=%v", up)
	}
}
