package truss_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmd compiles one of the repository's binaries into dir and returns
// its path.
func buildCmd(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Env = os.Environ()
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func runCmd(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

// TestCLIPipeline drives the three user-facing binaries end to end:
// generate a graph, inspect it, decompose it with every algorithm, render
// it, and check the outputs agree.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped with -short")
	}
	dir := t.TempDir()
	graphgen := buildCmd(t, dir, "graphgen")
	graphstat := buildCmd(t, dir, "graphstat")
	trussd := buildCmd(t, dir, "trussd")

	gpath := filepath.Join(dir, "g.txt")
	out := runCmd(t, graphgen, "-model", "community", "-blocks", "12", "-blocksize", "10",
		"-pin", "0.7", "-seed", "5", "-out", gpath)
	if !strings.Contains(out, "wrote") {
		t.Fatalf("graphgen output: %s", out)
	}

	out = runCmd(t, graphstat, "-in", gpath, "-core")
	if !strings.Contains(out, "kmax:") || !strings.Contains(out, "cmax-core:") {
		t.Fatalf("graphstat output: %s", out)
	}
	// Extract kmax for cross-checking trussd runs.
	var kmaxLine string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "kmax:") {
			kmaxLine = strings.TrimSpace(strings.TrimPrefix(line, "kmax:"))
		}
	}
	if kmaxLine == "" {
		t.Fatalf("no kmax in graphstat output: %s", out)
	}

	for _, algo := range []string{"inmem", "baseline", "bottomup", "topdown", "mr"} {
		out = runCmd(t, trussd, "-in", gpath, "-algo", algo, "-v")
		if !strings.Contains(out, "kmax:       "+kmaxLine) {
			t.Fatalf("algo %s: kmax mismatch (want %s):\n%s", algo, kmaxLine, out)
		}
	}

	// Per-edge output and DOT rendering.
	classes := filepath.Join(dir, "classes.txt")
	dot := filepath.Join(dir, "g.dot")
	out = runCmd(t, trussd, "-in", gpath, "-algo", "inmem",
		"-out", classes, "-dot", dot, "-communities", "4")
	if !strings.Contains(out, "communities") {
		t.Fatalf("missing communities output: %s", out)
	}
	cdata, err := os.ReadFile(classes)
	if err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(strings.TrimSpace(string(cdata)), "\n")) < 100 {
		t.Fatalf("classes file too small:\n%.200s", cdata)
	}
	ddata, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(ddata), "graph ") {
		t.Fatal("dot file malformed")
	}

	// Dataset-analog generation (quick variant for speed).
	apath := filepath.Join(dir, "p2p.bin")
	runCmd(t, graphgen, "-dataset", "P2P", "-quick", "-out", apath)
	out = runCmd(t, graphstat, "-in", apath)
	if !strings.Contains(out, "|E|:") {
		t.Fatalf("graphstat on analog: %s", out)
	}

	// Error handling: bad flags exit non-zero.
	if _, err := exec.Command(trussd, "-in", gpath, "-algo", "nope").CombinedOutput(); err == nil {
		t.Fatal("unknown algorithm should fail")
	}
	if _, err := exec.Command(graphgen, "-out", filepath.Join(dir, "x.txt")).CombinedOutput(); err == nil {
		t.Fatal("graphgen without model should fail")
	}
	if _, err := exec.Command(graphstat, "-in", filepath.Join(dir, "missing.txt")).CombinedOutput(); err == nil {
		t.Fatal("graphstat on missing file should fail")
	}
}
