package truss_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
)

// buildCmd compiles one of the repository's binaries into dir and returns
// its path.
func buildCmd(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Env = os.Environ()
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func runCmd(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

// TestCLIPipeline drives the three user-facing binaries end to end:
// generate a graph, inspect it, decompose it with every algorithm, render
// it, and check the outputs agree.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped with -short")
	}
	dir := t.TempDir()
	graphgen := buildCmd(t, dir, "graphgen")
	graphstat := buildCmd(t, dir, "graphstat")
	trussd := buildCmd(t, dir, "trussd")

	gpath := filepath.Join(dir, "g.txt")
	out := runCmd(t, graphgen, "-model", "community", "-blocks", "12", "-blocksize", "10",
		"-pin", "0.7", "-seed", "5", "-out", gpath)
	if !strings.Contains(out, "wrote") {
		t.Fatalf("graphgen output: %s", out)
	}

	out = runCmd(t, graphstat, "-in", gpath, "-core")
	if !strings.Contains(out, "kmax:") || !strings.Contains(out, "cmax-core:") {
		t.Fatalf("graphstat output: %s", out)
	}
	// Extract kmax for cross-checking trussd runs.
	var kmaxLine string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "kmax:") {
			kmaxLine = strings.TrimSpace(strings.TrimPrefix(line, "kmax:"))
		}
	}
	if kmaxLine == "" {
		t.Fatalf("no kmax in graphstat output: %s", out)
	}

	for _, algo := range []string{"inmem", "baseline", "bottomup", "topdown", "mr"} {
		out = runCmd(t, trussd, "-in", gpath, "-algo", algo, "-v")
		if !strings.Contains(out, "kmax:       "+kmaxLine) {
			t.Fatalf("algo %s: kmax mismatch (want %s):\n%s", algo, kmaxLine, out)
		}
	}

	// Per-edge output and DOT rendering.
	classes := filepath.Join(dir, "classes.txt")
	dot := filepath.Join(dir, "g.dot")
	out = runCmd(t, trussd, "-in", gpath, "-algo", "inmem",
		"-out", classes, "-dot", dot, "-communities", "4")
	if !strings.Contains(out, "communities") {
		t.Fatalf("missing communities output: %s", out)
	}
	cdata, err := os.ReadFile(classes)
	if err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(strings.TrimSpace(string(cdata)), "\n")) < 100 {
		t.Fatalf("classes file too small:\n%.200s", cdata)
	}
	ddata, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(ddata), "graph ") {
		t.Fatal("dot file malformed")
	}

	// Dataset-analog generation (quick variant for speed).
	apath := filepath.Join(dir, "p2p.bin")
	runCmd(t, graphgen, "-dataset", "P2P", "-quick", "-out", apath)
	out = runCmd(t, graphstat, "-in", apath)
	if !strings.Contains(out, "|E|:") {
		t.Fatalf("graphstat on analog: %s", out)
	}

	// Error handling: bad flags exit non-zero.
	if _, err := exec.Command(trussd, "-in", gpath, "-algo", "nope").CombinedOutput(); err == nil {
		t.Fatal("unknown algorithm should fail")
	}
	if _, err := exec.Command(graphgen, "-out", filepath.Join(dir, "x.txt")).CombinedOutput(); err == nil {
		t.Fatal("graphgen without model should fail")
	}
	if _, err := exec.Command(graphstat, "-in", filepath.Join(dir, "missing.txt")).CombinedOutput(); err == nil {
		t.Fatal("graphstat on missing file should fail")
	}
}

// startServe launches a trussd serve process and returns its address and
// a stopper (interrupt when graceful, SIGKILL otherwise).
func startServe(t *testing.T, trussd string, args ...string) (addr string, stop func(graceful bool)) {
	t.Helper()
	cmd := exec.Command(trussd, append([]string{"serve", "-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			addr = strings.TrimSpace(line[i+len("listening on "):])
			break
		}
	}
	if addr == "" {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("server never reported its listen address")
	}
	go io.Copy(io.Discard, stderr)
	return addr, func(graceful bool) {
		if graceful {
			cmd.Process.Signal(os.Interrupt)
		} else {
			cmd.Process.Kill()
		}
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	}
}

// TestServeDurableRestart kills a trussd serve process (no graceful
// shutdown) after mutating a graph over HTTP, restarts it on the same
// -data-dir with no -load flags, and expects the graph back at the
// pre-crash version with the mutated truss numbers — recovered from
// snapshot + WAL, not recomputed from any input file.
func TestServeDurableRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped with -short")
	}
	dir := t.TempDir()
	trussd := buildCmd(t, dir, "trussd")
	dataDir := filepath.Join(dir, "state")

	gpath := filepath.Join(dir, "square.txt")
	// A triangle plus a pendant: truss(0,1) = 3.
	if err := os.WriteFile(gpath, []byte("0 1\n1 2\n0 2\n2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	getJSON := func(addr, path string, want int) map[string]any {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, want)
		}
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return body
	}

	addr, stop := startServe(t, trussd, "-data-dir", dataDir, "-load", "g="+gpath, "-wait")
	// Complete K4 over HTTP: truss(0,1) becomes 4 at version 2.
	resp, err := http.Post("http://"+addr+"/v1/graphs/g/edges", "application/json",
		strings.NewReader(`{"edges":[[0,3],[1,3]]}`))
	if err != nil {
		t.Fatal(err)
	}
	var mut map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&mut); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || mut["version"] != float64(2) {
		t.Fatalf("mutation: status %d body %v", resp.StatusCode, mut)
	}
	stop(false) // crash: no graceful shutdown, the WAL is all that survives

	addr, stop = startServe(t, trussd, "-data-dir", dataDir)
	info := getJSON(addr, "/v1/graphs/g", http.StatusOK)
	if info["state"] != string("ready") || info["version"] != float64(2) || info["edges"] != float64(6) {
		t.Fatalf("recovered info = %v", info)
	}
	if body := getJSON(addr, "/v1/graphs/g/truss?u=0&v=1", http.StatusOK); body["truss"] != float64(4) {
		t.Fatalf("recovered truss(0,1) = %v", body)
	}
	// And the recovered graph keeps accepting mutations.
	req, _ := http.NewRequest(http.MethodDelete, "http://"+addr+"/v1/graphs/g/edges",
		strings.NewReader(`{"edges":[[1,3]]}`))
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var dmut map[string]any
	json.NewDecoder(dresp.Body).Decode(&dmut)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK || dmut["version"] != float64(3) {
		t.Fatalf("post-recovery mutation: status %d body %v", dresp.StatusCode, dmut)
	}
	if body := getJSON(addr, "/v1/graphs/g/truss?u=0&v=1", http.StatusOK); body["truss"] != float64(3) {
		t.Fatalf("post-recovery truss(0,1) = %v", body)
	}

	// metricValue scrapes one exact series line off /metrics.
	metricValue := func(addr, series string) string {
		t.Helper()
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(string(raw), "\n") {
			if strings.HasPrefix(line, series+" ") {
				return strings.TrimSpace(strings.TrimPrefix(line, series))
			}
		}
		return ""
	}

	// The crash left the K4 WAL record behind, so this life patched it
	// over the mapped snapshot — no re-peel — then compacted.
	if got := metricValue(addr, `truss_restart_path_total{path="v2-replay"}`); got != "1" {
		t.Fatalf(`restart_path{v2-replay} = %q, want "1"`, got)
	}
	stop(true)

	// Third life: the DELETE above left one more WAL record; replaying
	// it folds the registry to a bare snapshot.
	addr, stop = startServe(t, trussd, "-data-dir", dataDir)
	if got := metricValue(addr, `truss_restart_path_total{path="v2-replay"}`); got != "1" {
		t.Fatalf(`second restart_path{v2-replay} = %q, want "1"`, got)
	}
	stop(true)

	// Fourth life: nothing but the index snapshot on disk. The server
	// maps it and serves — zero replay, zero rebuild — and says so.
	addr, stop = startServe(t, trussd, "-data-dir", dataDir)
	defer stop(true)
	if body := getJSON(addr, "/v1/graphs/g/truss?u=0&v=1", http.StatusOK); body["truss"] != float64(3) {
		t.Fatalf("mapped truss(0,1) = %v", body)
	}
	if got := metricValue(addr, `truss_restart_path_total{path="v2-open"}`); got != "1" {
		t.Fatalf(`restart_path{v2-open} = %q, want "1"`, got)
	}
	if got := metricValue(addr, `truss_snapshot_format_version{graph="g"}`); got != "2" {
		t.Fatalf(`snapshot_format_version{g} = %q, want "2"`, got)
	}
	if got := metricValue(addr, "truss_indexfile_mapped_bytes"); got == "" || got == "0" {
		t.Fatalf("truss_indexfile_mapped_bytes = %q, want > 0", got)
	}
}

// TestServeCrashMidFlushHonorsAcks is the crash half of the group-commit
// contract: concurrent writers hammer single-edge POSTs while the server
// is SIGKILLed mid-storm — some flushes die between WAL append and
// response, some between fsync and ack. Whatever the kill point, every
// mutation the server ACKNOWLEDGED must survive the restart at or above
// its acked version; unacked mutations may or may not (both are
// correct).
func TestServeCrashMidFlushHonorsAcks(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped with -short")
	}
	dir := t.TempDir()
	trussd := buildCmd(t, dir, "trussd")
	dataDir := filepath.Join(dir, "state")

	gpath := filepath.Join(dir, "tri.txt")
	if err := os.WriteFile(gpath, []byte("0 1\n1 2\n0 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	addr, stop := startServe(t, trussd, "-data-dir", dataDir, "-load", "g="+gpath, "-wait")

	type ack struct {
		u, v    uint32
		version uint64
	}
	var (
		mu    sync.Mutex
		acked []ack
	)
	var wg sync.WaitGroup
	killed := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-killed:
					return
				default:
				}
				u, v := uint32(100+w*1000+i), uint32(200+w*1000+i)
				resp, err := http.Post("http://"+addr+"/v1/graphs/g/edges", "application/json",
					strings.NewReader(fmt.Sprintf(`{"edges":[[%d,%d]]}`, u, v)))
				if err != nil {
					return // the kill landed mid-request: this one was never acked
				}
				var body map[string]any
				decErr := json.NewDecoder(resp.Body).Decode(&body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || decErr != nil {
					return
				}
				mu.Lock()
				acked = append(acked, ack{u, v, uint64(body["version"].(float64))})
				mu.Unlock()
			}
		}(w)
	}
	// Let the storm build up real group commits, then kill without mercy.
	for {
		mu.Lock()
		n := len(acked)
		mu.Unlock()
		if n >= 64 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop(false) // SIGKILL mid-storm
	close(killed)
	wg.Wait()

	mu.Lock()
	var maxAcked uint64
	for _, a := range acked {
		if a.version > maxAcked {
			maxAcked = a.version
		}
	}
	t.Logf("%d acked mutations, max acked version %d", len(acked), maxAcked)
	mu.Unlock()

	addr, stop = startServe(t, trussd, "-data-dir", dataDir)
	defer stop(true)
	resp, err := http.Get("http://" + addr + "/v1/graphs/g")
	if err != nil {
		t.Fatal(err)
	}
	var info map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info["state"] != "ready" {
		t.Fatalf("recovered state = %v", info)
	}
	if got := uint64(info["version"].(float64)); got < maxAcked {
		t.Fatalf("recovered version %d < max acked version %d: acked work lost", got, maxAcked)
	}
	for _, a := range acked {
		resp, err := http.Get(fmt.Sprintf("http://%s/v1/graphs/g/truss?u=%d&v=%d", addr, a.u, a.v))
		if err != nil {
			t.Fatal(err)
		}
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if body["found"] != true {
			t.Fatalf("edge (%d,%d) acked at version %d lost in the crash", a.u, a.v, a.version)
		}
	}
}

// TestServeFirehose drives the NDJSON streaming endpoint against a real
// process: per-chunk acks arrive in order, the summary reconciles, and
// the streamed edges are queryable (and durable across a graceful
// restart).
func TestServeFirehose(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped with -short")
	}
	dir := t.TempDir()
	trussd := buildCmd(t, dir, "trussd")
	dataDir := filepath.Join(dir, "state")
	gpath := filepath.Join(dir, "tri.txt")
	if err := os.WriteFile(gpath, []byte("0 1\n1 2\n0 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	addr, stop := startServe(t, trussd, "-data-dir", dataDir, "-load", "g="+gpath, "-wait")

	var b strings.Builder
	const n = 1500 // > 2 chunks at the server's 512-record chunking
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `{"u":%d,"v":%d}`+"\n", 10+i, 11+i)
	}
	b.WriteString(`{"op":"del","u":10,"v":11}` + "\n")
	resp, err := http.Post("http://"+addr+"/v1/graphs/g/edges:stream",
		"application/x-ndjson", strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("firehose status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	var lines []map[string]any
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad ack line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	resp.Body.Close()
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) < 4 { // >= 3 chunk acks + summary
		t.Fatalf("expected chunked acks, got %d lines", len(lines))
	}
	sum := lines[len(lines)-1]
	if sum["done"] != true || sum["ok"] != true || int(sum["accepted"].(float64)) != n+1 {
		t.Fatalf("summary = %v", sum)
	}
	var last uint64
	for _, ln := range lines[:len(lines)-1] {
		if ln["ok"] != true {
			t.Fatalf("chunk failed: %v", ln)
		}
		if v := uint64(ln["version"].(float64)); v < last {
			t.Fatalf("acks out of order: %d after %d", v, last)
		} else {
			last = v
		}
	}

	check := func(addr string) {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s/v1/graphs/g/truss?u=%d&v=%d", addr, 10+n-1, 11+n-1))
		if err != nil {
			t.Fatal(err)
		}
		var body map[string]any
		json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if body["found"] != true {
			t.Fatalf("last streamed edge missing: %v", body)
		}
		resp, err = http.Get("http://" + addr + "/v1/graphs/g/truss?u=10&v=11")
		if err != nil {
			t.Fatal(err)
		}
		body = map[string]any{}
		json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if body["found"] == true {
			t.Fatal("deleted edge still present")
		}
	}
	check(addr)
	stop(true)

	// The firehose's acks were group commits: everything survives restart.
	addr, stop = startServe(t, trussd, "-data-dir", dataDir)
	defer stop(true)
	check(addr)
}

// TestServeEndToEnd starts `trussd serve` as a real process, preloads the
// paper's running example, and exercises each query endpoint over HTTP.
func TestServeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped with -short")
	}
	dir := t.TempDir()
	trussd := buildCmd(t, dir, "trussd")

	// Write the paper's Figure 2 example as a SNAP file.
	gpath := filepath.Join(dir, "paper.txt")
	var sb strings.Builder
	sb.WriteString("# paper example\n")
	for _, e := range gen.PaperExample().Edges() {
		fmt.Fprintf(&sb, "%d %d\n", e.U, e.V)
	}
	if err := os.WriteFile(gpath, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(trussd, "serve", "-addr", "127.0.0.1:0", "-load", "paper="+gpath, "-wait")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	}()

	// The server logs "listening on <addr>" once the socket is bound.
	var addr string
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			addr = strings.TrimSpace(line[i+len("listening on "):])
			break
		}
	}
	if addr == "" {
		t.Fatalf("server never reported its listen address")
	}
	go io.Copy(io.Discard, stderr) // keep the pipe drained

	get := func(path string) map[string]any {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return body
	}

	if body := get("/healthz"); body["ok"] != true {
		t.Fatalf("healthz = %v", body)
	}
	// Edge (0,1) is in the 5-class (the {a..e} clique of Example 2).
	if body := get("/v1/graphs/paper/truss?u=0&v=1"); body["truss"] != float64(5) {
		t.Fatalf("truss(0,1) = %v", body)
	}
	// Its 5-truss community covers exactly vertices 0..4.
	body := get("/v1/graphs/paper/community?u=0&v=1&k=5")
	if vs, ok := body["vertices"].([]any); !ok || len(vs) != 5 {
		t.Fatalf("community(0,1,5) = %v", body)
	}
	// Histogram matches |Phi_5| = 10, and the top class is k=5.
	hist := get("/v1/graphs/paper/histogram")
	classes, _ := hist["classes"].(map[string]any)
	if classes["5"] != float64(10) {
		t.Fatalf("histogram = %v", hist)
	}
	top := get("/v1/graphs/paper/topclasses?t=1")
	if cs, ok := top["classes"].([]any); !ok || len(cs) != 1 ||
		cs[0].(map[string]any)["k"] != float64(5) {
		t.Fatalf("topclasses = %v", top)
	}
}

// TestQueryCLI drives `trussd query` (built on the client package)
// against a real `trussd serve` process: single lookups, a batched
// lookup round-trip, histogram, top classes, communities, and the
// NDJSON edge stream.
func TestQueryCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped with -short")
	}
	dir := t.TempDir()
	trussd := buildCmd(t, dir, "trussd")

	gpath := filepath.Join(dir, "paper.txt")
	var sb strings.Builder
	for _, e := range gen.PaperExample().Edges() {
		fmt.Fprintf(&sb, "%d %d\n", e.U, e.V)
	}
	if err := os.WriteFile(gpath, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	addr, stop := startServe(t, trussd, "-load", "paper="+gpath, "-wait")
	defer stop(true)
	server := "http://" + addr

	query := func(args ...string) string {
		t.Helper()
		return runCmd(t, trussd, append([]string{"query", "-server", server, "-graph", "paper"}, args...)...)
	}

	// One edge: (0,1) is in the paper's 5-clique.
	if out := query("-truss", "0,1"); !strings.Contains(out, "truss(0,1) = 5") {
		t.Fatalf("-truss output: %q", out)
	}
	// A non-edge is reported, not an error.
	if out := query("-truss", "0,11"); !strings.Contains(out, "not in graph") {
		t.Fatalf("-truss miss output: %q", out)
	}

	// Batched lookup: every known edge plus one miss, one round-trip.
	phi := gen.PaperExamplePhi()
	var pairs strings.Builder
	pairs.WriteString("# batch\n")
	for key := range phi {
		fmt.Fprintf(&pairs, "%d %d\n", uint32(key>>32), uint32(key))
	}
	pairs.WriteString("0 11\n")
	bpath := filepath.Join(dir, "pairs.txt")
	if err := os.WriteFile(bpath, []byte(pairs.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(query("-batch", bpath)), "\n")
	if len(lines) != len(phi)+1 {
		t.Fatalf("-batch returned %d lines, want %d", len(lines), len(phi)+1)
	}
	misses := 0
	for _, line := range lines {
		fields := strings.Fields(line)
		if len(fields) != 3 {
			t.Fatalf("-batch line %q", line)
		}
		if fields[2] == "-" {
			misses++
		}
	}
	if misses != 1 {
		t.Fatalf("-batch reported %d misses, want 1", misses)
	}

	// Histogram and top classes match Example 2.
	if out := query("-histogram"); !strings.Contains(out, "|Phi_5| = 10") {
		t.Fatalf("-histogram output: %q", out)
	}
	if out := query("-top", "1"); strings.TrimSpace(out) != "k=5\tsize=10" {
		t.Fatalf("-top output: %q", out)
	}

	// Communities at k=3 (the example has two 3-truss communities).
	if out := query("-communities", "3"); !strings.Contains(out, "3-truss communities:") {
		t.Fatalf("-communities output: %q", out)
	}

	// Edge streaming: the 5-truss has exactly 10 edges, all with phi 5.
	// (runCmd merges stderr, so drop the "streamed N edges" status line.)
	out := strings.TrimSpace(query("-edges", "5"))
	var elines []string
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "streamed") {
			elines = append(elines, line)
		}
	}
	if len(elines) != 10 {
		t.Fatalf("-edges 5 streamed %d lines, want 10:\n%s", len(elines), out)
	}
	for _, line := range elines {
		if !strings.HasSuffix(line, "\t5") {
			t.Fatalf("-edges 5 line %q", line)
		}
	}
}

// TestIndexCLI drives the offline snapshot tooling: build an indexfile
// from a graph file, inspect its section table, verify its checksums,
// and make sure verify actually fails once a byte rots.
func TestIndexCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped with -short")
	}
	dir := t.TempDir()
	trussd := buildCmd(t, dir, "trussd")

	gpath := filepath.Join(dir, "g.txt")
	var sb strings.Builder
	for _, e := range gen.PaperExample().Edges() {
		fmt.Fprintf(&sb, "%d %d\n", e.U, e.V)
	}
	if err := os.WriteFile(gpath, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	tix := filepath.Join(dir, "g.tix")
	out := runCmd(t, trussd, "index", "build", "-in", gpath, "-out", tix)
	if !strings.Contains(out, "kmax=5") {
		t.Fatalf("index build output: %s", out)
	}

	out = runCmd(t, trussd, "index", "inspect", tix)
	for _, want := range []string{"format:        v1", "kmax=5", "csr-adjv", "leveldir", "source:        " + gpath} {
		if !strings.Contains(out, want) {
			t.Fatalf("index inspect output missing %q:\n%s", want, out)
		}
	}

	out = runCmd(t, trussd, "index", "verify", tix)
	if !strings.Contains(out, "ok (") {
		t.Fatalf("index verify output: %s", out)
	}

	// Rot a payload byte: inspect (open-time checks only) still works,
	// verify must fail.
	raw, err := os.ReadFile(tix)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-5] ^= 0x40
	if err := os.WriteFile(tix, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(trussd, "index", "verify", tix).CombinedOutput(); err == nil {
		t.Fatalf("verify accepted a rotted file:\n%s", out)
	} else if !strings.Contains(string(out), "corrupt") {
		t.Fatalf("verify error does not mention corruption:\n%s", out)
	}

	// Usage errors exit non-zero.
	if _, err := exec.Command(trussd, "index").CombinedOutput(); err == nil {
		t.Fatal("bare `trussd index` should fail")
	}
	if _, err := exec.Command(trussd, "index", "frobnicate").CombinedOutput(); err == nil {
		t.Fatal("unknown subcommand should fail")
	}
}
