package truss_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	truss "repro"
	"repro/internal/gen"
)

// phiMap collects a decomposition's edge → truss-number map.
func phiMap(t *testing.T, d truss.Decomposition) map[uint64]int32 {
	t.Helper()
	out := map[uint64]int32{}
	err := d.Edges(func(u, v uint32, phi int32) error {
		out[truss.Edge{U: u, V: v}.Key()] = phi
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestOpenUpdateDifferential mutates an Open decomposition through random
// batches and diffs it against a fresh Run of the mutated graph after
// every step — the public-API half of the exactness contract, across
// add-only, delete-only and mixed workloads.
func TestOpenUpdateDifferential(t *testing.T) {
	for _, tc := range []struct {
		name         string
		nAdds, nDels int
	}{
		{"mixed", 4, 4},
		{"add-only", 6, 0},
		{"delete-only", 0, 6},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctx := context.Background()
			g := gen.ErdosRenyi(50, 260, 17)
			d, err := truss.Open(ctx, truss.FromGraph(g))
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()

			rng := rand.New(rand.NewSource(17))
			cur := g
			for step := 0; step < 10; step++ {
				var adds, dels []truss.Edge
				for i := 0; i < tc.nAdds; i++ {
					adds = append(adds, truss.Edge{U: uint32(rng.Intn(55)), V: uint32(rng.Intn(55))})
				}
				for i := 0; i < tc.nDels && cur.NumEdges() > 0; i++ {
					dels = append(dels, cur.Edges()[rng.Intn(cur.NumEdges())])
				}
				if _, err := d.Update(ctx, adds, dels); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				res, _ := truss.AsInMemory(d)
				cur = res.G

				fresh, err := truss.Run(ctx, truss.FromGraph(cur))
				if err != nil {
					t.Fatal(err)
				}
				want := phiMap(t, fresh)
				got := phiMap(t, d)
				fresh.Close()
				if len(got) != len(want) {
					t.Fatalf("step %d: %d edges, want %d", step, len(got), len(want))
				}
				for k, p := range want {
					if got[k] != p {
						t.Fatalf("step %d: phi(%v) = %d, want %d", step, truss.EdgeFromKey(k), got[k], p)
					}
				}
				if d.KMax() != fresh.KMax() {
					t.Fatalf("step %d: kmax %d, want %d", step, d.KMax(), fresh.KMax())
				}
			}
		})
	}
}

// TestUpdateFallback drives the WithMaxRegion knob to force the full
// recompute path through the public API.
func TestUpdateFallback(t *testing.T) {
	ctx := context.Background()
	d, err := truss.Open(ctx, truss.FromGraph(gen.ErdosRenyi(40, 200, 3)),
		truss.WithMaxRegion(1e-9))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	st, err := d.Update(ctx, []truss.Edge{{U: 0, V: 1}, {U: 41, V: 42}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !st.FellBack {
		t.Fatalf("stats = %+v, want fallback", st)
	}
}

// TestUpdateUnsupportedEngines checks the external and MapReduce
// decompositions refuse Update with the sentinel error, and that Open
// refuses those engines outright.
func TestUpdateUnsupportedEngines(t *testing.T) {
	ctx := context.Background()
	g := gen.PaperExample()
	for _, eng := range []truss.Engine{truss.EngineBottomUp, truss.EngineTopDown, truss.EngineMapReduce} {
		d, err := truss.Run(ctx, truss.FromGraph(g),
			truss.WithEngine(eng), truss.WithTempDir(t.TempDir()))
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		if _, err := d.Update(ctx, []truss.Edge{{U: 0, V: 99}}, nil); !errors.Is(err, truss.ErrUpdateUnsupported) {
			t.Fatalf("%v: Update err = %v, want ErrUpdateUnsupported", eng, err)
		}
		d.Close()

		if _, err := truss.Open(ctx, truss.FromGraph(g), truss.WithEngine(eng)); err == nil {
			t.Fatalf("Open accepted engine %v", eng)
		}
	}
}

// TestOpenFromFile exercises Open over a file source and a pure-deletion
// update.
func TestOpenFromFile(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	path := dir + "/g.txt"
	g := gen.PaperExample()
	if err := truss.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	d, err := truss.Open(ctx, truss.FromFile(path), truss.WithEngine(truss.EngineParallel))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	before := d.NumEdges()
	st, err := d.Update(ctx, nil, []truss.Edge{g.Edge(0)})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumEdges() != before-1 {
		t.Fatalf("m = %d after deletion, want %d", d.NumEdges(), before-1)
	}
	if st.Changed == 0 {
		t.Fatalf("stats = %+v, want changed edges", st)
	}
}
