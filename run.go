package truss

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/embu"
	"repro/internal/emtd"
	"repro/internal/mapreduce"
	"repro/internal/obs"
)

// Run computes the truss decomposition of src with the engine selected by
// opts (EngineInMem when none is given) and returns the result behind the
// common Decomposition interface. It is the single entry point to all five
// of the paper's algorithms plus the parallel extension:
//
//	d, err := truss.Run(ctx, truss.FromFile("lj.txt"),
//	    truss.WithEngine(truss.EngineBottomUp),
//	    truss.WithBudget(1<<24))
//	defer d.Close()
//
// The context is honored throughout: peeling levels in the in-memory
// engines, partition rounds and spool passes in the external engines, and
// fixpoint passes in the MapReduce engine all poll it, so cancellation and
// deadlines abort a run promptly with ctx.Err(). WithProgress observes the
// run; WithStats accounts its disk traffic.
func Run(ctx context.Context, src Source, opts ...Option) (Decomposition, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if src == nil {
		return nil, errors.New("truss: Run requires a non-nil Source")
	}
	var cfg runConfig
	for _, opt := range opts {
		if opt != nil {
			opt(&cfg)
		}
	}
	runner, ok := engines[cfg.engine]
	if !ok {
		return nil, fmt.Errorf("truss: unknown engine %v", cfg.engine)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg.emit(StageLoad, 0)
	if cfg.stats != nil {
		cfg.statsReadBase = cfg.stats.BytesRead()
		cfg.statsWriteBase = cfg.stats.BytesWritten()
	}
	start := time.Now()
	d, err := runner(ctx, src, &cfg)
	recordRun(&cfg, start, err)
	if err != nil {
		return nil, fmt.Errorf("truss: %v engine on %s: %w", cfg.engine, src.describe(), err)
	}
	cfg.emit(StageDone, d.KMax())
	return d, nil
}

// recordRun reports one Run outcome into the process-default observability
// registry — the same registry a trussd server's /metrics exposes, so
// embedded library runs and served traffic land on one dashboard. When the
// run accumulated I/O stats (WithStats), the disk traffic is recorded too:
// the gio.Stats counters are cumulative, so the delta since Run entry is
// what gets added. The delta is exact for the common patterns (one stats
// object per run, or sequential runs sharing one); concurrent runs sharing
// a single IOStats see each other's interleaved traffic in their deltas —
// give concurrent runs their own stats objects for per-run attribution.
func recordRun(cfg *runConfig, start time.Time, err error) {
	reg := obs.Default()
	status := "ok"
	if err != nil {
		status = "error"
	}
	engine := cfg.engine.String()
	reg.Counter("truss_run_total", "truss.Run invocations by engine and outcome.",
		"engine", engine, "status", status).Inc()
	reg.Histogram("truss_run_seconds", "truss.Run end-to-end duration by engine.",
		obs.WideBuckets, "engine", engine).Observe(time.Since(start).Seconds())
	if cfg.stats != nil {
		reg.Counter("truss_run_io_read_bytes_total", "Bytes read from disk by runs under WithStats.",
			"engine", engine).Add(cfg.stats.BytesRead() - cfg.statsReadBase)
		reg.Counter("truss_run_io_written_bytes_total", "Bytes written to disk by runs under WithStats.",
			"engine", engine).Add(cfg.stats.BytesWritten() - cfg.statsWriteBase)
	}
}

// recordPKT reports the shape of one PKT run (rounds, frontier sizes,
// kernel dispatch mix) into the default registry, alongside the Run
// counters — the numbers that show whether the bulk-synchronous machinery
// actually parallelized (few huge frontiers) or degenerated to lock-step
// (many tiny ones).
func recordPKT(s *core.PKTStats) {
	reg := obs.Default()
	reg.Counter("truss_pkt_runs_total", "PKT bulk-synchronous decompositions completed.").Inc()
	reg.Counter("truss_pkt_levels_total", "Populated peeling levels visited by PKT runs.").Add(int64(s.Levels))
	reg.Counter("truss_pkt_rounds_total", "Bulk-synchronous sub-rounds (barriers) executed by PKT runs.").Add(int64(s.Rounds))
	reg.Counter("truss_pkt_frontier_edges_total", "Edges peeled through PKT frontiers.").Add(int64(s.FrontierEdges))
	reg.Counter("truss_pkt_kernel_dispatch_total", "Adaptive triangle-kernel strategy choices by PKT runs.",
		"kernel", "merge").Add(s.MergeDispatch)
	reg.Counter("truss_pkt_kernel_dispatch_total", "Adaptive triangle-kernel strategy choices by PKT runs.",
		"kernel", "probe").Add(s.ProbeDispatch)
	reg.Gauge("truss_pkt_peak_frontier_edges", "Largest sub-round frontier of the most recent PKT run.").
		Set(int64(s.PeakFrontier))
}

// engineRunner is one pluggable decomposition engine: it consumes the
// source the way it prefers (materialize or stream) and returns the
// adapted result.
type engineRunner func(ctx context.Context, src Source, cfg *runConfig) (Decomposition, error)

// engines is the registry Run dispatches on. Each of the paper's
// algorithms is one entry; engine choice is a tuning knob, not a separate
// API.
var engines = map[Engine]engineRunner{
	EngineInMem:     runInMemory(EngineInMem),
	EngineBaseline:  runInMemory(EngineBaseline),
	EngineParallel:  runInMemory(EngineParallel),
	EngineBottomUp:  runBottomUp,
	EngineTopDown:   runTopDown,
	EngineMapReduce: runMapReduce,
}

// runInMemory builds the runner for the three in-memory peelers.
func runInMemory(eng Engine) engineRunner {
	return func(ctx context.Context, src Source, cfg *runConfig) (Decomposition, error) {
		g, err := src.load(ctx, cfg.stats)
		if err != nil {
			return nil, err
		}
		cfg.emit(StageDecompose, 0)
		hooks := core.Hooks{OnLevel: cfg.levelHook()}
		var res *core.Result
		switch eng {
		case EngineBaseline:
			res, err = core.DecomposeBaselineCtx(ctx, g, hooks)
		case EngineParallel:
			res, err = core.DecomposeParallelCtx(ctx, g, cfg.workers, hooks)
		default:
			res, err = core.DecomposeCtx(ctx, g, hooks)
		}
		if err != nil {
			return nil, err
		}
		if res.PKT != nil {
			recordPKT(res.PKT)
		}
		return &inmemDecomposition{
			eng:       eng,
			res:       res,
			maxRegion: cfg.maxRegion,
			workers:   cfg.workers,
		}, nil
	}
}

// Open is Run for dynamic graphs: it decomposes src with an in-memory
// engine and returns a Decomposition whose Update method is guaranteed to
// work, so the caller can keep it resident and maintain it under edge
// insertions and deletions:
//
//	d, err := truss.Open(ctx, truss.FromFile("graph.txt"))
//	...
//	stats, err := d.Update(ctx, []truss.Edge{{U: 1, V: 9}}, nil)
//
// Options are those of Run; WithMaxRegion tunes when maintenance gives up
// on locality and recomputes. Selecting an engine without incremental
// maintenance (bottomup, topdown, mapreduce) is an error here rather than
// a surprise at the first Update.
func Open(ctx context.Context, src Source, opts ...Option) (Decomposition, error) {
	// Reject the nil source before option processing: falling through to
	// Run's generic check after engine validation would report the wrong
	// entry point.
	if src == nil {
		return nil, errors.New("truss: Open requires a non-nil Source")
	}
	var cfg runConfig
	for _, opt := range opts {
		if opt != nil {
			opt(&cfg)
		}
	}
	switch cfg.engine {
	case EngineInMem, EngineBaseline, EngineParallel:
	default:
		return nil, fmt.Errorf("truss: Open requires an in-memory engine (inmem, baseline, parallel), not %v", cfg.engine)
	}
	return Run(ctx, src, opts...)
}

func runBottomUp(ctx context.Context, src Source, cfg *runConfig) (Decomposition, error) {
	sp, n, err := src.stream(ctx, cfg.tempDir, cfg.budget, cfg.stats)
	if err != nil {
		return nil, err
	}
	defer sp.Remove()
	cfg.emit(StageDecompose, 0)
	res, err := embu.Decompose(ctx, sp, n, cfg.embuConfig())
	if err != nil {
		return nil, err
	}
	return &bottomUpDecomposition{res: res}, nil
}

func runTopDown(ctx context.Context, src Source, cfg *runConfig) (Decomposition, error) {
	sp, n, err := src.stream(ctx, cfg.tempDir, cfg.budget, cfg.stats)
	if err != nil {
		return nil, err
	}
	defer sp.Remove()
	cfg.emit(StageDecompose, 0)
	res, err := emtd.Decompose(ctx, sp, n, cfg.emtdConfig())
	if err != nil {
		return nil, err
	}
	return &topDownDecomposition{res: res}, nil
}

func runMapReduce(ctx context.Context, src Source, cfg *runConfig) (Decomposition, error) {
	g, err := src.load(ctx, cfg.stats)
	if err != nil {
		return nil, err
	}
	cfg.emit(StageDecompose, 0)
	res, err := mapreduce.TrussDecomposeCtx(ctx, g, cfg.levelHook())
	if err != nil {
		return nil, err
	}
	return &mapReduceDecomposition{res: res, n: g.NumVertices()}, nil
}
