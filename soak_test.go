package truss_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	truss "repro"
	"repro/client"
	"repro/internal/cluster"
	"repro/internal/obs"
)

// TestSoakServeStorm is the nightly large-graph soak: generate a
// multi-million-edge R-MAT graph with the real graphgen binary, serve it
// with the real trussd binary, then drive a concurrent query storm
// through the client package and hold the server to its own telemetry —
// every /metrics counter must equal the load actually driven, and with
// the storm's concurrency below -max-inflight not one request may shed.
//
// It runs only with TRUSS_SOAK=1 (the nightly CI workflow sets it):
// minutes of runtime have no place in the PR loop.
func TestSoakServeStorm(t *testing.T) {
	if os.Getenv("TRUSS_SOAK") != "1" {
		t.Skip("soak test: set TRUSS_SOAK=1 to run")
	}
	dir := t.TempDir()
	trussd := buildCmd(t, dir, "trussd")
	graphgen := buildCmd(t, dir, "graphgen")

	// ~2M edges of skewed R-MAT: big enough that the build takes real
	// time and the index sees real pointer-chasing, small enough for a CI
	// runner's memory.
	graphPath := filepath.Join(dir, "soak.bin")
	runCmd(t, graphgen, "-model", "rmat", "-scale", "18", "-factor", "8", "-seed", "7", "-out", graphPath)

	addr, stop := startServe(t, trussd,
		"-load", "soak="+graphPath, "-wait", "-max-inflight", "512")
	defer stop(true)
	base := "http://" + addr

	// -wait returned, so readiness must already hold.
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz after -wait: status %d, want 200", resp.StatusCode)
	}

	cl, err := client.New(base)
	if err != nil {
		t.Fatal(err)
	}
	g := cl.Graph("soak")
	ctx := context.Background()

	// The storm: 32 workers (well below -max-inflight 512), each driving
	// point lookups, batched queries, and histogram reads. Totals are
	// counted client-side and reconciled against the server's counters.
	// A firehose streams mutations through the ingestion pipeline the
	// whole time, so reads and group-committed writes contend for real.
	const workers = 32
	const perWorker = 150
	const streamed = 8192 // unique adds above the R-MAT vertex range
	var trussReqs, queryReqs, histReqs, failures atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var b strings.Builder
		for i := 0; i < streamed; i++ {
			fmt.Fprintf(&b, `{"u":%d,"v":%d}`+"\n", 300000+2*i, 300001+2*i)
		}
		resp, err := http.Post(base+"/v1/graphs/soak/edges:stream",
			"application/x-ndjson", strings.NewReader(b.String()))
		if err != nil {
			t.Errorf("firehose: %v", err)
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("firehose status %d", resp.StatusCode)
			return
		}
		sc := bufio.NewScanner(resp.Body)
		var sum map[string]any
		for sc.Scan() {
			if strings.TrimSpace(sc.Text()) == "" {
				continue
			}
			sum = map[string]any{}
			if err := json.Unmarshal(sc.Bytes(), &sum); err != nil {
				t.Errorf("firehose ack %q: %v", sc.Text(), err)
				return
			}
			if sum["ok"] != true {
				t.Errorf("firehose ack failed: %v", sum)
				return
			}
		}
		if err := sc.Err(); err != nil {
			t.Errorf("firehose read: %v", err)
			return
		}
		if sum == nil || sum["done"] != true || int(sum["accepted"].(float64)) != streamed {
			t.Errorf("firehose summary = %v, want done with %d accepted", sum, streamed)
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				u := uint32((w*perWorker + i) % 250000)
				switch i % 3 {
				case 0:
					if _, _, err := g.TrussNumber(ctx, u, u+1); err != nil {
						failures.Add(1)
						continue
					}
					trussReqs.Add(1)
				case 1:
					pairs := []truss.Edge{{U: u, V: u + 1}, {U: u + 2, V: u + 5}, {U: u % 100, V: u%100 + 3}}
					if _, err := g.TrussNumbers(ctx, pairs); err != nil {
						failures.Add(1)
						continue
					}
					queryReqs.Add(1)
				default:
					if _, err := g.Histogram(ctx); err != nil {
						failures.Add(1)
						continue
					}
					histReqs.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d storm requests failed", failures.Load())
	}

	// Scrape and reconcile. The client retries only on 429/503, and zero
	// sheds below the limit means every counted request hit the wire
	// exactly once — the counters must match to the request.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	samples, err := obs.ParseExposition(mresp.Body)
	if err != nil {
		t.Fatalf("/metrics rejected by strict parser: %v", err)
	}

	checks := []struct {
		name string
		want float64
		got  float64
	}{
		{"shed requests below in-flight limit", 0, samples.Value("truss_http_shed_total")},
		{"point-lookup route counter", float64(trussReqs.Load()),
			samples.Value("truss_http_requests_total", "route", "GET /v1/graphs/{name}/truss", "code", "200")},
		{"batched-query route counter", float64(queryReqs.Load()),
			samples.Value("truss_http_requests_total", "route", "POST /v1/graphs/{name}/query", "code", "200")},
		{"histogram route counter", float64(histReqs.Load()),
			samples.Value("truss_http_requests_total", "route", "GET /v1/graphs/{name}/histogram", "code", "200")},
		{"builds", 1, samples.Value("truss_build_total")},
		{"graphs ready", 1, samples.Value("truss_graphs_ready")},
		// Every streamed record is a unique absent edge, so nothing
		// coalesces away: the pipeline must have applied exactly what the
		// firehose pushed, with zero failed flushes and a drained queue.
		{"ingest submitted", streamed, samples.Value("truss_ingest_submitted_total")},
		{"ingest applied", streamed, samples.Value("truss_ingest_applied_total")},
		{"ingest flush failures", 0, samples.Value("truss_ingest_flush_failures_total")},
		{"ingest queue drained", 0, samples.Value("truss_ingest_queue_depth", "graph", "soak")},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %g, want %g", c.name, c.got, c.want)
		}
	}
	if peeled := samples.Value("truss_build_edges_peeled_total"); peeled < 1e6 {
		t.Errorf("edges peeled = %g, want the multi-million-edge build on the books", peeled)
	}
	lat := samples.Value("truss_http_request_seconds_count", "route", "GET /v1/graphs/{name}/truss")
	if lat != float64(trussReqs.Load()) {
		t.Errorf("latency histogram count = %g, want %d", lat, trussReqs.Load())
	}
	flushes := samples.Value("truss_ingest_flush_seconds_count")
	if flushes < 1 || flushes > streamed {
		t.Errorf("ingest flushes = %g, want in [1, %d]", flushes, streamed)
	}
	fmt.Printf("soak: %d requests served, p-lookup count=%d batch=%d hist=%d, zero sheds; "+
		"%d mutations group-committed in %g flushes\n",
		trussReqs.Load()+queryReqs.Load()+histReqs.Load(),
		trussReqs.Load(), queryReqs.Load(), histReqs.Load(), int64(streamed), flushes)
}

// TestSoakReplicaFleet is the nightly replication soak: one durable
// primary and two followers, all real trussd processes, with an NDJSON
// firehose mutating the primary while a Router fans a concurrent read
// storm across the fleet. At the end the followers must sit at the
// primary's exact version with byte-identical histograms, and the
// replication telemetry on both ends must reconcile: one hydration and
// zero resyncs per follower, zero lag, and per-version record counts
// that add up.
//
// It runs only with TRUSS_SOAK=1 (the nightly CI workflow sets it).
func TestSoakReplicaFleet(t *testing.T) {
	if os.Getenv("TRUSS_SOAK") != "1" {
		t.Skip("soak test: set TRUSS_SOAK=1 to run")
	}
	dir := t.TempDir()
	trussd := buildCmd(t, dir, "trussd")
	graphgen := buildCmd(t, dir, "graphgen")

	graphPath := filepath.Join(dir, "fleet.bin")
	runCmd(t, graphgen, "-model", "rmat", "-scale", "16", "-factor", "8", "-seed", "11", "-out", graphPath)

	paddr, stopPrimary := startServe(t, trussd,
		"-data-dir", filepath.Join(dir, "primary"), "-load", "soak="+graphPath, "-wait")
	defer stopPrimary(true)
	base := "http://" + paddr
	var fbases []string
	for i := 0; i < 2; i++ {
		faddr, stopF := startServe(t, trussd,
			"-data-dir", filepath.Join(dir, fmt.Sprintf("follower%d", i)),
			"-follow", base, "-replica-refresh", "100ms")
		defer stopF(true)
		fbases = append(fbases, "http://"+faddr)
	}

	scrape := func(base string) obs.Samples {
		t.Helper()
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		samples, err := obs.ParseExposition(resp.Body)
		if err != nil {
			t.Fatalf("%s/metrics rejected by strict parser: %v", base, err)
		}
		return samples
	}
	graphInfo := func(base string) map[string]any {
		resp, err := http.Get(base + "/v1/graphs/soak")
		if err != nil {
			return nil
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil
		}
		var info map[string]any
		if json.NewDecoder(resp.Body).Decode(&info) != nil {
			return nil
		}
		return info
	}

	// The firehose: unique absent edges streamed at the primary while the
	// read storm runs against the whole fleet.
	const streamed = 4096
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var b strings.Builder
		for i := 0; i < streamed; i++ {
			fmt.Fprintf(&b, `{"u":%d,"v":%d}`+"\n", 300000+2*i, 300001+2*i)
		}
		resp, err := http.Post(base+"/v1/graphs/soak/edges:stream",
			"application/x-ndjson", strings.NewReader(b.String()))
		if err != nil {
			t.Errorf("firehose: %v", err)
			return
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil || resp.StatusCode != http.StatusOK {
			t.Errorf("firehose: status %d, drain err %v", resp.StatusCode, err)
		}
	}()

	// The read storm rides the Router: reads rotate over the followers
	// and fail over (404 before hydration, 412 behind the floor, dead
	// endpoints) without a single surfaced error; interleaved writes go
	// to the primary and raise the read-your-writes floor.
	router, err := client.NewRouter(base, fbases)
	if err != nil {
		t.Fatal(err)
	}
	rg := router.Graph("soak")
	ctx := context.Background()
	const workers = 16
	const perWorker = 100
	var reads, writes, failures atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				u := uint32((w*perWorker + i) % 60000)
				switch {
				case w == 0 && i%10 == 0:
					// One writer thread salts in router-path mutations:
					// unique edges far above both ranges.
					v := uint32(500000 + 2*(w*perWorker+i))
					if _, err := rg.InsertEdges(ctx, []truss.Edge{{U: v, V: v + 1}}); err != nil {
						failures.Add(1)
						continue
					}
					writes.Add(1)
				case i%2 == 0:
					if _, _, err := rg.TrussNumber(ctx, u, u+1); err != nil {
						failures.Add(1)
						continue
					}
					reads.Add(1)
				default:
					if _, err := rg.Histogram(ctx); err != nil {
						failures.Add(1)
						continue
					}
					reads.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d fleet requests failed", failures.Load())
	}

	// Convergence: both followers reach the primary's final version.
	pinfo := graphInfo(base)
	if pinfo == nil {
		t.Fatal("primary lost the graph")
	}
	finalVersion := pinfo["version"].(float64)
	if finalVersion < 2 {
		t.Fatalf("primary version %g, want the firehose on the books", finalVersion)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for _, fb := range fbases {
		for {
			if info := graphInfo(fb); info != nil && info["version"] == finalVersion {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("follower %s never converged to version %g (at %v)",
					fb, finalVersion, graphInfo(fb)["version"])
			}
			time.Sleep(100 * time.Millisecond)
		}
	}

	// Parity: byte-identical histograms across the fleet at the same
	// version — the bit-identical-answers contract, reconciled end to end.
	histOf := func(base string) string {
		resp, err := http.Get(base + "/v1/graphs/soak/histogram")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s histogram: status %d", base, resp.StatusCode)
		}
		return string(raw)
	}
	want := histOf(base)
	for _, fb := range fbases {
		if got := histOf(fb); got != want {
			t.Fatalf("histogram diverged on %s:\nprimary:  %.200s\nfollower: %.200s", fb, want, got)
		}
	}

	// Telemetry reconciliation. Each follower hydrated exactly once (at
	// snapshot version 1), applied every later version as a record, never
	// resynced, and reports zero lag; the primary served exactly those
	// two hydrations and streamed at least one copy of every record.
	recordsPerFollower := finalVersion - 1
	for _, fb := range fbases {
		fs := scrape(fb)
		checks := []struct {
			name string
			want float64
			got  float64
		}{
			{"hydrations", 1, fs.Value("truss_replica_hydrations_total")},
			{"resyncs", 0, fs.Value("truss_replica_resyncs_total")},
			{"records applied", recordsPerFollower, fs.Value("truss_replica_records_applied_total")},
			{"lag", 0, fs.Value("truss_replica_lag_versions", "graph", "soak")},
			{"applied version", finalVersion, fs.Value("truss_replica_applied_version", "graph", "soak")},
		}
		for _, c := range checks {
			if c.got != c.want {
				t.Errorf("follower %s: %s = %g, want %g", fb, c.name, c.got, c.want)
			}
		}
		if n := fs.Value("truss_replica_hydration_bytes_total"); n <= 0 {
			t.Errorf("follower %s: hydration bytes = %g, want > 0", fb, n)
		}
	}
	ps := scrape(base)
	if n := ps.Value("truss_replication_hydrations_served_total"); n != 2 {
		t.Errorf("primary hydrations served = %g, want 2", n)
	}
	if n := ps.Value("truss_replication_records_streamed_total"); n < 2*recordsPerFollower {
		t.Errorf("primary records streamed = %g, want >= %g", n, 2*recordsPerFollower)
	}
	if n := ps.Value("truss_replication_resyncs_signaled_total"); n != 0 {
		t.Errorf("primary resyncs signaled = %g, want 0", n)
	}
	fmt.Printf("fleet soak: version %g on all three nodes, %d router reads + %d writes, "+
		"%g records per follower\n", finalVersion, reads.Load(), writes.Load(), recordsPerFollower)
}

// TestSoakShardedFleet is the nightly sharded-cluster soak: two trussd
// shard primaries behind a cluster coordinator serve a fleet of graphs
// placed by rendezvous hashing, while a single-node control server
// holds the same graphs. The shard-aware Router drives an identical
// mutation + query workload against both deployments — per-graph
// NDJSON firehoses through the coordinator's duplex proxy, unary
// mutations routed directly to each graph's owning shard, and a
// read storm pinned behind the read-your-writes floor. At the end
// every graph's histogram through the coordinator must be
// byte-identical to the control's: sharding may move graphs around,
// but it must never change an answer.
func TestSoakShardedFleet(t *testing.T) {
	if os.Getenv("TRUSS_SOAK") != "1" {
		t.Skip("soak test: set TRUSS_SOAK=1 to run")
	}
	dir := t.TempDir()
	trussd := buildCmd(t, dir, "trussd")
	graphgen := buildCmd(t, dir, "graphgen")

	// Three seed graphs reused across twelve names: placement is keyed
	// on the graph NAME, so identical payloads land on different shards.
	const graphs = 12
	var seedPaths [3]string
	for i := range seedPaths {
		seedPaths[i] = filepath.Join(dir, fmt.Sprintf("seed%d.bin", i))
		runCmd(t, graphgen, "-model", "rmat", "-scale", "13", "-factor", "8",
			"-seed", fmt.Sprint(21+i), "-out", seedPaths[i])
	}
	names := make([]string, graphs)
	for i := range names {
		names[i] = fmt.Sprintf("fleet%d", i)
	}

	// Ownership is a pure function of shard and graph names, so the
	// per-shard preload lists are computable before any process starts.
	planTopo := &cluster.Topology{Shards: []cluster.Shard{{Name: "a"}, {Name: "b"}}}
	loadArgs := map[string][]string{}
	var controlLoad []string
	for i, g := range names {
		owner, _ := planTopo.Owner(g)
		pair := g + "=" + seedPaths[i%len(seedPaths)]
		loadArgs[owner.Name] = append(loadArgs[owner.Name], "-load", pair)
		controlLoad = append(controlLoad, "-load", pair)
	}
	if len(loadArgs["a"]) == 0 || len(loadArgs["b"]) == 0 {
		t.Fatalf("degenerate placement: %v", loadArgs)
	}

	startShard := func(name string, extra []string) string {
		args := append([]string{"-data-dir", filepath.Join(dir, name), "-wait"}, extra...)
		addr, stop := startServe(t, trussd, args...)
		t.Cleanup(func() { stop(true) })
		return "http://" + addr
	}
	baseA := startShard("shard-a", loadArgs["a"])
	baseB := startShard("shard-b", loadArgs["b"])
	baseControl := startShard("control", controlLoad)

	coordAddr, stopCoord := startTrussd(t, trussd, "coordinator",
		"-shards", "a="+baseA+",b="+baseB)
	defer stopCoord(true)
	baseCoord := "http://" + coordAddr

	// The workload, applied identically to the cluster and the control.
	// Edge IDs are disjoint per graph index so a record misrouted to the
	// wrong graph shows up as a histogram mismatch, not a silent no-op.
	firehoseBody := func(gi int) string {
		var b strings.Builder
		for i := 0; i < 2048; i++ {
			fmt.Fprintf(&b, `{"u":%d,"v":%d}`+"\n", 1000000+gi*100000+2*i, 1000001+gi*100000+2*i)
		}
		return b.String()
	}
	firehose := func(base, g string, body string) error {
		resp, err := http.Post(base+"/v1/graphs/"+g+"/edges:stream",
			"application/x-ndjson", strings.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("firehose %s/%s: status %d", base, g, resp.StatusCode)
		}
		return nil
	}

	router, err := client.NewShardRouter(baseCoord)
	if err != nil {
		t.Fatal(err)
	}
	control, err := client.New(baseControl)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	var failures atomic.Int64
	var reads atomic.Int64
	for gi, g := range names {
		wg.Add(1)
		go func(gi int, g string) {
			defer wg.Done()
			body := firehoseBody(gi)
			// Cluster side: firehose through the coordinator's proxy.
			if err := firehose(baseCoord, g, body); err != nil {
				t.Error(err)
				failures.Add(1)
				return
			}
			// Control side: same records, same protocol.
			if err := firehose(baseControl, g, body); err != nil {
				t.Error(err)
				failures.Add(1)
				return
			}
			// Unary mutations ride the shard-aware Router (owner primary,
			// direct) and a plain client against the control.
			rg := router.Graph(g)
			cg := control.Graph(g)
			for i := 0; i < 32; i++ {
				u := uint32(2000000 + gi*100000 + 2*i)
				edges := []truss.Edge{{U: u, V: u + 1}}
				if _, err := rg.InsertEdges(ctx, edges); err != nil {
					t.Errorf("router insert %s: %v", g, err)
					failures.Add(1)
					return
				}
				if _, err := cg.InsertEdges(ctx, edges); err != nil {
					t.Errorf("control insert %s: %v", g, err)
					failures.Add(1)
					return
				}
				// Reads through the Router sit behind the graph's
				// read-your-writes floor, so they observe this insert.
				if _, _, err := rg.TrussNumber(ctx, u, u+1); err != nil {
					t.Errorf("router read %s: %v", g, err)
					failures.Add(1)
					return
				}
				reads.Add(1)
			}
			if _, err := rg.Histogram(ctx); err != nil {
				t.Errorf("router histogram %s: %v", g, err)
				failures.Add(1)
			}
			reads.Add(1)
		}(gi, g)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d sharded-fleet operations failed", failures.Load())
	}

	// Parity: per-graph histograms through the coordinator byte-identical
	// to the single-node control.
	histOf := func(base, g string) string {
		resp, err := http.Get(base + "/v1/graphs/" + g + "/histogram")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s/%s histogram: status %d", base, g, resp.StatusCode)
		}
		return string(raw)
	}
	for _, g := range names {
		want := histOf(baseControl, g)
		if got := histOf(baseCoord, g); got != want {
			t.Fatalf("graph %s diverged:\ncontrol: %.200s\ncluster: %.200s", g, want, got)
		}
	}

	// Every graph lives on exactly one shard, and the coordinator's
	// merged listing sees them all.
	resp, err := http.Get(baseCoord + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Graphs []struct {
			Name string `json:"name"`
		} `json:"graphs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listing.Graphs) != graphs {
		t.Fatalf("coordinator lists %d graphs, want %d", len(listing.Graphs), graphs)
	}
	fmt.Printf("sharded soak: %d graphs over 2 shards, %d router reads, histograms byte-identical to control\n",
		graphs, reads.Load())
}
