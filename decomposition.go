package truss

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/embu"
	"repro/internal/emtd"
	"repro/internal/gio"
	"repro/internal/mapreduce"
)

// Decomposition is the common view over a completed truss decomposition,
// whatever engine produced it: truss numbers (via Edges), the k-class
// histogram, and kmax. In-memory results answer everything from RAM;
// external results stream their disk-resident class spool. Always Close a
// Decomposition when done — external results hold spool files.
//
// For engine-specific detail (Result views, external traces, MapReduce
// counters) downcast with AsInMemory, AsBottomUp, AsTopDown, AsMapReduce.
type Decomposition interface {
	// Engine reports which engine produced this decomposition.
	Engine() Engine
	// KMax is the maximum truss number over all classified edges.
	KMax() int32
	// NumVertices is the vertex-ID space of the input graph.
	NumVertices() int
	// NumEdges is the number of classified edges. For a top-t run this
	// covers only the computed classes, not the whole graph.
	NumEdges() int64
	// Histogram returns |Phi_k| indexed by k, length KMax+1 (entries 0
	// and 1 are always zero). For a top-t run only the computed classes
	// are populated.
	Histogram() []int64
	// Edges streams every classified edge with its truss number. The
	// order is engine-dependent.
	Edges(fn func(u, v uint32, phi int32) error) error
	// Update applies a batch of edge insertions and deletions and
	// maintains the decomposition incrementally: only the affected region
	// is re-peeled (with a full recompute fallback when the region grows
	// past the WithMaxRegion fraction), and the result is exactly what a
	// fresh Run over the mutated graph would produce. Supported by the
	// in-memory engines (use Open to guarantee it); the external and
	// MapReduce engines return ErrUpdateUnsupported. Update replaces the
	// decomposition in place — results previously unwrapped with
	// AsInMemory keep describing the pre-update state — and must not run
	// concurrently with readers of the same Decomposition.
	Update(ctx context.Context, adds, dels []Edge) (*UpdateStats, error)
	// Close releases disk-backed resources (a no-op for in-memory
	// engines).
	Close() error
}

// UpdateStats describes how a Decomposition.Update was carried out:
// region and boundary sizes, expansion rounds, the number of changed
// edges, and whether the maintainer fell back to a full recompute.
type UpdateStats = dynamic.Stats

// ErrUpdateUnsupported is returned by Decomposition.Update when the
// engine that produced the decomposition has no incremental maintenance
// path (external and MapReduce engines).
var ErrUpdateUnsupported = errors.New("truss: this decomposition does not support incremental updates (use Open or an in-memory engine)")

// AsInMemory returns the underlying in-memory Result when d was produced
// by EngineInMem, EngineBaseline, or EngineParallel — the full Result API
// (Class, Truss, MaxTruss, Verify, BuildIndex, Communities, WriteDOT)
// remains available on it.
func AsInMemory(d Decomposition) (*Result, bool) {
	if im, ok := d.(*inmemDecomposition); ok {
		return im.res, true
	}
	return nil, false
}

// AsBottomUp returns the underlying disk-resident result when d was
// produced by EngineBottomUp (per-edge class spool, I/O trace).
func AsBottomUp(d Decomposition) (*ExternalResult, bool) {
	if bu, ok := d.(*bottomUpDecomposition); ok {
		return bu.res, true
	}
	return nil, false
}

// AsTopDown returns the underlying top-down result when d was produced by
// EngineTopDown (computed classes, kinit trace).
func AsTopDown(d Decomposition) (*TopDownResult, bool) {
	if td, ok := d.(*topDownDecomposition); ok {
		return td.res, true
	}
	return nil, false
}

// AsMapReduce returns the underlying TD-MR result when d was produced by
// EngineMapReduce (per-edge map, simulated-cluster counters).
func AsMapReduce(d Decomposition) (*MapReduceResult, bool) {
	if mr, ok := d.(*mapReduceDecomposition); ok {
		return mr.res, true
	}
	return nil, false
}

// inmemDecomposition adapts a core.Result.
type inmemDecomposition struct {
	eng Engine
	res *core.Result
	// maxRegion and workers configure incremental maintenance (set from
	// WithMaxRegion / WithWorkers at Run time).
	maxRegion float64
	workers   int
}

func (d *inmemDecomposition) Engine() Engine   { return d.eng }
func (d *inmemDecomposition) KMax() int32      { return d.res.KMax }
func (d *inmemDecomposition) NumVertices() int { return d.res.G.NumVertices() }
func (d *inmemDecomposition) NumEdges() int64  { return int64(len(d.res.Phi)) }
func (d *inmemDecomposition) Close() error     { return nil }

func (d *inmemDecomposition) Update(ctx context.Context, adds, dels []Edge) (*UpdateStats, error) {
	res, err := dynamic.Update(ctx, d.res.G, d.res.Phi,
		dynamic.Batch{Adds: adds, Dels: dels},
		dynamic.Config{MaxRegionFraction: d.maxRegion, Workers: d.workers})
	if err != nil {
		return nil, err
	}
	// Swap in a fresh Result: previously unwrapped Results stay valid
	// immutable snapshots of the pre-update state.
	d.res = &core.Result{G: res.G, Phi: res.Phi, KMax: res.KMax}
	st := res.Stats
	return &st, nil
}

func (d *inmemDecomposition) Histogram() []int64 { return d.res.ClassSizes() }

func (d *inmemDecomposition) Edges(fn func(u, v uint32, phi int32) error) error {
	for id, p := range d.res.Phi {
		e := d.res.G.Edge(int32(id))
		if err := fn(e.U, e.V, p); err != nil {
			return err
		}
	}
	return nil
}

// histogramFromSizes expands a sparse class-size map into the dense
// Histogram slice shape.
func histogramFromSizes(kmax int32, sizes map[int32]int64) []int64 {
	out := make([]int64, kmax+1)
	for k, n := range sizes {
		if k >= 0 && k <= kmax {
			out[k] = n
		}
	}
	return out
}

// spoolEdgesIter streams a class spool through the Decomposition edge
// callback shape.
func spoolEdgesIter(classes *gio.Spool[gio.EdgeAux], fn func(u, v uint32, phi int32) error) error {
	return classes.ForEach(func(r gio.EdgeAux) error {
		return fn(r.U, r.V, r.Aux)
	})
}

// errNoUpdate builds the per-engine ErrUpdateUnsupported error.
func errNoUpdate(eng Engine) error {
	return fmt.Errorf("%w: engine %v", ErrUpdateUnsupported, eng)
}

// bottomUpDecomposition adapts an embu.Result.
type bottomUpDecomposition struct{ res *embu.Result }

func (d *bottomUpDecomposition) Engine() Engine   { return EngineBottomUp }
func (d *bottomUpDecomposition) KMax() int32      { return d.res.KMax }
func (d *bottomUpDecomposition) NumVertices() int { return d.res.NumVertices }
func (d *bottomUpDecomposition) NumEdges() int64  { return d.res.Classes.Count() }
func (d *bottomUpDecomposition) Histogram() []int64 {
	return histogramFromSizes(d.res.KMax, d.res.ClassSizes)
}
func (d *bottomUpDecomposition) Update(ctx context.Context, adds, dels []Edge) (*UpdateStats, error) {
	return nil, errNoUpdate(EngineBottomUp)
}

func (d *bottomUpDecomposition) Close() error { return d.res.Close() }

func (d *bottomUpDecomposition) Edges(fn func(u, v uint32, phi int32) error) error {
	return spoolEdgesIter(d.res.Classes, fn)
}

// topDownDecomposition adapts an emtd.Result.
type topDownDecomposition struct{ res *emtd.Result }

func (d *topDownDecomposition) Engine() Engine   { return EngineTopDown }
func (d *topDownDecomposition) KMax() int32      { return d.res.KMax }
func (d *topDownDecomposition) NumVertices() int { return d.res.NumVertices }
func (d *topDownDecomposition) NumEdges() int64  { return d.res.Classes.Count() }
func (d *topDownDecomposition) Histogram() []int64 {
	return histogramFromSizes(d.res.KMax, d.res.ClassSizes)
}
func (d *topDownDecomposition) Update(ctx context.Context, adds, dels []Edge) (*UpdateStats, error) {
	return nil, errNoUpdate(EngineTopDown)
}

func (d *topDownDecomposition) Close() error { return d.res.Close() }

func (d *topDownDecomposition) Edges(fn func(u, v uint32, phi int32) error) error {
	return spoolEdgesIter(d.res.Classes, fn)
}

// mapReduceDecomposition adapts a mapreduce.Result.
type mapReduceDecomposition struct {
	res *mapreduce.Result
	n   int
}

func (d *mapReduceDecomposition) Engine() Engine   { return EngineMapReduce }
func (d *mapReduceDecomposition) KMax() int32      { return d.res.KMax }
func (d *mapReduceDecomposition) NumVertices() int { return d.n }
func (d *mapReduceDecomposition) NumEdges() int64  { return int64(len(d.res.Phi)) }
func (d *mapReduceDecomposition) Update(ctx context.Context, adds, dels []Edge) (*UpdateStats, error) {
	return nil, errNoUpdate(EngineMapReduce)
}

func (d *mapReduceDecomposition) Close() error { return nil }

func (d *mapReduceDecomposition) Histogram() []int64 {
	out := make([]int64, d.res.KMax+1)
	for _, p := range d.res.Phi {
		if p >= 0 && int(p) < len(out) {
			out[p]++
		}
	}
	return out
}

func (d *mapReduceDecomposition) Edges(fn func(u, v uint32, phi int32) error) error {
	for key, p := range d.res.Phi {
		if err := fn(uint32(key>>32), uint32(key), p); err != nil {
			return err
		}
	}
	return nil
}
