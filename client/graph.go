package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"iter"
	"net/http"
	"net/url"
	"strconv"

	truss "repro"
)

// Graph addresses one named graph on a trussd server and satisfies
// truss.Querier: the same query script runs against a remote graph and a
// local index. Obtain one with Client.Graph.
type Graph struct {
	c    *Client
	name string
}

// Graph is the remote implementation of the unified query surface.
var _ truss.Querier = (*Graph)(nil)

// Name returns the graph's registry name.
func (g *Graph) Name() string { return g.name }

// path builds the graph-scoped endpoint path as raw segments (escaping
// happens once, in Client.url).
func (g *Graph) path(endpoint string) []string {
	segs := []string{"v1", "graphs", g.name}
	if endpoint != "" {
		segs = append(segs, endpoint)
	}
	return segs
}

// Info fetches the graph's registry entry: state, sizes, kmax, version.
func (g *Graph) Info(ctx context.Context) (GraphInfo, error) {
	var info GraphInfo
	err := g.c.call(ctx, http.MethodGet, g.c.url("", g.path("")...), nil, true, &info)
	return info, err
}

// TrussNumber returns phi(u,v) and whether the edge exists
// (GET /truss).
func (g *Graph) TrussNumber(ctx context.Context, u, v uint32) (int32, bool, error) {
	q := url.Values{}
	q.Set("u", strconv.FormatUint(uint64(u), 10))
	q.Set("v", strconv.FormatUint(uint64(v), 10))
	var out struct {
		Found bool  `json:"found"`
		Truss int32 `json:"truss"`
	}
	if err := g.c.call(ctx, http.MethodGet, g.c.url(q.Encode(), g.path("truss")...), nil, true, &out); err != nil {
		return 0, false, err
	}
	return out.Truss, out.Found, nil
}

// TrussNumbers answers a batch of edge lookups in a single POST /query
// round-trip — the way to look up thousands of pairs without paying
// per-pair latency.
func (g *Graph) TrussNumbers(ctx context.Context, pairs []truss.Edge) ([]truss.TrussAnswer, error) {
	if len(pairs) == 0 {
		return []truss.TrussAnswer{}, nil
	}
	body, err := json.Marshal(map[string]any{"pairs": pairsOf(pairs)})
	if err != nil {
		return nil, err
	}
	var out struct {
		Results []struct {
			U     uint32 `json:"u"`
			V     uint32 `json:"v"`
			Found bool   `json:"found"`
			Truss int32  `json:"truss"`
		} `json:"results"`
	}
	// The query POST carries no mutation: retrying it is as safe as
	// retrying a GET.
	if err := g.c.call(ctx, http.MethodPost, g.c.url("", g.path("query")...), body, true, &out); err != nil {
		return nil, err
	}
	if len(out.Results) != len(pairs) {
		return nil, fmt.Errorf("client: query returned %d results for %d pairs", len(out.Results), len(pairs))
	}
	answers := make([]truss.TrussAnswer, len(out.Results))
	for i, r := range out.Results {
		answers[i] = truss.TrussAnswer{
			Edge:  truss.Edge{U: r.U, V: r.V}.Canon(),
			Truss: r.Truss,
			Found: r.Found,
		}
	}
	return answers, nil
}

// Histogram returns |Phi_k| indexed by k, length KMax+1
// (GET /histogram).
func (g *Graph) Histogram(ctx context.Context) ([]int64, error) {
	var out struct {
		KMax    int32            `json:"kmax"`
		Classes map[string]int64 `json:"classes"`
	}
	if err := g.c.call(ctx, http.MethodGet, g.c.url("", g.path("histogram")...), nil, true, &out); err != nil {
		return nil, err
	}
	hist := make([]int64, out.KMax+1)
	for ks, n := range out.Classes {
		k, err := strconv.Atoi(ks)
		if err != nil || k < 0 || k >= len(hist) {
			return nil, fmt.Errorf("client: histogram class %q out of range (kmax %d)", ks, out.KMax)
		}
		hist[k] = n
	}
	return hist, nil
}

// TopClasses returns the t highest non-empty k-classes, k descending
// (GET /topclasses; t <= 0 returns all).
func (g *Graph) TopClasses(ctx context.Context, t int) ([]truss.ClassSummary, error) {
	q := url.Values{}
	if t > 0 {
		q.Set("t", strconv.Itoa(t))
	}
	var out struct {
		Classes []struct {
			K    int32 `json:"k"`
			Size int64 `json:"size"`
		} `json:"classes"`
	}
	if err := g.c.call(ctx, http.MethodGet, g.c.url(q.Encode(), g.path("topclasses")...), nil, true, &out); err != nil {
		return nil, err
	}
	classes := make([]truss.ClassSummary, len(out.Classes))
	for i, c := range out.Classes {
		classes[i] = truss.ClassSummary{K: c.K, Size: c.Size}
	}
	return classes, nil
}

// Communities returns every k-truss community at level k, largest first
// (GET /communities).
func (g *Graph) Communities(ctx context.Context, k int32) ([]truss.QueryCommunity, error) {
	q := url.Values{}
	q.Set("k", strconv.FormatInt(int64(k), 10))
	var out struct {
		Count       int `json:"count"`
		Communities []struct {
			Edges    [][2]uint32 `json:"edges"`
			Vertices []uint32    `json:"vertices"`
		} `json:"communities"`
	}
	if err := g.c.call(ctx, http.MethodGet, g.c.url(q.Encode(), g.path("communities")...), nil, true, &out); err != nil {
		return nil, err
	}
	comms := make([]truss.QueryCommunity, len(out.Communities))
	for i, c := range out.Communities {
		edges := make([]truss.Edge, len(c.Edges))
		for j, p := range c.Edges {
			edges[j] = truss.Edge{U: p[0], V: p[1]}.Canon()
		}
		comms[i] = truss.QueryCommunity{K: k, Edges: edges, Vertices: c.Vertices}
	}
	return comms, nil
}

// KTrussEdges streams the k-truss edge set off the wire
// (GET /edges?k=, NDJSON): edges are yielded as lines arrive, so even a
// truss with millions of edges is iterated in constant memory. Breaking
// out of the loop closes the response body and aborts the transfer.
// Only the initial request is retried; a connection dropped mid-stream
// surfaces through the returned error function — a partially consumed
// stream is not silently passed off as complete.
func (g *Graph) KTrussEdges(ctx context.Context, k int32) (iter.Seq2[truss.Edge, int32], func() error) {
	var iterErr error
	seq := func(yield func(truss.Edge, int32) bool) {
		q := url.Values{}
		if k > 0 {
			q.Set("k", strconv.FormatInt(int64(k), 10))
		}
		resp, err := g.c.do(ctx, http.MethodGet, g.c.url(q.Encode(), g.path("edges")...), nil, true)
		if err != nil {
			iterErr = err
			return
		}
		defer drain(resp)
		if resp.StatusCode != http.StatusOK {
			iterErr = apiError(resp)
			return
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var rec struct {
				U     uint32 `json:"u"`
				V     uint32 `json:"v"`
				Truss int32  `json:"truss"`
			}
			if err := json.Unmarshal(line, &rec); err != nil {
				iterErr = fmt.Errorf("client: bad NDJSON edge line %q: %w", line, err)
				return
			}
			if !yield(truss.Edge{U: rec.U, V: rec.V}.Canon(), rec.Truss) {
				return
			}
		}
		if err := sc.Err(); err != nil {
			iterErr = fmt.Errorf("client: edge stream interrupted: %w", err)
		}
	}
	return seq, func() error { return iterErr }
}

// MutationResult reports how the server carried out a mutation batch.
type MutationResult struct {
	// Graph is the post-mutation registry entry.
	Graph GraphInfo `json:"graph"`
	// Version is the graph's monotonic version after the batch.
	Version uint64 `json:"version"`
	// Changed counts edges whose truss number changed.
	Changed int `json:"changed"`
	// Region counts edges re-peeled by incremental maintenance.
	Region int `json:"region"`
	// Fallback reports whether maintenance fell back to a full recompute.
	Fallback bool `json:"fallback"`
	// Expansions counts the region-expansion rounds.
	Expansions int `json:"expansions"`
}

// InsertEdges inserts a batch of edges (POST /edges). Never retried:
// whether re-applying a failed batch is safe is the caller's call.
func (g *Graph) InsertEdges(ctx context.Context, edges []truss.Edge) (*MutationResult, error) {
	return g.mutate(ctx, http.MethodPost, map[string]any{"edges": pairsOf(edges)})
}

// DeleteEdges deletes a batch of edges (DELETE /edges). Never retried.
func (g *Graph) DeleteEdges(ctx context.Context, edges []truss.Edge) (*MutationResult, error) {
	return g.mutate(ctx, http.MethodDelete, map[string]any{"edges": pairsOf(edges)})
}

// Update applies a mixed batch of insertions and deletions in one
// request (POST /edges with adds/dels). Never retried.
func (g *Graph) Update(ctx context.Context, adds, dels []truss.Edge) (*MutationResult, error) {
	return g.mutate(ctx, http.MethodPost, map[string]any{
		"adds": pairsOf(adds), "dels": pairsOf(dels),
	})
}

func (g *Graph) mutate(ctx context.Context, method string, body map[string]any) (*MutationResult, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	var res MutationResult
	if err := g.c.call(ctx, method, g.c.url("", g.path("edges")...), raw, false, &res); err != nil {
		return nil, err
	}
	return &res, nil
}
