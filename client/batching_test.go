package client_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	truss "repro"
	"repro/client"
	"repro/internal/gen"
)

// mutatorFixture serves one ready graph through the real server stack.
func mutatorFixture(t *testing.T) *client.Graph {
	t.Helper()
	srv := truss.NewServer(truss.ServerOptions{Workers: 1, Logf: t.Logf})
	srv.Build("g", gen.PaperExample(), "test")
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { srv.Shutdown(context.Background()) })
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return c.Graph("g")
}

func TestBatchingMutatorSizeTrigger(t *testing.T) {
	g := mutatorFixture(t)
	m := g.BatchingMutator(client.BatchingConfig{MaxBatch: 4})
	defer m.Close(context.Background())

	ctx := context.Background()
	for i := uint32(0); i < 3; i++ {
		if err := m.InsertEdges(ctx, truss.Edge{U: 30 + i, V: 40 + i}); err != nil {
			t.Fatal(err)
		}
	}
	if n := m.Buffered(); n != 3 {
		t.Fatalf("3 distinct edges buffered, got %d", n)
	}
	if v := m.LastVersion(); v != 0 {
		t.Fatalf("no flush should have happened yet (version %d)", v)
	}
	// The fourth edge reaches MaxBatch and flushes inline.
	if err := m.InsertEdges(ctx, truss.Edge{U: 33, V: 43}); err != nil {
		t.Fatal(err)
	}
	if n := m.Buffered(); n != 0 {
		t.Fatalf("size-triggered flush left %d edges buffered", n)
	}
	// A fresh build installs at version 1, so the first batch lands at 2.
	if v := m.LastVersion(); v != 2 {
		t.Fatalf("one batch should land at version 2, got %d", v)
	}
	info, err := g.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 {
		t.Fatalf("server at version %d after one batch", info.Version)
	}
}

// TestBatchingMutatorCoalesces: duplicate inserts collapse and
// add-then-delete leaves only the delete (which the server's own
// coalescer then discards as a no-op against the live graph, acking
// without a version bump).
func TestBatchingMutatorCoalesces(t *testing.T) {
	g := mutatorFixture(t)
	m := g.BatchingMutator(client.BatchingConfig{})
	defer m.Close(context.Background())

	ctx := context.Background()
	e := truss.Edge{U: 50, V: 51}
	if err := m.InsertEdges(ctx, e, e, e); err != nil { // dups collapse
		t.Fatal(err)
	}
	if err := m.DeleteEdges(ctx, e); err != nil { // LWW: delete wins
		t.Fatal(err)
	}
	if n := m.Buffered(); n != 1 {
		t.Fatalf("coalesced buffer should hold 1 edge, got %d", n)
	}
	res, err := m.Flush(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// The lone delete targets an absent edge: the server coalesces it
	// away and acks at the untouched build version.
	if res.Version != 1 || res.Changed != 0 {
		t.Fatalf("no-op batch bumped the graph: %+v", res)
	}
	// Self-loops are dropped client-side, empty flushes skip the wire.
	if err := m.InsertEdges(ctx, truss.Edge{U: 7, V: 7}); err != nil {
		t.Fatal(err)
	}
	if res, err := m.Flush(ctx); err != nil || res != nil {
		t.Fatalf("empty flush should be a local no-op, got %+v, %v", res, err)
	}
}

func TestBatchingMutatorIntervalFlush(t *testing.T) {
	g := mutatorFixture(t)
	m := g.BatchingMutator(client.BatchingConfig{FlushInterval: 5 * time.Millisecond})
	defer m.Close(context.Background())

	if err := m.InsertEdges(context.Background(), truss.Edge{U: 60, V: 61}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.LastVersion() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background flush never happened")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if n := m.Buffered(); n != 0 {
		t.Fatalf("background flush left %d edges buffered", n)
	}
}

// TestBatchingMutatorStickyError: a failed flush parks its error, keeps
// the batch buffered for retry, and rejects further use until cleared.
func TestBatchingMutatorStickyError(t *testing.T) {
	var fail atomic.Bool
	srv := truss.NewServer(truss.ServerOptions{Workers: 1, Logf: t.Logf})
	srv.Build("g", gen.PaperExample(), "test")
	inner := srv.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fail.Load() && r.Method == http.MethodPost {
			http.Error(w, `{"error":"injected"}`, http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	t.Cleanup(func() { srv.Shutdown(context.Background()) })
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	m := c.Graph("g").BatchingMutator(client.BatchingConfig{})
	defer m.Close(context.Background())

	ctx := context.Background()
	e := truss.Edge{U: 70, V: 71}
	if err := m.InsertEdges(ctx, e); err != nil {
		t.Fatal(err)
	}
	fail.Store(true)
	if _, err := m.Flush(ctx); err == nil {
		t.Fatal("flush against a failing server returned nil error")
	}
	if n := m.Buffered(); n != 1 {
		t.Fatalf("failed batch should stay buffered, got %d", n)
	}
	if err := m.InsertEdges(ctx, truss.Edge{U: 72, V: 73}); err == nil {
		t.Fatal("sticky error not surfaced on the next insert")
	}
	if cleared := m.ClearError(); cleared == nil {
		t.Fatal("ClearError returned nil with an error parked")
	}
	fail.Store(false)
	res, err := m.Flush(ctx)
	if err != nil {
		t.Fatalf("retry after ClearError: %v", err)
	}
	if res.Version != 2 {
		t.Fatalf("retried batch should land as version 2, got %d", res.Version)
	}
	if tn, ok, err := c.Graph("g").TrussNumber(ctx, e.U, e.V); err != nil || !ok || tn < 2 {
		t.Fatalf("retried edge not on the server: truss=%d ok=%v err=%v", tn, ok, err)
	}
}

func TestBatchingMutatorClose(t *testing.T) {
	g := mutatorFixture(t)
	m := g.BatchingMutator(client.BatchingConfig{FlushInterval: time.Hour})

	ctx := context.Background()
	if err := m.InsertEdges(ctx, truss.Edge{U: 80, V: 81}); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if m.LastVersion() != 2 {
		t.Fatalf("Close did not flush the remainder (version %d)", m.LastVersion())
	}
	if err := m.InsertEdges(ctx, truss.Edge{U: 82, V: 83}); err != client.ErrMutatorClosed {
		t.Fatalf("insert after Close: %v", err)
	}
	if err := m.Close(ctx); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
