package client

import (
	"context"
	"errors"
	"iter"
	"net/http"
	"sync"
	"sync/atomic"

	truss "repro"
)

// Router fans a truss workload out across a primary and its read
// replicas: reads rotate over the replicas (round-robin, primary as the
// fallback of last resort) and fail over on shed load (429), server
// errors (5xx), lagging replicas (412/404), and connection failures,
// while every mutation goes to the primary and only the primary — a
// mutation is never retried and never redirected, so a replica can
// never see one even with the primary down.
//
// Read-your-writes across the fleet rides on the version token: the
// Router remembers the last version each mutation returned per graph
// and pins subsequent reads of that graph with X-Truss-Min-Version. A
// replica still behind that version answers 412 and the Router moves to
// the next endpoint; the primary itself always satisfies the floor.
//
//	r, err := client.NewRouter("http://primary:8080",
//	    []string{"http://replica-1:8080", "http://replica-2:8080"})
//	g := r.Graph("social")
//	g.InsertEdges(ctx, edges)            // primary only
//	k, ok, err := g.TrussNumber(ctx, u, v) // replicas, never older than the insert
type Router struct {
	primary  *Client
	replicas []*Client
	rr       atomic.Uint64

	mu      sync.Mutex
	written map[string]uint64 // graph -> highest version this Router wrote
}

// NewRouter builds a Router over one primary and any number of replica
// base URLs. opts apply to every per-endpoint Client; the Router
// defaults them to zero internal retries, because its own failover *is*
// the retry policy (an explicit WithRetries in opts overrides that).
func NewRouter(primaryURL string, replicaURLs []string, opts ...Option) (*Router, error) {
	base := append([]Option{WithRetries(0)}, opts...)
	primary, err := New(primaryURL, base...)
	if err != nil {
		return nil, err
	}
	r := &Router{primary: primary, written: map[string]uint64{}}
	for _, u := range replicaURLs {
		c, err := New(u, base...)
		if err != nil {
			return nil, err
		}
		r.replicas = append(r.replicas, c)
	}
	return r, nil
}

// Primary returns the primary's Client (for operations the Router does
// not mediate, e.g. LoadPath or Remove).
func (r *Router) Primary() *Client { return r.primary }

// Graph addresses one named graph across the fleet. The returned
// RouterGraph satisfies truss.Querier.
func (r *Router) Graph(name string) *RouterGraph { return &RouterGraph{r: r, name: name} }

// Written returns the highest version a mutation through this Router
// has returned for name (0 before the first write) — the read-your-
// writes floor its reads enforce.
func (r *Router) Written(name string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.written[name]
}

// noteWrite raises name's read-your-writes floor.
func (r *Router) noteWrite(name string, version uint64) {
	r.mu.Lock()
	if version > r.written[name] {
		r.written[name] = version
	}
	r.mu.Unlock()
}

// readOrder returns this attempt's endpoint sequence: replicas rotated
// one step per call so load spreads, primary last — it is the one
// endpoint that always satisfies the consistency floor, so it backstops
// every read, but it should see a read only when the replicas cannot
// serve it.
func (r *Router) readOrder() []*Client {
	n := len(r.replicas)
	if n == 0 {
		return []*Client{r.primary}
	}
	start := int(r.rr.Add(1)-1) % n
	order := make([]*Client, 0, n+1)
	for i := 0; i < n; i++ {
		order = append(order, r.replicas[(start+i)%n])
	}
	return append(order, r.primary)
}

// failover reports whether a read error is worth trying the next
// endpoint for: transport failures (endpoint down), shed load, server
// errors, and replica staleness (412 below the floor, 404/503 not yet
// hydrated) all are; deterministic client errors are not.
func failover(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		switch {
		case ae.Status == http.StatusPreconditionFailed,
			ae.Status == http.StatusNotFound,
			ae.Status == http.StatusTooManyRequests,
			ae.Status >= http.StatusInternalServerError:
			return true
		}
		return false
	}
	return true
}

// RouterGraph is the fleet-wide view of one graph: the full
// truss.Querier read surface with replica fan-out, plus mutations that
// go to the primary exclusively.
type RouterGraph struct {
	r    *Router
	name string
}

var _ truss.Querier = (*RouterGraph)(nil)

// Name returns the graph's registry name.
func (g *RouterGraph) Name() string { return g.name }

// withFloor raises (never lowers) the context's consistency floor to
// the Router's own read-your-writes floor: a caller that pinned a
// higher version with WithMinVersion — the ShardRouter carrying a
// cross-router token, a service replaying a handed-off version — keeps
// its stricter demand.
func (g *RouterGraph) withFloor(ctx context.Context) context.Context {
	v := g.r.Written(g.name)
	if cur, ok := minVersionFrom(ctx); ok && cur >= v {
		return ctx
	}
	if v == 0 {
		return ctx
	}
	return WithMinVersion(ctx, v)
}

// read runs op against each endpoint in this attempt's order until one
// succeeds, pinning the graph's read-your-writes floor on the context.
// The last endpoint's error surfaces when all fail; a non-failover
// error (bad request, cancellation) surfaces immediately.
func (g *RouterGraph) read(ctx context.Context, op func(context.Context, *Graph) error) error {
	ctx = g.withFloor(ctx)
	var lastErr error
	for _, c := range g.r.readOrder() {
		err := op(ctx, c.Graph(g.name))
		if err == nil {
			return nil
		}
		lastErr = err
		if ctx.Err() != nil || !failover(err) {
			return err
		}
	}
	return lastErr
}

// Info fetches the graph's registry entry from the first endpoint able
// to answer.
func (g *RouterGraph) Info(ctx context.Context) (GraphInfo, error) {
	var info GraphInfo
	err := g.read(ctx, func(ctx context.Context, gr *Graph) error {
		var err error
		info, err = gr.Info(ctx)
		return err
	})
	return info, err
}

// TrussNumber returns phi(u,v) and whether the edge exists.
func (g *RouterGraph) TrussNumber(ctx context.Context, u, v uint32) (int32, bool, error) {
	var k int32
	var ok bool
	err := g.read(ctx, func(ctx context.Context, gr *Graph) error {
		var err error
		k, ok, err = gr.TrussNumber(ctx, u, v)
		return err
	})
	return k, ok, err
}

// TrussNumbers answers a batch of edge lookups in one round-trip.
func (g *RouterGraph) TrussNumbers(ctx context.Context, pairs []truss.Edge) ([]truss.TrussAnswer, error) {
	var out []truss.TrussAnswer
	err := g.read(ctx, func(ctx context.Context, gr *Graph) error {
		var err error
		out, err = gr.TrussNumbers(ctx, pairs)
		return err
	})
	return out, err
}

// Histogram returns |Phi_k| indexed by k.
func (g *RouterGraph) Histogram(ctx context.Context) ([]int64, error) {
	var out []int64
	err := g.read(ctx, func(ctx context.Context, gr *Graph) error {
		var err error
		out, err = gr.Histogram(ctx)
		return err
	})
	return out, err
}

// TopClasses returns the t highest non-empty k-classes.
func (g *RouterGraph) TopClasses(ctx context.Context, t int) ([]truss.ClassSummary, error) {
	var out []truss.ClassSummary
	err := g.read(ctx, func(ctx context.Context, gr *Graph) error {
		var err error
		out, err = gr.TopClasses(ctx, t)
		return err
	})
	return out, err
}

// Communities returns every k-truss community at level k.
func (g *RouterGraph) Communities(ctx context.Context, k int32) ([]truss.QueryCommunity, error) {
	var out []truss.QueryCommunity
	err := g.read(ctx, func(ctx context.Context, gr *Graph) error {
		var err error
		out, err = gr.Communities(ctx, k)
		return err
	})
	return out, err
}

// KTrussEdges streams the k-truss edge set. Failover happens only while
// no edge has been yielded yet (the stream request itself failed, or
// the endpoint rejected it); once rows are flowing, a mid-stream
// disconnect surfaces through the error function rather than silently
// restarting the iteration against another endpoint — the caller has
// already consumed a prefix, and a restarted stream could repeat or
// reorder it.
func (g *RouterGraph) KTrussEdges(ctx context.Context, k int32) (iter.Seq2[truss.Edge, int32], func() error) {
	rctx := g.withFloor(ctx)
	var iterErr error
	seq := func(yield func(truss.Edge, int32) bool) {
		var lastErr error
		for _, c := range g.r.readOrder() {
			yielded := false
			inner, errf := c.Graph(g.name).KTrussEdges(rctx, k)
			for e, phi := range inner {
				yielded = true
				if !yield(e, phi) {
					return
				}
			}
			err := errf()
			if err == nil {
				return
			}
			if yielded || rctx.Err() != nil || !failover(err) {
				iterErr = err
				return
			}
			lastErr = err
		}
		iterErr = lastErr
	}
	return seq, func() error { return iterErr }
}

// InsertEdges inserts a batch of edges through the primary. Never
// retried, never routed to a replica.
func (g *RouterGraph) InsertEdges(ctx context.Context, edges []truss.Edge) (*MutationResult, error) {
	return g.noteResult(g.r.primary.Graph(g.name).InsertEdges(ctx, edges))
}

// DeleteEdges deletes a batch of edges through the primary. Never
// retried, never routed to a replica.
func (g *RouterGraph) DeleteEdges(ctx context.Context, edges []truss.Edge) (*MutationResult, error) {
	return g.noteResult(g.r.primary.Graph(g.name).DeleteEdges(ctx, edges))
}

// Update applies a mixed batch through the primary. Never retried,
// never routed to a replica.
func (g *RouterGraph) Update(ctx context.Context, adds, dels []truss.Edge) (*MutationResult, error) {
	return g.noteResult(g.r.primary.Graph(g.name).Update(ctx, adds, dels))
}

// noteResult records a successful mutation's version as the graph's new
// read-your-writes floor.
func (g *RouterGraph) noteResult(res *MutationResult, err error) (*MutationResult, error) {
	if err == nil && res != nil {
		g.r.noteWrite(g.name, res.Version)
	}
	return res, err
}
