package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	truss "repro"
)

// BatchingMutator buffers single-edge mutations client-side and ships
// them as mixed batches, the client half of the server's group-committed
// ingestion pipeline: callers write one edge at a time and the mutator
// turns a chatty stream of unary requests into a few large POSTs.
//
// Buffered ops coalesce before they travel — the last op per edge wins,
// duplicates collapse — so an add immediately undone by a delete never
// costs a network byte. Batches flush when the buffer reaches MaxBatch,
// on every FlushInterval tick, on an explicit Flush, and on Close.
//
// A mutator is safe for concurrent use, but mutations buffered by
// different goroutines land in one shared batch: per-edge ordering is
// last-writer-wins, with no cross-edge ordering promise inside a batch
// (the server applies a batch atomically, so no intermediate state is
// observable anyway).
//
// Flush errors are sticky: a failed background flush parks its error and
// every later Insert/Delete/Flush/Close returns it until the caller
// clears it with ClearError. The buffered batch that failed stays
// buffered, so clearing the error and flushing again retries it.
type BatchingMutator struct {
	g *Graph

	maxBatch int
	onError  func(error)

	mu      sync.Mutex
	ops     map[truss.Edge]bool // edge -> is-add (last writer wins)
	order   []truss.Edge        // first-appearance order, for deterministic wire batches
	version uint64              // highest acked server version
	err     error               // sticky flush error
	closed  bool

	flushMu sync.Mutex // serializes wire flushes so versions stay ordered

	ticker *time.Ticker
	stop   chan struct{}
	bg     sync.WaitGroup
}

// BatchingConfig configures a BatchingMutator. The zero value is usable.
type BatchingConfig struct {
	// MaxBatch flushes the buffer when it holds this many distinct edges
	// (default 4096).
	MaxBatch int
	// FlushInterval adds a background flush cadence so a trickle of
	// mutations still becomes durable promptly (0: flush only on size,
	// explicit Flush, and Close).
	FlushInterval time.Duration
	// OnError observes background-flush errors as they happen (they are
	// also parked as the sticky error). Called without locks held.
	OnError func(error)
}

// ErrMutatorClosed is returned by operations on a closed BatchingMutator.
var ErrMutatorClosed = errors.New("client: batching mutator closed")

const defaultMutatorBatch = 4096

// BatchingMutator returns a mutator feeding this graph.
func (g *Graph) BatchingMutator(cfg BatchingConfig) *BatchingMutator {
	m := &BatchingMutator{
		g:        g,
		maxBatch: cfg.MaxBatch,
		onError:  cfg.OnError,
		ops:      make(map[truss.Edge]bool),
		stop:     make(chan struct{}),
	}
	if m.maxBatch <= 0 {
		m.maxBatch = defaultMutatorBatch
	}
	if cfg.FlushInterval > 0 {
		m.ticker = time.NewTicker(cfg.FlushInterval)
		m.bg.Add(1)
		go func() {
			defer m.bg.Done()
			for {
				select {
				case <-m.ticker.C:
					if _, err := m.Flush(context.Background()); err != nil &&
						!errors.Is(err, ErrMutatorClosed) && m.onError != nil {
						m.onError(err)
					}
				case <-m.stop:
					return
				}
			}
		}()
	}
	return m
}

// InsertEdges buffers edge insertions. The returned error is the sticky
// flush error if one is parked, or the error of the size-triggered flush
// this call performed.
func (m *BatchingMutator) InsertEdges(ctx context.Context, edges ...truss.Edge) error {
	return m.buffer(ctx, edges, true)
}

// DeleteEdges buffers edge deletions.
func (m *BatchingMutator) DeleteEdges(ctx context.Context, edges ...truss.Edge) error {
	return m.buffer(ctx, edges, false)
}

func (m *BatchingMutator) buffer(ctx context.Context, edges []truss.Edge, isAdd bool) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrMutatorClosed
	}
	if m.err != nil {
		err := m.err
		m.mu.Unlock()
		return err
	}
	for _, e := range edges {
		e = e.Canon()
		if e.U == e.V {
			continue // self-loops can never form triangles; drop client-side
		}
		if _, seen := m.ops[e]; !seen {
			m.order = append(m.order, e)
		}
		m.ops[e] = isAdd
	}
	full := len(m.order) >= m.maxBatch
	m.mu.Unlock()
	if full {
		_, err := m.Flush(ctx)
		return err
	}
	return nil
}

// Flush ships the buffered batch now and returns the server's result
// (nil result when the buffer was empty). On failure the batch stays
// buffered and the error parks as the sticky error.
func (m *BatchingMutator) Flush(ctx context.Context) (*MutationResult, error) {
	// One wire flush at a time: concurrent flushes would race versions.
	m.flushMu.Lock()
	defer m.flushMu.Unlock()

	m.mu.Lock()
	if m.err != nil {
		err := m.err
		m.mu.Unlock()
		return nil, err
	}
	if len(m.order) == 0 {
		m.mu.Unlock()
		return nil, nil
	}
	adds := make([]truss.Edge, 0, len(m.order))
	dels := make([]truss.Edge, 0)
	for _, e := range m.order {
		if m.ops[e] {
			adds = append(adds, e)
		} else {
			dels = append(dels, e)
		}
	}
	// Take the batch out of the buffer but keep it restorable: new
	// mutations buffered during the network call go into fresh storage.
	taken, takenOrder := m.ops, m.order
	m.ops = make(map[truss.Edge]bool)
	m.order = nil
	m.mu.Unlock()

	res, err := m.g.Update(ctx, adds, dels)
	m.mu.Lock()
	defer m.mu.Unlock()
	if err != nil {
		// Restore the failed batch in front of anything buffered since,
		// preserving last-writer-wins: newer ops override restored ones.
		for _, e := range m.order {
			if _, dup := taken[e]; !dup {
				takenOrder = append(takenOrder, e)
			}
			taken[e] = m.ops[e]
		}
		m.ops, m.order = taken, takenOrder
		m.err = fmt.Errorf("client: flush of %d edges failed: %w", len(adds)+len(dels), err)
		return nil, m.err
	}
	if res.Version > m.version {
		m.version = res.Version
	}
	return res, nil
}

// LastVersion returns the highest server version an acked flush reached
// (0 before the first flush).
func (m *BatchingMutator) LastVersion() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.version
}

// Buffered returns how many distinct edges are waiting to flush.
func (m *BatchingMutator) Buffered() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.order)
}

// ClearError clears the sticky flush error, keeping the failed batch
// buffered for a retry; it returns the cleared error.
func (m *BatchingMutator) ClearError() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	err := m.err
	m.err = nil
	return err
}

// Close stops the background flusher, ships any remaining batch, and
// marks the mutator closed. Safe to call twice.
func (m *BatchingMutator) Close(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	if m.ticker != nil {
		m.ticker.Stop()
	}
	close(m.stop)
	m.bg.Wait()
	_, err := m.Flush(ctx)
	return err
}
