// Package client is a typed Go client for the trussd HTTP API (the /v1
// routes served by truss.NewServer and the `trussd serve` subcommand).
//
// Its centerpiece is Graph, which satisfies truss.Querier — the same
// interface a local *truss.Index or raw Decomposition answers — so
// application code is written once and pointed at RAM or at a remote
// server interchangeably:
//
//	c, err := client.New("http://localhost:8080")
//	var q truss.Querier = c.Graph("social")
//	k, ok, err := q.TrussNumber(ctx, 3, 7)
//
// Point queries map to the GET endpoints, batched lookups to one
// POST /query round-trip, and KTrussEdges consumes the NDJSON stream of
// GET /edges lazily — a million-edge truss is iterated straight off the
// wire, never buffered whole.
//
// Every request takes a context. Read-only requests are retried on
// transient failures (connection errors, 503 while a graph is still
// building, and 429 when the server's admission limiter sheds load —
// honoring Retry-After in both cases); mutations are never retried — the
// caller decides whether re-applying a batch is safe.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	truss "repro"
	"repro/internal/server"
)

// GraphInfo is the JSON summary of one registered graph, as returned by
// the list and info endpoints (shared with the server package, so the
// wire shape cannot drift).
type GraphInfo = server.GraphInfo

// APIError is a non-2xx response from the server, with the decoded
// error message when the body carried one.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Message is the server's error string ("" when undecodable).
	Message string
	// Primary is the primary's base URL when a read-only replica
	// rejected a mutation (403 with a "primary" field); "" otherwise.
	Primary string
}

func (e *APIError) Error() string {
	if e.Message == "" {
		return fmt.Sprintf("trussd: server returned %d", e.Status)
	}
	return fmt.Sprintf("trussd: %s (HTTP %d)", e.Message, e.Status)
}

// Client talks to one trussd server. It is safe for concurrent use.
// Create one with New, then address graphs with Graph.
type Client struct {
	base    *url.URL
	hc      *http.Client
	retries int
	backoff time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (default:
// a dedicated client with a 30s overall timeout; pass one with Timeout 0
// for unbounded streaming reads on slow links).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries sets how many times a failed read-only request is retried
// after the first attempt (default 2; 0 disables retrying). Mutations
// are never retried regardless.
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithRetryBackoff sets the base delay between retries (default 100ms,
// doubled each attempt). A 503 or 429 Retry-After header, when present,
// overrides the computed delay.
func WithRetryBackoff(d time.Duration) Option { return func(c *Client) { c.backoff = d } }

// New returns a Client for the server at baseURL (e.g.
// "http://localhost:8080"). The URL is validated here so every later
// call site can assume a well-formed base.
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: parsing base URL: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("client: base URL %q must be http or https", baseURL)
	}
	u.Path = strings.TrimSuffix(u.Path, "/")
	c := &Client{
		base:    u,
		hc:      &http.Client{Timeout: 30 * time.Second},
		retries: 2,
		backoff: 100 * time.Millisecond,
	}
	for _, opt := range opts {
		if opt != nil {
			opt(c)
		}
	}
	return c, nil
}

// Graph addresses one named graph on the server. No request is made
// until a method is called; the returned Graph satisfies truss.Querier.
func (c *Client) Graph(name string) *Graph { return &Graph{c: c, name: name} }

// minVersionHeader pins a read's consistency floor; servers whose entry
// is older answer 412 (see the Router's read-your-writes contract).
const minVersionHeader = "X-Truss-Min-Version"

// minVersionKey carries the floor through a context.
type minVersionKey struct{}

// WithMinVersion returns a context whose requests demand the graph be
// at least at version v: every request issued under it sends
// X-Truss-Min-Version, and a server still behind answers 412 instead of
// a stale read. The Router sets this automatically from its own writes;
// set it manually to carry a version token across processes (e.g. a
// version handed to another service alongside a work item).
func WithMinVersion(ctx context.Context, v uint64) context.Context {
	return context.WithValue(ctx, minVersionKey{}, v)
}

// minVersionFrom extracts the floor WithMinVersion stored, if any.
func minVersionFrom(ctx context.Context) (uint64, bool) {
	v, ok := ctx.Value(minVersionKey{}).(uint64)
	return v, ok
}

// url joins raw (unescaped) path segments and an optional query onto
// the base URL. JoinPath escapes each segment exactly once — graph
// names with spaces or slashes arrive at the server intact.
func (c *Client) url(query string, segments ...string) string {
	u := c.base.JoinPath(segments...)
	u.RawQuery = query
	return u.String()
}

// retryable reports whether a response status is worth retrying:
// 503 means a graph is still building, 429 means the admission limiter
// shed the request under momentary overload — both are transient, and the
// server sends Retry-After with each; everything else is deterministic.
// Only idempotent reads retry either way; mutations surface the status to
// their caller unrepeated.
func retryable(status int) bool {
	return status == http.StatusServiceUnavailable || status == http.StatusTooManyRequests
}

// sleep waits for d or until ctx is done.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// retryDelay computes the wait before attempt n, honoring the response's
// Retry-After seconds when the server provided one (503 and 429 both do).
func (c *Client) retryDelay(n int, resp *http.Response) time.Duration {
	if resp != nil {
		if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s >= 0 {
			return time.Duration(s) * time.Second
		}
	}
	return c.backoff << n
}

// do issues one request. body is re-materialized per attempt, so retries
// never send a half-consumed reader. When idempotent is false the
// request is attempted exactly once. The caller owns the response body.
func (c *Client) do(ctx context.Context, method, rawurl string, body []byte, idempotent bool) (*http.Response, error) {
	attempts := 1
	if idempotent {
		attempts += c.retries
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, rawurl, rd)
		if err != nil {
			return nil, fmt.Errorf("client: building request: %w", err)
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if v, ok := minVersionFrom(ctx); ok {
			req.Header.Set(minVersionHeader, strconv.FormatUint(v, 10))
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			lastErr = err
			if attempt < attempts-1 {
				if err := sleep(ctx, c.retryDelay(attempt, nil)); err != nil {
					return nil, err
				}
			}
			continue
		}
		if idempotent && retryable(resp.StatusCode) && attempt < attempts-1 {
			// One sleep per failure, at the point of failure: Retry-After
			// (when the server sent one) overrides the computed backoff
			// rather than adding to it.
			delay := c.retryDelay(attempt, resp)
			drain(resp)
			if err := sleep(ctx, delay); err != nil {
				return nil, err
			}
			lastErr = &APIError{Status: resp.StatusCode}
			continue
		}
		return resp, nil
	}
	return nil, fmt.Errorf("client: %s %s failed after %d attempts: %w", method, rawurl, attempts, lastErr)
}

// drain discards and closes a response body so the connection is reused.
func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

// apiError decodes the server's {"error": "..."} body into an APIError.
func apiError(resp *http.Response) error {
	var body struct {
		Error   string `json:"error"`
		Primary string `json:"primary"`
	}
	_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body)
	return &APIError{Status: resp.StatusCode, Message: body.Error, Primary: body.Primary}
}

// call issues a request and decodes a 2xx JSON response into out
// (ignored when nil). Non-2xx responses come back as *APIError.
func (c *Client) call(ctx context.Context, method, rawurl string, body []byte, idempotent bool, out any) error {
	resp, err := c.do(ctx, method, rawurl, body, idempotent)
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return apiError(resp)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding %s %s response: %w", method, rawurl, err)
	}
	return nil
}

// Health probes /healthz and returns the number of registered graphs.
func (c *Client) Health(ctx context.Context) (graphs int, err error) {
	var out struct {
		OK     bool `json:"ok"`
		Graphs int  `json:"graphs"`
	}
	if err := c.call(ctx, http.MethodGet, c.url("", "healthz"), nil, true, &out); err != nil {
		return 0, err
	}
	if !out.OK {
		return out.Graphs, errors.New("client: server reports not ok")
	}
	return out.Graphs, nil
}

// Graphs lists every registered graph, sorted by name.
func (c *Client) Graphs(ctx context.Context) ([]GraphInfo, error) {
	var out struct {
		Graphs []GraphInfo `json:"graphs"`
	}
	if err := c.call(ctx, http.MethodGet, c.url("", "v1", "graphs"), nil, true, &out); err != nil {
		return nil, err
	}
	return out.Graphs, nil
}

// LoadPath registers name from a server-side graph file. The server
// builds in the background; poll Info or use WaitReady.
func (c *Client) LoadPath(ctx context.Context, name, path string) error {
	body, err := json.Marshal(map[string]string{"path": path})
	if err != nil {
		return err
	}
	return c.call(ctx, http.MethodPost, c.url("", "v1", "graphs", name), body, false, nil)
}

// LoadEdges registers name from an inline edge list. The server builds
// in the background; poll Info or use WaitReady.
func (c *Client) LoadEdges(ctx context.Context, name string, edges []truss.Edge) error {
	body, err := json.Marshal(map[string]any{"edges": pairsOf(edges)})
	if err != nil {
		return err
	}
	return c.call(ctx, http.MethodPost, c.url("", "v1", "graphs", name), body, false, nil)
}

// Remove drops name from the server's registry (including any persisted
// state).
func (c *Client) Remove(ctx context.Context, name string) error {
	return c.call(ctx, http.MethodDelete, c.url("", "v1", "graphs", name), nil, false, nil)
}

// WaitReady polls until name is ready (nil), its build fails (error), or
// ctx expires. Poll spacing starts at the retry backoff and doubles up
// to one second.
func (c *Client) WaitReady(ctx context.Context, name string) error {
	delay := c.backoff
	for {
		info, err := c.Graph(name).Info(ctx)
		if err != nil {
			return err
		}
		switch info.State {
		case "ready":
			return nil
		case "failed":
			return fmt.Errorf("client: graph %q failed: %s", name, info.Error)
		}
		if err := sleep(ctx, delay); err != nil {
			return err
		}
		if delay < time.Second {
			delay *= 2
		}
	}
}

// pairsOf converts edges to the wire's [u,v] pair shape.
func pairsOf(edges []truss.Edge) [][2]uint32 {
	out := make([][2]uint32, len(edges))
	for i, e := range edges {
		out[i] = [2]uint32{e.U, e.V}
	}
	return out
}
