package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	truss "repro"
	"repro/internal/cluster"
)

// fakeShard is a minimal shard endpoint: answers truss lookups and
// mutations for any graph, recording every request's path, method, and
// min-version header.
type fakeShard struct {
	t *testing.T

	mu       sync.Mutex
	requests []fakeReq
	version  uint64 // version returned by the next mutation
	truss    int32  // truss number answered on lookups
	fail     atomic.Bool
	srv      *httptest.Server
}

type fakeReq struct {
	method, path, minVersion string
}

func newFakeShard(t *testing.T, trussAnswer int32) *fakeShard {
	f := &fakeShard{t: t, truss: trussAnswer, version: 1}
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if f.fail.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			w.Write([]byte(`{"error":"injected failure"}`))
			return
		}
		f.mu.Lock()
		f.requests = append(f.requests, fakeReq{r.Method, r.URL.Path, r.Header.Get("X-Truss-Min-Version")})
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		switch {
		case r.Method == http.MethodGet: // truss lookup
			w.Write([]byte(`{"found":true,"truss":` + strconv.Itoa(int(f.truss)) + `}`))
		default: // mutation
			f.mu.Lock()
			f.version++
			v := f.version
			f.mu.Unlock()
			w.Write([]byte(`{"version":` + strconv.FormatUint(v, 10) + `,"changed":1}`))
		}
	}))
	t.Cleanup(f.srv.Close)
	return f
}

// take drains the recorded requests.
func (f *fakeShard) take() []fakeReq {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := f.requests
	f.requests = nil
	return out
}

// fakeCoordinator serves the topology document (ETag + 304) and proxies
// nothing — graph requests against it are recorded and answered
// directly, standing in for the proxy path.
type fakeCoordinator struct {
	topo *cluster.Topology

	mu        sync.Mutex
	fetches   int // topology requests that returned a body
	notMods   int // topology requests answered 304
	graphReqs []fakeReq
	srv       *httptest.Server
}

func newFakeCoordinator(t *testing.T, topo *cluster.Topology) *fakeCoordinator {
	f := &fakeCoordinator{topo: topo}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cluster/topology", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		topo := f.topo
		f.mu.Unlock()
		etag := topo.ETag()
		w.Header().Set("ETag", etag)
		if r.Header.Get("If-None-Match") == etag {
			f.mu.Lock()
			f.notMods++
			f.mu.Unlock()
			w.WriteHeader(http.StatusNotModified)
			return
		}
		f.mu.Lock()
		f.fetches++
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_ = writeTopology(w, topo)
	})
	mux.HandleFunc("/v1/graphs/", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		f.graphReqs = append(f.graphReqs, fakeReq{r.Method, r.URL.Path, r.Header.Get("X-Truss-Min-Version")})
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"found":true,"truss":99}`))
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func writeTopology(w http.ResponseWriter, topo *cluster.Topology) error {
	// Tiny hand-rolled encode to avoid importing encoding/json just for
	// the fake — the production document shape is pinned by the cluster
	// package's own tests.
	_, err := w.Write(topoJSON(topo))
	return err
}

func topoJSON(topo *cluster.Topology) []byte {
	out := []byte(`{"shards":[`)
	for i, s := range topo.Shards {
		if i > 0 {
			out = append(out, ',')
		}
		out = append(out, []byte(`{"name":`+strconv.Quote(s.Name)+`,"primary":`+strconv.Quote(s.Primary))...)
		if len(s.Replicas) > 0 {
			out = append(out, []byte(`,"replicas":[`)...)
			for j, r := range s.Replicas {
				if j > 0 {
					out = append(out, ',')
				}
				out = append(out, []byte(strconv.Quote(r))...)
			}
			out = append(out, ']')
		}
		out = append(out, '}')
	}
	return append(out, []byte(`]}`)...)
}

// pickGraphFor returns a graph name the topology places on the wanted
// shard.
func pickGraphFor(t *testing.T, topo *cluster.Topology, shard string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		g := "graph-" + strconv.Itoa(i)
		if o, ok := topo.Owner(g); ok && o.Name == shard {
			return g
		}
	}
	t.Fatalf("no graph hashes to shard %s", shard)
	return ""
}

// TestShardRouterRoutesToOwner: mutations land only on the owning
// shard's primary, reads go to its replicas first, and the coordinator
// sees exactly one topology fetch.
func TestShardRouterRoutesToOwner(t *testing.T) {
	shardA, shardB := newFakeShard(t, 4), newFakeShard(t, 5)
	replicaA := newFakeShard(t, 4)
	topo := &cluster.Topology{Shards: []cluster.Shard{
		{Name: "a", Primary: shardA.srv.URL, Replicas: []string{replicaA.srv.URL}},
		{Name: "b", Primary: shardB.srv.URL},
	}}
	coord := newFakeCoordinator(t, topo)
	sr, err := NewShardRouter(coord.srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	gA := pickGraphFor(t, topo, "a")
	gB := pickGraphFor(t, topo, "b")

	// Mutation on an a-owned graph: only shard A's primary sees it.
	res, err := sr.Graph(gA).InsertEdges(ctx, []truss.Edge{{U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if reqs := shardA.take(); len(reqs) != 1 || reqs[0].method != http.MethodPost {
		t.Fatalf("shard A saw %v, want one POST", reqs)
	}
	for name, f := range map[string]*fakeShard{"replica-a": replicaA, "shard-b": shardB} {
		if reqs := f.take(); len(reqs) != 0 {
			t.Fatalf("%s saw mutation traffic: %v", name, reqs)
		}
	}

	// Read of the same graph: replica first, carrying the floor from the
	// mutation above.
	k, ok, err := sr.Graph(gA).TrussNumber(ctx, 1, 2)
	if err != nil || !ok || k != 4 {
		t.Fatalf("TrussNumber = %d,%v,%v", k, ok, err)
	}
	reqs := replicaA.take()
	if len(reqs) != 1 {
		t.Fatalf("replica A saw %v, want one read", reqs)
	}
	if want := strconv.FormatUint(res.Version, 10); reqs[0].minVersion != want {
		t.Fatalf("read min-version header = %q, want %q (read-your-writes floor)", reqs[0].minVersion, want)
	}
	if reqs := shardA.take(); len(reqs) != 0 {
		t.Fatalf("primary A saw a read that the replica served: %v", reqs)
	}

	// A b-owned graph routes to shard B (no replicas: primary serves
	// reads), with no floor (nothing written to it through this router).
	if _, _, err := sr.Graph(gB).TrussNumber(ctx, 1, 2); err != nil {
		t.Fatal(err)
	}
	reqsB := shardB.take()
	if len(reqsB) != 1 || reqsB[0].minVersion != "" {
		t.Fatalf("shard B saw %v, want one floorless read", reqsB)
	}

	// Exactly one topology fetch bootstrapped all of the above.
	coord.mu.Lock()
	fetches, graphReqs := coord.fetches, len(coord.graphReqs)
	coord.mu.Unlock()
	if fetches != 1 {
		t.Fatalf("coordinator served %d topology bodies, want 1", fetches)
	}
	if graphReqs != 0 {
		t.Fatalf("coordinator proxied %d graph requests on the healthy path, want 0", graphReqs)
	}
}

// TestShardRouterCoordinatorFallback: when the whole owning shard fails
// a read, the ShardRouter refreshes the topology (a 304 against the
// unchanged ETag) and falls back to the coordinator proxy — carrying
// the same read-your-writes floor.
func TestShardRouterCoordinatorFallback(t *testing.T) {
	shardA := newFakeShard(t, 4)
	topo := &cluster.Topology{Shards: []cluster.Shard{{Name: "a", Primary: shardA.srv.URL}}}
	coord := newFakeCoordinator(t, topo)
	sr, err := NewShardRouter(coord.srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	g := pickGraphFor(t, topo, "a")

	res, err := sr.Graph(g).InsertEdges(ctx, []truss.Edge{{U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	shardA.take()
	shardA.fail.Store(true)

	k, ok, err := sr.Graph(g).TrussNumber(ctx, 1, 2)
	if err != nil || !ok || k != 99 {
		t.Fatalf("fallback TrussNumber = %d,%v,%v; want the coordinator's 99", k, ok, err)
	}
	coord.mu.Lock()
	defer coord.mu.Unlock()
	if len(coord.graphReqs) != 1 {
		t.Fatalf("coordinator saw %v, want exactly one fallback read", coord.graphReqs)
	}
	if want := strconv.FormatUint(res.Version, 10); coord.graphReqs[0].minVersion != want {
		t.Fatalf("fallback read min-version = %q, want %q", coord.graphReqs[0].minVersion, want)
	}
	if coord.notMods != 1 {
		t.Fatalf("failover refreshed the topology %d times via 304, want 1", coord.notMods)
	}
	if coord.fetches != 1 {
		t.Fatalf("coordinator served %d topology bodies, want 1 (refresh must be conditional)", coord.fetches)
	}
}

// TestShardRouterTopologyRefresh: when the membership changes, a
// refresh triggered by a failing read picks up the new document and
// re-routes to the graph's new owner directly.
func TestShardRouterTopologyRefresh(t *testing.T) {
	oldShard, newShard := newFakeShard(t, 4), newFakeShard(t, 7)
	oldTopo := &cluster.Topology{Shards: []cluster.Shard{{Name: "old", Primary: oldShard.srv.URL}}}
	newTopo := &cluster.Topology{Shards: []cluster.Shard{{Name: "new", Primary: newShard.srv.URL}}}
	coord := newFakeCoordinator(t, oldTopo)
	sr, err := NewShardRouter(coord.srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if _, _, err := sr.Graph("g").TrussNumber(ctx, 1, 2); err != nil {
		t.Fatal(err)
	}
	if reqs := oldShard.take(); len(reqs) != 1 {
		t.Fatalf("old shard saw %v, want the first read", reqs)
	}

	// Membership changes and the old shard starts failing.
	coord.mu.Lock()
	coord.topo = newTopo
	coord.mu.Unlock()
	oldShard.fail.Store(true)

	k, ok, err := sr.Graph("g").TrussNumber(ctx, 1, 2)
	if err != nil || !ok || k != 7 {
		t.Fatalf("post-refresh TrussNumber = %d,%v,%v; want the new shard's 7", k, ok, err)
	}
	if reqs := newShard.take(); len(reqs) != 1 {
		t.Fatalf("new shard saw %v, want the re-routed read", reqs)
	}
	coord.mu.Lock()
	defer coord.mu.Unlock()
	if len(coord.graphReqs) != 0 {
		t.Fatalf("coordinator proxied %v; the refreshed direct route should have served it", coord.graphReqs)
	}
}

// TestShardRouterFloorComposition: a caller-set WithMinVersion above
// the router's own floor must survive (the router never lowers it).
func TestShardRouterFloorComposition(t *testing.T) {
	shard := newFakeShard(t, 4)
	topo := &cluster.Topology{Shards: []cluster.Shard{{Name: "a", Primary: shard.srv.URL}}}
	coord := newFakeCoordinator(t, topo)
	sr, err := NewShardRouter(coord.srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	g := pickGraphFor(t, topo, "a")

	// Router floor: version 2 (fake starts at 1, increments per write).
	if _, err := sr.Graph(g).InsertEdges(ctx, []truss.Edge{{U: 1, V: 2}}); err != nil {
		t.Fatal(err)
	}
	shard.take()

	// Caller pins a floor above it: the higher value must win.
	if _, _, err := sr.Graph(g).TrussNumber(WithMinVersion(ctx, 1000), 1, 2); err != nil {
		t.Fatal(err)
	}
	reqs := shard.take()
	if len(reqs) != 1 || reqs[0].minVersion != "1000" {
		t.Fatalf("read with caller floor sent min-version %v, want 1000", reqs)
	}

	// And the router floor still applies when the caller's is lower.
	if _, _, err := sr.Graph(g).TrussNumber(WithMinVersion(ctx, 1), 1, 2); err != nil {
		t.Fatal(err)
	}
	reqs = shard.take()
	if len(reqs) != 1 || reqs[0].minVersion != "2" {
		t.Fatalf("read with stale caller floor sent min-version %v, want the router's 2", reqs)
	}
}
