package client_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	truss "repro"
	"repro/client"
)

func newClient(t *testing.T, url string, opts ...client.Option) *client.Client {
	t.Helper()
	opts = append([]client.Option{client.WithRetryBackoff(time.Millisecond)}, opts...)
	c, err := client.New(url, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestNewValidatesBaseURL: malformed and non-HTTP URLs fail at New, not
// at the first request.
func TestNewValidatesBaseURL(t *testing.T) {
	for _, bad := range []string{"://nope", "ftp://host", "localhost:8080"} {
		if _, err := client.New(bad); err == nil {
			t.Errorf("New(%q) accepted", bad)
		}
	}
	if _, err := client.New("http://localhost:8080/"); err != nil {
		t.Errorf("New rejected a valid URL: %v", err)
	}
}

// TestGraphNamesEscapedOnce: a name needing escaping reaches the server
// as exactly that name — escaped on the wire, decoded back by the mux —
// not double-escaped.
func TestGraphNamesEscapedOnce(t *testing.T) {
	var gotPath string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotPath = r.URL.Path // decoded form
		fmt.Fprintln(w, `{"name":"my graph","state":"ready"}`)
	}))
	defer ts.Close()

	info, err := newClient(t, ts.URL).Graph("my graph").Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if gotPath != "/v1/graphs/my graph" {
		t.Fatalf("server saw path %q, want %q", gotPath, "/v1/graphs/my graph")
	}
	if info.State != "ready" {
		t.Fatalf("info = %+v", info)
	}
}

// TestRetriesOn503: read requests retry while a graph is still building
// (503 + Retry-After), then succeed without surfacing the transient.
func TestRetriesOn503(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"error":"graph still building"}`)
			return
		}
		fmt.Fprintln(w, `{"found":true,"truss":4}`)
	}))
	defer ts.Close()

	g := newClient(t, ts.URL, client.WithRetries(3)).Graph("g")
	k, found, err := g.TrussNumber(context.Background(), 1, 2)
	if err != nil || !found || k != 4 {
		t.Fatalf("TrussNumber = (%d,%v,%v), want (4,true,nil)", k, found, err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
}

// TestRetriesOn429Shed: an admission-control shed (429 + Retry-After,
// the server's load-shedding path) is retried for reads exactly like a
// 503 — the composition that lets clients ride out momentary overload —
// while mutations surface the 429 untried a second time.
func TestRetriesOn429Shed(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintln(w, `{"error":"server at capacity (2 requests in flight): retry shortly"}`)
			return
		}
		fmt.Fprintln(w, `{"found":true,"truss":4}`)
	}))
	defer ts.Close()

	g := newClient(t, ts.URL, client.WithRetries(3)).Graph("g")
	k, found, err := g.TrussNumber(context.Background(), 1, 2)
	if err != nil || !found || k != 4 {
		t.Fatalf("TrussNumber = (%d,%v,%v), want (4,true,nil)", k, found, err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (2 sheds + success)", got)
	}

	calls.Store(0)
	_, err = g.InsertEdges(context.Background(), []truss.Edge{{U: 1, V: 2}})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("mutation under shed: err = %v, want APIError 429", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("shed mutation saw %d calls, want exactly 1 (never retried)", got)
	}
}

// TestRetriesExhausted: a persistent 503 eventually comes back as the
// 503, not as an infinite wait.
func TestRetriesExhausted(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"error":"graph still building"}`)
	}))
	defer ts.Close()

	g := newClient(t, ts.URL, client.WithRetries(2)).Graph("g")
	_, _, err := g.TrussNumber(context.Background(), 1, 2)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want APIError 503", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (1 + 2 retries)", got)
	}
}

// TestMutationsAreNeverRetried: a failed mutation is reported once; the
// client must not re-apply a batch on its own.
func TestMutationsAreNeverRetried(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"error":"graph still building"}`)
	}))
	defer ts.Close()

	g := newClient(t, ts.URL, client.WithRetries(5)).Graph("g")
	_, err := g.InsertEdges(context.Background(), []truss.Edge{{U: 1, V: 2}})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want APIError 503", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want exactly 1", got)
	}
}

// TestAPIErrorCarriesServerMessage: the server's JSON error body becomes
// the APIError message.
func TestAPIErrorCarriesServerMessage(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprintln(w, `{"error":"no graph \"nope\""}`)
	}))
	defer ts.Close()

	_, err := newClient(t, ts.URL).Graph("nope").Info(context.Background())
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want APIError", err)
	}
	if apiErr.Status != http.StatusNotFound || !strings.Contains(apiErr.Message, "nope") {
		t.Fatalf("APIError = %+v", apiErr)
	}
}

// TestEdgeStreamInterrupted: a connection dropped mid-stream surfaces
// through the iterator's error function — a truncated truss is never
// passed off as complete.
func TestEdgeStreamInterrupted(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		for i := 0; i < 5; i++ {
			fmt.Fprintf(w, "{\"u\":%d,\"v\":%d,\"truss\":3}\n", i, i+10)
		}
		w.(http.Flusher).Flush()
		panic(http.ErrAbortHandler) // kill the connection mid-body
	}))
	defer ts.Close()

	seq, errf := newClient(t, ts.URL).Graph("g").KTrussEdges(context.Background(), 3)
	n := 0
	for range seq {
		n++
	}
	if err := errf(); err == nil {
		t.Fatalf("stream cut after %d edges reported no error", n)
	}
}

// TestEdgeStreamEarlyBreak: breaking out of the iterator aborts the
// transfer cleanly and reports no error.
func TestEdgeStreamEarlyBreak(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		for i := 0; i < 10000; i++ {
			fmt.Fprintf(w, "{\"u\":%d,\"v\":%d,\"truss\":3}\n", i, i+100000)
		}
	}))
	defer ts.Close()

	seq, errf := newClient(t, ts.URL).Graph("g").KTrussEdges(context.Background(), 3)
	n := 0
	for range seq {
		n++
		if n == 3 {
			break
		}
	}
	if err := errf(); err != nil {
		t.Fatalf("early break reported error: %v", err)
	}
	if n != 3 {
		t.Fatalf("consumed %d edges, want 3", n)
	}
}

// TestNetworkErrorsAreRetried: connection failures count against the
// retry budget and the final error names the attempts.
func TestNetworkErrorsAreRetried(t *testing.T) {
	// A server that is immediately closed: every dial fails fast.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := ts.URL
	ts.Close()

	c := newClient(t, url, client.WithRetries(2))
	_, err := c.Health(context.Background())
	if err == nil {
		t.Fatal("Health against a dead server succeeded")
	}
	if !strings.Contains(err.Error(), "3 attempts") {
		t.Fatalf("err = %v, want mention of 3 attempts", err)
	}
}
