package client_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	truss "repro"
	"repro/client"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/server"
)

// fakeEndpoint is a scripted truss endpoint: it counts reads and
// mutations, records the last min-version floor it saw, and answers
// reads with status (412/500/...) or a fixed histogram body on 0.
type fakeEndpoint struct {
	ts         *httptest.Server
	reads      atomic.Int64
	mutations  atomic.Int64
	status     atomic.Int64 // non-zero: answer reads with this status
	lastFloor  atomic.Value // string: last X-Truss-Min-Version seen
	mutVersion uint64       // version acked for mutations
}

func newFakeEndpoint(t *testing.T, mutVersion uint64) *fakeEndpoint {
	t.Helper()
	f := &fakeEndpoint{mutVersion: mutVersion}
	f.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			f.mutations.Add(1)
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"graph":{"name":"g"},"version":%d,"changed":1}`, f.mutVersion)
			return
		}
		f.reads.Add(1)
		f.lastFloor.Store(r.Header.Get("X-Truss-Min-Version"))
		if code := int(f.status.Load()); code != 0 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(code)
			fmt.Fprintf(w, `{"error":"scripted %d"}`, code)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"kmax":3,"classes":{"3":2}}`)
	}))
	t.Cleanup(f.ts.Close)
	return f
}

func newRouter(t *testing.T, primary string, replicas ...string) *client.Router {
	t.Helper()
	r, err := client.NewRouter(primary, replicas, client.WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRouterReadsPreferReplicas: healthy replicas absorb the whole read
// load; the primary sees none of it.
func TestRouterReadsPreferReplicas(t *testing.T) {
	primary := newFakeEndpoint(t, 1)
	r1, r2 := newFakeEndpoint(t, 1), newFakeEndpoint(t, 1)
	r := newRouter(t, primary.ts.URL, r1.ts.URL, r2.ts.URL)

	for i := 0; i < 6; i++ {
		if _, err := r.Graph("g").Histogram(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if primary.reads.Load() != 0 {
		t.Fatalf("primary served %d reads with healthy replicas", primary.reads.Load())
	}
	// Round-robin rotation spreads the six reads over both replicas.
	if r1.reads.Load() != 3 || r2.reads.Load() != 3 {
		t.Fatalf("replica reads = %d/%d, want 3/3", r1.reads.Load(), r2.reads.Load())
	}
}

// TestRouterFailsOverOnErrors: shed load, server errors, staleness, and
// dead endpoints all move a read along; a deterministic 4xx does not.
func TestRouterFailsOverOnErrors(t *testing.T) {
	primary := newFakeEndpoint(t, 1)
	rep := newFakeEndpoint(t, 1)
	r := newRouter(t, primary.ts.URL, rep.ts.URL)
	g := r.Graph("g")
	ctx := context.Background()

	for _, code := range []int{429, 500, 503, 412} {
		rep.status.Store(int64(code))
		before := primary.reads.Load()
		if _, err := g.Histogram(ctx); err != nil {
			t.Fatalf("replica %d: read should fail over to primary, got %v", code, err)
		}
		if primary.reads.Load() != before+1 {
			t.Fatalf("replica %d: primary reads %d, want %d", code, primary.reads.Load(), before+1)
		}
	}

	// A 400 is the request's own fault: surfaced, not retried elsewhere.
	rep.status.Store(400)
	before := primary.reads.Load()
	var ae *client.APIError
	if _, err := g.Histogram(ctx); !errors.As(err, &ae) || ae.Status != 400 {
		t.Fatalf("replica 400: err = %v, want APIError 400", err)
	}
	if primary.reads.Load() != before {
		t.Fatalf("400 failed over to primary (%d reads, want %d)", primary.reads.Load(), before)
	}

	// A dead replica (connection refused) fails over too.
	rep.ts.Close()
	if _, err := g.Histogram(ctx); err != nil {
		t.Fatalf("dead replica: read should fail over, got %v", err)
	}
}

// TestRouterReadYourWrites: a mutation's acked version becomes the floor
// pinned on every subsequent read; a lagging replica answers 412 and the
// read lands on the primary instead of returning stale data.
func TestRouterReadYourWrites(t *testing.T) {
	primary := newFakeEndpoint(t, 7)
	rep := newFakeEndpoint(t, 7)
	r := newRouter(t, primary.ts.URL, rep.ts.URL)
	g := r.Graph("g")
	ctx := context.Background()

	// Before any write there is no floor.
	if _, err := g.Histogram(ctx); err != nil {
		t.Fatal(err)
	}
	if floor := rep.lastFloor.Load().(string); floor != "" {
		t.Fatalf("pre-write floor = %q, want none", floor)
	}

	res, err := g.InsertEdges(ctx, []truss.Edge{{U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 7 || r.Written("g") != 7 {
		t.Fatalf("mutation version %d, Written %d, want 7/7", res.Version, r.Written("g"))
	}
	if primary.mutations.Load() != 1 || rep.mutations.Load() != 0 {
		t.Fatalf("mutations landed primary=%d replica=%d, want 1/0",
			primary.mutations.Load(), rep.mutations.Load())
	}

	// The replica simulates lag: 412 below the floor. The router must
	// pass the floor and retry on the primary.
	rep.status.Store(412)
	if _, err := g.Histogram(ctx); err != nil {
		t.Fatalf("read after write: %v", err)
	}
	if floor := rep.lastFloor.Load().(string); floor != "7" {
		t.Fatalf("replica saw floor %q, want \"7\"", floor)
	}
	if floor := primary.lastFloor.Load().(string); floor != "7" {
		t.Fatalf("primary saw floor %q, want \"7\"", floor)
	}
}

// TestRouterMutationsNeverLandOnReplica: with the primary unreachable,
// every mutation fails outright — none is redirected or retried against
// a replica, while reads keep serving from it.
func TestRouterMutationsNeverLandOnReplica(t *testing.T) {
	// A primary that is down: reserve an address, then close it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + ln.Addr().String()
	ln.Close()

	rep := newFakeEndpoint(t, 1)
	r := newRouter(t, deadURL, rep.ts.URL)
	g := r.Graph("g")
	ctx := context.Background()

	edges := []truss.Edge{{U: 1, V: 2}}
	if _, err := g.InsertEdges(ctx, edges); err == nil {
		t.Fatal("InsertEdges with primary down should fail")
	}
	if _, err := g.DeleteEdges(ctx, edges); err == nil {
		t.Fatal("DeleteEdges with primary down should fail")
	}
	if _, err := g.Update(ctx, edges, nil); err == nil {
		t.Fatal("Update with primary down should fail")
	}
	if n := rep.mutations.Load(); n != 0 {
		t.Fatalf("replica received %d mutation requests, want 0", n)
	}
	if r.Written("g") != 0 {
		t.Fatalf("failed mutations raised the floor to %d", r.Written("g"))
	}

	// Reads are unaffected by the primary being down.
	if _, err := g.Histogram(ctx); err != nil {
		t.Fatalf("read with primary down: %v", err)
	}
	if rep.reads.Load() == 0 {
		t.Fatal("replica served no reads")
	}
}

// TestRouterAgainstLiveFleet is the end-to-end acceptance path with real
// servers: a durable primary, a real replicating follower, and a Router
// over both. Reads keep serving while the primary is down, and
// read-your-writes resumes when it comes back.
func TestRouterAgainstLiveFleet(t *testing.T) {
	// Primary on a hand-managed listener so it can die and return on the
	// same address.
	p := server.New(server.Options{
		Workers: 1, Logf: t.Logf, DataDir: t.TempDir(), Metrics: obs.NewRegistry(),
	})
	p.Build("g", gen.PaperExample(), "inline")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	hs := &http.Server{Handler: p.Handler()}
	go hs.Serve(ln)
	primaryURL := "http://" + addr

	// A real follower replicating from it.
	fsrv := server.New(server.Options{
		Workers: 1, Logf: t.Logf, DataDir: t.TempDir(), Metrics: obs.NewRegistry(),
		Follow: primaryURL,
	})
	fl, err := replica.New(replica.Config{
		Primary: primaryURL, Server: fsrv, Logf: t.Logf, Metrics: obs.NewRegistry(),
		Refresh: 50 * time.Millisecond, Backoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	flCtx, flCancel := context.WithCancel(context.Background())
	defer flCancel()
	go fl.Run(flCtx)
	fts := httptest.NewServer(fsrv.Handler())
	defer fts.Close()

	r := newRouter(t, primaryURL, fts.URL)
	g := r.Graph("g")
	ctx := context.Background()

	// Write through the router, then read: the floor forwards to the
	// fleet and some endpoint at or past it answers.
	res, err := g.InsertEdges(ctx, []truss.Edge{{U: 90, V: 91}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 2 || r.Written("g") != 2 {
		t.Fatalf("write acked version %d, floor %d, want 2/2", res.Version, r.Written("g"))
	}
	if _, _, err := g.TrussNumber(ctx, 90, 91); err != nil {
		t.Fatalf("read-your-writes: %v", err)
	}

	// Let the follower catch up to version 2, then take the primary down.
	waitForCondition(t, 15*time.Second, "follower at version 2", func() bool {
		e, ok := fsrv.Lookup("g")
		return ok && e.Version == 2
	})
	hs.Close()

	// Reads — including floored ones — keep serving from the replica.
	for i := 0; i < 3; i++ {
		hist, err := g.Histogram(ctx)
		if err != nil {
			t.Fatalf("read %d with primary down: %v", i, err)
		}
		if len(hist) == 0 {
			t.Fatalf("read %d: empty histogram", i)
		}
	}
	// Mutations fail while the primary is down (and never touch the
	// replica — its follower mode would 403 them anyway).
	if _, err := g.InsertEdges(ctx, []truss.Edge{{U: 91, V: 92}}); err == nil {
		t.Fatal("mutation with primary down should fail")
	}

	// The primary returns on the same address; writes resume and the
	// floor advances past the replica until it catches up.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	hs2 := &http.Server{Handler: p.Handler()}
	go hs2.Serve(ln2)
	defer hs2.Close()

	waitForCondition(t, 15*time.Second, "primary back up", func() bool {
		_, err := g.InsertEdges(ctx, []truss.Edge{{U: 91, V: 92}})
		return err == nil
	})
	if r.Written("g") != 3 {
		t.Fatalf("floor after resumed write = %d, want 3", r.Written("g"))
	}
	// Immediately read at the new floor: whichever endpoint answers must
	// be at version >= 3, so the truss number for the new edge exists.
	k, found, err := g.TrussNumber(ctx, 91, 92)
	if err != nil || !found || k < 2 {
		t.Fatalf("read-your-writes after recovery: k=%d found=%v err=%v", k, found, err)
	}
	// And the follower eventually reaches the same version with the same
	// answer.
	waitForCondition(t, 15*time.Second, "follower at version 3", func() bool {
		e, ok := fsrv.Lookup("g")
		return ok && e.Version == 3
	})

	// The replica's HTTP surface rejects a direct mutation with a
	// structured error naming the primary.
	fc, err := client.New(fts.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, err = fc.Graph("g").InsertEdges(ctx, []truss.Edge{{U: 95, V: 96}})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusForbidden || ae.Primary != primaryURL {
		t.Fatalf("direct mutation on replica: err=%v, want 403 naming %s", err, primaryURL)
	}
}

// waitForCondition polls cond until it holds or the deadline passes.
func waitForCondition(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
