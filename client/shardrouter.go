package client

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"iter"
	"net/http"
	"sync"

	truss "repro"
	"repro/internal/cluster"
)

// ShardRouter fans a truss workload out across a sharded cluster. It
// bootstraps the shard membership from the coordinator once
// (GET /v1/cluster/topology) and from then on computes each graph's
// owner locally with the same rendezvous hash the coordinator uses,
// talking straight to the owning shard: mutations go to that shard's
// primary (and only it — never retried, never redirected, exactly the
// Router contract), reads fan out over that shard's replicas with the
// primary as backstop. The coordinator proxy is the fallback path, not
// the fast path: it serves a read only when the whole owning shard
// fails it, and a mutation only when the topology cannot be fetched at
// all.
//
// Read-your-writes survives every path: the ShardRouter records the
// version each mutation returns per graph and pins that floor on all of
// its reads — including coordinator-fallback reads and reads issued
// after a topology refresh rebuilt the per-shard Routers — via
// X-Truss-Min-Version. Version tokens are per graph and never compared
// across graphs, so they stay meaningful however graphs are placed.
//
//	sr, err := client.NewShardRouter("http://coordinator:8080")
//	g := sr.Graph("social")
//	g.InsertEdges(ctx, edges)              // owning shard's primary
//	k, ok, err := g.TrussNumber(ctx, u, v) // owning shard's replicas
//
// The topology is refreshed conditionally (If-None-Match against the
// coordinator's ETag) when a direct read fails over, so a static
// membership costs one fetch per process and a changed one is picked up
// the first time it matters.
type ShardRouter struct {
	coord *Client  // coordinator: topology source + proxy fallback
	opts  []Option // applied to every per-shard Router endpoint

	mu      sync.Mutex
	topo    *cluster.Topology
	etag    string
	routers map[string]*Router // shard name -> Router over primary+replicas
	written map[string]uint64  // graph -> read-your-writes floor
}

// NewShardRouter builds a ShardRouter against a coordinator base URL.
// The topology is fetched lazily on first use, so constructing a
// ShardRouter never blocks on the network. opts apply to every
// per-endpoint Client (shard primaries, shard replicas, and the
// coordinator alike); as with Router, internal retries default to zero
// because the ShardRouter's own failover is the retry policy.
func NewShardRouter(coordinatorURL string, opts ...Option) (*ShardRouter, error) {
	base := append([]Option{WithRetries(0)}, opts...)
	coord, err := New(coordinatorURL, base...)
	if err != nil {
		return nil, err
	}
	return &ShardRouter{
		coord:   coord,
		opts:    base,
		routers: map[string]*Router{},
		written: map[string]uint64{},
	}, nil
}

// Coordinator returns the coordinator's Client (cluster-level calls the
// ShardRouter does not mediate: merged Graphs listings, Health).
func (s *ShardRouter) Coordinator() *Client { return s.coord }

// Written returns the highest version a mutation through this
// ShardRouter has returned for name (0 before the first write).
func (s *ShardRouter) Written(name string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.written[name]
}

// noteWrite raises name's read-your-writes floor.
func (s *ShardRouter) noteWrite(name string, version uint64) {
	s.mu.Lock()
	if version > s.written[name] {
		s.written[name] = version
	}
	s.mu.Unlock()
}

// Topology returns the current membership, fetching it from the
// coordinator if this ShardRouter has none yet.
func (s *ShardRouter) Topology(ctx context.Context) (*cluster.Topology, error) {
	s.mu.Lock()
	t := s.topo
	s.mu.Unlock()
	if t != nil {
		return t, nil
	}
	if _, err := s.Refresh(ctx); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.topo, nil
}

// Refresh re-fetches the topology, conditional on the last ETag, and
// reports whether it changed. A 304 is the steady state and costs no
// body; on change the per-shard Routers are rebuilt (Routers for
// shards whose endpoints are unchanged are kept, preserving their
// round-robin warmth).
func (s *ShardRouter) Refresh(ctx context.Context) (changed bool, err error) {
	s.mu.Lock()
	etag := s.etag
	s.mu.Unlock()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		s.coord.url("", "v1", "cluster", "topology"), nil)
	if err != nil {
		return false, err
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	resp, err := s.coord.hc.Do(req)
	if err != nil {
		return false, fmt.Errorf("client: fetching cluster topology: %w", err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusNotModified:
		return false, nil
	case http.StatusOK:
	default:
		return false, &APIError{Status: resp.StatusCode,
			Message: fmt.Sprintf("fetching cluster topology: HTTP %d", resp.StatusCode)}
	}
	topo := &cluster.Topology{}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(topo); err != nil {
		return false, fmt.Errorf("client: decoding cluster topology: %w", err)
	}
	if err := topo.Validate(); err != nil {
		return false, fmt.Errorf("client: coordinator served a bad topology: %w", err)
	}
	return s.install(topo, resp.Header.Get("ETag"))
}

// install swaps in a fetched topology, rebuilding the Router set.
func (s *ShardRouter) install(topo *cluster.Topology, etag string) (changed bool, err error) {
	routers := make(map[string]*Router, len(topo.Shards))
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sh := range topo.Shards {
		if s.topo != nil {
			if old, ok := s.topo.Shard(sh.Name); ok && sameShard(old, sh) {
				routers[sh.Name] = s.routers[sh.Name]
				continue
			}
		}
		r, err := NewRouter(sh.Primary, sh.Replicas, s.opts...)
		if err != nil {
			return false, fmt.Errorf("client: shard %q: %w", sh.Name, err)
		}
		routers[sh.Name] = r
	}
	changed = s.topo == nil || s.topo.ETag() != topo.ETag()
	s.topo, s.etag, s.routers = topo, etag, routers
	return changed, nil
}

// sameShard reports whether two membership rows name identical
// endpoints, so install can keep the old shard's Router (and its
// round-robin state) across a refresh.
func sameShard(a, b cluster.Shard) bool {
	if a.Name != b.Name || a.Primary != b.Primary || len(a.Replicas) != len(b.Replicas) {
		return false
	}
	for i := range a.Replicas {
		if a.Replicas[i] != b.Replicas[i] {
			return false
		}
	}
	return true
}

// routerFor returns the Router over the shard owning name, resolving
// the topology first if needed. ok is false when no topology is
// available (the caller falls back to the coordinator).
func (s *ShardRouter) routerFor(ctx context.Context, name string) (*Router, cluster.Shard, bool) {
	topo, err := s.Topology(ctx)
	if err != nil || topo == nil {
		return nil, cluster.Shard{}, false
	}
	owner, ok := topo.Owner(name)
	if !ok {
		return nil, cluster.Shard{}, false
	}
	s.mu.Lock()
	r := s.routers[owner.Name]
	s.mu.Unlock()
	return r, owner, r != nil
}

// Graph addresses one named graph across the cluster. The returned
// ShardGraph satisfies truss.Querier.
func (s *ShardRouter) Graph(name string) *ShardGraph { return &ShardGraph{s: s, name: name} }

// ShardGraph is the cluster-wide view of one graph: reads against the
// owning shard's fleet with the coordinator as fallback, mutations
// against the owning shard's primary only.
type ShardGraph struct {
	s    *ShardRouter
	name string
}

var _ truss.Querier = (*ShardGraph)(nil)

// Name returns the graph's registry name.
func (g *ShardGraph) Name() string { return g.name }

// withFloor pins the ShardRouter's read-your-writes floor for this
// graph on ctx, never lowering a stricter caller-set floor.
func (g *ShardGraph) withFloor(ctx context.Context) context.Context {
	v := g.s.Written(g.name)
	if cur, ok := minVersionFrom(ctx); ok && cur >= v {
		return ctx
	}
	if v == 0 {
		return ctx
	}
	return WithMinVersion(ctx, v)
}

// read runs op against the owning shard first (replica fan-out via its
// Router), then — only if the shard path fails with a failover-worthy
// error — refreshes the topology conditionally and falls back to the
// coordinator proxy. The floor rides on the context the whole way.
func (g *ShardGraph) read(ctx context.Context, op func(context.Context, truss.Querier) error) error {
	ctx = g.withFloor(ctx)
	var shardErr error
	if r, owner, ok := g.s.routerFor(ctx, g.name); ok {
		shardErr = op(ctx, r.Graph(g.name))
		if shardErr == nil {
			return nil
		}
		if ctx.Err() != nil || !failover(shardErr) {
			return shardErr
		}
		// The whole owning shard failed the read. Membership may have
		// changed under us — refresh (ETag-conditional, a 304 in the
		// steady state) and, if the graph moved, try its new home
		// before resorting to the proxy.
		if changed, err := g.s.Refresh(ctx); err == nil && changed {
			if r2, owner2, ok := g.s.routerFor(ctx, g.name); ok && owner2.Name != owner.Name {
				if err := op(ctx, r2.Graph(g.name)); err == nil {
					return nil
				}
			}
		}
	}
	if err := op(ctx, g.s.coord.Graph(g.name)); err == nil {
		return nil
	} else if shardErr == nil {
		return err
	}
	return shardErr
}

// Info fetches the graph's registry entry (owning shard, coordinator
// fallback). Info is not part of truss.Querier, so it takes the same
// two-path route explicitly.
func (g *ShardGraph) Info(ctx context.Context) (GraphInfo, error) {
	ctx = g.withFloor(ctx)
	if r, _, ok := g.s.routerFor(ctx, g.name); ok {
		info, err := r.Graph(g.name).Info(ctx)
		if err == nil || ctx.Err() != nil || !failover(err) {
			return info, err
		}
	}
	return g.s.coord.Graph(g.name).Info(ctx)
}

// TrussNumber returns phi(u,v) and whether the edge exists.
func (g *ShardGraph) TrussNumber(ctx context.Context, u, v uint32) (int32, bool, error) {
	var k int32
	var ok bool
	err := g.read(ctx, func(ctx context.Context, q truss.Querier) error {
		var err error
		k, ok, err = q.TrussNumber(ctx, u, v)
		return err
	})
	return k, ok, err
}

// TrussNumbers answers a batch of edge lookups in one round-trip.
func (g *ShardGraph) TrussNumbers(ctx context.Context, pairs []truss.Edge) ([]truss.TrussAnswer, error) {
	var out []truss.TrussAnswer
	err := g.read(ctx, func(ctx context.Context, q truss.Querier) error {
		var err error
		out, err = q.TrussNumbers(ctx, pairs)
		return err
	})
	return out, err
}

// Histogram returns |Phi_k| indexed by k.
func (g *ShardGraph) Histogram(ctx context.Context) ([]int64, error) {
	var out []int64
	err := g.read(ctx, func(ctx context.Context, q truss.Querier) error {
		var err error
		out, err = q.Histogram(ctx)
		return err
	})
	return out, err
}

// TopClasses returns the t highest non-empty k-classes.
func (g *ShardGraph) TopClasses(ctx context.Context, t int) ([]truss.ClassSummary, error) {
	var out []truss.ClassSummary
	err := g.read(ctx, func(ctx context.Context, q truss.Querier) error {
		var err error
		out, err = q.TopClasses(ctx, t)
		return err
	})
	return out, err
}

// Communities returns every k-truss community at level k.
func (g *ShardGraph) Communities(ctx context.Context, k int32) ([]truss.QueryCommunity, error) {
	var out []truss.QueryCommunity
	err := g.read(ctx, func(ctx context.Context, q truss.Querier) error {
		var err error
		out, err = q.Communities(ctx, k)
		return err
	})
	return out, err
}

// KTrussEdges streams the k-truss edge set from the owning shard,
// falling back to the coordinator only when the shard stream fails
// before yielding a row (the Router's own mid-stream rule applies
// within the shard: a partially consumed stream is never silently
// restarted).
func (g *ShardGraph) KTrussEdges(ctx context.Context, k int32) (iter.Seq2[truss.Edge, int32], func() error) {
	rctx := g.withFloor(ctx)
	var iterErr error
	seq := func(yield func(truss.Edge, int32) bool) {
		var sources []truss.Querier
		if r, _, ok := g.s.routerFor(rctx, g.name); ok {
			sources = append(sources, r.Graph(g.name))
		}
		sources = append(sources, g.s.coord.Graph(g.name))
		var lastErr error
		for _, src := range sources {
			yielded := false
			inner, errf := src.KTrussEdges(rctx, k)
			for e, phi := range inner {
				yielded = true
				if !yield(e, phi) {
					return
				}
			}
			err := errf()
			if err == nil {
				return
			}
			if yielded || rctx.Err() != nil || !failover(err) {
				iterErr = err
				return
			}
			lastErr = err
		}
		iterErr = lastErr
	}
	return seq, func() error { return iterErr }
}

// InsertEdges inserts a batch through the owning shard's primary. Never
// retried; the coordinator proxy carries it only when no topology is
// available.
func (g *ShardGraph) InsertEdges(ctx context.Context, edges []truss.Edge) (*MutationResult, error) {
	if r, _, ok := g.s.routerFor(ctx, g.name); ok {
		return g.noteResult(r.Graph(g.name).InsertEdges(ctx, edges))
	}
	return g.noteResult(g.s.coord.Graph(g.name).InsertEdges(ctx, edges))
}

// DeleteEdges deletes a batch through the owning shard's primary. Never
// retried; coordinator only without a topology.
func (g *ShardGraph) DeleteEdges(ctx context.Context, edges []truss.Edge) (*MutationResult, error) {
	if r, _, ok := g.s.routerFor(ctx, g.name); ok {
		return g.noteResult(r.Graph(g.name).DeleteEdges(ctx, edges))
	}
	return g.noteResult(g.s.coord.Graph(g.name).DeleteEdges(ctx, edges))
}

// Update applies a mixed batch through the owning shard's primary.
// Never retried; coordinator only without a topology.
func (g *ShardGraph) Update(ctx context.Context, adds, dels []truss.Edge) (*MutationResult, error) {
	if r, _, ok := g.s.routerFor(ctx, g.name); ok {
		return g.noteResult(r.Graph(g.name).Update(ctx, adds, dels))
	}
	return g.noteResult(g.s.coord.Graph(g.name).Update(ctx, adds, dels))
}

// noteResult records a successful mutation's version as the graph's
// read-your-writes floor at the ShardRouter level — above any single
// Router, so the floor survives topology refreshes rebuilding them.
func (g *ShardGraph) noteResult(res *MutationResult, err error) (*MutationResult, error) {
	if err == nil && res != nil {
		g.s.noteWrite(g.name, res.Version)
	}
	return res, err
}
