package truss

import (
	"context"
	"errors"
	"fmt"
	"iter"

	"repro/internal/community"
	"repro/internal/index"
)

// Querier is the single query surface over a truss decomposition,
// wherever the answers live: a local *Index (QueryIndex), any engine's
// Decomposition without an index build (QueryDecomposition), or a remote
// trussd server (the client package's Graph). The paper's point is that
// five interchangeable algorithms answer the same truss queries; Querier
// makes "which engine, which machine" a deployment detail instead of an
// API fork — code written against it runs unchanged whether the answers
// come from RAM, a disk spool, or HTTP.
//
// Every method takes a context because remote implementations do real
// I/O; local implementations honor cancellation on their long scans and
// otherwise ignore it. Large answers stream: KTrussEdges returns a Go
// iterator rather than a slice, so a remote k-truss is consumed
// edge-by-edge off the wire and a local one straight out of the index.
//
// Implementations agree answer-for-answer (the cross-implementation
// parity suite in querier_test.go enforces it) with one documented
// exception: the edge order of KTrussEdges is implementation-dependent.
type Querier interface {
	// TrussNumber returns phi(u,v) and whether the edge exists.
	TrussNumber(ctx context.Context, u, v uint32) (int32, bool, error)
	// TrussNumbers answers a batch of edge lookups in one operation —
	// one scan for the slow path, one round-trip for a remote graph.
	// The result is parallel to pairs.
	TrussNumbers(ctx context.Context, pairs []Edge) ([]TrussAnswer, error)
	// Histogram returns |Phi_k| indexed by k, length KMax+1 (entries 0
	// and 1 are always zero).
	Histogram(ctx context.Context) ([]int64, error)
	// TopClasses returns the t highest non-empty k-classes, k descending
	// (t <= 0 returns all).
	TopClasses(ctx context.Context, t int) ([]ClassSummary, error)
	// Communities returns the k-truss communities — triangle-connected
	// components of T_k — largest first (ties by lexicographically
	// smallest member edge). k must be at least 3.
	Communities(ctx context.Context, k int32) ([]QueryCommunity, error)
	// KTrussEdges streams every edge of the k-truss T_k (phi >= k) with
	// its truss number; k <= 2 streams all classified edges. The edge
	// order is implementation-dependent. Iteration errors (a dropped
	// connection, a spool read failure, cancellation) surface through
	// the second return value, checked after the loop:
	//
	//	seq, errf := q.KTrussEdges(ctx, 5)
	//	for e, phi := range seq { ... }
	//	if err := errf(); err != nil { ... }
	KTrussEdges(ctx context.Context, k int32) (iter.Seq2[Edge, int32], func() error)
}

// TrussAnswer is one result of a batched Querier.TrussNumbers lookup.
type TrussAnswer struct {
	// Edge is the queried pair, canonicalized (U < V).
	Edge Edge
	// Truss is phi(Edge) when Found, 0 otherwise.
	Truss int32
	// Found reports whether the edge exists in the graph.
	Found bool
}

// ClassSummary describes one non-empty k-class as returned by
// Querier.TopClasses.
type ClassSummary struct {
	// K is the class level: every member edge has truss number exactly K.
	K int32
	// Size is |Phi_K|.
	Size int64
}

// QueryCommunity is one k-truss community as returned by
// Querier.Communities: edges are endpoint pairs (not index-local edge
// IDs), so the representation is portable across local and remote
// implementations.
type QueryCommunity struct {
	// K is the truss level the community lives at.
	K int32
	// Edges lists the member edges, canonical and lexicographically
	// ascending.
	Edges []Edge
	// Vertices lists the covered vertices, ascending. Communities may
	// share vertices (but never edges) with each other.
	Vertices []uint32
}

// errBadCommunityK is the shared k < 3 rejection, aligned with the
// server's 400 on the communities endpoint.
func errBadCommunityK(k int32) error {
	return fmt.Errorf("truss: communities require k >= 3, got %d", k)
}

// The local implementations of the unified query surface.
var (
	_ Querier = indexQuerier{}
	_ Querier = decompQuerier{}
)

// QueryIndex adapts a built *Index to the Querier interface — the fast
// path: every method is answered from the index's O(answer) tables.
func QueryIndex(ix *Index) Querier { return indexQuerier{ix} }

type indexQuerier struct{ ix *index.TrussIndex }

func (q indexQuerier) TrussNumber(ctx context.Context, u, v uint32) (int32, bool, error) {
	k, ok := q.ix.TrussNumber(u, v)
	return k, ok, nil
}

func (q indexQuerier) TrussNumbers(ctx context.Context, pairs []Edge) ([]TrussAnswer, error) {
	out := make([]TrussAnswer, len(pairs))
	for i, p := range pairs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out[i].Edge = p.Canon()
		out[i].Truss, out[i].Found = q.ix.TrussNumber(p.U, p.V)
	}
	return out, nil
}

func (q indexQuerier) Histogram(ctx context.Context) ([]int64, error) {
	return q.ix.Histogram(), nil
}

func (q indexQuerier) TopClasses(ctx context.Context, t int) ([]ClassSummary, error) {
	classes := q.ix.TopClasses(t)
	out := make([]ClassSummary, len(classes))
	for i, c := range classes {
		out[i] = ClassSummary{K: c.K, Size: int64(len(c.Edges))}
	}
	return out, nil
}

func (q indexQuerier) Communities(ctx context.Context, k int32) ([]QueryCommunity, error) {
	if k < 3 {
		return nil, errBadCommunityK(k)
	}
	n := q.ix.CommunityCount(k)
	out := make([]QueryCommunity, 0, n)
	for c := 0; c < n; c++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ids, _ := q.ix.Community(k, c)
		edges := make([]Edge, len(ids))
		for i, id := range ids {
			edges[i] = q.ix.Graph().Edge(id)
		}
		out = append(out, QueryCommunity{K: k, Edges: edges, Vertices: q.ix.Vertices(ids)})
	}
	return out, nil
}

func (q indexQuerier) KTrussEdges(ctx context.Context, k int32) (iter.Seq2[Edge, int32], func() error) {
	var iterErr error
	seq := func(yield func(Edge, int32) bool) {
		for i, id := range q.ix.TrussEdges(k) {
			if i&1023 == 0 {
				if err := ctx.Err(); err != nil {
					iterErr = err
					return
				}
			}
			if !yield(q.ix.Graph().Edge(id), q.ix.EdgeTruss(id)) {
				return
			}
		}
	}
	return seq, func() error { return iterErr }
}

// QueryDecomposition adapts any Decomposition to the Querier interface
// without building an index — the slow path for one-shot queries: point
// and batch lookups scan the decomposition's edge stream (O(m) per
// call, O(1) extra memory for external results), and Communities
// reconstructs the k-truss subgraph first (in-memory results skip the
// reconstruction). For repeated queries build an index once with
// BuildIndexFrom instead.
//
// The adapter does not own d: closing the decomposition remains the
// caller's job, and querying a closed decomposition fails the same way
// reading its spools does.
func QueryDecomposition(d Decomposition) Querier { return decompQuerier{d} }

type decompQuerier struct{ d Decomposition }

// errStopScan aborts an Edges scan early once the answer is complete.
var errStopScan = errors.New("stop scan")

func (q decompQuerier) TrussNumber(ctx context.Context, u, v uint32) (int32, bool, error) {
	answers, err := q.TrussNumbers(ctx, []Edge{{U: u, V: v}})
	if err != nil {
		return 0, false, err
	}
	return answers[0].Truss, answers[0].Found, nil
}

func (q decompQuerier) TrussNumbers(ctx context.Context, pairs []Edge) ([]TrussAnswer, error) {
	out := make([]TrussAnswer, len(pairs))
	want := make(map[uint64][]int, len(pairs)) // key -> indexes into out (duplicates allowed)
	for i, p := range pairs {
		c := p.Canon()
		out[i].Edge = c
		if c.U != c.V { // self-loops can never be edges
			want[c.Key()] = append(want[c.Key()], i)
		}
	}
	remaining := len(want)
	if remaining == 0 {
		// Nothing to look up (empty batch, or self-loops only): skip the
		// O(m) stream scan entirely.
		return out, nil
	}
	count := 0
	err := q.d.Edges(func(u, v uint32, phi int32) error {
		if count&4095 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		count++
		key := Edge{U: u, V: v}.Key()
		idxs, ok := want[key]
		if !ok {
			return nil
		}
		for _, i := range idxs {
			out[i].Truss = phi
			out[i].Found = true
		}
		delete(want, key)
		remaining--
		if remaining == 0 {
			return errStopScan
		}
		return nil
	})
	if err != nil && !errors.Is(err, errStopScan) {
		return nil, err
	}
	return out, nil
}

func (q decompQuerier) Histogram(ctx context.Context) ([]int64, error) {
	return q.d.Histogram(), nil
}

func (q decompQuerier) TopClasses(ctx context.Context, t int) ([]ClassSummary, error) {
	hist := q.d.Histogram()
	var out []ClassSummary
	for k := len(hist) - 1; k >= 2; k-- {
		if hist[k] == 0 {
			continue
		}
		out = append(out, ClassSummary{K: int32(k), Size: hist[k]})
		if t > 0 && len(out) == t {
			break
		}
	}
	return out, nil
}

func (q decompQuerier) Communities(ctx context.Context, k int32) ([]QueryCommunity, error) {
	if k < 3 {
		return nil, errBadCommunityK(k)
	}
	res, ok := AsInMemory(q.d)
	if !ok {
		// Reconstruct the k-truss subgraph from the edge stream: T_k's
		// communities only involve T_k edges and their triangles, so the
		// (much smaller) subgraph suffices — the full graph is never
		// materialized. The stream filtered to phi >= k is itself a valid
		// decomposition stream, so the index package does the
		// sort-and-align reconstruction, and its community tables for
		// level k over the subgraph are exactly T_k's communities.
		sub, err := index.BuildFromStream(ctx, 0, func(fn func(u, v uint32, phi int32) error) error {
			return q.d.Edges(func(u, v uint32, phi int32) error {
				if phi < k {
					return nil
				}
				return fn(u, v, phi)
			})
		})
		if err != nil {
			return nil, err
		}
		return indexQuerier{sub}.Communities(ctx, k)
	}
	comms := community.Detect(res, k)
	out := make([]QueryCommunity, len(comms))
	for i, c := range comms {
		edges := make([]Edge, len(c.Edges))
		for j, id := range c.Edges {
			edges[j] = res.G.Edge(id)
		}
		out[i] = QueryCommunity{K: k, Edges: edges, Vertices: c.Vertices}
	}
	return out, nil
}

func (q decompQuerier) KTrussEdges(ctx context.Context, k int32) (iter.Seq2[Edge, int32], func() error) {
	var iterErr error
	seq := func(yield func(Edge, int32) bool) {
		count := 0
		err := q.d.Edges(func(u, v uint32, phi int32) error {
			if count&4095 == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			count++
			if phi < k {
				return nil
			}
			if !yield(Edge{U: u, V: v}.Canon(), phi) {
				return errStopScan
			}
			return nil
		})
		if err != nil && !errors.Is(err, errStopScan) {
			iterErr = err
		}
	}
	return seq, func() error { return iterErr }
}

// IndexOption configures BuildIndexFrom.
type IndexOption func(*indexConfig)

type indexConfig struct {
	forceStream bool
}

// WithIndexStreaming forces the streaming reconstruction path even when
// the decomposition is in-memory (where BuildIndexFrom would normally
// take the zero-copy fast path through BuildIndex). Useful for tests and
// benchmarks that compare the two paths; production callers never need it.
func WithIndexStreaming() IndexOption {
	return func(c *indexConfig) { c.forceStream = true }
}

// BuildIndexFrom freezes any engine's Decomposition into an Index by
// consuming its edge stream — the path that makes external-memory
// (BottomUp/TopDown spools) and MapReduce results indexable and servable,
// not just in-memory ones. In-memory decompositions take the BuildIndex
// fast path (no reconstruction); everything else is reconstructed from
// the stream in one pass plus a sort. Either way the finished Index is
// structurally identical to BuildIndex over the equivalent in-memory
// Result, answers the same queries, and no longer depends on d: the
// decomposition may be closed (releasing its spools) as soon as
// BuildIndexFrom returns.
//
// A top-t EngineTopDown run yields a partial decomposition; its index
// covers exactly the computed classes.
func BuildIndexFrom(ctx context.Context, d Decomposition, opts ...IndexOption) (*Index, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if d == nil {
		return nil, errors.New("truss: BuildIndexFrom requires a non-nil Decomposition")
	}
	var cfg indexConfig
	for _, opt := range opts {
		if opt != nil {
			opt(&cfg)
		}
	}
	if !cfg.forceStream {
		if res, ok := AsInMemory(d); ok {
			return index.Build(res), nil
		}
	}
	return index.BuildFromStream(ctx, d.NumVertices(), d.Edges)
}
