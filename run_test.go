package truss_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	truss "repro"
	"repro/internal/gen"
)

var allEngines = []truss.Engine{
	truss.EngineInMem,
	truss.EngineBaseline,
	truss.EngineParallel,
	truss.EngineBottomUp,
	truss.EngineTopDown,
	truss.EngineMapReduce,
}

// parityFixtures are graphs with non-trivial truss structure (several
// levels, planted dense cores) shared by the parity and cancellation
// tests.
func parityFixtures() map[string]*truss.Graph {
	return map[string]*truss.Graph{
		"paper":     gen.PaperExample(),
		"community": gen.Community(6, 10, 0.7, 1.5, 3),
		"cliques":   gen.WithPlantedCliques(gen.RMAT(8, 4, 0.57, 0.19, 0.19, 4), []int{10}, 4),
	}
}

// TestRunEngineParity runs every engine through truss.Run on the same
// fixtures and requires identical phi histograms, kmax, and classified
// edge counts — the acceptance criterion of the unified API: engine
// choice is a tuning knob, not a different answer.
func TestRunEngineParity(t *testing.T) {
	ctx := context.Background()
	for name, g := range parityFixtures() {
		t.Run(name, func(t *testing.T) {
			want, err := truss.Run(ctx, truss.FromGraph(g))
			if err != nil {
				t.Fatal(err)
			}
			defer want.Close()
			wantHist := want.Histogram()

			for _, eng := range allEngines {
				d, err := truss.Run(ctx, truss.FromGraph(g),
					truss.WithEngine(eng),
					truss.WithBudget(int64(g.NumEdges())), // force partitioning
					truss.WithSeed(7),
					truss.WithTempDir(t.TempDir()))
				if err != nil {
					t.Fatalf("%v: %v", eng, err)
				}
				if d.Engine() != eng {
					t.Errorf("%v: Engine() = %v", eng, d.Engine())
				}
				if d.KMax() != want.KMax() {
					t.Errorf("%v: kmax = %d, want %d", eng, d.KMax(), want.KMax())
				}
				if d.NumEdges() != int64(g.NumEdges()) {
					t.Errorf("%v: classified %d of %d edges", eng, d.NumEdges(), g.NumEdges())
				}
				got := d.Histogram()
				if len(got) != len(wantHist) {
					t.Fatalf("%v: histogram length %d, want %d", eng, len(got), len(wantHist))
				}
				for k := range got {
					if got[k] != wantHist[k] {
						t.Errorf("%v: |Phi_%d| = %d, want %d", eng, k, got[k], wantHist[k])
					}
				}
				count := int64(0)
				if err := d.Edges(func(u, v uint32, phi int32) error {
					if phi < 2 {
						return fmt.Errorf("edge (%d,%d): phi %d < 2", u, v, phi)
					}
					count++
					return nil
				}); err != nil {
					t.Errorf("%v: Edges: %v", eng, err)
				}
				if count != d.NumEdges() {
					t.Errorf("%v: Edges streamed %d records, NumEdges says %d", eng, count, d.NumEdges())
				}
				if err := d.Close(); err != nil {
					t.Errorf("%v: Close: %v", eng, err)
				}
			}
		})
	}
}

// TestRunPreCancelled: a context cancelled before Run starts must stop
// every engine before it does any work.
func TestRunPreCancelled(t *testing.T) {
	g := gen.PaperExample()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, eng := range allEngines {
		_, err := truss.Run(ctx, truss.FromGraph(g),
			truss.WithEngine(eng), truss.WithTempDir(t.TempDir()))
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%v: err = %v, want context.Canceled", eng, err)
		}
	}
}

// TestRunMidCancel cancels the context from inside the progress observer
// at the first peeling level / candidate round and requires every engine
// to abort promptly with ctx.Err() — in-memory and external alike.
func TestRunMidCancel(t *testing.T) {
	// Planted cliques give every engine multiple levels/rounds to sweep,
	// so there is always work left after the first level event.
	g := gen.WithPlantedCliques(gen.RMAT(9, 4, 0.57, 0.19, 0.19, 6), []int{14, 10}, 6)
	for _, eng := range allEngines {
		t.Run(eng.String(), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			tmp := t.TempDir()
			levels := 0
			d, err := truss.Run(ctx, truss.FromGraph(g),
				truss.WithEngine(eng),
				truss.WithBudget(int64(g.NumEdges())/2),
				truss.WithTempDir(tmp),
				truss.WithProgress(func(p truss.Progress) {
					if p.Stage == truss.StageLevel {
						levels++
						cancel()
					}
				}))
			if !errors.Is(err, context.Canceled) {
				if d != nil {
					d.Close()
				}
				t.Fatalf("err = %v (levels seen: %d), want context.Canceled", err, levels)
			}
			if levels == 0 {
				t.Fatal("no StageLevel event was delivered before the run finished")
			}
			// An aborted run must not orphan spools or sort runs in the
			// temp directory.
			left, err := os.ReadDir(tmp)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range left {
				t.Errorf("cancelled %v run leaked temp file %s", eng, f.Name())
			}
		})
	}
}

// TestRunFromFileStreaming exercises the out-of-core source path: a SNAP
// text file full of duplicates, reversed pairs, self-loops, and comments
// must stream into the external engines (canonicalized and deduplicated
// out of core) and produce the same decomposition as loading the file into
// memory.
func TestRunFromFileStreaming(t *testing.T) {
	ctx := context.Background()
	g := gen.Community(6, 10, 0.7, 1.5, 3)
	dir := t.TempDir()

	// Write a messy text variant: every edge twice (once reversed), plus
	// noise lines and a self-loop.
	path := filepath.Join(dir, "messy.txt")
	var sb strings.Builder
	sb.WriteString("# messy SNAP file\n\n% another comment style\n")
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, "%d %d\n", e.U, e.V)
		fmt.Fprintf(&sb, "%d\t%d\n", e.V, e.U) // duplicate, reversed
	}
	sb.WriteString("3 3\n") // self-loop, must be dropped
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	want := truss.Decompose(g)
	for _, eng := range []truss.Engine{truss.EngineBottomUp, truss.EngineTopDown} {
		d, err := truss.Run(ctx, truss.FromFile(path),
			truss.WithEngine(eng),
			truss.WithBudget(int64(g.NumEdges())),
			truss.WithTempDir(dir))
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		if d.KMax() != want.KMax {
			t.Errorf("%v: kmax = %d, want %d", eng, d.KMax(), want.KMax)
		}
		if d.NumEdges() != int64(g.NumEdges()) {
			t.Errorf("%v: classified %d edges, want %d (dedup failed?)", eng, d.NumEdges(), g.NumEdges())
		}
		if err := d.Edges(func(u, v uint32, phi int32) error {
			id, ok := g.EdgeID(u, v)
			if !ok {
				return fmt.Errorf("unknown edge (%d,%d)", u, v)
			}
			if want.Phi[id] != phi {
				return fmt.Errorf("edge (%d,%d): phi %d, want %d", u, v, phi, want.Phi[id])
			}
			return nil
		}); err != nil {
			t.Errorf("%v: %v", eng, err)
		}
		d.Close()
	}

	// Binary files stream too (with duplicate records this time).
	bpath := filepath.Join(dir, "dup.bin")
	if err := truss.SaveGraph(bpath, g); err != nil {
		t.Fatal(err)
	}
	d, err := truss.Run(ctx, truss.FromFile(bpath), truss.WithEngine(truss.EngineBottomUp),
		truss.WithTempDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.KMax() != want.KMax {
		t.Errorf("bin: kmax = %d, want %d", d.KMax(), want.KMax)
	}
}

// TestRunFromReader decomposes SNAP text from a plain io.Reader, and
// verifies the single-use contract.
func TestRunFromReader(t *testing.T) {
	ctx := context.Background()
	g := gen.PaperExample()
	var sb strings.Builder
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, "%d %d\n", e.U, e.V)
	}

	src := truss.FromReader(strings.NewReader(sb.String()))
	d, err := truss.Run(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.KMax() != 5 {
		t.Fatalf("kmax = %d, want 5", d.KMax())
	}
	if _, err := truss.Run(ctx, src); err == nil {
		t.Fatal("second Run over the same reader source should fail")
	}

	// External engines stream the reader without materializing a graph.
	src2 := truss.FromReader(strings.NewReader(sb.String()))
	d2, err := truss.Run(ctx, src2, truss.WithEngine(truss.EngineBottomUp),
		truss.WithTempDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.KMax() != 5 {
		t.Fatalf("external kmax = %d, want 5", d2.KMax())
	}
}

// TestRunTopT: a top-t run reports only the top classes in its histogram
// and edge stream.
func TestRunTopT(t *testing.T) {
	g := gen.PaperExample()
	d, err := truss.Run(context.Background(), truss.FromGraph(g),
		truss.WithEngine(truss.EngineTopDown),
		truss.WithTopT(1),
		truss.WithTempDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.KMax() != 5 {
		t.Fatalf("kmax = %d, want 5", d.KMax())
	}
	if h := d.Histogram(); h[5] != 10 {
		t.Fatalf("|Phi_5| = %d, want 10", h[5])
	}
}

// TestRunProgressStages checks the observer sees the stage sequence
// load -> decompose -> level* -> done.
func TestRunProgressStages(t *testing.T) {
	var stages []string
	d, err := truss.Run(context.Background(), truss.FromGraph(gen.PaperExample()),
		truss.WithProgress(func(p truss.Progress) { stages = append(stages, p.Stage) }))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if len(stages) < 3 || stages[0] != truss.StageLoad || stages[len(stages)-1] != truss.StageDone {
		t.Fatalf("stage sequence = %v", stages)
	}
	sawLevel := false
	for _, s := range stages {
		if s == truss.StageLevel {
			sawLevel = true
		}
	}
	if !sawLevel {
		t.Fatalf("no level events in %v", stages)
	}
}

// TestParseEngine covers the CLI name mapping.
func TestParseEngine(t *testing.T) {
	for name, want := range map[string]truss.Engine{
		"inmem": truss.EngineInMem, "baseline": truss.EngineBaseline,
		"parallel": truss.EngineParallel, "bottomup": truss.EngineBottomUp,
		"topdown": truss.EngineTopDown, "mapreduce": truss.EngineMapReduce,
		"mr": truss.EngineMapReduce,
	} {
		got, err := truss.ParseEngine(name)
		if err != nil || got != want {
			t.Errorf("ParseEngine(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := truss.ParseEngine("nope"); err == nil {
		t.Error("ParseEngine(nope) should fail")
	}
}
