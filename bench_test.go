// Benchmarks regenerating the paper's evaluation, one family per table
// (see DESIGN.md's experiment index). All benchmarks run on the ~1/10
// scale "quick" dataset analogs so a full -bench=. pass stays in the
// minutes range; cmd/experiments runs the full-scale analogs.
//
//	go test -bench=. -benchmem
package truss_test

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	truss "repro"
	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/embu"
	"repro/internal/emtd"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/kcore"
	"repro/internal/mapreduce"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/server"
	"repro/internal/triangle"
)

func quickDataset(b *testing.B, name string) *graph.Graph {
	b.Helper()
	for _, d := range gen.QuickDatasets() {
		if d.Name == name {
			return gen.CachedBuild("bench/"+name, d)
		}
	}
	b.Fatalf("unknown dataset %s", name)
	return nil
}

// externalBudget mirrors the experiment harness: 60% of the adjacency
// entries, so the external machinery must actually partition.
func externalBudget(g *graph.Graph) int64 {
	bud := int64(g.NumEdges()) * 6 / 5
	if bud < 1<<12 {
		bud = 1 << 12
	}
	return bud
}

// --- Unified engine API (truss.Run) ----------------------------------------

// BenchmarkRun measures every engine through the unified truss.Run entry
// point on small fixture graphs — the engine × graph matrix the CI bench
// job captures as BENCH_PR.json. TD-MR runs only on the smallest analog
// (as in the paper's Table 4; it is orders of magnitude slower).
//
// The XL rows are the parallel-speedup probe: a 1M+ edge graph where the
// PKT engine's round structure pays off, run only for the in-memory and
// parallel engines (the external engines would dominate the bench budget
// at that size). CI gates BenchmarkRun/parallel/XL against
// BenchmarkRun/inmem/XL via benchjson -speedup.
func BenchmarkRun(b *testing.B) {
	ctx := context.Background()
	allEngines := []truss.Engine{
		truss.EngineInMem, truss.EngineBaseline, truss.EngineParallel,
		truss.EngineBottomUp, truss.EngineTopDown, truss.EngineMapReduce,
	}
	for _, name := range []string{"P2P", "HEP"} {
		g := quickDataset(b, name)
		for _, eng := range allEngines {
			if eng == truss.EngineMapReduce && name != "P2P" {
				continue
			}
			b.Run(fmt.Sprintf("%s/%s", eng, name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					d, err := truss.Run(ctx, truss.FromGraph(g),
						truss.WithEngine(eng),
						truss.WithBudget(externalBudget(g)),
						truss.WithSeed(1),
						truss.WithTempDir(b.TempDir()))
					if err != nil {
						b.Fatal(err)
					}
					if d.KMax() == 0 {
						b.Fatal("kmax 0")
					}
					d.Close()
				}
			})
		}
	}

	xl := gen.CachedBuild("bench/XL", gen.XLDataset())
	if xl.NumEdges() < 1_000_000 {
		b.Fatalf("XL target shrank below 1M edges: m=%d", xl.NumEdges())
	}
	for _, eng := range []truss.Engine{truss.EngineInMem, truss.EngineParallel} {
		b.Run(fmt.Sprintf("%s/XL", eng), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d, err := truss.Run(ctx, truss.FromGraph(xl), truss.WithEngine(eng))
				if err != nil {
					b.Fatal(err)
				}
				if d.KMax() == 0 {
					b.Fatal("kmax 0")
				}
				d.Close()
			}
		})
	}
}

// --- Index construction (truss.BuildIndexFrom) ------------------------------

// BenchmarkBuildIndexFrom measures index construction across build
// paths: the zero-copy fast path over an in-memory Result, the forced
// streaming reconstruction over the same result (isolating the
// sort-and-rebuild overhead), and streaming straight out of the
// bottom-up engine's disk spool (the path that makes external results
// servable). CI captures it into BENCH_PR.json so index-construction
// cost is tracked across PRs alongside the engines.
func BenchmarkBuildIndexFrom(b *testing.B) {
	ctx := context.Background()
	g := quickDataset(b, "P2P")
	dmem, err := truss.Run(ctx, truss.FromGraph(g))
	if err != nil {
		b.Fatal(err)
	}
	dbu, err := truss.Run(ctx, truss.FromGraph(g),
		truss.WithEngine(truss.EngineBottomUp),
		truss.WithBudget(externalBudget(g)), truss.WithSeed(1),
		truss.WithTempDir(b.TempDir()))
	if err != nil {
		b.Fatal(err)
	}
	defer dbu.Close()

	for _, tc := range []struct {
		name string
		d    truss.Decomposition
		opts []truss.IndexOption
	}{
		{"fastpath/inmem", dmem, nil},
		{"stream/inmem", dmem, []truss.IndexOption{truss.WithIndexStreaming()}},
		{"stream/bottomup", dbu, nil},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ix, err := truss.BuildIndexFrom(ctx, tc.d, tc.opts...)
				if err != nil {
					b.Fatal(err)
				}
				if ix.KMax() == 0 {
					b.Fatal("kmax 0")
				}
			}
		})
	}
}

// --- Dynamic maintenance ----------------------------------------------------

// BenchmarkUpdate compares incremental maintenance of a single-edge batch
// against the full recompute it replaces, on a ~100k-edge scale-free
// graph. The dynamic subsystem's acceptance bar is a >= 10x advantage for
// the incremental path; in practice it is orders of magnitude. Update
// never mutates its inputs, so every iteration starts from the same
// pristine decomposition.
func BenchmarkUpdate(b *testing.B) {
	ctx := context.Background()
	g := gen.BarabasiAlbert(20000, 5, 1)
	if g.NumEdges() < 90_000 {
		b.Fatalf("benchmark graph too small: m=%d", g.NumEdges())
	}
	phi := core.Decompose(g).Phi
	edges := g.Edges()
	cfg := dynamic.Config{}

	b.Run("incremental-delete-1edge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			del := edges[(i*7919)%len(edges)]
			res, err := dynamic.Update(ctx, g, phi, dynamic.Batch{Dels: []graph.Edge{del}}, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if res.KMax == 0 {
				b.Fatal("kmax 0")
			}
		}
	})
	b.Run("incremental-insert-1edge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// A fresh vertex pairing, almost surely a non-edge; Update
			// tolerates the occasional existing one.
			add := graph.Edge{U: uint32((i * 13) % g.NumVertices()), V: uint32((i*7919 + 101) % g.NumVertices())}
			res, err := dynamic.Update(ctx, g, phi, dynamic.Batch{Adds: []graph.Edge{add}}, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if res.KMax == 0 {
				b.Fatal("kmax 0")
			}
		}
	})
	b.Run("full-recompute-sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if r := core.Decompose(g); r.KMax == 0 {
				b.Fatal("kmax 0")
			}
		}
	})
	b.Run("full-recompute-parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if r := core.DecomposeParallel(g, 0); r.KMax == 0 {
				b.Fatal("kmax 0")
			}
		}
	})
}

// --- Table 2: dataset statistics ------------------------------------------

func BenchmarkTable2_Stats(b *testing.B) {
	for _, name := range []string{"P2P", "HEP", "Amazon", "Wiki", "Skitter", "Blog", "LJ", "BTC", "Web"} {
		g := quickDataset(b, name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := metrics.Stats(g)
				if st.KMax == 0 {
					b.Fatal("kmax 0")
				}
			}
		})
	}
}

// --- Table 3: TD-inmem vs TD-inmem+ ----------------------------------------

func BenchmarkTable3_TDInmem(b *testing.B) {
	for _, name := range []string{"Wiki", "Amazon", "Skitter", "Blog"} {
		g := quickDataset(b, name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if r := core.DecomposeBaseline(g); r.KMax == 0 {
					b.Fatal("kmax 0")
				}
			}
		})
	}
}

func BenchmarkTable3_TDInmemPlus(b *testing.B) {
	for _, name := range []string{"Wiki", "Amazon", "Skitter", "Blog"} {
		g := quickDataset(b, name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if r := core.Decompose(g); r.KMax == 0 {
					b.Fatal("kmax 0")
				}
			}
		})
	}
}

// --- Table 4: TD-bottomup vs TD-MR ------------------------------------------

func BenchmarkTable4_TDBottomup(b *testing.B) {
	for _, name := range []string{"P2P", "HEP", "LJ", "BTC", "Web"} {
		g := quickDataset(b, name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := embu.DecomposeGraph(context.Background(), g, embu.Config{
					Budget: externalBudget(g), Seed: 1, TempDir: b.TempDir(),
				})
				if err != nil {
					b.Fatal(err)
				}
				res.Close()
			}
		})
	}
}

// BenchmarkTable4_TDMR runs the MapReduce baseline on the smallest analog
// only (the paper could not run it beyond P2P and HEP either; HEP takes
// minutes per iteration and is exercised by cmd/experiments instead).
func BenchmarkTable4_TDMR(b *testing.B) {
	g := quickDataset(b, "P2P")
	b.Run("P2P", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := mapreduce.TrussDecompose(g)
			if res.KMax == 0 {
				b.Fatal("kmax 0")
			}
			b.ReportMetric(float64(res.Counters.Rounds), "mr-rounds")
			b.ReportMetric(float64(res.Counters.Shuffled), "mr-records")
		}
	})
}

// --- Table 5: TD-topdown vs TD-bottomup -------------------------------------

func BenchmarkTable5_TopDownTop20(b *testing.B) {
	for _, name := range []string{"LJ", "BTC", "Web"} {
		g := quickDataset(b, name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := emtd.DecomposeGraph(context.Background(), g, emtd.Config{
					TopT: 20, Budget: externalBudget(g), Seed: 1, TempDir: b.TempDir(),
				})
				if err != nil {
					b.Fatal(err)
				}
				res.Close()
			}
		})
	}
}

func BenchmarkTable5_TopDownAll(b *testing.B) {
	for _, name := range []string{"LJ", "BTC", "Web"} {
		g := quickDataset(b, name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := emtd.DecomposeGraph(context.Background(), g, emtd.Config{
					Budget: externalBudget(g), Seed: 1, TempDir: b.TempDir(),
				})
				if err != nil {
					b.Fatal(err)
				}
				res.Close()
			}
		})
	}
}

func BenchmarkTable5_Bottomup(b *testing.B) {
	for _, name := range []string{"LJ", "BTC", "Web"} {
		g := quickDataset(b, name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := embu.DecomposeGraph(context.Background(), g, embu.Config{
					Budget: externalBudget(g), Seed: 1, TempDir: b.TempDir(),
				})
				if err != nil {
					b.Fatal(err)
				}
				res.Close()
			}
		})
	}
}

// --- Table 6: kmax-truss vs cmax-core ----------------------------------------

func BenchmarkTable6_TrussVsCore(b *testing.B) {
	for _, name := range []string{"Amazon", "Wiki", "Skitter", "Blog", "LJ", "BTC", "Web"} {
		g := quickDataset(b, name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ts, cs := metrics.TrussVsCore(g)
				if ts.E == 0 || cs.E == 0 {
					b.Fatal("degenerate subgraphs")
				}
			}
		})
	}
}

// --- Ablations (DESIGN.md design choices) ------------------------------------

// BenchmarkAblation_KInit measures the Section 6.3 shortcut: top-20 truss
// classes with and without the in-memory kinit jump.
func BenchmarkAblation_KInit(b *testing.B) {
	g := quickDataset(b, "LJ")
	for _, tc := range []struct {
		name    string
		disable bool
	}{{"shortcut-on", false}, {"shortcut-off", true}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := emtd.DecomposeGraph(context.Background(), g, emtd.Config{
					TopT: 20, Budget: externalBudget(g), Seed: 1,
					TempDir: b.TempDir(), DisableKInit: tc.disable,
				})
				if err != nil {
					b.Fatal(err)
				}
				res.Close()
			}
		})
	}
}

// BenchmarkAblation_PartitionStrategy compares the three partitioners of
// Chu & Cheng inside the bottom-up pipeline.
func BenchmarkAblation_PartitionStrategy(b *testing.B) {
	g := quickDataset(b, "Wiki")
	for _, tc := range []struct {
		name  string
		strat partition.Strategy
	}{
		{"sequential", partition.Sequential},
		{"randomized", partition.Randomized},
		{"dominating", partition.DominatingSet},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := embu.DecomposeGraph(context.Background(), g, embu.Config{
					Budget: externalBudget(g), Strategy: tc.strat, Seed: 1, TempDir: b.TempDir(),
				})
				if err != nil {
					b.Fatal(err)
				}
				res.Close()
			}
		})
	}
}

// BenchmarkAblation_BudgetSweep shows how the bottom-up runtime responds to
// the memory budget (fractions of the graph's 2m adjacency entries).
func BenchmarkAblation_BudgetSweep(b *testing.B) {
	g := quickDataset(b, "Wiki")
	entries := int64(2 * g.NumEdges())
	for _, tc := range []struct {
		name  string
		share int64 // percent of adjacency entries
	}{{"budget-30pct", 30}, {"budget-60pct", 60}, {"budget-120pct", 120}, {"budget-240pct", 240}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := embu.DecomposeGraph(context.Background(), g, embu.Config{
					Budget: entries * tc.share / 100, Seed: 1, TempDir: b.TempDir(),
				})
				if err != nil {
					b.Fatal(err)
				}
				res.Close()
			}
		})
	}
}

// BenchmarkAblation_SupportInit compares the O(m^1.5) oriented triangle
// counter against the naive full-merge counter used by Algorithm 1's
// analysis (the initialization step both in-memory algorithms share).
func BenchmarkAblation_SupportInit(b *testing.B) {
	g := quickDataset(b, "Skitter")
	b.Run("compact-forward", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if s := triangle.Supports(g); len(s) == 0 {
				b.Fatal("no supports")
			}
		}
	})
	b.Run("naive-merge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if s := triangle.SupportsNaive(g); len(s) == 0 {
				b.Fatal("no supports")
			}
		}
	})
}

// BenchmarkAblation_Parallel sweeps worker counts for the parallel
// decomposition extension (level-synchronized peeling) against the
// sequential Algorithm 2.
func BenchmarkAblation_Parallel(b *testing.B) {
	g := quickDataset(b, "LJ")
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if r := core.Decompose(g); r.KMax == 0 {
				b.Fatal("kmax 0")
			}
		}
	})
	for _, w := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if r := core.DecomposeParallel(g, w); r.KMax == 0 {
					b.Fatal("kmax 0")
				}
			}
		})
	}
}

// BenchmarkAblation_CoreVsTruss compares the cost of core decomposition
// (O(m)) against truss decomposition (O(m^1.5)) — the price of the
// stronger cohesion guarantee.
func BenchmarkAblation_CoreVsTruss(b *testing.B) {
	g := quickDataset(b, "Blog")
	b.Run("kcore", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if r := kcore.Decompose(g); r.CMax == 0 {
				b.Fatal("cmax 0")
			}
		}
	})
	b.Run("ktruss", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if r := core.Decompose(g); r.KMax == 0 {
				b.Fatal("kmax 0")
			}
		}
	})
}

// --- Indexfile restart path --------------------------------------------------

// BenchmarkIndexfileOpen measures the three ways a process can get an XL
// graph's index back after a restart: mapping the immutable indexfile
// (the v2 snapshot path — open cost is preamble validation only, pages
// fault in lazily), rebuilding the index heap structures from an
// already-decomposed result, and the full v1 restart — read the legacy
// snapshot, replay its WAL through dynamic maintenance, and rebuild the
// index. CI gates open against replay-v1 at >= 10x via benchjson
// -speedup: the warm-restart claim this PR makes, kept honest by the
// numbers.
func BenchmarkIndexfileOpen(b *testing.B) {
	xl := gen.CachedBuild("bench/XL", gen.XLDataset())
	res := core.Decompose(xl)
	ix := truss.BuildIndex(res)

	dir := b.TempDir()
	tixPath := filepath.Join(dir, "index.tix")
	if err := truss.WriteIndexFile(tixPath, ix, "bench"); err != nil {
		b.Fatal(err)
	}

	// Fabricate the pre-migration layout: a legacy snapshot plus a short
	// WAL — exactly what a crashed v1 server left behind. The mutation
	// batches are tiny (a fresh triangle off to the side), so replay-v1's
	// cost is the part the format retires: decoding the snapshot into
	// heap structures and rebuilding the index.
	st, err := server.NewStore(filepath.Join(dir, "v1"))
	if err != nil {
		b.Fatal(err)
	}
	if err := st.SaveSnapshot("xl", "bench", 1, res.G, res.Phi, res.KMax); err != nil {
		b.Fatal(err)
	}
	n := uint32(res.G.NumVertices())
	for i, add := range []truss.Edge{{U: n, V: n + 1}, {U: n + 1, V: n + 2}, {U: n, V: n + 2}} {
		if _, err := st.AppendMutation("xl", uint64(i+2), []graph.Edge{add}, nil); err != nil {
			b.Fatal(err)
		}
	}

	b.Run("open", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f, err := truss.OpenIndexFile(tixPath)
			if err != nil {
				b.Fatal(err)
			}
			if f.Index().KMax() != ix.KMax() {
				b.Fatal("kmax mismatch")
			}
			f.Close()
		}
	})
	b.Run("build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if truss.BuildIndex(res).KMax() == 0 {
				b.Fatal("kmax 0")
			}
		}
	})
	b.Run("replay-v1", func(b *testing.B) {
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			graphs, broken, err := st.LoadAll()
			if err != nil || len(broken) != 0 || len(graphs) != 1 {
				b.Fatalf("LoadAll: %v (broken %v, %d graphs)", err, broken, len(graphs))
			}
			pg := graphs[0]
			g, phi, kmax := pg.G, pg.Phi, pg.KMax
			for _, mut := range pg.Mutations {
				r, err := dynamic.Update(ctx, g, phi,
					dynamic.Batch{Adds: mut.Adds, Dels: mut.Dels}, dynamic.Config{})
				if err != nil {
					b.Fatal(err)
				}
				g, phi, kmax = r.G, r.Phi, r.KMax
			}
			if truss.BuildIndex(&core.Result{G: g, Phi: phi, KMax: kmax}).KMax() == 0 {
				b.Fatal("kmax 0")
			}
		}
	})
}

// --- Group-committed ingestion (internal/server + internal/ingest) ----------

// BenchmarkIngest prices the ingestion pipeline's reason to exist: the
// same 512-mutation stream against a durable (WAL + fsync) 100k+ edge
// graph, arriving either as sequential unary requests — each paying its
// own dynamic.Update, index Patch, WAL append, and fsync — or from 32
// concurrent producers whose mutations the pipeline coalesces into
// group commits that amortize all four. CI gates pipelined vs
// per-request at >= 5x via benchjson -speedup.
func BenchmarkIngest(b *testing.B) {
	base := gen.BarabasiAlbert(22000, 5, 1)
	if base.NumEdges() < 100_000 {
		b.Fatalf("ingest target shrank below 100k edges: m=%d", base.NumEdges())
	}
	const streamLen = 512
	const producers = 32
	// One deterministic stream per iteration: fresh edges between a
	// dedicated vertex range (never in the base graph, no duplicates), so
	// both arrival modes commit identical non-trivial work.
	stream := func(iter int) []graph.Edge {
		edges := make([]graph.Edge, streamLen)
		for k := range edges {
			id := uint32(iter*streamLen + k)
			edges[k] = graph.Edge{U: 30000 + 2*id, V: 30001 + 2*id}
		}
		return edges
	}
	newServer := func(b *testing.B) *server.Server {
		s := server.New(server.Options{Workers: 1, DataDir: b.TempDir()})
		s.Build("g", base, "bench")
		b.Cleanup(func() { _ = s.Shutdown(context.Background()) })
		return s
	}

	b.Run("per-request", func(b *testing.B) {
		s := newServer(b)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, e := range stream(i) {
				if _, _, err := s.Mutate(ctx, "g", []graph.Edge{e}, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	b.Run("pipelined", func(b *testing.B) {
		s := newServer(b)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			edges := stream(i)
			var wg sync.WaitGroup
			errs := make(chan error, producers)
			per := len(edges) / producers
			for w := 0; w < producers; w++ {
				wg.Add(1)
				go func(part []graph.Edge) {
					defer wg.Done()
					for _, e := range part {
						if _, _, err := s.Mutate(ctx, "g", []graph.Edge{e}, nil); err != nil {
							errs <- err
							return
						}
					}
				}(edges[w*per : (w+1)*per])
			}
			wg.Wait()
			close(errs)
			if err := <-errs; err != nil {
				b.Fatal(err)
			}
		}
	})
}
