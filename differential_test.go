package truss_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	truss "repro"
	"repro/internal/gen"
)

// The differential suite is the cross-engine oracle: every engine — and the
// PKT core at several worker counts — must assign the exact same truss
// number to every edge of randomly generated graphs. By default it runs a
// fixed seed matrix so CI is reproducible; set TRUSS_DIFF_FRESH=1 (the
// nightly job does) to draw fresh seeds instead. Every run logs its seeds,
// so a nightly failure is replayable by pinning the logged seed here.

// diffSeeds returns the seed matrix and whether it was freshly drawn.
func diffSeeds() ([]int64, bool) {
	if os.Getenv("TRUSS_DIFF_FRESH") != "" {
		base := time.Now().UnixNano()
		return []int64{base, base + 1, base + 2, base + 3}, true
	}
	return []int64{101, 202, 303, 404}, false
}

// diffGraph derives one generated graph per (seed, shape). Shapes cover the
// regimes the engines can disagree on: power-law degree skew (probe-kernel
// heavy), uniform density (merge-kernel heavy), and planted dense cores
// (deep peeling cascades). Sizes stay small enough that the mapreduce
// engine finishes in test time.
func diffGraph(seed int64, shape string) *truss.Graph {
	r := rand.New(rand.NewSource(seed))
	switch shape {
	case "powerlaw":
		return gen.BarabasiAlbert(120+r.Intn(80), 4+r.Intn(3), seed)
	case "uniform":
		n := 100 + r.Intn(100)
		return gen.ErdosRenyi(n, 5*n+r.Intn(3*n), seed)
	default: // "cliques"
		base := gen.ErdosRenyi(90+r.Intn(60), 500+r.Intn(300), seed)
		sizes := []int{6 + r.Intn(5), 8 + r.Intn(6)}
		return gen.WithPlantedCliques(base, sizes, seed+1)
	}
}

var diffShapes = []string{"powerlaw", "uniform", "cliques"}

// phiMap streams a Decomposition into an edge → truss-number map keyed by
// the normalized endpoint pair, the representation-independent form every
// engine can be reduced to.
func diffPhiMap(d truss.Decomposition) (map[[2]uint32]int32, error) {
	out := make(map[[2]uint32]int32, d.NumEdges())
	err := d.Edges(func(u, v uint32, phi int32) error {
		if u > v {
			u, v = v, u
		}
		key := [2]uint32{u, v}
		if old, dup := out[key]; dup {
			return fmt.Errorf("edge (%d,%d) streamed twice (phi %d and %d)", u, v, old, phi)
		}
		out[key] = phi
		return nil
	})
	return out, err
}

// diffCompare fails the test unless got assigns the identical truss number
// to the identical edge set as want.
func diffCompare(t *testing.T, label string, want, got map[[2]uint32]int32) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: classified %d edges, oracle has %d", label, len(got), len(want))
	}
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Fatalf("%s: edge (%d,%d) missing", label, key[0], key[1])
		}
		if g != w {
			t.Fatalf("%s: edge (%d,%d) phi = %d, oracle says %d", label, key[0], key[1], g, w)
		}
	}
}

// TestDifferentialEngines is the randomized cross-engine differential
// test: for each (seed, shape) cell, every engine and a PKT worker sweep
// must agree edge-for-edge with the in-memory reference.
func TestDifferentialEngines(t *testing.T) {
	seeds, fresh := diffSeeds()
	if fresh {
		t.Logf("fresh seed mode (TRUSS_DIFF_FRESH): seeds %v — pin a seed in diffSeeds to replay a failure", seeds)
	}
	ctx := context.Background()
	for _, seed := range seeds {
		for _, shape := range diffShapes {
			t.Run(fmt.Sprintf("%s/seed=%d", shape, seed), func(t *testing.T) {
				g := diffGraph(seed, shape)
				t.Logf("seed %d shape %s: n=%d m=%d", seed, shape, g.NumVertices(), g.NumEdges())

				ref, err := truss.Run(ctx, truss.FromGraph(g))
				if err != nil {
					t.Fatal(err)
				}
				want, err := diffPhiMap(ref)
				ref.Close()
				if err != nil {
					t.Fatal(err)
				}

				for _, eng := range allEngines {
					workerSweep := []int{0}
					if eng == truss.EngineParallel {
						workerSweep = []int{2, 8}
					}
					for _, workers := range workerSweep {
						label := eng.String()
						if workers > 0 {
							label = fmt.Sprintf("%v/workers=%d", eng, workers)
						}
						d, err := truss.Run(ctx, truss.FromGraph(g),
							truss.WithEngine(eng),
							truss.WithWorkers(workers),
							truss.WithBudget(int64(g.NumEdges())),
							truss.WithSeed(seed),
							truss.WithTempDir(t.TempDir()))
						if err != nil {
							t.Fatalf("%s: %v", label, err)
						}
						got, err := diffPhiMap(d)
						if cerr := d.Close(); cerr != nil {
							t.Errorf("%s: Close: %v", label, cerr)
						}
						if err != nil {
							t.Fatalf("%s: %v", label, err)
						}
						diffCompare(t, label, want, got)
					}
				}
			})
		}
	}
}

// TestDifferentialGraphShapes sanity-checks the generator matrix itself:
// each cell must be non-trivial (triangles exist, kmax >= 3) or the
// differential rows above would be vacuous agreement on empty structure.
func TestDifferentialGraphShapes(t *testing.T) {
	seeds, _ := diffSeeds()
	ctx := context.Background()
	for _, shape := range diffShapes {
		g := diffGraph(seeds[0], shape)
		if g.NumEdges() < 200 || g.NumEdges() > 5000 {
			t.Errorf("%s: %d edges outside the intended 200..5000 band", shape, g.NumEdges())
		}
		d, err := truss.Run(ctx, truss.FromGraph(g))
		if err != nil {
			t.Fatal(err)
		}
		if d.KMax() < 3 {
			t.Errorf("%s: kmax %d — generator produced a triangle-free graph", shape, d.KMax())
		}
		d.Close()
	}
	// The generators must be deterministic in the seed, or logged seeds
	// could not replay failures.
	for _, shape := range diffShapes {
		a, b := diffGraph(77, shape), diffGraph(77, shape)
		if a.NumEdges() != b.NumEdges() || a.NumVertices() != b.NumVertices() {
			t.Errorf("%s: same seed produced different graphs", shape)
		}
		ea, eb := a.Edges(), b.Edges()
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("%s: same seed, edge %d differs: %v vs %v", shape, i, ea[i], eb[i])
			}
		}
	}
}
