// Command graphgen writes synthetic graphs to disk: either one of the
// paper's nine dataset analogs by name, or a raw generator with explicit
// parameters.
//
// Usage:
//
//	graphgen -dataset LJ -out lj.txt                 # paper analog
//	graphgen -model rmat -scale 16 -factor 6 -out g.bin
//	graphgen -model ba -n 10000 -deg 8 -out ba.txt
//	graphgen -model er|ws|collab|community ...
//
// Output format is SNAP text unless the path ends in ".bin".
package main

import (
	"flag"
	"fmt"
	"os"

	truss "repro"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	dataset := flag.String("dataset", "", "paper analog name (P2P, HEP, Amazon, Wiki, Skitter, Blog, LJ, BTC, Web) or XL (1M+ edge bench target)")
	quick := flag.Bool("quick", false, "use the ~1/10-scale variant of -dataset")
	model := flag.String("model", "", "raw generator: er, ba, rmat, ws, collab, community")
	n := flag.Int("n", 10000, "vertices (er, ba, ws, collab)")
	m := flag.Int("m", 50000, "edges (er)")
	deg := flag.Int("deg", 8, "attachment degree (ba) / ring degree (ws)")
	scale := flag.Uint("scale", 14, "rmat: n = 2^scale")
	factor := flag.Int("factor", 8, "rmat: edges ~ factor * n")
	beta := flag.Float64("beta", 0.1, "ws rewiring probability")
	papers := flag.Int("papers", 5000, "collab: number of papers")
	maxAuthors := flag.Int("maxauthors", 20, "collab: max authors per paper")
	blocks := flag.Int("blocks", 100, "community: number of blocks")
	blockSize := flag.Int("blocksize", 16, "community: vertices per block")
	pin := flag.Float64("pin", 0.6, "community: intra-block edge probability")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "", "output path (required; .bin selects binary)")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "graphgen: -out is required")
		os.Exit(2)
	}
	g, err := build(*dataset, *quick, *model, buildParams{
		n: *n, m: *m, deg: *deg, scale: *scale, factor: *factor, beta: *beta,
		papers: *papers, maxAuthors: *maxAuthors,
		blocks: *blocks, blockSize: *blockSize, pin: *pin, seed: *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}
	if err := truss.SaveGraph(*out, g); err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d vertices, %d edges\n", *out, g.NumVertices(), g.NumEdges())
}

type buildParams struct {
	n, m, deg          int
	scale              uint
	factor             int
	beta               float64
	papers, maxAuthors int
	blocks, blockSize  int
	pin                float64
	seed               int64
}

func build(dataset string, quick bool, model string, p buildParams) (*graph.Graph, error) {
	if dataset != "" {
		list := gen.Datasets()
		if quick {
			list = gen.QuickDatasets()
		}
		list = append(list, gen.XLDataset())
		for _, d := range list {
			if d.Name == dataset {
				return d.Build(), nil
			}
		}
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
	switch model {
	case "er":
		return gen.ErdosRenyi(p.n, p.m, p.seed), nil
	case "ba":
		return gen.BarabasiAlbert(p.n, p.deg, p.seed), nil
	case "rmat":
		return gen.RMAT(p.scale, p.factor, 0.57, 0.19, 0.19, p.seed), nil
	case "ws":
		return gen.WattsStrogatz(p.n, p.deg, p.beta, p.seed), nil
	case "collab":
		return gen.Collaboration(p.n, p.papers, p.maxAuthors, p.seed), nil
	case "community":
		return gen.Community(p.blocks, p.blockSize, p.pin, 2.0, p.seed), nil
	case "":
		return nil, fmt.Errorf("one of -dataset or -model is required")
	default:
		return nil, fmt.Errorf("unknown model %q", model)
	}
}
