// Command benchjson converts `go test -bench` text output into a JSON
// artifact (BENCH_PR.json) so CI can track the performance trajectory of
// the engines across PRs.
//
// Usage:
//
//	go test -run '^$' -bench '^BenchmarkRun$' -benchtime 1x . | tee bench.txt
//	benchjson -in bench.txt -out BENCH_PR.json
//
// Every benchmark line is captured; lines under BenchmarkRun/<engine>/<graph>
// additionally get engine and graph fields, yielding the engine × graph →
// ns/op matrix the roadmap's perf tracking asks for.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Entry is one parsed benchmark result line.
type Entry struct {
	// Name is the full benchmark name without the -GOMAXPROCS suffix.
	Name string `json:"name"`
	// Engine and Graph are set for BenchmarkRun/<engine>/<graph> entries.
	Engine string `json:"engine,omitempty"`
	Graph  string `json:"graph,omitempty"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the reported ns/op.
	NsPerOp float64 `json:"ns_per_op"`
}

// benchLine matches e.g.
//
//	BenchmarkRun/inmem/P2P-8   	      12	  95123456 ns/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op`)

func main() {
	in := flag.String("in", "", "benchmark text output (default stdin)")
	out := flag.String("out", "BENCH_PR.json", "output JSON path")
	flag.Parse()

	r := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}

	var entries []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		e := Entry{Name: m[1], Iterations: iters, NsPerOp: ns}
		if parts := strings.Split(m[1], "/"); len(parts) == 3 && parts[0] == "BenchmarkRun" {
			e.Engine, e.Graph = parts[1], parts[2]
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(entries) == 0 {
		fatal(fmt.Errorf("no benchmark lines found"))
	}

	doc := map[string]any{"benchmarks": entries}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d benchmark entries to %s\n", len(entries), *out)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}
