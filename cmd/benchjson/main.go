// Command benchjson converts `go test -bench` text output into a JSON
// artifact (BENCH_PR.json) so CI can track the performance trajectory of
// the engines across PRs, and compares such artifacts against the
// committed baseline.
//
// Usage:
//
//	go test -run '^$' -bench '^BenchmarkRun$' -benchtime 1x . | tee bench.txt
//	benchjson -in bench.txt -out BENCH_PR.json
//	benchjson -compare BENCH_PR.json -baseline BENCH_BASELINE.json -max-ratio 3.0
//	benchjson -overhead BENCH_PR.json -num 'BenchmarkObsOverhead/instrumented' \
//	    -den 'BenchmarkObsOverhead/bare' -max-overhead 1.05
//
// Every benchmark line is captured; lines under BenchmarkRun/<engine>/<graph>
// additionally get engine and graph fields, yielding the engine × graph →
// ns/op matrix the roadmap's perf tracking asks for.
//
// Compare mode prints a per-benchmark ratio table and flags entries slower
// than the baseline by more than -threshold (default 1.5x). With -max-ratio
// set it is a blocking gate: any common benchmark slower than the baseline
// by more than that factor exits non-zero and fails the CI job. (The older
// -fail-over spelling is kept as an alias.) Refresh BENCH_BASELINE.json as
// described in the README when a deliberate change moves the numbers.
//
// Overhead mode gates one benchmark against another within the same
// artifact — CI uses it to hold the instrumented serving handler within 5%
// of the bare one (BenchmarkObsOverhead).
//
// Speedup mode is the inverse gate: it requires -fast to beat -slow by at
// least -min-speedup within one artifact. CI uses it to hold the PKT
// parallel engine at >= 2x over the sequential in-memory engine on the XL
// target:
//
//	benchjson -speedup BENCH_PR.json -fast 'BenchmarkRun/parallel/XL' \
//	    -slow 'BenchmarkRun/inmem/XL' -min-speedup 2.0
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one parsed benchmark result line.
type Entry struct {
	// Name is the full benchmark name without the -GOMAXPROCS suffix.
	Name string `json:"name"`
	// Engine and Graph are set for BenchmarkRun/<engine>/<graph> entries.
	Engine string `json:"engine,omitempty"`
	Graph  string `json:"graph,omitempty"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the reported ns/op.
	NsPerOp float64 `json:"ns_per_op"`
}

// benchLine matches e.g.
//
//	BenchmarkRun/inmem/P2P-8   	      12	  95123456 ns/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op`)

func main() {
	in := flag.String("in", "", "benchmark text output (default stdin)")
	out := flag.String("out", "BENCH_PR.json", "output JSON path")
	compare := flag.String("compare", "", "compare this JSON artifact against -baseline instead of converting")
	baseline := flag.String("baseline", "", "baseline JSON artifact for -compare")
	threshold := flag.Float64("threshold", 1.5, "report entries slower than baseline by this factor")
	maxRatio := flag.Float64("max-ratio", 0, "blocking gate: exit non-zero when a ratio exceeds this factor (0 = never fail)")
	failOver := flag.Float64("fail-over", 0, "deprecated alias for -max-ratio")
	overhead := flag.String("overhead", "", "gate -num against -den within this JSON artifact instead of converting")
	num := flag.String("num", "", "numerator benchmark name for -overhead")
	den := flag.String("den", "", "denominator benchmark name for -overhead")
	maxOverhead := flag.Float64("max-overhead", 1.05, "blocking gate for -overhead: maximum allowed num/den ratio")
	speedup := flag.String("speedup", "", "gate -fast against -slow within this JSON artifact instead of converting")
	fast := flag.String("fast", "", "benchmark expected to win, for -speedup")
	slow := flag.String("slow", "", "benchmark it must beat, for -speedup")
	minSpeedup := flag.Float64("min-speedup", 2.0, "blocking gate for -speedup: minimum required slow/fast ratio")
	flag.Parse()

	if *speedup != "" {
		if *fast == "" || *slow == "" {
			fatal(fmt.Errorf("-speedup requires -fast and -slow"))
		}
		if err := gateSpeedup(*speedup, *fast, *slow, *minSpeedup); err != nil {
			fatal(err)
		}
		return
	}
	if *overhead != "" {
		if *num == "" || *den == "" {
			fatal(fmt.Errorf("-overhead requires -num and -den"))
		}
		if err := gateOverhead(*overhead, *num, *den, *maxOverhead); err != nil {
			fatal(err)
		}
		return
	}
	if *compare != "" {
		if *baseline == "" {
			fatal(fmt.Errorf("-compare requires -baseline"))
		}
		gate := *maxRatio
		if gate == 0 {
			gate = *failOver
		}
		if err := compareArtifacts(*compare, *baseline, *threshold, gate); err != nil {
			fatal(err)
		}
		return
	}

	r := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}

	var entries []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		e := Entry{Name: m[1], Iterations: iters, NsPerOp: ns}
		if parts := strings.Split(m[1], "/"); len(parts) == 3 && parts[0] == "BenchmarkRun" {
			e.Engine, e.Graph = parts[1], parts[2]
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(entries) == 0 {
		fatal(fmt.Errorf("no benchmark lines found"))
	}

	doc := map[string]any{"benchmarks": entries}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d benchmark entries to %s\n", len(entries), *out)
}

// artifact mirrors the written JSON document.
type artifact struct {
	Benchmarks []Entry `json:"benchmarks"`
}

func readArtifact(path string) (map[string]Entry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc artifact
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	byName := make(map[string]Entry, len(doc.Benchmarks))
	for _, e := range doc.Benchmarks {
		byName[e.Name] = e
	}
	return byName, nil
}

// compareArtifacts prints a ratio table of pr against base and reports
// regressions beyond threshold; ratios beyond failOver (if set) make the
// comparison fail.
func compareArtifacts(prPath, basePath string, threshold, failOver float64) error {
	pr, err := readArtifact(prPath)
	if err != nil {
		return err
	}
	base, err := readArtifact(basePath)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(pr))
	for name := range pr {
		if _, ok := base[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return fmt.Errorf("no common benchmarks between %s and %s", prPath, basePath)
	}
	regressions, failures := 0, 0
	fmt.Printf("%-52s %14s %14s %8s\n", "benchmark", "baseline ns/op", "PR ns/op", "ratio")
	for _, name := range names {
		b, p := base[name], pr[name]
		ratio := math.Inf(1)
		if b.NsPerOp > 0 {
			ratio = p.NsPerOp / b.NsPerOp
		}
		mark := ""
		if ratio > threshold {
			mark = "  <-- regression"
			regressions++
		}
		if failOver > 0 && ratio > failOver {
			mark = "  <-- FAIL"
			failures++
		}
		fmt.Printf("%-52s %14.0f %14.0f %7.2fx%s\n", name, b.NsPerOp, p.NsPerOp, ratio, mark)
	}
	for name := range pr {
		if _, ok := base[name]; !ok {
			fmt.Printf("%-52s (new: no baseline)\n", name)
		}
	}
	for name := range base {
		if _, ok := pr[name]; !ok {
			fmt.Printf("%-52s (dropped from PR run)\n", name)
		}
	}
	fmt.Printf("%d/%d benchmarks above the %.2fx reporting threshold\n", regressions, len(names), threshold)
	if failures > 0 {
		return fmt.Errorf("%d benchmarks regressed beyond the %.2fx failure threshold", failures, failOver)
	}
	return nil
}

// gateOverhead enforces num/den <= maxRatio within one artifact: the
// instrumentation-overhead gate. Both benchmarks must be present — a
// silently missing series would wave a broken gate through.
func gateOverhead(path, num, den string, maxRatio float64) error {
	entries, err := readArtifact(path)
	if err != nil {
		return err
	}
	n, ok := entries[num]
	if !ok {
		return fmt.Errorf("%s: benchmark %q not found", path, num)
	}
	d, ok := entries[den]
	if !ok {
		return fmt.Errorf("%s: benchmark %q not found", path, den)
	}
	if d.NsPerOp <= 0 {
		return fmt.Errorf("%s: benchmark %q has no timing", path, den)
	}
	ratio := n.NsPerOp / d.NsPerOp
	fmt.Printf("overhead %s / %s = %.0f / %.0f ns/op = %.3fx (limit %.3fx)\n",
		num, den, n.NsPerOp, d.NsPerOp, ratio, maxRatio)
	if ratio > maxRatio {
		return fmt.Errorf("overhead %.3fx exceeds the %.3fx limit", ratio, maxRatio)
	}
	return nil
}

// gateSpeedup enforces slow/fast >= minRatio within one artifact: the
// parallel-speedup gate. Like gateOverhead, a missing series is an error —
// a renamed benchmark must not silently disarm the gate.
func gateSpeedup(path, fast, slow string, minRatio float64) error {
	entries, err := readArtifact(path)
	if err != nil {
		return err
	}
	f, ok := entries[fast]
	if !ok {
		return fmt.Errorf("%s: benchmark %q not found", path, fast)
	}
	s, ok := entries[slow]
	if !ok {
		return fmt.Errorf("%s: benchmark %q not found", path, slow)
	}
	if f.NsPerOp <= 0 {
		return fmt.Errorf("%s: benchmark %q has no timing", path, fast)
	}
	ratio := s.NsPerOp / f.NsPerOp
	fmt.Printf("speedup %s / %s = %.0f / %.0f ns/op = %.2fx (need >= %.2fx)\n",
		slow, fast, s.NsPerOp, f.NsPerOp, ratio, minRatio)
	if ratio < minRatio {
		return fmt.Errorf("speedup %.2fx below the required %.2fx", ratio, minRatio)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}
