package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	truss "repro"
	"repro/client"
)

// queryMain runs the `trussd query` subcommand: a thin shell over the
// client package that points the unified Querier surface at a running
// `trussd serve` and prints plain-text answers. Exactly one operation
// flag is given per invocation.
func queryMain(args []string) error {
	fs := flag.NewFlagSet("trussd query", flag.ExitOnError)
	server := fs.String("server", "http://localhost:8080", "trussd serve base URL")
	graphName := fs.String("graph", "", "graph name on the server (required)")
	trussPair := fs.String("truss", "", `one edge lookup: "u,v"`)
	batch := fs.String("batch", "", `file of "u v" pairs for one batched lookup ("-" = stdin)`)
	histogram := fs.Bool("histogram", false, "print |Phi_k| for every k")
	top := fs.Int("top", -1, "print the top-t k-classes (0 = all)")
	communities := fs.Int("communities", 0, "list the k-truss communities at this k (k >= 3)")
	edgesAt := fs.Int("edges", -1, `stream the k-truss edges as "u v phi" lines (0 = all edges)`)
	timeout := fs.Duration("timeout", time.Minute, "overall request deadline (0 = none)")
	retries := fs.Int("retries", 2, "transient-failure retries for read requests")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, `usage: trussd query -graph name [-server URL] <operation>

operations (exactly one):
  -truss u,v         truss number of one edge
  -batch file        batched lookups, one "u v" pair per line ("-" = stdin)
  -histogram         class sizes |Phi_k|
  -top t             top-t k-classes (0 = all)
  -communities k     k-truss communities at level k
  -edges k           stream the k-truss edge set (0 = all edges)`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphName == "" {
		fs.Usage()
		return fmt.Errorf("-graph is required")
	}
	ops := 0
	for _, set := range []bool{*trussPair != "", *batch != "", *histogram, *top >= 0, *communities > 0, *edgesAt >= 0} {
		if set {
			ops++
		}
	}
	if ops != 1 {
		fs.Usage()
		return fmt.Errorf("give exactly one operation, got %d", ops)
	}

	// Streaming a huge truss must not be cut off by the client's default
	// 30s timeout; the context deadline (below) still bounds the whole
	// operation.
	c, err := client.New(*server,
		client.WithRetries(*retries),
		client.WithHTTPClient(&http.Client{}))
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	q := c.Graph(*graphName)
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	switch {
	case *trussPair != "":
		u, v, err := parsePair(*trussPair, ",")
		if err != nil {
			return fmt.Errorf("bad -truss %q: %w", *trussPair, err)
		}
		k, found, err := q.TrussNumber(ctx, u, v)
		if err != nil {
			return err
		}
		if !found {
			fmt.Fprintf(out, "edge (%d,%d): not in graph\n", u, v)
			return nil
		}
		fmt.Fprintf(out, "truss(%d,%d) = %d\n", u, v, k)

	case *batch != "":
		pairs, err := readPairs(*batch)
		if err != nil {
			return err
		}
		answers, err := q.TrussNumbers(ctx, pairs)
		if err != nil {
			return err
		}
		for _, a := range answers {
			if a.Found {
				fmt.Fprintf(out, "%d\t%d\t%d\n", a.Edge.U, a.Edge.V, a.Truss)
			} else {
				fmt.Fprintf(out, "%d\t%d\t-\n", a.Edge.U, a.Edge.V)
			}
		}

	case *histogram:
		hist, err := q.Histogram(ctx)
		if err != nil {
			return err
		}
		for k, n := range hist {
			if n > 0 {
				fmt.Fprintf(out, "|Phi_%d| = %d\n", k, n)
			}
		}

	case *top >= 0:
		classes, err := q.TopClasses(ctx, *top)
		if err != nil {
			return err
		}
		for _, cl := range classes {
			fmt.Fprintf(out, "k=%d\tsize=%d\n", cl.K, cl.Size)
		}

	case *communities > 0:
		comms, err := q.Communities(ctx, int32(*communities))
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%d-truss communities: %d\n", *communities, len(comms))
		for i, cm := range comms {
			fmt.Fprintf(out, "  #%d: %d edges over %d vertices\n", i+1, len(cm.Edges), len(cm.Vertices))
		}

	case *edgesAt >= 0:
		seq, errf := q.KTrussEdges(ctx, int32(*edgesAt))
		n := 0
		for e, phi := range seq {
			fmt.Fprintf(out, "%d\t%d\t%d\n", e.U, e.V, phi)
			n++
		}
		if err := errf(); err != nil {
			return err
		}
		if err := out.Flush(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "streamed %d edges\n", n)
	}
	return nil
}

// parsePair splits "u<sep>v" into two vertex IDs.
func parsePair(s, sep string) (u, v uint32, err error) {
	a, b, ok := strings.Cut(s, sep)
	if !ok {
		return 0, 0, fmt.Errorf("want two vertex IDs separated by %q", sep)
	}
	var uu, vv uint64
	if _, err := fmt.Sscanf(strings.TrimSpace(a), "%d", &uu); err != nil {
		return 0, 0, err
	}
	if _, err := fmt.Sscanf(strings.TrimSpace(b), "%d", &vv); err != nil {
		return 0, 0, err
	}
	if uu > 1<<32-1 || vv > 1<<32-1 {
		return 0, 0, fmt.Errorf("vertex IDs must fit uint32")
	}
	return uint32(uu), uint32(vv), nil
}

// readPairs loads "u v" pairs (whitespace separated, '#' comments) from
// a file or stdin.
func readPairs(path string) ([]truss.Edge, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var pairs []truss.Edge
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want \"u v\", got %q", path, line, text)
		}
		u, v, err := parsePair(fields[0]+" "+fields[1], " ")
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		pairs = append(pairs, truss.Edge{U: u, V: v})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return pairs, nil
}
