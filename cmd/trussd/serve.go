package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	truss "repro"
)

// multiFlag collects a repeatable -load flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// serveMain runs the `trussd serve` subcommand: an HTTP server answering
// truss queries against resident TrussIndexes.
func serveMain(args []string) error {
	fs := flag.NewFlagSet("trussd serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "decomposition workers (0 = GOMAXPROCS)")
	wait := fs.Bool("wait", false, "block until preloaded graphs are ready before listening")
	dataDir := fs.String("data-dir", "", "durable state directory: snapshots + mutation WALs, restored on startup")
	var loads multiFlag
	fs.Var(&loads, "load", "preload a graph as name=path (repeatable)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: trussd serve [-addr :8080] [-workers N] [-load name=path]... [-wait] [-data-dir dir]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger := log.New(os.Stderr, "trussd: ", log.LstdFlags)
	srv := truss.NewServer(truss.ServerOptions{
		Workers: *workers,
		Logf:    logger.Printf,
		DataDir: *dataDir,
	})
	if *dataDir != "" {
		// Restore persisted graphs before preloads: a -load of an already
		// persisted name deliberately rebuilds (and re-snapshots) it.
		if err := srv.Recover(); err != nil {
			return fmt.Errorf("recovering %s: %w", *dataDir, err)
		}
	}
	var names []string
	for _, spec := range loads {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("bad -load %q: want name=path", spec)
		}
		if err := srv.LoadFileAsync(name, path); err != nil {
			return fmt.Errorf("preloading %q: %w", name, err)
		}
		logger.Printf("graph %q building from %s", name, path)
		names = append(names, name)
	}
	if *wait {
		for _, name := range names {
			if err := srv.WaitReady(name, time.Hour); err != nil {
				return err
			}
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	logger.Printf("listening on %s", ln.Addr())
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		logger.Printf("shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		// Drain in-flight HTTP requests first, then cancel background
		// rebuilds: their lifecycle context aborts the decomposition at
		// its next peeling checkpoint.
		if err := hs.Shutdown(shutCtx); err != nil {
			return err
		}
		if err := srv.Shutdown(shutCtx); err != nil {
			return fmt.Errorf("aborting background builds: %w", err)
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
