package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	truss "repro"
	"repro/internal/replica"
)

// multiFlag collects a repeatable -load flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// openAccessLog resolves the -access-log flag: "" disables, "stderr" and
// "stdout" select the process streams, anything else appends to a file.
func openAccessLog(spec string) (io.Writer, func() error, error) {
	switch spec {
	case "":
		return nil, func() error { return nil }, nil
	case "stderr":
		return os.Stderr, func() error { return nil }, nil
	case "stdout":
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.OpenFile(spec, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("opening access log: %w", err)
	}
	return f, f.Close, nil
}

// serveMain runs the `trussd serve` subcommand: an HTTP server answering
// truss queries against resident TrussIndexes, instrumented end to end
// (Prometheus /metrics, /healthz + /readyz probes, structured access
// logs, bounded-concurrency admission control, opt-in pprof).
func serveMain(args []string) error {
	fs := flag.NewFlagSet("trussd serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "decomposition workers (0 = GOMAXPROCS)")
	wait := fs.Bool("wait", false, "block until preloaded graphs are ready before listening")
	dataDir := fs.String("data-dir", "", "durable state directory: snapshots + mutation WALs, restored on startup")
	metricsOn := fs.Bool("metrics", true, "expose Prometheus metrics on GET /metrics")
	pprofOn := fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (diagnostic; do not enable on untrusted networks)")
	maxInflight := fs.Int("max-inflight", 1024, "admission limit: concurrent requests beyond this are shed with 429 (0 = unlimited)")
	accessLog := fs.String("access-log", "", "access log destination: empty = off, stderr, stdout, or a file path")
	readHeaderTimeout := fs.Duration("read-header-timeout", 0, "slow-client guard on request headers (0 = 5s default, negative = disabled)")
	readTimeout := fs.Duration("read-timeout", 0, "bound on reading a full request incl. body (0 = 5m default, negative = disabled)")
	idleTimeout := fs.Duration("idle-timeout", 0, "keep-alive idle bound (0 = 2m default, negative = disabled)")
	ingestFlush := fs.Duration("ingest-flush-interval", 0, "ingestion flush window (0 = adaptive: flush whenever the queue drains)")
	ingestBatch := fs.Int("ingest-max-batch", 0, "max mutations group-committed per flush (0 = default)")
	ingestQueue := fs.Int("ingest-queue", 0, "per-graph ingestion queue depth; full queues block producers (0 = default)")
	parallelCutoff := fs.Int("region-parallel-cutoff", 0, "region size (edges) at which re-peels go parallel (0 = default, negative = always serial)")
	follow := fs.String("follow", "", "run as a read-only follower replicating from this primary base URL (requires -data-dir)")
	replicaLagMax := fs.Uint64("replica-lag-max", 0, "versions a followed graph may trail the primary before /readyz reports not ready (with -follow; 0 = exactly caught up)")
	replicaRefresh := fs.Duration("replica-refresh", 0, "manifest poll interval in follower mode (0 = 2s)")
	var loads multiFlag
	fs.Var(&loads, "load", "preload a graph as name=path (repeatable)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: trussd serve [-addr :8080] [-workers N] [-load name=path]... [-wait] [-data-dir dir]")
		fmt.Fprintln(os.Stderr, "                    [-metrics] [-pprof] [-max-inflight N] [-access-log dest]")
		fmt.Fprintln(os.Stderr, "                    [-read-header-timeout d] [-read-timeout d] [-idle-timeout d]")
		fmt.Fprintln(os.Stderr, "                    [-ingest-flush-interval d] [-ingest-max-batch N] [-ingest-queue N] [-region-parallel-cutoff N]")
		fmt.Fprintln(os.Stderr, "                    [-follow primary-url] [-replica-lag-max N] [-replica-refresh d]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *follow != "" {
		if *dataDir == "" {
			return errors.New("-follow requires -data-dir: the follower's resumability rests on its own durable state")
		}
		if len(loads) > 0 {
			return errors.New("-load cannot be combined with -follow: a follower's graphs come from its primary")
		}
	}

	logger := log.New(os.Stderr, "trussd: ", log.LstdFlags)
	accessOut, closeAccess, err := openAccessLog(*accessLog)
	if err != nil {
		return err
	}
	defer func() { _ = closeAccess() }()
	srv := truss.NewServer(truss.ServerOptions{
		Workers:                *workers,
		Logf:                   logger.Printf,
		DataDir:                *dataDir,
		MaxInFlight:            *maxInflight,
		AccessLog:              accessOut,
		DisableMetricsEndpoint: !*metricsOn,
		EnablePprof:            *pprofOn,
		IngestFlushInterval:    *ingestFlush,
		IngestMaxBatch:         *ingestBatch,
		IngestMaxQueue:         *ingestQueue,
		ParallelRegionCutoff:   *parallelCutoff,
		Follow:                 *follow,
	})
	if *dataDir != "" {
		// Restore persisted graphs before preloads: a -load of an already
		// persisted name deliberately rebuilds (and re-snapshots) it.
		if err := srv.Recover(); err != nil {
			return fmt.Errorf("recovering %s: %w", *dataDir, err)
		}
	}
	var names []string
	for _, spec := range loads {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("bad -load %q: want name=path", spec)
		}
		if err := srv.LoadFileAsync(name, path); err != nil {
			return fmt.Errorf("preloading %q: %w", name, err)
		}
		logger.Printf("graph %q building from %s", name, path)
		names = append(names, name)
	}
	if *wait {
		for _, name := range names {
			if err := srv.WaitReady(name, time.Hour); err != nil {
				return err
			}
		}
	}

	// Every graph is registered by now: recovered entries are resident,
	// preloads are at least building placeholders, so /readyz flips to 200
	// exactly when the last initial build publishes.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := truss.NewHTTPServer(srv.Handler(), truss.HTTPTimeouts{
		ReadHeader: *readHeaderTimeout,
		Read:       *readTimeout,
		Idle:       *idleTimeout,
	})
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var followerDone chan struct{}
	if *follow != "" {
		fl, err := replica.New(replica.Config{
			Primary: *follow,
			Server:  srv,
			LagMax:  *replicaLagMax,
			Refresh: *replicaRefresh,
			Logf:    logger.Printf,
		})
		if err != nil {
			return err
		}
		// /readyz now additionally demands the replica be caught up within
		// the lag bound, so a load balancer only admits traffic to a
		// follower whose answers are current enough.
		srv.SetReadyProbe(fl.Probe)
		followerDone = make(chan struct{})
		go func() {
			defer close(followerDone)
			_ = fl.Run(ctx)
		}()
		logger.Printf("follower mode: replicating from %s (lag max %d)", *follow, *replicaLagMax)
	}
	errc := make(chan error, 1)
	logger.Printf("ops: metrics=%v pprof=%v max-inflight=%d access-log=%q", *metricsOn, *pprofOn, *maxInflight, *accessLog)
	logger.Printf("listening on %s", ln.Addr())
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		logger.Printf("shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		// Drain in-flight HTTP requests first, then cancel background
		// rebuilds: their lifecycle context aborts the decomposition at
		// its next peeling checkpoint.
		if err := hs.Shutdown(shutCtx); err != nil {
			return err
		}
		// The canceled lifecycle ctx is already unwinding the follower's
		// tails; wait for them before tearing the registry down.
		if followerDone != nil {
			<-followerDone
		}
		if err := srv.Shutdown(shutCtx); err != nil {
			return fmt.Errorf("aborting background builds: %w", err)
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
