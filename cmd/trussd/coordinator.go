package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	truss "repro"
	"repro/internal/cluster"
	"repro/internal/obs"
)

// coordinatorMain runs the `trussd coordinator` subcommand: the cluster
// front door. It owns no graphs — each graph lives on the shard that
// rendezvous hashing assigns it — and proxies per-graph traffic to the
// owner while serving the cluster-level endpoints (merged /v1/graphs,
// aggregated /readyz, /v1/cluster/topology, its own /metrics) itself.
func coordinatorMain(args []string) error {
	fs := flag.NewFlagSet("trussd coordinator", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	shards := fs.String("shards", "", "cluster membership: comma-separated name=primary[;replica;...] (required)")
	probeTimeout := fs.Duration("probe-timeout", 0, "per-shard bound on /readyz and listing fan-out calls (0 = 3s)")
	readHeaderTimeout := fs.Duration("read-header-timeout", 0, "slow-client guard on request headers (0 = 5s default, negative = disabled)")
	readTimeout := fs.Duration("read-timeout", 0, "bound on reading a full request incl. body (0 = 5m default, negative = disabled)")
	idleTimeout := fs.Duration("idle-timeout", 0, "keep-alive idle bound (0 = 2m default, negative = disabled)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: trussd coordinator -shards a=http://host:8080;http://replica:8080,b=... [-addr :8080]")
		fmt.Fprintln(os.Stderr, "                          [-probe-timeout d] [-read-header-timeout d] [-read-timeout d] [-idle-timeout d]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards == "" {
		return errors.New("-shards is required: a coordinator with no shards serves nothing")
	}
	topo, err := cluster.ParseShards(*shards)
	if err != nil {
		return err
	}
	coord, err := cluster.NewCoordinator(topo, cluster.CoordinatorOptions{
		Metrics:      obs.Default(),
		ProbeTimeout: *probeTimeout,
	})
	if err != nil {
		return err
	}

	logger := log.New(os.Stderr, "trussd: ", log.LstdFlags)
	for _, s := range topo.Shards {
		logger.Printf("shard %q: primary %s, %d replica(s)", s.Name, s.Primary, len(s.Replicas))
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := truss.NewHTTPServer(coord.Handler(), truss.HTTPTimeouts{
		ReadHeader: *readHeaderTimeout,
		Read:       *readTimeout,
		Idle:       *idleTimeout,
	})
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	logger.Printf("coordinator for %d shards", len(topo.Shards))
	logger.Printf("listening on %s", ln.Addr())
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		logger.Printf("shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
