// The index subcommand: offline tooling for indexfile snapshots — the
// memory-mapped format `trussd serve -data-dir` persists and restarts
// from. `build` freezes a graph file into an index snapshot without
// running a server, `inspect` prints a snapshot's header and section
// table, and `verify` runs the full checksum sweep that the serving
// open path (deliberately) skips.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	truss "repro"
)

func indexMain(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: trussd index build|inspect|verify ...")
	}
	switch args[0] {
	case "build":
		return indexBuild(args[1:])
	case "inspect":
		return indexInspect(args[1:])
	case "verify":
		return indexVerify(args[1:])
	default:
		return fmt.Errorf("unknown index subcommand %q (want build, inspect, or verify)", args[0])
	}
}

// indexBuild decomposes a graph file and writes the index snapshot —
// the same artifact a serving compaction produces, minus the server.
// Useful for pre-building snapshots on a beefy machine and shipping
// them to serving hosts, which then map them in O(1).
func indexBuild(args []string) error {
	fs := flag.NewFlagSet("index build", flag.ContinueOnError)
	in := fs.String("in", "", "input graph file (SNAP text, or .bin)")
	out := fs.String("out", "", "output indexfile path (e.g. index.tix)")
	source := fs.String("source", "", "provenance label stored in the file (default: the input path)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		fs.Usage()
		return fmt.Errorf("-in and -out are required")
	}
	if *source == "" {
		*source = *in
	}
	g, err := truss.LoadGraph(*in)
	if err != nil {
		return err
	}
	start := time.Now()
	ix := truss.BuildIndex(truss.Decompose(g))
	buildDur := time.Since(start)
	start = time.Now()
	if err := truss.WriteIndexFile(*out, ix, *source); err != nil {
		return err
	}
	st, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("built %s: n=%d m=%d kmax=%d (%d bytes, decompose+index %s, write %s)\n",
		*out, ix.Graph().NumVertices(), ix.NumEdges(), ix.KMax(),
		st.Size(), buildDur.Round(time.Millisecond), time.Since(start).Round(time.Millisecond))
	return nil
}

// indexInspect maps a snapshot and prints its identity and section
// table. It runs only the open-time validation (preamble checksum plus
// structural invariants), so inspecting a terabyte file is instant.
func indexInspect(args []string) error {
	path, err := indexPathArg("inspect", args)
	if err != nil {
		return err
	}
	f, err := truss.OpenIndexFile(path)
	if err != nil {
		return err
	}
	defer f.Close()
	ix, meta := f.Index(), f.Meta()
	fmt.Printf("file:          %s\n", f.Path())
	fmt.Printf("format:        v%d\n", f.FormatVersion())
	fmt.Printf("mapped bytes:  %d\n", f.MappedBytes())
	fmt.Printf("source:        %s\n", meta.Source)
	fmt.Printf("graph version: %d\n", meta.GraphVersion)
	if meta.CreatedUnixNano != 0 {
		fmt.Printf("created:       %s\n", time.Unix(0, meta.CreatedUnixNano).UTC().Format(time.RFC3339))
	}
	fmt.Printf("n=%d m=%d kmax=%d\n", ix.Graph().NumVertices(), ix.NumEdges(), ix.KMax())
	fmt.Printf("%-4s %-10s %12s %12s %10s\n", "id", "section", "offset", "bytes", "crc32c")
	for _, s := range f.Sections() {
		fmt.Printf("%-4d %-10s %12d %12d %10x\n", s.ID, s.Name, s.Off, s.Len, s.CRC)
	}
	return nil
}

// indexVerify opens a snapshot and runs the full data-checksum sweep —
// every section CRC recomputed, every padding byte checked. This is the
// integrity guarantee the O(kmax) serving open path trades away; run it
// before trusting a snapshot of uncertain provenance.
func indexVerify(args []string) error {
	path, err := indexPathArg("verify", args)
	if err != nil {
		return err
	}
	f, err := truss.OpenIndexFile(path)
	if err != nil {
		return err
	}
	defer f.Close()
	start := time.Now()
	if err := f.Verify(); err != nil {
		return err
	}
	fmt.Printf("%s: ok (%d bytes verified in %s)\n",
		f.Path(), f.MappedBytes(), time.Since(start).Round(time.Microsecond))
	return nil
}

// indexPathArg extracts the single positional snapshot path.
func indexPathArg(sub string, args []string) (string, error) {
	if len(args) != 1 {
		return "", fmt.Errorf("usage: trussd index %s <index.tix>", sub)
	}
	return args[0], nil
}
