// Command trussd decomposes a graph file with any of the reproduced
// algorithms and reports the k-class histogram (optionally the per-edge
// truss numbers), or serves truss queries over HTTP.
//
// Batch usage:
//
//	trussd -in graph.txt [-algo inmem|baseline|bottomup|topdown|mr]
//	       [-top t] [-budget N] [-out classes.txt] [-v]
//
// Serving usage:
//
//	trussd serve [-addr :8080] [-load name=path]... [-workers N] [-wait]
//
// The serve subcommand decomposes each loaded graph once (with the
// parallel peeler), keeps the resulting TrussIndex resident, and answers
// truss-number, community, histogram, and top-class queries over a JSON
// HTTP API; see the internal/server package for the routes.
//
// The input is a SNAP-format edge list ("u v" per line, '#' comments) or a
// binary edge file when the path ends in ".bin".
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	truss "repro"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		if err := serveMain(os.Args[2:]); err != nil {
			fmt.Fprintf(os.Stderr, "trussd serve: %v\n", err)
			os.Exit(1)
		}
		return
	}
	in := flag.String("in", "", "input graph file (SNAP text, or .bin)")
	algo := flag.String("algo", "inmem", "algorithm: inmem, baseline, bottomup, topdown, mr")
	topT := flag.Int("top", 0, "topdown only: compute the top-t k-classes (0 = all)")
	budget := flag.Int64("budget", 0, "memory budget in adjacency entries for external algorithms (0 = default)")
	outPath := flag.String("out", "", "write per-edge classes 'u v k' to this file")
	dotPath := flag.String("dot", "", "write a Graphviz rendering colored by class (in-memory algorithms only)")
	communitiesAt := flag.Int("communities", 0, "list the k-truss communities at this k (in-memory algorithms only)")
	tmp := flag.String("tmp", os.TempDir(), "temp directory for external algorithms")
	verbose := flag.Bool("v", false, "print I/O statistics and traces")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "trussd: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*in, *algo, *topT, *budget, *outPath, *dotPath, *communitiesAt, *tmp, *verbose); err != nil {
		fmt.Fprintf(os.Stderr, "trussd: %v\n", err)
		os.Exit(1)
	}
}

func run(in, algo string, topT int, budget int64, outPath, dotPath string, communitiesAt int, tmp string, verbose bool) error {
	start := time.Now()
	var sizes map[int32]int64
	var kmax int32
	var edges func(emit func(u, v uint32, k int32) error) error

	var st truss.IOStats
	opts := truss.ExternalOptions{MemoryBudget: budget, TempDir: tmp, Stats: &st}

	switch algo {
	case "inmem", "baseline":
		g, err := truss.LoadGraph(in)
		if err != nil {
			return err
		}
		var res *truss.Result
		if algo == "inmem" {
			res = truss.Decompose(g)
		} else {
			res = truss.DecomposeBaseline(g)
		}
		kmax = res.KMax
		sizes = map[int32]int64{}
		for k, n := range res.ClassSizes() {
			if n > 0 {
				sizes[int32(k)] = n
			}
		}
		edges = func(emit func(u, v uint32, k int32) error) error {
			for id, p := range res.Phi {
				e := g.Edge(int32(id))
				if err := emit(e.U, e.V, p); err != nil {
					return err
				}
			}
			return nil
		}
		if dotPath != "" {
			f, err := os.Create(dotPath)
			if err != nil {
				return err
			}
			if err := truss.WriteDOT(f, res, in); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("graphviz rendering written to %s\n", dotPath)
		}
		if communitiesAt >= 3 {
			comms := truss.Communities(res, int32(communitiesAt))
			fmt.Printf("%d-truss communities: %d\n", communitiesAt, len(comms))
			for i, c := range comms {
				if i >= 10 {
					fmt.Printf("  ... and %d more\n", len(comms)-10)
					break
				}
				fmt.Printf("  #%d: %d edges over %d vertices\n", i+1, len(c.Edges), len(c.Vertices))
			}
		}
	case "bottomup":
		res, err := truss.BottomUpFile(in, opts)
		if err != nil {
			return err
		}
		defer res.Close()
		kmax = res.KMax
		sizes = res.ClassSizes
		edges = func(emit func(u, v uint32, k int32) error) error {
			m, err := res.PhiMap()
			if err != nil {
				return err
			}
			return emitMap(m, emit)
		}
		if verbose {
			fmt.Printf("trace: %+v\n", res.Trace)
		}
	case "topdown":
		res, err := truss.TopDownFile(in, topT, opts)
		if err != nil {
			return err
		}
		defer res.Close()
		kmax = res.KMax
		sizes = res.ClassSizes
		edges = func(emit func(u, v uint32, k int32) error) error {
			m, err := res.PhiMap()
			if err != nil {
				return err
			}
			return emitMap(m, emit)
		}
		if verbose {
			fmt.Printf("trace: %+v\n", res.Trace)
		}
	case "mr":
		g, err := truss.LoadGraph(in)
		if err != nil {
			return err
		}
		res := truss.MapReduceDecompose(g)
		kmax = res.KMax
		sizes = map[int32]int64{}
		for _, p := range res.Phi {
			sizes[p]++
		}
		edges = func(emit func(u, v uint32, k int32) error) error {
			return emitMap(res.Phi, emit)
		}
		if verbose {
			fmt.Printf("cluster work: %s\n", res.Counters.String())
		}
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}

	elapsed := time.Since(start)
	fmt.Printf("algorithm:  %s\n", algo)
	fmt.Printf("elapsed:    %s\n", elapsed.Round(time.Millisecond))
	fmt.Printf("kmax:       %d\n", kmax)
	var ks []int32
	for k := range sizes {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	for _, k := range ks {
		fmt.Printf("|Phi_%d| = %d\n", k, sizes[k])
	}
	if verbose && (algo == "bottomup" || algo == "topdown") {
		fmt.Printf("io: %s\n", st.String())
	}

	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		err = edges(func(u, v uint32, k int32) error {
			_, werr := fmt.Fprintf(w, "%d\t%d\t%d\n", u, v, k)
			return werr
		})
		if err != nil {
			f.Close()
			return err
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("classes written to %s\n", outPath)
	}
	return nil
}

func emitMap(m map[uint64]int32, emit func(u, v uint32, k int32) error) error {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, key := range keys {
		u := uint32(key >> 32)
		v := uint32(key)
		if err := emit(u, v, m[key]); err != nil {
			return err
		}
	}
	return nil
}
