// Command trussd decomposes a graph file with any of the reproduced
// algorithms and reports the k-class histogram (optionally the per-edge
// truss numbers), serves truss queries over HTTP, or queries a running
// server.
//
// Batch usage:
//
//	trussd -in graph.txt [-algo inmem|baseline|parallel|bottomup|topdown|mr]
//	       [-top t] [-budget N] [-out classes.txt] [-v]
//
// Serving usage:
//
//	trussd serve [-addr :8080] [-load name=path]... [-workers N] [-wait] [-data-dir dir]
//
// Cluster coordinator usage (fronts sharded `trussd serve` processes;
// graphs are placed on shards by rendezvous hashing):
//
//	trussd coordinator -shards "a=http://p1:8080;http://r1:8081,b=http://p2:8080" [-addr :8080]
//
// Query usage (against a running `trussd serve`, via the client package):
//
//	trussd query -graph name [-server http://host:8080] \
//	    -truss u,v | -batch pairs.txt | -histogram | -top t | -communities k | -edges k
//
// Index snapshot tooling (the mmap-able format serve persists under
// -data-dir):
//
//	trussd index build -in graph.txt -out index.tix [-source label]
//	trussd index inspect index.tix
//	trussd index verify index.tix
//
// Batch mode is a thin shell over the library's unified entry point,
// truss.Run: the -algo flag picks the engine, -budget/-top/-tmp map to the
// corresponding options, and SIGINT/SIGTERM cancel the run's context so
// even multi-hour external decompositions stop promptly.
//
// The serve subcommand decomposes each loaded graph once (with the
// parallel peeler), keeps the resulting TrussIndex resident, and answers
// truss-number, community, histogram, and top-class queries over a JSON
// HTTP API; see the internal/server package for the routes. Graphs are
// mutable while serving (POST/DELETE /v1/graphs/{name}/edges maintain the
// decomposition incrementally), and with -data-dir the registry is
// durable: snapshots plus a mutation WAL are replayed on startup, so a
// restarted server answers at its pre-crash versions without
// recomputing anything.
//
// The input is a SNAP-format edge list ("u v" per line, '#' comments) or a
// binary edge file when the path ends in ".bin".
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	truss "repro"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		if err := serveMain(os.Args[2:]); err != nil {
			fmt.Fprintf(os.Stderr, "trussd serve: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "query" {
		if err := queryMain(os.Args[2:]); err != nil {
			fmt.Fprintf(os.Stderr, "trussd query: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "coordinator" {
		if err := coordinatorMain(os.Args[2:]); err != nil {
			fmt.Fprintf(os.Stderr, "trussd coordinator: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "index" {
		if err := indexMain(os.Args[2:]); err != nil {
			fmt.Fprintf(os.Stderr, "trussd index: %v\n", err)
			os.Exit(1)
		}
		return
	}
	in := flag.String("in", "", "input graph file (SNAP text, or .bin)")
	algo := flag.String("algo", "inmem", "engine: inmem, baseline, parallel, bottomup, topdown, mr")
	topT := flag.Int("top", 0, "topdown only: compute the top-t k-classes (0 = all)")
	budget := flag.Int64("budget", 0, "memory budget in adjacency entries for external engines (0 = default)")
	outPath := flag.String("out", "", "write per-edge classes 'u v k' to this file")
	dotPath := flag.String("dot", "", "write a Graphviz rendering colored by class (in-memory engines only)")
	communitiesAt := flag.Int("communities", 0, "list the k-truss communities at this k (in-memory engines only)")
	tmp := flag.String("tmp", os.TempDir(), "temp directory for external engines")
	verbose := flag.Bool("v", false, "print I/O statistics, traces, and per-level progress")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "trussd: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *in, *algo, *topT, *budget, *outPath, *dotPath, *communitiesAt, *tmp, *verbose); err != nil {
		fmt.Fprintf(os.Stderr, "trussd: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, in, algo string, topT int, budget int64, outPath, dotPath string, communitiesAt int, tmp string, verbose bool) error {
	eng, err := truss.ParseEngine(algo)
	if err != nil {
		return err
	}
	inMemoryEngine := eng == truss.EngineInMem || eng == truss.EngineBaseline || eng == truss.EngineParallel
	if (dotPath != "" || communitiesAt >= 3) && !inMemoryEngine {
		// Reject before the (potentially hours-long) run, not after.
		return fmt.Errorf("-dot and -communities need an in-memory engine (inmem, baseline, parallel), not %s", eng)
	}
	start := time.Now()
	var st truss.IOStats
	opts := []truss.Option{
		truss.WithEngine(eng),
		truss.WithBudget(budget),
		truss.WithTopT(topT),
		truss.WithTempDir(tmp),
		truss.WithStats(&st),
	}
	if verbose {
		opts = append(opts, truss.WithProgress(func(p truss.Progress) {
			if p.Stage == truss.StageLevel {
				fmt.Fprintf(os.Stderr, "progress: %s at level %d\n", p.Engine, p.K)
			}
		}))
	}
	d, err := truss.Run(ctx, truss.FromFile(in), opts...)
	if err != nil {
		return err
	}
	defer d.Close()

	// Extras that need the full in-memory Result.
	if res, ok := truss.AsInMemory(d); ok {
		if dotPath != "" {
			f, err := os.Create(dotPath)
			if err != nil {
				return err
			}
			if err := truss.WriteDOT(f, res, in); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("graphviz rendering written to %s\n", dotPath)
		}
		if communitiesAt >= 3 {
			comms := truss.Communities(res, int32(communitiesAt))
			fmt.Printf("%d-truss communities: %d\n", communitiesAt, len(comms))
			for i, c := range comms {
				if i >= 10 {
					fmt.Printf("  ... and %d more\n", len(comms)-10)
					break
				}
				fmt.Printf("  #%d: %d edges over %d vertices\n", i+1, len(c.Edges), len(c.Vertices))
			}
		}
	}

	elapsed := time.Since(start)
	fmt.Printf("algorithm:  %s\n", algo)
	fmt.Printf("elapsed:    %s\n", elapsed.Round(time.Millisecond))
	fmt.Printf("kmax:       %d\n", d.KMax())
	hist := d.Histogram()
	for k, n := range hist {
		if n > 0 {
			fmt.Printf("|Phi_%d| = %d\n", k, n)
		}
	}
	if verbose {
		if res, ok := truss.AsBottomUp(d); ok {
			fmt.Printf("trace: %+v\n", res.Trace)
			fmt.Printf("io: %s\n", st.String())
		}
		if res, ok := truss.AsTopDown(d); ok {
			fmt.Printf("trace: %+v\n", res.Trace)
			fmt.Printf("io: %s\n", st.String())
		}
		if res, ok := truss.AsMapReduce(d); ok {
			fmt.Printf("cluster work: %s\n", res.Counters.String())
		}
	}

	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		err = sortedEdges(d, func(u, v uint32, k int32) error {
			_, werr := fmt.Fprintf(w, "%d\t%d\t%d\n", u, v, k)
			return werr
		})
		if err != nil {
			f.Close()
			return err
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("classes written to %s\n", outPath)
	}
	return nil
}

// sortedEdges emits the classified edges in canonical (u, v) order so
// -out files are deterministic across engines.
func sortedEdges(d truss.Decomposition, emit func(u, v uint32, k int32) error) error {
	type rec struct {
		key uint64
		k   int32
	}
	recs := make([]rec, 0, d.NumEdges())
	err := d.Edges(func(u, v uint32, k int32) error {
		recs = append(recs, rec{uint64(u)<<32 | uint64(v), k})
		return nil
	})
	if err != nil {
		return err
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].key < recs[j].key })
	for _, r := range recs {
		if err := emit(uint32(r.key>>32), uint32(r.key), r.k); err != nil {
			return err
		}
	}
	return nil
}
