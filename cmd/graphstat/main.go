// Command graphstat prints the paper's Table 2 statistics for a graph
// file: vertex and edge counts, on-disk text size, maximum and median
// degree, and the maximum truss number kmax. With -core it adds the
// Table 6 comparison of the kmax-truss against the cmax-core.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	truss "repro"
)

func main() {
	in := flag.String("in", "", "input graph file (SNAP text, or .bin)")
	withCore := flag.Bool("core", false, "also compare kmax-truss vs cmax-core (Table 6)")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "graphstat: -in is required")
		os.Exit(2)
	}
	g, err := truss.LoadGraph(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphstat: %v\n", err)
		os.Exit(1)
	}
	start := time.Now()
	st := truss.Stats(g)
	fmt.Printf("file:        %s\n", *in)
	fmt.Printf("|V|:         %d\n", st.V)
	fmt.Printf("|E|:         %d\n", st.E)
	fmt.Printf("size:        %d bytes (text form)\n", st.SizeBytes)
	fmt.Printf("dmax:        %d\n", st.DMax)
	fmt.Printf("dmed:        %d\n", st.DMed)
	fmt.Printf("kmax:        %d\n", st.KMax)
	fmt.Printf("clustering:  %.4f\n", truss.ClusteringCoefficient(g))
	fmt.Printf("computed in: %s\n", time.Since(start).Round(time.Millisecond))

	if *withCore {
		ts, cs := truss.MaxTrussVsMaxCore(g)
		fmt.Printf("\nkmax-truss:  V=%d E=%d k=%d CC=%.4f\n", ts.V, ts.E, ts.K, ts.CC)
		fmt.Printf("cmax-core:   V=%d E=%d c=%d CC=%.4f\n", cs.V, cs.E, cs.K, cs.CC)
	}
}
