// Command experiments regenerates the paper's evaluation (Tables 2-6 and
// Figures 1-2) on the synthetic dataset analogs and prints markdown tables
// pairing measured values with the paper's reported numbers.
//
// Usage:
//
//	experiments [-quick] [-table all|2|3|4|5|6|fig1|fig2] [-tmp DIR]
//
// -quick runs the ~1/10-scale dataset variants (minutes instead of tens of
// minutes); the shapes of all results are preserved.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "use ~1/10-scale dataset variants")
	table := flag.String("table", "all", "which table to run: all, 2, 3, 4, 5, 6, fig1, fig2")
	tmp := flag.String("tmp", os.TempDir(), "directory for external-memory spools")
	mr := flag.String("mr", "", "comma-separated datasets for TD-MR (default \"P2P,HEP\"); \"none\" disables")
	flag.Parse()

	// SIGINT/SIGTERM cancel the harness context: long external
	// decompositions abort at their next partition round.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := experiments.Options{
		Quick:   *quick,
		TempDir: *tmp,
		Out:     os.Stdout,
		Ctx:     ctx,
	}
	switch *mr {
	case "":
	case "none":
		opts.MRDatasets = []string{}
	default:
		opts.MRDatasets = splitComma(*mr)
	}

	fmt.Printf("# Truss decomposition evaluation (quick=%v) — %s\n\n", *quick, time.Now().Format(time.RFC3339))
	var err error
	switch *table {
	case "all":
		err = experiments.All(opts)
	case "2":
		err = experiments.Table2(opts)
	case "3":
		err = experiments.Table3(opts)
	case "4":
		err = experiments.Table4(opts)
	case "5":
		err = experiments.Table5(opts)
	case "6":
		err = experiments.Table6(opts)
	case "fig1":
		err = experiments.Figure1(opts)
	case "fig2":
		err = experiments.Figure2(opts)
	default:
		fmt.Fprintf(os.Stderr, "unknown table %q\n", *table)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

func splitComma(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ',' {
			if cur != "" {
				out = append(out, cur)
			}
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
