// Package truss is the public API of this reproduction of "Truss
// Decomposition in Massive Networks" (Jia Wang and James Cheng, PVLDB
// 5(9), 2012). The paper presents one problem — truss decomposition —
// solved by five interchangeable algorithms, and the API mirrors that:
// a single entry point,
//
//	d, err := truss.Run(ctx, source, opts...)
//
// runs any of the engines (EngineInMem, EngineBaseline, EngineParallel,
// EngineBottomUp, EngineTopDown, EngineMapReduce — see WithEngine) over
// any Source (FromGraph, FromFile, FromReader) and returns one
// Decomposition interface. The context is threaded through every engine's
// hot loops, so cancellation and deadlines work for in-memory peels and
// multi-hour external runs alike; WithProgress observes levels and
// rounds, WithStats accounts disk traffic in the paper's I/O model.
//
// Graphs are built with NewBuilder / FromEdges or loaded from SNAP-format
// text (or binary) files with LoadGraph. Supporting analyses used by the
// paper's evaluation — k-core decomposition, clustering coefficients, and
// the kmax-truss versus cmax-core comparison — are exposed as well.
//
// For online serving, BuildIndex freezes an in-memory Result into an
// Index that answers truss-number, community, histogram, and top-class
// queries in O(answer) time; BuildIndexFrom does the same for any
// engine's Decomposition by consuming its edge stream, so external and
// MapReduce results are indexable too. NewServer exposes a registry of
// such indexes over HTTP (the `trussd serve` subcommand).
//
// All querying goes through one surface, the Querier interface:
// QueryIndex wraps a local Index, QueryDecomposition adapts any
// Decomposition for one-shot queries without an index build, and the
// client package's Graph speaks the same interface to a remote trussd
// server — code written against Querier cannot tell RAM, spool, and
// HTTP apart.
//
// For dynamic graphs, Open returns a Decomposition whose Update method
// maintains it under edge insertions and deletions — re-peeling only the
// affected region (WithMaxRegion tunes the full-recompute fallback) while
// staying exactly equal to a fresh Run of the mutated graph. The server
// layer builds on the same machinery: mutation endpoints patch the
// resident Index instead of rebuilding it, and a snapshot+WAL store under
// ServerOptions.DataDir makes registered graphs survive restarts.
//
// The pre-Run facade functions (Decompose, DecomposeBaseline,
// DecomposeParallel, BottomUp, BottomUpFile, TopDown, TopDownFile,
// MapReduceDecompose) remain as thin deprecated wrappers over Run.
//
// Many exported names here are type aliases for internal packages
// (Graph = internal/graph.Graph, Result = internal/core.Result, and so
// on). The aliases are the supported API: internal packages can be
// restructured between releases, the facade is kept stable.
package truss

import (
	"context"
	"io"
	"net/http"
	"time"

	"repro/internal/community"
	"repro/internal/core"
	"repro/internal/embu"
	"repro/internal/emtd"
	"repro/internal/gio"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/indexfile"
	"repro/internal/kcore"
	"repro/internal/mapreduce"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/server"
	"repro/internal/viz"
)

// Graph is an immutable undirected simple graph in adjacency (CSR) form.
type Graph = graph.Graph

// Edge is an undirected edge stored canonically with U < V.
type Edge = graph.Edge

// EdgeFromKey is the inverse of Edge.Key.
func EdgeFromKey(k uint64) Edge { return graph.EdgeFromKey(k) }

// Builder accumulates edges and produces a Graph.
type Builder = graph.Builder

// NewBuilder returns a Builder with capacity for sizeHint edges.
func NewBuilder(sizeHint int) *Builder { return graph.NewBuilder(sizeHint) }

// FromEdges builds a graph from an edge list (duplicates and self-loops
// are dropped).
func FromEdges(edges []Edge) *Graph { return graph.FromEdges(edges) }

// LoadGraph reads a graph from a SNAP-format text file, or a binary edge
// file when the path ends in ".bin".
func LoadGraph(path string) (*Graph, error) { return gio.LoadGraph(path, nil) }

// SaveGraph writes a graph in the format implied by the path extension.
func SaveGraph(path string, g *Graph) error { return gio.SaveGraph(path, g, nil) }

// Result is an in-memory truss decomposition: Phi[id] is the truss number
// of edge id, KMax the maximum truss number; k-classes and k-trusses are
// derived views.
type Result = core.Result

// mustInMemory unwraps a Run that cannot fail (in-memory engine, inert
// source, background context); it exists so the deprecated wrappers keep
// their error-free signatures.
func mustInMemory(d Decomposition, err error) *Result {
	if err != nil {
		panic("truss: " + err.Error())
	}
	r, _ := AsInMemory(d)
	return r
}

// Decompose computes the truss decomposition of g with the paper's
// improved in-memory algorithm (TD-inmem+, Algorithm 2).
//
// Deprecated: use Run with FromGraph(g); EngineInMem is the default.
func Decompose(g *Graph) *Result {
	return mustInMemory(Run(context.Background(), FromGraph(g)))
}

// DecomposeBaseline computes the truss decomposition with Cohen's
// in-memory algorithm (TD-inmem, Algorithm 1). It produces identical
// results to Decompose but scans both full adjacency lists per removed
// edge, which is the bottleneck the paper's Table 3 measures.
//
// Deprecated: use Run with WithEngine(EngineBaseline).
func DecomposeBaseline(g *Graph) *Result {
	return mustInMemory(Run(context.Background(), FromGraph(g), WithEngine(EngineBaseline)))
}

// DecomposeParallel computes the truss decomposition with
// level-synchronized parallel peeling across the given number of workers
// (0 = GOMAXPROCS) — a multicore extension beyond the paper. Results are
// identical to Decompose.
//
// Deprecated: use Run with WithEngine(EngineParallel) and WithWorkers.
func DecomposeParallel(g *Graph, workers int) *Result {
	return mustInMemory(Run(context.Background(), FromGraph(g),
		WithEngine(EngineParallel), WithWorkers(workers)))
}

// Verify checks a decomposition against the k-truss definition (membership
// and maximality for every k). Intended for tests and validation.
func Verify(r *Result) error { return core.Verify(r) }

// PartitionStrategy selects how the external-memory algorithms split
// vertices into memory-sized parts.
type PartitionStrategy = partition.Strategy

// Partitioning strategies for ExternalOptions.
const (
	PartitionSequential    = partition.Sequential
	PartitionRandomized    = partition.Randomized
	PartitionDominatingSet = partition.DominatingSet
)

// ExternalOptions configures the out-of-core algorithms.
type ExternalOptions struct {
	// MemoryBudget is the paper's M, measured in adjacency entries (an
	// in-memory subgraph with e edges consumes 2e entries). 0 selects a
	// default suitable for graphs of a few million edges.
	MemoryBudget int64
	// Strategy selects the vertex partitioner (default randomized).
	Strategy PartitionStrategy
	// Seed drives randomized partitioning.
	Seed int64
	// TempDir holds on-disk spools (default os.TempDir()).
	TempDir string
	// Stats, if non-nil, accumulates every byte moved to and from disk.
	Stats *IOStats
}

// options translates the legacy option struct into Run options.
func (o ExternalOptions) options(engine Engine) []Option {
	return []Option{
		WithEngine(engine),
		WithBudget(o.MemoryBudget),
		WithPartition(o.Strategy),
		WithSeed(o.Seed),
		WithTempDir(o.TempDir),
		WithStats(o.Stats),
	}
}

// IOStats counts disk traffic in the Aggarwal-Vitter model; IOs(B) reports
// block transfers.
type IOStats = gio.Stats

// ExternalResult is a disk-resident truss decomposition produced by
// BottomUp: per-edge classes live in a spool; summaries are in memory.
type ExternalResult = embu.Result

// BottomUp runs the I/O-efficient bottom-up truss decomposition
// (Algorithms 3 and 4) on g under the given memory budget. The graph is
// spooled to disk first, so the run honestly exercises the external-memory
// code paths regardless of g's size.
//
// Deprecated: use Run with WithEngine(EngineBottomUp) and AsBottomUp on
// the result.
func BottomUp(g *Graph, opts ExternalOptions) (*ExternalResult, error) {
	d, err := Run(context.Background(), FromGraph(g), opts.options(EngineBottomUp)...)
	if err != nil {
		return nil, err
	}
	res, _ := AsBottomUp(d)
	return res, nil
}

// BottomUpFile decomposes a graph file (SNAP text or .bin) without ever
// materializing it in memory: the file streams straight into the engine's
// input spool, with canonicalization and deduplication done out of core.
//
// Deprecated: use Run with FromFile(path) and WithEngine(EngineBottomUp).
func BottomUpFile(path string, opts ExternalOptions) (*ExternalResult, error) {
	d, err := Run(context.Background(), FromFile(path), opts.options(EngineBottomUp)...)
	if err != nil {
		return nil, err
	}
	res, _ := AsBottomUp(d)
	return res, nil
}

// TopDownResult is the output of the top-down algorithm.
type TopDownResult = emtd.Result

// TopDown computes the top-t k-classes of g (t = 0 means all classes) with
// the I/O-efficient top-down algorithm (Algorithm 7).
//
// Deprecated: use Run with WithEngine(EngineTopDown), WithTopT(t), and
// AsTopDown on the result.
func TopDown(g *Graph, topT int, opts ExternalOptions) (*TopDownResult, error) {
	d, err := Run(context.Background(), FromGraph(g),
		append(opts.options(EngineTopDown), WithTopT(topT))...)
	if err != nil {
		return nil, err
	}
	res, _ := AsTopDown(d)
	return res, nil
}

// TopDownFile is TopDown over a graph file, streamed without ever
// materializing the graph in memory.
//
// Deprecated: use Run with FromFile(path) and WithEngine(EngineTopDown).
func TopDownFile(path string, topT int, opts ExternalOptions) (*TopDownResult, error) {
	d, err := Run(context.Background(), FromFile(path),
		append(opts.options(EngineTopDown), WithTopT(topT))...)
	if err != nil {
		return nil, err
	}
	res, _ := AsTopDown(d)
	return res, nil
}

// CountTrianglesExternal counts the triangles of a graph file without
// holding the graph in memory, using the same partitioned accumulation
// that powers the external decomposition (each triangle is counted at the
// unique partition round where its first edge becomes internal — the
// I/O-efficient scheme of Chu & Cheng the paper builds on).
func CountTrianglesExternal(path string, opts ExternalOptions) (int64, error) {
	ctx := context.Background()
	sp, n, err := fileSource{path}.stream(ctx, opts.TempDir, opts.MemoryBudget, opts.Stats)
	if err != nil {
		return 0, err
	}
	defer sp.Remove()
	aux, err := gio.NewSpool[gio.EdgeAux2](opts.TempDir, "tri", gio.EdgeAux2Codec{}, opts.Stats)
	if err != nil {
		return 0, err
	}
	defer aux.Remove()
	w, err := aux.Create()
	if err != nil {
		return 0, err
	}
	if err := sp.ForEach(func(r gio.EdgeRec) error {
		return w.Write(gio.EdgeAux2{U: r.U, V: r.V})
	}); err != nil {
		w.Close()
		return 0, err
	}
	if err := w.Close(); err != nil {
		return 0, err
	}
	sups, err := embu.ExactSupports(ctx, aux, n, embu.Config{
		Budget:   opts.MemoryBudget,
		Strategy: opts.Strategy,
		Seed:     opts.Seed,
		TempDir:  opts.TempDir,
		Stats:    opts.Stats,
	})
	if err != nil {
		return 0, err
	}
	defer sups.Remove()
	var total int64
	if err := sups.ForEach(func(r gio.EdgeAux) error {
		total += int64(r.Aux)
		return nil
	}); err != nil {
		return 0, err
	}
	return total / 3, nil
}

// MapReduceResult is a TD-MR decomposition with simulated-cluster
// counters.
type MapReduceResult = mapreduce.Result

// MapReduceDecompose runs Cohen's graph-twiddling truss decomposition
// (TD-MR) on the in-process MapReduce simulator.
//
// Deprecated: use Run with WithEngine(EngineMapReduce) and AsMapReduce on
// the result.
func MapReduceDecompose(g *Graph) *MapReduceResult {
	d, err := Run(context.Background(), FromGraph(g), WithEngine(EngineMapReduce))
	if err != nil {
		panic("truss: " + err.Error())
	}
	res, _ := AsMapReduce(d)
	return res
}

// CoreResult is a k-core decomposition.
type CoreResult = kcore.Result

// CoreDecompose computes core numbers with the O(m) bin-sort algorithm of
// Batagelj and Zaversnik, the comparison point of the paper's Table 6.
func CoreDecompose(g *Graph) *CoreResult { return kcore.Decompose(g) }

// ClusteringCoefficient returns the average local clustering coefficient
// (Watts-Strogatz), the cohesion metric of Example 1 and Table 6.
func ClusteringCoefficient(g *Graph) float64 { return metrics.ClusteringCoefficient(g) }

// GraphStats is one row of the paper's Table 2 (dataset statistics).
type GraphStats = metrics.TableStats

// Stats computes |V|, |E|, text size, max/median degree, and kmax for g.
func Stats(g *Graph) GraphStats { return metrics.Stats(g) }

// SubgraphStats describes an extremal subgraph in the Table 6 comparison.
type SubgraphStats = metrics.SubgraphStats

// MaxTrussVsMaxCore computes the paper's Table 6 comparison: statistics of
// the kmax-truss versus the cmax-core of g.
func MaxTrussVsMaxCore(g *Graph) (truss, core SubgraphStats) {
	return metrics.TrussVsCore(g)
}

// Community is a triangle-connected component of a k-truss: a maximal set
// of T_k edges linked through shared T_k triangles. Communities may
// overlap on vertices but not on edges.
type Community = community.Community

// Communities returns the k-truss communities of r's graph, largest first.
// k must be at least 3.
func Communities(r *Result, k int32) []Community { return community.Detect(r, k) }

// WriteDOT renders a decomposition as a Graphviz graph with edges colored
// by truss number (the paper's Figure 2 shading).
func WriteDOT(w io.Writer, r *Result, name string) error { return viz.WriteDOT(w, r, name) }

// Index is an immutable, query-optimized view of a truss decomposition:
// truss numbers, k-classes, k-trusses, and triangle-connected k-truss
// communities are all answered in O(answer) time without re-peeling.
// It is safe for concurrent readers. Index is an alias for the internal
// index.TrussIndex; build one with BuildIndex.
type Index = index.TrussIndex

// IndexClass is one k-class as returned by Index.TopClasses.
type IndexClass = index.Class

// BuildIndex freezes an in-memory decomposition Result into an Index.
// The cost is two triangle enumerations (a counting pre-pass sizes the
// triangle buffer exactly) plus the per-level community tables — run it
// once per decomposition, then query freely:
//
//	ix := truss.BuildIndex(truss.Decompose(g))
//	k, ok := ix.TrussNumber(u, v)
//
// BuildIndex is the fast path for in-memory results; BuildIndexFrom
// accepts any engine's Decomposition (external spools and MapReduce
// results included) and produces a structurally identical Index.
func BuildIndex(r *Result) *Index { return index.Build(r) }

// IndexFile is an open handle on a memory-mapped index snapshot: the
// on-disk serialization of an Index, validated and served straight off
// the page cache. Its Index() method returns a fully query-capable
// *Index that aliases the mapping — zero copy, open time independent of
// edge count. IndexFile is an alias for the internal indexfile.File;
// produce files with WriteIndexFile and open them with OpenIndexFile.
type IndexFile = indexfile.File

// ErrCorruptIndexFile is wrapped by every validation failure from
// OpenIndexFile and IndexFile.Verify — truncated files, flipped bits,
// impossible section tables. Test with errors.Is.
var ErrCorruptIndexFile = indexfile.ErrCorrupt

// WriteIndexFile atomically persists ix to path in the indexfile format
// (temp file + fsync + rename + directory fsync): a versioned,
// checksummed, 8-byte-aligned binary layout that OpenIndexFile maps
// back without deserializing. source is a free-form provenance label
// stored in the file's metadata section.
func WriteIndexFile(path string, ix *Index, source string) error {
	return indexfile.WriteFile(path, ix, indexfile.Meta{
		Source:          source,
		CreatedUnixNano: time.Now().UnixNano(),
	})
}

// OpenIndexFile memory-maps an index snapshot written by WriteIndexFile
// (ReadFile fallback on platforms without mmap) and validates its
// preamble checksum plus structural invariants — O(kmax) work, so open
// time does not grow with the graph. The returned handle's Index() is
// ready to query immediately; pages fault in from the OS page cache on
// first touch. Call Verify for a full data-checksum sweep (O(file
// size)) when reading files of uncertain provenance. Close releases the
// mapping — only after every *Index obtained from the handle is
// unreachable.
func OpenIndexFile(path string) (*IndexFile, error) { return indexfile.Open(path) }

// Server is an HTTP truss-query server: a registry of named graphs, each
// frozen into an Index, queried concurrently through immutable snapshots
// and rebuilt in the background. Server is an alias for the internal
// server.Server; create one with NewServer and mount Handler on any
// net/http mux (or use the `trussd serve` subcommand).
type Server = server.Server

// ServerOptions configures NewServer.
type ServerOptions = server.Options

// NewServer returns an empty query server. Register graphs with its
// Build/BuildAsync/LoadFileAsync methods or over HTTP, then serve
// Handler:
//
//	srv := truss.NewServer(truss.ServerOptions{})
//	srv.Build("mygraph", g, "inline")
//	http.ListenAndServe(":8080", srv.Handler())
func NewServer(opts ServerOptions) *Server { return server.New(opts) }

// HTTPTimeouts bounds the connection-lifecycle phases (header read, full
// request read, keep-alive idle) of a serving http.Server. Zero fields
// select hardened defaults; negative fields disable that bound.
type HTTPTimeouts = server.HTTPTimeouts

// NewHTTPServer wraps a handler (typically Server.Handler) in an
// http.Server hardened against slow-client connection exhaustion
// (slowloris): header, body-read, and idle phases are all bounded by
// default. `trussd serve` uses exactly this constructor.
func NewHTTPServer(h http.Handler, t HTTPTimeouts) *http.Server {
	return server.NewHTTPServer(h, t)
}

// MetricsRegistry returns the process-default observability registry:
// truss.Run records engine activity into it, NewServer registers its
// serving metrics on it (unless ServerOptions.Metrics overrides), and a
// server's GET /metrics exposes it in the Prometheus text format. A
// non-trussd process can expose it with the registry's WritePrometheus.
func MetricsRegistry() *obs.Registry { return obs.Default() }
