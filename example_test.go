package truss_test

import (
	"context"
	"fmt"
	"log"

	truss "repro"
)

// ExampleRun decomposes a graph through the unified entry point: any of
// the paper's five algorithms (plus the parallel extension) runs behind
// the same call, returns the same Decomposition interface, and honors the
// context for cancellation.
func ExampleRun() {
	g := truss.FromEdges([]truss.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, // 4-clique on 0..3
		{U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 3},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 3, V: 5}, // pendant triangle
	})
	d, err := truss.Run(context.Background(), truss.FromGraph(g),
		truss.WithEngine(truss.EngineInMem))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer d.Close()
	fmt.Println("kmax:", d.KMax())
	hist := d.Histogram()
	for k := int32(3); k <= d.KMax(); k++ {
		fmt.Printf("|Phi_%d| = %d\n", k, hist[k])
	}
	// Output:
	// kmax: 4
	// |Phi_3| = 3
	// |Phi_4| = 6
}

// ExampleDecompose decomposes a small graph: a 4-clique with a pendant
// triangle hanging off it.
func ExampleDecompose() {
	b := truss.NewBuilder(8)
	// 4-clique on 0..3.
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	b.AddEdge(1, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	// Pendant triangle 3-4-5.
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(3, 5)
	g := b.Build()

	res := truss.Decompose(g)
	fmt.Println("kmax:", res.KMax)
	for k := int32(3); k <= res.KMax; k++ {
		fmt.Printf("|Phi_%d| = %d\n", k, len(res.Class(k)))
	}
	// Output:
	// kmax: 4
	// |Phi_3| = 3
	// |Phi_4| = 6
}

// ExampleResult_Truss extracts the innermost truss of a graph.
func ExampleResult_Truss() {
	g := truss.FromEdges([]truss.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2}, // triangle
		{U: 2, V: 3}, // tail
	})
	res := truss.Decompose(g)
	t3 := res.Truss(3)
	fmt.Println("3-truss edges:", t3.NumEdges())
	fmt.Println("tail kept:", t3.HasEdge(2, 3))
	// Output:
	// 3-truss edges: 3
	// tail kept: false
}

// ExampleCommunities splits two cliques bridged by one edge into separate
// triangle-connected communities.
func ExampleCommunities() {
	b := truss.NewBuilder(21)
	for i := uint32(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(i, j)       // clique A: 0..4
			b.AddEdge(10+i, 10+j) // clique B: 10..14
		}
	}
	b.AddEdge(4, 10) // bridge
	res := truss.Decompose(b.Build())
	comms := truss.Communities(res, 4)
	fmt.Println("communities:", len(comms))
	fmt.Println("sizes:", len(comms[0].Vertices), len(comms[1].Vertices))
	// Output:
	// communities: 2
	// sizes: 5 5
}

// ExampleBuildIndex freezes a decomposition into a query index and asks
// it for truss numbers and the class histogram — the online-serving path
// (`trussd serve` exposes the same queries over HTTP).
func ExampleBuildIndex() {
	b := truss.NewBuilder(8)
	// 4-clique on 0..3 with a pendant triangle 3-4-5.
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	b.AddEdge(1, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(3, 5)

	ix := truss.BuildIndex(truss.Decompose(b.Build()))
	k, _ := ix.TrussNumber(0, 1) // clique edge
	fmt.Println("phi(0,1):", k)
	k, _ = ix.TrussNumber(3, 4) // pendant-triangle edge
	fmt.Println("phi(3,4):", k)
	for _, c := range ix.TopClasses(2) {
		fmt.Printf("|Phi_%d| = %d\n", c.K, len(c.Edges))
	}
	// Output:
	// phi(0,1): 4
	// phi(3,4): 3
	// |Phi_4| = 6
	// |Phi_3| = 3
}

// ExampleBuildIndexFrom indexes an external-memory decomposition by
// streaming its disk-resident result — the path that makes the paper's
// out-of-core algorithms servable — and queries it through the unified
// Querier surface.
func ExampleBuildIndexFrom() {
	ctx := context.Background()
	b := truss.NewBuilder(8)
	// 4-clique on 0..3 with a pendant triangle 3-4-5.
	for _, e := range [][2]uint32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5}, {3, 5}} {
		b.AddEdge(e[0], e[1])
	}
	d, err := truss.Run(ctx, truss.FromGraph(b.Build()),
		truss.WithEngine(truss.EngineBottomUp)) // result lives in a spool
	if err != nil {
		log.Fatal(err)
	}
	ix, err := truss.BuildIndexFrom(ctx, d) // reconstructed from the stream
	if err != nil {
		log.Fatal(err)
	}
	d.Close() // the index no longer needs the spool

	q := truss.QueryIndex(ix)
	k, _, _ := q.TrussNumber(ctx, 0, 1)
	fmt.Println("phi(0,1):", k)
	seq, errf := q.KTrussEdges(ctx, 4)
	n := 0
	for range seq {
		n++
	}
	if err := errf(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("4-truss edges:", n)
	// Output:
	// phi(0,1): 4
	// 4-truss edges: 6
}

// ExampleIndex_CommunityOf looks up the k-truss community around a single
// edge in O(answer) time: two cliques bridged by an edge stay separate
// communities, and the bridge belongs to neither.
func ExampleIndex_CommunityOf() {
	b := truss.NewBuilder(21)
	for i := uint32(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(i, j)       // clique A: 0..4
			b.AddEdge(10+i, 10+j) // clique B: 10..14
		}
	}
	b.AddEdge(4, 10) // bridge
	ix := truss.BuildIndex(truss.Decompose(b.Build()))

	edges, ok := ix.CommunityOf(0, 1, 4)
	fmt.Println("community of (0,1):", len(edges), "edges over", len(ix.Vertices(edges)), "vertices")
	fmt.Println("found:", ok)
	_, ok = ix.CommunityOf(4, 10, 4) // the bridge is in no 4-truss
	fmt.Println("bridge in a 4-truss community:", ok)
	// Output:
	// community of (0,1): 10 edges over 5 vertices
	// found: true
	// bridge in a 4-truss community: false
}

// ExampleCoreDecompose contrasts the core and truss numbers of a graph
// where they differ.
func ExampleCoreDecompose() {
	// A 6-cycle: every vertex has degree 2 (cmax = 2) but there are no
	// triangles at all (kmax = 2): the truss sees through the cycle.
	b := truss.NewBuilder(6)
	for i := uint32(0); i < 6; i++ {
		b.AddEdge(i, (i+1)%6)
	}
	g := b.Build()
	fmt.Println("cmax:", truss.CoreDecompose(g).CMax)
	fmt.Println("kmax:", truss.Decompose(g).KMax)
	// Output:
	// cmax: 2
	// kmax: 2
}
