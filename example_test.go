package truss_test

import (
	"fmt"

	truss "repro"
)

// ExampleDecompose decomposes a small graph: a 4-clique with a pendant
// triangle hanging off it.
func ExampleDecompose() {
	b := truss.NewBuilder(8)
	// 4-clique on 0..3.
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	b.AddEdge(1, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	// Pendant triangle 3-4-5.
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(3, 5)
	g := b.Build()

	res := truss.Decompose(g)
	fmt.Println("kmax:", res.KMax)
	for k := int32(3); k <= res.KMax; k++ {
		fmt.Printf("|Phi_%d| = %d\n", k, len(res.Class(k)))
	}
	// Output:
	// kmax: 4
	// |Phi_3| = 3
	// |Phi_4| = 6
}

// ExampleResult_Truss extracts the innermost truss of a graph.
func ExampleResult_Truss() {
	g := truss.FromEdges([]truss.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2}, // triangle
		{U: 2, V: 3}, // tail
	})
	res := truss.Decompose(g)
	t3 := res.Truss(3)
	fmt.Println("3-truss edges:", t3.NumEdges())
	fmt.Println("tail kept:", t3.HasEdge(2, 3))
	// Output:
	// 3-truss edges: 3
	// tail kept: false
}

// ExampleCommunities splits two cliques bridged by one edge into separate
// triangle-connected communities.
func ExampleCommunities() {
	b := truss.NewBuilder(21)
	for i := uint32(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(i, j)       // clique A: 0..4
			b.AddEdge(10+i, 10+j) // clique B: 10..14
		}
	}
	b.AddEdge(4, 10) // bridge
	res := truss.Decompose(b.Build())
	comms := truss.Communities(res, 4)
	fmt.Println("communities:", len(comms))
	fmt.Println("sizes:", len(comms[0].Vertices), len(comms[1].Vertices))
	// Output:
	// communities: 2
	// sizes: 5 5
}

// ExampleCoreDecompose contrasts the core and truss numbers of a graph
// where they differ.
func ExampleCoreDecompose() {
	// A 6-cycle: every vertex has degree 2 (cmax = 2) but there are no
	// triangles at all (kmax = 2): the truss sees through the cycle.
	b := truss.NewBuilder(6)
	for i := uint32(0); i < 6; i++ {
		b.AddEdge(i, (i+1)%6)
	}
	g := b.Build()
	fmt.Println("cmax:", truss.CoreDecompose(g).CMax)
	fmt.Println("kmax:", truss.Decompose(g).KMax)
	// Output:
	// cmax: 2
	// kmax: 2
}
