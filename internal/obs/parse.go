package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// This file is a strict reader for the Prometheus text exposition format.
// It exists for two consumers: the golden tests, which must fail on any
// format drift a lenient scraper would forgive, and the soak harness,
// which asserts /metrics counter values against the load it drove.

// Samples maps rendered series ("name{k=\"v\"}") to their parsed values.
type Samples map[string]float64

// Value returns the sample for name with the given ("k", "v", ...) label
// pairs, or 0 when the series was not exposed.
func (s Samples) Value(name string, labels ...string) float64 {
	return s[name+renderLabels(labels)]
}

// labelPair matches one k="v" inside a label block.
var labelPair = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)

// valueToken matches a sample value (with optional trailing timestamp).
var valueToken = regexp.MustCompile(`^(NaN|[-+]?(?:Inf|[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?))(?:\s+[-+]?[0-9]+)?$`)

// splitSample cuts one exposition line into metric name, raw label block
// (with braces, "" if none), and value text. The label block is scanned
// with quote awareness — label values legitimately contain '{', '}', and
// ',' (route patterns do) — so a regex over the whole line cannot do it.
func splitSample(line string) (name, labels, value string, err error) {
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return "", "", "", fmt.Errorf("no metric name")
	}
	name = line[:i]
	if i < len(line) && line[i] == '{' {
		inQuotes := false
		j := i + 1
		for ; j < len(line); j++ {
			switch line[j] {
			case '\\':
				if inQuotes {
					j++
				}
			case '"':
				inQuotes = !inQuotes
			case '}':
				if !inQuotes {
					labels = line[i : j+1]
					i = j + 1
					goto labelsDone
				}
			}
		}
		return "", "", "", fmt.Errorf("unterminated label block")
	}
labelsDone:
	rest := strings.TrimLeft(line[i:], " \t")
	if rest == line[i:] && rest != "" {
		return "", "", "", fmt.Errorf("missing space before value")
	}
	m := valueToken.FindStringSubmatch(rest)
	if m == nil {
		return "", "", "", fmt.Errorf("bad value %q", rest)
	}
	return name, labels, m[1], nil
}

// isNameChar reports whether c may appear in a metric name (first
// position excludes digits).
func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

// ParseExposition reads the Prometheus text format strictly: every
// non-comment line must be a well-formed sample, TYPE declarations must
// name a known type, no series may repeat, histogram bucket series must be
// cumulative (non-decreasing in le order) with a +Inf bucket equal to
// _count, and every histogram needs both _sum and _count. It returns the
// parsed samples keyed by canonical series name.
func ParseExposition(r io.Reader) (Samples, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	samples := Samples{}
	types := map[string]string{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed TYPE comment %q", lineNo, line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
				}
				if _, dup := types[fields[2]]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, fields[2])
				}
				types[fields[2]] = fields[3]
			}
			continue
		}
		name, labels, valueText, perr := splitSample(line)
		if perr != nil {
			return nil, fmt.Errorf("line %d: malformed sample %q: %v", lineNo, line, perr)
		}
		key, err := canonicalSeries(name, labels)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if _, dup := samples[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		v, err := strconv.ParseFloat(valueText, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad value %q: %w", lineNo, valueText, err)
		}
		samples[key] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := checkHistograms(samples, types); err != nil {
		return nil, err
	}
	return samples, nil
}

// canonicalSeries validates a label block and re-renders it sorted so
// lookup keys are stable.
func canonicalSeries(name, labels string) (string, error) {
	if labels == "" || labels == "{}" {
		return name, nil
	}
	inner := labels[1 : len(labels)-1]
	var kv []string
	for _, part := range splitLabels(inner) {
		pm := labelPair.FindStringSubmatch(part)
		if pm == nil {
			return "", fmt.Errorf("malformed label %q in %s%s", part, name, labels)
		}
		kv = append(kv, pm[1], unescapeLabel(pm[2]))
	}
	return name + renderLabels(kv), nil
}

// splitLabels splits the inside of a label block on commas that are not
// inside quoted values.
func splitLabels(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// unescapeLabel reverses the exposition escaping of a label value.
func unescapeLabel(v string) string {
	if !strings.Contains(v, `\`) {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		if v[i] == '\\' && i+1 < len(v) {
			i++
			switch v[i] {
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(v[i])
			}
			continue
		}
		b.WriteByte(v[i])
	}
	return b.String()
}

// checkHistograms enforces the histogram invariants over the parsed set.
func checkHistograms(samples Samples, types map[string]string) error {
	for name, kind := range types {
		if kind != "histogram" {
			continue
		}
		// Group bucket series by their non-le label set.
		type bucket struct {
			le  float64
			val float64
		}
		buckets := map[string][]bucket{}
		prefix := name + "_bucket"
		for key, v := range samples {
			if !strings.HasPrefix(key, prefix) {
				continue
			}
			rest := strings.TrimPrefix(key, prefix)
			le, others, err := extractLE(rest)
			if err != nil {
				return fmt.Errorf("series %s: %w", key, err)
			}
			buckets[others] = append(buckets[others], bucket{le: le, val: v})
		}
		if len(buckets) == 0 {
			return fmt.Errorf("histogram %s has no _bucket series", name)
		}
		for others, bs := range buckets {
			sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
			last := bs[len(bs)-1]
			if !math.IsInf(last.le, +1) {
				return fmt.Errorf("histogram %s%s missing +Inf bucket", name, others)
			}
			for i := 1; i < len(bs); i++ {
				if bs[i].val < bs[i-1].val {
					return fmt.Errorf("histogram %s%s buckets not cumulative at le=%g", name, others, bs[i].le)
				}
			}
			count, ok := samples[name+"_count"+others]
			if !ok {
				return fmt.Errorf("histogram %s%s missing _count", name, others)
			}
			if _, ok := samples[name+"_sum"+others]; !ok {
				return fmt.Errorf("histogram %s%s missing _sum", name, others)
			}
			if count != last.val {
				return fmt.Errorf("histogram %s%s +Inf bucket %g != count %g", name, others, last.val, count)
			}
		}
	}
	return nil
}

// extractLE pulls the le label out of a canonical label suffix, returning
// its value and the remaining label block.
func extractLE(labels string) (le float64, others string, err error) {
	if labels == "" || labels[0] != '{' {
		return 0, "", fmt.Errorf("bucket series without labels")
	}
	inner := labels[1 : len(labels)-1]
	var rest []string
	leText := ""
	for _, part := range splitLabels(inner) {
		if strings.HasPrefix(part, `le="`) {
			leText = strings.TrimSuffix(strings.TrimPrefix(part, `le="`), `"`)
			continue
		}
		pm := labelPair.FindStringSubmatch(part)
		if pm == nil {
			return 0, "", fmt.Errorf("malformed label %q", part)
		}
		rest = append(rest, pm[1], unescapeLabel(pm[2]))
	}
	if leText == "" {
		return 0, "", fmt.Errorf("bucket series without le label")
	}
	if leText == "+Inf" {
		le = math.Inf(+1)
	} else if le, err = strconv.ParseFloat(leText, 64); err != nil {
		return 0, "", fmt.Errorf("bad le %q: %w", leText, err)
	}
	return le, renderLabels(rest), nil
}
