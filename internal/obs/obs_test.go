package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name + labels returns the same counter.
	if r.Counter("c_total", "a counter") != c {
		t.Fatal("counter not interned")
	}
	// Label order does not matter for interning.
	a := r.Counter("l_total", "", "x", "1", "y", "2")
	b := r.Counter("l_total", "", "y", "2", "x", "1")
	if a != b {
		t.Fatal("label sets not canonicalized")
	}

	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Dec()
	g.Add(-2)
	g.Inc()
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "")
}

// TestHistogramBuckets pins the bucket assignment rule: an observation
// lands in the first bucket whose upper bound is >= the value, and bounds
// are inclusive.
func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 100.0} {
		h.Observe(v)
	}
	want := []int64{2, 2, 2, 1} // {<=1}: 0.5,1.0  {<=2}: 1.5,2.0  {<=4}: 3,4  {+Inf}: 100
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
	if math.Abs(h.Sum()-112.0) > 1e-9 {
		t.Errorf("sum = %g, want 112", h.Sum())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{10, 20, 30, 40})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
	// 100 observations spread uniformly over (0, 40].
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.4)
	}
	cases := []struct{ q, want, tol float64 }{
		{0.25, 10, 1},
		{0.5, 20, 1},
		{0.99, 39.6, 1},
		{0, 0, 1},
		{1, 40, 1e-9},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > c.tol {
			t.Errorf("Quantile(%g) = %g, want %g +- %g", c.q, got, c.want, c.tol)
		}
	}
	// Values beyond every bound clamp to the largest finite bound.
	over := newHistogram([]float64{1, 2})
	over.Observe(50)
	if got := over.Quantile(0.5); got != 2 {
		t.Errorf("overflow quantile = %g, want 2", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram(DefBuckets)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.003)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	if math.Abs(h.Sum()-24.0) > 1e-6 {
		t.Fatalf("sum = %g, want 24", h.Sum())
	}
}

func TestEscapeLabel(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", "path", "a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `path="a\"b\\c\nd"`) {
		t.Fatalf("label not escaped: %q", b.String())
	}
}

// TestExpositionGolden locks the exposition output for a representative
// registry down to the byte, so format drift is caught even when the
// strict parser would still accept the result.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("truss_http_requests_total", "HTTP requests served.", "route", "/healthz", "code", "200")
	c.Add(3)
	g := r.Gauge("truss_http_inflight", "Requests currently in flight.")
	g.Set(2)
	h := r.Histogram("truss_http_request_seconds", "Request latency.", []float64{0.01, 0.1, 1}, "route", "/healthz")
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP truss_http_requests_total HTTP requests served.
# TYPE truss_http_requests_total counter
truss_http_requests_total{code="200",route="/healthz"} 3
# HELP truss_http_inflight Requests currently in flight.
# TYPE truss_http_inflight gauge
truss_http_inflight 2
# HELP truss_http_request_seconds Request latency.
# TYPE truss_http_request_seconds histogram
truss_http_request_seconds_bucket{route="/healthz",le="0.01"} 1
truss_http_request_seconds_bucket{route="/healthz",le="0.1"} 2
truss_http_request_seconds_bucket{route="/healthz",le="1"} 2
truss_http_request_seconds_bucket{route="/healthz",le="+Inf"} 3
truss_http_request_seconds_sum{route="/healthz"} 5.055
truss_http_request_seconds_count{route="/healthz"} 3
`
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", b.String(), want)
	}

	// The golden text must also pass the strict parser, and the parsed
	// values must read back.
	samples, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("golden output rejected by strict parser: %v", err)
	}
	if got := samples.Value("truss_http_requests_total", "route", "/healthz", "code", "200"); got != 3 {
		t.Fatalf("parsed counter = %g, want 3", got)
	}
	if got := samples.Value("truss_http_request_seconds_count", "route", "/healthz"); got != 3 {
		t.Fatalf("parsed histogram count = %g, want 3", got)
	}
}

func TestParserRejectsMalformed(t *testing.T) {
	bad := []string{
		"metric{a=b} 1\n",                 // unquoted label value
		"# TYPE m counter\nm 1.5.3\n",     // unparseable value
		"# TYPE m wat\nm 1\n",             // unknown type
		"m{} 1\nm{} 2\n",                  // duplicate series
		"# TYPE m histogram\nm_sum 1\n",   // histogram without _count
		"# TYPE m counter\nm{a=\"x\"\n",   // unterminated sample
		"# TYPE m histogram\nm_bucket{le=\"1\"} 2\nm_bucket{le=\"+Inf\"} 1\nm_sum 1\nm_count 1\n", // non-monotonic buckets
	}
	for _, in := range bad {
		if _, err := ParseExposition(strings.NewReader(in)); err == nil {
			t.Errorf("parser accepted malformed input %q", in)
		}
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := newHistogram(DefBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}
