// Package obs is the dependency-free observability core of the serving
// stack: atomic counters and gauges, fixed-bucket latency histograms with
// quantile estimation, and a Registry that renders everything in the
// Prometheus text exposition format. It exists so the server, the engines,
// and the durability layer can all report through one surface without
// pulling a metrics dependency into a graph-algorithms module.
//
// Design constraints, in order:
//
//  1. Hot-path cost. Recording a counter increment or a histogram
//     observation is a handful of atomic adds — no locks, no allocation,
//     no time formatting. The serving middleware sits on every request;
//     BenchmarkObsOverhead in internal/server holds the instrumented
//     handler within 5% of the bare one.
//  2. Fixed memory. Histograms use a fixed bucket layout chosen at
//     registration; nothing grows with traffic. Label sets are interned
//     in the registry, so cardinality is bounded by the code that calls
//     With (routes × status classes, not user input).
//  3. Exposition compatibility. WritePrometheus emits the text format any
//     Prometheus scraper (or the strict parser in the tests) accepts:
//     HELP/TYPE headers, cumulative le buckets with +Inf, _sum and _count.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use but unregistered; obtain registered counters from a Registry.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored — counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down (in-flight requests, resident
// graphs, WAL bytes).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets is the default latency bucket layout, in seconds — the usual
// web-serving spread from half a millisecond to ten seconds.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// WideBuckets is the layout for seconds-to-minutes operations —
// decomposition builds and engine runs, which are 1ms on toy graphs and
// twenty minutes on the paper's largest. One shared definition keeps
// truss_build_seconds and truss_run_seconds comparable on a dashboard.
var WideBuckets = []float64{
	0.001, 0.01, 0.1, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300, 600, 1200,
}

// Histogram is a fixed-bucket distribution: counts[i] holds observations
// <= bounds[i], with one overflow bucket (+Inf) at the end. Observations
// are two atomic adds plus one atomic float accumulation; there is no
// per-observation allocation and no lock.
type Histogram struct {
	bounds []float64 // ascending upper bounds, exclusive of +Inf
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// newHistogram builds a histogram over the given ascending bounds
// (DefBuckets when nil).
func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v; the layouts are small
	// (tens of buckets) so this is a few cache-resident compares.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the elapsed time since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (q in [0, 1]) by linear interpolation
// inside the bucket where the cumulative count crosses q. Returns NaN when
// the histogram is empty. Estimates inherit bucket resolution: a value in
// the +Inf bucket reports the largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i == len(h.bounds) { // +Inf bucket: clamp to last finite bound
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// metricKind is the Prometheus TYPE of a family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// family is one metric name: a TYPE, a HELP string, and its label-set
// children in registration order.
type family struct {
	name   string
	help   string
	kind   metricKind
	bounds []float64 // histogram families only
	mu     sync.Mutex
	order  []string
	kids   map[string]*child
}

// child is one label set of a family, holding exactly one live metric.
type child struct {
	labels string // rendered {k="v",...} suffix, "" for unlabeled
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds metric families and renders them. The zero value is not
// usable; call NewRegistry. Lookup methods are cheap enough for per-request
// use but hot paths should capture the returned metric once where possible.
type Registry struct {
	mu       sync.Mutex
	order    []string
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// defaultRegistry is the process-wide registry shared by the server stack
// and the engine entry points.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry: trussd serves it on /metrics,
// and truss.Run reports engine activity into it.
func Default() *Registry { return defaultRegistry }

// family returns (registering on first use) the named family. Re-registering
// a name with a different kind panics: that is a programming error, not a
// runtime condition.
func (r *Registry) family(name, help string, kind metricKind, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, bounds: bounds, kids: map[string]*child{}}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	return f
}

// child returns (creating on first use) the label-set child of f.
func (f *family) child(labels []string) *child {
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.kids[key]
	if !ok {
		c = &child{labels: key}
		switch f.kind {
		case kindCounter:
			c.c = &Counter{}
		case kindGauge:
			c.g = &Gauge{}
		case kindHistogram:
			c.h = newHistogram(f.bounds)
		}
		f.kids[key] = c
		f.order = append(f.order, key)
	}
	return c
}

// renderLabels turns k1, v1, k2, v2, ... into a canonical {k1="v1",...}
// suffix. Pairs are sorted by key so the same set always interns to the
// same child regardless of call-site order. Odd trailing names are dropped.
func renderLabels(kv []string) string {
	n := len(kv) / 2
	if n == 0 {
		return ""
	}
	type pair struct{ k, v string }
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{kv[2*i], kv[2*i+1]}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// Counter returns the registered counter for name and the given
// ("k", "v", ...) label pairs, creating both family and child on first use.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return r.family(name, help, kindCounter, nil).child(labels).c
}

// Gauge returns the registered gauge for name and label pairs.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return r.family(name, help, kindGauge, nil).child(labels).g
}

// Histogram returns the registered histogram for name and label pairs.
// bounds picks the bucket layout on first registration of the family
// (DefBuckets when nil); later calls reuse the family layout.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	return r.family(name, help, kindHistogram, bounds).child(labels).h
}

// snapshotFamilies copies the family list under the registry lock so
// exposition does not hold it while formatting.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.families[name])
	}
	return out
}

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4), families in registration order,
// children in creation order. Values observed during the render may or may
// not be included — scrapes are point-in-time, not transactional.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshotFamilies() {
		f.mu.Lock()
		kids := make([]*child, 0, len(f.order))
		for _, key := range f.order {
			kids = append(kids, f.kids[key])
		}
		f.mu.Unlock()
		if len(kids) == 0 {
			continue
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " ")); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, c := range kids {
			if err := writeChild(w, f, c); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeChild renders one label set of one family.
func writeChild(w io.Writer, f *family, c *child) error {
	switch f.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, c.labels, c.c.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, c.labels, c.g.Value())
		return err
	case kindHistogram:
		h := c.h
		var cum int64
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				f.name, withLE(c.labels, formatBound(bound)), cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, withLE(c.labels, "+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", f.name, c.labels, h.Sum()); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, c.labels, h.Count())
		return err
	}
	return nil
}

// withLE splices the le label into a rendered label suffix.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// formatBound renders a bucket bound the way Prometheus clients do:
// shortest representation that round-trips.
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}
