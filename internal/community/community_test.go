package community

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/triangle"
)

// twoCliques builds two disjoint K5s plus a bridge edge between them.
func twoCliques() *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			edges = append(edges, graph.Edge{U: uint32(i), V: uint32(j)})
			edges = append(edges, graph.Edge{U: uint32(10 + i), V: uint32(10 + j)})
		}
	}
	edges = append(edges, graph.Edge{U: 4, V: 10}) // bridge
	return graph.FromEdges(edges)
}

func TestDetectSeparatesCliques(t *testing.T) {
	g := twoCliques()
	r := core.Decompose(g)
	if r.KMax != 5 {
		t.Fatalf("kmax = %d", r.KMax)
	}
	comms := Detect(r, 5)
	if len(comms) != 2 {
		t.Fatalf("communities at k=5: %d, want 2", len(comms))
	}
	for _, c := range comms {
		if len(c.Edges) != 10 || len(c.Vertices) != 5 {
			t.Fatalf("community size: %d edges %d vertices", len(c.Edges), len(c.Vertices))
		}
		cg := c.Graph(g)
		if cg.NumEdges() != 10 {
			t.Fatalf("materialized community edges = %d", cg.NumEdges())
		}
	}
	// The bridge edge belongs to no community at k>=3.
	id, _ := g.EdgeID(4, 10)
	for _, c := range comms {
		for _, e := range c.Edges {
			if e == id {
				t.Fatal("bridge edge in a community")
			}
		}
	}
}

func TestDetectOverlappingOnVertex(t *testing.T) {
	// Two K4s sharing one vertex but no edge: triangle connectivity keeps
	// them separate communities, overlapping on the shared vertex.
	var edges []graph.Edge
	a := []uint32{0, 1, 2, 3}
	b := []uint32{3, 4, 5, 6}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			edges = append(edges, graph.Edge{U: a[i], V: a[j]})
			edges = append(edges, graph.Edge{U: b[i], V: b[j]})
		}
	}
	g := graph.FromEdges(edges)
	r := core.Decompose(g)
	comms := Detect(r, 4)
	if len(comms) != 2 {
		t.Fatalf("communities = %d, want 2", len(comms))
	}
	shared := 0
	for _, c := range comms {
		for _, v := range c.Vertices {
			if v == 3 {
				shared++
			}
		}
	}
	if shared != 2 {
		t.Fatalf("vertex 3 should appear in both communities, got %d", shared)
	}
}

func TestDetectEdgeCases(t *testing.T) {
	empty := core.Decompose(graph.NewBuilder(0).Build())
	if got := Detect(empty, 3); got != nil {
		t.Fatal("empty graph should have no communities")
	}
	tri := core.Decompose(graph.FromEdges([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}}))
	if got := Detect(tri, 2); got != nil {
		t.Fatal("k=2 must be rejected")
	}
	if got := Detect(tri, 3); len(got) != 1 || len(got[0].Edges) != 3 {
		t.Fatalf("triangle at k=3: %+v", got)
	}
	if got := Detect(tri, 4); got != nil {
		t.Fatal("k above kmax should be empty")
	}
}

func TestDetectCoversAllTrussEdges(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 15 + r.Intn(30)
		var edges []graph.Edge
		for i := 0; i < 5*n; i++ {
			edges = append(edges, graph.Edge{U: uint32(r.Intn(n)), V: uint32(r.Intn(n))})
		}
		g := graph.FromEdges(edges)
		res := core.Decompose(g)
		for k := int32(3); k <= res.KMax; k++ {
			comms := Detect(res, k)
			seen := map[int32]bool{}
			total := 0
			for _, c := range comms {
				for _, e := range c.Edges {
					if seen[e] {
						t.Fatalf("edge %d in two communities", e)
					}
					seen[e] = true
					if res.Phi[e] < k {
						t.Fatalf("edge %d with phi=%d in k=%d community", e, res.Phi[e], k)
					}
					total++
				}
			}
			want := len(res.TrussEdges(k))
			if total != want {
				t.Fatalf("k=%d: communities cover %d edges, truss has %d", k, total, want)
			}
		}
	}
}

func TestDetectTriangleConnectivityInvariant(t *testing.T) {
	// Within a community, every edge shares a T_k triangle with another
	// member (for communities larger than a single triangle's worth).
	g := gen.Community(4, 10, 0.7, 0.5, 9)
	res := core.Decompose(g)
	k := res.KMax
	comms := Detect(res, k)
	if len(comms) == 0 {
		t.Skip("no communities at kmax")
	}
	inTruss := make([]bool, g.NumEdges())
	for id, p := range res.Phi {
		if p >= k {
			inTruss[id] = true
		}
	}
	commOf := map[int32]int{}
	for ci, c := range comms {
		for _, e := range c.Edges {
			commOf[e] = ci
		}
	}
	triangle.ForEach(g, func(e1, e2, e3 int32) {
		if inTruss[e1] && inTruss[e2] && inTruss[e3] {
			if commOf[e1] != commOf[e2] || commOf[e2] != commOf[e3] {
				t.Fatalf("T_k triangle spans communities: %d %d %d", e1, e2, e3)
			}
		}
	})
}
