// Package community derives community structure from a truss
// decomposition — the application the paper's introduction motivates
// (visualization, fingerprinting, and cluster analysis of networks).
//
// A k-truss community is a maximal set of T_k edges connected through
// shared triangles: two edges are adjacent when some triangle of T_k
// contains both. Triangle connectivity (rather than plain edge
// connectivity) keeps communities cohesive and lets them overlap on
// vertices, which follow-up work (Huang et al., SIGMOD 2014) developed
// into full community search; the detection core implemented here falls
// out of the decomposition directly.
package community

import (
	"sort"

	"repro/internal/core"
	"repro/internal/dsu"
	"repro/internal/graph"
	"repro/internal/triangle"
)

// Community is one triangle-connected component of the k-truss.
type Community struct {
	// Edges lists the member edges by parent-graph edge ID.
	Edges []int32
	// Vertices lists the vertices covered, ascending.
	Vertices []uint32
}

// Detect returns the k-truss communities of r.G: the triangle-connected
// components of T_k = {e : phi(e) >= k}, sorted by decreasing edge count.
// k must be >= 3 (T_2 imposes no triangle structure).
func Detect(r *core.Result, k int32) []Community {
	g := r.G
	m := g.NumEdges()
	if m == 0 || k < 3 {
		return nil
	}
	inTruss := make([]bool, m)
	any := false
	for id, p := range r.Phi {
		if p >= k {
			inTruss[id] = true
			any = true
		}
	}
	if !any {
		return nil
	}
	uf := dsu.New(m)
	triangle.ForEach(g, func(e1, e2, e3 int32) {
		if inTruss[e1] && inTruss[e2] && inTruss[e3] {
			uf.Union(e1, e2)
			uf.Union(e1, e3)
		}
	})

	// Group truss edges by root. Edges of T_k in no T_k triangle cannot
	// exist for k >= 3 (each needs k-2 >= 1 triangles), so every truss
	// edge lands in a triangle-connected group.
	groups := map[int32][]int32{}
	for id := int32(0); id < int32(m); id++ {
		if inTruss[id] {
			root := uf.Find(id)
			groups[root] = append(groups[root], id)
		}
	}
	out := make([]Community, 0, len(groups))
	for _, edges := range groups {
		vs := map[uint32]bool{}
		for _, id := range edges {
			e := g.Edge(id)
			vs[e.U] = true
			vs[e.V] = true
		}
		vertices := make([]uint32, 0, len(vs))
		for v := range vs {
			vertices = append(vertices, v)
		}
		sort.Slice(vertices, func(i, j int) bool { return vertices[i] < vertices[j] })
		sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })
		out = append(out, Community{Edges: edges, Vertices: vertices})
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Edges) != len(out[j].Edges) {
			return len(out[i].Edges) > len(out[j].Edges)
		}
		return out[i].Edges[0] < out[j].Edges[0]
	})
	return out
}

// Graph materializes a community as a standalone graph (vertex IDs
// preserved).
func (c Community) Graph(parent *graph.Graph) *graph.Graph {
	return graph.EdgeInducedSubgraph(parent, c.Edges)
}
