package dynamic

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

// TestParallelRegionDifferential drives the same randomized mutation
// sequences as the serial suite with the cutoff forced to 1, so every
// region re-peel runs on the bulk-synchronous machinery; checkExact
// holds each step to a fresh decomposition, across worker counts.
func TestParallelRegionDifferential(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		for seed := int64(40); seed <= 46; seed++ {
			runSequence(t, seed, 5, 5, Config{
				MaxRegionFraction:    2, // never fall back: exercise the peel itself
				ParallelRegionCutoff: 1,
				Workers:              workers,
			})
		}
	}
}

// TestParallelRegionMatchesSerial compares the two peels head to head on
// identical batches: same phi, same stats shape, and the parallel run
// actually took the parallel path.
func TestParallelRegionMatchesSerial(t *testing.T) {
	for seed := int64(60); seed <= 66; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(60, 400, seed)
		phi := core.Decompose(g).Phi
		batch := randomBatch(rng, g, 12, 12)

		serial, err := Update(context.Background(), g, phi, batch, Config{
			MaxRegionFraction:    2,
			ParallelRegionCutoff: -1, // force serial
		})
		if err != nil {
			t.Fatalf("seed %d serial: %v", seed, err)
		}
		par, err := Update(context.Background(), g, phi, batch, Config{
			MaxRegionFraction:    2,
			ParallelRegionCutoff: 1,
			Workers:              4,
		})
		if err != nil {
			t.Fatalf("seed %d parallel: %v", seed, err)
		}

		if serial.Stats.ParallelPeels != 0 {
			t.Fatalf("seed %d: serial run reported %d parallel peels", seed, serial.Stats.ParallelPeels)
		}
		if par.Stats.ParallelPeels == 0 && par.Stats.Region > 0 {
			t.Fatalf("seed %d: cutoff 1 run never took the parallel path (stats %+v)", seed, par.Stats)
		}
		if len(serial.Phi) != len(par.Phi) {
			t.Fatalf("seed %d: phi lengths differ: %d vs %d", seed, len(serial.Phi), len(par.Phi))
		}
		for id := range serial.Phi {
			if serial.Phi[id] != par.Phi[id] {
				t.Fatalf("seed %d: phi(%v) serial %d, parallel %d",
					seed, serial.G.Edge(int32(id)), serial.Phi[id], par.Phi[id])
			}
		}
		if serial.Stats.Region != par.Stats.Region || serial.Stats.Boundary != par.Stats.Boundary {
			t.Fatalf("seed %d: stats diverge: serial %+v vs parallel %+v", seed, serial.Stats, par.Stats)
		}
	}
}

// TestParallelRegionCutoffDispatch pins the dispatch rule: regions under
// the cutoff stay serial, at or above go parallel, negative disables.
func TestParallelRegionCutoffDispatch(t *testing.T) {
	g := gen.ErdosRenyi(40, 220, 7)
	phi := core.Decompose(g).Phi
	rng := rand.New(rand.NewSource(7))
	batch := randomBatch(rng, g, 6, 6)

	res, err := Update(context.Background(), g, phi, batch, Config{
		MaxRegionFraction: 2, ParallelRegionCutoff: 1 << 30, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ParallelPeels != 0 {
		t.Fatalf("huge cutoff still dispatched %d parallel peels", res.Stats.ParallelPeels)
	}

	res, err = Update(context.Background(), g, phi, batch, Config{
		MaxRegionFraction: 2, ParallelRegionCutoff: -1, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ParallelPeels != 0 {
		t.Fatalf("disabled cutoff still dispatched %d parallel peels", res.Stats.ParallelPeels)
	}

	// Workers <= 1 must stay serial no matter the cutoff.
	res, err = Update(context.Background(), g, phi, batch, Config{
		MaxRegionFraction: 2, ParallelRegionCutoff: 1, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ParallelPeels != 0 {
		t.Fatalf("single-worker run dispatched %d parallel peels", res.Stats.ParallelPeels)
	}
}

// TestParallelRegionCancellation: the parallel peel polls ctx between
// stages like the serial one.
func TestParallelRegionCancellation(t *testing.T) {
	g := gen.ErdosRenyi(60, 400, 9)
	phi := core.Decompose(g).Phi
	rng := rand.New(rand.NewSource(9))
	batch := randomBatch(rng, g, 10, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Update(ctx, g, phi, batch, Config{
		MaxRegionFraction: 2, ParallelRegionCutoff: 1, Workers: 4,
	}); err == nil {
		t.Fatal("cancelled parallel update returned nil error")
	}
}
