package dynamic

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// checkExact verifies that res carries exactly the decomposition a fresh
// peel of res.G produces, and that Changed is precisely the delta.
func checkExact(t *testing.T, res *Result, carried []int32) {
	t.Helper()
	want := core.Decompose(res.G)
	if res.KMax != want.KMax {
		t.Fatalf("kmax = %d, want %d (stats %+v)", res.KMax, want.KMax, res.Stats)
	}
	for id, p := range want.Phi {
		if res.Phi[id] != p {
			e := res.G.Edge(int32(id))
			t.Fatalf("phi(%v) = %d, want %d (stats %+v)", e, res.Phi[id], p, res.Stats)
		}
	}
	changed := map[int32]bool{}
	for _, id := range res.Changed {
		changed[id] = true
	}
	for newID, oldID := range res.Remap.NewToOld {
		isNew := oldID < 0
		differs := carried != nil && !isNew && res.Phi[newID] != carried[oldID]
		if (isNew || differs) != changed[int32(newID)] {
			t.Fatalf("edge %d: inserted=%v differs=%v but changed=%v",
				newID, isNew, differs, changed[int32(newID)])
		}
	}
}

// randomBatch draws a mutation batch from g's current edge set.
func randomBatch(rng *rand.Rand, g *graph.Graph, nAdds, nDels int) Batch {
	var b Batch
	n := g.NumVertices() + 2
	for i := 0; i < nAdds; i++ {
		b.Adds = append(b.Adds, graph.Edge{U: uint32(rng.Intn(n)), V: uint32(rng.Intn(n))})
	}
	edges := g.Edges()
	for i := 0; i < nDels && len(edges) > 0; i++ {
		b.Dels = append(b.Dels, edges[rng.Intn(len(edges))])
	}
	return b
}

func runSequence(t *testing.T, seed int64, nAdds, nDels int, cfg Config) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := gen.ErdosRenyi(40, 220, seed)
	phi := core.Decompose(g).Phi
	for step := 0; step < 12; step++ {
		batch := randomBatch(rng, g, nAdds, nDels)
		res, err := Update(context.Background(), g, phi, batch, cfg)
		if err != nil {
			t.Fatalf("seed %d step %d: %v", seed, step, err)
		}
		checkExact(t, res, phi)
		g, phi = res.G, res.Phi
	}
}

func TestUpdateMixed(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		runSequence(t, seed, 4, 4, Config{})
	}
}

func TestUpdateAddOnly(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		runSequence(t, seed, 5, 0, Config{})
	}
}

func TestUpdateDeleteOnly(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		runSequence(t, seed, 0, 5, Config{})
	}
}

// TestUpdateNeverFallback forces the local path (region may grow to the
// whole graph but must still be exact).
func TestUpdateNeverFallback(t *testing.T) {
	for seed := int64(20); seed <= 26; seed++ {
		runSequence(t, seed, 5, 5, Config{MaxRegionFraction: 2})
	}
}

// TestUpdateAlwaysFallback forces the recompute path and checks the delta
// reporting stays correct.
func TestUpdateAlwaysFallback(t *testing.T) {
	g := gen.ErdosRenyi(40, 200, 3)
	phi := core.Decompose(g).Phi
	res, err := Update(context.Background(), g, phi,
		Batch{Adds: []graph.Edge{{U: 0, V: 1}, {U: 41, V: 42}}, Dels: g.Edges()[:3]},
		Config{MaxRegionFraction: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.FellBack {
		t.Fatal("expected fallback")
	}
	checkExact(t, res, phi)
}

// TestUpdateDenseClique exercises promotions across many levels: growing
// a clique edge by edge keeps raising truss numbers.
func TestUpdateDenseClique(t *testing.T) {
	g := gen.PaperExample()
	phi := core.Decompose(g).Phi
	const k = 9
	for u := uint32(0); u < k; u++ {
		for v := u + 1; v < k; v++ {
			res, err := Update(context.Background(), g, phi,
				Batch{Adds: []graph.Edge{{U: u, V: v}}}, Config{MaxRegionFraction: 2})
			if err != nil {
				t.Fatal(err)
			}
			checkExact(t, res, phi)
			g, phi = res.G, res.Phi
		}
	}
	if kmax := maxPhi(phi); kmax < k {
		t.Fatalf("kmax = %d after building K%d, want >= %d", kmax, k, k)
	}
}

// TestUpdateTearDown deletes a planted clique one edge at a time,
// exercising multi-level demotions.
func TestUpdateTearDown(t *testing.T) {
	base := gen.ErdosRenyi(30, 100, 5)
	g := gen.WithPlantedCliques(base, []int{8}, 11)
	phi := core.Decompose(g).Phi
	rng := rand.New(rand.NewSource(13))
	for step := 0; step < 15 && g.NumEdges() > 0; step++ {
		edges := g.Edges()
		res, err := Update(context.Background(), g, phi,
			Batch{Dels: []graph.Edge{edges[rng.Intn(len(edges))]}}, Config{MaxRegionFraction: 2})
		if err != nil {
			t.Fatal(err)
		}
		checkExact(t, res, phi)
		g, phi = res.G, res.Phi
	}
}

func TestUpdateEmptyBatch(t *testing.T) {
	g := gen.PaperExample()
	phi := core.Decompose(g).Phi
	res, err := Update(context.Background(), g, phi, Batch{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Changed) != 0 || res.Stats.Region != 0 {
		t.Fatalf("no-op batch changed %d edges, region %d", len(res.Changed), res.Stats.Region)
	}
	checkExact(t, res, phi)
	// A batch that only touches absent edges collapses to a no-op too.
	res, err = Update(context.Background(), g, phi,
		Batch{Dels: []graph.Edge{{U: 90, V: 91}}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Changed) != 0 {
		t.Fatalf("absent-edge delete changed %d edges", len(res.Changed))
	}
}

func TestUpdatePhiMismatch(t *testing.T) {
	g := gen.PaperExample()
	if _, err := Update(context.Background(), g, make([]int32, 3), Batch{}, Config{}); err == nil {
		t.Fatal("want error for wrong phi length")
	}
}

func TestUpdateCancelled(t *testing.T) {
	g := gen.ErdosRenyi(40, 200, 9)
	phi := core.Decompose(g).Phi
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Update(ctx, g, phi, Batch{Adds: []graph.Edge{{U: 0, V: 1}}}, Config{}); err == nil {
		t.Fatal("want context error")
	}
}

// TestUpdateFromEmpty grows a graph from nothing, one batch at a time.
func TestUpdateFromEmpty(t *testing.T) {
	var g *graph.Graph = new(graph.Graph)
	var phi []int32
	rng := rand.New(rand.NewSource(21))
	for step := 0; step < 10; step++ {
		batch := Batch{}
		for i := 0; i < 6; i++ {
			batch.Adds = append(batch.Adds, graph.Edge{U: uint32(rng.Intn(15)), V: uint32(rng.Intn(15))})
		}
		res, err := Update(context.Background(), g, phi, batch, Config{})
		if err != nil {
			t.Fatal(err)
		}
		checkExact(t, res, phi)
		g, phi = res.G, res.Phi
	}
}
