package dynamic

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/triangle"
)

// Region-peel states, the PKT lifecycle transplanted onto region edges.
// Frozen (non-region) edges never carry a state: their presence at stage
// k is decided by base[f] >= k alone.
const (
	rpAlive int32 = iota
	rpScheduled
	rpFrontier
	rpDead
)

const (
	// rpSerialCutoff keeps tiny frontiers and retire sets on one
	// goroutine — below this, fan-out costs more than it saves.
	rpSerialCutoff = 256
	// DefaultParallelRegionCutoff is the region size above which Update
	// dispatches the re-peel onto the bulk-synchronous peeler. Small
	// regions (the single-edge mutation case) stay serial: the cascade is
	// a few dozen edges and the barrier overhead would dominate.
	DefaultParallelRegionCutoff = 4096
)

// peelRegionParallel is peelRegion on the PKT bulk-synchronous machinery
// from internal/core: per stage k it retires boundary edges in parallel,
// collects the frontier (alive region edges under threshold) with a
// chunked scan, and peels it in sub-rounds of dynamically balanced
// chunks with atomic support decrements under the PKT charging
// discipline — a triangle dies in the sub-round its first frontier edge
// dies; one frontier edge decrements both surviving partners, two
// co-frontier edges let the smaller ID charge the lone survivor, three
// charge nothing. Each dying triangle therefore decrements each survivor
// exactly once, which is the invariant that makes the stage-k death set
// — and hence phiNew — identical to the serial peel's (the differential
// tests in this package pin that equivalence edge-for-edge).
//
// Stages advance one k at a time, exactly like the serial peel: boundary
// retirements happen at every level, so there is no empty-level jump.
func peelRegionParallel(ctx context.Context, g2 *graph.Graph, base []int32, inR []bool, region []int32, phiNew []int32, workers int) ([]int32, error) {
	m2 := g2.NumEdges()
	cnt := make([]int32, m2)   // live triangle count, region edges only
	state := make([]int32, m2) // rp* lifecycle, region edges only
	seenB := make([]int32, m2) // boundary membership (CAS-claimed)

	// parallelFor fans f(w, lo, hi) over [0, n) in contiguous chunks, one
	// per worker; n below the cutoff stays on the calling goroutine.
	parallelFor := func(n int, f func(w, lo, hi int)) {
		if n < rpSerialCutoff || workers <= 1 {
			f(0, 0, n)
			return
		}
		var wg sync.WaitGroup
		chunk := (n + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := min(lo+chunk, n)
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				f(w, lo, hi)
			}(w, lo, hi)
		}
		wg.Wait()
	}

	// Initial counts at level 3 (every triangle present) plus boundary
	// collection; workers claim boundary edges via CAS so each appears in
	// exactly one per-worker buffer.
	boundBuf := make([][]int32, workers)
	parallelFor(len(region), func(w, lo, hi int) {
		buf := boundBuf[w]
		for _, e := range region[lo:hi] {
			ed := g2.Edge(e)
			c := int32(0)
			triangle.ForEachOf(g2, ed.U, ed.V, func(a, b int32) {
				c++
				if !inR[a] && atomic.CompareAndSwapInt32(&seenB[a], 0, 1) {
					buf = append(buf, a)
				}
				if !inR[b] && atomic.CompareAndSwapInt32(&seenB[b], 0, 1) {
					buf = append(buf, b)
				}
			})
			cnt[e] = c
		}
		boundBuf[w] = buf
	})
	var boundary []int32
	for _, buf := range boundBuf {
		boundary = append(boundary, buf...)
	}

	// Bucket boundary edges by retirement stage, as in the serial peel.
	retire := map[int32][]int32{}
	for _, f := range boundary {
		retire[base[f]] = append(retire[base[f]], f)
	}

	// decRetire mirrors the serial decRetire under concurrency: state is
	// quiescent during the retire phase (only alive/dead survive a stage
	// barrier), so the presence checks read consistent values and only
	// the count decrement needs an atomic.
	decRetire := func(f, x, y, k int32) {
		if !inR[x] || atomic.LoadInt32(&state[x]) == rpDead {
			return
		}
		if inR[y] {
			if atomic.LoadInt32(&state[y]) == rpDead {
				return // triangle already gone
			}
		} else {
			if base[y] < k-1 {
				return // triangle already gone
			}
			if base[y] == k-1 && f > y {
				return // y retires in the same stage; the smaller ID charges
			}
		}
		atomic.AddInt32(&cnt[x], -1)
	}

	// processEdge peels one frontier edge at stage k (assigning phi k-1),
	// spilling region partners that cross the threshold into buf.
	processEdge := func(e, k int32, buf *[]int32) {
		phiNew[e] = k - 1
		ed := g2.Edge(e)
		present := func(x int32) bool {
			if inR[x] {
				return atomic.LoadInt32(&state[x]) != rpDead
			}
			return base[x] >= k
		}
		inFrontier := func(x int32) bool {
			return inR[x] && atomic.LoadInt32(&state[x]) == rpFrontier
		}
		dec := func(x int32) {
			if !inR[x] {
				return
			}
			if atomic.AddInt32(&cnt[x], -1) < k-2 && atomic.CompareAndSwapInt32(&state[x], rpAlive, rpScheduled) {
				*buf = append(*buf, x)
			}
		}
		triangle.ForEachOf(g2, ed.U, ed.V, func(a, b int32) {
			if !present(a) || !present(b) {
				return
			}
			aF, bF := inFrontier(a), inFrontier(b)
			switch {
			case !aF && !bF:
				dec(a)
				dec(b)
			case aF && !bF:
				if e < a {
					dec(b)
				}
			case bF && !aF:
				if e < b {
					dec(a)
				}
				// default: all three dying; no survivor to charge.
			}
		})
	}

	spill := make([][]int32, workers)
	scanBuf := make([][]int32, workers)
	alive := len(region)
	var cur, next []int32
	for k := int32(3); alive > 0; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Retire boundary edges frozen at k-1.
		if rs := retire[k-1]; len(rs) > 0 {
			parallelFor(len(rs), func(_, lo, hi int) {
				for _, f := range rs[lo:hi] {
					fd := g2.Edge(f)
					triangle.ForEachOf(g2, fd.U, fd.V, func(a, b int32) {
						decRetire(f, a, b, k)
						decRetire(f, b, a, k)
					})
				}
			})
		}
		// Collect the stage frontier with a chunked scan over the region.
		cur = cur[:0]
		parallelFor(len(region), func(w, lo, hi int) {
			buf := scanBuf[w][:0]
			for _, e := range region[lo:hi] {
				if state[e] == rpAlive && cnt[e] < k-2 {
					state[e] = rpFrontier
					buf = append(buf, e)
				}
			}
			scanBuf[w] = buf
		})
		for w := range scanBuf {
			cur = append(cur, scanBuf[w]...)
			scanBuf[w] = scanBuf[w][:0]
		}
		// Sub-rounds: peel, barrier, promote spills, repeat until dry.
		for len(cur) > 0 {
			if len(cur) < rpSerialCutoff || workers <= 1 {
				buf := spill[0][:0]
				for _, e := range cur {
					processEdge(e, k, &buf)
				}
				spill[0] = buf
				for w := 1; w < workers; w++ {
					spill[w] = spill[w][:0]
				}
			} else {
				var idx atomic.Int64
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						buf := spill[w][:0]
						const chunk = 64
						for {
							lo := int(idx.Add(chunk)) - chunk
							if lo >= len(cur) {
								break
							}
							hi := min(lo+chunk, len(cur))
							for _, e := range cur[lo:hi] {
								processEdge(e, k, &buf)
							}
						}
						spill[w] = buf
					}(w)
				}
				wg.Wait()
			}
			alive -= len(cur)
			for _, e := range cur {
				state[e] = rpDead
			}
			next = next[:0]
			for w := 0; w < workers; w++ {
				next = append(next, spill[w]...)
			}
			for _, e := range next {
				state[e] = rpFrontier
			}
			cur, next = next, cur
		}
	}
	return boundary, nil
}
