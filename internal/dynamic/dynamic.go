// Package dynamic maintains a truss decomposition under edge insertions
// and deletions without re-peeling the whole graph.
//
// The paper decomposes static snapshots; this package adds the online
// counterpart that the serving layer needs. It exploits the locality of
// truss numbers observed by Jakkula & Karypis (Streaming and Batch
// Algorithms for Truss Decomposition) and Huang et al.: a mutation can
// only change phi along triangle-connected chains rooted at the modified
// edges, and whether a chain propagates through an edge is decided by
// counts at exactly two levels of that edge's truss number. Update turns
// that into an exact algorithm:
//
//  1. Rebuild the CSR graph with graph.ApplyBatch (O(m) merge, no
//     re-sort) and carry old truss numbers across the edge-ID remap.
//  2. Seed the affected region with the inserted edges, their triangle
//     partners, and the surviving triangle partners of deleted edges,
//     then close it under promotion reachability: an edge f with truss
//     number p can rise only through a triangle whose other two edges
//     both reach p+1, and since a batch of b insertions raises any truss
//     number by at most b, "can reach p+1" is decidable from the old
//     numbers (region members bound by phi+b, inserted edges unbounded,
//     frozen edges by phi). Every edge whose number rises is in the
//     closure — a riser needs a support triangle carrying a risen or
//     inserted edge, else its old number was already higher.
//  3. Re-peel only the region, seeded from the surviving truss numbers:
//     edges outside the region are frozen at their old phi and
//     participate in triangle counts only while the peeling level is at
//     or below that phi (the k-level locality rule).
//  4. Certify the frozen boundary against demotions: edge f with phi p is
//     safe iff it still has >= p-2 triangles whose other two edges sit at
//     phi >= p. Violated edges join the region and the peel repeats; the
//     loop converges because the region only grows. On termination every
//     set {phi >= k} is self-certifying (each member keeps >= k-2
//     triangles inside it), i.e. a k-truss, so no edge is over-assigned;
//     the promotion closure already guarantees none is under-assigned.
//  5. If the region exceeds a configurable fraction of m, fall back to
//     the full parallel decomposition (the PKT-style peeler): locality
//     has lost, recomputing is cheaper than chasing the fixpoint.
//
// Either path yields exactly the decomposition a fresh run would produce;
// the differential tests in this package and at the repository root hold
// Update to that bar after every batch.
package dynamic

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/triangle"
)

// Batch is one set of mutations applied atomically: deletions first, then
// insertions (an edge in both lists ends up present). Duplicates,
// self-loops, deletions of absent edges and insertions of present edges
// are all tolerated and ignored.
type Batch struct {
	Adds []graph.Edge
	Dels []graph.Edge
}

// Empty reports whether the batch carries no mutations at all.
func (b Batch) Empty() bool { return len(b.Adds) == 0 && len(b.Dels) == 0 }

// Config tunes Update. The zero value picks sensible defaults.
type Config struct {
	// MaxRegionFraction bounds the affected region: when the region grows
	// past this fraction of the new graph's edges, Update abandons
	// locality and recomputes from scratch (0 selects 0.25; values >= 1
	// never fall back).
	MaxRegionFraction float64
	// Workers is handed to the parallel peeler on the fallback path and
	// to the parallel region re-peel (0 = GOMAXPROCS).
	Workers int
	// ParallelRegionCutoff is the region size (in edges) at or above
	// which the affected-region re-peel runs on the PKT bulk-synchronous
	// machinery instead of the serial cascade. 0 selects
	// DefaultParallelRegionCutoff; negative disables parallel re-peel.
	ParallelRegionCutoff int
}

func (c Config) maxRegionFraction() float64 {
	if c.MaxRegionFraction <= 0 {
		return 0.25
	}
	return c.MaxRegionFraction
}

func (c Config) parallelRegionCutoff() int {
	if c.ParallelRegionCutoff == 0 {
		return DefaultParallelRegionCutoff
	}
	if c.ParallelRegionCutoff < 0 {
		return 0 // disabled
	}
	return c.ParallelRegionCutoff
}

func (c Config) workers() int {
	if c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

// Stats describes how an Update was carried out.
type Stats struct {
	// Region is the number of edges re-peeled (0 on the fallback path).
	Region int
	// Boundary is the number of frozen edges checked around the region.
	Boundary int
	// Expansions counts boundary-certification failures that grew the
	// region (0 means the first region was already closed).
	Expansions int
	// Changed is the number of edges whose truss number differs from the
	// value carried over, plus all inserted edges.
	Changed int
	// FellBack reports that the region limit was hit and the decomposition
	// was recomputed in full.
	FellBack bool
	// ParallelPeels counts region re-peels dispatched onto the parallel
	// bulk-synchronous peeler (region size reached ParallelRegionCutoff).
	ParallelPeels int
}

// Result is the maintained decomposition after one batch.
type Result struct {
	// G is the post-batch graph.
	G *graph.Graph
	// Phi[id] is the truss number of new-graph edge id — exactly what a
	// fresh decomposition of G would produce.
	Phi []int32
	// KMax is the maximum truss number over all edges.
	KMax int32
	// Remap translates edge IDs between the old and new graphs.
	Remap *graph.Remap
	// Changed lists new-graph edge IDs whose truss number is not carried
	// over unchanged from the old graph: every edge whose phi differs,
	// plus every inserted edge. Deleted edges are implicit in Remap.
	Changed []int32
	// Stats describes the work done.
	Stats Stats
}

// Update applies batch to the decomposition (g, phi) and returns the
// exact decomposition of the mutated graph. phi must be the truss numbers
// of g's edges (as produced by any of the engines); it is read, never
// modified. The context is polled between peeling stages and during the
// fallback recompute.
func Update(ctx context.Context, g *graph.Graph, phi []int32, batch Batch, cfg Config) (*Result, error) {
	if len(phi) != g.NumEdges() {
		return nil, fmt.Errorf("dynamic: phi has %d entries for a graph with %d edges", len(phi), g.NumEdges())
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g2, re := g.ApplyBatch(batch.Adds, batch.Dels)
	m2 := g2.NumEdges()

	// Carry surviving truss numbers across the remap; inserted edges start
	// at the universal lower bound 2 (they are re-peeled regardless).
	base := make([]int32, m2)
	for newID, oldID := range re.NewToOld {
		if oldID >= 0 {
			base[newID] = phi[oldID]
		} else {
			base[newID] = 2
		}
	}
	res := &Result{G: g2, Remap: re}
	if len(re.Added) == 0 && len(re.Deleted) == 0 {
		// The batch collapsed to a no-op: the old decomposition carries
		// over verbatim.
		res.Phi = base
		res.KMax = maxPhi(base)
		return res, nil
	}

	limit := int(cfg.maxRegionFraction() * float64(m2))

	// Seed the affected region: inserted edges, their triangle partners
	// (new triangles raise support), and the surviving partners of
	// deleted edges' triangles (destroyed triangles lower support).
	inR := make([]bool, m2)
	var region []int32
	grow := func(id int32) {
		if !inR[id] {
			inR[id] = true
			region = append(region, id)
		}
	}
	for _, id := range re.Added {
		grow(id)
		e := g2.Edge(id)
		triangle.ForEachOf(g2, e.U, e.V, func(a, b int32) {
			grow(a)
			grow(b)
		})
	}
	for _, oldID := range re.Deleted {
		e := g.Edge(oldID)
		triangle.ForEachOf(g, e.U, e.V, func(a, b int32) {
			if na := re.OldToNew[a]; na >= 0 {
				grow(na)
			}
			if nb := re.OldToNew[b]; nb >= 0 {
				grow(nb)
			}
		})
	}

	// Close the region under promotion reachability. ub(x) bounds the
	// truss number x can reach: a batch of nAdds insertions raises any
	// surviving edge's phi by at most nAdds (each single insertion raises
	// it by at most one, and deletions never raise it), while inserted
	// edges are unconstrained. Edge f can be promoted only if some
	// triangle gives it support at level base[f]+1 — both partners
	// reaching base[f]+1 — and at least one support triangle must carry a
	// risen or inserted partner (otherwise f's old number was already
	// base[f]+1, by the maximality of the old decomposition). Risers form
	// chains rooted at the inserted edges, so scanning every region
	// edge's triangles, admitting any third edge whose partners' bounds
	// clear its base[f]+1, and rescanning from each admitted edge reaches
	// them all.
	nAdds := int64(len(re.Added))
	ub := func(x int32) int64 {
		if re.NewToOld[x] < 0 {
			return int64(^uint32(0)) // inserted: no useful bound
		}
		return int64(base[x]) + nAdds
	}
	if nAdds > 0 {
		for qi := 0; qi < len(region); qi++ { // region grows while we scan it
			x := region[qi]
			xe := g2.Edge(x)
			triangle.ForEachOf(g2, xe.U, xe.V, func(f, z int32) {
				if !inR[f] && ub(x) > int64(base[f]) && ub(z) > int64(base[f]) {
					grow(f)
				}
				if !inR[z] && ub(x) > int64(base[z]) && ub(f) > int64(base[z]) {
					grow(z)
				}
			})
			if len(region) > limit {
				return fallback(ctx, g2, re, base, cfg, res)
			}
		}
	}

	phiNew := make([]int32, m2)
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if len(region) > limit {
			return fallback(ctx, g2, re, base, cfg, res)
		}
		var boundary []int32
		var err error
		if cut := cfg.parallelRegionCutoff(); cut > 0 && len(region) >= cut && cfg.workers() > 1 {
			boundary, err = peelRegionParallel(ctx, g2, base, inR, region, phiNew, cfg.workers())
			res.Stats.ParallelPeels++
		} else {
			boundary, err = peelRegion(ctx, g2, base, inR, region, phiNew)
		}
		if err != nil {
			return nil, err
		}
		res.Stats.Boundary = len(boundary)
		violated := checkBoundary(g2, base, inR, boundary, phiNew)
		if len(violated) == 0 {
			break
		}
		for _, f := range violated {
			grow(f)
		}
		res.Stats.Expansions++
	}

	res.Phi = base
	for _, e := range region {
		if phiNew[e] != base[e] || re.NewToOld[e] < 0 {
			res.Changed = append(res.Changed, e)
		}
		base[e] = phiNew[e]
	}
	res.KMax = maxPhi(res.Phi)
	res.Stats.Region = len(region)
	res.Stats.Changed = len(res.Changed)
	return res, nil
}

// fallback recomputes the decomposition of g2 from scratch with the
// parallel peeler and reports the delta against the carried-over values.
func fallback(ctx context.Context, g2 *graph.Graph, re *graph.Remap, base []int32, cfg Config, res *Result) (*Result, error) {
	full, err := core.DecomposeParallelCtx(ctx, g2, cfg.Workers, core.Hooks{})
	if err != nil {
		return nil, err
	}
	res.Phi = full.Phi
	res.KMax = full.KMax
	for id := range res.Phi {
		if res.Phi[id] != base[id] || re.NewToOld[id] < 0 {
			res.Changed = append(res.Changed, int32(id))
		}
	}
	res.Stats.FellBack = true
	res.Stats.Changed = len(res.Changed)
	return res, nil
}

// maxPhi returns the maximum entry of phi (0 for an empty slice).
func maxPhi(phi []int32) int32 {
	var k int32
	for _, p := range phi {
		if p > k {
			k = p
		}
	}
	return k
}

// peelRegion re-peels the region edges against a frozen boundary and
// writes their exact truss numbers into phiNew (valid at region indexes
// only). A frozen edge f participates in level-k triangle counts while
// base[f] >= k — i.e. exactly while f belongs to T_k under the assumption
// that its truss number did not change; checkBoundary certifies that
// assumption afterwards. Returns the frozen edges that share a triangle
// with the region (the certification set).
func peelRegion(ctx context.Context, g2 *graph.Graph, base []int32, inR []bool, region []int32, phiNew []int32) ([]int32, error) {
	m2 := g2.NumEdges()
	cnt := make([]int32, m2)  // live triangle count, region edges only
	dead := make([]bool, m2)  // region edges removed by the peel
	seenB := make([]bool, m2) // boundary membership
	var boundary []int32

	// Initial counts at level 3: every g2 triangle is present (T_2 is the
	// whole graph). Boundary edges are collected along the way.
	for _, e := range region {
		ed := g2.Edge(e)
		c := int32(0)
		triangle.ForEachOf(g2, ed.U, ed.V, func(a, b int32) {
			c++
			if !inR[a] && !seenB[a] {
				seenB[a] = true
				boundary = append(boundary, a)
			}
			if !inR[b] && !seenB[b] {
				seenB[b] = true
				boundary = append(boundary, b)
			}
		})
		cnt[e] = c
	}

	// Bucket boundary edges by the level at which they leave the truss
	// hierarchy: f is present for T_k peeling while base[f] >= k, so it
	// retires at stage base[f]+1.
	retire := map[int32][]int32{}
	for _, f := range boundary {
		retire[base[f]] = append(retire[base[f]], f)
	}

	// present reports whether edge x is in the (approximate) T_k under
	// construction at stage k.
	present := func(x, k int32) bool {
		if inR[x] {
			return !dead[x]
		}
		return base[x] >= k
	}

	alive := len(region)
	var queue []int32
	for k := int32(3); alive > 0; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Retire boundary edges whose frozen phi is k-1: they were in
		// T_{k-1} but are not in T_k. Each triangle they carried decrements
		// its surviving region partners exactly once — when two boundary
		// edges of one triangle retire together, the smaller ID is charged.
		for _, f := range retire[k-1] {
			fd := g2.Edge(f)
			triangle.ForEachOf(g2, fd.U, fd.V, func(a, b int32) {
				decRetire(f, a, b, k, base, inR, dead, cnt)
				decRetire(f, b, a, k, base, inR, dead, cnt)
			})
		}
		// Cascade: remove region edges whose support fell below k-2, which
		// assigns phi = k-1 (they are in T_{k-1}, not in T_k).
		queue = queue[:0]
		for _, e := range region {
			if !dead[e] && cnt[e] < k-2 {
				queue = append(queue, e)
			}
		}
		for len(queue) > 0 {
			e := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			if dead[e] || cnt[e] >= k-2 {
				continue
			}
			dead[e] = true
			phiNew[e] = k - 1
			alive--
			ed := g2.Edge(e)
			triangle.ForEachOf(g2, ed.U, ed.V, func(a, b int32) {
				if !present(a, k) || !present(b, k) {
					return
				}
				if inR[a] {
					if cnt[a]--; cnt[a] < k-2 {
						queue = append(queue, a)
					}
				}
				if inR[b] {
					if cnt[b]--; cnt[b] < k-2 {
						queue = append(queue, b)
					}
				}
			})
		}
	}
	return boundary, nil
}

// decRetire handles one region partner x of a triangle (f, x, y) whose
// boundary edge f retires at stage k: x's count drops iff the triangle
// was still standing and f is the partner charged with its demise.
func decRetire(f, x, y, k int32, base []int32, inR []bool, dead []bool, cnt []int32) {
	if !inR[x] || dead[x] {
		return
	}
	if inR[y] {
		if dead[y] {
			return // triangle already gone
		}
	} else {
		if base[y] < k-1 {
			return // triangle already gone
		}
		if base[y] == k-1 && f > y {
			return // y retires in the same stage; the smaller ID charges
		}
	}
	cnt[x]--
}

// checkBoundary certifies the frozen edges against the candidate
// assignment (phiNew inside the region, base outside). By the two-level
// fixpoint characterization of truss numbers, phi(f) = p is undisturbed
// iff f keeps at least p-2 triangles whose other edges both sit at
// phi >= p, and fewer than p-1 triangles at phi >= p+1 (the old
// assignment satisfied both by exactness, so only changed counts can
// violate them). Violated edges must join the region.
func checkBoundary(g2 *graph.Graph, base []int32, inR []bool, boundary []int32, phiNew []int32) []int32 {
	phiOf := func(x int32) int32 {
		if inR[x] {
			return phiNew[x]
		}
		return base[x]
	}
	var violated []int32
	for _, f := range boundary {
		p := base[f]
		var atP, aboveP int32
		fd := g2.Edge(f)
		triangle.ForEachOf(g2, fd.U, fd.V, func(a, b int32) {
			mn := phiOf(a)
			if pb := phiOf(b); pb < mn {
				mn = pb
			}
			if mn >= p {
				atP++
			}
			if mn >= p+1 {
				aboveP++
			}
		})
		if atP < p-2 || aboveP >= p-1 {
			violated = append(violated, f)
		}
	}
	return violated
}
