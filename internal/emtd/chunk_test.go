package emtd

import (
	"testing"

	"repro/internal/gio"
	"repro/internal/graph"
)

// TestClassifyEdgesChunked forces the multi-chunk rewrite path: more edges
// to classify than the budget admits per chunk.
func TestClassifyEdgesChunked(t *testing.T) {
	dir := t.TempDir()
	gnew, err := gio.NewSpool[gio.EdgeRec5](dir, "gnew", gio.EdgeRec5Codec{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var recs []gio.EdgeRec5
	for i := 0; i < 400; i++ {
		recs = append(recs, gio.EdgeRec5{U: uint32(i), V: uint32(i + 1000), Sup: 1, Psi: 5})
	}
	if err := gnew.WriteAll(recs); err != nil {
		t.Fatal(err)
	}
	var toClassify []graph.Edge
	for i := 0; i < 400; i += 2 {
		toClassify = append(toClassify, graph.Edge{U: uint32(i), V: uint32(i + 1000)})
	}
	cfg := Config{Budget: 64, TempDir: dir}.withDefaults() // 200 keys, 64-cap chunks
	if err := classifyEdges(gnew, toClassify, 7, cfg); err != nil {
		t.Fatal(err)
	}
	classified, unclassified := 0, 0
	if err := gnew.ForEach(func(r gio.EdgeRec5) error {
		if r.U%2 == 0 {
			if r.Phi != 7 {
				t.Fatalf("edge (%d,%d) phi=%d, want 7", r.U, r.V, r.Phi)
			}
			classified++
		} else {
			if r.Phi != 0 {
				t.Fatalf("edge (%d,%d) unexpectedly classified", r.U, r.V)
			}
			unclassified++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if classified != 200 || unclassified != 200 {
		t.Fatalf("classified=%d unclassified=%d", classified, unclassified)
	}
}

// TestPruneClassified checks both prune outcomes: a classified edge whose
// endpoints touch no unclassified edge is dropped; one sharing a vertex
// with an unclassified edge stays.
func TestPruneClassified(t *testing.T) {
	dir := t.TempDir()
	gnew, err := gio.NewSpool[gio.EdgeRec5](dir, "gnew", gio.EdgeRec5Codec{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	recs := []gio.EdgeRec5{
		{U: 0, V: 1, Phi: 5}, // classified, isolated from unclassified -> prune
		{U: 2, V: 3, Phi: 5}, // classified, shares vertex 3 with unclassified -> keep
		{U: 3, V: 4, Phi: 0}, // unclassified -> keep
	}
	if err := gnew.WriteAll(recs); err != nil {
		t.Fatal(err)
	}
	var trace Trace
	cfg := Config{TempDir: dir}.withDefaults()
	if err := pruneClassified(gnew, 10, cfg, &trace); err != nil {
		t.Fatal(err)
	}
	if trace.Pruned != 1 {
		t.Fatalf("pruned = %d, want 1", trace.Pruned)
	}
	left, err := gnew.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 2 {
		t.Fatalf("left %d records", len(left))
	}
	for _, r := range left {
		if r.U == 0 {
			t.Fatal("isolated classified edge survived pruning")
		}
	}
}
