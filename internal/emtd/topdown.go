package emtd

import (
	"context"
	"errors"
	"io"

	"repro/internal/core"
	"repro/internal/embu"
	"repro/internal/extsort"
	"repro/internal/gio"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/triangle"
)

// Decompose runs the top-down external-memory truss decomposition
// (Algorithm 7) over a disk-resident edge stream: preparation via
// Algorithm 3 (exact supports, 2-class removed), UpperBounding, then per-k
// candidate rounds from kmax downward until the top-t classes are known
// (or every edge is classified when cfg.TopT == 0). The context is checked
// between preparation iterations, candidate rounds, and Procedure 10
// passes; on cancellation the returned error is ctx.Err() and all result
// spools are removed.
func Decompose(ctx context.Context, input *gio.Spool[gio.EdgeRec], n int, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if n <= 0 {
		maxV := int64(-1)
		err := input.ForEach(func(r gio.EdgeRec) error {
			if int64(r.U) > maxV {
				maxV = int64(r.U)
			}
			if int64(r.V) > maxV {
				maxV = int64(r.V)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		n = int(maxV) + 1
	}

	classes, err := gio.NewSpool[gio.EdgeAux](cfg.TempDir, "tdclasses", gio.EdgeAuxCodec{}, cfg.Stats)
	if err != nil {
		return nil, err
	}
	cwr, err := classes.Create()
	if err != nil {
		return nil, err
	}
	res := &Result{Classes: classes, ClassSizes: map[int32]int64{}, NumVertices: n}
	emit := func(u, v uint32, k int32) error {
		res.ClassSizes[k]++
		return cwr.Write(gio.EdgeAux{U: u, V: v, Aux: k})
	}
	fail := func(err error) (*Result, error) {
		cwr.Close()
		classes.Remove()
		return nil, err
	}

	// Stage 1 (Algorithm 7, Step 1): Algorithm 3 computing sup(e); the
	// 2-class is established here as a byproduct.
	gnew2, lbTrace, err := embu.Prepare(ctx, input, n, cfg.embu(), func(u, v uint32) error {
		return emit(u, v, 2)
	})
	if err != nil {
		return fail(err)
	}
	res.Trace.LBIterations = lbTrace.LBIterations

	// Stage 2 (Procedure 6): upper bounds.
	gnew, err := upperBound(gnew2, cfg)
	gnew2.Remove()
	if err != nil {
		return fail(err)
	}
	defer gnew.Remove()

	// Stage 3: top-down rounds.
	if err := topDownRounds(ctx, gnew, n, cfg, res, emit); err != nil {
		return fail(err)
	}
	if err := cwr.Close(); err != nil {
		classes.Remove()
		return nil, err
	}
	return res, nil
}

// DecomposeGraph spools g's edges and runs Decompose (test/bench helper).
func DecomposeGraph(ctx context.Context, g *graph.Graph, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	sp, err := gio.NewSpool[gio.EdgeRec](cfg.TempDir, "tdinput", gio.EdgeCodec{}, cfg.Stats)
	if err != nil {
		return nil, err
	}
	defer sp.Remove()
	w, err := sp.Create()
	if err != nil {
		return nil, err
	}
	for _, e := range g.Edges() {
		if err := w.Write(gio.EdgeRec{U: e.U, V: e.V}); err != nil {
			w.Close()
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return Decompose(ctx, sp, g.NumVertices(), cfg)
}

// roundScan is the per-round bookkeeping collected in one pass over the
// residual: counts of unclassified edges, the largest psi among them, and
// per-vertex aggregates for the kinit estimate.
type roundScan struct {
	unclassified int64
	maxPsi       int32
}

func scanResidual(gnew *gio.Spool[gio.EdgeRec5]) (roundScan, error) {
	var rs roundScan
	err := gnew.ForEach(func(r gio.EdgeRec5) error {
		if !r.Classified() {
			rs.unclassified++
			if r.Psi > rs.maxPsi {
				rs.maxPsi = r.Psi
			}
		}
		return nil
	})
	return rs, err
}

func topDownRounds(ctx context.Context, gnew *gio.Spool[gio.EdgeRec5], n int, cfg Config, res *Result, emit func(u, v uint32, k int32) error) error {
	var kmaxSeen int32

	stopK := func() int32 {
		if cfg.TopT <= 0 || kmaxSeen == 0 {
			return 2 // go all the way down to the 3-class
		}
		return kmaxSeen - int32(cfg.TopT)
	}

	rs, err := scanResidual(gnew)
	if err != nil {
		return err
	}
	if rs.unclassified == 0 {
		return nil
	}
	k := rs.maxPsi

	// Section 6.3 shortcut: find the smallest kinit whose candidate fits
	// in memory and decompose that candidate in one in-memory pass,
	// classifying every edge with truss number >= kinit at once.
	if !cfg.DisableKInit {
		done, err := kinitShortcut(ctx, gnew, n, cfg, res, emit, &kmaxSeen, &k)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}

	for k > stopK() {
		if err := ctx.Err(); err != nil {
			return err
		}
		rs, err := scanResidual(gnew)
		if err != nil {
			return err
		}
		if rs.unclassified == 0 {
			break
		}
		if rs.maxPsi < k {
			k = rs.maxPsi
		}
		if k <= stopK() || k < 3 {
			break
		}
		res.Trace.Rounds++
		if cfg.OnRound != nil {
			cfg.OnRound(k)
		}

		// U_k: endpoints of unclassified edges whose bound admits class k.
		uk := graph.NewVertexSet(n)
		if err := gnew.ForEach(func(r gio.EdgeRec5) error {
			if !r.Classified() && r.Psi >= k {
				uk.Add(r.U)
				uk.Add(r.V)
			}
			return nil
		}); err != nil {
			return err
		}

		// Extract H = NS(U_k); spill to Procedure 10 when oversized.
		var mem []gio.EdgeRec5
		var spill *gio.Spool[gio.EdgeRec5]
		var spillW *gio.SpoolWriter[gio.EdgeRec5]
		capEdges := int(cfg.Budget / 2)
		err = gnew.ForEach(func(r gio.EdgeRec5) error {
			if !uk.Contains(r.U) && !uk.Contains(r.V) {
				return nil
			}
			if spillW == nil && len(mem) < capEdges {
				mem = append(mem, r)
				return nil
			}
			if spillW == nil {
				var serr error
				spill, serr = gio.NewSpool[gio.EdgeRec5](cfg.TempDir, "tdcand", gio.EdgeRec5Codec{}, cfg.Stats)
				if serr != nil {
					return serr
				}
				spillW, serr = spill.Create()
				if serr != nil {
					return serr
				}
				for _, m := range mem {
					if werr := spillW.Write(m); werr != nil {
						return werr
					}
				}
				mem = nil
			}
			return spillW.Write(r)
		})
		if err != nil {
			if spillW != nil {
				spillW.Close()
				spill.Remove()
			}
			return err
		}

		var phiK []graph.Edge
		if spillW != nil {
			if err := spillW.Close(); err != nil {
				spill.Remove()
				return err
			}
			res.Trace.OversizeRounds++
			phiK, err = procedure10(ctx, spill, n, k, cfg, &res.Trace)
			spill.Remove()
			if err != nil {
				return err
			}
		} else {
			phiK = procedure8(mem, k)
		}

		if len(phiK) > 0 {
			if kmaxSeen == 0 {
				kmaxSeen = k
				res.KMax = k
			}
			for _, e := range phiK {
				if err := emit(e.U, e.V, k); err != nil {
					return err
				}
			}
			if err := classifyEdges(gnew, phiK, k, cfg); err != nil {
				return err
			}
			if err := pruneClassified(gnew, n, cfg, &res.Trace); err != nil {
				return err
			}
		}
		k--
	}
	return nil
}

// procedure8 peels the k-class out of an in-memory candidate subgraph.
// Eligibility: an edge can be part of T_k only if it is classified (truss
// number > k) or unclassified with psi >= k; triangles containing an
// ineligible edge are never counted. Candidates (unclassified, psi >= k)
// with eligible support < k-2 are peeled; the survivors are Phi_k.
func procedure8(recs []gio.EdgeRec5, k int32) []graph.Edge {
	if len(recs) == 0 {
		return nil
	}
	edges := make([]graph.Edge, len(recs))
	for i, r := range recs {
		edges[i] = graph.Edge{U: r.U, V: r.V}
	}
	sg := graph.FromEdges(edges)
	byKey := make(map[uint64]gio.EdgeRec5, len(recs))
	for _, r := range recs {
		byKey[r.Key()] = r
	}
	m := sg.NumEdges()
	eligible := make([]bool, m)
	candidate := make([]bool, m)
	for id, e := range sg.Edges() {
		r := byKey[e.Key()]
		switch {
		case r.Classified():
			eligible[id] = true
		case r.Psi >= k:
			eligible[id] = true
			candidate[id] = true
		}
	}
	sup := make([]int32, m)
	triangle.ForEach(sg, func(e1, e2, e3 int32) {
		if eligible[e1] && eligible[e2] && eligible[e3] {
			sup[e1]++
			sup[e2]++
			sup[e3]++
		}
	})
	p := core.NewPeeler(sg, sup)
	for id := range eligible {
		if !eligible[id] {
			p.MarkDead(int32(id))
		}
	}
	p.Restrict(candidate)
	p.PeelTo(k - 3) // remove candidates with support < k-2

	var out []graph.Edge
	for id, e := range sg.Edges() {
		if candidate[id] && p.Alive(int32(id)) {
			out = append(out, e)
		}
	}
	return out
}

// procedure10 peels the k-class out of a candidate subgraph that does not
// fit in memory. Like the corrected Procedure 9, it verifies the support
// condition directly: each pass computes the exact support of every
// eligible edge (within the eligible subgraph, honoring the psi filter)
// with the partitioned accumulation of embu.ExactSupports, removes the
// candidates below the threshold, and stops when none remain; the
// surviving candidates are Phi_k.
func procedure10(ctx context.Context, h *gio.Spool[gio.EdgeRec5], n int, k int32, cfg Config, trace *Trace) ([]graph.Edge, error) {
	// E: the eligible subgraph, annotated with candidacy (A=1 candidate,
	// A=0 classified), kept sorted by edge key so support joins stream.
	sorter := extsort.NewSorter[gio.EdgeAux2](gio.EdgeAux2Codec{}, func(a, b gio.EdgeAux2) bool {
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	}, extsort.Config{Budget: int(cfg.Budget), Dir: cfg.TempDir, Stats: cfg.Stats})
	defer sorter.Discard() // no-op once Sort hands runs to the iterator
	err := h.ForEach(func(r gio.EdgeRec5) error {
		switch {
		case r.Classified():
			return sorter.Push(gio.EdgeAux2{U: r.U, V: r.V, A: 0})
		case r.Psi >= k:
			return sorter.Push(gio.EdgeAux2{U: r.U, V: r.V, A: 1})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	elig, err := gio.NewSpool[gio.EdgeAux2](cfg.TempDir, "tdelig", gio.EdgeAux2Codec{}, cfg.Stats)
	if err != nil {
		return nil, err
	}
	defer elig.Remove()
	ew, err := elig.Create()
	if err != nil {
		return nil, err
	}
	it, err := sorter.Sort()
	if err != nil {
		ew.Close()
		return nil, err
	}
	if err := it.ForEach(ew.Write); err != nil {
		ew.Close()
		return nil, err
	}
	if err := ew.Close(); err != nil {
		return nil, err
	}

	for pass := 0; ; pass++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		trace.Proc10Passes++
		// One partitioned local peel collapses within-part cascades (the
		// paper's Procedure 10 pass); the exact-support certification then
		// removes every cross-part straggler and decides termination.
		if _, err := localPeelPass10(ctx, elig, n, k, cfg, cfg.Seed+int64(pass)); err != nil {
			return nil, err
		}
		sups, err := embu.ExactSupports(ctx, elig, n, cfg.embu())
		if err != nil {
			return nil, err
		}
		// Sort supports by key to join against the sorted eligible spool.
		supSorter := extsort.NewSorter[gio.EdgeAux](gio.EdgeAuxCodec{}, func(a, b gio.EdgeAux) bool {
			if a.U != b.U {
				return a.U < b.U
			}
			return a.V < b.V
		}, extsort.Config{Budget: int(cfg.Budget), Dir: cfg.TempDir, Stats: cfg.Stats})
		defer supSorter.Discard()
		if err := sups.ForEach(func(r gio.EdgeAux) error { return supSorter.Push(r) }); err != nil {
			sups.Remove()
			return nil, err
		}
		sups.Remove()
		supIt, err := supSorter.Sort()
		if err != nil {
			return nil, err
		}

		// Stream-join: eligible records and support records are both
		// sorted by (U,V) and contain the same edge set.
		next, err := gio.NewSpool[gio.EdgeAux2](cfg.TempDir, "tdelig", gio.EdgeAux2Codec{}, cfg.Stats)
		if err != nil {
			supIt.Close()
			return nil, err
		}
		nw, err := next.Create()
		if err != nil {
			next.Remove()
			supIt.Close()
			return nil, err
		}
		er, err := elig.Open()
		if err != nil {
			nw.Close()
			next.Remove()
			supIt.Close()
			return nil, err
		}
		violations := int64(0)
		joinErr := func() error {
			for {
				srec, ok, err := supIt.Next()
				if err != nil {
					return err
				}
				if !ok {
					// The eligible reader must be exhausted too.
					if _, rerr := er.Read(); !errors.Is(rerr, io.EOF) {
						return errors.New("emtd: eligible/support streams diverged")
					}
					return nil
				}
				erec, rerr := er.Read()
				if rerr != nil {
					return rerr
				}
				if erec.U != srec.U || erec.V != srec.V {
					return errors.New("emtd: eligible/support streams misaligned")
				}
				if erec.A == 1 && srec.Aux < k-2 {
					violations++
					continue // drop this candidate from the eligible set
				}
				if err := nw.Write(erec); err != nil {
					return err
				}
			}
		}()
		er.Close()
		supIt.Close()
		if joinErr != nil {
			nw.Close()
			next.Remove()
			return nil, joinErr
		}
		if err := nw.Close(); err != nil {
			next.Remove()
			return nil, err
		}
		if err := elig.ReplaceWith(next); err != nil {
			return nil, err
		}
		if violations == 0 {
			break
		}
	}

	// Surviving candidates are Phi_k.
	var out []graph.Edge
	err = elig.ForEach(func(r gio.EdgeAux2) error {
		if r.A == 1 {
			out = append(out, graph.Edge{U: r.U, V: r.V})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// localPeelPass10 is one partitioned peel over the eligible subgraph:
// part-internal candidates whose support within their part's neighborhood
// subgraph falls below k-2 are removed from the eligible set (they are
// provably outside T_k). Returns the number removed. The eligible spool's
// key order is preserved.
func localPeelPass10(ctx context.Context, elig *gio.Spool[gio.EdgeAux2], n int, k int32, cfg Config, seed int64) (int, error) {
	deg := make([]int32, n)
	if err := elig.ForEach(func(r gio.EdgeAux2) error {
		deg[r.U]++
		deg[r.V]++
		return nil
	}); err != nil {
		return 0, err
	}
	parts := partition.Partition(
		partition.Input{Degree: deg},
		partition.Config{Strategy: partition.Randomized, Budget: cfg.Budget, Seed: seed},
	)
	if len(parts) == 0 {
		return 0, nil
	}
	partOf := make([]int32, n)
	for i := range partOf {
		partOf[i] = -1
	}
	for pi, p := range parts {
		for _, v := range p {
			partOf[v] = int32(pi)
		}
	}

	// Bucket eligible edges by incident part (single scan, two writes max).
	buckets := make([]*gio.Spool[gio.EdgeAux2], len(parts))
	defer func() {
		// No-op on success (each bucket is removed as it is consumed);
		// cleanup when an error or cancellation aborts the pass early.
		for _, b := range buckets {
			if b != nil {
				b.Remove()
			}
		}
	}()
	writers := make([]*gio.SpoolWriter[gio.EdgeAux2], len(parts))
	const wave = 256
	for lo := 0; lo < len(parts); lo += wave {
		hi := lo + wave
		if hi > len(parts) {
			hi = len(parts)
		}
		for i := lo; i < hi; i++ {
			sp, err := gio.NewSpool[gio.EdgeAux2](cfg.TempDir, "tdbucket", gio.EdgeAux2Codec{}, cfg.Stats)
			if err != nil {
				return 0, err
			}
			buckets[i] = sp
			w, err := sp.Create()
			if err != nil {
				return 0, err
			}
			writers[i] = w
		}
		err := elig.ForEach(func(r gio.EdgeAux2) error {
			pu, pv := partOf[r.U], partOf[r.V]
			if pu >= int32(lo) && pu < int32(hi) {
				if err := writers[pu].Write(r); err != nil {
					return err
				}
			}
			if pv != pu && pv >= int32(lo) && pv < int32(hi) {
				if err := writers[pv].Write(r); err != nil {
					return err
				}
			}
			return nil
		})
		for i := lo; i < hi; i++ {
			if cerr := writers[i].Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		if err != nil {
			return 0, err
		}
	}

	removed := map[uint64]bool{}
	for pi := range parts {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		recs, err := buckets[pi].ReadAll()
		if err != nil {
			return 0, err
		}
		if err := buckets[pi].Remove(); err != nil {
			return 0, err
		}
		live := recs[:0]
		for _, r := range recs {
			if !removed[r.Key()] {
				live = append(live, r)
			}
		}
		if len(live) == 0 {
			continue
		}
		edges := make([]graph.Edge, len(live))
		for i, r := range live {
			edges[i] = graph.Edge{U: r.U, V: r.V}
		}
		sg := graph.FromEdges(edges)
		cand := make([]bool, sg.NumEdges())
		byKey := make(map[uint64]gio.EdgeAux2, len(live))
		for _, r := range live {
			byKey[r.Key()] = r
		}
		for id, e := range sg.Edges() {
			r := byKey[e.Key()]
			cand[id] = r.A == 1 && partOf[e.U] == int32(pi) && partOf[e.V] == int32(pi)
		}
		p := core.NewPeeler(sg, triangle.Supports(sg))
		p.Restrict(cand)
		for _, id := range p.PeelTo(k - 3) {
			removed[sg.Edge(id).Key()] = true
		}
	}
	if len(removed) == 0 {
		return 0, nil
	}
	// Rewrite the eligible spool without the removed candidates.
	next, err := gio.NewSpool[gio.EdgeAux2](cfg.TempDir, "tdelig", gio.EdgeAux2Codec{}, cfg.Stats)
	if err != nil {
		return 0, err
	}
	nw, err := next.Create()
	if err != nil {
		next.Remove()
		return 0, err
	}
	err = elig.ForEach(func(r gio.EdgeAux2) error {
		if removed[r.Key()] {
			return nil
		}
		return nw.Write(r)
	})
	if err != nil {
		nw.Close()
		next.Remove()
		return 0, err
	}
	if err := nw.Close(); err != nil {
		next.Remove()
		return 0, err
	}
	if err := elig.ReplaceWith(next); err != nil {
		return 0, err
	}
	return len(removed), nil
}

// classifyEdges sets Phi=k on the given edges in the residual, in
// budget-bounded chunks (one scan-and-rewrite per chunk).
func classifyEdges(gnew *gio.Spool[gio.EdgeRec5], edges []graph.Edge, k int32, cfg Config) error {
	chunkCap := int(cfg.Budget)
	for lo := 0; lo < len(edges); lo += chunkCap {
		hi := lo + chunkCap
		if hi > len(edges) {
			hi = len(edges)
		}
		chunk := make(map[uint64]bool, hi-lo)
		for _, e := range edges[lo:hi] {
			chunk[e.Key()] = true
		}
		next, err := gio.NewSpool[gio.EdgeRec5](cfg.TempDir, "tdgnew", gio.EdgeRec5Codec{}, cfg.Stats)
		if err != nil {
			return err
		}
		nw, err := next.Create()
		if err != nil {
			return err
		}
		err = gnew.ForEach(func(r gio.EdgeRec5) error {
			if chunk[r.Key()] {
				r.Phi = k
			}
			return nw.Write(r)
		})
		if err != nil {
			nw.Close()
			return err
		}
		if err := nw.Close(); err != nil {
			return err
		}
		if err := gnew.ReplaceWith(next); err != nil {
			return err
		}
	}
	return nil
}

// pruneClassified deletes classified edges that can no longer support any
// unclassified edge. The paper's condition (Procedure 8, Steps 7-9) is
// per-triangle; this implementation uses the cheaper sufficient condition
// that neither endpoint touches an unclassified edge — every triangle of
// such an edge consists of classified partners, so it is removable. The
// difference only affects how much the residual shrinks, never
// correctness.
func pruneClassified(gnew *gio.Spool[gio.EdgeRec5], n int, cfg Config, trace *Trace) error {
	hasUnclassified := graph.NewVertexSet(n)
	if err := gnew.ForEach(func(r gio.EdgeRec5) error {
		if !r.Classified() {
			hasUnclassified.Add(r.U)
			hasUnclassified.Add(r.V)
		}
		return nil
	}); err != nil {
		return err
	}
	next, err := gio.NewSpool[gio.EdgeRec5](cfg.TempDir, "tdgnew", gio.EdgeRec5Codec{}, cfg.Stats)
	if err != nil {
		return err
	}
	nw, err := next.Create()
	if err != nil {
		return err
	}
	pruned := int64(0)
	err = gnew.ForEach(func(r gio.EdgeRec5) error {
		if r.Classified() && !hasUnclassified.Contains(r.U) && !hasUnclassified.Contains(r.V) {
			pruned++
			return nil
		}
		return nw.Write(r)
	})
	if err != nil {
		nw.Close()
		return err
	}
	if err := nw.Close(); err != nil {
		return err
	}
	if err := gnew.ReplaceWith(next); err != nil {
		return err
	}
	trace.Pruned += pruned
	return nil
}

// kinitShortcut implements the Section 6.3 optimization: rather than
// stepping k down one by one from k_1st = max psi (which may far exceed
// kmax), find the smallest kinit whose candidate subgraph fits in memory,
// decompose that candidate in one in-memory pass, and classify every edge
// whose local truss number is >= kinit (local equals global there: every
// edge of T_kinit has psi >= kinit, so T_kinit is contained in the
// candidate, making local truss numbers >= kinit exact).
//
// Returns done=true when the classes required by cfg.TopT are fully
// covered. On partial coverage, *k is set to kinit-1 for the main loop.
func kinitShortcut(ctx context.Context, gnew *gio.Spool[gio.EdgeRec5], n int, cfg Config, res *Result, emit func(u, v uint32, k int32) error, kmaxSeen *int32, k *int32) (bool, error) {
	// Per-vertex aggregates: degree and max psi over unclassified edges.
	deg := make([]int32, n)
	maxPsi := make([]int32, n)
	k1st := int32(0)
	if err := gnew.ForEach(func(r gio.EdgeRec5) error {
		deg[r.U]++
		deg[r.V]++
		maxPsi[r.U] = maxI32(maxPsi[r.U], r.Psi)
		maxPsi[r.V] = maxI32(maxPsi[r.V], r.Psi)
		k1st = maxI32(k1st, r.Psi)
		return nil
	}); err != nil {
		return false, err
	}
	if k1st < 3 {
		return false, nil
	}
	// est(k) = sum of deg(v) over vertices with maxPsi(v) >= k, an upper
	// bound on the adjacency entries of NS(U_k). Computed for all k via
	// suffix sums of psi buckets.
	bucket := make([]int64, k1st+2)
	for v := 0; v < n; v++ {
		if maxPsi[v] >= 3 {
			bucket[maxPsi[v]] += int64(deg[v])
		}
	}
	est := make([]int64, k1st+2)
	for kk := k1st; kk >= 3; kk-- {
		est[kk] = est[kk+1] + bucket[kk]
	}
	// est bounds the candidate's edge count; the in-memory cap is
	// Budget/2 edges (2 adjacency entries per edge), matching the main
	// loop's extraction capacity.
	kinit := int32(0)
	for kk := int32(3); kk <= k1st; kk++ {
		if est[kk] <= cfg.Budget/2 {
			kinit = kk
			break
		}
	}
	if kinit == 0 {
		return false, nil // nothing fits; fall back to the per-k loop
	}
	res.Trace.KInitUsed = true
	res.Trace.KInit = kinit
	*k = kinit - 1
	if cfg.OnRound != nil {
		cfg.OnRound(kinit)
	}

	// Extract and decompose the candidate in memory.
	var recs []gio.EdgeRec5
	if err := gnew.ForEach(func(r gio.EdgeRec5) error {
		if maxPsi[r.U] >= kinit || maxPsi[r.V] >= kinit {
			recs = append(recs, r)
		}
		return nil
	}); err != nil {
		return false, err
	}
	if len(recs) == 0 {
		return false, nil
	}
	edges := make([]graph.Edge, len(recs))
	for i, r := range recs {
		edges[i] = graph.Edge{U: r.U, V: r.V}
	}
	sg := graph.FromEdges(edges)
	local, err := core.DecomposeCtx(ctx, sg, core.Hooks{})
	if err != nil {
		return false, err
	}

	if local.KMax < kinit {
		// No class at or above kinit exists; the loop continues below.
		return false, nil
	}
	*kmaxSeen = local.KMax
	res.KMax = local.KMax

	// Classify and emit all classes >= kinit, restricted to the requested
	// top-t range.
	low := kinit
	if cfg.TopT > 0 {
		if r := local.KMax - int32(cfg.TopT) + 1; r > low {
			low = r
		}
	}
	byClass := map[int32][]graph.Edge{}
	for id, p := range local.Phi {
		if p >= low {
			byClass[p] = append(byClass[p], sg.Edge(int32(id)))
		}
	}
	for kk := local.KMax; kk >= low; kk-- {
		for _, e := range byClass[kk] {
			if err := emit(e.U, e.V, kk); err != nil {
				return false, err
			}
		}
		if len(byClass[kk]) > 0 {
			if err := classifyEdges(gnew, byClass[kk], kk, cfg); err != nil {
				return false, err
			}
		}
	}
	if err := pruneClassified(gnew, n, cfg, &res.Trace); err != nil {
		return false, err
	}

	// Done if the top-t range is fully covered by the shortcut.
	if cfg.TopT > 0 && local.KMax-int32(cfg.TopT)+1 >= kinit {
		return true, nil
	}
	return false, nil
}
