package emtd

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/gio"
	"repro/internal/graph"
)

// checkTopDown runs the top-down decomposition and validates the emitted
// classes against the in-memory oracle. With TopT == 0 every edge must be
// classified; with TopT > 0 exactly the classes in (kmax-t, kmax] plus the
// 2-class must appear.
func checkTopDown(t *testing.T, g *graph.Graph, cfg Config) *Result {
	t.Helper()
	cfg.TempDir = t.TempDir()
	res, err := DecomposeGraph(context.Background(), g, cfg)
	if err != nil {
		t.Fatalf("top-down decompose: %v", err)
	}
	want := core.Decompose(g)
	got, err := res.PhiMap()
	if err != nil {
		t.Fatal(err)
	}
	// Every emitted classification must be correct.
	for key, p := range got {
		e := graph.EdgeFromKey(key)
		id, ok := g.EdgeID(e.U, e.V)
		if !ok {
			t.Fatalf("emitted edge %v not in G", e)
		}
		if want.Phi[id] != p {
			t.Fatalf("edge %v: top-down phi=%d, oracle phi=%d", e, p, want.Phi[id])
		}
	}
	if want.KMax >= 3 && res.KMax != want.KMax {
		t.Fatalf("kmax: top-down %d, oracle %d", res.KMax, want.KMax)
	}
	// Coverage check.
	low := int32(3)
	if cfg.TopT > 0 {
		low = want.KMax - int32(cfg.TopT) + 1
	}
	for id, p := range want.Phi {
		e := g.Edge(int32(id))
		inRange := p >= low || p == 2 // the 2-class falls out of preparation
		if cfg.TopT > 0 && p == 2 && low > 2 {
			inRange = true // still emitted as a preparation byproduct
		}
		if inRange {
			q, ok := got[e.Key()]
			if !ok {
				t.Fatalf("edge %v (phi=%d) missing from top-down output (low=%d)", e, p, low)
			}
			if q != p {
				t.Fatalf("edge %v: phi %d vs %d", e, q, p)
			}
		}
	}
	return res
}

func TestPaperExampleTopDownAll(t *testing.T) {
	g := gen.PaperExample()
	res := checkTopDown(t, g, Config{})
	if res.KMax != 5 {
		t.Fatalf("kmax = %d", res.KMax)
	}
	// All 26 edges classified.
	if n := res.Classes.Count(); n != 26 {
		t.Fatalf("classified %d edges, want 26", n)
	}
	res.Close()
}

func TestPaperExampleTopDownTop2(t *testing.T) {
	// Example 5 of the paper: t=2 computes Phi5 then Phi4 and stops.
	g := gen.PaperExample()
	res := checkTopDown(t, g, Config{TopT: 2})
	if res.ClassSizes[5] != 10 || res.ClassSizes[4] != 6 {
		t.Fatalf("sizes = %v, want Phi5=10 Phi4=6", res.ClassSizes)
	}
	if res.ClassSizes[3] != 0 {
		t.Fatalf("top-2 run computed Phi3: %v", res.ClassSizes)
	}
	res.Close()
}

func TestTopDownTinyBudgetNoShortcut(t *testing.T) {
	g := gen.PaperExample()
	res := checkTopDown(t, g, Config{Budget: 64, DisableKInit: true, Seed: 7})
	if res.Trace.KInitUsed {
		t.Fatal("shortcut should be disabled")
	}
	if res.Trace.Rounds == 0 {
		t.Fatal("expected per-k rounds")
	}
	res.Close()
}

func TestTopDownProcedure10(t *testing.T) {
	// Budget small enough that candidates cannot fit in memory.
	g := gen.Community(4, 14, 0.7, 1.0, 33)
	res := checkTopDown(t, g, Config{Budget: 80, DisableKInit: true, Seed: 3})
	if res.Trace.OversizeRounds == 0 {
		t.Skipf("budget did not force Procedure 10; trace=%+v", res.Trace)
	}
	if res.Trace.Proc10Passes == 0 {
		t.Fatal("oversize round without Procedure 10 passes")
	}
	res.Close()
}

func TestTopDownRandomGraphs(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 6; trial++ {
		n := 20 + r.Intn(50)
		m := 2*n + r.Intn(4*n)
		var edges []graph.Edge
		for i := 0; i < m; i++ {
			edges = append(edges, graph.Edge{U: uint32(r.Intn(n)), V: uint32(r.Intn(n))})
		}
		g := graph.FromEdges(edges)
		for _, cfg := range []Config{
			{},                     // all classes, default budget (kinit shortcut)
			{TopT: 1},              // just the max truss
			{TopT: 3, Budget: 512}, // top-3 with modest budget
			{Budget: 64, Seed: 5},  // tiny budget, shortcut may or may not fire
			{Budget: 64, Seed: 5, DisableKInit: true}, // tiny budget, rounds only
		} {
			cfg.Seed += int64(trial)
			res := checkTopDown(t, g, cfg)
			res.Close()
		}
	}
}

func TestTopDownKInitShortcut(t *testing.T) {
	g := gen.Community(6, 12, 0.7, 1.0, 21)
	res := checkTopDown(t, g, Config{TopT: 2})
	if !res.Trace.KInitUsed {
		t.Fatalf("default budget should trigger the kinit shortcut; trace=%+v", res.Trace)
	}
	res.Close()
}

func TestTopDownSmallDatasets(t *testing.T) {
	for _, d := range gen.SmallDatasets() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			g := d.Build()
			res := checkTopDown(t, g, Config{TopT: 3, Budget: int64(g.NumEdges()), Seed: 2})
			res.Close()
		})
	}
}

func TestUpperBoundIsUpperBound(t *testing.T) {
	// psi(e) >= phi(e) for every edge, on random graphs.
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 15 + r.Intn(40)
		m := 2*n + r.Intn(3*n)
		var edges []graph.Edge
		for i := 0; i < m; i++ {
			edges = append(edges, graph.Edge{U: uint32(r.Intn(n)), V: uint32(r.Intn(n))})
		}
		g := graph.FromEdges(edges)
		want := core.Decompose(g)

		dir := t.TempDir()
		cfg := Config{TempDir: dir, Budget: 1 << 16}.withDefaults()
		// Build the (u,v,sup) input the way stage 1 would.
		gnew2, err := gio.NewSpool[gio.EdgeAux2](dir, "g2", gio.EdgeAux2Codec{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		w, err := gnew2.Create()
		if err != nil {
			t.Fatal(err)
		}
		sup := supports(g)
		for id, e := range g.Edges() {
			if sup[id] == 0 {
				continue // stage 1 removes the 2-class
			}
			if err := w.Write(gio.EdgeAux2{U: e.U, V: e.V, B: sup[id]}); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		psis, err := upperBound(gnew2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		count := 0
		if err := psis.ForEach(func(rec gio.EdgeRec5) error {
			count++
			id, ok := g.EdgeID(rec.U, rec.V)
			if !ok {
				t.Fatalf("psi record for non-edge (%d,%d)", rec.U, rec.V)
			}
			if rec.Psi < want.Phi[id] {
				t.Errorf("edge (%d,%d): psi=%d < phi=%d", rec.U, rec.V, rec.Psi, want.Phi[id])
			}
			if rec.Sup != sup[id] {
				t.Errorf("edge (%d,%d): sup=%d want %d", rec.U, rec.V, rec.Sup, sup[id])
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		psis.Remove()
	}
}

// supports is a tiny local helper mirroring triangle.Supports to avoid an
// extra import cycle in tests.
func supports(g *graph.Graph) []int32 {
	sup := make([]int32, g.NumEdges())
	for id, e := range g.Edges() {
		a, b := g.Neighbors(e.U), g.Neighbors(e.V)
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			switch {
			case a[i] < b[j]:
				i++
			case a[i] > b[j]:
				j++
			default:
				sup[id]++
				i++
				j++
			}
		}
	}
	return sup
}

func TestPaperExample4UpperBound(t *testing.T) {
	// Example 4 of the paper: psi((d,g)) = 4 in Figure 2 (sup=3, xd=3,
	// xg=2).
	g := gen.PaperExample()
	dir := t.TempDir()
	cfg := Config{TempDir: dir}.withDefaults()
	gnew2, err := gio.NewSpool[gio.EdgeAux2](dir, "g2", gio.EdgeAux2Codec{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	w, err := gnew2.Create()
	if err != nil {
		t.Fatal(err)
	}
	sup := supports(g)
	for id, e := range g.Edges() {
		if sup[id] == 0 {
			continue
		}
		if err := w.Write(gio.EdgeAux2{U: e.U, V: e.V, B: sup[id]}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	psis, err := upperBound(gnew2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	psis.ForEach(func(rec gio.EdgeRec5) error {
		if rec.U == 3 && rec.V == 6 { // (d,g)
			found = true
			if rec.Psi != 4 {
				t.Errorf("psi((d,g)) = %d, want 4", rec.Psi)
			}
		}
		if rec.U == 0 && rec.V == 1 { // (a,b) in the 5-clique
			if rec.Psi != 5 {
				t.Errorf("psi((a,b)) = %d, want 5", rec.Psi)
			}
		}
		return nil
	})
	if !found {
		t.Fatal("(d,g) missing from psi output")
	}
	psis.Remove()
}
