// Package emtd implements the paper's top-down I/O-efficient truss
// decomposition (Section 6): UpperBounding (Procedure 6) computes a
// per-edge upper bound psi(e) = min(sup(e), x_u, x_v) + 2 on the truss
// number, and the top-down stage (Algorithm 7 with Procedures 8 and 10)
// computes the k-classes from kmax downward, extracting per-k candidate
// subgraphs NS(U_k) of edges whose bound admits class k. It is tailored to
// applications that need only the top-t classes — the "heart" of a network.
//
// Correctness refinement over the paper's pseudocode: when peeling a
// candidate subgraph at level k, a triangle is counted toward an edge's
// support only if all three edges are *T_k-eligible* — already classified
// (truss number > k) or unclassified with psi >= k. An edge with psi < k
// provably cannot belong to T_k (Lemma 2), so triangles through it must not
// prop up candidates; without this filter, unremovable low-psi external
// edges can inflate a candidate's support and misclassify it upward.
// With the filter, the surviving candidates are exactly Phi_k: survivors
// union T_k form a subgraph with minimum support k-2, so maximality of the
// k-truss absorbs them.
package emtd

import (
	"os"

	"repro/internal/embu"
	"repro/internal/gio"
	"repro/internal/partition"
)

// Config parameterizes the top-down decomposition.
type Config struct {
	// TopT asks for the top-t k-classes (k from kmax down to kmax-t+1).
	// 0 means all classes (the 2-class from the preparation stage
	// included).
	TopT int
	// Budget is the memory budget in adjacency entries, as in embu.Config.
	Budget int64
	// Strategy selects the vertex partitioner for the preparation stage.
	Strategy partition.Strategy
	// Seed drives randomized partitioning.
	Seed int64
	// TempDir holds spools and sort runs (default os.TempDir()).
	TempDir string
	// Stats, if non-nil, accumulates all disk traffic.
	Stats *gio.Stats
	// DisableKInit turns off the Section 6.3 shortcut that finds the
	// smallest k whose candidate fits in memory and decomposes it in one
	// in-memory pass. Used by the ablation benchmarks.
	DisableKInit bool
	// OnRound, if non-nil, is invoked at the start of every top-down
	// candidate round (and once when the kinit shortcut fires) with the
	// class level k being attempted. It runs on the decomposing goroutine
	// and must be cheap.
	OnRound func(k int32)
}

func (c Config) withDefaults() Config {
	if c.Budget <= 0 {
		c.Budget = 1 << 22
	}
	if c.Budget < 64 {
		c.Budget = 64
	}
	if c.TempDir == "" {
		c.TempDir = os.TempDir()
	}
	return c
}

func (c Config) embu() embu.Config {
	return embu.Config{
		Budget:   c.Budget,
		Strategy: c.Strategy,
		Seed:     c.Seed,
		TempDir:  c.TempDir,
		Stats:    c.Stats,
	}
}

// Trace records how a top-down run unfolded.
type Trace struct {
	// LBIterations is the number of preparation (Algorithm 3) passes.
	LBIterations int
	// Rounds counts per-k candidate rounds actually executed.
	Rounds int
	// OversizeRounds counts rounds routed through Procedure 10.
	OversizeRounds int
	// Proc10Passes counts support-recomputation passes inside Procedure 10.
	Proc10Passes int
	// KInitUsed reports whether the Section 6.3 in-memory shortcut fired,
	// and KInit records the level it decomposed from.
	KInitUsed bool
	KInit     int32
	// Pruned counts classified edges deleted from the residual graph.
	Pruned int64
}

// Result is the output of a top-down decomposition.
type Result struct {
	// Classes holds one (u, v, phi) record per classified edge. For a
	// top-t run it contains the classes k > KMax-t (plus the 2-class,
	// which the preparation stage establishes as a byproduct).
	Classes *gio.Spool[gio.EdgeAux]
	// ClassSizes maps k to |Phi_k| for every emitted class.
	ClassSizes map[int32]int64
	// KMax is the maximum truss number (discovered at the first non-empty
	// class).
	KMax int32
	// NumVertices is the vertex-ID space of the input.
	NumVertices int
	// Trace describes the run.
	Trace Trace
}

// PhiMap loads the emitted classes into memory keyed by canonical edge.
func (r *Result) PhiMap() (map[uint64]int32, error) {
	out := make(map[uint64]int32, r.Classes.Count())
	err := r.Classes.ForEach(func(rec gio.EdgeAux) error {
		out[rec.Key()] = rec.Aux
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Close removes the result's backing files.
func (r *Result) Close() error { return r.Classes.Remove() }
