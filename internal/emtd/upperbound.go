package emtd

import (
	"fmt"
	"sort"

	"repro/internal/extsort"
	"repro/internal/gio"
	"repro/internal/graph"
)

// upperBound implements Procedure 6: for every edge e = (u,v) with exact
// support sup(e), compute psi(e) = min(sup(e), x_u, x_v) + 2, where x_w is
// the largest x such that at least x edges incident to w — excluding e —
// have support >= x (an H-index with a leave-one-out correction).
//
// The paper computes x_w inside neighborhood-subgraph partitions; since
// x_w depends only on the multiset of supports incident to w, this
// implementation streams the same values with two external sorts: group
// (endpoint, support) pairs by endpoint to produce per-edge x_w
// contributions, then group the two contributions per edge to emit psi.
// Peak memory is O(max degree) for the largest vertex group plus the sort
// budget.
func upperBound(gnew *gio.Spool[gio.EdgeAux2], cfg Config) (*gio.Spool[gio.EdgeRec5], error) {
	// Pass 1: two (endpoint, other, sup) records per edge, sorted by
	// endpoint.
	byVertex := extsort.NewSorter[gio.EdgeAux2](gio.EdgeAux2Codec{}, func(a, b gio.EdgeAux2) bool {
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	}, extsort.Config{Budget: int(cfg.Budget), Dir: cfg.TempDir, Stats: cfg.Stats})
	defer byVertex.Discard() // no-op once Sort hands runs to the iterator
	err := gnew.ForEach(func(r gio.EdgeAux2) error {
		if err := byVertex.Push(gio.EdgeAux2{U: r.U, V: r.V, A: r.B}); err != nil {
			return err
		}
		return byVertex.Push(gio.EdgeAux2{U: r.V, V: r.U, A: r.B})
	})
	if err != nil {
		return nil, err
	}
	it, err := byVertex.Sort()
	if err != nil {
		return nil, err
	}

	// Pass 2: stream vertex groups; emit per-edge x_w contributions keyed
	// by the canonical edge, carrying sup alongside.
	byEdge := extsort.NewSorter[gio.EdgeRec5](gio.EdgeRec5Codec{}, func(a, b gio.EdgeRec5) bool {
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	}, extsort.Config{Budget: int(cfg.Budget), Dir: cfg.TempDir, Stats: cfg.Stats})
	defer byEdge.Discard() // no-op once Sort hands runs to the iterator

	var group []gio.EdgeAux2
	flush := func() error {
		if len(group) == 0 {
			return nil
		}
		w := group[0].U
		sups := make([]int32, len(group))
		for i, g := range group {
			sups[i] = g.A
		}
		sort.Slice(sups, func(i, j int) bool { return sups[i] > sups[j] })
		// hFull = max x such that at least x incident edges have sup >= x.
		hFull := int32(0)
		for i, s := range sups {
			if s >= int32(i+1) {
				hFull = int32(i + 1)
			} else {
				break
			}
		}
		// cAtH = number of incident edges with sup >= hFull.
		cAtH := int32(sort.Search(len(sups), func(i int) bool { return sups[i] < hFull }))
		for _, g := range group {
			x := hFull
			if hFull > 0 {
				excl := int32(0)
				if g.A >= hFull {
					excl = 1
				}
				if cAtH-excl < hFull {
					x = hFull - 1
				}
			}
			e := (graph.Edge{U: w, V: g.V}).Canon()
			if err := byEdge.Push(gio.EdgeRec5{U: e.U, V: e.V, Sup: g.A, Psi: x}); err != nil {
				return err
			}
		}
		group = group[:0]
		return nil
	}
	err = it.ForEach(func(r gio.EdgeAux2) error {
		if len(group) > 0 && group[0].U != r.U {
			if err := flush(); err != nil {
				return err
			}
		}
		group = append(group, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}

	// Pass 3: merge the two contributions per edge into psi records.
	out, err := gio.NewSpool[gio.EdgeRec5](cfg.TempDir, "psis", gio.EdgeRec5Codec{}, cfg.Stats)
	if err != nil {
		return nil, err
	}
	ow, err := out.Create()
	if err != nil {
		return nil, err
	}
	it5, err := byEdge.Sort()
	if err != nil {
		ow.Close()
		return nil, err
	}
	var pending *gio.EdgeRec5
	err = it5.ForEach(func(r gio.EdgeRec5) error {
		if pending != nil && pending.U == r.U && pending.V == r.V {
			xu, xv := pending.Psi, r.Psi
			psi := minI32(r.Sup, minI32(xu, xv)) + 2
			rec := gio.EdgeRec5{U: r.U, V: r.V, Sup: r.Sup, Psi: psi, Phi: 0}
			pending = nil
			return ow.Write(rec)
		}
		if pending != nil {
			return fmt.Errorf("emtd: unpaired x contribution for edge (%d,%d)", pending.U, pending.V)
		}
		c := r
		pending = &c
		return nil
	})
	if err == nil && pending != nil {
		err = fmt.Errorf("emtd: unpaired trailing x contribution for edge (%d,%d)", pending.U, pending.V)
	}
	if err != nil {
		ow.Close()
		return nil, err
	}
	if err := ow.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

func minI32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func maxI32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
