package gen

import (
	"sync"

	"repro/internal/graph"
)

// PaperStats records what Table 2 of the paper reports for the original
// dataset, for side-by-side printing in the experiment harness.
type PaperStats struct {
	V, E   int64
	DMax   int
	DMed   int
	KMax   int
	SizeMB float64 // on-disk size reported by the paper, in MB
}

// Dataset is a synthetic analog of one of the paper's nine datasets.
type Dataset struct {
	// Name matches the paper's dataset name (P2P, HEP, ...).
	Name string
	// Character describes the generator used and why it matches.
	Character string
	// Paper holds the original statistics from Table 2.
	Paper PaperStats
	// ScaleNote documents the size reduction relative to the original.
	ScaleNote string
	// Build generates the analog (deterministic).
	Build func() *graph.Graph
	// Large marks datasets the paper could only process out-of-core
	// (LJ, BTC, Web): the in-memory Table 3 experiment skips them and the
	// external-memory experiments target them.
	Large bool
}

// Datasets returns the nine analogs in the paper's Table 2 order.
func Datasets() []Dataset {
	return []Dataset{
		{
			Name:      "P2P",
			Character: "Barabasi-Albert preferential attachment (sparse power-law peer network)",
			Paper:     PaperStats{V: 6_300, E: 41_600, DMax: 97, DMed: 3, KMax: 5, SizeMB: 0.237},
			ScaleNote: "1:1 (already laptop-scale)",
			Build:     func() *graph.Graph { return BarabasiAlbert(6300, 7, 101) },
		},
		{
			Name:      "HEP",
			Character: "clique-affiliation collaboration graph (multi-author papers induce cliques)",
			Paper:     PaperStats{V: 9_900, E: 52_000, DMax: 65, DMed: 3, KMax: 32, SizeMB: 0.317},
			ScaleNote: "1:1 (already laptop-scale)",
			Build:     func() *graph.Graph { return Collaboration(9900, 880, 32, 102) },
		},
		{
			Name:      "Amazon",
			Character: "planted-partition co-purchase communities",
			Paper:     PaperStats{V: 400_000, E: 3_400_000, DMax: 2752, DMed: 10, KMax: 11, SizeMB: 47.9},
			ScaleNote: "~1:10 vertices (hub skew kept at the original's dmax/|V| ratio)",
			Build: func() *graph.Graph {
				return WithHubs(Community(2400, 17, 0.62, 2.0, 103), 25, 280, 103)
			},
		},
		{
			Name:      "Wiki",
			Character: "heavy-tailed RMAT + planted editor cliques",
			Paper:     PaperStats{V: 2_400_000, E: 5_000_000, DMax: 100029, DMed: 1, KMax: 53, SizeMB: 66.5},
			ScaleNote: "~1:30 vertices",
			Build: func() *graph.Graph {
				g := RMAT(16, 3, 0.57, 0.19, 0.19, 104)
				return WithPlantedCliques(g, []int{53, 40, 30}, 104)
			},
		},
		{
			Name:      "Skitter",
			Character: "heavy-tailed RMAT internet topology + peering cliques",
			Paper:     PaperStats{V: 1_700_000, E: 11_000_000, DMax: 35455, DMed: 5, KMax: 68, SizeMB: 149.1},
			ScaleNote: "~1:25 vertices",
			Build: func() *graph.Graph {
				g := RMAT(16, 6, 0.59, 0.19, 0.19, 105)
				return WithPlantedCliques(g, []int{68, 45, 30}, 105)
			},
		},
		{
			Name:      "Blog",
			Character: "heavy-tailed RMAT co-result network + topical cliques",
			Paper:     PaperStats{V: 1_000_000, E: 12_800_000, DMax: 6154, DMed: 2, KMax: 49, SizeMB: 177.2},
			ScaleNote: "~1:15 vertices",
			Build: func() *graph.Graph {
				g := RMAT(16, 8, 0.55, 0.2, 0.2, 106)
				return WithPlantedCliques(g, []int{49, 35, 25}, 106)
			},
		},
		{
			Name:      "LJ",
			Character: "heavy-tailed RMAT friendship network + community cliques",
			Paper:     PaperStats{V: 4_800_000, E: 69_000_000, DMax: 20333, DMed: 5, KMax: 362, SizeMB: 809.1},
			ScaleNote: "~1:40 vertices (kmax scaled ~1:3)",
			Large:     true,
			Build: func() *graph.Graph {
				g := RMAT(17, 6, 0.57, 0.19, 0.19, 107)
				return WithPlantedCliques(g, []int{120, 80, 60, 40, 30}, 107)
			},
		},
		{
			Name:      "BTC",
			Character: "very sparse RMAT RDF graph (low triangle density keeps kmax small)",
			Paper:     PaperStats{V: 165_000_000, E: 773_000_000, DMax: 1637619, DMed: 1, KMax: 7, SizeMB: 10240},
			ScaleNote: "~1:600 vertices",
			Large:     true,
			Build:     func() *graph.Graph { return RMAT(18, 3, 0.5, 0.22, 0.22, 108) },
		},
		{
			Name:      "Web",
			Character: "heavy-tailed RMAT hyperlink graph + link-farm cliques",
			Paper:     PaperStats{V: 106_000_000, E: 1_092_000_000, DMax: 36484, DMed: 2, KMax: 166, SizeMB: 12492.8},
			ScaleNote: "~1:800 vertices (kmax scaled ~1:2)",
			Large:     true,
			Build: func() *graph.Graph {
				g := RMAT(17, 4, 0.6, 0.18, 0.18, 109)
				return WithPlantedCliques(g, []int{90, 60, 45, 30}, 109)
			},
		},
	}
}

// DatasetByName looks a dataset up by its paper name.
func DatasetByName(name string) (Dataset, bool) {
	for _, d := range Datasets() {
		if d.Name == name {
			return d, true
		}
	}
	return Dataset{}, false
}

// QuickDatasets returns the nine analogs at roughly one tenth scale, for
// fast experiment runs (cmd/experiments -quick) and benchmarks on
// constrained machines. Names match Datasets().
func QuickDatasets() []Dataset {
	quick := []Dataset{
		{Name: "P2P", Build: func() *graph.Graph { return BarabasiAlbert(1600, 6, 101) }},
		{Name: "HEP", Build: func() *graph.Graph { return Collaboration(2500, 260, 24, 102) }},
		{Name: "Amazon", Build: func() *graph.Graph {
			return WithHubs(Community(600, 15, 0.62, 2.0, 103), 8, 70, 103)
		}},
		{Name: "Wiki", Build: func() *graph.Graph {
			return WithPlantedCliques(RMAT(13, 3, 0.57, 0.19, 0.19, 104), []int{30, 22}, 104)
		}},
		{Name: "Skitter", Build: func() *graph.Graph {
			return WithPlantedCliques(RMAT(13, 6, 0.59, 0.19, 0.19, 105), []int{34, 24}, 105)
		}},
		{Name: "Blog", Build: func() *graph.Graph {
			return WithPlantedCliques(RMAT(13, 8, 0.55, 0.2, 0.2, 106), []int{28, 20}, 106)
		}},
		{Name: "LJ", Build: func() *graph.Graph {
			return WithPlantedCliques(RMAT(14, 6, 0.57, 0.19, 0.19, 107), []int{60, 40, 26}, 107)
		}},
		{Name: "BTC", Build: func() *graph.Graph { return RMAT(15, 3, 0.5, 0.22, 0.22, 108) }},
		{Name: "Web", Build: func() *graph.Graph {
			return WithPlantedCliques(RMAT(14, 4, 0.6, 0.18, 0.18, 109), []int{45, 30, 20}, 109)
		}},
	}
	// Inherit metadata (paper stats, Large flags) from the full registry.
	full := Datasets()
	for i := range quick {
		for _, f := range full {
			if f.Name == quick[i].Name {
				quick[i].Paper = f.Paper
				quick[i].Character = f.Character
				quick[i].Large = f.Large
				quick[i].ScaleNote = f.ScaleNote + ", quick variant ~1:10 further"
			}
		}
	}
	return quick
}

// XLDataset is the parallel-speedup benchmark target: a single
// preferential-attachment graph above one million edges, the scale where
// the PKT engine's bulk-synchronous rounds amortize their barrier cost and
// pull ahead of the sequential in-memory peel. It is deliberately not part
// of Datasets(): it models no paper table, it exists so BenchmarkRun and
// the CI speedup gate have a target big enough for parallelism to matter.
func XLDataset() Dataset {
	return Dataset{
		Name:      "XL",
		Character: "Barabasi-Albert preferential attachment at parallel-bench scale (>= 1M edges)",
		ScaleNote: "benchmark-only target, no paper analog",
		Build:     func() *graph.Graph { return BarabasiAlbert(140_000, 8, 110) },
	}
}

// graphCache memoizes built datasets so experiments and benchmarks that
// reference the same analog repeatedly pay generation cost once.
var graphCache sync.Map

// CachedBuild returns d.Build() memoized under the given cache key.
func CachedBuild(key string, d Dataset) *graph.Graph {
	if g, ok := graphCache.Load(key); ok {
		return g.(*graph.Graph)
	}
	g := d.Build()
	actual, _ := graphCache.LoadOrStore(key, g)
	return actual.(*graph.Graph)
}

// SmallDatasets returns reduced-size variants of every analog for use in
// tests: same generators and character, two orders of magnitude smaller.
func SmallDatasets() []Dataset {
	return []Dataset{
		{Name: "P2P-small", Build: func() *graph.Graph { return BarabasiAlbert(600, 5, 201) }},
		{Name: "HEP-small", Build: func() *graph.Graph { return Collaboration(800, 400, 12, 202) }},
		{Name: "Amazon-small", Build: func() *graph.Graph { return Community(40, 12, 0.6, 2.0, 203) }},
		{Name: "Wiki-small", Build: func() *graph.Graph {
			return WithPlantedCliques(RMAT(9, 3, 0.57, 0.19, 0.19, 204), []int{12, 9}, 204)
		}},
		{Name: "BTC-small", Build: func() *graph.Graph { return RMAT(10, 3, 0.5, 0.22, 0.22, 205) }},
		{Name: "Web-small", Build: func() *graph.Graph {
			return WithPlantedCliques(RMAT(9, 4, 0.6, 0.18, 0.18, 206), []int{15, 10}, 206)
		}},
	}
}
