package gen

import "repro/internal/graph"

// PaperExample returns the running-example graph of Figure 2, reconstructed
// exactly from the k-classes listed in Example 2 of the paper. Vertices
// a..l map to IDs 0..11. It is the golden fixture for every decomposition
// algorithm in this repository.
func PaperExample() *graph.Graph {
	return graph.FromEdges(paperExampleEdges())
}

func paperExampleEdges() []graph.Edge {
	return []graph.Edge{
		{U: 8, V: 10}, // Phi2: (i,k)
		// Phi3
		{U: 3, V: 6}, {U: 3, V: 10}, {U: 3, V: 11}, {U: 4, V: 5}, {U: 4, V: 6},
		{U: 5, V: 6}, {U: 6, V: 7}, {U: 6, V: 10}, {U: 6, V: 11},
		// Phi4
		{U: 5, V: 7}, {U: 5, V: 8}, {U: 5, V: 9}, {U: 7, V: 8}, {U: 7, V: 9}, {U: 8, V: 9},
		// Phi5: the clique {a,b,c,d,e}
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4}, {U: 1, V: 2},
		{U: 1, V: 3}, {U: 1, V: 4}, {U: 2, V: 3}, {U: 2, V: 4}, {U: 3, V: 4},
	}
}

// PaperExamplePhi returns the expected truss number of every edge of
// PaperExample, keyed by canonical edge key.
func PaperExamplePhi() map[uint64]int32 {
	phi := map[uint64]int32{}
	classes := map[int32][][2]uint32{
		2: {{8, 10}},
		3: {{3, 6}, {3, 10}, {3, 11}, {4, 5}, {4, 6}, {5, 6}, {6, 7}, {6, 10}, {6, 11}},
		4: {{5, 7}, {5, 8}, {5, 9}, {7, 8}, {7, 9}, {8, 9}},
		5: {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 4}},
	}
	for k, edges := range classes {
		for _, e := range edges {
			phi[(graph.Edge{U: e[0], V: e[1]}).Key()] = k
		}
	}
	return phi
}

// Managers returns a deterministic 21-vertex "advice network" with the
// qualitative structure of the Figure 1 manager graph (the exact Krackhardt
// edge list is not printed in the paper; see DESIGN.md Substitutions):
//
//   - a non-empty 3-core but no 4-core,
//   - a non-empty 4-truss but no 5-truss,
//   - clustering coefficient increasing strictly from G to the 3-core to
//     the 4-truss, as in Example 1 (0.51 / 0.65 / 0.80 in the paper).
//
// Construction: two K4s sharing an edge (the 4-truss), a triangular prism
// (3-regular, lightly clustered: inside the 3-core but outside any
// 4-truss), pendant triangles (degree-2 vertices with local CC 1 that peel
// out of the 3-core yet keep CC(G) in the paper's range), and sparse
// connector paths. Measured coefficients: 0.44 / 0.60 / 0.87 against the
// paper's 0.51 / 0.65 / 0.80.
func Managers() *graph.Graph {
	edges := []graph.Edge{
		// K4 on {0,1,2,3}.
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 3},
		// K4 on {2,3,4,5} sharing edge (2,3).
		{U: 2, V: 4}, {U: 2, V: 5}, {U: 3, V: 4}, {U: 3, V: 5}, {U: 4, V: 5},
		// Triangular prism on {6..11}: 3-regular, two triangles joined by
		// a matching; in the 3-core, no edge reaches support 2 within it.
		{U: 6, V: 7}, {U: 7, V: 8}, {U: 6, V: 8},
		{U: 9, V: 10}, {U: 10, V: 11}, {U: 9, V: 11},
		{U: 6, V: 9}, {U: 7, V: 10}, {U: 8, V: 11},
		// Pendant triangles: degree-2 advisors with a fully connected pair
		// of contacts (local CC 1, outside the 3-core).
		{U: 12, V: 0}, {U: 12, V: 1},
		{U: 13, V: 4}, {U: 13, V: 5},
		{U: 14, V: 6}, {U: 14, V: 7},
		{U: 18, V: 9}, {U: 18, V: 10},
		// Connector paths (local CC 0).
		{U: 15, V: 9}, {U: 15, V: 16}, {U: 16, V: 17}, {U: 17, V: 2},
		{U: 19, V: 3}, {U: 19, V: 20}, {U: 20, V: 11},
	}
	return graph.FromEdges(edges)
}
