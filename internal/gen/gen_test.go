package gen

import (
	"testing"

	"repro/internal/graph"
)

func sameGraph(a, b *graph.Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			return false
		}
	}
	return true
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(100, 300, 1)
	if g.NumVertices() != 100 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if g.NumEdges() != 300 {
		t.Fatalf("m = %d, want 300 (distinct sampling)", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !sameGraph(g, ErdosRenyi(100, 300, 1)) {
		t.Fatal("not deterministic")
	}
	if sameGraph(g, ErdosRenyi(100, 300, 2)) {
		t.Fatal("different seeds gave identical graphs")
	}
}

func TestErdosRenyiSaturated(t *testing.T) {
	// Requesting more edges than possible must terminate with the complete
	// graph.
	g := ErdosRenyi(5, 100, 3)
	if g.NumEdges() != 10 {
		t.Fatalf("m = %d, want C(5,2)=10", g.NumEdges())
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(500, 4, 7)
	if g.NumVertices() != 500 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// Roughly n*mPer edges (the seed clique adds a few, dedup removes none).
	if g.NumEdges() < 450*4 || g.NumEdges() > 510*4 {
		t.Fatalf("m = %d out of expected range", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !sameGraph(g, BarabasiAlbert(500, 4, 7)) {
		t.Fatal("not deterministic")
	}
	// Power-law-ish: the max degree should far exceed the mean.
	mean := 2 * g.NumEdges() / g.NumVertices()
	if g.MaxDegree() < 3*mean {
		t.Fatalf("max degree %d vs mean %d: no heavy tail", g.MaxDegree(), mean)
	}
}

func TestRMAT(t *testing.T) {
	g := RMAT(10, 4, 0.57, 0.19, 0.19, 5)
	if g.NumVertices() != 1024 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if g.NumEdges() == 0 || g.NumEdges() > 4*1024 {
		t.Fatalf("m = %d", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !sameGraph(g, RMAT(10, 4, 0.57, 0.19, 0.19, 5)) {
		t.Fatal("not deterministic")
	}
	mean := 2 * g.NumEdges() / g.NumVertices()
	if g.MaxDegree() < 3*mean {
		t.Fatalf("max degree %d vs mean %d: no heavy tail", g.MaxDegree(), mean)
	}
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(200, 6, 0.1, 9)
	if g.NumVertices() != 200 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !sameGraph(g, WattsStrogatz(200, 6, 0.1, 9)) {
		t.Fatal("not deterministic")
	}
}

func TestCollaboration(t *testing.T) {
	g := Collaboration(500, 300, 10, 11)
	if g.NumVertices() != 500 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if g.NumEdges() == 0 {
		t.Fatal("no edges")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !sameGraph(g, Collaboration(500, 300, 10, 11)) {
		t.Fatal("not deterministic")
	}
}

func TestCommunity(t *testing.T) {
	g := Community(10, 12, 0.7, 1.0, 13)
	if g.NumVertices() != 120 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !sameGraph(g, Community(10, 12, 0.7, 1.0, 13)) {
		t.Fatal("not deterministic")
	}
}

func TestWithPlantedCliques(t *testing.T) {
	base := ErdosRenyi(100, 50, 15)
	g := WithPlantedCliques(base, []int{10, 8}, 15)
	if g.NumVertices() != 100 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if g.NumEdges() < base.NumEdges() {
		t.Fatal("planted cliques lost edges")
	}
	// All base edges preserved.
	for _, e := range base.Edges() {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("base edge %v missing", e)
		}
	}
	if !sameGraph(g, WithPlantedCliques(base, []int{10, 8}, 15)) {
		t.Fatal("not deterministic")
	}
	// Oversized clique request is clamped to n.
	h := WithPlantedCliques(ErdosRenyi(5, 2, 1), []int{50}, 2)
	if h.NumEdges() != 10 {
		t.Fatalf("clamped clique edges = %d, want 10", h.NumEdges())
	}
}

func TestWithHubs(t *testing.T) {
	base := Community(20, 10, 0.5, 1.0, 4)
	g := WithHubs(base, 3, 60, 4)
	if g.NumVertices() != base.NumVertices() {
		t.Fatalf("n changed: %d vs %d", g.NumVertices(), base.NumVertices())
	}
	if g.MaxDegree() <= base.MaxDegree() {
		t.Fatalf("hub overlay did not raise dmax: %d vs %d", g.MaxDegree(), base.MaxDegree())
	}
	for _, e := range base.Edges() {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("base edge %v lost", e)
		}
	}
	if !sameGraph(g, WithHubs(base, 3, 60, 4)) {
		t.Fatal("not deterministic")
	}
	// Degenerate base: returned unchanged.
	tiny := graph.FromEdges(nil)
	if WithHubs(tiny, 2, 5, 1) != tiny {
		t.Fatal("empty graph should pass through")
	}
}

func TestPaperExampleFixture(t *testing.T) {
	g := PaperExample()
	if g.NumVertices() != 12 || g.NumEdges() != 26 {
		t.Fatalf("paper example n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	phi := PaperExamplePhi()
	if len(phi) != 26 {
		t.Fatalf("phi entries = %d", len(phi))
	}
	for _, e := range g.Edges() {
		if _, ok := phi[e.Key()]; !ok {
			t.Fatalf("edge %v missing from phi map", e)
		}
	}
}

func TestManagersFixtureShape(t *testing.T) {
	g := Managers()
	if g.NumVertices() != 21 {
		t.Fatalf("managers n = %d, want 21", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Connectivity: an advice network should be one component.
	_, count := graph.ConnectedComponents(g)
	if count != 1 {
		t.Fatalf("managers has %d components", count)
	}
}

func TestDatasetsRegistry(t *testing.T) {
	ds := Datasets()
	if len(ds) != 9 {
		t.Fatalf("datasets = %d, want 9", len(ds))
	}
	names := map[string]bool{}
	for _, d := range ds {
		if names[d.Name] {
			t.Fatalf("duplicate dataset %s", d.Name)
		}
		names[d.Name] = true
		if d.Build == nil || d.Paper.V == 0 {
			t.Fatalf("dataset %s incomplete", d.Name)
		}
	}
	if _, ok := DatasetByName("HEP"); !ok {
		t.Fatal("HEP missing")
	}
	if _, ok := DatasetByName("nope"); ok {
		t.Fatal("lookup invented a dataset")
	}
}

func TestSmallDatasetsBuild(t *testing.T) {
	for _, d := range SmallDatasets() {
		g := d.Build()
		if g.NumEdges() == 0 {
			t.Fatalf("%s: empty", d.Name)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
	}
}
