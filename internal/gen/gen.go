// Package gen produces deterministic synthetic graphs. Because the paper's
// SNAP/Yahoo/BTC datasets cannot be downloaded in this offline environment,
// every experiment runs on a generated analog whose degree skew and triangle
// density match the character of the original (see DESIGN.md, Substitutions).
//
// All generators are deterministic functions of their seed.
package gen

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// sortedKeys returns a map's keys in increasing order, for deterministic
// iteration.
func sortedKeys(m map[uint32]bool) []uint32 {
	out := make([]uint32, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ErdosRenyi samples a G(n,m) graph: m distinct uniform random edges.
func ErdosRenyi(n, m int, seed int64) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(m)
	if n > 1 {
		seen := make(map[uint64]bool, m)
		for len(seen) < m && len(seen) < n*(n-1)/2 {
			u := uint32(r.Intn(n))
			v := uint32(r.Intn(n))
			if u == v {
				continue
			}
			k := (graph.Edge{U: u, V: v}).Key()
			if seen[k] {
				continue
			}
			seen[k] = true
			b.AddEdge(u, v)
		}
	}
	b.DeclareVertex(uint32(n - 1))
	return b.Build()
}

// BarabasiAlbert grows a preferential-attachment graph: each new vertex
// attaches to mPer existing vertices chosen proportionally to degree,
// yielding a power-law degree distribution (models P2P-style networks).
func BarabasiAlbert(n, mPer int, seed int64) *graph.Graph {
	if mPer < 1 {
		mPer = 1
	}
	r := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n * mPer)
	// Repeated-endpoint list: sampling an index uniformly is sampling a
	// vertex proportionally to its degree.
	targets := make([]uint32, 0, 2*n*mPer)
	// Seed clique of mPer+1 vertices.
	seedSize := mPer + 1
	if seedSize > n {
		seedSize = n
	}
	for i := 0; i < seedSize; i++ {
		for j := i + 1; j < seedSize; j++ {
			b.AddEdge(uint32(i), uint32(j))
			targets = append(targets, uint32(i), uint32(j))
		}
	}
	for v := seedSize; v < n; v++ {
		chosen := map[uint32]bool{}
		for len(chosen) < mPer && len(chosen) < v {
			var w uint32
			if len(targets) == 0 {
				w = uint32(r.Intn(v))
			} else {
				w = targets[r.Intn(len(targets))]
			}
			if int(w) >= v || chosen[w] {
				continue
			}
			chosen[w] = true
		}
		// Sorted materialization keeps the generator deterministic: map
		// iteration order must not leak into the target list.
		for _, w := range sortedKeys(chosen) {
			b.AddEdge(uint32(v), w)
			targets = append(targets, uint32(v), w)
		}
	}
	b.DeclareVertex(uint32(n - 1))
	return b.Build()
}

// RMAT samples a recursive-matrix graph over n = 2^scale vertices with
// approximately edgeFactor*n distinct edges, using quadrant probabilities
// (a, b, c, 1-a-b-c). Heavy-tailed like web/social graphs (models Wiki,
// Skitter, Blog, BTC).
func RMAT(scale uint, edgeFactor int, a, b, c float64, seed int64) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	n := 1 << scale
	m := edgeFactor * n
	bd := graph.NewBuilder(m)
	for i := 0; i < m; i++ {
		u, v := 0, 0
		for bit := 0; bit < int(scale); bit++ {
			p := r.Float64()
			switch {
			case p < a:
				// top-left: nothing to add
			case p < a+b:
				v |= 1 << bit
			case p < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		bd.AddEdge(uint32(u), uint32(v))
	}
	bd.DeclareVertex(uint32(n - 1))
	return bd.Build()
}

// WattsStrogatz builds a small-world ring lattice: n vertices, each linked
// to its k nearest neighbors (k/2 per side), with each edge rewired to a
// random endpoint with probability beta. High clustering at low beta
// (models co-purchase networks like Amazon).
func WattsStrogatz(n, k int, beta float64, seed int64) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n * k / 2)
	half := k / 2
	if half < 1 {
		half = 1
	}
	for v := 0; v < n; v++ {
		for j := 1; j <= half; j++ {
			w := (v + j) % n
			if r.Float64() < beta {
				w = r.Intn(n)
				if w == v {
					w = (v + 1) % n
				}
			}
			b.AddEdge(uint32(v), uint32(w))
		}
	}
	b.DeclareVertex(uint32(n - 1))
	return b.Build()
}

// Collaboration builds a clique-affiliation graph: nPapers "papers" each
// select a power-law-distributed number of "authors" (2..maxAuthors) with
// preferential attachment, and every paper induces a clique among its
// authors. Collaboration networks like HEP get their large kmax from
// exactly such multi-author cliques.
func Collaboration(nAuthors, nPapers, maxAuthors int, seed int64) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	if maxAuthors < 2 {
		maxAuthors = 2
	}
	b := graph.NewBuilder(nPapers * 4)
	active := make([]uint32, 0, nPapers*3)
	for p := 0; p < nPapers; p++ {
		// Power-law paper size: P(s) ~ s^-2 over [2, maxAuthors].
		s := 2 + int(float64(maxAuthors-2)*math.Pow(r.Float64(), 3.0))
		authors := map[uint32]bool{}
		for len(authors) < s {
			var a uint32
			if len(active) > 0 && r.Float64() < 0.5 {
				a = active[r.Intn(len(active))]
			} else {
				a = uint32(r.Intn(nAuthors))
			}
			authors[a] = true
		}
		list := sortedKeys(authors)
		active = append(active, list...)
		for i := 0; i < len(list); i++ {
			for j := i + 1; j < len(list); j++ {
				b.AddEdge(list[i], list[j])
			}
		}
	}
	b.DeclareVertex(uint32(nAuthors - 1))
	return b.Build()
}

// Community builds a planted-partition graph: nCommunities blocks of the
// given size, with edge probability pIn inside a block and expected
// interPerVertex random cross-block edges per vertex.
func Community(nCommunities, size int, pIn float64, interPerVertex float64, seed int64) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	n := nCommunities * size
	b := graph.NewBuilder(n * 4)
	for cblock := 0; cblock < nCommunities; cblock++ {
		base := cblock * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				if r.Float64() < pIn {
					b.AddEdge(uint32(base+i), uint32(base+j))
				}
			}
		}
	}
	inter := int(float64(n) * interPerVertex)
	for i := 0; i < inter; i++ {
		b.AddEdge(uint32(r.Intn(n)), uint32(r.Intn(n)))
	}
	b.DeclareVertex(uint32(n - 1))
	return b.Build()
}

// WithHubs overlays nHubs hub vertices on g: each hub is a random existing
// vertex that gains edges to degEach random others. Co-purchase and social
// graphs owe their degree tails to such hubs (bestsellers, celebrities);
// planted-partition models lack them, so the Amazon analog adds them back.
func WithHubs(g *graph.Graph, nHubs, degEach int, seed int64) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	n := g.NumVertices()
	if n < 2 {
		return g
	}
	b := graph.NewBuilder(g.NumEdges() + nHubs*degEach)
	for _, e := range g.Edges() {
		b.AddEdge(e.U, e.V)
	}
	for h := 0; h < nHubs; h++ {
		hub := uint32(r.Intn(n))
		for i := 0; i < degEach; i++ {
			w := uint32(r.Intn(n))
			if w != hub {
				b.AddEdge(hub, w)
			}
		}
	}
	b.DeclareVertex(uint32(n - 1))
	return b.Build()
}

// WithPlantedCliques overlays cliques of the given sizes on random distinct
// vertex subsets of g, returning a new graph. Web graphs owe their very
// large kmax to dense link farms; this reproduces that structure.
func WithPlantedCliques(g *graph.Graph, sizes []int, seed int64) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	n := g.NumVertices()
	b := graph.NewBuilder(g.NumEdges() + 1024)
	for _, e := range g.Edges() {
		b.AddEdge(e.U, e.V)
	}
	for _, s := range sizes {
		if s > n {
			s = n
		}
		chosen := map[uint32]bool{}
		for len(chosen) < s {
			chosen[uint32(r.Intn(n))] = true
		}
		list := sortedKeys(chosen)
		for i := 0; i < len(list); i++ {
			for j := i + 1; j < len(list); j++ {
				b.AddEdge(list[i], list[j])
			}
		}
	}
	if n > 0 {
		b.DeclareVertex(uint32(n - 1))
	}
	return b.Build()
}
