// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 7) on the synthetic dataset analogs, printing
// markdown tables that pair each measured value with what the paper
// reports for the original datasets. cmd/experiments is a thin CLI over
// this package, and EXPERIMENTS.md records a captured run.
package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/embu"
	"repro/internal/emtd"
	"repro/internal/gen"
	"repro/internal/gio"
	"repro/internal/graph"
	"repro/internal/kcore"
	"repro/internal/mapreduce"
	"repro/internal/metrics"
)

// Options configures an experiment run.
type Options struct {
	// Quick selects the ~1/10-scale dataset variants.
	Quick bool
	// TempDir holds the external algorithms' spools.
	TempDir string
	// Out receives the rendered tables.
	Out io.Writer
	// MRDatasets lists dataset names TD-MR runs on (default P2P and HEP,
	// as in the paper — the larger sets are reported as "-" there too).
	MRDatasets []string
	// Ctx, when non-nil, bounds the run: cancelling it aborts the
	// external decompositions at their next partition round (cmd/
	// experiments wires SIGINT here).
	Ctx context.Context
}

func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

func (o Options) datasets() []gen.Dataset {
	if o.Quick {
		return gen.QuickDatasets()
	}
	return gen.Datasets()
}

func (o Options) cacheKey(name string) string {
	if o.Quick {
		return "quick/" + name
	}
	return "full/" + name
}

func (o Options) mrSet() map[string]bool {
	names := o.MRDatasets
	if names == nil {
		names = []string{"P2P", "HEP"}
	}
	set := map[string]bool{}
	for _, n := range names {
		set[n] = true
	}
	return set
}

// budgetFor mimics the paper's out-of-core regime (a 4GB machine against
// graphs whose adjacency form exceeds memory): the budget is 60% of the
// graph's 2m adjacency entries, so LowerBounding must partition and the
// earliest (largest) candidate subgraphs overflow into Procedures 9/10,
// while later candidates fit — matching the paper's "H fits in memory in
// most cases" observation.
func budgetFor(g *graph.Graph) int64 {
	b := int64(g.NumEdges()) * 6 / 5 // = 2m entries * 0.6
	if b < 1<<12 {
		b = 1 << 12
	}
	return b
}

func (o Options) printf(format string, args ...any) {
	fmt.Fprintf(o.Out, format, args...)
}

func secs(d time.Duration) string { return fmt.Sprintf("%.2f", d.Seconds()) }

func mb(bytes uint64) string { return fmt.Sprintf("%.0fM", float64(bytes)/(1<<20)) }

// heapDelta runs fn and returns its wall time and the growth of the live
// heap across the call (an approximation of peak usage: both algorithms
// retain their result until the measurement completes).
func heapDelta(fn func()) (time.Duration, uint64) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	fn()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	var delta uint64
	if after.HeapAlloc > before.HeapAlloc {
		delta = after.HeapAlloc - before.HeapAlloc
	}
	return elapsed, delta
}

// Figure1 reproduces Example 1: clustering coefficients of the manager
// graph, its 3-core, and its 4-truss (paper: 0.51 / 0.65 / 0.80).
func Figure1(o Options) error {
	g := gen.Managers()
	co := kcore.Decompose(g)
	tr := core.Decompose(g)
	core3 := co.KCore(3)
	truss4 := tr.Truss(4)

	o.printf("## Figure 1 — manager graph: 3-core vs 4-truss (analog fixture)\n\n")
	o.printf("| subgraph | vertices | edges | clustering coefficient | paper CC |\n")
	o.printf("|---|---|---|---|---|\n")
	o.printf("| G | %d | %d | %.2f | 0.51 |\n", g.NumVertices(), g.NumEdges(), metrics.ClusteringCoefficient(g))
	o.printf("| 3-core | %d | %d | %.2f | 0.65 |\n", activeV(core3), core3.NumEdges(), metrics.ClusteringCoefficient(core3))
	o.printf("| 4-truss | %d | %d | %.2f | 0.80 |\n", activeV(truss4), truss4.NumEdges(), metrics.ClusteringCoefficient(truss4))
	o.printf("\n4-core empty: %v (paper: yes); 5-truss empty: %v (paper: yes)\n\n",
		co.KCore(4).NumEdges() == 0, tr.Truss(5).NumEdges() == 0)
	return nil
}

func activeV(g *graph.Graph) int {
	v := 0
	for i := 0; i < g.NumVertices(); i++ {
		if g.Degree(uint32(i)) > 0 {
			v++
		}
	}
	return v
}

// Figure2 verifies the running example's k-classes exactly.
func Figure2(o Options) error {
	g := gen.PaperExample()
	r := core.Decompose(g)
	sizes := r.ClassSizes()
	o.printf("## Figure 2 — running example k-classes (exact reconstruction)\n\n")
	o.printf("| class | measured size | paper size |\n|---|---|---|\n")
	want := map[int32]int64{2: 1, 3: 9, 4: 6, 5: 10}
	for k := int32(2); k <= 5; k++ {
		o.printf("| Phi_%d | %d | %d |\n", k, sizes[k], want[k])
	}
	o.printf("\nkmax = %d (paper: 5)\n\n", r.KMax)
	return nil
}

// Table2 prints dataset statistics for every analog alongside the paper's
// originals.
func Table2(o Options) error {
	o.printf("## Table 2 — dataset statistics (synthetic analogs vs paper originals)\n\n")
	o.printf("| dataset | |V| | |E| | size | dmax | dmed | kmax | paper |V| | paper |E| | paper kmax |\n")
	o.printf("|---|---|---|---|---|---|---|---|---|---|\n")
	for _, d := range o.datasets() {
		g := gen.CachedBuild(o.cacheKey(d.Name), d)
		st := metrics.Stats(g)
		o.printf("| %s | %d | %d | %s | %d | %d | %d | %d | %d | %d |\n",
			d.Name, st.V, st.E, fmtBytes(st.SizeBytes), st.DMax, st.DMed, st.KMax,
			d.Paper.V, d.Paper.E, d.Paper.KMax)
	}
	o.printf("\n")
	return nil
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fG", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fM", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fK", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// Table3 compares the two in-memory algorithms on the four mid-size
// datasets the paper uses (Wiki, Amazon, Skitter, Blog).
func Table3(o Options) error {
	o.printf("## Table 3 — TD-inmem vs TD-inmem+ (in-memory algorithms)\n\n")
	o.printf("| dataset | TD-inmem (s) | TD-inmem+ (s) | speedup | paper speedup | mem TD-inmem | mem TD-inmem+ |\n")
	o.printf("|---|---|---|---|---|---|---|\n")
	paperSpeedup := map[string]string{"Wiki": "73.2x", "Amazon": "2.2x", "Skitter": "32.8x", "Blog": "3.5x"}
	for _, name := range []string{"Wiki", "Amazon", "Skitter", "Blog"} {
		d, ok := datasetByName(o, name)
		if !ok {
			continue
		}
		g := gen.CachedBuild(o.cacheKey(d.Name), d)
		var base, impr *core.Result
		tBase, mBase := heapDelta(func() { base = core.DecomposeBaseline(g) })
		tImpr, mImpr := heapDelta(func() { impr = core.Decompose(g) })
		if base.KMax != impr.KMax {
			return fmt.Errorf("table 3: %s kmax mismatch %d vs %d", name, base.KMax, impr.KMax)
		}
		o.printf("| %s | %s | %s | %.1fx | %s | %s | %s |\n",
			name, secs(tBase), secs(tImpr),
			tBase.Seconds()/tImpr.Seconds(), paperSpeedup[name], mb(mBase), mb(mImpr))
	}
	o.printf("\nPaper shape: TD-inmem+ wins on every dataset, most on hub-heavy graphs (Wiki, Skitter).\n\n")
	return nil
}

func datasetByName(o Options, name string) (gen.Dataset, bool) {
	for _, d := range o.datasets() {
		if d.Name == name {
			return d, true
		}
	}
	return gen.Dataset{}, false
}

// Table4 compares TD-bottomup with TD-MR. As in the paper, TD-MR runs only
// on the two smallest datasets; the large three get bottom-up numbers with
// a constrained memory budget.
func Table4(o Options) error {
	o.printf("## Table 4 — TD-bottomup vs TD-MR\n\n")
	o.printf("| dataset | TD-bottomup (s) | I/Os (4KB blocks) | TD-MR sim (s) | MR rounds | MR cluster-model (s) | paper bottomup (s) | paper MR (s) |\n")
	o.printf("|---|---|---|---|---|---|---|---|\n")
	paperBU := map[string]string{"P2P": "<1", "HEP": "<1", "LJ": "664", "BTC": "1768", "Web": "6314"}
	paperMR := map[string]string{"P2P": "4200", "HEP": "14760", "LJ": "-", "BTC": "-", "Web": "-"}
	mrSet := o.mrSet()
	for _, name := range []string{"P2P", "HEP", "LJ", "BTC", "Web"} {
		d, ok := datasetByName(o, name)
		if !ok {
			continue
		}
		g := gen.CachedBuild(o.cacheKey(d.Name), d)
		var st gio.Stats
		cfg := embu.Config{Budget: budgetFor(g), Seed: 1, TempDir: o.TempDir, Stats: &st}
		start := time.Now()
		res, err := embu.DecomposeGraph(o.ctx(), g, cfg)
		if err != nil {
			return fmt.Errorf("table 4: %s bottom-up: %w", name, err)
		}
		buTime := time.Since(start)
		kmax := res.KMax
		res.Close()

		mrTime, mrRounds, mrModel := "-", "-", "-"
		if mrSet[name] {
			start = time.Now()
			mres := mapreduce.TrussDecompose(g)
			el := time.Since(start)
			if mres.KMax != kmax {
				return fmt.Errorf("table 4: %s kmax mismatch bottomup %d vs MR %d", name, kmax, mres.KMax)
			}
			mrTime = secs(el)
			mrRounds = fmt.Sprintf("%d", mres.Counters.Rounds)
			// A 2009-era Hadoop round costs ~15s of scheduling and HDFS
			// materialization regardless of data volume; the paper's MR
			// wall times divided by our measured round counts land at
			// 11-21 s/round, validating the model.
			mrModel = fmt.Sprintf("%d", mres.Counters.Rounds*15)
		}
		o.printf("| %s | %s | %d | %s | %s | %s | %s | %s |\n",
			name, secs(buTime), st.IOs(gio.DefaultBlockSize), mrTime, mrRounds, mrModel,
			paperBU[name], paperMR[name])
	}
	o.printf("\nPaper shape: TD-MR is 3-4 orders of magnitude slower than TD-bottomup on the small sets\n")
	o.printf("and infeasible beyond them; the iterative triangle-enumeration rounds are the cause.\n")
	o.printf("The simulator runs in-process; the cluster-model column charges the per-round latency\n")
	o.printf("a real Hadoop deployment pays (paper MR time / our round count = 11-21 s/round).\n\n")
	return nil
}

// Table5 compares TD-topdown (top-20 and all classes) with TD-bottomup on
// the three large datasets.
func Table5(o Options) error {
	o.printf("## Table 5 — TD-topdown vs TD-bottomup (large datasets)\n\n")
	o.printf("| dataset | topdown top-20 (s) | topdown all (s) | bottomup (s) | paper top-20 | paper all | paper bottomup |\n")
	o.printf("|---|---|---|---|---|---|---|\n")
	paper := map[string][3]string{
		"LJ":  {"149", "941", "664"},
		"BTC": {"1744", "1744", "1768"},
		"Web": {"2354", "-", "6314"},
	}
	for _, name := range []string{"LJ", "BTC", "Web"} {
		d, ok := datasetByName(o, name)
		if !ok {
			continue
		}
		g := gen.CachedBuild(o.cacheKey(d.Name), d)
		budget := budgetFor(g)

		run := func(topT int) (time.Duration, int32, error) {
			cfg := emtd.Config{TopT: topT, Budget: budget, Seed: 1, TempDir: o.TempDir}
			start := time.Now()
			res, err := emtd.DecomposeGraph(o.ctx(), g, cfg)
			if err != nil {
				return 0, 0, err
			}
			el := time.Since(start)
			kmax := res.KMax
			res.Close()
			return el, kmax, nil
		}
		t20, kmax20, err := run(20)
		if err != nil {
			return fmt.Errorf("table 5: %s top-20: %w", name, err)
		}
		tAll, kmaxAll, err := run(0)
		if err != nil {
			return fmt.Errorf("table 5: %s all: %w", name, err)
		}
		if kmax20 != kmaxAll {
			return fmt.Errorf("table 5: %s kmax mismatch %d vs %d", name, kmax20, kmaxAll)
		}

		cfgBU := embu.Config{Budget: budget, Seed: 1, TempDir: o.TempDir}
		start := time.Now()
		bres, err := embu.DecomposeGraph(o.ctx(), g, cfgBU)
		if err != nil {
			return fmt.Errorf("table 5: %s bottomup: %w", name, err)
		}
		tBU := time.Since(start)
		if bres.KMax != kmaxAll {
			return fmt.Errorf("table 5: %s kmax mismatch topdown %d vs bottomup %d", name, kmaxAll, bres.KMax)
		}
		bres.Close()

		p := paper[name]
		o.printf("| %s | %s | %s | %s | %s | %s | %s |\n",
			name, secs(t20), secs(tAll), secs(tBU), p[0], p[1], p[2])
	}
	o.printf("\nPaper shape: top-20 beats bottom-up where kmax is large (LJ, Web); with kmax < 20\n(BTC) top-down computes everything anyway and matches bottom-up.\n\n")
	return nil
}

// Table6 compares the kmax-truss with the cmax-core on the seven datasets
// the paper lists.
func Table6(o Options) error {
	o.printf("## Table 6 — kmax-truss (T) vs cmax-core (C)\n\n")
	o.printf("| dataset | V_T/V_C | E_T/E_C | kmax/cmax | CC_T/CC_C | paper kmax/cmax | paper CC_T/CC_C |\n")
	o.printf("|---|---|---|---|---|---|---|\n")
	paper := map[string][2]string{
		"Amazon":  {"11/10", "0.99/0.72"},
		"Wiki":    {"53/131", "0.64/0.42"},
		"Skitter": {"68/111", "0.95/0.71"},
		"Blog":    {"49/86", "1.00/0.52"},
		"LJ":      {"362/372", "1.00/0.99"},
		"BTC":     {"7/641", "0.45/0.00002"},
		"Web":     {"166/165", "1.00/0.59"},
	}
	for _, name := range []string{"Amazon", "Wiki", "Skitter", "Blog", "LJ", "BTC", "Web"} {
		d, ok := datasetByName(o, name)
		if !ok {
			continue
		}
		g := gen.CachedBuild(o.cacheKey(d.Name), d)
		ts, cs := metrics.TrussVsCore(g)
		p := paper[name]
		o.printf("| %s | %d/%d | %d/%d | %d/%d | %.2f/%.2f | %s | %s |\n",
			name, ts.V, cs.V, ts.E, cs.E, ts.K, cs.K, ts.CC, cs.CC, p[0], p[1])
	}
	o.printf("\nPaper shape: the kmax-truss is (much) smaller than the cmax-core and more clustered;\nkmax <= cmax+1 always holds.\n\n")
	return nil
}

// All runs every figure and table in paper order.
func All(o Options) error {
	for _, fn := range []func(Options) error{Figure1, Figure2, Table2, Table3, Table4, Table5, Table6} {
		if err := fn(o); err != nil {
			return err
		}
	}
	return nil
}
