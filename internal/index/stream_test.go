package index

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/embu"
	"repro/internal/gen"
	"repro/internal/gio"
	"repro/internal/graph"
)

// resultStream re-streams an in-memory Result in reverse edge-ID order —
// deliberately not the canonical order, to prove BuildFromStream does
// not depend on how the engine happens to emit edges.
func resultStream(r *core.Result) EdgeStream {
	return func(fn func(u, v uint32, phi int32) error) error {
		for id := len(r.Phi) - 1; id >= 0; id-- {
			e := r.G.Edge(int32(id))
			if err := fn(e.U, e.V, r.Phi[id]); err != nil {
				return err
			}
		}
		return nil
	}
}

// TestBuildFromStreamMatchesBuild is the structural half of the
// acceptance bar: reconstructing an index from an edge stream — whether
// re-streamed from an in-memory Result or read back from a bottom-up
// engine's disk spool — must yield an index structurally identical to
// Build over the equivalent Result, community tables included.
func TestBuildFromStreamMatchesBuild(t *testing.T) {
	ctx := context.Background()
	graphs := map[string]*graph.Graph{
		"paper":   gen.PaperExample(),
		"ba":      gen.BarabasiAlbert(200, 4, 3),
		"cliques": gen.WithPlantedCliques(gen.ErdosRenyi(80, 200, 1), []int{7, 5}, 2),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			res := core.Decompose(g)
			want := Build(res)

			t.Run("from-result-stream", func(t *testing.T) {
				got, err := BuildFromStream(ctx, g.NumVertices(), resultStream(res))
				if err != nil {
					t.Fatal(err)
				}
				sameIndex(t, got, want)
			})

			t.Run("from-bottomup-spool", func(t *testing.T) {
				bu, err := embu.DecomposeGraph(ctx, g, embu.Config{
					Budget: int64(g.NumEdges()), Seed: 1, TempDir: t.TempDir(),
				})
				if err != nil {
					t.Fatal(err)
				}
				defer bu.Close()
				got, err := BuildFromStream(ctx, bu.NumVertices, func(fn func(u, v uint32, phi int32) error) error {
					return bu.Classes.ForEach(func(r gio.EdgeAux) error {
						return fn(r.U, r.V, r.Aux)
					})
				})
				if err != nil {
					t.Fatal(err)
				}
				sameIndex(t, got, want)
			})
		})
	}
}

// TestBuildFromStreamGrowsVertexSpace: vertex IDs beyond the declared
// count widen the graph instead of failing.
func TestBuildFromStreamGrowsVertexSpace(t *testing.T) {
	ix, err := BuildFromStream(context.Background(), 2, func(fn func(u, v uint32, phi int32) error) error {
		return fn(5, 9, 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Graph().NumVertices() != 10 || ix.NumEdges() != 1 {
		t.Fatalf("n=%d m=%d, want 10/1", ix.Graph().NumVertices(), ix.NumEdges())
	}
}

// TestBuildFromStreamRejectsCorruptStreams: duplicates and self-loops
// are decomposition corruption, not input to be cleaned up.
func TestBuildFromStreamRejectsCorruptStreams(t *testing.T) {
	ctx := context.Background()
	cases := map[string][][3]int64{ // u, v, phi
		"duplicate":          {{1, 2, 3}, {3, 4, 2}, {2, 1, 4}},
		"self-loop":          {{1, 1, 2}},
		"duplicate-same-phi": {{1, 2, 3}, {1, 2, 3}},
		"negative-phi":       {{1, 2, -1}},
		"below-range-phi":    {{1, 2, 1}},
	}
	for name, edges := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := BuildFromStream(ctx, 0, func(fn func(u, v uint32, phi int32) error) error {
				for _, e := range edges {
					if err := fn(uint32(e[0]), uint32(e[1]), int32(e[2])); err != nil {
						return err
					}
				}
				return nil
			})
			if err == nil {
				t.Fatalf("%s stream accepted", name)
			}
			if !strings.Contains(err.Error(), "index:") {
				t.Fatalf("error %q does not identify the layer", err)
			}
		})
	}
}

// TestBuildFromStreamCancellation: a canceled context aborts the
// consuming loop promptly with ctx.Err().
func TestBuildFromStreamCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := core.Decompose(gen.BarabasiAlbert(200, 4, 3))
	_, err := BuildFromStream(ctx, res.G.NumVertices(), resultStream(res))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestBuildFromStreamEmpty: an empty stream yields an empty but usable
// index.
func TestBuildFromStreamEmpty(t *testing.T) {
	ix, err := BuildFromStream(context.Background(), 4, func(fn func(u, v uint32, phi int32) error) error {
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumEdges() != 0 || ix.KMax() != 0 || ix.Graph().NumVertices() != 4 {
		t.Fatalf("empty stream: m=%d kmax=%d n=%d", ix.NumEdges(), ix.KMax(), ix.Graph().NumVertices())
	}
	if _, ok := ix.TrussNumber(0, 1); ok {
		t.Fatal("lookup on empty index found an edge")
	}
}
