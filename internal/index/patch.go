package index

import (
	"repro/internal/dsu"
	"repro/internal/graph"
	"repro/internal/triangle"
)

// Patch derives the index of an updated decomposition from this one
// without rebuilding the parts the update provably did not touch. g, phi
// and kmax describe the post-batch decomposition (as produced by
// dynamic.Update), re is the edge-ID remap of the batch, and changed
// lists the new-graph IDs whose truss number was not carried over
// unchanged (every re-assigned edge plus every inserted one). The
// receiver is not modified; like Build, the result retains g by
// reference and copies phi.
//
// The per-edge permutation tables are always rebuilt — they are O(m) and
// index every edge ID, which the batch renumbered. The expensive state is
// the per-level community tables. Let kTouched be the highest truss
// number involved in the delta (old or new value of any changed, inserted
// or deleted edge). A triangle's minimum truss number can only have
// changed if one of its edges is in the delta, so every triangle at
// min-phi > kTouched — and with it the union-find snapshot of every level
// above kTouched — is untouched: those tables are translated through the
// remap (the remap preserves relative edge order, so grouping and
// tie-breaking survive verbatim). Only levels 3..kTouched are
// re-componentized, and only from triangles at min-phi <= kTouched —
// enumerated around the edges of those low classes, never the whole
// graph — seeded with the first untouched level's components.
func (ix *TrussIndex) Patch(g *graph.Graph, phi []int32, kmax int32, re *graph.Remap, changed []int32) *TrussIndex {
	ix2 := &TrussIndex{
		g:    g,
		phi:  append([]int32(nil), phi...),
		kmax: kmax,
	}
	ix2.initArrays()
	ix2.levels = make([]level, kmax+1)
	if kmax < 3 {
		return ix2
	}

	kTouched := int32(2)
	for _, c := range changed {
		if phi[c] > kTouched {
			kTouched = phi[c]
		}
		if old := re.NewToOld[c]; old >= 0 && ix.phi[old] > kTouched {
			kTouched = ix.phi[old]
		}
	}
	for _, d := range re.Deleted {
		if ix.phi[d] > kTouched {
			kTouched = ix.phi[d]
		}
	}
	if kTouched >= kmax {
		// The delta reaches the top of the hierarchy: nothing to reuse.
		ix2.buildLevels()
		return ix2
	}

	// Translate the untouched levels (kTouched+1 .. kmax). Every edge of
	// old T_k for k > kTouched survived the batch with its truss number
	// intact, so the community structure is identical modulo edge IDs.
	for k := kTouched + 1; k <= kmax; k++ {
		old := &ix.levels[k]
		lv := level{
			edgeOrder: make([]int32, len(old.edgeOrder)),
			commOff:   append([]int32(nil), old.commOff...),
			commIdx:   make([]int32, ix2.cnt[k]),
		}
		for i, oldID := range old.edgeOrder {
			lv.edgeOrder[i] = re.OldToNew[oldID]
		}
		for c := 0; c+1 < len(lv.commOff); c++ {
			for _, e := range lv.edgeOrder[lv.commOff[c]:lv.commOff[c+1]] {
				lv.commIdx[ix2.pos[e]] = int32(c)
			}
		}
		ix2.levels[k] = lv
	}

	// Re-componentize the touched levels, folding in the first untouched
	// level's components: T_{kTouched+1}'s connectivity summarizes every
	// triangle at min-phi > kTouched, so those triangles need not be
	// enumerated again.
	uf := dsu.New(len(phi))
	first := &ix2.levels[kTouched+1]
	for c := 0; c+1 < len(first.commOff); c++ {
		seg := first.edgeOrder[first.commOff[c]:first.commOff[c+1]]
		for i := 1; i < len(seg); i++ {
			uf.Union(seg[0], seg[i])
		}
	}

	// Triangles at min-phi in [3, kTouched] all have their minimum on an
	// edge of a touched class; enumerating around those edges finds each
	// such triangle at least once, and charging it to its smallest
	// minimum-phi edge counts it exactly once.
	buckets := make([][]int32, kTouched+1) // flattened (e1,e2,e3) triples per min-phi
	for i := ix2.cnt[kTouched+1]; i < ix2.cnt[3]; i++ {
		e := ix2.byPhi[i] // classes 3..kTouched: a byPhi segment
		ed := g.Edge(e)
		triangle.ForEachOf(g, ed.U, ed.V, func(a, b int32) {
			mn := phi[e]
			if phi[a] < mn {
				mn = phi[a]
			}
			if phi[b] < mn {
				mn = phi[b]
			}
			charge := e
			if phi[a] == mn && a < charge {
				charge = a
			}
			if phi[b] == mn && b < charge {
				charge = b
			}
			if charge != e {
				return // counted when the charged edge is enumerated
			}
			buckets[mn] = append(buckets[mn], e, a, b)
		})
	}
	for k := kTouched; k >= 3; k-- {
		tris := buckets[k]
		for i := 0; i < len(tris); i += 3 {
			uf.Union(tris[i], tris[i+1])
			uf.Union(tris[i], tris[i+2])
		}
		ix2.levels[k] = ix2.snapshotLevel(k, uf)
	}
	return ix2
}
