package index

import (
	"reflect"
	"testing"

	"repro/internal/community"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// fixtures returns the graphs every index property is cross-checked on:
// the paper's running example plus generated graphs with hubs, planted
// cliques, and community structure.
func fixtures() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"paper":     gen.PaperExample(),
		"managers":  gen.Managers(),
		"community": gen.Community(8, 12, 0.8, 1.5, 7),
		"ba":        gen.BarabasiAlbert(300, 4, 11),
		"cliques":   gen.WithPlantedCliques(gen.ErdosRenyi(200, 500, 3), []int{8, 6, 5}, 9),
		"triangle":  graph.FromEdges([]graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2}}),
		"path": graph.FromEdges([]graph.Edge{
			{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}),
		"empty": graph.FromEdges(nil),
	}
}

func TestTrussNumberMatchesDecompose(t *testing.T) {
	for name, g := range fixtures() {
		r := core.Decompose(g)
		ix := Build(r)
		for id, want := range r.Phi {
			e := g.Edge(int32(id))
			got, ok := ix.TrussNumber(e.U, e.V)
			if !ok || got != want {
				t.Fatalf("%s: TrussNumber%v = %d,%v want %d,true", name, e, got, ok, want)
			}
			// Lookups are symmetric in the endpoints.
			if got2, ok2 := ix.TrussNumber(e.V, e.U); !ok2 || got2 != want {
				t.Fatalf("%s: TrussNumber(%d,%d) not symmetric", name, e.V, e.U)
			}
			if ix.EdgeTruss(int32(id)) != want {
				t.Fatalf("%s: EdgeTruss(%d) != %d", name, id, want)
			}
		}
		// Absent and out-of-range edges.
		if _, ok := ix.TrussNumber(0, 0); ok {
			t.Fatalf("%s: self-loop lookup succeeded", name)
		}
		if _, ok := ix.TrussNumber(1<<31, 0); ok {
			t.Fatalf("%s: out-of-range lookup succeeded", name)
		}
	}
}

func TestHistogramAndClasses(t *testing.T) {
	for name, g := range fixtures() {
		r := core.Decompose(g)
		ix := Build(r)
		if got, want := ix.Histogram(), r.ClassSizes(); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: Histogram() = %v want %v", name, got, want)
		}
		if ix.KMax() != r.KMax {
			t.Fatalf("%s: KMax() = %d want %d", name, ix.KMax(), r.KMax)
		}
		if ix.NumEdges() != g.NumEdges() {
			t.Fatalf("%s: NumEdges() = %d want %d", name, ix.NumEdges(), g.NumEdges())
		}
		for k := int32(0); k <= r.KMax+1; k++ {
			if got, want := ix.Class(k), r.Class(k); !sameInt32s(got, want) {
				t.Fatalf("%s: Class(%d) = %v want %v", name, k, got, want)
			}
			if got, want := int64(len(ix.Class(k))), ix.ClassSize(k); got != want {
				t.Fatalf("%s: ClassSize(%d) = %d want %d", name, k, want, got)
			}
			got := append([]int32(nil), ix.TrussEdges(k)...)
			want := r.TrussEdges(k)
			sortInt32s(got)
			if !sameInt32s(got, want) {
				t.Fatalf("%s: TrussEdges(%d) mismatch", name, k)
			}
			if ix.TrussSize(k) != len(want) {
				t.Fatalf("%s: TrussSize(%d) = %d want %d", name, k, ix.TrussSize(k), len(want))
			}
		}
		// Every edge in TrussEdges(k) must have phi >= k, in descending
		// phi order (the prefix property that makes T_k O(1) to slice).
		for k := int32(2); k <= r.KMax; k++ {
			prev := int32(1 << 30)
			for _, id := range ix.TrussEdges(k) {
				p := ix.EdgeTruss(id)
				if p < k || p > prev {
					t.Fatalf("%s: TrussEdges(%d) not a phi-descending prefix", name, k)
				}
				prev = p
			}
		}
	}
}

func TestTopClasses(t *testing.T) {
	g := gen.PaperExample()
	ix := Build(core.Decompose(g))
	all := ix.TopClasses(0)
	// The paper's example has classes 2, 3, 4, 5 — top-down order.
	wantK := []int32{5, 4, 3, 2}
	if len(all) != len(wantK) {
		t.Fatalf("TopClasses(0) returned %d classes, want %d", len(all), len(wantK))
	}
	for i, c := range all {
		if c.K != wantK[i] {
			t.Fatalf("TopClasses(0)[%d].K = %d want %d", i, c.K, wantK[i])
		}
		if !sameInt32s(c.Edges, ix.Class(c.K)) {
			t.Fatalf("TopClasses(0)[%d].Edges != Class(%d)", i, c.K)
		}
	}
	top2 := ix.TopClasses(2)
	if len(top2) != 2 || top2[0].K != 5 || top2[1].K != 4 {
		t.Fatalf("TopClasses(2) = %v", top2)
	}
	if got := Build(core.Decompose(graph.FromEdges(nil))).TopClasses(3); got != nil {
		t.Fatalf("TopClasses on empty graph = %v", got)
	}
}

func TestCommunitiesMatchDetect(t *testing.T) {
	for name, g := range fixtures() {
		r := core.Decompose(g)
		ix := Build(r)
		for k := int32(3); k <= r.KMax; k++ {
			want := community.Detect(r, k)
			if got := ix.CommunityCount(k); got != len(want) {
				t.Fatalf("%s k=%d: CommunityCount = %d want %d", name, k, got, len(want))
			}
			for c, w := range want {
				got, ok := ix.Community(k, c)
				if !ok || !sameInt32s(got, w.Edges) {
					t.Fatalf("%s k=%d: Community(%d) = %v,%v want %v", name, k, c, got, ok, w.Edges)
				}
				if vs := ix.Vertices(got); !reflect.DeepEqual(vs, w.Vertices) {
					t.Fatalf("%s k=%d: Vertices(comm %d) = %v want %v", name, k, c, vs, w.Vertices)
				}
			}
			if _, ok := ix.Community(k, len(want)); ok {
				t.Fatalf("%s k=%d: Community out of range succeeded", name, k)
			}
		}
	}
}

func TestCommunityOf(t *testing.T) {
	for name, g := range fixtures() {
		r := core.Decompose(g)
		ix := Build(r)
		for k := int32(3); k <= r.KMax; k++ {
			want := community.Detect(r, k)
			// memberOf[id] = the Detect community containing edge id.
			memberOf := map[int32][]int32{}
			for _, c := range want {
				for _, id := range c.Edges {
					memberOf[id] = c.Edges
				}
			}
			for id := int32(0); id < int32(g.NumEdges()); id++ {
				e := g.Edge(id)
				got, ok := ix.CommunityOf(e.U, e.V, k)
				if r.Phi[id] < k {
					if ok {
						t.Fatalf("%s k=%d: CommunityOf%v succeeded below truss", name, k, e)
					}
					continue
				}
				if !ok || !sameInt32s(got, memberOf[id]) {
					t.Fatalf("%s k=%d: CommunityOf%v mismatch", name, k, e)
				}
			}
		}
		// Below the valid range and above kmax.
		if g.NumEdges() > 0 {
			e := g.Edge(0)
			if _, ok := ix.CommunityOf(e.U, e.V, 2); ok {
				t.Fatalf("%s: CommunityOf at k=2 succeeded", name)
			}
			if _, ok := ix.CommunityOf(e.U, e.V, r.KMax+1); ok {
				t.Fatalf("%s: CommunityOf above kmax succeeded", name)
			}
		}
	}
}

// TestParallelBuildAgrees checks the index is identical regardless of
// which decomposer produced the Result (the server builds with the
// parallel decomposer).
func TestParallelBuildAgrees(t *testing.T) {
	g := gen.Community(6, 15, 0.7, 2, 21)
	a := Build(core.Decompose(g))
	b := Build(core.DecomposeParallel(g, 4))
	if !reflect.DeepEqual(a.Histogram(), b.Histogram()) {
		t.Fatalf("histograms differ between serial and parallel build")
	}
	for k := int32(3); k <= a.KMax(); k++ {
		if a.CommunityCount(k) != b.CommunityCount(k) {
			t.Fatalf("community counts differ at k=%d", k)
		}
		for c := 0; c < a.CommunityCount(k); c++ {
			ca, _ := a.Community(k, c)
			cb, _ := b.Community(k, c)
			if !sameInt32s(ca, cb) {
				t.Fatalf("community %d differs at k=%d", c, k)
			}
		}
	}
}

func TestFootprintBytes(t *testing.T) {
	ix := Build(core.Decompose(gen.PaperExample()))
	if ix.FootprintBytes() <= 0 {
		t.Fatalf("FootprintBytes = %d, want > 0", ix.FootprintBytes())
	}
}

func sameInt32s(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortInt32s(a []int32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
