package index

import "repro/internal/graph"

// RawLevel is the flat community table of one k-truss level, the on-disk
// shape of the unexported level struct: T_k's edge IDs grouped by
// community (largest first), the community offsets delimiting them, and
// the byPhi-position -> community map.
type RawLevel struct {
	EdgeOrder []int32
	CommOff   []int32
	CommIdx   []int32
}

// RawParts is the complete flat-array anatomy of a TrussIndex minus its
// graph — exactly what the indexfile format serializes. All slices alias
// index storage (RawParts) or are retained by reference (FromRawParts);
// neither side copies, so callers must treat the arrays as frozen.
type RawParts struct {
	Phi   []int32
	KMax  int32
	ByPhi []int32
	Pos   []int32
	Cnt   []int32
	Sizes []int64
	// Levels is indexed by k, length KMax+1 (nil when KMax < 3); entries
	// 0..2 are zero because T_2 carries no triangle structure.
	Levels []RawLevel
}

// RawParts exposes the index's internal arrays without copying.
func (ix *TrussIndex) RawParts() RawParts {
	p := RawParts{
		Phi:   ix.phi,
		KMax:  ix.kmax,
		ByPhi: ix.byPhi,
		Pos:   ix.pos,
		Cnt:   ix.cnt,
		Sizes: ix.sizes,
	}
	if len(ix.levels) > 0 {
		p.Levels = make([]RawLevel, len(ix.levels))
		for k := range ix.levels {
			lv := &ix.levels[k]
			p.Levels[k] = RawLevel{EdgeOrder: lv.edgeOrder, CommOff: lv.commOff, CommIdx: lv.commIdx}
		}
	}
	return p
}

// FromRawParts assembles a TrussIndex directly over pre-built arrays —
// the zero-copy inverse of RawParts, used by the indexfile reader to
// serve queries straight off a memory-mapped file. The arrays are
// retained by reference and must not be modified afterwards; for a
// mapped file they are read-only pages, which is safe because every
// TrussIndex method only reads. Content is trusted: shape and checksum
// validation is the indexfile layer's job.
func FromRawParts(g *graph.Graph, p RawParts) *TrussIndex {
	ix := &TrussIndex{
		g:     g,
		phi:   p.Phi,
		kmax:  p.KMax,
		byPhi: p.ByPhi,
		pos:   p.Pos,
		cnt:   p.Cnt,
		sizes: p.Sizes,
	}
	ix.levels = make([]level, len(p.Levels))
	for k := range p.Levels {
		ix.levels[k] = level{
			edgeOrder: p.Levels[k].EdgeOrder,
			commOff:   p.Levels[k].CommOff,
			commIdx:   p.Levels[k].CommIdx,
		}
	}
	return ix
}
