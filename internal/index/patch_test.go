package index

import (
	"context"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/gen"
	"repro/internal/graph"
)

// sameIndex asserts two indexes are structurally identical — Patch must
// be indistinguishable from a fresh Build, community ordering included.
func sameIndex(t *testing.T, got, want *TrussIndex) {
	t.Helper()
	if got.kmax != want.kmax {
		t.Fatalf("kmax = %d, want %d", got.kmax, want.kmax)
	}
	if !slices.Equal(got.phi, want.phi) {
		t.Fatalf("phi differs")
	}
	if !slices.Equal(got.byPhi, want.byPhi) || !slices.Equal(got.pos, want.pos) ||
		!slices.Equal(got.cnt, want.cnt) || !slices.Equal(got.sizes, want.sizes) {
		t.Fatalf("permutation tables differ")
	}
	if len(got.levels) != len(want.levels) {
		t.Fatalf("levels %d, want %d", len(got.levels), len(want.levels))
	}
	for k := range want.levels {
		g, w := &got.levels[k], &want.levels[k]
		if !slices.Equal(g.edgeOrder, w.edgeOrder) ||
			!slices.Equal(g.commOff, w.commOff) ||
			!slices.Equal(g.commIdx, w.commIdx) {
			t.Fatalf("level %d community tables differ:\n got %+v\nwant %+v", k, *g, *w)
		}
	}
}

func TestPatchMatchesBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		var g *graph.Graph
		switch trial % 3 {
		case 0:
			g = gen.ErdosRenyi(35, 200, int64(trial))
		case 1:
			g = gen.WithPlantedCliques(gen.ErdosRenyi(30, 120, int64(trial)), []int{6}, int64(trial))
		default:
			g = gen.Community(3, 10, 0.6, 1.5, int64(trial))
		}
		phi := core.Decompose(g).Phi
		ix := Build(&core.Result{G: g, Phi: phi, KMax: maxOf(phi)})
		for step := 0; step < 6; step++ {
			var batch dynamic.Batch
			for i := 0; i < rng.Intn(5); i++ {
				batch.Adds = append(batch.Adds, graph.Edge{
					U: uint32(rng.Intn(g.NumVertices() + 2)),
					V: uint32(rng.Intn(g.NumVertices() + 2)),
				})
			}
			for i := 0; i < rng.Intn(5) && g.NumEdges() > 0; i++ {
				batch.Dels = append(batch.Dels, g.Edges()[rng.Intn(g.NumEdges())])
			}
			res, err := dynamic.Update(context.Background(), g, phi, batch, dynamic.Config{})
			if err != nil {
				t.Fatal(err)
			}
			patched := ix.Patch(res.G, res.Phi, res.KMax, res.Remap, res.Changed)
			fresh := Build(&core.Result{G: res.G, Phi: res.Phi, KMax: res.KMax})
			sameIndex(t, patched, fresh)
			g, phi, ix = res.G, res.Phi, patched
		}
	}
}

// TestPatchNoOpBatch covers the all-untouched translation path (kTouched
// stays at 2 when the batch only adds triangle-free edges).
func TestPatchNoOpBatch(t *testing.T) {
	g := gen.PaperExample()
	phi := core.Decompose(g).Phi
	ix := Build(&core.Result{G: g, Phi: phi, KMax: maxOf(phi)})
	res, err := dynamic.Update(context.Background(), g, phi,
		dynamic.Batch{Adds: []graph.Edge{{U: 50, V: 51}}}, dynamic.Config{})
	if err != nil {
		t.Fatal(err)
	}
	patched := ix.Patch(res.G, res.Phi, res.KMax, res.Remap, res.Changed)
	fresh := Build(&core.Result{G: res.G, Phi: res.Phi, KMax: res.KMax})
	sameIndex(t, patched, fresh)
}

// TestPatchQueriesAgree drives the public query surface of a patched
// index against a fresh build on the paper's running example.
func TestPatchQueriesAgree(t *testing.T) {
	g := gen.PaperExample()
	phi := core.Decompose(g).Phi
	ix := Build(&core.Result{G: g, Phi: phi, KMax: maxOf(phi)})
	res, err := dynamic.Update(context.Background(), g, phi,
		dynamic.Batch{Dels: []graph.Edge{g.Edge(0)}}, dynamic.Config{})
	if err != nil {
		t.Fatal(err)
	}
	patched := ix.Patch(res.G, res.Phi, res.KMax, res.Remap, res.Changed)
	fresh := Build(&core.Result{G: res.G, Phi: res.Phi, KMax: res.KMax})
	if !slices.Equal(patched.Histogram(), fresh.Histogram()) {
		t.Fatal("histograms differ")
	}
	for k := int32(3); k <= fresh.KMax(); k++ {
		if patched.CommunityCount(k) != fresh.CommunityCount(k) {
			t.Fatalf("community count at %d differs", k)
		}
		for c := 0; c < fresh.CommunityCount(k); c++ {
			pc, _ := patched.Community(k, c)
			fc, _ := fresh.Community(k, c)
			if !slices.Equal(pc, fc) {
				t.Fatalf("community %d at level %d differs", c, k)
			}
		}
	}
}

func maxOf(phi []int32) int32 {
	var k int32
	for _, p := range phi {
		if p > k {
			k = p
		}
	}
	return k
}
