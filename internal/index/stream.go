package index

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/graph"
)

// EdgeStream is the shape of a decomposition's edge enumerator: it calls
// fn once per classified edge with its truss number, in any order, and
// propagates fn's first error. It matches the Edges method of the public
// Decomposition interface, so any engine's output — an in-memory Result,
// a disk-resident class spool, a MapReduce edge map — can feed BuildFromStream.
type EdgeStream func(fn func(u, v uint32, phi int32) error) error

// streamCtxMask throttles cancellation checks while consuming the stream:
// the context is polled once per (mask+1) edges.
const streamCtxMask = 4095

// BuildFromStream constructs a TrussIndex by consuming a (u, v, phi)
// edge stream, reconstructing the graph and truss numbers as it goes —
// the path that makes external-memory and MapReduce decompositions
// indexable without ever materializing a core.Result. numVertices sizes
// the vertex-ID space (it is grown if the stream contains larger IDs).
//
// The stream must describe a simple graph: self-loops and duplicate
// edges are errors, not silently dropped — a decomposition that emits
// them is corrupt, and dropping one of two conflicting phi values would
// hide it. Cost over Build from an in-memory Result is one sort of the
// edge list (the stream order is engine-dependent) plus a transient
// 12 bytes per edge; the finished index is structurally identical to
// what Build produces on the equivalent Result.
func BuildFromStream(ctx context.Context, numVertices int, stream EdgeStream) (*TrussIndex, error) {
	type rec struct {
		key uint64
		phi int32
	}
	var recs []rec
	count := 0
	err := stream(func(u, v uint32, phi int32) error {
		if u == v {
			return fmt.Errorf("index: stream contains self-loop (%d,%d)", u, v)
		}
		if phi < 2 {
			// Truss numbers are >= 2 by definition; anything lower would
			// corrupt the index's per-class arrays.
			return fmt.Errorf("index: stream contains edge (%d,%d) with invalid truss number %d", u, v, phi)
		}
		if count&streamCtxMask == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		count++
		recs = append(recs, rec{key: graph.Edge{U: u, V: v}.Key(), phi: phi})
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Edge IDs are assigned in lexicographic (U,V) order, exactly as the
	// Builder does, so the reconstructed graph is indistinguishable from
	// one built alongside the original decomposition.
	sort.Slice(recs, func(i, j int) bool { return recs[i].key < recs[j].key })
	edges := make([]graph.Edge, len(recs))
	phi := make([]int32, len(recs))
	kmax := int32(0)
	n := numVertices
	for i, r := range recs {
		e := graph.EdgeFromKey(r.key)
		if i > 0 && r.key == recs[i-1].key {
			return nil, fmt.Errorf("index: stream contains edge %v twice (phi %d and %d)",
				e, recs[i-1].phi, r.phi)
		}
		edges[i] = e
		phi[i] = r.phi
		if r.phi > kmax {
			kmax = r.phi
		}
		if int(e.V) >= n {
			n = int(e.V) + 1
		}
	}
	g, err := graph.FromCanonicalEdges(edges, n)
	if err != nil {
		return nil, fmt.Errorf("index: reconstructing graph from stream: %w", err)
	}
	ix := &TrussIndex{g: g, phi: phi, kmax: kmax}
	ix.initArrays()
	ix.buildLevels()
	return ix, nil
}
