// Package index turns a finished truss decomposition into an immutable
// query structure, the TrussIndex, that answers online requests — truss
// numbers, k-truss communities, class histograms and top classes — in
// O(answer) time without re-peeling the graph.
//
// The motivation is the serving side of the paper: the decomposition
// algorithms (in-memory, external-memory, MapReduce) produce the complete
// hierarchy of k-classes once, and an application then wants to query it
// many times ("are u and v in a tight community?", "show the strongest
// communities"). Jakkula & Karypis (Streaming and Batch Algorithms for
// Truss Decomposition) make the same point: keep the decomposition
// resident and answer requests against it rather than recomputing per
// call.
//
// Layout. Edges are permuted into byPhi, sorted by truss number
// descending (ties by edge ID ascending), so every k-truss T_k is a
// prefix of byPhi and every k-class Phi_k is a contiguous segment of it.
// On top of that, for each level k in [3, kmax] the index stores the
// triangle-connected components of T_k (the k-truss communities) as a
// grouped edge permutation plus offsets, so a community is returned as a
// single subslice. All per-level componentizations are computed in one
// pass with a monotone union-find: triangles are bucketed by the minimum
// truss number of their three edges, and levels are materialized from
// kmax downward, adding each bucket's triangles before snapshotting —
// T_{k-1}'s components only ever merge components of T_k, so one
// union-find serves every level.
//
// A TrussIndex is immutable after Build and safe for concurrent readers
// without locking.
package index

import (
	"sort"

	"repro/internal/core"
	"repro/internal/dsu"
	"repro/internal/graph"
	"repro/internal/triangle"
)

// TrussIndex is an immutable, query-optimized view of a truss
// decomposition. Build one with Build; all methods are safe for
// concurrent use.
type TrussIndex struct {
	g     *graph.Graph
	phi   []int32 // phi[id] = truss number of edge id (copied from the Result)
	kmax  int32
	byPhi []int32 // edge IDs sorted by phi desc, ID asc: T_k = byPhi[:cnt[k]]
	pos   []int32 // pos[id] = index of edge id in byPhi
	cnt   []int32 // cnt[k] = |T_k|, k = 0..kmax+1 (cnt[kmax+1] = 0)
	sizes []int64 // sizes[k] = |Phi_k|, k = 0..kmax

	// levels[k] holds the k-truss communities for k = 3..kmax; entries
	// 0..2 are zero (T_2 imposes no triangle structure).
	levels []level
}

// level is the componentization of one k-truss into its triangle-connected
// communities.
type level struct {
	edgeOrder []int32 // T_k edge IDs grouped by community, largest community first
	commOff   []int32 // community c = edgeOrder[commOff[c]:commOff[c+1]]
	commIdx   []int32 // commIdx[pos[id]] = community of edge id (indexed by byPhi position)
}

// Class describes one k-class as returned by TopClasses.
type Class struct {
	// K is the class level: every edge in Edges has truss number exactly K.
	K int32
	// Edges lists the member edge IDs, ascending. The slice aliases index
	// storage and must not be modified.
	Edges []int32
}

// Build constructs a TrussIndex from a decomposition. The result's Phi
// slice is copied, so r may be discarded or mutated afterwards; the graph
// r.G is retained by reference. Build costs two triangle enumerations
// (O(m^1.5)) plus O(sum_k |T_k|) for the per-level community tables, and
// transiently buffers 12 bytes per triangle (exact-sized by a counting
// pre-pass) while the levels are snapshotted — it is meant to run once
// per decomposition, off the query path.
func Build(r *core.Result) *TrussIndex {
	ix := &TrussIndex{
		g:    r.G,
		phi:  append([]int32(nil), r.Phi...),
		kmax: r.KMax,
	}
	ix.initArrays()
	ix.buildLevels()
	return ix
}

// initArrays fills the per-edge permutation tables (sizes, cnt, byPhi,
// pos) from ix.phi and ix.kmax in O(m).
func (ix *TrussIndex) initArrays() {
	m := len(ix.phi)
	ix.sizes = make([]int64, ix.kmax+1)
	for _, p := range ix.phi {
		ix.sizes[p]++
	}

	// Bin-sort edge IDs by truss number descending. Iterating edge IDs in
	// ascending order keeps ties ID-ascending within each class.
	ix.cnt = make([]int32, ix.kmax+2)
	ix.byPhi = make([]int32, m)
	ix.pos = make([]int32, m)
	cursor := make([]int32, ix.kmax+1)
	start := int32(0)
	for k := ix.kmax; k >= 0; k-- {
		cursor[k] = start
		start += int32(ix.sizes[k])
		ix.cnt[k] = start
	}
	for id := 0; id < m; id++ {
		p := ix.phi[id]
		ix.byPhi[cursor[p]] = int32(id)
		ix.pos[id] = cursor[p]
		cursor[p]++
	}
}

// buildLevels materializes the triangle-connected components of every
// k-truss. Each triangle lives in T_k exactly for k <= min phi of its
// three edges (and that minimum is always >= 3: any edge on a triangle
// keeps support 1 in the triangle itself). Triangles are bucketed by that
// minimum, then levels are snapshotted from kmax down to 3 over a single
// growing union-find.
func (ix *TrussIndex) buildLevels() {
	ix.levels = make([]level, ix.kmax+1)
	if ix.kmax < 3 {
		return
	}
	// Bucket the (e1,e2,e3) triples by their minimum phi. A counting
	// pre-pass sizes one flat array exactly (12 bytes per triangle, no
	// append slack), which is the build's peak transient allocation.
	// minPhi is always >= 3: every edge of a triangle keeps support 1
	// within the triangle itself, so its truss number is at least 3.
	minPhi := func(e1, e2, e3 int32) int32 {
		k := ix.phi[e1]
		if p := ix.phi[e2]; p < k {
			k = p
		}
		if p := ix.phi[e3]; p < k {
			k = p
		}
		return k
	}
	counts := make([]int64, ix.kmax+2)
	triangle.ForEach(ix.g, func(e1, e2, e3 int32) {
		counts[minPhi(e1, e2, e3)]++
	})
	// off[k] is the start of bucket k in tris, in units of triples.
	off := make([]int64, ix.kmax+2)
	var total int64
	for k := int32(3); k <= ix.kmax; k++ {
		off[k] = total
		total += counts[k]
	}
	off[ix.kmax+1] = total
	tris := make([]int32, 3*total)
	cur := make([]int64, ix.kmax+1)
	copy(cur, off[:ix.kmax+1])
	triangle.ForEach(ix.g, func(e1, e2, e3 int32) {
		k := minPhi(e1, e2, e3)
		p := 3 * cur[k]
		tris[p], tris[p+1], tris[p+2] = e1, e2, e3
		cur[k]++
	})

	uf := dsu.New(len(ix.phi))
	for k := ix.kmax; k >= 3; k-- {
		for i := 3 * off[k]; i < 3*off[k+1]; i += 3 {
			uf.Union(tris[i], tris[i+1])
			uf.Union(tris[i], tris[i+2])
		}
		ix.levels[k] = ix.snapshotLevel(k, uf)
	}
}

// snapshotLevel freezes the current union-find state into the community
// table for level k (T_k is the prefix byPhi[:cnt[k]]).
func (ix *TrussIndex) snapshotLevel(k int32, uf *dsu.UnionFind) level {
	nk := ix.cnt[k]
	rootComm := map[int32]int32{}
	var groups [][]int32
	for i := int32(0); i < nk; i++ {
		e := ix.byPhi[i]
		r := uf.Find(e)
		c, ok := rootComm[r]
		if !ok {
			c = int32(len(groups))
			rootComm[r] = c
			groups = append(groups, nil)
		}
		groups[c] = append(groups[c], e)
	}
	// Within a community, list edges by ascending ID; order communities
	// largest first (ties by smallest member ID) to match
	// community.Detect.
	for _, gset := range groups {
		sort.Slice(gset, func(i, j int) bool { return gset[i] < gset[j] })
	}
	sort.Slice(groups, func(i, j int) bool {
		if len(groups[i]) != len(groups[j]) {
			return len(groups[i]) > len(groups[j])
		}
		return groups[i][0] < groups[j][0]
	})
	lv := level{
		edgeOrder: make([]int32, 0, nk),
		commOff:   make([]int32, 1, len(groups)+1),
		commIdx:   make([]int32, nk),
	}
	for c, gset := range groups {
		for _, e := range gset {
			lv.commIdx[ix.pos[e]] = int32(c)
		}
		lv.edgeOrder = append(lv.edgeOrder, gset...)
		lv.commOff = append(lv.commOff, int32(len(lv.edgeOrder)))
	}
	return lv
}

// Graph returns the indexed graph.
func (ix *TrussIndex) Graph() *graph.Graph { return ix.g }

// KMax returns the maximum truss number over all edges.
func (ix *TrussIndex) KMax() int32 { return ix.kmax }

// NumEdges returns the number of indexed edges.
func (ix *TrussIndex) NumEdges() int { return len(ix.phi) }

// TrussNumber returns phi(u,v), the truss number of edge (u,v), and
// whether the edge exists. The lookup is one binary search in the smaller
// endpoint's adjacency list — O(log deg), no peeling.
func (ix *TrussIndex) TrussNumber(u, v uint32) (int32, bool) {
	if u == v || int(u) >= ix.g.NumVertices() || int(v) >= ix.g.NumVertices() {
		return 0, false
	}
	id, ok := ix.g.EdgeID(u, v)
	if !ok {
		return 0, false
	}
	return ix.phi[id], true
}

// EdgeTruss returns the truss number of the edge with the given ID.
func (ix *TrussIndex) EdgeTruss(id int32) int32 { return ix.phi[id] }

// PhiView returns the index's truss numbers indexed by edge ID. The slice
// aliases index storage and must not be modified; it is the zero-copy
// input the incremental-maintenance path feeds back into dynamic.Update.
func (ix *TrussIndex) PhiView() []int32 { return ix.phi }

// Histogram returns |Phi_k| for k = 0..KMax (entries 0 and 1 are zero, and
// entry 2 counts the triangle-free edges). The slice is freshly allocated.
func (ix *TrussIndex) Histogram() []int64 {
	return append([]int64(nil), ix.sizes...)
}

// ClassSize returns |Phi_k| without materializing the class.
func (ix *TrussIndex) ClassSize(k int32) int64 {
	if k < 0 || k > ix.kmax {
		return 0
	}
	return ix.sizes[k]
}

// Class returns the edge IDs with truss number exactly k, ascending. The
// slice aliases index storage and must not be modified.
func (ix *TrussIndex) Class(k int32) []int32 {
	if k < 0 || k > ix.kmax {
		return nil
	}
	return ix.byPhi[ix.cnt[k+1]:ix.cnt[k]]
}

// TrussSize returns the number of edges of the k-truss T_k.
func (ix *TrussIndex) TrussSize(k int32) int {
	if k > ix.kmax {
		return 0
	}
	if k < 0 {
		k = 0
	}
	return int(ix.cnt[k])
}

// TrussEdges returns the edge IDs of the k-truss T_k (phi >= k), ordered
// by truss number descending. The slice aliases index storage and must
// not be modified.
func (ix *TrussIndex) TrussEdges(k int32) []int32 {
	if k > ix.kmax {
		return nil
	}
	if k < 0 {
		k = 0
	}
	return ix.byPhi[:ix.cnt[k]]
}

// TopClasses returns the t highest non-empty k-classes, k descending —
// the online counterpart of the top-down algorithm's output (t <= 0
// returns all non-empty classes). Cost is O(t) plus nothing per edge: the
// Edges slices are views into the index.
func (ix *TrussIndex) TopClasses(t int) []Class {
	var out []Class
	for k := ix.kmax; k >= 2; k-- {
		if ix.sizes[k] == 0 {
			continue
		}
		out = append(out, Class{K: k, Edges: ix.byPhi[ix.cnt[k+1]:ix.cnt[k]]})
		if t > 0 && len(out) == t {
			break
		}
	}
	return out
}

// CommunityOf returns the edge IDs of the k-truss community containing
// edge (u,v): the maximal set of T_k edges reachable from it through
// shared T_k triangles. It reports false when the edge does not exist or
// its truss number is below k; k must be at least 3. The returned slice
// is ascending by edge ID, aliases index storage, and must not be
// modified. Cost is one edge lookup plus two array reads — O(log deg),
// independent of graph and community size.
func (ix *TrussIndex) CommunityOf(u, v uint32, k int32) ([]int32, bool) {
	if k < 3 || k > ix.kmax || u == v ||
		int(u) >= ix.g.NumVertices() || int(v) >= ix.g.NumVertices() {
		return nil, false
	}
	id, ok := ix.g.EdgeID(u, v)
	if !ok || ix.phi[id] < k {
		return nil, false
	}
	lv := &ix.levels[k]
	c := lv.commIdx[ix.pos[id]]
	return lv.edgeOrder[lv.commOff[c]:lv.commOff[c+1]], true
}

// CommunityCount returns the number of k-truss communities at level k
// (0 when k < 3 or k > KMax).
func (ix *TrussIndex) CommunityCount(k int32) int {
	if k < 3 || k > ix.kmax {
		return 0
	}
	return len(ix.levels[k].commOff) - 1
}

// Community returns community c (0-based, largest first) of the k-truss,
// as returned edge IDs ascending. The slice aliases index storage and
// must not be modified.
func (ix *TrussIndex) Community(k int32, c int) ([]int32, bool) {
	if k < 3 || k > ix.kmax || c < 0 || c >= ix.CommunityCount(k) {
		return nil, false
	}
	lv := &ix.levels[k]
	return lv.edgeOrder[lv.commOff[c]:lv.commOff[c+1]], true
}

// Vertices expands a set of edge IDs (as returned by CommunityOf, Class,
// or Community) into the sorted set of vertices they cover.
func (ix *TrussIndex) Vertices(edges []int32) []uint32 {
	seen := make(map[uint32]struct{}, len(edges))
	for _, id := range edges {
		e := ix.g.Edge(id)
		seen[e.U] = struct{}{}
		seen[e.V] = struct{}{}
	}
	out := make([]uint32, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FootprintBytes estimates the index's resident size (excluding the
// graph): the fixed per-edge arrays plus the per-level community tables,
// whose total is bounded by sum over edges of (phi(e)-2).
func (ix *TrussIndex) FootprintBytes() int64 {
	b := int64(len(ix.phi)+len(ix.byPhi)+len(ix.pos)+len(ix.cnt)) * 4
	b += int64(len(ix.sizes)) * 8
	for k := range ix.levels {
		lv := &ix.levels[k]
		b += int64(len(lv.edgeOrder)+len(lv.commOff)+len(lv.commIdx)) * 4
	}
	return b
}
