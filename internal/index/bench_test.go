package index

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// benchGraph builds a community-structured graph with roughly m edges.
func benchGraph(blocks int) *graph.Graph {
	return gen.Community(blocks, 16, 0.6, 2, 42)
}

// BenchmarkTrussNumber measures one point lookup at increasing graph
// sizes. The per-op cost is O(log deg) — flat as the graph grows — which
// is the "no re-peeling per query" property the index exists for:
// recomputing the decomposition per query would cost O(m^1.5).
func BenchmarkTrussNumber(b *testing.B) {
	for _, blocks := range []int{16, 64, 256, 1024} {
		g := benchGraph(blocks)
		ix := Build(core.Decompose(g))
		edges := g.Edges()
		b.Run(fmt.Sprintf("m=%d", g.NumEdges()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := edges[i%len(edges)]
				if _, ok := ix.TrussNumber(e.U, e.V); !ok {
					b.Fatal("edge vanished")
				}
			}
		})
	}
}

// BenchmarkCommunityOf measures one community lookup (the community
// itself is returned as a view, so cost is independent of its size).
func BenchmarkCommunityOf(b *testing.B) {
	for _, blocks := range []int{16, 64, 256, 1024} {
		g := benchGraph(blocks)
		ix := Build(core.Decompose(g))
		// Query edges that are inside some 3-truss community.
		var in []graph.Edge
		for _, id := range ix.TrussEdges(3) {
			in = append(in, g.Edge(id))
		}
		if len(in) == 0 {
			b.Skip("no 3-truss")
		}
		b.Run(fmt.Sprintf("m=%d", g.NumEdges()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := in[i%len(in)]
				if _, ok := ix.CommunityOf(e.U, e.V, 3); !ok {
					b.Fatal("community vanished")
				}
			}
		})
	}
}

// BenchmarkBuild measures the one-time index construction cost, for
// comparison with the per-query numbers above.
func BenchmarkBuild(b *testing.B) {
	for _, blocks := range []int{16, 64, 256} {
		g := benchGraph(blocks)
		r := core.Decompose(g)
		b.Run(fmt.Sprintf("m=%d", g.NumEdges()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Build(r)
			}
		})
	}
}
