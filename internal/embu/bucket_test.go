package embu

import (
	"testing"

	"repro/internal/gio"
	"repro/internal/partition"
)

// TestBucketByPartWaves exercises the multi-wave path (more parts than
// simultaneously open bucket writers) and checks exact routing: every edge
// lands in the bucket of each incident part, once.
func TestBucketByPartWaves(t *testing.T) {
	const nParts = maxOpenBuckets + 40 // forces two waves
	const n = 2 * nParts
	partOf := make([]int32, n)
	for v := 0; v < n; v++ {
		partOf[v] = int32(v % nParts)
	}
	dir := t.TempDir()
	cur, err := gio.NewSpool[gio.EdgeAux2](dir, "cur", gio.EdgeAux2Codec{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Edges: (i, i+1) for even i -> parts i%nParts and (i+1)%nParts, and a
	// few same-part edges (i, i+nParts).
	var recs []gio.EdgeAux2
	for i := 0; i+1 < n; i += 2 {
		recs = append(recs, gio.EdgeAux2{U: uint32(i), V: uint32(i + 1), A: int32(i)})
	}
	for i := 0; i < 20; i++ {
		recs = append(recs, gio.EdgeAux2{U: uint32(i), V: uint32(i + nParts), A: -1})
	}
	if err := cur.WriteAll(recs); err != nil {
		t.Fatal(err)
	}

	buckets, err := bucketByPart(cur, nParts, partOf, Config{TempDir: dir}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	got := map[uint64][]int{}
	for pi, b := range buckets {
		rs, err := b.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rs {
			got[r.Key()] = append(got[r.Key()], pi)
		}
		b.Remove()
	}
	for _, r := range recs {
		want := map[int]bool{int(partOf[r.U]): true, int(partOf[r.V]): true}
		places := got[r.Key()]
		if len(places) != len(want) {
			t.Fatalf("edge (%d,%d) routed to %v, want parts %v", r.U, r.V, places, want)
		}
		for _, p := range places {
			if !want[p] {
				t.Fatalf("edge (%d,%d) routed to wrong part %d", r.U, r.V, p)
			}
		}
	}
}

// TestRemoveKeysChunked forces the chunked path of removeKeys: more keys
// than the budget allows in one chunk.
func TestRemoveKeysChunked(t *testing.T) {
	dir := t.TempDir()
	sp, err := gio.NewSpool[gio.EdgeAux2](dir, "sp", gio.EdgeAux2Codec{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var recs []gio.EdgeAux2
	for i := 0; i < 500; i++ {
		recs = append(recs, gio.EdgeAux2{U: uint32(i), V: uint32(i + 1000)})
	}
	if err := sp.WriteAll(recs); err != nil {
		t.Fatal(err)
	}
	keys, err := gio.NewSpool[gio.EdgeRec](dir, "keys", gio.EdgeCodec{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Remove every third edge: 167 keys with a budget of 64 -> 3 chunks.
	var del []gio.EdgeRec
	for i := 0; i < 500; i += 3 {
		del = append(del, gio.EdgeRec{U: uint32(i), V: uint32(i + 1000)})
	}
	if err := keys.WriteAll(del); err != nil {
		t.Fatal(err)
	}
	cfg := Config{Budget: 64, TempDir: dir, Strategy: partition.Randomized}.withDefaults()
	if err := removeKeys(sp, keys, cfg); err != nil {
		t.Fatal(err)
	}
	left, err := sp.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 500-len(del) {
		t.Fatalf("left %d records, want %d", len(left), 500-len(del))
	}
	for _, r := range left {
		if r.U%3 == 0 {
			t.Fatalf("edge (%d,%d) should have been removed", r.U, r.V)
		}
	}
}
