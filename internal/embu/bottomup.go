package embu

import (
	"context"
	"errors"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/extsort"
	"repro/internal/gio"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/triangle"
)

// Decompose runs the full bottom-up external-memory truss decomposition
// (Algorithm 4) over a disk-resident edge stream. n is the vertex-ID space
// (max vertex ID + 1); pass n <= 0 to have it derived with one extra scan.
// The context is checked between LowerBounding iterations, partition
// rounds, and Procedure 9 passes; on cancellation the returned error is
// ctx.Err() and all result spools are removed.
func Decompose(ctx context.Context, input *gio.Spool[gio.EdgeRec], n int, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if n <= 0 {
		maxV := int64(-1)
		err := input.ForEach(func(r gio.EdgeRec) error {
			if int64(r.U) > maxV {
				maxV = int64(r.U)
			}
			if int64(r.V) > maxV {
				maxV = int64(r.V)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		n = int(maxV) + 1
	}

	classes, err := gio.NewSpool[gio.EdgeAux](cfg.TempDir, "classes", gio.EdgeAuxCodec{}, cfg.Stats)
	if err != nil {
		return nil, err
	}
	cwr, err := classes.Create()
	if err != nil {
		return nil, err
	}
	cw := &classWriter{w: cwr, sizes: map[int32]int64{}}
	res := &Result{Classes: classes, ClassSizes: cw.sizes, NumVertices: n}
	fail := func(err error) (*Result, error) {
		cwr.Close()
		classes.Remove()
		return nil, err
	}

	gnew, err := LowerBound(ctx, input, n, cfg, cw, &res.Trace)
	if err != nil {
		return fail(err)
	}
	defer gnew.Remove()

	if err := bottomUpClasses(ctx, gnew, n, cfg, cw, &res.Trace); err != nil {
		return fail(err)
	}
	if err := cwr.Close(); err != nil {
		classes.Remove()
		return nil, err
	}
	res.KMax = cw.kmax
	return res, nil
}

// DecomposeGraph is a convenience wrapper: it spools g's edges to disk and
// runs Decompose, so tests and benchmarks can exercise the external
// algorithm on in-memory graphs.
func DecomposeGraph(ctx context.Context, g *graph.Graph, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	sp, err := gio.NewSpool[gio.EdgeRec](cfg.TempDir, "input", gio.EdgeCodec{}, cfg.Stats)
	if err != nil {
		return nil, err
	}
	defer sp.Remove()
	w, err := sp.Create()
	if err != nil {
		return nil, err
	}
	for _, e := range g.Edges() {
		if err := w.Write(gio.EdgeRec{U: e.U, V: e.V}); err != nil {
			w.Close()
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return Decompose(ctx, sp, g.NumVertices(), cfg)
}

// bottomUpClasses is the second stage (Algorithm 4, Steps 2-9): for k = 3
// upward, extract the candidate subgraph NS(U_k) from Gnew, peel Phi_k out
// of it, and delete Phi_k from Gnew.
func bottomUpClasses(ctx context.Context, gnew *gio.Spool[gio.EdgeAux2], n int, cfg Config, cw *classWriter, trace *Trace) error {
	k := int32(3)
	for gnew.Count() > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Scan 1: the smallest lower bound tells us the next k with a
		// possibly non-empty class (phi is a lower bound on the truss
		// number, so classes below min phi are empty).
		minPhi := int32(math.MaxInt32)
		if err := gnew.ForEach(func(r gio.EdgeAux2) error {
			if r.A < minPhi {
				minPhi = r.A
			}
			return nil
		}); err != nil {
			return err
		}
		if minPhi > k {
			k = minPhi
		}
		trace.Rounds++
		if cfg.OnRound != nil {
			cfg.OnRound(k)
		}

		// Scan 2: U_k = endpoints of edges whose bound admits class k.
		uk := graph.NewVertexSet(n)
		if err := gnew.ForEach(func(r gio.EdgeAux2) error {
			if r.A <= k {
				uk.Add(r.U)
				uk.Add(r.V)
			}
			return nil
		}); err != nil {
			return err
		}

		// Scan 3: extract H = NS(U_k). Collect in memory while it fits;
		// spill to a spool for Procedure 9 otherwise.
		var mem []gio.EdgeAux2
		var spill *gio.Spool[gio.EdgeAux2]
		var spillW *gio.SpoolWriter[gio.EdgeAux2]
		capEdges := int(cfg.Budget / 2) // e edges occupy 2e adjacency entries
		err := gnew.ForEach(func(r gio.EdgeAux2) error {
			if !uk.Contains(r.U) && !uk.Contains(r.V) {
				return nil
			}
			if spillW == nil && len(mem) < capEdges {
				mem = append(mem, r)
				return nil
			}
			if spillW == nil {
				var serr error
				spill, serr = gio.NewSpool[gio.EdgeAux2](cfg.TempDir, "candidate", gio.EdgeAux2Codec{}, cfg.Stats)
				if serr != nil {
					return serr
				}
				spillW, serr = spill.Create()
				if serr != nil {
					return serr
				}
				for _, m := range mem {
					if werr := spillW.Write(m); werr != nil {
						return werr
					}
				}
				mem = nil
			}
			return spillW.Write(r)
		})
		if err != nil {
			if spillW != nil {
				spillW.Close()
				spill.Remove()
			}
			return err
		}

		removed, err := gio.NewSpool[gio.EdgeRec](cfg.TempDir, "phik", gio.EdgeCodec{}, cfg.Stats)
		if err != nil {
			if spillW != nil {
				spillW.Close()
				spill.Remove()
			}
			return err
		}
		if spillW != nil {
			if err := spillW.Close(); err != nil {
				spill.Remove()
				removed.Remove()
				return err
			}
			trace.OversizeRounds++
			err = procedure9(ctx, spill, uk, n, k, cfg, cw, removed, trace)
			spill.Remove()
			if err != nil {
				removed.Remove()
				return err
			}
		} else {
			if err := procedure5(mem, uk, k, cw, removed); err != nil {
				removed.Remove()
				return err
			}
		}

		// Delete Phi_k from Gnew (chunked by the memory budget, as in the
		// paper's |Phi_k|/M analysis).
		if removed.Count() > 0 {
			if err := removeKeys(gnew, removed, cfg); err != nil {
				return err
			}
		}
		if err := removed.Remove(); err != nil {
			return err
		}
		k++
	}
	return nil
}

// procedure5 peels Phi_k from an in-memory candidate subgraph (Procedure 5):
// internal edges (both endpoints in U_k) whose support inside H is <= k-2
// are the k-class; removal cascades through shared triangles.
func procedure5(recs []gio.EdgeAux2, uk *graph.VertexSet, k int32, cw *classWriter, removed *gio.Spool[gio.EdgeRec]) error {
	if len(recs) == 0 {
		return nil
	}
	sg, _ := buildSubgraph(recs)
	internal := make([]bool, sg.NumEdges())
	for id, e := range sg.Edges() {
		internal[id] = uk.Contains(e.U) && uk.Contains(e.V)
	}
	p := core.NewPeeler(sg, triangle.Supports(sg))
	p.Restrict(internal)
	out := p.PeelTo(k - 2)

	rw, err := removed.Create()
	if err != nil {
		return err
	}
	for _, id := range out {
		e := sg.Edge(id)
		if err := cw.emit(e.U, e.V, k); err != nil {
			rw.Close()
			return err
		}
		if err := rw.Write(gio.EdgeRec{U: e.U, V: e.V}); err != nil {
			rw.Close()
			return err
		}
	}
	return rw.Close()
}

// procedure9 peels Phi_k from a candidate subgraph H that does not fit in
// memory. It alternates two kinds of passes:
//
//   - Local peel (the paper's Procedure 9): partition H's internal
//     vertices, load each part's neighborhood subgraph, and peel its
//     part-internal edges with full cascading. Supports of part-internal
//     edges are exact within H, so every removal is sound, and cascades
//     collapse inside each part, keeping the pass count small.
//   - Certification: the paper stops "when all remaining internal edges of
//     H have support greater than k-2", but a local pass that removes
//     nothing does not establish that — a deficient edge whose endpoints
//     straddle parts is not removable in any part that pass. When local
//     peeling stalls, this implementation computes the exact support of
//     every H edge with the partitioned accumulation of ExactSupports and
//     either certifies the fixpoint or removes the stragglers and resumes.
func procedure9(ctx context.Context, h *gio.Spool[gio.EdgeAux2], uk *graph.VertexSet, n int, k int32, cfg Config, cw *classWriter, removed *gio.Spool[gio.EdgeRec], trace *Trace) error {
	rw, err := removed.Create()
	if err != nil {
		return err
	}
	defer func() {
		if rw != nil {
			rw.Close()
		}
	}()
	emit := func(u, v uint32) error {
		if err := cw.emit(u, v, k); err != nil {
			return err
		}
		return rw.Write(gio.EdgeRec{U: u, V: v})
	}

	for pass := 0; ; pass++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		trace.Proc9Passes++
		// One local pass collapses within-part cascades cheaply; the
		// certification pass then removes every cross-part straggler in
		// one batch and decides termination.
		if _, err := localPeelPass(ctx, h, uk, n, k, cfg, cfg.Seed+int64(pass), emit); err != nil {
			return err
		}
		nCert, err := certifyPass(ctx, h, uk, n, k, cfg, int64(1000*(pass+1)), emit)
		if err != nil {
			return err
		}
		if nCert == 0 {
			break
		}
	}
	w := rw
	rw = nil
	return w.Close()
}

// localPeelPass is one partitioned peel over H: every part-internal edge
// with support <= k-2 within its part's neighborhood subgraph is removed
// (with cascades), emitted, and deleted from H. Returns the removal count.
func localPeelPass(ctx context.Context, h *gio.Spool[gio.EdgeAux2], uk *graph.VertexSet, n int, k int32, cfg Config, seed int64, emit func(u, v uint32) error) (int, error) {
	deg := make([]int32, n)
	if err := h.ForEach(func(r gio.EdgeAux2) error {
		deg[r.U]++
		deg[r.V]++
		return nil
	}); err != nil {
		return 0, err
	}
	active := func(v uint32) bool { return deg[v] > 0 && uk.Contains(v) }
	parts := partition.Partition(
		partition.Input{Degree: deg, Active: active},
		partition.Config{Strategy: partition.Randomized, Budget: cfg.Budget, Seed: seed},
	)
	if len(parts) == 0 {
		return 0, nil
	}
	partOf := makePartIndex(n, parts)
	buckets, err := bucketByPart(h, len(parts), partOf, cfg)
	if err != nil {
		return 0, err
	}
	defer removeSpools(buckets) // no-op on success; cleanup on abort
	passRemoved := map[uint64]bool{}
	for pi := range parts {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		recs, err := buckets[pi].ReadAll()
		if err != nil {
			return 0, err
		}
		if err := buckets[pi].Remove(); err != nil {
			return 0, err
		}
		live := recs[:0]
		for _, r := range recs {
			if !passRemoved[r.Key()] {
				live = append(live, r)
			}
		}
		if len(live) == 0 {
			continue
		}
		sg, _ := buildSubgraph(live)
		removable := make([]bool, sg.NumEdges())
		for id, e := range sg.Edges() {
			removable[id] = partOf[e.U] == int32(pi) && partOf[e.V] == int32(pi)
		}
		p := core.NewPeeler(sg, triangle.Supports(sg))
		p.Restrict(removable)
		for _, id := range p.PeelTo(k - 2) {
			e := sg.Edge(id)
			passRemoved[e.Key()] = true
			if err := emit(e.U, e.V); err != nil {
				return 0, err
			}
		}
	}
	if len(passRemoved) == 0 {
		return 0, nil
	}
	if err := rewriteWithout(h, passRemoved, cfg); err != nil {
		return 0, err
	}
	return len(passRemoved), nil
}

// certifyPass computes exact supports of every H edge and removes internal
// edges at or below k-2, returning how many were removed (0 certifies the
// fixpoint).
func certifyPass(ctx context.Context, h *gio.Spool[gio.EdgeAux2], uk *graph.VertexSet, n int, k int32, cfg Config, seedOffset int64, emit func(u, v uint32) error) (int64, error) {
	sups, err := ExactSupports(ctx, h, n, Config{
		Budget:   cfg.Budget,
		Strategy: partition.Randomized,
		Seed:     cfg.Seed + seedOffset,
		TempDir:  cfg.TempDir,
		Stats:    cfg.Stats,
	})
	if err != nil {
		return 0, err
	}
	viol, err := gio.NewSpool[gio.EdgeRec](cfg.TempDir, "viol", gio.EdgeCodec{}, cfg.Stats)
	if err != nil {
		sups.Remove()
		return 0, err
	}
	defer viol.Remove()
	vw, err := viol.Create()
	if err != nil {
		sups.Remove()
		return 0, err
	}
	err = sups.ForEach(func(r gio.EdgeAux) error {
		if r.Aux > k-2 || !uk.Contains(r.U) || !uk.Contains(r.V) {
			return nil
		}
		if err := emit(r.U, r.V); err != nil {
			return err
		}
		return vw.Write(gio.EdgeRec{U: r.U, V: r.V})
	})
	sups.Remove()
	if err != nil {
		vw.Close()
		return 0, err
	}
	if err := vw.Close(); err != nil {
		return 0, err
	}
	if viol.Count() > 0 {
		if err := removeKeys(h, viol, cfg); err != nil {
			return 0, err
		}
	}
	return viol.Count(), nil
}

// rewriteWithout rewrites sp dropping the keyed edges.
func rewriteWithout(sp *gio.Spool[gio.EdgeAux2], drop map[uint64]bool, cfg Config) error {
	next, err := gio.NewSpool[gio.EdgeAux2](cfg.TempDir, "rw", gio.EdgeAux2Codec{}, cfg.Stats)
	if err != nil {
		return err
	}
	nw, err := next.Create()
	if err != nil {
		return err
	}
	err = sp.ForEach(func(r gio.EdgeAux2) error {
		if drop[r.Key()] {
			return nil
		}
		return nw.Write(r)
	})
	if err != nil {
		nw.Close()
		return err
	}
	if err := nw.Close(); err != nil {
		return err
	}
	return sp.ReplaceWith(next)
}

// ExactSupports computes the exact support of every edge of the
// disk-resident edge set h (with respect to h itself), returning a spool of
// (u, v, sup) records. It uses the same shrinking-residual accumulation as
// LowerBounding: every triangle is counted at the unique (iteration, part)
// where its first edge becomes part-internal. The context is checked once
// per accumulation iteration and once per part.
func ExactSupports(ctx context.Context, h *gio.Spool[gio.EdgeAux2], n int, cfg Config) (*gio.Spool[gio.EdgeAux], error) {
	cfg = cfg.withDefaults()
	work, err := gio.NewSpool[gio.EdgeAux2](cfg.TempDir, "supwork", gio.EdgeAux2Codec{}, cfg.Stats)
	if err != nil {
		return nil, err
	}
	defer work.Remove()
	{
		w, err := work.Create()
		if err != nil {
			return nil, err
		}
		err = h.ForEach(func(r gio.EdgeAux2) error {
			return w.Write(gio.EdgeAux2{U: r.U, V: r.V, B: 0})
		})
		if err != nil {
			w.Close()
			return nil, err
		}
		if err := w.Close(); err != nil {
			return nil, err
		}
	}

	out, err := gio.NewSpool[gio.EdgeAux](cfg.TempDir, "sups", gio.EdgeAuxCodec{}, cfg.Stats)
	if err != nil {
		return nil, err
	}
	ow, err := out.Create()
	if err != nil {
		out.Remove()
		return nil, err
	}
	// Every early return below (I/O error or cancellation) must drop the
	// partial output spool.
	success := false
	defer func() {
		if ow != nil {
			ow.Close()
		}
		if !success {
			out.Remove()
		}
	}()

	fruitless := 0
	for iter := 0; work.Count() > 0; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Fast path: once the residual fits in the budget it forms a
		// single part whose neighborhood subgraph is the residual itself;
		// finish in memory without bucket files or sort runs.
		if work.Count()*2 <= cfg.Budget {
			recs, err := work.ReadAll()
			if err != nil {
				return nil, err
			}
			sg, recOf := buildSubgraph(recs)
			localSup := triangle.Supports(sg)
			for id, e := range sg.Edges() {
				rec := recs[recOf[id]]
				if err := ow.Write(gio.EdgeAux{U: e.U, V: e.V, Aux: rec.B + localSup[id]}); err != nil {
					return nil, err
				}
			}
			break
		}

		deg := make([]int32, n)
		if err := work.ForEach(func(r gio.EdgeAux2) error {
			deg[r.U]++
			deg[r.V]++
			return nil
		}); err != nil {
			return nil, err
		}
		parts := partition.Partition(
			partition.Input{Degree: deg},
			partition.Config{Strategy: partition.Randomized, Budget: cfg.Budget, Seed: cfg.Seed + int64(iter)},
		)
		partOf := makePartIndex(n, parts)
		buckets, err := bucketByPart(work, len(parts), partOf, cfg)
		if err != nil {
			return nil, err
		}
		defer removeSpools(buckets) // no-op on success; cleanup on abort
		sorter := extsort.NewSorter[gio.EdgeAux2](gio.EdgeAux2Codec{}, recLess, extsort.Config{
			Budget: int(cfg.Budget),
			Dir:    cfg.TempDir,
			Stats:  cfg.Stats,
		})
		defer sorter.Discard() // no-op once Sort hands runs to the iterator
		progress := false
		for pi := range parts {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			recs, err := buckets[pi].ReadAll()
			if err != nil {
				return nil, err
			}
			if err := buckets[pi].Remove(); err != nil {
				return nil, err
			}
			if len(recs) == 0 {
				continue
			}
			sg, recOf := buildSubgraph(recs)
			localSup := triangle.Supports(sg)
			for id, e := range sg.Edges() {
				rec := recs[recOf[id]]
				if partOf[e.U] == int32(pi) && partOf[e.V] == int32(pi) {
					if err := ow.Write(gio.EdgeAux{U: e.U, V: e.V, Aux: rec.B + localSup[id]}); err != nil {
						return nil, err
					}
					progress = true
					continue
				}
				up := gio.EdgeAux2{U: e.U, V: e.V, B: localSup[id]}
				if partOf[e.U] == int32(pi) {
					up.B += rec.B
				}
				if err := sorter.Push(up); err != nil {
					return nil, err
				}
			}
		}
		next, err := gio.NewSpool[gio.EdgeAux2](cfg.TempDir, "supwork", gio.EdgeAux2Codec{}, cfg.Stats)
		if err != nil {
			return nil, err
		}
		nw, err := next.Create()
		if err != nil {
			next.Remove()
			return nil, err
		}
		it, err := sorter.Sort()
		if err != nil {
			nw.Close()
			next.Remove()
			return nil, err
		}
		var pending *gio.EdgeAux2
		mergeErr := it.ForEach(func(rec gio.EdgeAux2) error {
			if pending != nil && pending.U == rec.U && pending.V == rec.V {
				merged := gio.EdgeAux2{U: rec.U, V: rec.V, B: pending.B + rec.B}
				pending = nil
				return nw.Write(merged)
			}
			if pending != nil {
				return errors.New("embu: unpaired support update")
			}
			r := rec
			pending = &r
			return nil
		})
		if mergeErr == nil && pending != nil {
			mergeErr = errors.New("embu: unpaired trailing support update")
		}
		if mergeErr != nil {
			nw.Close()
			next.Remove()
			return nil, mergeErr
		}
		if err := nw.Close(); err != nil {
			next.Remove()
			return nil, err
		}
		if err := work.ReplaceWith(next); err != nil {
			return nil, err
		}
		if progress {
			fruitless = 0
		} else if fruitless++; fruitless >= maxFruitlessIters {
			return nil, errors.New("embu: support computation stalled")
		}
	}
	w := ow
	ow = nil
	if err := w.Close(); err != nil {
		return nil, err
	}
	success = true
	return out, nil
}

// removeKeys deletes the edges listed in keys from sp, loading keys in
// budget-bounded chunks (each chunk costs one scan-and-rewrite of sp).
func removeKeys(sp *gio.Spool[gio.EdgeAux2], keys *gio.Spool[gio.EdgeRec], cfg Config) error {
	kr, err := keys.Open()
	if err != nil {
		return err
	}
	defer kr.Close()
	chunkCap := int(cfg.Budget)
	for {
		chunk := make(map[uint64]bool, 1024)
		for len(chunk) < chunkCap {
			rec, rerr := kr.Read()
			if errors.Is(rerr, io.EOF) {
				break
			}
			if rerr != nil {
				return rerr
			}
			chunk[rec.Edge().Key()] = true
		}
		if len(chunk) == 0 {
			return nil
		}
		next, err := gio.NewSpool[gio.EdgeAux2](cfg.TempDir, "gnew", gio.EdgeAux2Codec{}, cfg.Stats)
		if err != nil {
			return err
		}
		nw, err := next.Create()
		if err != nil {
			return err
		}
		err = sp.ForEach(func(r gio.EdgeAux2) error {
			if chunk[r.Key()] {
				return nil
			}
			return nw.Write(r)
		})
		if err != nil {
			nw.Close()
			return err
		}
		if err := nw.Close(); err != nil {
			return err
		}
		if err := sp.ReplaceWith(next); err != nil {
			return err
		}
		if len(chunk) < chunkCap {
			return nil
		}
	}
}
