package embu

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/gio"
	"repro/internal/graph"
	"repro/internal/partition"
)

// checkMatchesInMemory decomposes g both in memory and bottom-up external
// with the given config and requires identical truss numbers.
func checkMatchesInMemory(t *testing.T, g *graph.Graph, cfg Config) *Result {
	t.Helper()
	cfg.TempDir = t.TempDir()
	res, err := DecomposeGraph(context.Background(), g, cfg)
	if err != nil {
		t.Fatalf("external decompose: %v", err)
	}
	want := core.Decompose(g)
	got, err := res.PhiMap()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != g.NumEdges() {
		t.Fatalf("classified %d of %d edges", len(got), g.NumEdges())
	}
	for id, p := range want.Phi {
		e := g.Edge(int32(id))
		if got[e.Key()] != p {
			t.Fatalf("edge %v: external phi=%d, in-memory phi=%d", e, got[e.Key()], p)
		}
	}
	if res.KMax != want.KMax {
		t.Fatalf("kmax: external %d, in-memory %d", res.KMax, want.KMax)
	}
	// Class sizes must agree too.
	sizes := want.ClassSizes()
	for k, n := range res.ClassSizes {
		if int(k) >= len(sizes) || sizes[k] != n {
			t.Fatalf("|Phi_%d| = %d externally, want %d", k, n, sizes[k])
		}
	}
	return res
}

func TestPaperExampleBottomUp(t *testing.T) {
	g := gen.PaperExample()
	res := checkMatchesInMemory(t, g, Config{Budget: 1 << 20})
	want := gen.PaperExamplePhi()
	got, err := res.PhiMap()
	if err != nil {
		t.Fatal(err)
	}
	for k, p := range want {
		if got[k] != p {
			t.Fatalf("edge key %d: phi=%d want %d", k, got[k], p)
		}
	}
	res.Close()
}

func TestPaperExampleTinyBudget(t *testing.T) {
	// Budget of 64 adjacency entries forces multi-part LowerBounding on
	// even the 26-edge example (sum of degrees is 52 but parts split).
	g := gen.PaperExample()
	res := checkMatchesInMemory(t, g, Config{Budget: 64, Seed: 5})
	if res.Trace.LBIterations == 0 {
		t.Fatal("expected at least one lower-bounding iteration")
	}
	res.Close()
}

func TestEmptyAndTriangleFree(t *testing.T) {
	res := checkMatchesInMemory(t, graph.NewBuilder(0).Build(), Config{})
	if res.KMax != 0 {
		t.Fatalf("empty kmax = %d", res.KMax)
	}
	res.Close()

	// Star graph: all edges in Phi2.
	var edges []graph.Edge
	for i := 1; i <= 10; i++ {
		edges = append(edges, graph.Edge{U: 0, V: uint32(i)})
	}
	res = checkMatchesInMemory(t, graph.FromEdges(edges), Config{})
	if res.KMax != 2 || res.ClassSizes[2] != 10 {
		t.Fatalf("star: kmax=%d sizes=%v", res.KMax, res.ClassSizes)
	}
	res.Close()
}

func TestRandomGraphsAcrossBudgets(t *testing.T) {
	r := rand.New(rand.NewSource(63))
	budgets := []int64{0 /* default: everything in memory */, 4096, 256, 64}
	for trial := 0; trial < 6; trial++ {
		n := 20 + r.Intn(60)
		m := 2*n + r.Intn(4*n)
		var edges []graph.Edge
		for i := 0; i < m; i++ {
			edges = append(edges, graph.Edge{U: uint32(r.Intn(n)), V: uint32(r.Intn(n))})
		}
		g := graph.FromEdges(edges)
		for _, b := range budgets {
			res := checkMatchesInMemory(t, g, Config{Budget: b, Seed: int64(trial)})
			res.Close()
		}
	}
}

func TestAllPartitionStrategies(t *testing.T) {
	g := gen.Community(6, 10, 0.6, 1.0, 9)
	for _, s := range []partition.Strategy{partition.Sequential, partition.Randomized, partition.DominatingSet} {
		res := checkMatchesInMemory(t, g, Config{Budget: 200, Strategy: s, Seed: 11})
		res.Close()
	}
}

func TestProcedure9Path(t *testing.T) {
	// A dense-ish community graph with a budget small enough that some
	// candidate subgraph cannot fit: forces Procedure 9.
	g := gen.Community(4, 14, 0.7, 1.0, 33)
	res := checkMatchesInMemory(t, g, Config{Budget: 80, Seed: 3})
	if res.Trace.OversizeRounds == 0 {
		t.Skipf("budget did not force Procedure 9 (candidates all fit); trace=%+v", res.Trace)
	}
	if res.Trace.Proc9Passes == 0 {
		t.Fatal("oversize round without Procedure 9 passes")
	}
	res.Close()
}

func TestSmallDatasetAnalogs(t *testing.T) {
	for _, d := range gen.SmallDatasets() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			g := d.Build()
			// Budget sized to force several partitions.
			budget := int64(g.NumEdges() / 2)
			res := checkMatchesInMemory(t, g, Config{Budget: budget, Seed: 1})
			res.Close()
		})
	}
}

func TestDecomposeFromSpoolDerivesN(t *testing.T) {
	g := gen.PaperExample()
	dir := t.TempDir()
	sp, err := gio.NewSpool[gio.EdgeRec](dir, "in", gio.EdgeCodec{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sp.Create()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		if err := w.Write(gio.EdgeRec{U: e.U, V: e.V}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := Decompose(context.Background(), sp, 0, Config{TempDir: dir}) // n derived
	if err != nil {
		t.Fatal(err)
	}
	if res.NumVertices != 12 {
		t.Fatalf("derived n = %d, want 12", res.NumVertices)
	}
	if res.KMax != 5 {
		t.Fatalf("kmax = %d", res.KMax)
	}
	res.Close()
}

func TestIOAccounting(t *testing.T) {
	var st gio.Stats
	g := gen.PaperExample()
	cfg := Config{Budget: 64, Stats: &st, TempDir: t.TempDir()}
	res, err := DecomposeGraph(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if st.BytesRead() == 0 || st.BytesWritten() == 0 {
		t.Fatal("expected I/O traffic to be recorded")
	}
	if st.IOs(4096) <= 0 {
		t.Fatal("expected positive I/O count")
	}
}
