package embu

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gio"
	"repro/internal/graph"
	"repro/internal/triangle"
)

// TestLowerBoundInvariants checks the three guarantees LowerBound provides
// on a random graph under a tiny budget (many iterations): the emitted
// 2-class is exactly {e : sup(e,G)=0}, every Gnew bound is a true lower
// bound, and the accumulated support equals the exact support in G.
func TestLowerBoundInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(63))
	var g *graph.Graph
	for trial := 0; trial <= 4; trial++ {
		n := 20 + r.Intn(60)
		m := 2*n + r.Intn(4*n)
		var edges []graph.Edge
		for i := 0; i < m; i++ {
			edges = append(edges, graph.Edge{U: uint32(r.Intn(n)), V: uint32(r.Intn(n))})
		}
		g = graph.FromEdges(edges)
	}
	want := core.Decompose(g)
	origSup := triangle.Supports(g)

	dir := t.TempDir()
	cfg := Config{Budget: 64, Seed: 4, TempDir: dir}.withDefaults()
	input, err := gio.NewSpool[gio.EdgeRec](dir, "in", gio.EdgeCodec{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	w, err := input.Create()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		if err := w.Write(gio.EdgeRec{U: e.U, V: e.V}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	classes, err := gio.NewSpool[gio.EdgeAux](dir, "cl", gio.EdgeAuxCodec{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cwr, err := classes.Create()
	if err != nil {
		t.Fatal(err)
	}
	cw := &classWriter{w: cwr, sizes: map[int32]int64{}}
	var trace Trace
	gnew, err := LowerBound(context.Background(), input, g.NumVertices(), cfg, cw, &trace)
	if err != nil {
		t.Fatal(err)
	}
	if err := cwr.Close(); err != nil {
		t.Fatal(err)
	}
	if trace.LBIterations < 2 {
		t.Fatalf("budget 64 should force multiple iterations, got %d", trace.LBIterations)
	}

	truePhi2 := int64(0)
	for _, s := range origSup {
		if s == 0 {
			truePhi2++
		}
	}
	if cw.sizes[2] != truePhi2 {
		t.Fatalf("|Phi2| = %d, want %d", cw.sizes[2], truePhi2)
	}
	if err := classes.ForEach(func(rec gio.EdgeAux) error {
		id, ok := g.EdgeID(rec.U, rec.V)
		if !ok {
			t.Errorf("class edge (%d,%d) not in G", rec.U, rec.V)
			return nil
		}
		if origSup[id] != 0 {
			t.Errorf("edge (%d,%d) emitted as Phi2 but sup(G)=%d", rec.U, rec.V, origSup[id])
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	seen := map[uint64]int{}
	if err := gnew.ForEach(func(rec gio.EdgeAux2) error {
		seen[rec.Key()]++
		id, ok := g.EdgeID(rec.U, rec.V)
		if !ok {
			t.Errorf("gnew edge (%d,%d) not in G", rec.U, rec.V)
			return nil
		}
		if rec.A > want.Phi[id] {
			t.Errorf("edge (%d,%d): phi_lb=%d > true phi=%d", rec.U, rec.V, rec.A, want.Phi[id])
		}
		if rec.A < 2 {
			t.Errorf("edge (%d,%d): phi_lb=%d < 2", rec.U, rec.V, rec.A)
		}
		if rec.B != origSup[id] {
			t.Errorf("edge (%d,%d): acc=%d != sup=%d", rec.U, rec.V, rec.B, origSup[id])
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for k, c := range seen {
		if c > 1 {
			t.Errorf("edge key %d appears %d times in gnew", k, c)
		}
	}
	if int64(len(seen))+cw.sizes[2] != int64(g.NumEdges()) {
		t.Fatalf("gnew (%d) + Phi2 (%d) != m (%d)", len(seen), cw.sizes[2], g.NumEdges())
	}
}

// TestExactSupportsMatchesInMemory validates the partitioned support
// accumulation against the in-memory triangle counter.
func TestExactSupportsMatchesInMemory(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 5; trial++ {
		n := 15 + r.Intn(40)
		m := 2*n + r.Intn(3*n)
		var edges []graph.Edge
		for i := 0; i < m; i++ {
			edges = append(edges, graph.Edge{U: uint32(r.Intn(n)), V: uint32(r.Intn(n))})
		}
		g := graph.FromEdges(edges)
		want := triangle.Supports(g)

		dir := t.TempDir()
		h, err := gio.NewSpool[gio.EdgeAux2](dir, "h", gio.EdgeAux2Codec{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		w, err := h.Create()
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range g.Edges() {
			if err := w.Write(gio.EdgeAux2{U: e.U, V: e.V}); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		sups, err := ExactSupports(context.Background(), h, g.NumVertices(), Config{Budget: 48, Seed: int64(trial), TempDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		count := 0
		if err := sups.ForEach(func(rec gio.EdgeAux) error {
			count++
			id, ok := g.EdgeID(rec.U, rec.V)
			if !ok {
				t.Errorf("support record for non-edge (%d,%d)", rec.U, rec.V)
				return nil
			}
			if rec.Aux != want[id] {
				t.Errorf("edge (%d,%d): sup=%d want %d", rec.U, rec.V, rec.Aux, want[id])
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if count != g.NumEdges() {
			t.Fatalf("got %d support records for %d edges", count, g.NumEdges())
		}
		sups.Remove()
	}
}
