package embu

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/extsort"
	"repro/internal/gio"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/triangle"
)

// Residual record layout during LowerBounding and in Gnew:
// A = phi(e), the lower bound on the truss number (>= 2);
// B = accumulated exact triangle count of e (support in the original G).

// maxFruitlessIters bounds the number of consecutive LowerBounding
// iterations allowed to make no progress before the run is aborted. With
// the randomized partitioner (re-seeded every iteration) the probability of
// hitting this is negligible; it exists to turn a logic bug into an error
// instead of an infinite loop.
const maxFruitlessIters = 64

// LowerBound runs Algorithm 3 on the disk-resident edge stream `input`
// (records assumed canonical and deduplicated, endpoints < n): it computes,
// for every edge, a lower bound phi(e) on the truss number and the exact
// support sup(e) in the input graph, emits the 2-class to cw, and returns
// the residual graph Gnew as a stream of (u, v, phi, sup) records.
func LowerBound(ctx context.Context, input *gio.Spool[gio.EdgeRec], n int, cfg Config, cw *classWriter, trace *Trace) (*gio.Spool[gio.EdgeAux2], error) {
	return lowerBoundEmit(ctx, input, n, cfg, func(u, v uint32) error { return cw.emit(u, v, 2) }, trace)
}

// Prepare is the exported form of the LowerBounding stage used by the
// top-down algorithm (Algorithm 7, Step 1 calls Algorithm 3): phi2 receives
// every 2-class edge, and the returned Gnew carries (phi, sup) per edge.
// The returned trace reports the iteration count.
func Prepare(ctx context.Context, input *gio.Spool[gio.EdgeRec], n int, cfg Config, phi2 func(u, v uint32) error) (*gio.Spool[gio.EdgeAux2], Trace, error) {
	var trace Trace
	gnew, err := lowerBoundEmit(ctx, input, n, cfg, phi2, &trace)
	return gnew, trace, err
}

func lowerBoundEmit(ctx context.Context, input *gio.Spool[gio.EdgeRec], n int, cfg Config, emitPhi2 func(u, v uint32) error, trace *Trace) (*gio.Spool[gio.EdgeAux2], error) {
	cfg = cfg.withDefaults()

	// Initialize the residual: phi = 2, accumulated support = 0.
	cur, err := gio.NewSpool[gio.EdgeAux2](cfg.TempDir, "residual", gio.EdgeAux2Codec{}, cfg.Stats)
	if err != nil {
		return nil, err
	}
	{
		w, err := cur.Create()
		if err != nil {
			return nil, err
		}
		err = input.ForEach(func(rec gio.EdgeRec) error {
			e := rec.Edge().Canon()
			return w.Write(gio.EdgeAux2{U: e.U, V: e.V, A: 2, B: 0})
		})
		if err != nil {
			w.Close()
			return nil, err
		}
		if err := w.Close(); err != nil {
			return nil, err
		}
	}

	gnew, err := gio.NewSpool[gio.EdgeAux2](cfg.TempDir, "gnew", gio.EdgeAux2Codec{}, cfg.Stats)
	if err != nil {
		cur.Remove()
		return nil, err
	}
	gw, err := gnew.Create()
	if err != nil {
		cur.Remove()
		gnew.Remove()
		return nil, err
	}
	// Every early return below (I/O error or cancellation) is a failure:
	// drop the working spools so an aborted run leaves nothing behind.
	success := false
	defer func() {
		if gw != nil {
			gw.Close()
		}
		if !success {
			cur.Remove()
			gnew.Remove()
		}
	}()

	fruitless := 0
	strategy := cfg.Strategy
	for iter := 0; cur.Count() > 0; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		trace.LBIterations++

		// Fast path: a residual that fits in the budget is one part whose
		// neighborhood subgraph is the residual itself; every edge is
		// internal, so the iteration finishes in memory.
		if cur.Count()*2 <= cfg.Budget {
			recs, err := cur.ReadAll()
			if err != nil {
				return nil, err
			}
			sg, recOf := buildSubgraph(recs)
			localPhi, err := core.DecomposeCtx(ctx, sg, core.Hooks{})
			if err != nil {
				return nil, err
			}
			localSup := triangle.Supports(sg)
			for id, e := range sg.Edges() {
				rec := recs[recOf[id]]
				sup := rec.B + localSup[id]
				if sup == 0 {
					if err := emitPhi2(e.U, e.V); err != nil {
						return nil, err
					}
					continue
				}
				phi := maxI32(rec.A, localPhi.Phi[id])
				if err := gw.Write(gio.EdgeAux2{U: e.U, V: e.V, A: phi, B: sup}); err != nil {
					return nil, err
				}
			}
			if err := cur.WriteAll(nil); err != nil {
				return nil, err
			}
			break
		}

		// Degrees of the residual graph.
		deg := make([]int32, n)
		if err := cur.ForEach(func(r gio.EdgeAux2) error {
			deg[r.U]++
			deg[r.V]++
			return nil
		}); err != nil {
			return nil, err
		}

		parts := partition.Partition(
			partition.Input{Degree: deg},
			partition.Config{Strategy: strategy, Budget: cfg.Budget, Seed: cfg.Seed + int64(iter)},
		)
		partOf := makePartIndex(n, parts)

		buckets, err := bucketByPart(cur, len(parts), partOf, cfg)
		if err != nil {
			return nil, err
		}
		defer removeSpools(buckets) // no-op on success; cleanup on abort

		// Lower-bound updates for external (cross-part) edges: the copy in
		// the lower endpoint's part carries the previous state, the other
		// carries only local deltas; a sort-merge combines the two.
		sorter := extsort.NewSorter[gio.EdgeAux2](gio.EdgeAux2Codec{}, recLess, extsort.Config{
			Budget: int(cfg.Budget),
			Dir:    cfg.TempDir,
			Stats:  cfg.Stats,
		})
		defer sorter.Discard() // no-op once Sort hands runs to the iterator

		progress := false
		for pi := range parts {
			recs, err := buckets[pi].ReadAll()
			if err != nil {
				return nil, err
			}
			if err := buckets[pi].Remove(); err != nil {
				return nil, err
			}
			if len(recs) == 0 {
				continue
			}
			sg, recOf := buildSubgraph(recs)
			localPhi, err := core.DecomposeCtx(ctx, sg, core.Hooks{})
			if err != nil {
				return nil, err
			}
			localSup := triangle.Supports(sg)
			for id, e := range sg.Edges() {
				rec := recs[recOf[id]]
				internal := partOf[e.U] == int32(pi) && partOf[e.V] == int32(pi)
				if internal {
					sup := rec.B + localSup[id]
					if sup == 0 {
						if err := emitPhi2(e.U, e.V); err != nil {
							return nil, err
						}
					} else {
						phi := maxI32(rec.A, localPhi.Phi[id])
						if err := gw.Write(gio.EdgeAux2{U: e.U, V: e.V, A: phi, B: sup}); err != nil {
							return nil, err
						}
					}
					progress = true
					continue
				}
				// External edge: emit an update record.
				up := gio.EdgeAux2{U: e.U, V: e.V, A: localPhi.Phi[id], B: localSup[id]}
				if partOf[e.U] == int32(pi) {
					// The lower endpoint's copy carries the previous state.
					up.A = maxI32(rec.A, up.A)
					up.B += rec.B
				}
				if err := sorter.Push(up); err != nil {
					return nil, err
				}
			}
		}

		// Merge the per-part updates (exactly two per surviving edge) into
		// the next residual.
		next, err := gio.NewSpool[gio.EdgeAux2](cfg.TempDir, "residual", gio.EdgeAux2Codec{}, cfg.Stats)
		if err != nil {
			return nil, err
		}
		nw, err := next.Create()
		if err != nil {
			next.Remove()
			return nil, err
		}
		it, err := sorter.Sort()
		if err != nil {
			nw.Close()
			next.Remove()
			return nil, err
		}
		var pending *gio.EdgeAux2
		mergeErr := it.ForEach(func(rec gio.EdgeAux2) error {
			if pending != nil && pending.U == rec.U && pending.V == rec.V {
				merged := gio.EdgeAux2{
					U: rec.U, V: rec.V,
					A: maxI32(pending.A, rec.A),
					B: pending.B + rec.B,
				}
				pending = nil
				return nw.Write(merged)
			}
			if pending != nil {
				// Defensive: an unpaired update would mean a bucketing bug.
				return fmt.Errorf("embu: unpaired update for edge (%d,%d)", pending.U, pending.V)
			}
			r := rec
			pending = &r
			return nil
		})
		if mergeErr != nil {
			nw.Close()
			next.Remove()
			return nil, mergeErr
		}
		if pending != nil {
			nw.Close()
			next.Remove()
			return nil, fmt.Errorf("embu: unpaired trailing update for edge (%d,%d)", pending.U, pending.V)
		}
		if err := nw.Close(); err != nil {
			next.Remove()
			return nil, err
		}
		if err := cur.ReplaceWith(next); err != nil {
			return nil, err
		}

		if progress {
			fruitless = 0
		} else {
			fruitless++
			// A fruitless iteration means no part had an internal edge.
			// Switch to (re-seeded) randomized partitioning, which makes
			// progress with high probability on any residual.
			strategy = partition.Randomized
			if fruitless >= maxFruitlessIters {
				return nil, fmt.Errorf("embu: lower-bounding stalled after %d fruitless iterations", fruitless)
			}
		}
	}
	if err := cur.Remove(); err != nil {
		return nil, err
	}
	w := gw
	gw = nil
	if err := w.Close(); err != nil {
		return nil, err
	}
	success = true
	return gnew, nil
}

func maxI32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

func recLess(a, b gio.EdgeAux2) bool {
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}

// makePartIndex inverts a partition into a vertex -> part-ID array (-1 for
// vertices outside every part).
func makePartIndex(n int, parts partition.Parts) []int32 {
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = -1
	}
	for pi, p := range parts {
		for _, v := range p {
			idx[v] = int32(pi)
		}
	}
	return idx
}

// removeSpools best-effort deletes whatever bucket files a cancelled or
// failed pass left behind. Buckets already consumed (and removed) by the
// pass are gone; their second Remove error is ignored.
func removeSpools[T any](sps []*gio.Spool[T]) {
	for _, sp := range sps {
		if sp != nil {
			sp.Remove()
		}
	}
}

// maxOpenBuckets bounds simultaneously open bucket writers; when a
// partition has more parts, the residual is scanned once per wave of
// buckets (the file-handle analog of the memory budget).
const maxOpenBuckets = 256

// bucketByPart routes each residual edge to the bucket of every part it is
// incident to: at most two writes per edge, one residual scan per wave of
// maxOpenBuckets parts.
func bucketByPart(cur *gio.Spool[gio.EdgeAux2], nParts int, partOf []int32, cfg Config) ([]*gio.Spool[gio.EdgeAux2], error) {
	buckets := make([]*gio.Spool[gio.EdgeAux2], nParts)
	for i := range buckets {
		sp, err := gio.NewSpool[gio.EdgeAux2](cfg.TempDir, fmt.Sprintf("bucket%d", i), gio.EdgeAux2Codec{}, cfg.Stats)
		if err != nil {
			removeSpools(buckets)
			return nil, err
		}
		buckets[i] = sp
	}
	for lo := 0; lo < nParts; lo += maxOpenBuckets {
		hi := lo + maxOpenBuckets
		if hi > nParts {
			hi = nParts
		}
		writers := make([]*gio.SpoolWriter[gio.EdgeAux2], hi-lo)
		for i := range writers {
			w, err := buckets[lo+i].Create()
			if err != nil {
				for _, open := range writers[:i] {
					open.Close()
				}
				removeSpools(buckets)
				return nil, err
			}
			writers[i] = w
		}
		inWave := func(p int32) bool { return p >= int32(lo) && p < int32(hi) }
		err := cur.ForEach(func(r gio.EdgeAux2) error {
			pu, pv := partOf[r.U], partOf[r.V]
			if pu >= 0 && inWave(pu) {
				if err := writers[pu-int32(lo)].Write(r); err != nil {
					return err
				}
			}
			if pv >= 0 && pv != pu && inWave(pv) {
				if err := writers[pv-int32(lo)].Write(r); err != nil {
					return err
				}
			}
			return nil
		})
		for _, w := range writers {
			if cerr := w.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		if err != nil {
			removeSpools(buckets)
			return nil, err
		}
	}
	return buckets, nil
}

// buildSubgraph materializes the records of one neighborhood subgraph and
// returns the graph plus a mapping from its edge IDs back to record
// indices.
func buildSubgraph(recs []gio.EdgeAux2) (*graph.Graph, []int32) {
	edges := make([]graph.Edge, len(recs))
	for i, r := range recs {
		edges[i] = graph.Edge{U: r.U, V: r.V}
	}
	g := graph.FromEdges(edges)
	recOf := make([]int32, g.NumEdges())
	byKey := make(map[uint64]int32, len(recs))
	for i, r := range recs {
		byKey[r.Key()] = int32(i)
	}
	for id, e := range g.Edges() {
		recOf[id] = byKey[e.Key()]
	}
	return g, recOf
}
