// Package embu implements the paper's bottom-up I/O-efficient truss
// decomposition (Section 5): the LowerBounding stage (Algorithm 3) that
// computes per-edge truss-number lower bounds and the 2-class while
// shrinking the graph partition by partition, and the bottom-up stage
// (Algorithm 4 with Procedures 5 and 9) that extracts a candidate
// neighborhood subgraph NS(U_k) per k and peels the k-class from it.
//
// The graph lives on disk as streams of fixed-size records (package gio);
// only structures bounded by the configured memory budget are ever
// materialized. One refinement over the paper's pseudocode: each residual
// edge carries an accumulated triangle count in addition to its bound, so
// supports stay exact with respect to the *original* graph even though the
// residual loses edges between iterations — every triangle is counted at
// the unique (iteration, part) where its first edge becomes internal. This
// makes the 2-class test (sup = 0) sound, which Theorem 2 requires.
package embu

import (
	"os"

	"repro/internal/gio"
	"repro/internal/partition"
)

// Config parameterizes the external-memory decomposition.
type Config struct {
	// Budget is the memory budget M, measured in adjacency entries (an
	// in-memory subgraph with e edges consumes 2e entries). Defaults to
	// 1<<22 (enough for graphs of ~2M edges fully in memory).
	Budget int64
	// Strategy selects the vertex partitioner (default Randomized, which
	// carries the O(m/M) iteration bound of Chu & Cheng [13]).
	Strategy partition.Strategy
	// Seed drives the randomized partitioner.
	Seed int64
	// TempDir holds spools and sort runs (default os.TempDir()).
	TempDir string
	// Stats, if non-nil, accumulates all disk traffic.
	Stats *gio.Stats
	// OnRound, if non-nil, is invoked at the start of every bottom-up
	// candidate round with the class level k being attempted. It runs on
	// the decomposing goroutine and must be cheap.
	OnRound func(k int32)
}

func (c Config) withDefaults() Config {
	if c.Budget <= 0 {
		c.Budget = 1 << 22
	}
	if c.Budget < 64 {
		c.Budget = 64 // floor: tiny test budgets still need a workable part
	}
	if c.TempDir == "" {
		c.TempDir = os.TempDir()
	}
	return c
}

// Trace records how the run unfolded, for the experiment harness.
type Trace struct {
	// LBIterations is the number of LowerBounding passes (Algorithm 3).
	LBIterations int
	// Rounds is the number of bottom-up candidate rounds (values of k
	// attempted in Algorithm 4).
	Rounds int
	// OversizeRounds counts rounds whose candidate subgraph exceeded the
	// budget and went through Procedure 9.
	OversizeRounds int
	// Proc9Passes counts full partitioned passes inside Procedure 9.
	Proc9Passes int
}

// Result is the output of a bottom-up decomposition: the k-classes as a
// disk-resident stream plus in-memory summaries.
type Result struct {
	// Classes holds one (u, v, phi) record per edge of the input graph.
	Classes *gio.Spool[gio.EdgeAux]
	// ClassSizes maps k to |Phi_k|.
	ClassSizes map[int32]int64
	// KMax is the maximum truss number (0 for an edgeless input).
	KMax int32
	// NumVertices is the vertex-ID space of the input.
	NumVertices int
	// Trace describes the run.
	Trace Trace
}

// PhiMap loads the full decomposition into memory keyed by canonical edge.
// Intended for tests and small graphs.
func (r *Result) PhiMap() (map[uint64]int32, error) {
	out := make(map[uint64]int32, r.Classes.Count())
	err := r.Classes.ForEach(func(rec gio.EdgeAux) error {
		out[rec.Key()] = rec.Aux
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Close removes the result's backing files.
func (r *Result) Close() error { return r.Classes.Remove() }

// classWriter appends classified edges to the result spool.
type classWriter struct {
	w     *gio.SpoolWriter[gio.EdgeAux]
	sizes map[int32]int64
	kmax  int32
}

func (cw *classWriter) emit(u, v uint32, k int32) error {
	cw.sizes[k]++
	if k > cw.kmax {
		cw.kmax = k
	}
	return cw.w.Write(gio.EdgeAux{U: u, V: v, Aux: k})
}
