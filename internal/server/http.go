package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/graph"
	"repro/internal/index"
)

// HTTP API (all responses JSON):
//
//	GET    /healthz                          liveness probe
//	GET    /v1/graphs                        list registered graphs
//	POST   /v1/graphs/{name}                 load a graph: {"path":"..."} or {"edges":[[u,v],...]}
//	DELETE /v1/graphs/{name}                 drop a graph
//	GET    /v1/graphs/{name}                 graph status + summary stats
//	POST   /v1/graphs/{name}/edges           insert edges: {"edges":[[u,v],...]} (or {"adds":...,"dels":...})
//	DELETE /v1/graphs/{name}/edges           delete edges: {"edges":[[u,v],...]}
//	GET    /v1/graphs/{name}/truss?u=&v=     truss number of one edge
//	GET    /v1/graphs/{name}/community?u=&v=&k=   k-truss community containing an edge
//	GET    /v1/graphs/{name}/histogram       class sizes |Phi_k| for all k
//	GET    /v1/graphs/{name}/topclasses?t=&edges=1   top-t k-classes, optionally with edges
//
// The mutation endpoints maintain the decomposition incrementally and
// bump the graph's monotonic version counter; with -data-dir they are
// durable (WAL + snapshot) and survive restarts.

// GraphInfo is the JSON summary of a registry entry.
type GraphInfo struct {
	Name      string `json:"name"`
	State     string `json:"state"`
	Error     string `json:"error,omitempty"`
	Source    string `json:"source,omitempty"`
	Vertices  int    `json:"vertices,omitempty"`
	Edges     int    `json:"edges,omitempty"`
	KMax      int32  `json:"kmax,omitempty"`
	Epoch     int    `json:"epoch,omitempty"`
	Version   uint64 `json:"version,omitempty"`
	BuildMS   int64  `json:"build_ms,omitempty"`
	IndexSize int64  `json:"index_bytes,omitempty"`
	LoadedAt  string `json:"loaded_at,omitempty"`
}

func entryInfo(e *Entry) GraphInfo {
	info := GraphInfo{
		Name:    e.Name,
		State:   string(e.State),
		Error:   e.Err,
		Source:  e.Source,
		Epoch:   e.Epoch,
		Version: e.Version,
	}
	if e.Index != nil {
		info.Vertices = e.Index.Graph().NumVertices()
		info.Edges = e.Index.NumEdges()
		info.KMax = e.Index.KMax()
		info.IndexSize = e.Index.FootprintBytes()
	}
	if !e.LoadedAt.IsZero() {
		info.LoadedAt = e.LoadedAt.UTC().Format(time.RFC3339)
		info.BuildMS = e.BuildTime.Milliseconds()
	}
	return info
}

// Handler returns the HTTP API over the server's registry.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "graphs": len(s.Entries())})
	})
	mux.HandleFunc("GET /v1/graphs", s.handleList)
	mux.HandleFunc("POST /v1/graphs/{name}", s.handleLoad)
	mux.HandleFunc("DELETE /v1/graphs/{name}", s.handleDelete)
	mux.HandleFunc("GET /v1/graphs/{name}", s.withEntry(s.handleInfo))
	mux.HandleFunc("POST /v1/graphs/{name}/edges", s.handleMutate(false))
	mux.HandleFunc("DELETE /v1/graphs/{name}/edges", s.handleMutate(true))
	mux.HandleFunc("GET /v1/graphs/{name}/truss", s.withIndex(s.handleTruss))
	mux.HandleFunc("GET /v1/graphs/{name}/community", s.withIndex(s.handleCommunity))
	mux.HandleFunc("GET /v1/graphs/{name}/histogram", s.withIndex(s.handleHistogram))
	mux.HandleFunc("GET /v1/graphs/{name}/topclasses", s.withIndex(s.handleTopClasses))
	return mux
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	entries := s.Entries()
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	infos := make([]GraphInfo, len(entries))
	for i, e := range entries {
		infos[i] = entryInfo(e)
	}
	writeJSON(w, http.StatusOK, map[string]any{"graphs": infos})
}

// loadRequest is the body of POST /v1/graphs/{name}. Exactly one of Path
// and Edges must be set.
type loadRequest struct {
	// Path is a server-side graph file (SNAP text, or .bin).
	Path string `json:"path"`
	// Edges is an inline edge list, each element a [u, v] pair.
	Edges [][2]uint32 `json:"edges"`
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if max := s.opts.maxBodyBytes(); max > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, max)
	}
	var req loadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, "bad request body: %v", err)
		return
	}
	switch {
	case req.Path != "" && req.Edges != nil:
		writeError(w, http.StatusBadRequest, "set exactly one of path and edges")
		return
	case req.Path != "":
		if err := s.LoadFileAsync(name, req.Path); err != nil {
			// Report the failure class without echoing the underlying
			// error: gio parse errors quote file contents, which must
			// not leak to network clients. The detail goes to the log.
			s.logf("loading %q from %s: %v", name, req.Path, err)
			if errors.Is(err, fs.ErrNotExist) {
				writeError(w, http.StatusBadRequest, "loading %s: file not found", req.Path)
			} else {
				writeError(w, http.StatusBadRequest, "loading %s: not a readable graph file (see server log)", req.Path)
			}
			return
		}
	case req.Edges != nil:
		if limit := s.opts.maxInlineVertexID(); limit > 0 {
			for _, e := range req.Edges {
				if int64(e[0]) > limit || int64(e[1]) > limit {
					writeError(w, http.StatusBadRequest,
						"inline vertex ID %d exceeds the limit %d (load large graphs by path)",
						max(e[0], e[1]), limit)
					return
				}
			}
		}
		b := graph.NewBuilder(len(req.Edges))
		for _, e := range req.Edges {
			b.AddEdge(e[0], e[1])
		}
		s.BuildAsync(name, b.Build(), "inline")
	default:
		writeError(w, http.StatusBadRequest, "set exactly one of path and edges")
		return
	}
	// The entry can already be gone again if a DELETE raced the load;
	// report the accepted build rather than dereferencing nothing.
	info := GraphInfo{Name: name, State: string(StateBuilding)}
	if e, ok := s.Lookup(name); ok {
		info = entryInfo(e)
	}
	writeJSON(w, http.StatusAccepted, info)
}

// mutateRequest is the body of the mutation endpoints. POST treats Edges
// as insertions (Adds/Dels allow a mixed batch); DELETE treats Edges as
// deletions.
type mutateRequest struct {
	Edges [][2]uint32 `json:"edges"`
	Adds  [][2]uint32 `json:"adds"`
	Dels  [][2]uint32 `json:"dels"`
}

// handleMutate serves POST (insert / mixed) and DELETE (delete) on
// /v1/graphs/{name}/edges.
func (s *Server) handleMutate(deleteMode bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		if max := s.opts.maxBodyBytes(); max > 0 {
			r.Body = http.MaxBytesReader(w, r.Body, max)
		}
		var req mutateRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			status := http.StatusBadRequest
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				status = http.StatusRequestEntityTooLarge
			}
			writeError(w, status, "bad request body: %v", err)
			return
		}
		var adds, dels [][2]uint32
		if deleteMode {
			if req.Adds != nil || req.Dels != nil {
				writeError(w, http.StatusBadRequest, "DELETE takes only edges (use POST for mixed batches)")
				return
			}
			dels = req.Edges
		} else {
			adds = append(req.Edges, req.Adds...)
			dels = req.Dels
		}
		if len(adds) == 0 && len(dels) == 0 {
			writeError(w, http.StatusBadRequest, "empty mutation batch")
			return
		}
		if limit := s.opts.maxInlineVertexID(); limit > 0 {
			// Insertions allocate O(max vertex ID); deletions of absent
			// edges are no-ops and need no cap.
			for _, e := range adds {
				if int64(e[0]) > limit || int64(e[1]) > limit {
					writeError(w, http.StatusBadRequest,
						"vertex ID %d exceeds the limit %d", max(e[0], e[1]), limit)
					return
				}
			}
		}
		entry, res, err := s.Mutate(r.Context(), name, toEdges(adds), toEdges(dels))
		switch {
		case errors.Is(err, ErrNoGraph):
			writeError(w, http.StatusNotFound, "no graph %q", name)
			return
		case errors.Is(err, ErrNotReady):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "graph %q still building", name)
			return
		case err != nil:
			writeError(w, http.StatusConflict, "mutating %q: %v", name, err)
			return
		}
		info := entryInfo(entry)
		writeJSON(w, http.StatusOK, map[string]any{
			"graph":      info,
			"version":    entry.Version,
			"changed":    res.Stats.Changed,
			"region":     res.Stats.Region,
			"fallback":   res.Stats.FellBack,
			"expansions": res.Stats.Expansions,
		})
	}
}

// toEdges converts JSON pairs to canonical graph edges.
func toEdges(pairs [][2]uint32) []graph.Edge {
	out := make([]graph.Edge, len(pairs))
	for i, p := range pairs {
		out[i] = graph.Edge{U: p[0], V: p[1]}
	}
	return out
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.Remove(name) {
		writeError(w, http.StatusNotFound, "no graph %q", name)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"removed": name})
}

// withEntry resolves {name} to a registry entry.
func (s *Server) withEntry(fn func(http.ResponseWriter, *http.Request, *Entry)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		e, ok := s.Lookup(r.PathValue("name"))
		if !ok {
			writeError(w, http.StatusNotFound, "no graph %q", r.PathValue("name"))
			return
		}
		fn(w, r, e)
	}
}

// withIndex additionally requires a resident index (503 while a first
// build is still in flight, 500 after a failed build).
func (s *Server) withIndex(fn func(http.ResponseWriter, *http.Request, *index.TrussIndex)) http.HandlerFunc {
	return s.withEntry(func(w http.ResponseWriter, r *http.Request, e *Entry) {
		if e.Index == nil {
			switch e.State {
			case StateFailed:
				writeError(w, http.StatusInternalServerError, "graph %q failed: %s", e.Name, e.Err)
			default:
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusServiceUnavailable, "graph %q still building", e.Name)
			}
			return
		}
		fn(w, r, e.Index)
	})
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request, e *Entry) {
	writeJSON(w, http.StatusOK, entryInfo(e))
}

func (s *Server) handleTruss(w http.ResponseWriter, r *http.Request, ix *index.TrussIndex) {
	u, v, ok := edgeParams(w, r)
	if !ok {
		return
	}
	k, found := ix.TrussNumber(u, v)
	resp := map[string]any{"u": u, "v": v, "found": found}
	if found {
		resp["truss"] = k
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCommunity(w http.ResponseWriter, r *http.Request, ix *index.TrussIndex) {
	u, v, ok := edgeParams(w, r)
	if !ok {
		return
	}
	k64, err := strconv.ParseInt(r.URL.Query().Get("k"), 10, 32)
	if err != nil || k64 < 3 {
		writeError(w, http.StatusBadRequest, "k must be an integer >= 3")
		return
	}
	k := int32(k64)
	edges, found := ix.CommunityOf(u, v, k)
	resp := map[string]any{"u": u, "v": v, "k": k, "found": found}
	if found {
		resp["size"] = len(edges)
		resp["edges"] = edgePairs(ix, edges)
		resp["vertices"] = ix.Vertices(edges)
	}
	writeJSON(w, http.StatusOK, resp)
}

// edgePairs expands edge IDs into [u,v] endpoint pairs for JSON output.
func edgePairs(ix *index.TrussIndex, ids []int32) [][2]uint32 {
	pairs := make([][2]uint32, len(ids))
	for i, id := range ids {
		e := ix.Graph().Edge(id)
		pairs[i] = [2]uint32{e.U, e.V}
	}
	return pairs
}

func (s *Server) handleHistogram(w http.ResponseWriter, r *http.Request, ix *index.TrussIndex) {
	sizes := ix.Histogram()
	classes := map[string]int64{}
	for k, n := range sizes {
		if n > 0 {
			classes[strconv.Itoa(k)] = n
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"kmax":    ix.KMax(),
		"edges":   ix.NumEdges(),
		"classes": classes,
	})
}

func (s *Server) handleTopClasses(w http.ResponseWriter, r *http.Request, ix *index.TrussIndex) {
	t := 0
	if raw := r.URL.Query().Get("t"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "t must be a non-negative integer")
			return
		}
		t = v
	}
	withEdges := r.URL.Query().Get("edges") == "1"
	type classJSON struct {
		K     int32       `json:"k"`
		Size  int         `json:"size"`
		Edges [][2]uint32 `json:"edges,omitempty"`
	}
	classes := ix.TopClasses(t)
	out := make([]classJSON, len(classes))
	for i, c := range classes {
		out[i] = classJSON{K: c.K, Size: len(c.Edges)}
		if withEdges {
			out[i].Edges = edgePairs(ix, c.Edges)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"kmax": ix.KMax(), "classes": out})
}

// edgeParams parses the u and v query parameters, writing a 400 on error.
func edgeParams(w http.ResponseWriter, r *http.Request) (u, v uint32, ok bool) {
	q := r.URL.Query()
	pu, err1 := strconv.ParseUint(q.Get("u"), 10, 32)
	pv, err2 := strconv.ParseUint(q.Get("v"), 10, 32)
	if err1 != nil || err2 != nil {
		writeError(w, http.StatusBadRequest, "u and v must be uint32 query parameters")
		return 0, 0, false
	}
	return uint32(pu), uint32(pv), true
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(body)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
