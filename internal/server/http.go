package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"mime"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/index"
)

// HTTP API (responses JSON unless noted):
//
//	GET    /healthz                          liveness probe
//	GET    /v1/graphs                        list registered graphs
//	POST   /v1/graphs/{name}                 load a graph: {"path":"..."} or {"edges":[[u,v],...]}
//	DELETE /v1/graphs/{name}                 drop a graph
//	GET    /v1/graphs/{name}                 graph status + summary stats
//	POST   /v1/graphs/{name}/edges           insert edges: {"edges":[[u,v],...]} (or {"adds":...,"dels":...})
//	DELETE /v1/graphs/{name}/edges           delete edges: {"edges":[[u,v],...]}
//	POST   /v1/graphs/{name}/edges:stream    NDJSON mutation firehose with per-chunk acks (see stream.go)
//	GET    /v1/graphs/{name}/edges?k=        stream the k-truss edges as NDJSON (k=0: all edges)
//	POST   /v1/graphs/{name}/query           batched truss-number lookups: {"pairs":[[u,v],...]}
//	GET    /v1/graphs/{name}/truss?u=&v=     truss number of one edge
//	GET    /v1/graphs/{name}/community?u=&v=&k=   k-truss community containing an edge
//	GET    /v1/graphs/{name}/communities?k=&limit=   all k-truss communities at level k
//	GET    /v1/graphs/{name}/histogram       class sizes |Phi_k| for all k
//	GET    /v1/graphs/{name}/topclasses?t=&edges=1   top-t k-classes, optionally with edges
//	GET    /v1/graphs/{name}/wal?from=       long-poll NDJSON tail of committed mutations (replication)
//	GET    /v1/replication/manifest          graphs + snapshot metadata for followers
//	GET    /v1/replication/graphs/{name}/indexfile   raw snapshot bytes for follower hydration
//
// Known paths hit with an unregistered method get a 405 with an Allow
// header; body-bearing requests with a non-JSON Content-Type get a 415.
// The mutation endpoints maintain the decomposition incrementally and
// bump the graph's monotonic version counter; with -data-dir they are
// durable (WAL + snapshot) and survive restarts.
//
// Every graph-scoped read response carries the answering entry's version
// in an X-Truss-Version header, and a request may pin a consistency
// floor with X-Truss-Min-Version: a server whose entry is older answers
// 412 (the fan-out client.Router uses this for read-your-writes across
// replicas — retry a lagging replica elsewhere instead of serving a
// stale answer).
//
// The edges stream is one NDJSON object per line, in truss-number
// descending order (so T_k prefixes arrive innermost-first):
//
//	{"u":3,"v":7,"truss":5}
//
// It is the wire format of the client package's KTrussEdges iterator.

// GraphInfo is the JSON summary of a registry entry.
type GraphInfo struct {
	Name      string `json:"name"`
	State     string `json:"state"`
	Error     string `json:"error,omitempty"`
	Source    string `json:"source,omitempty"`
	Vertices  int    `json:"vertices,omitempty"`
	Edges     int    `json:"edges,omitempty"`
	KMax      int32  `json:"kmax,omitempty"`
	Epoch     int    `json:"epoch,omitempty"`
	Version   uint64 `json:"version,omitempty"`
	BuildMS   int64  `json:"build_ms,omitempty"`
	IndexSize int64  `json:"index_bytes,omitempty"`
	LoadedAt  string `json:"loaded_at,omitempty"`
}

func entryInfo(e *Entry) GraphInfo {
	info := GraphInfo{
		Name:    e.Name,
		State:   string(e.State),
		Error:   e.Err,
		Source:  e.Source,
		Epoch:   e.Epoch,
		Version: e.Version,
	}
	if e.Index != nil {
		info.Vertices = e.Index.Graph().NumVertices()
		info.Edges = e.Index.NumEdges()
		info.KMax = e.Index.KMax()
		info.IndexSize = e.Index.FootprintBytes()
	}
	if !e.LoadedAt.IsZero() {
		info.LoadedAt = e.LoadedAt.UTC().Format(time.RFC3339)
		info.BuildMS = e.BuildTime.Milliseconds()
	}
	return info
}

// Handler returns the HTTP API over the server's registry, wrapped in the
// serving middleware stack (request IDs, optional access log, per-route
// metrics, admission control — see middleware.go). Operational endpoints
// ride alongside the API: /healthz (liveness), /readyz (readiness, 503
// until every initial build has published), /metrics (Prometheus text,
// unless disabled), and opt-in /debug/pprof.
func (s *Server) Handler() http.Handler {
	// Middleware, outermost first: request IDs so every later layer shares
	// one identifier; observation wrapping admission so shed 429s appear in
	// the per-route counters; admission innermost, guarding only real work.
	var h http.Handler = s.apiMux()
	h = &admission{limit: int64(s.opts.MaxInFlight), m: s.metrics, next: h}
	var logger *accessLogger
	if s.opts.AccessLog != nil {
		logger = &accessLogger{out: s.opts.AccessLog}
	}
	h = withObservation(s.metrics, logger, h)
	return withRequestID(h)
}

// apiMux builds the bare route mux — the handler stack minus middleware.
// BenchmarkObsOverhead serves it directly to price the middleware.
func (s *Server) apiMux() *http.ServeMux {
	mux := http.NewServeMux()
	type route struct {
		method, path string
		handler      http.HandlerFunc
	}
	routes := []route{
		{"GET", "/healthz", func(w http.ResponseWriter, r *http.Request) {
			WriteJSON(w, http.StatusOK, map[string]any{"ok": true, "graphs": len(s.Entries())})
		}},
		{"GET", "/readyz", s.handleReady},
		{"GET", "/v1/graphs", s.handleList},
		{"POST", "/v1/graphs/{name}", s.handleLoad},
		{"DELETE", "/v1/graphs/{name}", s.handleDelete},
		{"GET", "/v1/graphs/{name}", s.withEntry(s.handleInfo)},
		{"POST", "/v1/graphs/{name}/edges", s.handleMutate(false)},
		{"DELETE", "/v1/graphs/{name}/edges", s.handleMutate(true)},
		{"POST", "/v1/graphs/{name}/edges:stream", s.handleIngestStream},
		{"GET", "/v1/graphs/{name}/edges", s.withIndex(s.handleEdgesStream)},
		{"POST", "/v1/graphs/{name}/query", s.withIndex(s.handleQuery)},
		{"GET", "/v1/graphs/{name}/truss", s.withIndex(s.handleTruss)},
		{"GET", "/v1/graphs/{name}/community", s.withIndex(s.handleCommunity)},
		{"GET", "/v1/graphs/{name}/communities", s.withIndex(s.handleCommunities)},
		{"GET", "/v1/graphs/{name}/histogram", s.withIndex(s.handleHistogram)},
		{"GET", "/v1/graphs/{name}/topclasses", s.withIndex(s.handleTopClasses)},
		{"GET", "/v1/graphs/{name}/wal", s.handleWALTail},
		{"GET", "/v1/replication/manifest", s.handleReplManifest},
		{"GET", "/v1/replication/graphs/{name}/indexfile", s.handleReplIndexfile},
	}
	allowed := map[string][]string{}
	for _, rt := range routes {
		mux.HandleFunc(rt.method+" "+rt.path, rt.handler)
		allowed[rt.path] = append(allowed[rt.path], rt.method)
	}
	// A method-less pattern per known path catches every method no
	// handler above claims; the method-specific patterns win on
	// precedence, so this only fires on mismatches. It replaces the
	// stdlib's plain-text 405 with the API's JSON error shape while
	// keeping the proper Allow header.
	if !s.opts.DisableMetricsEndpoint {
		mux.HandleFunc("GET /metrics", s.handleMetrics)
		allowed["/metrics"] = []string{"GET"}
	}
	for path, methods := range allowed {
		sort.Strings(methods)
		allow := strings.Join(methods, ", ")
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Allow", allow)
			WriteError(w, http.StatusMethodNotAllowed, "method %s not allowed (allow: %s)", r.Method, allow)
		})
	}
	if s.opts.EnablePprof {
		// Explicit registration (not the pprof package's DefaultServeMux
		// side effect) keeps the exposure a deliberate, per-server choice.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// handleReady serves GET /readyz: 200 once every registered graph has a
// resident index (rebuilds of already-resident graphs do not drop
// readiness — the previous index keeps serving), 503 with the pending
// names while first builds are in flight or shutdown has begun.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	ready, pending := s.Ready()
	if ready {
		WriteJSON(w, http.StatusOK, map[string]any{"ready": true})
		return
	}
	w.Header().Set("Retry-After", "1")
	WriteJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "pending": pending})
}

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.reg.WritePrometheus(w)
}

// requireJSON enforces a JSON request Content-Type on body-bearing
// endpoints: application/json (parameters allowed) and +json media types
// pass, a missing Content-Type is tolerated, anything else — a form
// post, multipart, text — is rejected with 415 up front instead of
// surfacing later as a confusing JSON decode error.
func requireJSON(w http.ResponseWriter, r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return true
	}
	if mt, _, err := mime.ParseMediaType(ct); err == nil &&
		(mt == "application/json" || strings.HasSuffix(mt, "+json")) {
		return true
	}
	WriteError(w, http.StatusUnsupportedMediaType,
		"unsupported Content-Type %q: send application/json", ct)
	return false
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	entries := s.Entries()
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	infos := make([]GraphInfo, len(entries))
	for i, e := range entries {
		infos[i] = entryInfo(e)
	}
	WriteJSON(w, http.StatusOK, map[string]any{"graphs": infos})
}

// loadRequest is the body of POST /v1/graphs/{name}. Exactly one of Path
// and Edges must be set.
type loadRequest struct {
	// Path is a server-side graph file (SNAP text, or .bin).
	Path string `json:"path"`
	// Edges is an inline edge list, each element a [u, v] pair.
	Edges [][2]uint32 `json:"edges"`
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	if s.rejectReadOnly(w) {
		return
	}
	if !requireJSON(w, r) {
		return
	}
	name := r.PathValue("name")
	if max := s.opts.maxBodyBytes(); max > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, max)
	}
	var req loadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		WriteError(w, status, "bad request body: %v", err)
		return
	}
	switch {
	case req.Path != "" && req.Edges != nil:
		WriteError(w, http.StatusBadRequest, "set exactly one of path and edges")
		return
	case req.Path != "":
		if err := s.LoadFileAsync(name, req.Path); err != nil {
			// Report the failure class without echoing the underlying
			// error: gio parse errors quote file contents, which must
			// not leak to network clients. The detail goes to the log.
			s.logf("loading %q from %s: %v", name, req.Path, err)
			if errors.Is(err, fs.ErrNotExist) {
				WriteError(w, http.StatusBadRequest, "loading %s: file not found", req.Path)
			} else {
				WriteError(w, http.StatusBadRequest, "loading %s: not a readable graph file (see server log)", req.Path)
			}
			return
		}
	case req.Edges != nil:
		if limit := s.opts.maxInlineVertexID(); limit > 0 {
			for _, e := range req.Edges {
				if int64(e[0]) > limit || int64(e[1]) > limit {
					WriteError(w, http.StatusBadRequest,
						"inline vertex ID %d exceeds the limit %d (load large graphs by path)",
						max(e[0], e[1]), limit)
					return
				}
			}
		}
		b := graph.NewBuilder(len(req.Edges))
		for _, e := range req.Edges {
			b.AddEdge(e[0], e[1])
		}
		s.BuildAsync(name, b.Build(), "inline")
	default:
		WriteError(w, http.StatusBadRequest, "set exactly one of path and edges")
		return
	}
	// The entry can already be gone again if a DELETE raced the load;
	// report the accepted build rather than dereferencing nothing.
	info := GraphInfo{Name: name, State: string(StateBuilding)}
	if e, ok := s.Lookup(name); ok {
		info = entryInfo(e)
	}
	WriteJSON(w, http.StatusAccepted, info)
}

// mutateRequest is the body of the mutation endpoints. POST treats Edges
// as insertions (Adds/Dels allow a mixed batch); DELETE treats Edges as
// deletions.
type mutateRequest struct {
	Edges [][2]uint32 `json:"edges"`
	Adds  [][2]uint32 `json:"adds"`
	Dels  [][2]uint32 `json:"dels"`
}

// handleMutate serves POST (insert / mixed) and DELETE (delete) on
// /v1/graphs/{name}/edges.
func (s *Server) handleMutate(deleteMode bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.rejectReadOnly(w) {
			return
		}
		if !requireJSON(w, r) {
			return
		}
		name := r.PathValue("name")
		if max := s.opts.maxBodyBytes(); max > 0 {
			r.Body = http.MaxBytesReader(w, r.Body, max)
		}
		var req mutateRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			status := http.StatusBadRequest
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				status = http.StatusRequestEntityTooLarge
			}
			WriteError(w, status, "bad request body: %v", err)
			return
		}
		var adds, dels [][2]uint32
		if deleteMode {
			if req.Adds != nil || req.Dels != nil {
				WriteError(w, http.StatusBadRequest, "DELETE takes only edges (use POST for mixed batches)")
				return
			}
			dels = req.Edges
		} else {
			adds = append(req.Edges, req.Adds...)
			dels = req.Dels
		}
		if len(adds) == 0 && len(dels) == 0 {
			WriteError(w, http.StatusBadRequest, "empty mutation batch")
			return
		}
		if limit := s.opts.maxInlineVertexID(); limit > 0 {
			// Insertions allocate O(max vertex ID); deletions of absent
			// edges are no-ops and need no cap.
			for _, e := range adds {
				if int64(e[0]) > limit || int64(e[1]) > limit {
					WriteError(w, http.StatusBadRequest,
						"vertex ID %d exceeds the limit %d", max(e[0], e[1]), limit)
					return
				}
			}
		}
		entry, res, err := s.Mutate(r.Context(), name, toEdges(adds), toEdges(dels))
		switch {
		case errors.Is(err, ErrNoGraph):
			WriteError(w, http.StatusNotFound, "no graph %q", name)
			return
		case errors.Is(err, ErrNotReady):
			w.Header().Set("Retry-After", "1")
			WriteError(w, http.StatusServiceUnavailable, "graph %q still building", name)
			return
		case err != nil:
			WriteError(w, http.StatusConflict, "mutating %q: %v", name, err)
			return
		}
		info := entryInfo(entry)
		WriteJSON(w, http.StatusOK, map[string]any{
			"graph":      info,
			"version":    entry.Version,
			"changed":    res.Stats.Changed,
			"region":     res.Stats.Region,
			"fallback":   res.Stats.FellBack,
			"expansions": res.Stats.Expansions,
		})
	}
}

// toEdges converts JSON pairs to canonical graph edges.
func toEdges(pairs [][2]uint32) []graph.Edge {
	out := make([]graph.Edge, len(pairs))
	for i, p := range pairs {
		out[i] = graph.Edge{U: p[0], V: p[1]}
	}
	return out
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if s.rejectReadOnly(w) {
		return
	}
	name := r.PathValue("name")
	if !s.Remove(name) {
		WriteError(w, http.StatusNotFound, "no graph %q", name)
		return
	}
	WriteJSON(w, http.StatusOK, map[string]any{"removed": name})
}

// versionHeader carries the answering entry's version on every
// graph-scoped read response; minVersionHeader is the request-side
// consistency floor (412 when the entry is older).
const (
	versionHeader    = "X-Truss-Version"
	minVersionHeader = "X-Truss-Min-Version"
)

// withEntry resolves {name} to a registry entry, stamps the response
// with the entry's version, and enforces the request's consistency
// floor: a client that just wrote version V sends X-Truss-Min-Version: V
// and a lagging replica answers 412 instead of a stale read (Retry-After
// hints the lag is transient; the fan-out router fails over instead).
func (s *Server) withEntry(fn func(http.ResponseWriter, *http.Request, *Entry)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		e, ok := s.Lookup(r.PathValue("name"))
		if !ok {
			WriteError(w, http.StatusNotFound, "no graph %q", r.PathValue("name"))
			return
		}
		w.Header().Set(versionHeader, strconv.FormatUint(e.Version, 10))
		if raw := r.Header.Get(minVersionHeader); raw != "" {
			if min, err := strconv.ParseUint(raw, 10, 64); err == nil && min > e.Version {
				w.Header().Set("Retry-After", "1")
				WriteJSON(w, http.StatusPreconditionFailed, map[string]any{
					"error": fmt.Sprintf("graph %q at version %d, below required %d",
						e.Name, e.Version, min),
					"version": e.Version,
				})
				return
			}
		}
		fn(w, r, e)
	}
}

// withIndex additionally requires a resident index (503 while a first
// build is still in flight, 500 after a failed build).
func (s *Server) withIndex(fn func(http.ResponseWriter, *http.Request, *index.TrussIndex)) http.HandlerFunc {
	return s.withEntry(func(w http.ResponseWriter, r *http.Request, e *Entry) {
		if e.Index == nil {
			switch e.State {
			case StateFailed:
				WriteError(w, http.StatusInternalServerError, "graph %q failed: %s", e.Name, e.Err)
			default:
				w.Header().Set("Retry-After", "1")
				WriteError(w, http.StatusServiceUnavailable, "graph %q still building", e.Name)
			}
			return
		}
		fn(w, r, e.Index)
	})
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request, e *Entry) {
	WriteJSON(w, http.StatusOK, entryInfo(e))
}

func (s *Server) handleTruss(w http.ResponseWriter, r *http.Request, ix *index.TrussIndex) {
	u, v, ok := edgeParams(w, r)
	if !ok {
		return
	}
	k, found := ix.TrussNumber(u, v)
	resp := map[string]any{"u": u, "v": v, "found": found}
	if found {
		resp["truss"] = k
	}
	WriteJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCommunity(w http.ResponseWriter, r *http.Request, ix *index.TrussIndex) {
	u, v, ok := edgeParams(w, r)
	if !ok {
		return
	}
	k64, err := strconv.ParseInt(r.URL.Query().Get("k"), 10, 32)
	if err != nil || k64 < 3 {
		WriteError(w, http.StatusBadRequest, "k must be an integer >= 3")
		return
	}
	k := int32(k64)
	edges, found := ix.CommunityOf(u, v, k)
	resp := map[string]any{"u": u, "v": v, "k": k, "found": found}
	if found {
		resp["size"] = len(edges)
		resp["edges"] = edgePairs(ix, edges)
		resp["vertices"] = ix.Vertices(edges)
	}
	WriteJSON(w, http.StatusOK, resp)
}

// edgePairs expands edge IDs into [u,v] endpoint pairs for JSON output.
func edgePairs(ix *index.TrussIndex, ids []int32) [][2]uint32 {
	pairs := make([][2]uint32, len(ids))
	for i, id := range ids {
		e := ix.Graph().Edge(id)
		pairs[i] = [2]uint32{e.U, e.V}
	}
	return pairs
}

func (s *Server) handleHistogram(w http.ResponseWriter, r *http.Request, ix *index.TrussIndex) {
	sizes := ix.Histogram()
	classes := map[string]int64{}
	for k, n := range sizes {
		if n > 0 {
			classes[strconv.Itoa(k)] = n
		}
	}
	WriteJSON(w, http.StatusOK, map[string]any{
		"kmax":    ix.KMax(),
		"edges":   ix.NumEdges(),
		"classes": classes,
	})
}

func (s *Server) handleTopClasses(w http.ResponseWriter, r *http.Request, ix *index.TrussIndex) {
	t := 0
	if raw := r.URL.Query().Get("t"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			WriteError(w, http.StatusBadRequest, "t must be a non-negative integer")
			return
		}
		t = v
	}
	withEdges := r.URL.Query().Get("edges") == "1"
	type classJSON struct {
		K     int32       `json:"k"`
		Size  int         `json:"size"`
		Edges [][2]uint32 `json:"edges,omitempty"`
	}
	classes := ix.TopClasses(t)
	out := make([]classJSON, len(classes))
	for i, c := range classes {
		out[i] = classJSON{K: c.K, Size: len(c.Edges)}
		if withEdges {
			out[i].Edges = edgePairs(ix, c.Edges)
		}
	}
	WriteJSON(w, http.StatusOK, map[string]any{"kmax": ix.KMax(), "classes": out})
}

// handleEdgesStream serves GET /v1/graphs/{name}/edges: the k-truss edge
// set as NDJSON, one {"u":..,"v":..,"truss":..} object per line, ordered
// by truss number descending (T_k is a prefix of the full stream for
// every k). With ?k= only edges of truss number >= k are sent; k <= 2 or
// absent streams every classified edge. This is the bulk-answer
// counterpart of the point-query endpoints and the wire format behind
// the client package's KTrussEdges iterator: a million-edge truss never
// materializes as one JSON document on either side.
func (s *Server) handleEdgesStream(w http.ResponseWriter, r *http.Request, ix *index.TrussIndex) {
	k := int64(0)
	if raw := r.URL.Query().Get("k"); raw != "" {
		v, err := strconv.ParseInt(raw, 10, 32)
		if err != nil || v < 0 {
			WriteError(w, http.StatusBadRequest, "k must be a non-negative integer")
			return
		}
		k = v
	}
	ids := ix.TrussEdges(int32(k))
	h := w.Header()
	h.Set("Content-Type", "application/x-ndjson")
	h.Set("X-Truss-Edge-Count", strconv.Itoa(len(ids)))
	h.Set("X-Truss-KMax", strconv.FormatInt(int64(ix.KMax()), 10))
	w.WriteHeader(http.StatusOK)
	bw := bufio.NewWriterSize(w, 64<<10)
	ctx := r.Context()
	for i, id := range ids {
		if i&8191 == 0 && ctx.Err() != nil {
			return // client went away mid-stream; nothing left to report
		}
		e := ix.Graph().Edge(id)
		fmt.Fprintf(bw, "{\"u\":%d,\"v\":%d,\"truss\":%d}\n", e.U, e.V, ix.EdgeTruss(id))
	}
	// A flush failure means the connection died on the final window; the
	// status line is long gone, so there is no channel left to report on.
	_ = bw.Flush()
}

// queryRequest is the body of POST /v1/graphs/{name}/query: a batch of
// edge lookups answered in one round-trip.
type queryRequest struct {
	Pairs [][2]uint32 `json:"pairs"`
}

// handleQuery serves POST /v1/graphs/{name}/query — batched truss-number
// lookups. POST carries the batch (thousands of pairs exceed any URL),
// but the operation is read-only and safe to retry.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, ix *index.TrussIndex) {
	if !requireJSON(w, r) {
		return
	}
	if max := s.opts.maxBodyBytes(); max > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, max)
	}
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		WriteError(w, status, "bad request body: %v", err)
		return
	}
	if len(req.Pairs) == 0 {
		WriteError(w, http.StatusBadRequest, "empty pairs batch")
		return
	}
	type answer struct {
		U     uint32 `json:"u"`
		V     uint32 `json:"v"`
		Found bool   `json:"found"`
		Truss int32  `json:"truss,omitempty"`
	}
	results := make([]answer, len(req.Pairs))
	found := 0
	for i, p := range req.Pairs {
		results[i] = answer{U: p[0], V: p[1]}
		if t, ok := ix.TrussNumber(p[0], p[1]); ok {
			results[i].Found, results[i].Truss = true, t
			found++
		}
	}
	WriteJSON(w, http.StatusOK, map[string]any{
		"count": len(results), "found": found, "results": results,
	})
}

// handleCommunities serves GET /v1/graphs/{name}/communities: every
// k-truss community at level k, largest first, with ?limit= capping how
// many are expanded (the count always reports the total).
func (s *Server) handleCommunities(w http.ResponseWriter, r *http.Request, ix *index.TrussIndex) {
	k64, err := strconv.ParseInt(r.URL.Query().Get("k"), 10, 32)
	if err != nil || k64 < 3 {
		WriteError(w, http.StatusBadRequest, "k must be an integer >= 3")
		return
	}
	k := int32(k64)
	limit := 0
	if raw := r.URL.Query().Get("limit"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			WriteError(w, http.StatusBadRequest, "limit must be a non-negative integer")
			return
		}
		limit = v
	}
	total := ix.CommunityCount(k)
	count := total
	if limit > 0 && limit < count {
		count = limit
	}
	type commJSON struct {
		Size     int         `json:"size"`
		Edges    [][2]uint32 `json:"edges"`
		Vertices []uint32    `json:"vertices"`
	}
	comms := make([]commJSON, 0, count)
	for c := 0; c < count; c++ {
		ids, _ := ix.Community(k, c)
		comms = append(comms, commJSON{
			Size:     len(ids),
			Edges:    edgePairs(ix, ids),
			Vertices: ix.Vertices(ids),
		})
	}
	WriteJSON(w, http.StatusOK, map[string]any{
		"k": k, "count": total, "communities": comms,
	})
}

// edgeParams parses the u and v query parameters, writing a 400 on error.
func edgeParams(w http.ResponseWriter, r *http.Request) (u, v uint32, ok bool) {
	q := r.URL.Query()
	pu, err1 := strconv.ParseUint(q.Get("u"), 10, 32)
	pv, err2 := strconv.ParseUint(q.Get("v"), 10, 32)
	if err1 != nil || err2 != nil {
		WriteError(w, http.StatusBadRequest, "u and v must be uint32 query parameters")
		return 0, 0, false
	}
	return uint32(pu), uint32(pv), true
}

// WriteJSON writes body as a JSON response. Exported so the cluster
// coordinator answers in the same shape as the shards it fronts.
func WriteJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(body)
}

// WriteError writes the API's uniform error shape: {"error": "..."}.
func WriteError(w http.ResponseWriter, status int, format string, args ...any) {
	WriteJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
