package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/obs"
)

// phiMap flattens an entry's decomposition into edge -> truss for
// order-insensitive comparison between servers.
func phiMap(t *testing.T, s *Server, name string) map[graph.Edge]int32 {
	t.Helper()
	e, ok := s.Lookup(name)
	if !ok || e.Index == nil {
		t.Fatalf("graph %q not resident", name)
	}
	g := e.Index.Graph()
	phi := e.Index.PhiView()
	out := make(map[graph.Edge]int32, len(phi))
	for id, k := range phi {
		out[g.Edge(int32(id)).Canon()] = k
	}
	return out
}

// TestPipelinedMutateDifferential is the server-level half of the
// coalescing equivalence argument: the same randomized mutation stream
// produces the same decomposition whether it arrives as one-at-a-time
// sequential batches or as a concurrent storm the pipeline coalesces
// into group commits. Seeds are logged for replay.
func TestPipelinedMutateDifferential(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		t.Logf("seed %d", seed)
		rng := rand.New(rand.NewSource(seed))
		type mut struct {
			adds, dels []graph.Edge
		}
		var stream []mut
		present := map[graph.Edge]bool{}
		for _, e := range gen.PaperExample().Edges() {
			present[e.Canon()] = true
		}
		for i := 0; i < 120; i++ {
			e := graph.Edge{U: uint32(rng.Intn(30)), V: uint32(rng.Intn(30))}.Canon()
			if e.U == e.V {
				continue
			}
			if present[e] && rng.Intn(2) == 0 {
				stream = append(stream, mut{dels: []graph.Edge{e}})
				present[e] = false
			} else {
				stream = append(stream, mut{adds: []graph.Edge{e}})
				present[e] = true
			}
		}

		seq := New(Options{Workers: 1, Logf: t.Logf, Metrics: obs.NewRegistry(),
			IngestMaxBatch: 1}) // batch size 1: every mutation its own flush
		seq.Build("g", gen.PaperExample(), "test")
		for _, m := range stream {
			if _, _, err := seq.Mutate(context.Background(), "g", m.adds, m.dels); err != nil {
				t.Fatalf("seed %d sequential: %v", seed, err)
			}
		}

		// The concurrent server gets the stream via one goroutine per
		// mutation. Cross-edge arrival order is unordered — which is fine,
		// because the stream is built so each edge is touched by ops that
		// commute with every other edge's (final state per edge depends
		// only on its own last op in program order... which concurrency
		// does not preserve). So instead: partition by edge, one goroutine
		// per edge replaying that edge's ops in order through the shared
		// pipeline. Per-edge order is preserved, cross-edge interleaving
		// is arbitrary, and the coalescer sees genuinely mixed batches.
		conc := New(Options{Workers: 1, Logf: t.Logf, Metrics: obs.NewRegistry()})
		conc.Build("g", gen.PaperExample(), "test")
		perEdge := map[graph.Edge][]mut{}
		for _, m := range stream {
			var e graph.Edge
			if len(m.adds) > 0 {
				e = m.adds[0]
			} else {
				e = m.dels[0]
			}
			perEdge[e] = append(perEdge[e], m)
		}
		var wg sync.WaitGroup
		errs := make(chan error, len(perEdge))
		for _, muts := range perEdge {
			wg.Add(1)
			go func(muts []mut) {
				defer wg.Done()
				for _, m := range muts {
					if _, _, err := conc.Mutate(context.Background(), "g", m.adds, m.dels); err != nil {
						errs <- err
						return
					}
				}
			}(muts)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("seed %d concurrent: %v", seed, err)
		}

		want, got := phiMap(t, seq, "g"), phiMap(t, conc, "g")
		if len(want) != len(got) {
			t.Fatalf("seed %d: edge counts differ: sequential %d, pipelined %d", seed, len(want), len(got))
		}
		for e, k := range want {
			if got[e] != k {
				t.Fatalf("seed %d: phi(%v) sequential %d, pipelined %d", seed, e, k, got[e])
			}
		}

		if err := seq.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := conc.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

// firehose POSTs body to the stream endpoint and returns the decoded
// NDJSON ack lines (last one is the summary).
func firehose(t *testing.T, ts *httptest.Server, name, body string) (int, []map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/graphs/"+name+"/edges:stream",
		"application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}
	var lines []map[string]any
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad ack line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, lines
}

func TestFirehose(t *testing.T) {
	s := New(Options{Workers: 1, Logf: t.Logf, Metrics: obs.NewRegistry()})
	t.Cleanup(func() { _ = s.Shutdown(context.Background()) })
	s.Build("g", gen.PaperExample(), "test")
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	before, _ := s.Lookup("g")
	m0 := before.Index.NumEdges()

	// A mixed stream: 600 new edges (forcing multiple chunks at
	// streamChunk 512), a duplicate, a delete of a just-added edge, and a
	// delete of a paper-example edge.
	var b strings.Builder
	for i := 0; i < 600; i++ {
		fmt.Fprintf(&b, `{"u":%d,"v":%d}`+"\n", 100+i, 101+i)
	}
	b.WriteString(`{"op":"add","u":100,"v":101}` + "\n") // dup of the first add
	b.WriteString(`{"op":"del","u":100,"v":101}` + "\n") // deletes it again
	b.WriteString(`{"op":"del","u":0,"v":1}` + "\n")

	code, lines := firehose(t, ts, "g", b.String())
	if code != http.StatusOK {
		t.Fatalf("firehose status %d", code)
	}
	if len(lines) < 3 { // >=2 chunk acks + summary
		t.Fatalf("expected chunked acks + summary, got %d lines: %v", len(lines), lines)
	}
	sum := lines[len(lines)-1]
	if sum["done"] != true || sum["ok"] != true {
		t.Fatalf("bad summary: %v", sum)
	}
	if got := int(sum["accepted"].(float64)); got != 603 {
		t.Fatalf("accepted %d of 603 records", got)
	}
	var lastAck uint64
	for _, ln := range lines[:len(lines)-1] {
		if ln["ok"] != true {
			t.Fatalf("failed chunk ack: %v", ln)
		}
		v := uint64(ln["version"].(float64))
		if v < lastAck {
			t.Fatalf("ack versions went backwards: %d after %d", v, lastAck)
		}
		lastAck = v
	}
	if uint64(sum["version"].(float64)) != lastAck {
		t.Fatalf("summary version %v != last ack %d", sum["version"], lastAck)
	}

	after, _ := s.Lookup("g")
	// +600 new edges, -1 (the 100-101 add+del cancels... it was applied in
	// an earlier chunk, then deleted), -1 paper edge.
	if got := after.Index.NumEdges(); got != m0+600-2 {
		t.Fatalf("edge count after firehose: %d, want %d", got, m0+600-2)
	}
	if after.Version <= before.Version {
		t.Fatalf("version did not advance: %d -> %d", before.Version, after.Version)
	}
	if _, found := after.Index.TrussNumber(0, 1); found {
		t.Fatal("deleted paper edge still present")
	}
	if _, found := after.Index.TrussNumber(100, 101); found {
		t.Fatal("add+del edge still present")
	}
	if _, found := after.Index.TrussNumber(300, 301); !found {
		t.Fatal("streamed edge missing")
	}
}

func TestFirehoseErrors(t *testing.T) {
	s := New(Options{Workers: 1, Logf: t.Logf, Metrics: obs.NewRegistry()})
	t.Cleanup(func() { _ = s.Shutdown(context.Background()) })
	s.Build("g", gen.PaperExample(), "test")
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	if code, _ := firehose(t, ts, "nope", `{"u":1,"v":2}`+"\n"); code != http.StatusNotFound {
		t.Fatalf("unknown graph: status %d", code)
	}

	// A bad op aborts the stream with an error summary; the valid record
	// before it still commits.
	code, lines := firehose(t, ts, "g", `{"u":40,"v":41}`+"\n"+`{"op":"upsert","u":1,"v":2}`+"\n")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	sum := lines[len(lines)-1]
	if sum["ok"] != false || !strings.Contains(sum["error"].(string), "unknown op") {
		t.Fatalf("bad-op summary: %v", sum)
	}
	if got := int(sum["accepted"].(float64)); got != 1 {
		t.Fatalf("valid prefix not committed: %v", sum)
	}
	if _, found := mustEntry(t, s, "g").Index.TrussNumber(40, 41); !found {
		t.Fatal("prefix record not applied")
	}

	// Malformed JSON likewise.
	_, lines = firehose(t, ts, "g", `{"u":50,"v":51}`+"\n"+`{"u":`)
	sum = lines[len(lines)-1]
	if sum["ok"] != false || !strings.Contains(sum["error"].(string), "bad record") {
		t.Fatalf("malformed-record summary: %v", sum)
	}
}

func mustEntry(t *testing.T, s *Server, name string) *Entry {
	t.Helper()
	e, ok := s.Lookup(name)
	if !ok {
		t.Fatalf("graph %q missing", name)
	}
	return e
}

// TestIngestMetricsExposed drives mutations through both the unary and
// firehose paths and asserts the truss_ingest_* families show up on
// /metrics with consistent values.
func TestIngestMetricsExposed(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Options{Workers: 1, Logf: t.Logf, Metrics: reg})
	t.Cleanup(func() { _ = s.Shutdown(context.Background()) })
	s.Build("g", gen.PaperExample(), "test")
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	if code := postJSON(t, ts, "/v1/graphs/g/edges", map[string]any{
		"edges": [][2]uint32{{60, 61}, {61, 62}},
	}); code != http.StatusOK {
		t.Fatalf("mutate status %d", code)
	}
	if code, _ := firehose(t, ts, "g", `{"u":70,"v":71}`+"\n"+`{"u":70,"v":71}`+"\n"); code != http.StatusOK {
		t.Fatalf("firehose status %d", code)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	value := func(series string) float64 {
		for _, line := range strings.Split(body, "\n") {
			if strings.HasPrefix(line, series+" ") {
				var v float64
				if _, err := fmt.Sscanf(line[len(series)+1:], "%g", &v); err != nil {
					t.Fatalf("parsing %q: %v", line, err)
				}
				return v
			}
		}
		t.Fatalf("series %q not exposed; body:\n%s", series, body)
		return 0
	}

	// 2 unary edges + 2 firehose records submitted; the firehose dup
	// coalesces, so applied is 3 when the two records shared a flush
	// (coalesce ratio 4:3) — but flush boundaries are timing-dependent,
	// so assert the invariants, not the exact split.
	submitted := value("truss_ingest_submitted_total")
	applied := value("truss_ingest_applied_total")
	if submitted != 4 {
		t.Fatalf("submitted = %v, want 4", submitted)
	}
	if applied < 3 || applied > submitted {
		t.Fatalf("applied = %v, want within [3, %v]", applied, submitted)
	}
	if flushes := value(`truss_ingest_flush_batch_size_count`); flushes < 2 {
		t.Fatalf("flush-size histogram count = %v, want >= 2", flushes)
	}
	if v := value(`truss_ingest_queue_depth{graph="g"}`); v != 0 {
		t.Fatalf("queue depth = %v at rest", v)
	}
	var reasonTotal float64
	for _, reason := range []string{"size", "window", "drain", "sync", "shutdown"} {
		reasonTotal += value(fmt.Sprintf(`truss_ingest_flushes_total{reason=%q}`, reason))
	}
	if seconds := value("truss_ingest_flush_seconds_count"); reasonTotal != seconds {
		t.Fatalf("per-reason flushes %v != flush-duration count %v", reasonTotal, seconds)
	}
	if value("truss_ingest_flush_failures_total") != 0 {
		t.Fatal("failures counted on a clean run")
	}
	// The parallel-peel counter family registers even when regions stay
	// under the cutoff.
	if !strings.Contains(body, "truss_maintenance_parallel_peels_total") {
		t.Fatal("truss_maintenance_parallel_peels_total not exposed")
	}
}

// TestAsyncCompactionUnderLoad: with a 1-byte compaction threshold every
// flush triggers the background compactor, so snapshot writes and WAL
// truncations race a concurrent mutation storm. The invariant under
// test: whatever interleaving happens, a restart recovers exactly the
// state the last ack promised.
func TestAsyncCompactionUnderLoad(t *testing.T) {
	dir := t.TempDir()
	s1 := New(Options{Workers: 1, Logf: t.Logf, Metrics: obs.NewRegistry(),
		DataDir: dir, WALCompactBytes: 1})
	s1.Build("g", gen.PaperExample(), "test")

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				_, _, err := s1.Mutate(context.Background(), "g",
					[]graph.Edge{{U: uint32(100 + w*16 + i), V: uint32(200 + w*16 + i)}}, nil)
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	e1 := mustEntry(t, s1, "g")
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2 := New(Options{Workers: 1, Logf: t.Logf, Metrics: obs.NewRegistry(), DataDir: dir})
	t.Cleanup(func() { _ = s2.Shutdown(context.Background()) })
	if err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	e2 := mustEntry(t, s2, "g")
	if e2.Version != e1.Version || e2.Index.NumEdges() != e1.Index.NumEdges() {
		t.Fatalf("recovery drifted: version %d m %d, want version %d m %d",
			e2.Version, e2.Index.NumEdges(), e1.Version, e1.Index.NumEdges())
	}
	for id, k := range e1.Index.PhiView() {
		eg := e1.Index.Graph().Edge(int32(id))
		got, found := e2.Index.TrussNumber(eg.U, eg.V)
		if !found || got != k {
			t.Fatalf("recovered phi(%v) = %d/%v, want %d", eg, got, found, k)
		}
	}
}

// TestShutdownDrainsPipeline: mutations in flight when Shutdown begins
// are flushed (their producers acked), and mutations after it are
// refused.
func TestShutdownDrainsPipeline(t *testing.T) {
	s := New(Options{Workers: 1, Logf: t.Logf, Metrics: obs.NewRegistry()})
	s.Build("g", gen.PaperExample(), "test")

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, err := s.Mutate(context.Background(), "g",
				[]graph.Edge{{U: uint32(40 + i), V: uint32(50 + i)}}, nil)
			errs <- err
		}(i)
	}
	wg.Wait() // all acked before shutdown begins
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("pre-shutdown mutation failed: %v", err)
		}
	}
	if _, _, err := s.Mutate(context.Background(), "g", []graph.Edge{{U: 1, V: 90}}, nil); err == nil {
		t.Fatal("mutation accepted after shutdown")
	}
}
