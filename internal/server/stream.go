package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/graph"
	"repro/internal/ingest"
)

// The NDJSON firehose: POST /v1/graphs/{name}/edges:stream accepts an
// unbounded stream of single-edge mutation records,
//
//	{"op":"add","u":1,"v":2}
//	{"op":"del","u":3,"v":4}
//
// (op defaults to "add"), chunks them into pipeline submissions, and
// answers with an NDJSON stream of per-chunk acknowledgements,
//
//	{"ok":true,"version":17,"submitted":512}
//
// each emitted only after that chunk's group commit made it durable —
// an ack carries the same guarantee a unary mutation response does. A
// final {"done":true,...} line summarizes the session. Decoding,
// committing, and acknowledging overlap: the reader keeps feeding the
// pipeline while earlier chunks fsync, which is where the throughput
// over repeated unary POSTs comes from.

// streamChunk is how many records the firehose folds into one pipeline
// submission. Large enough to amortize the per-submission channel hop,
// small enough that acks stay frequent and a mid-stream crash loses
// little acknowledged work (none, durably).
const streamChunk = 512

// streamAckWindow bounds how many chunks may be in flight (submitted,
// not yet acknowledged) before the reader stops decoding — natural
// backpressure tying the client's send rate to commit throughput.
const streamAckWindow = 32

// streamRecord is one firehose line.
type streamRecord struct {
	Op string `json:"op"`
	U  uint32 `json:"u"`
	V  uint32 `json:"v"`
}

// streamAck is one acknowledgement line (or the closing summary).
type streamAck struct {
	OK        bool   `json:"ok"`
	Version   uint64 `json:"version,omitempty"`
	Submitted int    `json:"submitted,omitempty"`
	Error     string `json:"error,omitempty"`

	Done     bool   `json:"done,omitempty"`
	Chunks   int    `json:"chunks,omitempty"`
	Accepted int    `json:"accepted,omitempty"`
	Failed   int    `json:"failed,omitempty"`
}

// handleIngestStream serves the firehose.
func (s *Server) handleIngestStream(w http.ResponseWriter, r *http.Request) {
	if s.rejectReadOnly(w) {
		return
	}
	name := r.PathValue("name")
	e, ok := s.Lookup(name)
	if !ok {
		WriteError(w, http.StatusNotFound, "no graph %q", name)
		return
	}
	if e.State != StateReady || e.Index == nil {
		w.Header().Set("Retry-After", "1")
		WriteError(w, http.StatusServiceUnavailable, "graph %q still building", name)
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != "" &&
		!strings.HasPrefix(ct, "application/x-ndjson") && !strings.HasPrefix(ct, "application/json") {
		WriteError(w, http.StatusUnsupportedMediaType,
			"unsupported Content-Type %q: send application/x-ndjson", ct)
		return
	}
	p, err := s.pipeline(name)
	if err != nil {
		WriteError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}

	// The firehose is full duplex by design: acks stream back while the
	// client is still uploading records. Go's HTTP/1 server otherwise
	// aborts request-body reads once the response begins, which would
	// stall any client that paces its uploads on the acks (including the
	// cluster coordinator's streaming proxy). Best-effort: HTTP/2 is
	// already duplex and returns an error here, which is fine to ignore.
	rc := http.NewResponseController(w)
	_ = rc.EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)

	// The writer goroutine drains in-flight chunks in submission order,
	// so acks stream back while the reader below keeps decoding. It is
	// the only goroutine touching w after the header goes out.
	type inflight struct {
		n  int
		ch <-chan ingest.Outcome
	}
	acks := make(chan inflight, streamAckWindow)
	writerDone := make(chan streamAck, 1)
	go func() {
		var sum streamAck
		sum.Done = true
		for f := range acks {
			out := <-f.ch
			sum.Chunks++
			ack := streamAck{OK: out.Err == nil, Submitted: f.n}
			if out.Err != nil {
				sum.Failed += f.n
				ack.Error = out.Err.Error()
			} else {
				sum.Accepted += f.n
				ack.Version = out.Applied.Version
				sum.Version = out.Applied.Version
			}
			ack.OK = out.Err == nil
			if enc.Encode(ack) == nil {
				// rc.Flush, not w.(http.Flusher): the observation
				// middleware's recorder only exposes Flush through the
				// ResponseController Unwrap chain. A bare type assertion
				// fails there, and unflushed acks deadlock any client
				// that paces its uploads on them.
				_ = rc.Flush()
			}
		}
		writerDone <- sum
	}()

	limit := s.opts.maxInlineVertexID()
	dec := json.NewDecoder(r.Body)
	chunk := make([]ingest.Mutation, 0, streamChunk)
	var streamErr string
	submit := func() bool {
		if len(chunk) == 0 {
			return true
		}
		muts := make([]ingest.Mutation, len(chunk))
		copy(muts, chunk)
		chunk = chunk[:0]
		ch, err := p.SubmitAsync(r.Context(), muts)
		if err != nil {
			if errors.Is(err, ingest.ErrClosed) {
				streamErr = fmt.Sprintf("graph %q removed mid-stream", name)
			} else {
				streamErr = err.Error()
			}
			return false
		}
		acks <- inflight{n: len(muts), ch: ch}
		return true
	}

decode:
	for {
		var rec streamRecord
		if err := dec.Decode(&rec); err != nil {
			if !errors.Is(err, io.EOF) {
				streamErr = fmt.Sprintf("bad record: %v", err)
			}
			break
		}
		var op ingest.Op
		switch rec.Op {
		case "", "add":
			op = ingest.OpAdd
			if limit > 0 && (int64(rec.U) > limit || int64(rec.V) > limit) {
				streamErr = fmt.Sprintf("vertex ID %d exceeds the limit %d", max(rec.U, rec.V), limit)
				break decode
			}
		case "del":
			op = ingest.OpDel
		default:
			streamErr = fmt.Sprintf("bad record: unknown op %q", rec.Op)
			break decode
		}
		chunk = append(chunk, ingest.Mutation{Op: op, Edge: graph.Edge{U: rec.U, V: rec.V}})
		if len(chunk) >= streamChunk && !submit() {
			break
		}
	}
	submit() // tail chunk (no-op when the loop broke on a submit failure)
	close(acks)
	sum := <-writerDone
	if streamErr != "" {
		sum.Error = streamErr
	}
	sum.OK = streamErr == "" && sum.Failed == 0
	_ = enc.Encode(sum)
	_ = rc.Flush()
}
