package server

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestFirehoseDuplex pins the firehose's full-duplex contract at the
// shard level: a client that streams records and paces on acks must see
// the first ack while its request body is still open. Two regressions
// hide here — Go's HTTP/1 server aborting body reads once the response
// begins (EnableFullDuplex), and ack flushes silently no-opping through
// the observation middleware's recorder (Flush via ResponseController,
// not a bare type assertion). Earlier tests missed both because they
// uploaded complete bodies, so acks could sit buffered until the
// handler returned.
func TestFirehoseDuplex(t *testing.T) {
	s := New(Options{DataDir: t.TempDir()})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/graphs/g", "application/json",
		strings.NewReader(`{"edges":[[0,1],[1,2],[0,2]]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		r2, err := http.Get(ts.URL + "/v1/graphs/g")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r2.Body)
		r2.Body.Close()
		if r2.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("graph never became ready (last status %d)", r2.StatusCode)
		}
		time.Sleep(25 * time.Millisecond)
	}

	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/graphs/g/edges:stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	respc := make(chan *http.Response, 1)
	errc := make(chan error, 1)
	go func() {
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			errc <- err
			return
		}
		respc <- r
	}()
	// Exactly one full chunk: enough to force an ack, nothing extra to
	// mask a stalled flush.
	for i := 0; i < streamChunk; i++ {
		if _, err := io.WriteString(pw, `{"op":"add","u":100,"v":101}`+"\n"); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	select {
	case r := <-respc:
		defer r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", r.StatusCode)
		}
		line, err := bufio.NewReader(r.Body).ReadString('\n')
		if err != nil {
			t.Fatalf("reading first ack: %v", err)
		}
		if !strings.Contains(line, `"ok":true`) {
			t.Fatalf("first ack = %q", line)
		}
		pw.Close()
		io.Copy(io.Discard, r.Body)
	case err := <-errc:
		t.Fatalf("firehose request: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("no ack while the request body was still open: the firehose is not duplex")
	}
}
