package server

import (
	"bufio"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/indexfile"
)

// Store persists the registry under a data directory so trussd restarts
// warm. Each graph gets its own subdirectory holding two files:
//
//   - index.tix — snapshot v2: the complete indexfile (see
//     internal/indexfile) at some version. Recovery memory-maps it and
//     serves straight off the page cache — no replay, no re-peeling.
//     Written atomically (temp file + fsync + rename + directory fsync).
//   - wal.bin — mutations applied after the snapshot, one length- and
//     CRC-prefixed record per batch: {version, adds, dels}. Appended (and
//     synced) before a mutation is published, so a crash between the WAL
//     write and the in-memory install replays to the same state.
//
// Older data directories may instead hold snapshot.bin — snapshot v1,
// the pre-indexfile format carrying only the edge list and truss
// numbers, which costs a full index rebuild at recovery. The Store still
// reads v1 (the server migrates such graphs to v2 on first recovery) but
// only ever writes v2.
//
// Recovery loads the snapshot, replays the WAL in order, and stops at the
// first truncated or corrupt record — the tail that a crash mid-append
// leaves behind is discarded, everything before it is kept. When the WAL
// outgrows its snapshot the server folds it in: it rewrites the snapshot
// at the current version and truncates the WAL (compaction).
//
// Store methods are not synchronized; the Server serializes access per
// graph with its mutation locks.
type Store struct {
	dir string

	// VerifyOnLoad makes load additionally check every indexfile section
	// checksum (indexfile.Verify) before serving it. Off by default: the
	// atomic write discipline means a torn file cannot appear, so this
	// guards only against at-rest bit rot, at the cost of one sequential
	// read of the file during recovery.
	VerifyOnLoad bool
	// OnOpen, when non-nil, observes every successful indexfile open
	// (recovery instrumentation).
	OnOpen func(elapsed time.Duration, mappedBytes int64)
}

// Snapshot file layout constants.
const (
	snapshotMagic = "TRUSSNP1"
	snapshotFile  = "snapshot.bin" // snapshot v1 (legacy, read-only)
	indexFile     = "index.tix"    // snapshot v2: mmap-able indexfile
	walFile       = "wal.bin"
	graphDirPre   = "g-"
)

// Snapshot format versions as reported by PersistedGraph.Format.
const (
	SnapshotFormatV1 = 1
	SnapshotFormatV2 = 2
)

// errCorrupt tags snapshot integrity failures.
var errCorrupt = errors.New("corrupt snapshot")

// NewStore opens (creating if necessary) a data directory.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: data dir: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the data directory path.
func (st *Store) Dir() string { return st.dir }

// graphDir maps a registry name to its subdirectory. Names are hex-coded
// so arbitrary registry names (slashes, dots, unicode) stay inside one
// flat, filesystem-safe namespace.
func (st *Store) graphDir(name string) string {
	return filepath.Join(st.dir, graphDirPre+hex.EncodeToString([]byte(name)))
}

// PersistedGraph is one recovered graph: the snapshot state plus the WAL
// mutations to replay on top of it.
type PersistedGraph struct {
	Name    string
	Source  string
	Version uint64
	G       *graph.Graph
	Phi     []int32
	KMax    int32
	// Format is the snapshot format the graph was read from
	// (SnapshotFormatV1 or SnapshotFormatV2).
	Format int
	// File and Index are set for v2: the open indexfile mapping and the
	// TrussIndex view aliasing it (G and Phi above alias it too). The
	// caller owns File — either keep it open for as long as Index serves,
	// or Close it once done (e.g. after replaying Mutations into a heap
	// copy). For v1 they are nil and G/Phi are heap arrays.
	File  *indexfile.File
	Index *index.TrussIndex
	// Mutations are the WAL records appended after the snapshot, in
	// order; Version above is the snapshot's, each record carries its own.
	Mutations []MutationRec
}

// MutationRec is one durable mutation batch.
type MutationRec struct {
	Version uint64
	Adds    []graph.Edge
	Dels    []graph.Edge
}

// SaveIndexSnapshot atomically writes the v2 snapshot of name at
// version — the complete indexfile, ready to be mmap'd by the next
// recovery — and truncates its WAL plus any legacy v1 snapshot (both are
// subsumed). This is the only snapshot format the Store writes. Callers
// must ensure no append lands between the write and the unlink (the
// server holds the graph's mutation lock); when appends must keep
// flowing, use WriteIndexSnapshot + TruncateWAL instead.
func (st *Store) SaveIndexSnapshot(name, source string, version uint64, ix *index.TrussIndex) error {
	if err := st.WriteIndexSnapshot(name, source, version, ix); err != nil {
		return err
	}
	dir := st.graphDir(name)
	// The WAL (and a pre-migration v1 snapshot, if any) is now folded into
	// the indexfile. Failing to unlink them is not fatal to durability —
	// recovery prefers v2 and skips WAL records at or below its version —
	// but surfacing the error keeps disk usage honest.
	for _, stale := range []string{walFile, snapshotFile} {
		if err := os.Remove(filepath.Join(dir, stale)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	return indexfile.SyncDir(dir)
}

// WriteIndexSnapshot atomically writes the v2 snapshot of name at
// version without touching the WAL. It is the first phase of an
// asynchronous compaction: the snapshot can be written while mutations
// keep appending, because recovery ignores WAL records at or below the
// snapshot's version; TruncateWAL reclaims them afterwards.
func (st *Store) WriteIndexSnapshot(name, source string, version uint64, ix *index.TrussIndex) error {
	dir := st.graphDir(name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	meta := indexfile.Meta{Source: source, GraphVersion: version, CreatedUnixNano: time.Now().UnixNano()}
	return indexfile.WriteFile(filepath.Join(dir, indexFile), ix, meta)
}

// TruncateWAL drops name's WAL records at or below version upto (already
// covered by a snapshot), keeping later ones. The surviving records are
// rewritten atomically (temp + fsync + rename + directory fsync); a WAL
// left with no records is removed outright, along with any legacy v1
// snapshot the compaction has superseded. Returns the WAL's size in
// bytes afterwards. Callers must exclude concurrent appends (the server
// holds the graph's mutation lock).
func (st *Store) TruncateWAL(name string, upto uint64) (int64, error) {
	dir := st.graphDir(name)
	path := filepath.Join(dir, walFile)
	recs, err := readWAL(path)
	if err != nil {
		return 0, err
	}
	var keep []byte
	for _, rec := range recs {
		if rec.Version > upto {
			keep = append(keep, encodeMutationRecord(rec.Version, rec.Adds, rec.Dels)...)
		}
	}
	if len(keep) == 0 {
		for _, stale := range []string{walFile, snapshotFile} {
			if err := os.Remove(filepath.Join(dir, stale)); err != nil && !errors.Is(err, os.ErrNotExist) {
				return 0, err
			}
		}
		return 0, indexfile.SyncDir(dir)
	}
	tmp, err := os.CreateTemp(dir, "wal-*.tmp")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(keep); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, err
	}
	return int64(len(keep)), indexfile.SyncDir(dir)
}

// SaveSnapshot atomically writes the legacy v1 snapshot of name at
// version and truncates its WAL (the snapshot subsumes it). The server
// no longer calls this — it exists so tests can fabricate pre-migration
// data directories and prove the v1 read path keeps working.
func (st *Store) SaveSnapshot(name, source string, version uint64, g *graph.Graph, phi []int32, kmax int32) error {
	dir := st.graphDir(name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "snapshot-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename

	crc := crc32.NewIEEE()
	bw := bufio.NewWriterSize(io.MultiWriter(tmp, crc), 1<<16)
	// bufio.Writer errors are sticky: the final Flush reports them.
	var scratch [8]byte
	writeU32 := func(v uint32) {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		_, _ = bw.Write(scratch[:4])
	}
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:8], v)
		_, _ = bw.Write(scratch[:8])
	}
	_, _ = bw.WriteString(snapshotMagic)
	writeU64(version)
	writeU32(uint32(g.NumVertices()))
	writeU32(uint32(kmax))
	writeU64(uint64(g.NumEdges()))
	writeU32(uint32(len(source)))
	_, _ = bw.WriteString(source)
	for _, e := range g.Edges() {
		writeU32(e.U)
		writeU32(e.V)
	}
	for _, p := range phi {
		writeU32(uint32(p))
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return err
	}
	sum := crc.Sum32()
	binary.LittleEndian.PutUint32(scratch[:4], sum)
	if _, err := tmp.Write(scratch[:4]); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, snapshotFile)); err != nil {
		return err
	}
	// The WAL is now folded into the snapshot.
	if err := os.Remove(filepath.Join(dir, walFile)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	// Make the rename itself durable: without the directory fsync a power
	// cut can roll the directory entry back to the old snapshot even
	// though the new file's blocks were synced.
	return indexfile.SyncDir(dir)
}

// AppendMutation durably appends one mutation batch to name's WAL and
// returns the WAL's size in bytes afterwards (the compaction signal).
func (st *Store) AppendMutation(name string, version uint64, adds, dels []graph.Edge) (int64, error) {
	dir := st.graphDir(name)
	path := filepath.Join(dir, walFile)
	// The first append creates the WAL file; its directory entry needs
	// the same fsync discipline as a snapshot rename, or a power cut
	// could lose the whole file while its records were "durably" synced.
	_, statErr := os.Stat(path)
	created := errors.Is(statErr, os.ErrNotExist)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return 0, err
	}
	if _, err := f.Write(encodeMutationRecord(version, adds, dels)); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, err
	}
	size, err := f.Seek(0, io.SeekEnd)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil && created {
		err = indexfile.SyncDir(dir)
	}
	return size, err
}

// encodeMutationRecord renders one WAL record: u32 payload length, u32
// CRC32-IEEE of the payload, then {u64 version, u32 nAdds, u32 nDels,
// edge pairs}. AppendMutation and TruncateWAL share it so a rewritten
// WAL is byte-identical to one appended record by record.
func encodeMutationRecord(version uint64, adds, dels []graph.Edge) []byte {
	payload := make([]byte, 0, 16+8*(len(adds)+len(dels)))
	payload = binary.LittleEndian.AppendUint64(payload, version)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(adds)))
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(dels)))
	for _, e := range adds {
		payload = binary.LittleEndian.AppendUint32(payload, e.U)
		payload = binary.LittleEndian.AppendUint32(payload, e.V)
	}
	for _, e := range dels {
		payload = binary.LittleEndian.AppendUint32(payload, e.U)
		payload = binary.LittleEndian.AppendUint32(payload, e.V)
	}
	rec := make([]byte, 0, 8+len(payload))
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(payload))
	return append(rec, payload...)
}

// Remove deletes name's persisted state entirely.
func (st *Store) Remove(name string) error {
	return os.RemoveAll(st.graphDir(name))
}

// IndexPath returns the path of name's v2 snapshot (which may not exist
// yet). The replication layer serves and replaces this file.
func (st *Store) IndexPath(name string) string {
	return filepath.Join(st.graphDir(name), indexFile)
}

// SnapshotInfo reports the version and size of name's on-disk v2
// snapshot — what the replication manifest advertises to followers. The
// open is O(sections + kmax) validation, no data read.
func (st *Store) SnapshotInfo(name string) (version uint64, bytes int64, err error) {
	f, err := indexfile.Open(st.IndexPath(name))
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	return f.Meta().GraphVersion, f.MappedBytes(), nil
}

// WALRecordsAfter returns name's WAL records with versions strictly
// greater than from, in order. The WAL tail endpoint re-reads it on
// each wakeup; compaction keeps the file (and so this read) bounded.
func (st *Store) WALRecordsAfter(name string, from uint64) ([]MutationRec, error) {
	recs, err := readWAL(filepath.Join(st.graphDir(name), walFile))
	if err != nil {
		return nil, err
	}
	out := recs[:0]
	for _, rec := range recs {
		if rec.Version > from {
			out = append(out, rec)
		}
	}
	return out, nil
}

// ReceiveIndexSnapshot atomically installs snapshot bytes streamed from
// a primary as name's index.tix, dropping any WAL or legacy v1 snapshot
// of the lineage it replaces (temp file + fsync + rename + directory
// fsync, same discipline as locally written snapshots). It returns the
// byte count received; the caller validates the file by opening it.
func (st *Store) ReceiveIndexSnapshot(name string, r io.Reader) (int64, error) {
	dir := st.graphDir(name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	tmp, err := os.CreateTemp(dir, "hydrate-*.tmp")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	n, err := io.Copy(tmp, r)
	if err != nil {
		tmp.Close()
		return n, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return n, err
	}
	if err := tmp.Close(); err != nil {
		return n, err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, indexFile)); err != nil {
		return n, err
	}
	for _, stale := range []string{walFile, snapshotFile} {
		if err := os.Remove(filepath.Join(dir, stale)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return n, err
		}
	}
	return n, indexfile.SyncDir(dir)
}

// LoadAll recovers every persisted graph in the data directory. Graphs
// whose snapshot fails integrity checks are returned in broken with their
// errors; a corrupt or truncated WAL tail only drops the tail.
func (st *Store) LoadAll() (graphs []*PersistedGraph, broken map[string]error, err error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, nil, err
	}
	broken = map[string]error{}
	for _, de := range entries {
		if !de.IsDir() || !strings.HasPrefix(de.Name(), graphDirPre) {
			continue
		}
		raw, decErr := hex.DecodeString(strings.TrimPrefix(de.Name(), graphDirPre))
		if decErr != nil {
			continue // not ours
		}
		name := string(raw)
		pg, loadErr := st.load(name)
		if loadErr != nil {
			broken[name] = loadErr
			continue
		}
		graphs = append(graphs, pg)
	}
	return graphs, broken, nil
}

// load reads one graph's snapshot and WAL, preferring the v2 indexfile
// when present (a crash between migration steps can leave both formats
// on disk; v2 is always the newer state because it is written first).
func (st *Store) load(name string) (*PersistedGraph, error) {
	dir := st.graphDir(name)
	pg, err := st.openIndexSnapshot(filepath.Join(dir, indexFile))
	if errors.Is(err, os.ErrNotExist) {
		pg, err = readSnapshot(filepath.Join(dir, snapshotFile))
	}
	if err != nil {
		return nil, err
	}
	pg.Name = name
	pg.Mutations, err = readWAL(filepath.Join(dir, walFile))
	if err != nil {
		if pg.File != nil {
			pg.File.Close()
		}
		return nil, err
	}
	return pg, nil
}

// openIndexSnapshot maps a v2 snapshot. The returned PersistedGraph
// aliases the mapping (Index, G, Phi); the caller owns File.
func (st *Store) openIndexSnapshot(path string) (*PersistedGraph, error) {
	start := time.Now()
	f, err := indexfile.Open(path)
	if err != nil {
		return nil, err
	}
	if st.VerifyOnLoad {
		if err := f.Verify(); err != nil {
			f.Close()
			return nil, err
		}
	}
	if st.OnOpen != nil {
		st.OnOpen(time.Since(start), f.MappedBytes())
	}
	ix := f.Index()
	return &PersistedGraph{
		Source:  f.Meta().Source,
		Version: f.Meta().GraphVersion,
		G:       ix.Graph(),
		Phi:     ix.PhiView(),
		KMax:    ix.KMax(),
		Format:  SnapshotFormatV2,
		File:    f,
		Index:   ix,
	}, nil
}

// readSnapshot parses and integrity-checks a snapshot file.
func readSnapshot(path string) (*PersistedGraph, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(snapshotMagic)+28+4 || string(raw[:8]) != snapshotMagic {
		return nil, fmt.Errorf("%w: bad header", errCorrupt)
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: checksum mismatch", errCorrupt)
	}
	r := body[8:]
	u32 := func() uint32 { v := binary.LittleEndian.Uint32(r); r = r[4:]; return v }
	u64 := func() uint64 { v := binary.LittleEndian.Uint64(r); r = r[8:]; return v }
	pg := &PersistedGraph{Version: u64(), Format: SnapshotFormatV1}
	n := int(u32())
	pg.KMax = int32(u32())
	m := u64()
	srcLen := int(u32())
	if uint64(len(r)) != uint64(srcLen)+12*m {
		return nil, fmt.Errorf("%w: size mismatch", errCorrupt)
	}
	pg.Source = string(r[:srcLen])
	r = r[srcLen:]
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{U: u32(), V: u32()}
	}
	pg.Phi = make([]int32, m)
	for i := range pg.Phi {
		pg.Phi[i] = int32(u32())
	}
	pg.G, err = graph.FromCanonicalEdges(edges, n)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errCorrupt, err)
	}
	return pg, nil
}

// readWAL parses WAL records up to the first truncated or corrupt one.
func readWAL(path string) ([]MutationRec, error) {
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var recs []MutationRec
	for len(raw) >= 8 {
		size := binary.LittleEndian.Uint32(raw)
		sum := binary.LittleEndian.Uint32(raw[4:])
		if uint64(len(raw)) < 8+uint64(size) || size < 16 {
			break // truncated tail: a crash mid-append
		}
		payload := raw[8 : 8+size]
		if crc32.ChecksumIEEE(payload) != sum {
			break // torn write: discard from here on
		}
		rec := MutationRec{Version: binary.LittleEndian.Uint64(payload)}
		nAdds := binary.LittleEndian.Uint32(payload[8:])
		nDels := binary.LittleEndian.Uint32(payload[12:])
		if uint64(size) != 16+8*(uint64(nAdds)+uint64(nDels)) {
			break
		}
		p := payload[16:]
		u32 := func() uint32 { v := binary.LittleEndian.Uint32(p); p = p[4:]; return v }
		for i := uint32(0); i < nAdds; i++ {
			rec.Adds = append(rec.Adds, graph.Edge{U: u32(), V: u32()})
		}
		for i := uint32(0); i < nDels; i++ {
			rec.Dels = append(rec.Dels, graph.Edge{U: u32(), V: u32()})
		}
		recs = append(recs, rec)
		raw = raw[8+size:]
	}
	return recs, nil
}
