package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/gen"
	"repro/internal/obs"
)

// BenchmarkObsOverhead prices the middleware stack on the hot query path:
// the same batched POST /query request served by the bare route mux
// ("bare") and by the full Handler — request ID, metrics, admission —
// ("instrumented"). CI converts both to BENCH_PR.json and fails the build
// when instrumented/bare exceeds 1.05: observability that costs more than
// 5% of the hot path is a regression, not a feature.
//
//	go test -run '^$' -bench BenchmarkObsOverhead -benchtime 2s ./internal/server/
func BenchmarkObsOverhead(b *testing.B) {
	// MaxInFlight mirrors the trussd serve default so the admission
	// limiter's atomic accounting is part of the measured stack, not
	// skipped via its unlimited fast path.
	s := New(Options{Metrics: obs.NewRegistry(), MaxInFlight: 1024})
	defer s.Shutdown(b.Context())
	s.Build("g", gen.Community(40, 25, 0.5, 1.0, 7), "bench")

	// A realistic hot-path request: 128 truss-number lookups in one
	// round-trip (the client package's Querier batch size regime).
	var body bytes.Buffer
	body.WriteString(`{"pairs":[`)
	for i := 0; i < 128; i++ {
		if i > 0 {
			body.WriteByte(',')
		}
		fmt.Fprintf(&body, "[%d,%d]", i%997, (i+1)%997)
	}
	body.WriteString(`]}`)
	payload := body.Bytes()

	run := func(b *testing.B, h http.Handler) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest("POST", "/v1/graphs/g/query", bytes.NewReader(payload))
			req.Header.Set("Content-Type", "application/json")
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
		}
	}

	b.Run("bare", func(b *testing.B) { run(b, s.apiMux()) })
	b.Run("instrumented", func(b *testing.B) {
		run(b, s.Handler())
	})
}
