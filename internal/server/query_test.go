package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
)

// readyServer returns a test server with one built graph named "g".
func readyServer(t *testing.T, g *graph.Graph) (*Server, *httptest.Server) {
	t.Helper()
	s, ts := newTestServer(t)
	s.Build("g", g, "test")
	if err := s.WaitReady("g", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	return s, ts
}

// TestEdgesStream checks the NDJSON k-truss streaming endpoint: every
// line parses, the set matches the index's truss prefix, the order is
// truss-descending, and the count/kmax headers agree.
func TestEdgesStream(t *testing.T) {
	s, ts := readyServer(t, gen.PaperExample())
	e, _ := s.Lookup("g")
	ix := e.Index

	for _, k := range []int32{0, 3, 5, 99} {
		resp, err := http.Get(ts.URL + "/v1/graphs/g/edges?k=" + itoa(k))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("k=%d: status %d", k, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("k=%d: Content-Type %q", k, ct)
		}
		wantIDs := ix.TrussEdges(k)
		if got := resp.Header.Get("X-Truss-Edge-Count"); got != itoa(int32(len(wantIDs))) {
			t.Fatalf("k=%d: X-Truss-Edge-Count %q want %d", k, got, len(wantIDs))
		}
		type line struct {
			U     uint32 `json:"u"`
			V     uint32 `json:"v"`
			Truss int32  `json:"truss"`
		}
		var lines []line
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var l line
			if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
				t.Fatalf("k=%d: bad line %q: %v", k, sc.Text(), err)
			}
			lines = append(lines, l)
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(lines) != len(wantIDs) {
			t.Fatalf("k=%d: %d lines want %d", k, len(lines), len(wantIDs))
		}
		for i, l := range lines {
			e := ix.Graph().Edge(wantIDs[i])
			if l.U != e.U || l.V != e.V || l.Truss != ix.EdgeTruss(wantIDs[i]) {
				t.Fatalf("k=%d line %d = %+v want edge %v truss %d", k, i, l, e, ix.EdgeTruss(wantIDs[i]))
			}
			if i > 0 && l.Truss > lines[i-1].Truss {
				t.Fatalf("k=%d: stream not truss-descending at line %d", k, i)
			}
			if l.Truss < k {
				t.Fatalf("k=%d: line %d below threshold: %+v", k, i, l)
			}
		}
	}

	// Bad k is rejected.
	resp, err := http.Get(ts.URL + "/v1/graphs/g/edges?k=-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("k=-1: status %d", resp.StatusCode)
	}
}

func itoa(k int32) string {
	b, _ := json.Marshal(k)
	return string(b)
}

// TestBatchedQuery checks POST /query: found and missing pairs in one
// round-trip, answers parallel to the request.
func TestBatchedQuery(t *testing.T) {
	_, ts := readyServer(t, gen.PaperExample())

	want := gen.PaperExamplePhi()
	var pairs [][2]uint32
	for key := range want {
		pairs = append(pairs, [2]uint32{uint32(key >> 32), uint32(key)})
	}
	pairs = append(pairs, [2]uint32{0, 99}, [2]uint32{7, 7}) // misses

	raw, _ := json.Marshal(map[string]any{"pairs": pairs})
	resp, err := http.Post(ts.URL+"/v1/graphs/g/query", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		Count   int `json:"count"`
		Found   int `json:"found"`
		Results []struct {
			U     uint32 `json:"u"`
			V     uint32 `json:"v"`
			Found bool   `json:"found"`
			Truss int32  `json:"truss"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Count != len(pairs) || out.Found != len(want) || len(out.Results) != len(pairs) {
		t.Fatalf("count=%d found=%d results=%d; want %d/%d/%d",
			out.Count, out.Found, len(out.Results), len(pairs), len(want), len(pairs))
	}
	for i, r := range out.Results {
		if r.U != pairs[i][0] || r.V != pairs[i][1] {
			t.Fatalf("result %d not parallel to request: %+v vs %v", i, r, pairs[i])
		}
		key := graph.Edge{U: r.U, V: r.V}.Key()
		if phi, ok := want[key]; ok {
			if !r.Found || r.Truss != phi {
				t.Fatalf("result %d = %+v want truss %d", i, r, phi)
			}
		} else if r.Found {
			t.Fatalf("result %d found for non-edge: %+v", i, r)
		}
	}

	// Empty batch is a 400, not an empty answer.
	if code := postJSON(t, ts, "/v1/graphs/g/query", map[string]any{"pairs": [][2]uint32{}}); code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d", code)
	}
}

// TestCommunitiesEndpoint checks the all-communities listing against the
// index's own tables, including the limit cap and parameter validation.
func TestCommunitiesEndpoint(t *testing.T) {
	// Two planted cliques on a sparse background give two well-separated
	// communities at high k.
	g := gen.WithPlantedCliques(gen.ErdosRenyi(60, 120, 7), []int{8, 6}, 11)
	s, ts := readyServer(t, g)
	e, _ := s.Lookup("g")
	ix := e.Index

	for k := int32(3); k <= ix.KMax(); k++ {
		var out struct {
			K           int32 `json:"k"`
			Count       int   `json:"count"`
			Communities []struct {
				Size     int         `json:"size"`
				Edges    [][2]uint32 `json:"edges"`
				Vertices []uint32    `json:"vertices"`
			} `json:"communities"`
		}
		if code := getJSON(t, ts, "/v1/graphs/g/communities?k="+itoa(k), &out); code != http.StatusOK {
			t.Fatalf("k=%d: status %d", k, code)
		}
		if out.Count != ix.CommunityCount(k) || len(out.Communities) != out.Count {
			t.Fatalf("k=%d: count=%d len=%d want %d", k, out.Count, len(out.Communities), ix.CommunityCount(k))
		}
		for c, comm := range out.Communities {
			ids, _ := ix.Community(k, int(c))
			if comm.Size != len(ids) || len(comm.Edges) != len(ids) {
				t.Fatalf("k=%d community %d: size %d want %d", k, c, comm.Size, len(ids))
			}
			for j, id := range ids {
				ge := ix.Graph().Edge(id)
				if comm.Edges[j] != [2]uint32{ge.U, ge.V} {
					t.Fatalf("k=%d community %d edge %d = %v want %v", k, c, j, comm.Edges[j], ge)
				}
			}
		}
	}

	// limit caps the expansion but not the reported total.
	total := ix.CommunityCount(3)
	if total < 2 {
		t.Fatalf("fixture too small: %d communities at k=3", total)
	}
	var limited struct {
		Count       int               `json:"count"`
		Communities []json.RawMessage `json:"communities"`
	}
	getJSON(t, ts, "/v1/graphs/g/communities?k=3&limit=1", &limited)
	if limited.Count != total || len(limited.Communities) != 1 {
		t.Fatalf("limit=1: count=%d len=%d want %d/1", limited.Count, len(limited.Communities), total)
	}

	for _, bad := range []string{"?k=2", "?k=x", "", "?k=3&limit=-1"} {
		var out map[string]any
		if code := getJSON(t, ts, "/v1/graphs/g/communities"+bad, &out); code != http.StatusBadRequest {
			t.Fatalf("%q: status %d", bad, code)
		}
	}
}

// TestMethodNotAllowed checks that known paths hit with the wrong method
// return a JSON 405 with a proper Allow header (not a 404).
func TestMethodNotAllowed(t *testing.T) {
	_, ts := readyServer(t, gen.PaperExample())

	cases := []struct {
		method, path string
		wantAllow    []string
	}{
		{http.MethodPost, "/healthz", []string{"GET"}},
		{http.MethodDelete, "/v1/graphs", []string{"GET"}},
		{http.MethodPut, "/v1/graphs/g", []string{"DELETE", "GET", "POST"}},
		{http.MethodPut, "/v1/graphs/g/edges", []string{"DELETE", "GET", "POST"}},
		{http.MethodPost, "/v1/graphs/g/truss", []string{"GET"}},
		{http.MethodGet, "/v1/graphs/g/query", []string{"POST"}},
		{http.MethodDelete, "/v1/graphs/g/histogram", []string{"GET"}},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Error string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s: status %d want 405", tc.method, tc.path, resp.StatusCode)
		}
		if err != nil || body.Error == "" {
			t.Fatalf("%s %s: 405 body not the JSON error shape (%v)", tc.method, tc.path, err)
		}
		allow := resp.Header.Get("Allow")
		for _, m := range tc.wantAllow {
			if !strings.Contains(allow, m) {
				t.Fatalf("%s %s: Allow %q missing %s", tc.method, tc.path, allow, m)
			}
		}
	}

	// Unknown paths still 404.
	resp, err := http.Get(ts.URL + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: status %d", resp.StatusCode)
	}
}

// TestUnsupportedMediaType checks that body-bearing endpoints reject
// non-JSON Content-Types with 415 up front, while JSON (with
// parameters), +json types, and an absent Content-Type pass.
func TestUnsupportedMediaType(t *testing.T) {
	_, ts := readyServer(t, gen.PaperExample())

	send := func(method, path, contentType, body string) int {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	queryBody := `{"pairs":[[0,1]]}`
	mutBody := `{"edges":[[0,1]]}`
	for _, tc := range []struct {
		method, path, ct, body string
		want                   int
	}{
		// Rejected media types, all body-bearing endpoints.
		{http.MethodPost, "/v1/graphs/g/query", "application/x-www-form-urlencoded", queryBody, http.StatusUnsupportedMediaType},
		{http.MethodPost, "/v1/graphs/g/query", "text/plain", queryBody, http.StatusUnsupportedMediaType},
		{http.MethodPost, "/v1/graphs/g/edges", "text/plain; charset=utf-8", mutBody, http.StatusUnsupportedMediaType},
		{http.MethodDelete, "/v1/graphs/g/edges", "multipart/form-data", mutBody, http.StatusUnsupportedMediaType},
		{http.MethodPost, "/v1/graphs/new", "application/xml", `{"edges":[[0,1]]}`, http.StatusUnsupportedMediaType},
		// Accepted variants.
		{http.MethodPost, "/v1/graphs/g/query", "application/json; charset=utf-8", queryBody, http.StatusOK},
		{http.MethodPost, "/v1/graphs/g/query", "application/problem+json", queryBody, http.StatusOK},
		{http.MethodPost, "/v1/graphs/g/query", "", queryBody, http.StatusOK},
	} {
		if got := send(tc.method, tc.path, tc.ct, tc.body); got != tc.want {
			t.Fatalf("%s %s with %q: status %d want %d", tc.method, tc.path, tc.ct, got, tc.want)
		}
	}
}
