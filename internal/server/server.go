// Package server serves truss-decomposition queries over HTTP: it keeps a
// registry of named graphs, each decomposed once and frozen into an
// index.TrussIndex, and answers point queries (truss numbers, k-truss
// communities, histograms, top classes) against the resident indexes —
// the "compute once, query forever" serving model the ROADMAP's north
// star asks for.
//
// Concurrency model. The registry is an immutable snapshot behind an
// atomic pointer: readers load the pointer and never take a lock, so
// query throughput scales with cores and is never blocked by a build.
// Writers (load, rebuild, remove) serialize on a mutex, copy the map,
// and publish a new snapshot. Decompositions run in background
// goroutines with the parallel peeler; while a graph rebuilds, the
// previous index keeps serving.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/gio"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/ingest"
	"repro/internal/obs"
)

// State is the lifecycle phase of a registered graph.
type State string

// Graph lifecycle states.
const (
	// StateBuilding means a decomposition is in flight. If the graph was
	// registered before, its previous index keeps answering queries.
	StateBuilding State = "building"
	// StateReady means the index is resident and serving.
	StateReady State = "ready"
	// StateFailed means the last (re)build errored; Entry.Err has the cause.
	StateFailed State = "failed"
)

// Entry is one named graph in the registry. Entries are immutable: a
// rebuild publishes a fresh Entry rather than mutating the old one.
type Entry struct {
	// Name is the registry key.
	Name string
	// State is the lifecycle phase (building, ready, failed).
	State State
	// Err holds the failure cause when State is StateFailed.
	Err string
	// Index is the resident query index; non-nil when State is
	// StateReady, and also during a rebuild of a previously-ready graph.
	Index *index.TrussIndex
	// Source records where the graph came from (a path, or "inline").
	Source string
	// LoadedAt is when this entry's build finished (zero while building).
	LoadedAt time.Time
	// BuildTime is how long decomposition plus indexing took.
	BuildTime time.Duration
	// Epoch increments on every successful rebuild of the same name.
	Epoch int
	// Version is the graph's monotonic state counter: 1 after the first
	// build, +1 for every mutation batch and every rebuild. Queries
	// answered by this entry see exactly the state of this version, and
	// the durability layer replays a restarted server to it.
	Version uint64

	// seq is the build sequence number that produced this entry; installs
	// are rejected when a newer sequence has already published, so an old
	// slow rebuild can never clobber a newer result.
	seq int
}

// Options configures a Server.
type Options struct {
	// Workers is the worker count handed to the parallel decomposer
	// (0 = GOMAXPROCS).
	Workers int
	// Logf, when non-nil, receives one line per lifecycle event.
	Logf func(format string, args ...any)
	// MaxBodyBytes caps the POST /v1/graphs/{name} request body
	// (0 selects DefaultMaxBodyBytes; negative disables the cap).
	MaxBodyBytes int64
	// MaxInlineVertexID caps vertex IDs in inline edge lists — the CSR
	// representation allocates O(max ID) memory, so an unchecked ID is a
	// remote allocation of up to 34 GB (0 selects
	// DefaultMaxInlineVertexID; negative disables the cap). Server-side
	// files loaded by path are trusted and not subject to this cap. The
	// same cap applies to mutation endpoints.
	MaxInlineVertexID int64
	// DataDir, when non-empty, makes the registry durable: every build
	// writes a snapshot (the mmap-able indexfile format), every mutation
	// appends to a WAL, and Recover restores all graphs at their
	// pre-shutdown versions without re-decomposing anything — graphs with
	// a clean v2 snapshot serve straight off the mapped file.
	DataDir string
	// VerifySnapshots makes recovery check every index snapshot's section
	// checksums (one sequential read per file) before serving it. Off by
	// default: the atomic write discipline already excludes torn files,
	// this additionally guards against at-rest bit rot, trading away the
	// O(1)-in-edge-count open time.
	VerifySnapshots bool
	// MaxRegionFraction is the incremental-maintenance fallback knob
	// passed to dynamic.Update (0 selects its default).
	MaxRegionFraction float64
	// ParallelRegionCutoff is the affected-region size at which
	// dynamic.Update re-peels on the parallel bulk-synchronous machinery
	// instead of the serial cascade (0 selects the dynamic package
	// default; negative disables parallel re-peel).
	ParallelRegionCutoff int
	// IngestFlushInterval is the ingestion pipeline's group-commit
	// window. The default 0 is adaptive: a flush commits as soon as the
	// queue goes empty, so a lone client sees per-request latency while
	// concurrent clients batch naturally (the queue refills during each
	// flush's fsync). A positive interval trades that first-mutation
	// latency for strictly larger batches.
	IngestFlushInterval time.Duration
	// IngestMaxBatch caps raw mutations per group-committed flush
	// (0 selects the ingest package default).
	IngestMaxBatch int
	// IngestMaxQueue bounds each graph's ingestion queue; producers block
	// once it fills (0 selects the ingest package default).
	IngestMaxQueue int
	// WALCompactBytes is the WAL size that triggers folding the WAL into
	// a fresh snapshot (0 selects DefaultWALCompactBytes).
	WALCompactBytes int64
	// MaxInFlight bounds concurrently served HTTP requests: excess load is
	// shed immediately with 429 + Retry-After instead of queued into a
	// latency collapse (0 = unlimited). Probe endpoints (/healthz,
	// /readyz, /metrics, /debug/pprof) are exempt.
	MaxInFlight int
	// AccessLog, when non-nil, receives one structured logfmt line per
	// served request (writes are serialized).
	AccessLog io.Writer
	// Metrics selects the observability registry every server metric is
	// registered on (nil = obs.Default()). GET /metrics exposes it.
	Metrics *obs.Registry
	// DisableMetricsEndpoint hides GET /metrics; metrics are still
	// recorded on the registry for out-of-band exposition.
	DisableMetricsEndpoint bool
	// EnablePprof mounts net/http/pprof under /debug/pprof/ — opt-in
	// because profiles expose internals no public endpoint should.
	EnablePprof bool
	// Follow, when non-empty, marks this server a read-only follower of
	// the primary at that base URL: the mutation endpoints (load, delete,
	// edge mutations, the firehose) answer 403 with a JSON body naming
	// the primary, while the whole read surface keeps serving. The
	// internal/replica package drives the actual hydration and WAL
	// tailing; this option only flips the HTTP surface read-only.
	Follow string
}

// Default request-hardening limits for Options zero values.
const (
	DefaultMaxBodyBytes      = 32 << 20 // 32 MiB of JSON
	DefaultMaxInlineVertexID = 1 << 24  // ~16.7M vertex slots ≈ 134 MB CSR offsets
	// DefaultWALCompactBytes folds the WAL into a snapshot once it holds
	// roughly a few hundred thousand mutated edges.
	DefaultWALCompactBytes = 4 << 20
)

// maxBodyBytes resolves the configured request-body cap.
func (o Options) maxBodyBytes() int64 {
	if o.MaxBodyBytes == 0 {
		return DefaultMaxBodyBytes
	}
	return o.MaxBodyBytes
}

// maxInlineVertexID resolves the configured inline vertex-ID cap.
func (o Options) maxInlineVertexID() int64 {
	if o.MaxInlineVertexID == 0 {
		return DefaultMaxInlineVertexID
	}
	return o.MaxInlineVertexID
}

// walCompactBytes resolves the configured WAL compaction threshold.
func (o Options) walCompactBytes() int64 {
	if o.WALCompactBytes == 0 {
		return DefaultWALCompactBytes
	}
	return o.WALCompactBytes
}

// Server holds the graph registry and implements the HTTP API (see
// Handler). Create one with New.
type Server struct {
	opts Options
	mu   sync.Mutex // serializes registry writers
	snap atomic.Pointer[map[string]*Entry]

	// nextSeq hands out build sequence numbers (guarded by mu). A single
	// global counter keeps every name's sequence monotonic — which is all
	// the stale-install guard compares — without a per-name map that
	// would grow forever on churning registries.
	nextSeq int

	// baseCtx is the lifecycle context every decomposition runs under;
	// Shutdown cancels it, which aborts in-flight builds promptly at their
	// next peeling checkpoint. builds tracks background build goroutines;
	// down (guarded by mu) refuses new ones once Shutdown has begun, so
	// builds.Add never races builds.Wait.
	baseCtx context.Context
	stop    context.CancelFunc
	builds  sync.WaitGroup
	down    bool

	// metrics is the server's instrument panel, registered on
	// Options.Metrics (or the process default registry).
	metrics *serverMetrics

	// store is the durability layer (nil without Options.DataDir);
	// storeErr holds the data-dir open failure, surfaced by Recover.
	store    *Store
	storeErr error
	// names serializes mutations and persistence per graph name; queries
	// stay lock-free on the snapshot. snaps serializes snapshot writers
	// per graph, so an asynchronous compaction's snapshot write cannot
	// interleave with a rebuild's. Lock order is always name before snap;
	// the compactor takes them one at a time, never nested.
	names *lockTable
	snaps *lockTable
	// pipes holds each graph's ingestion pipeline, created on first
	// mutation; compacting marks graphs with an asynchronous WAL
	// compaction in flight. Both guarded by mu.
	pipes      map[string]*ingest.Pipeline
	compacting map[string]bool
	// repl wakes blocked WAL-tail streams whenever a graph's entry is
	// republished (see replication.go).
	repl replState
	// readyProbe, when set (SetReadyProbe), is an extra gate Ready()
	// consults — the follower's caught-up check. Guarded by mu.
	readyProbe func() (ready bool, pending []string)
}

// lockTable is a set of named mutexes that evicts idle entries, so a
// churning registry (many distinct names over a server's lifetime) does
// not grow the maps without bound.
type lockTable struct {
	mu    sync.Mutex
	locks map[string]*sync.Mutex
}

func newLockTable() *lockTable { return &lockTable{locks: map[string]*sync.Mutex{}} }

// get returns name's mutex, creating it on first use.
func (t *lockTable) get(name string) *sync.Mutex {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.locks[name]
	if !ok {
		l = &sync.Mutex{}
		t.locks[name] = l
	}
	return l
}

// lock acquires name's mutex. Eviction can race the acquire, so after
// blocking it re-validates that the held lock is still the table's lock
// for name — two goroutines can never end up holding different locks for
// the same name.
func (t *lockTable) lock(name string) *sync.Mutex {
	for {
		l := t.get(name)
		l.Lock()
		if t.get(name) == l {
			return l
		}
		l.Unlock()
	}
}

// evict drops name's entry if nobody holds or waits on it. TryLock never
// blocks, so calling this under other locks cannot deadlock; a goroutine
// still holding an evicted pointer is harmless because lock re-validates
// after acquiring.
func (t *lockTable) evict(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if l, ok := t.locks[name]; ok && l.TryLock() {
		delete(t.locks, name)
		l.Unlock()
	}
}

// size reports the number of live entries (tests watch it for leaks).
func (t *lockTable) size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.locks)
}

// New returns an empty Server.
func New(opts Options) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:       opts,
		names:      newLockTable(),
		snaps:      newLockTable(),
		pipes:      map[string]*ingest.Pipeline{},
		compacting: map[string]bool{},
		baseCtx:    ctx,
		stop:       cancel,
		metrics:    newServerMetrics(opts.Metrics),
	}
	if opts.DataDir != "" {
		s.store, s.storeErr = NewStore(opts.DataDir)
		if s.storeErr != nil {
			s.logf("durability disabled: %v", s.storeErr)
		}
		if s.store != nil {
			s.store.VerifyOnLoad = opts.VerifySnapshots
			s.store.OnOpen = func(elapsed time.Duration, mappedBytes int64) {
				s.metrics.ixOpenDur.Observe(elapsed.Seconds())
			}
		}
	}
	empty := map[string]*Entry{}
	s.snap.Store(&empty)
	return s
}

// lockName acquires the per-name mutation lock.
func (s *Server) lockName(name string) *sync.Mutex {
	return s.names.lock(name)
}

// unlockName releases a lock taken with lockName and, when the name no
// longer exists in the registry, evicts its idle lock entries — the
// counterpart of Remove's eviction for the lock a removal could not
// reclaim because this goroutine was still holding it.
func (s *Server) unlockName(name string, l *sync.Mutex) {
	l.Unlock()
	if _, ok := s.Lookup(name); !ok {
		s.names.evict(name)
		s.snaps.evict(name)
	}
}

// Shutdown drains every ingestion pipeline (queued mutations group-commit
// and ack), then cancels in-flight background work — builds and
// compactions — and waits for it to exit, all bounded by ctx. The
// registry stays readable — resident indexes keep answering queries — but
// no new decomposition will complete after Shutdown returns: later
// BuildAsync calls and mutations are refused. Safe to call more than
// once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.down = true
	pipes := s.pipes
	s.pipes = map[string]*ingest.Pipeline{}
	s.mu.Unlock()
	// Drain before cancelling the lifecycle context: a flush in progress
	// commits (and its producers are acked) rather than erroring out.
	var drainErr error
	for _, p := range pipes {
		if err := p.Close(ctx); err != nil && drainErr == nil {
			drainErr = err
		}
	}
	s.stop()
	done := make(chan struct{})
	go func() {
		s.builds.Wait()
		close(done)
	}()
	select {
	case <-done:
		return drainErr
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Ready implements the readiness probe: the server is ready when no
// registered graph is still waiting on its first decomposition (entries
// with a resident index stay ready through rebuilds — the old index keeps
// serving) and shutdown has not begun. trussd serve registers recovered
// and preloaded graphs before opening its listener, so /readyz flips to
// 200 exactly when every initial build has published. The pending list
// names the graphs still holding readiness back.
func (s *Server) Ready() (ready bool, pending []string) {
	s.mu.Lock()
	down := s.down
	probe := s.readyProbe
	s.mu.Unlock()
	if down {
		return false, []string{"shutting down"}
	}
	for _, e := range s.Entries() {
		if e.Index == nil && e.State == StateBuilding {
			pending = append(pending, e.Name)
		}
	}
	if probe != nil {
		if ok, extra := probe(); !ok {
			pending = append(pending, extra...)
		}
	}
	sort.Strings(pending)
	return len(pending) == 0, pending
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// beginBuild claims the next build sequence number.
func (s *Server) beginBuild() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextSeq++
	return s.nextSeq
}

// beginAsyncBuild additionally claims a WaitGroup slot for a background
// build, refusing (ok == false) once Shutdown has begun. Claiming the slot
// under mu orders every Add before Shutdown's Wait.
func (s *Server) beginAsyncBuild() (seq int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return 0, false
	}
	s.nextSeq++
	s.builds.Add(1)
	return s.nextSeq, true
}

// install publishes e under its name with seq-guarded, epoch-consistent
// semantics: a ready entry bumps the epoch of whatever it replaces, while
// building placeholders and failure markers inherit the current entry's
// index (so the previous decomposition keeps serving) and epoch. The
// install is rejected — returning false — when a newer build sequence has
// already published for this name.
func (s *Server) install(name string, e *Entry, seq int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := (*s.snap.Load())[name]
	if ok && cur.seq > seq {
		return false
	}
	e.seq = seq
	switch e.State {
	case StateReady:
		// Mutations and recovery pre-assign Epoch/Version; plain builds
		// leave them zero and get the successor values here.
		if e.Epoch == 0 {
			e.Epoch = 1
			if ok {
				e.Epoch = cur.Epoch + 1
			}
		}
		if e.Version == 0 {
			e.Version = 1
			if ok {
				e.Version = cur.Version + 1
			}
		}
	default: // building, failed: keep serving what was there
		if ok {
			e.Index = cur.Index
			e.LoadedAt = cur.LoadedAt
			e.BuildTime = cur.BuildTime
			e.Epoch = cur.Epoch
			e.Version = cur.Version
		}
	}
	s.storeLocked(name, e)
	return true
}

// storeLocked swaps in a fresh snapshot with name set to e, or removed
// when e is nil. s.mu must be held.
func (s *Server) storeLocked(name string, e *Entry) {
	old := *s.snap.Load()
	next := make(map[string]*Entry, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	if e != nil {
		next[name] = e
	} else {
		delete(next, name)
	}
	s.snap.Store(&next)
	ready := int64(0)
	for _, v := range next {
		if v.Index != nil {
			ready++
		}
	}
	s.metrics.graphsReady.Set(ready)
	// Wake WAL tails blocked on this graph: every registry publication —
	// a committed flush, a rebuild, a removal — is a state change a
	// follower must observe.
	s.repl.publish(name)
}

// Lookup returns the entry for name from the current snapshot.
func (s *Server) Lookup(name string) (*Entry, bool) {
	e, ok := (*s.snap.Load())[name]
	return e, ok
}

// Entries returns the current snapshot's entries, unordered.
func (s *Server) Entries() []*Entry {
	snap := *s.snap.Load()
	out := make([]*Entry, 0, len(snap))
	for _, e := range snap {
		out = append(out, e)
	}
	return out
}

// Build decomposes g with the parallel peeler, indexes it, and publishes
// it under name, synchronously. It returns the built entry; when a newer
// concurrent rebuild of the same name published first, the returned entry
// is complete but was not installed.
func (s *Server) Build(name string, g *graph.Graph, source string) *Entry {
	return s.build(name, g, source, s.beginBuild())
}

func (s *Server) build(name string, g *graph.Graph, source string, seq int) *Entry {
	start := time.Now()
	// The level hook feeds the build-progress counters; it runs on the
	// decomposing goroutine once per peeling level, far off the per-edge
	// hot path.
	hooks := core.Hooks{OnLevel: func(int32) { s.metrics.buildLvls.Inc() }}
	res, err := core.DecomposeParallelCtx(s.baseCtx, g, s.opts.Workers, hooks)
	if err != nil {
		// The lifecycle context was canceled (Shutdown): record the abort
		// without clobbering a previously resident index.
		s.metrics.buildFails.Inc()
		e := &Entry{Name: name, State: StateFailed, Err: "build aborted: " + err.Error(), Source: source}
		s.install(name, e, seq)
		s.logf("graph %q build aborted: %v", name, err)
		return e
	}
	ix := index.Build(res)
	s.metrics.builds.Inc()
	s.metrics.buildEdges.Add(int64(g.NumEdges()))
	if p := res.PKT; p != nil {
		s.metrics.buildRounds.Add(int64(p.Rounds))
		s.metrics.buildFrontier.Add(int64(p.FrontierEdges))
		s.metrics.kernelMerge.Add(p.MergeDispatch)
		s.metrics.kernelProbe.Add(p.ProbeDispatch)
	}
	s.metrics.buildDur.ObserveSince(start)
	e := &Entry{
		Name:      name,
		State:     StateReady,
		Index:     ix,
		Source:    source,
		LoadedAt:  time.Now(),
		BuildTime: time.Since(start),
	}
	// The mutation lock orders this install (and its snapshot) against
	// concurrent mutation flushes on the same name.
	lock := s.lockName(name)
	installed := s.install(name, e, seq)
	if installed && s.store != nil {
		// A fresh build starts a fresh durable lineage: snapshot the new
		// decomposition and drop any WAL of the graph it replaced.
		if err := s.saveSnapshot(name, source, e.Version, ix); err != nil {
			s.logf("graph %q: snapshot failed (durability degraded): %v", name, err)
		}
	}
	s.unlockName(name, lock)
	if !installed {
		s.logf("graph %q build #%d superseded by a newer build", name, seq)
		return e
	}
	s.logf("graph %q ready: n=%d m=%d kmax=%d build=%s version=%d",
		name, g.NumVertices(), g.NumEdges(), ix.KMax(), e.BuildTime.Round(time.Millisecond), e.Version)
	return e
}

// saveSnapshot is the instrumented SaveIndexSnapshot: counts, failures,
// and write duration, which is the fsync pause an operator wants on a
// graph. The per-graph snapshot lock serializes it against asynchronous
// compaction writes (callers already hold the name lock; lock order is
// name before snap).
func (s *Server) saveSnapshot(name, source string, version uint64, ix *index.TrussIndex) error {
	snapL := s.snaps.lock(name)
	defer snapL.Unlock()
	start := time.Now()
	err := s.store.SaveIndexSnapshot(name, source, version, ix)
	if err != nil {
		s.metrics.snapFails.Inc()
		return err
	}
	s.metrics.snapSaves.Inc()
	s.metrics.snapDur.ObserveSince(start)
	// Builds and compactions both start a fresh WAL lineage, always in
	// the v2 format.
	s.metrics.walSize(name).Set(0)
	s.metrics.snapFormat(name).Set(SnapshotFormatV2)
	return nil
}

// ErrNotReady is returned by Mutate while the named graph has no resident
// index (still building its first decomposition, or failed).
var ErrNotReady = errors.New("graph has no resident index yet")

// ErrNoGraph is returned by Mutate for unknown registry names.
var ErrNoGraph = errors.New("no such graph")

// Mutate applies one batch of edge insertions and deletions to a
// resident graph through its ingestion pipeline: the batch joins
// whatever flush is forming, coalesces with concurrent mutations, and is
// group-committed — one WAL append + fsync, one dynamic.Update, one
// index Patch for the whole flush. Mutate blocks until that flush lands
// and returns the entry it published, so the acked version is durable
// and reading at it sees this call's mutations (read-your-writes). The
// version counter advances by one per non-empty flush, not per call:
// concurrent callers whose mutations share a flush are acked with the
// same version.
//
// Rebuilds win over mutations: while a reload of the same name is in
// flight the entry is in StateBuilding and Mutate refuses (the old graph
// is about to be replaced wholesale), and a flush computed against a
// pre-rebuild entry that races the rebuild's publication is rejected by
// the sequence guard rather than clobbering the fresh decomposition.
func (s *Server) Mutate(ctx context.Context, name string, adds, dels []graph.Edge) (*Entry, *dynamic.Result, error) {
	// Pre-flight against the lock-free snapshot so unknown and not-ready
	// names fail fast without spinning up a pipeline. applyFlush re-checks
	// under the name lock; this check is advisory.
	e, ok := s.Lookup(name)
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrNoGraph, name)
	}
	if e.State != StateReady || e.Index == nil {
		return nil, nil, fmt.Errorf("graph %q (%s): %w", name, e.State, ErrNotReady)
	}
	p, err := s.pipeline(name)
	if err != nil {
		return nil, nil, err
	}
	ap, err := p.Submit(ctx, ingest.FromBatch(adds, dels))
	if err != nil {
		if errors.Is(err, ingest.ErrClosed) {
			// The pipeline closed between lookup and submit (remove or
			// shutdown won the race).
			return nil, nil, fmt.Errorf("%w: %q", ErrNoGraph, name)
		}
		return nil, nil, err
	}
	out := ap.Payload.(*flushOutcome)
	return out.entry, out.res, nil
}

// Recover restores every graph persisted under Options.DataDir. Graphs
// with a clean v2 snapshot serve straight off the memory-mapped
// indexfile — open cost is O(sections + kmax) validation, no replay, no
// re-peeling — so readiness flips after O(graphs) opens regardless of
// edge counts. WAL batches a crash left behind are patched over the
// mapped base (Patch is copy-on-write, so the result is an ordinary
// heap index and the mapping is released). Legacy v1 snapshots take the
// old path — replay into heap structures plus a full index rebuild —
// exactly once: recovery migrates them to v2 on the way through.
// Graphs with corrupt snapshots are skipped (and logged); a torn WAL
// tail is dropped. Call it once, before serving.
func (s *Server) Recover() error {
	if s.storeErr != nil {
		return s.storeErr
	}
	if s.store == nil {
		return nil
	}
	graphs, broken, err := s.store.LoadAll()
	if err != nil {
		return err
	}
	for name, berr := range broken {
		s.logf("graph %q: not recovered: %v", name, berr)
	}
	for _, pg := range graphs {
		start := time.Now()
		version := pg.Version
		// Skip WAL records already folded into the snapshot: a crash
		// between a compaction's snapshot rename and its WAL unlink
		// leaves the whole WAL behind at versions the snapshot includes.
		muts := pg.Mutations[:0:0]
		for _, mut := range pg.Mutations {
			if mut.Version > pg.Version {
				muts = append(muts, mut)
			}
		}

		var ix *index.TrussIndex
		var path string
		switch {
		case pg.Format == SnapshotFormatV2 && len(muts) == 0:
			// The fast path the format exists for: the mapped file is the
			// index. The mapping stays open for the life of the process
			// (queries may hold the entry at any time, so it is never
			// unmapped — later rebuilds just stop referencing it).
			ix = pg.Index
			path = "v2-open"
		case pg.Format == SnapshotFormatV2:
			// Patch the WAL over the mapped base: each batch costs its
			// touched levels, not a rebuild. The final index is pure heap
			// (Patch copies), so the mapping can be released afterwards.
			cur, g, phi := pg.Index, pg.G, pg.Phi
			for _, mut := range muts {
				res, err := dynamic.Update(s.baseCtx, g, phi,
					dynamic.Batch{Adds: mut.Adds, Dels: mut.Dels},
					s.dynConfig())
				if err != nil {
					pg.File.Close()
					return fmt.Errorf("graph %q: WAL replay: %w", pg.Name, err)
				}
				cur = cur.Patch(res.G, res.Phi, res.KMax, res.Remap, res.Changed)
				g, phi, version = res.G, res.Phi, mut.Version
			}
			pg.File.Close()
			pg.File = nil
			ix = cur
			path = "v2-replay"
		default:
			// Legacy v1: replay into heap structures and rebuild the index
			// from scratch — the O(m^1.5) restart this format retires.
			g, phi, kmax := pg.G, pg.Phi, pg.KMax
			for _, mut := range muts {
				res, err := dynamic.Update(s.baseCtx, g, phi,
					dynamic.Batch{Adds: mut.Adds, Dels: mut.Dels},
					s.dynConfig())
				if err != nil {
					return fmt.Errorf("graph %q: WAL replay: %w", pg.Name, err)
				}
				g, phi, kmax, version = res.G, res.Phi, res.KMax, mut.Version
			}
			ix = index.Build(&core.Result{G: g, Phi: phi, KMax: kmax})
			path = "v1-replay"
		}

		e := &Entry{
			Name:     pg.Name,
			State:    StateReady,
			Index:    ix,
			Source:   pg.Source,
			LoadedAt: time.Now(),
			Epoch:    1,
			Version:  version,
		}
		if !s.install(pg.Name, e, s.beginBuild()) {
			if pg.File != nil {
				pg.File.Close()
			}
			continue
		}
		s.metrics.recovered.Inc()
		s.metrics.replayed.Add(int64(len(muts)))
		switch path {
		case "v2-open":
			s.metrics.restartV2Open.Inc()
			s.metrics.ixMapped.Add(pg.File.MappedBytes())
			s.metrics.snapFormat(pg.Name).Set(SnapshotFormatV2)
		case "v2-replay":
			s.metrics.restartV2Replay.Inc()
			// Fold the replayed WAL in so the next restart maps and goes.
			if err := s.saveSnapshot(pg.Name, pg.Source, version, ix); err != nil {
				s.logf("graph %q: post-recovery compaction failed: %v", pg.Name, err)
			} else {
				s.metrics.compactions.Inc()
			}
		case "v1-replay":
			s.metrics.restartV1Replay.Inc()
			s.metrics.snapFormat(pg.Name).Set(SnapshotFormatV1)
			// Migrate: persist the rebuilt index as v2 so this graph never
			// takes the replay path again.
			if err := s.saveSnapshot(pg.Name, pg.Source, version, ix); err != nil {
				s.logf("graph %q: v1 snapshot migration failed: %v", pg.Name, err)
			} else if len(muts) > 0 {
				s.metrics.compactions.Inc()
			}
		}
		s.recoveryLog(pg, path, version, len(muts), time.Since(start))
		s.logf("graph %q recovered at version %d via %s: n=%d m=%d kmax=%d (%d WAL batches replayed, %s)",
			pg.Name, version, path, ix.Graph().NumVertices(), ix.Graph().NumEdges(), ix.KMax(),
			len(muts), time.Since(start).Round(time.Microsecond))
	}
	return nil
}

// recoveryLog surfaces each graph's restart path in the access log — the
// same stream request lines go to — so an operator can grep one place to
// see whether a restart mapped its snapshots or had to replay. Recover
// runs before the HTTP listener opens, so writing directly is ordered
// before any request line.
func (s *Server) recoveryLog(pg *PersistedGraph, path string, version uint64, replayed int, elapsed time.Duration) {
	if s.opts.AccessLog == nil {
		return
	}
	var mapped int64
	if pg.File != nil {
		mapped = pg.File.MappedBytes()
	}
	fmt.Fprintf(s.opts.AccessLog,
		"time=%s event=recovery graph=%q restart_path=%s version=%d replayed=%d mapped_bytes=%d dur=%s\n",
		time.Now().UTC().Format(time.RFC3339Nano), pg.Name, path, version, replayed, mapped,
		elapsed.Round(time.Microsecond))
}

// BuildAsync publishes a building placeholder for name (retaining the
// previous index, if any, so queries keep working during a rebuild) and
// runs the build in a background goroutine.
func (s *Server) BuildAsync(name string, g *graph.Graph, source string) {
	seq, ok := s.beginAsyncBuild()
	if !ok {
		// Shutting down: leave the registry as is (a resident index keeps
		// serving) rather than spawn a build that cannot complete.
		s.logf("graph %q build refused: server shutting down", name)
		return
	}
	s.install(name, &Entry{Name: name, State: StateBuilding, Source: source}, seq)
	go func() {
		defer s.builds.Done()
		defer func() {
			// A panicking build must not take the whole server down;
			// surface it as a failed entry (which install lets keep
			// serving the previous index, if one was resident).
			if p := recover(); p != nil {
				s.metrics.buildFails.Inc()
				s.install(name, &Entry{
					Name: name, State: StateFailed,
					Err: fmt.Sprint(p), Source: source,
				}, seq)
				s.logf("graph %q build panicked: %v", name, p)
			}
		}()
		s.build(name, g, source, seq)
	}()
}

// LoadFileAsync loads a graph file (SNAP text or .bin) and builds its
// index in the background. The file read itself happens on the calling
// goroutine so malformed paths fail fast; only the decomposition is
// deferred.
func (s *Server) LoadFileAsync(name, path string) error {
	g, err := gio.LoadGraph(path, nil)
	if err != nil {
		return err
	}
	s.BuildAsync(name, g, path)
	return nil
}

// Remove drops name from the registry and deletes its persisted state.
// It reports whether the name was present. An in-flight rebuild of the
// same name may re-publish it.
func (s *Server) Remove(name string) bool {
	// Take both per-graph locks for the whole removal: the name lock
	// serializes against in-flight flushes, and the snapshot lock keeps a
	// concurrent compaction phase 1 from recreating the on-disk directory
	// after store.Remove deletes it. Lock order matches compact (name
	// before snap is never nested there, but flushes take name first, so
	// we do too).
	lock := s.lockName(name)
	snapL := s.snaps.lock(name)

	s.mu.Lock()
	_, ok := (*s.snap.Load())[name]
	if ok {
		s.storeLocked(name, nil)
	}
	p := s.pipes[name]
	delete(s.pipes, name)
	s.mu.Unlock()

	if ok && s.store != nil {
		if err := s.store.Remove(name); err != nil {
			s.logf("graph %q: removing persisted state: %v", name, err)
		}
	}
	snapL.Unlock()
	lock.Unlock()
	// The name has left the registry, so evict its lock-table entries —
	// including the case where an in-flight mutation held the name lock
	// while Remove ran (the old TryLock-based eviction leaked exactly
	// that case). Eviction is safe while other goroutines still hold the
	// evicted pointers: lockName re-validates against the table after
	// acquiring, so stale holders drain without splitting the lock.
	s.names.evict(name)
	s.snaps.evict(name)
	// Close the pipeline after releasing the name lock — its flusher may
	// be blocked in applyFlush waiting for that very lock. In-flight
	// flushes now fail their Lookup and producers get ErrNoGraph.
	if p != nil {
		p.Close(context.Background())
	}
	if ok {
		s.logf("graph %q removed", name)
	}
	return ok
}

// WaitReady blocks until name is ready (nil), fails (its error), or the
// timeout expires. It is a polling convenience for startup preloads and
// tests; the HTTP API reports state without blocking.
func (s *Server) WaitReady(name string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		e, ok := s.Lookup(name)
		if ok {
			switch e.State {
			case StateReady:
				return nil
			case StateFailed:
				return fmt.Errorf("graph %q failed: %s", name, e.Err)
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("graph %q not ready after %s", name, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
