// Package server serves truss-decomposition queries over HTTP: it keeps a
// registry of named graphs, each decomposed once and frozen into an
// index.TrussIndex, and answers point queries (truss numbers, k-truss
// communities, histograms, top classes) against the resident indexes —
// the "compute once, query forever" serving model the ROADMAP's north
// star asks for.
//
// Concurrency model. The registry is an immutable snapshot behind an
// atomic pointer: readers load the pointer and never take a lock, so
// query throughput scales with cores and is never blocked by a build.
// Writers (load, rebuild, remove) serialize on a mutex, copy the map,
// and publish a new snapshot. Decompositions run in background
// goroutines with the parallel peeler; while a graph rebuilds, the
// previous index keeps serving.
package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/gio"
	"repro/internal/graph"
	"repro/internal/index"
)

// State is the lifecycle phase of a registered graph.
type State string

// Graph lifecycle states.
const (
	// StateBuilding means a decomposition is in flight. If the graph was
	// registered before, its previous index keeps answering queries.
	StateBuilding State = "building"
	// StateReady means the index is resident and serving.
	StateReady State = "ready"
	// StateFailed means the last (re)build errored; Entry.Err has the cause.
	StateFailed State = "failed"
)

// Entry is one named graph in the registry. Entries are immutable: a
// rebuild publishes a fresh Entry rather than mutating the old one.
type Entry struct {
	// Name is the registry key.
	Name string
	// State is the lifecycle phase (building, ready, failed).
	State State
	// Err holds the failure cause when State is StateFailed.
	Err string
	// Index is the resident query index; non-nil when State is
	// StateReady, and also during a rebuild of a previously-ready graph.
	Index *index.TrussIndex
	// Source records where the graph came from (a path, or "inline").
	Source string
	// LoadedAt is when this entry's build finished (zero while building).
	LoadedAt time.Time
	// BuildTime is how long decomposition plus indexing took.
	BuildTime time.Duration
	// Epoch increments on every successful rebuild of the same name.
	Epoch int

	// seq is the build sequence number that produced this entry; installs
	// are rejected when a newer sequence has already published, so an old
	// slow rebuild can never clobber a newer result.
	seq int
}

// Options configures a Server.
type Options struct {
	// Workers is the worker count handed to the parallel decomposer
	// (0 = GOMAXPROCS).
	Workers int
	// Logf, when non-nil, receives one line per lifecycle event.
	Logf func(format string, args ...any)
	// MaxBodyBytes caps the POST /v1/graphs/{name} request body
	// (0 selects DefaultMaxBodyBytes; negative disables the cap).
	MaxBodyBytes int64
	// MaxInlineVertexID caps vertex IDs in inline edge lists — the CSR
	// representation allocates O(max ID) memory, so an unchecked ID is a
	// remote allocation of up to 34 GB (0 selects
	// DefaultMaxInlineVertexID; negative disables the cap). Server-side
	// files loaded by path are trusted and not subject to this cap.
	MaxInlineVertexID int64
}

// Default request-hardening limits for Options zero values.
const (
	DefaultMaxBodyBytes      = 32 << 20 // 32 MiB of JSON
	DefaultMaxInlineVertexID = 1 << 24  // ~16.7M vertex slots ≈ 134 MB CSR offsets
)

// maxBodyBytes resolves the configured request-body cap.
func (o Options) maxBodyBytes() int64 {
	if o.MaxBodyBytes == 0 {
		return DefaultMaxBodyBytes
	}
	return o.MaxBodyBytes
}

// maxInlineVertexID resolves the configured inline vertex-ID cap.
func (o Options) maxInlineVertexID() int64 {
	if o.MaxInlineVertexID == 0 {
		return DefaultMaxInlineVertexID
	}
	return o.MaxInlineVertexID
}

// Server holds the graph registry and implements the HTTP API (see
// Handler). Create one with New.
type Server struct {
	opts Options
	mu   sync.Mutex // serializes registry writers
	snap atomic.Pointer[map[string]*Entry]

	// nextSeq hands out per-name build sequence numbers (guarded by mu).
	nextSeq map[string]int

	// baseCtx is the lifecycle context every decomposition runs under;
	// Shutdown cancels it, which aborts in-flight builds promptly at their
	// next peeling checkpoint. builds tracks background build goroutines;
	// down (guarded by mu) refuses new ones once Shutdown has begun, so
	// builds.Add never races builds.Wait.
	baseCtx context.Context
	stop    context.CancelFunc
	builds  sync.WaitGroup
	down    bool
}

// New returns an empty Server.
func New(opts Options) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{opts: opts, nextSeq: map[string]int{}, baseCtx: ctx, stop: cancel}
	empty := map[string]*Entry{}
	s.snap.Store(&empty)
	return s
}

// Shutdown cancels every in-flight background build and waits for the
// build goroutines to exit, bounded by ctx. The registry stays readable —
// resident indexes keep answering queries — but no new decomposition will
// complete after Shutdown returns: later BuildAsync calls are refused.
// Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.down = true
	s.mu.Unlock()
	s.stop()
	done := make(chan struct{})
	go func() {
		s.builds.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// beginBuild claims the next build sequence number for name.
func (s *Server) beginBuild(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextSeq[name]++
	return s.nextSeq[name]
}

// beginAsyncBuild additionally claims a WaitGroup slot for a background
// build, refusing (ok == false) once Shutdown has begun. Claiming the slot
// under mu orders every Add before Shutdown's Wait.
func (s *Server) beginAsyncBuild(name string) (seq int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return 0, false
	}
	s.nextSeq[name]++
	s.builds.Add(1)
	return s.nextSeq[name], true
}

// install publishes e under its name with seq-guarded, epoch-consistent
// semantics: a ready entry bumps the epoch of whatever it replaces, while
// building placeholders and failure markers inherit the current entry's
// index (so the previous decomposition keeps serving) and epoch. The
// install is rejected — returning false — when a newer build sequence has
// already published for this name.
func (s *Server) install(name string, e *Entry, seq int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := (*s.snap.Load())[name]
	if ok && cur.seq > seq {
		return false
	}
	e.seq = seq
	switch e.State {
	case StateReady:
		e.Epoch = 1
		if ok {
			e.Epoch = cur.Epoch + 1
		}
	default: // building, failed: keep serving what was there
		if ok {
			e.Index = cur.Index
			e.LoadedAt = cur.LoadedAt
			e.BuildTime = cur.BuildTime
			e.Epoch = cur.Epoch
		}
	}
	s.storeLocked(name, e)
	return true
}

// storeLocked swaps in a fresh snapshot with name set to e, or removed
// when e is nil. s.mu must be held.
func (s *Server) storeLocked(name string, e *Entry) {
	old := *s.snap.Load()
	next := make(map[string]*Entry, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	if e != nil {
		next[name] = e
	} else {
		delete(next, name)
	}
	s.snap.Store(&next)
}

// Lookup returns the entry for name from the current snapshot.
func (s *Server) Lookup(name string) (*Entry, bool) {
	e, ok := (*s.snap.Load())[name]
	return e, ok
}

// Entries returns the current snapshot's entries, unordered.
func (s *Server) Entries() []*Entry {
	snap := *s.snap.Load()
	out := make([]*Entry, 0, len(snap))
	for _, e := range snap {
		out = append(out, e)
	}
	return out
}

// Build decomposes g with the parallel peeler, indexes it, and publishes
// it under name, synchronously. It returns the built entry; when a newer
// concurrent rebuild of the same name published first, the returned entry
// is complete but was not installed.
func (s *Server) Build(name string, g *graph.Graph, source string) *Entry {
	return s.build(name, g, source, s.beginBuild(name))
}

func (s *Server) build(name string, g *graph.Graph, source string, seq int) *Entry {
	start := time.Now()
	res, err := core.DecomposeParallelCtx(s.baseCtx, g, s.opts.Workers, core.Hooks{})
	if err != nil {
		// The lifecycle context was canceled (Shutdown): record the abort
		// without clobbering a previously resident index.
		e := &Entry{Name: name, State: StateFailed, Err: "build aborted: " + err.Error(), Source: source}
		s.install(name, e, seq)
		s.logf("graph %q build aborted: %v", name, err)
		return e
	}
	ix := index.Build(res)
	e := &Entry{
		Name:      name,
		State:     StateReady,
		Index:     ix,
		Source:    source,
		LoadedAt:  time.Now(),
		BuildTime: time.Since(start),
	}
	if !s.install(name, e, seq) {
		s.logf("graph %q build #%d superseded by a newer build", name, seq)
		return e
	}
	s.logf("graph %q ready: n=%d m=%d kmax=%d build=%s",
		name, g.NumVertices(), g.NumEdges(), ix.KMax(), e.BuildTime.Round(time.Millisecond))
	return e
}

// BuildAsync publishes a building placeholder for name (retaining the
// previous index, if any, so queries keep working during a rebuild) and
// runs the build in a background goroutine.
func (s *Server) BuildAsync(name string, g *graph.Graph, source string) {
	seq, ok := s.beginAsyncBuild(name)
	if !ok {
		// Shutting down: leave the registry as is (a resident index keeps
		// serving) rather than spawn a build that cannot complete.
		s.logf("graph %q build refused: server shutting down", name)
		return
	}
	s.install(name, &Entry{Name: name, State: StateBuilding, Source: source}, seq)
	go func() {
		defer s.builds.Done()
		defer func() {
			// A panicking build must not take the whole server down;
			// surface it as a failed entry (which install lets keep
			// serving the previous index, if one was resident).
			if p := recover(); p != nil {
				s.install(name, &Entry{
					Name: name, State: StateFailed,
					Err: fmt.Sprint(p), Source: source,
				}, seq)
				s.logf("graph %q build panicked: %v", name, p)
			}
		}()
		s.build(name, g, source, seq)
	}()
}

// LoadFileAsync loads a graph file (SNAP text or .bin) and builds its
// index in the background. The file read itself happens on the calling
// goroutine so malformed paths fail fast; only the decomposition is
// deferred.
func (s *Server) LoadFileAsync(name, path string) error {
	g, err := gio.LoadGraph(path, nil)
	if err != nil {
		return err
	}
	s.BuildAsync(name, g, path)
	return nil
}

// Remove drops name from the registry. It reports whether the name was
// present. An in-flight rebuild of the same name may re-publish it.
func (s *Server) Remove(name string) bool {
	s.mu.Lock()
	_, ok := (*s.snap.Load())[name]
	if ok {
		s.storeLocked(name, nil)
	}
	s.mu.Unlock()
	if ok {
		s.logf("graph %q removed", name)
	}
	return ok
}

// WaitReady blocks until name is ready (nil), fails (its error), or the
// timeout expires. It is a polling convenience for startup preloads and
// tests; the HTTP API reports state without blocking.
func (s *Server) WaitReady(name string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		e, ok := s.Lookup(name)
		if ok {
			switch e.State {
			case StateReady:
				return nil
			case StateFailed:
				return fmt.Errorf("graph %q failed: %s", name, e.Err)
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("graph %q not ready after %s", name, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
