package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Options{Workers: 2, Logf: t.Logf})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// getJSON fetches path and decodes the response, returning the status.
func getJSON(t *testing.T, ts *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding: %v", path, err)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestServeQueries loads the paper's running example over HTTP and checks
// every query endpoint against the known decomposition.
func TestServeQueries(t *testing.T) {
	s, ts := newTestServer(t)

	// Load the paper example as an inline edge list.
	var pairs [][2]uint32
	for _, e := range gen.PaperExample().Edges() {
		pairs = append(pairs, [2]uint32{e.U, e.V})
	}
	if code := postJSON(t, ts, "/v1/graphs/paper", map[string]any{"edges": pairs}); code != http.StatusAccepted {
		t.Fatalf("load: status %d", code)
	}
	if err := s.WaitReady("paper", 10*time.Second); err != nil {
		t.Fatal(err)
	}

	// Truss numbers for every edge match the paper's Example 2.
	for key, want := range gen.PaperExamplePhi() {
		u, v := uint32(key>>32), uint32(key)
		var resp struct {
			Found bool  `json:"found"`
			Truss int32 `json:"truss"`
		}
		if code := getJSON(t, ts, fmt.Sprintf("/v1/graphs/paper/truss?u=%d&v=%d", u, v), &resp); code != 200 {
			t.Fatalf("truss(%d,%d): status %d", u, v, code)
		}
		if !resp.Found || resp.Truss != want {
			t.Fatalf("truss(%d,%d) = %+v want %d", u, v, resp, want)
		}
	}
	// A non-edge is found=false, not an error.
	var miss struct {
		Found bool `json:"found"`
	}
	if code := getJSON(t, ts, "/v1/graphs/paper/truss?u=0&v=11", &miss); code != 200 || miss.Found {
		t.Fatalf("non-edge lookup: code=%d found=%v", code, miss.Found)
	}

	// Histogram matches the Example 2 class sizes.
	var hist struct {
		KMax    int32            `json:"kmax"`
		Classes map[string]int64 `json:"classes"`
	}
	getJSON(t, ts, "/v1/graphs/paper/histogram", &hist)
	wantClasses := map[string]int64{"2": 1, "3": 9, "4": 6, "5": 10}
	if hist.KMax != 5 || len(hist.Classes) != len(wantClasses) {
		t.Fatalf("histogram = %+v", hist)
	}
	for k, n := range wantClasses {
		if hist.Classes[k] != n {
			t.Fatalf("histogram class %s = %d want %d", k, hist.Classes[k], n)
		}
	}

	// Top-2 classes are k=5 and k=4.
	var top struct {
		Classes []struct {
			K     int32       `json:"k"`
			Size  int         `json:"size"`
			Edges [][2]uint32 `json:"edges"`
		} `json:"classes"`
	}
	getJSON(t, ts, "/v1/graphs/paper/topclasses?t=2&edges=1", &top)
	if len(top.Classes) != 2 || top.Classes[0].K != 5 || top.Classes[1].K != 4 {
		t.Fatalf("topclasses = %+v", top)
	}
	if top.Classes[0].Size != 10 || len(top.Classes[0].Edges) != 10 {
		t.Fatalf("top class = %+v", top.Classes[0])
	}

	// The 5-truss community of edge (0,1) is the clique {a..e} = {0..4}.
	var comm struct {
		Found    bool        `json:"found"`
		Size     int         `json:"size"`
		Vertices []uint32    `json:"vertices"`
		Edges    [][2]uint32 `json:"edges"`
	}
	getJSON(t, ts, "/v1/graphs/paper/community?u=0&v=1&k=5", &comm)
	if !comm.Found || comm.Size != 10 || len(comm.Vertices) != 5 {
		t.Fatalf("community(0,1,k=5) = %+v", comm)
	}
	for i, v := range comm.Vertices {
		if v != uint32(i) {
			t.Fatalf("community vertices = %v want 0..4", comm.Vertices)
		}
	}
	// Edge (8,10) has truss number 2: no community at any k >= 3.
	getJSON(t, ts, "/v1/graphs/paper/community?u=8&v=10&k=3", &comm)
	if comm.Found {
		t.Fatalf("community(8,10,k=3) should not exist")
	}

	// Graph info reflects the build.
	var info GraphInfo
	getJSON(t, ts, "/v1/graphs/paper", &info)
	if info.State != string(StateReady) || info.KMax != 5 || info.Edges != 26 || info.Epoch != 1 {
		t.Fatalf("info = %+v", info)
	}
}

// TestLoadFromFile exercises the path-based load route.
func TestLoadFromFile(t *testing.T) {
	s, ts := newTestServer(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	var buf bytes.Buffer
	buf.WriteString("# test graph\n")
	for _, e := range gen.PaperExample().Edges() {
		fmt.Fprintf(&buf, "%d %d\n", e.U, e.V)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := postJSON(t, ts, "/v1/graphs/file", map[string]any{"path": path}); code != http.StatusAccepted {
		t.Fatalf("load: status %d", code)
	}
	if err := s.WaitReady("file", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	var resp struct {
		Truss int32 `json:"truss"`
	}
	getJSON(t, ts, "/v1/graphs/file/truss?u=0&v=1", &resp)
	if resp.Truss != 5 {
		t.Fatalf("truss(0,1) from file = %d want 5", resp.Truss)
	}
	// A bad path fails synchronously with 400.
	if code := postJSON(t, ts, "/v1/graphs/bad", map[string]any{"path": filepath.Join(dir, "absent.txt")}); code != http.StatusBadRequest {
		t.Fatalf("bad path: status %d", code)
	}
}

// TestErrorPaths checks the failure contract of every route.
func TestErrorPaths(t *testing.T) {
	_, ts := newTestServer(t)
	if code := getJSON(t, ts, "/v1/graphs/nope/truss?u=1&v=2", nil); code != http.StatusNotFound {
		t.Fatalf("unknown graph: status %d", code)
	}
	if code := postJSON(t, ts, "/v1/graphs/x", map[string]any{}); code != http.StatusBadRequest {
		t.Fatalf("empty load body: status %d", code)
	}
	if code := postJSON(t, ts, "/v1/graphs/x", map[string]any{"path": "p", "edges": [][2]uint32{{0, 1}}}); code != http.StatusBadRequest {
		t.Fatalf("ambiguous load body: status %d", code)
	}
	_ = postJSON(t, ts, "/v1/graphs/g", map[string]any{"edges": [][2]uint32{{0, 1}, {1, 2}, {0, 2}}})
	if code := getJSON(t, ts, "/v1/graphs/g/truss?u=zero&v=2", nil); code != http.StatusBadRequest && code != http.StatusServiceUnavailable {
		t.Fatalf("bad u param: status %d", code)
	}
	if code := getJSON(t, ts, "/v1/graphs/g/community?u=0&v=1&k=2", nil); code != http.StatusBadRequest && code != http.StatusServiceUnavailable {
		t.Fatalf("k below 3: status %d", code)
	}
	resp, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/graphs/nope", nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.DefaultClient.Do(resp)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("delete unknown: status %d", res.StatusCode)
	}
}

// TestDeleteAndRebuild exercises remove plus the epoch bump on rebuild.
func TestDeleteAndRebuild(t *testing.T) {
	s, ts := newTestServer(t)
	g := gen.PaperExample()
	s.Build("g", g, "test")
	s.Build("g", g, "test")
	e, _ := s.Lookup("g")
	if e.Epoch != 2 {
		t.Fatalf("epoch after rebuild = %d want 2", e.Epoch)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/graphs/g", nil)
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", res.StatusCode)
	}
	if _, ok := s.Lookup("g"); ok {
		t.Fatal("graph still present after delete")
	}
}

// TestConcurrentQueriesDuringRebuild hammers the query path from many
// goroutines while the graph is concurrently rebuilt, verifying the
// snapshot scheme: readers always see a complete index, old or new.
func TestConcurrentQueriesDuringRebuild(t *testing.T) {
	s, ts := newTestServer(t)
	g := gen.Community(6, 12, 0.8, 1.5, 3)
	s.Build("g", g, "test")
	want := core.Decompose(g).Phi

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{}
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := i % g.NumEdges()
				i++
				e := g.Edge(int32(id))
				resp, err := client.Get(ts.URL + fmt.Sprintf("/v1/graphs/g/truss?u=%d&v=%d", e.U, e.V))
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				var body struct {
					Found bool  `json:"found"`
					Truss int32 `json:"truss"`
				}
				err = json.NewDecoder(resp.Body).Decode(&body)
				resp.Body.Close()
				if err != nil || !body.Found {
					t.Errorf("query failed mid-rebuild: %v %+v", err, body)
					return
				}
				if body.Truss != want[id] {
					t.Errorf("truss mismatch mid-rebuild: edge %d got %d want %d", id, body.Truss, want[id])
					return
				}
			}
		}()
	}
	for r := 0; r < 5; r++ {
		s.BuildAsync("g", g, "test")
		if err := s.WaitReady("g", 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	e, _ := s.Lookup("g")
	if e.Epoch < 2 {
		t.Fatalf("expected several rebuild epochs, got %d", e.Epoch)
	}
}

// TestStaleBuildDoesNotClobber simulates two overlapping rebuilds where
// the older one finishes last: its install must be rejected.
func TestStaleBuildDoesNotClobber(t *testing.T) {
	s := New(Options{Logf: t.Logf})
	seqOld := s.beginBuild()
	seqNew := s.beginBuild()
	s.build("g", gen.PaperExample(), "new", seqNew) // newer build publishes first
	s.build("g", gen.Managers(), "old", seqOld)     // stale build lands late
	e, ok := s.Lookup("g")
	if !ok || e.Source != "new" {
		t.Fatalf("registry serves %+v, want the newer build", e)
	}
	if e.Index.KMax() != 5 {
		t.Fatalf("kmax = %d, want the paper example's 5", e.Index.KMax())
	}
	if e.Epoch != 1 {
		t.Fatalf("epoch = %d want 1 (stale build must not bump it)", e.Epoch)
	}
}

// TestFailedRebuildKeepsServing drives the panic-recovery path with a nil
// graph: the entry turns failed but retains the previous index.
func TestFailedRebuildKeepsServing(t *testing.T) {
	s := New(Options{Logf: t.Logf})
	s.Build("g", gen.PaperExample(), "v1")
	s.BuildAsync("g", nil, "broken") // decomposing nil panics in the goroutine
	deadline := time.Now().Add(10 * time.Second)
	for {
		e, _ := s.Lookup("g")
		if e.State == StateFailed {
			if e.Index == nil {
				t.Fatal("failed rebuild dropped the previous index")
			}
			if k, ok := e.Index.TrussNumber(0, 1); !ok || k != 5 {
				t.Fatalf("previous index unusable after failed rebuild: %d %v", k, ok)
			}
			if e.Err == "" {
				t.Fatal("failed entry has no error message")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("build never failed; entry = %+v", e)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestLoadHardening checks the request limits on the load endpoint: a
// huge inline vertex ID must be rejected before it turns into a giant CSR
// allocation, oversized bodies get 413, and file-load parse errors must
// not echo file contents back to the client.
func TestLoadHardening(t *testing.T) {
	s, ts := newTestServer(t)
	if code := postJSON(t, ts, "/v1/graphs/big", map[string]any{"edges": [][2]uint32{{0, 4294967295}}}); code != http.StatusBadRequest {
		t.Fatalf("huge vertex ID: status %d want 400", code)
	}
	if _, ok := s.Lookup("big"); ok {
		t.Fatal("rejected graph was registered")
	}

	// Oversized body → 413.
	small := New(Options{MaxBodyBytes: 64})
	tsSmall := httptest.NewServer(small.Handler())
	defer tsSmall.Close()
	var edges [][2]uint32
	for i := uint32(0); i < 100; i++ {
		edges = append(edges, [2]uint32{i, i + 1})
	}
	if code := postJSON(t, tsSmall, "/v1/graphs/x", map[string]any{"edges": edges}); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d want 413", code)
	}

	// A non-graph file's contents must not appear in the error response.
	dir := t.TempDir()
	secret := filepath.Join(dir, "secret.txt")
	if err := os.WriteFile(secret, []byte("hunter2:supersecret\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	raw, _ := json.Marshal(map[string]any{"path": secret})
	resp, err := http.Post(ts.URL+"/v1/graphs/leak", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad file: status %d want 400", resp.StatusCode)
	}
	if bytes.Contains(body, []byte("hunter2")) {
		t.Fatalf("error response leaks file contents: %s", body)
	}
	// A missing file still gets a distinguishable, content-free message.
	raw, _ = json.Marshal(map[string]any{"path": filepath.Join(dir, "absent.txt")})
	resp, err = http.Post(ts.URL+"/v1/graphs/absent", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(body, []byte("file not found")) {
		t.Fatalf("missing file error = %s", body)
	}
}

// TestShutdownCancelsBuilds: Shutdown must cancel in-flight background
// decompositions through the lifecycle context and return once their
// goroutines exit; already-resident indexes keep serving.
func TestShutdownCancelsBuilds(t *testing.T) {
	s := New(Options{Workers: 2, Logf: t.Logf})
	s.Build("ready", gen.PaperExample(), "v1")

	// A stream of rebuilds large enough that some are in flight when
	// Shutdown fires.
	big := gen.Community(40, 18, 0.6, 2.0, 7)
	for i := 0; i < 4; i++ {
		s.BuildAsync("big", big, "test")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	t.Logf("shutdown took %s", time.Since(start))

	// The resident index still answers queries.
	e, ok := s.Lookup("ready")
	if !ok || e.Index == nil {
		t.Fatal("resident index lost after shutdown")
	}
	if k, found := e.Index.TrussNumber(0, 1); !found || k != 5 {
		t.Fatalf("query after shutdown: %d %v", k, found)
	}
	// Shutdown is idempotent.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	// No decomposition may complete after Shutdown: a fresh build under
	// the canceled lifecycle context must record an aborted entry.
	e2 := s.Build("late", gen.PaperExample(), "v2")
	if e2.State != StateFailed {
		t.Fatalf("post-shutdown build state = %s, want failed", e2.State)
	}
	// A background build after Shutdown is refused outright (no WaitGroup
	// Add racing Wait, no registry churn).
	s.BuildAsync("refused", gen.PaperExample(), "v3")
	if _, ok := s.Lookup("refused"); ok {
		t.Fatal("post-shutdown BuildAsync registered an entry")
	}
}
