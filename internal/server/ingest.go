package server

import (
	"context"
	"fmt"
	"time"

	"repro/internal/dynamic"
	"repro/internal/index"
	"repro/internal/ingest"
)

// dynConfig assembles the dynamic.Update configuration every maintenance
// site shares (mutation flushes and WAL replay during recovery).
func (s *Server) dynConfig() dynamic.Config {
	return dynamic.Config{
		MaxRegionFraction:    s.opts.MaxRegionFraction,
		Workers:              s.opts.Workers,
		ParallelRegionCutoff: s.opts.ParallelRegionCutoff,
	}
}

// flushOutcome is the server's payload on each ingest.Applied: the entry
// the flush published (or left in place) and the maintenance result the
// HTTP layer reports back.
type flushOutcome struct {
	entry *Entry
	res   *dynamic.Result
}

// pipeline returns name's ingestion pipeline, creating it on first use.
// Creation is refused while shutting down (the pipes map has already
// been drained and abandoned).
func (s *Server) pipeline(name string) (*ingest.Pipeline, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return nil, fmt.Errorf("graph %q: server shutting down", name)
	}
	p, ok := s.pipes[name]
	if !ok {
		p = ingest.New(ingest.Config{
			Name: name,
			Apply: func(_ context.Context, muts []ingest.Mutation) (ingest.Applied, error) {
				return s.applyFlush(name, muts)
			},
			MaxBatch:      s.opts.IngestMaxBatch,
			MaxQueue:      s.opts.IngestMaxQueue,
			FlushInterval: s.opts.IngestFlushInterval,
			Metrics:       s.metrics.ingest,
		})
		s.pipes[name] = p
	}
	return p, nil
}

// applyFlush group-commits one coalesced flush: it runs on the graph's
// flusher goroutine, under the name lock, and does for the whole flush
// what the per-request path used to do per mutation — one
// dynamic.Update, one index Patch, one WAL append + fsync, one install.
// Producers are woken with the published version, so durability still
// precedes visibility and versions stay monotonic per graph.
func (s *Server) applyFlush(name string, muts []ingest.Mutation) (ingest.Applied, error) {
	lock := s.lockName(name)
	defer s.unlockName(name, lock)

	e, ok := s.Lookup(name)
	if !ok {
		return ingest.Applied{}, fmt.Errorf("%w: %q", ErrNoGraph, name)
	}
	if e.State != StateReady || e.Index == nil {
		return ingest.Applied{}, fmt.Errorf("graph %q (%s): %w", name, e.State, ErrNotReady)
	}
	g := e.Index.Graph()
	// Coalesce against the live graph: duplicates dedup, the last op per
	// edge wins, and ops that are no-ops against the current edge set —
	// including add+delete pairs that cancel — never reach the WAL.
	adds, dels := ingest.Coalesce(muts, g.HasEdge)
	if len(adds) == 0 && len(dels) == 0 {
		// The whole flush coalesced away: ack at the current version
		// without bumping it — there is nothing to make durable and
		// nothing new to see.
		return ingest.Applied{
			Version: e.Version,
			Payload: &flushOutcome{entry: e, res: &dynamic.Result{G: g}},
		}, nil
	}
	start := time.Now()
	res, err := dynamic.Update(s.baseCtx, g, e.Index.PhiView(),
		dynamic.Batch{Adds: adds, Dels: dels}, s.dynConfig())
	if err != nil {
		return ingest.Applied{}, err
	}
	// Patch before the WAL append: the patched index is pure compute (a
	// copy-on-write overlay, safe even when e.Index serves off an mmap'd
	// snapshot), and having it in hand lets a triggered compaction
	// persist the exact index being published.
	patched := e.Index.Patch(res.G, res.Phi, res.KMax, res.Remap, res.Changed)
	version := e.Version + 1
	if s.store != nil {
		// Durability before visibility: if the WAL append fails the whole
		// flush is rejected, so disk never lags memory. One record, one
		// fsync, for every mutation in the flush — the group commit.
		walBytes, err := s.store.AppendMutation(name, version, adds, dels)
		if err != nil {
			return ingest.Applied{}, fmt.Errorf("graph %q: mutation rejected, WAL append failed: %w", name, err)
		}
		s.metrics.walAppends.Inc()
		s.metrics.walSize(name).Set(walBytes)
		defer func() {
			// Compaction is scheduled after the install below so the
			// registry already carries the snapshot's version; it runs off
			// this goroutine — the flush critical path pays nothing.
			if walBytes >= s.opts.walCompactBytes() {
				s.scheduleCompaction(name, e.Source, version, e.Epoch, patched)
			}
		}()
	}
	s.metrics.maints.Inc()
	s.metrics.maintDur.ObserveSince(start)
	s.metrics.maintChanged.Add(int64(res.Stats.Changed))
	s.metrics.maintRegion.Add(int64(res.Stats.Region))
	if res.Stats.FellBack {
		s.metrics.maintFallback.Inc()
	}
	s.metrics.maintParallel.Add(int64(res.Stats.ParallelPeels))
	ne := &Entry{
		Name:      name,
		State:     StateReady,
		Index:     patched,
		Source:    e.Source,
		LoadedAt:  time.Now(),
		BuildTime: e.BuildTime,
		Epoch:     e.Epoch,
		Version:   version,
	}
	// Install under the sequence of the entry the flush was computed
	// from: if a rebuild claimed a newer sequence meanwhile, this install
	// is rejected instead of overwriting the rebuilt decomposition (the
	// rebuild's own snapshot will truncate the orphan WAL record).
	if !s.install(name, ne, e.seq) {
		return ingest.Applied{}, fmt.Errorf("graph %q: mutation superseded by a concurrent rebuild", name)
	}
	s.logf("graph %q mutated to version %d: flush of %d coalesced to +%d -%d edges, m=%d kmax=%d, %s (region=%d fallback=%v parallel=%d)",
		name, version, len(muts), len(adds), len(dels), res.G.NumEdges(), res.KMax,
		time.Since(start).Round(time.Microsecond), res.Stats.Region, res.Stats.FellBack, res.Stats.ParallelPeels)
	return ingest.Applied{
		Version: version,
		Adds:    len(adds),
		Dels:    len(dels),
		Payload: &flushOutcome{entry: ne, res: res},
	}, nil
}

// scheduleCompaction starts an asynchronous WAL compaction for name at
// version, unless one is already in flight or the server is shutting
// down. The old path wrote the snapshot synchronously inside the
// mutation critical section, holding the name lock across an indexfile
// write + fsync; moving it here keeps flushes committing at WAL-append
// speed while the snapshot streams out in the background.
func (s *Server) scheduleCompaction(name, source string, version uint64, epoch int, ix *index.TrussIndex) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down || s.compacting[name] {
		return
	}
	s.compacting[name] = true
	s.builds.Add(1) // Shutdown waits for compactions like it waits for builds
	go func() {
		defer s.builds.Done()
		remaining := s.compact(name, source, version, epoch, ix)
		s.mu.Lock()
		delete(s.compacting, name)
		s.mu.Unlock()
		// Flushes that committed while this compaction ran had their
		// triggers coalesced into the in-flight flag. If the surviving
		// WAL tail is still over the threshold, chase it with another
		// round against the now-current entry, so the trigger is never
		// lost — each round folds everything up to its scheduled version,
		// so this converges as soon as flushes pause.
		if remaining >= s.opts.walCompactBytes() {
			if e, ok := s.Lookup(name); ok && e.State == StateReady &&
				e.Epoch == epoch && e.Version > version && e.Index != nil {
				s.scheduleCompaction(name, e.Source, e.Version, e.Epoch, e.Index)
			}
		}
	}()
}

// compact folds the WAL into a snapshot in two phases, neither of which
// stalls the flush path for long:
//
//  1. Snapshot write, under the per-graph snapshot lock only — flushes
//     keep appending to the WAL while the indexfile streams out. Safe
//     because recovery ignores WAL records at or below the snapshot's
//     version, so a crash at any point replays correctly.
//  2. WAL truncation, under the name lock for just a rewrite of the few
//     records that postdate the snapshot — the only moment the flush
//     path can block on compaction, and it is O(records since the
//     snapshot), not O(index).
//
// Both phases re-validate the graph's lineage (same epoch, version not
// behind the snapshot) and abort when a rebuild or removal won: a stale
// snapshot must never land over a newer lineage's files, and a truncation
// must never run against a WAL it does not describe.
//
// The return value is the surviving WAL size in bytes (records newer
// than the snapshot), or -1 when the compaction aborted — the caller
// uses it to decide whether a chase round is needed.
func (s *Server) compact(name, source string, version uint64, epoch int, ix *index.TrussIndex) int64 {
	snapL := s.snaps.lock(name)
	e, ok := s.Lookup(name)
	if !ok || e.Epoch != epoch || e.Version < version {
		snapL.Unlock()
		s.logf("graph %q: compaction at version %d abandoned: lineage changed", name, version)
		return -1
	}
	start := time.Now()
	if err := s.store.WriteIndexSnapshot(name, source, version, ix); err != nil {
		s.metrics.snapFails.Inc()
		snapL.Unlock()
		s.logf("graph %q: WAL compaction failed: %v", name, err)
		return -1
	}
	s.metrics.snapSaves.Inc()
	s.metrics.snapDur.ObserveSince(start)
	s.metrics.snapFormat(name).Set(SnapshotFormatV2)
	snapL.Unlock()

	lock := s.lockName(name)
	defer s.unlockName(name, lock)
	e, ok = s.Lookup(name)
	if !ok || e.Epoch != epoch {
		s.logf("graph %q: WAL truncation at version %d abandoned: lineage changed", name, version)
		return -1
	}
	remaining, err := s.store.TruncateWAL(name, version)
	if err != nil {
		s.logf("graph %q: WAL truncation failed: %v", name, err)
		return -1
	}
	s.metrics.walSize(name).Set(remaining)
	s.metrics.compactions.Inc()
	s.logf("graph %q: WAL compacted into snapshot at version %d (%d bytes of newer records kept, %s)",
		name, version, remaining, time.Since(start).Round(time.Microsecond))
	return remaining
}
