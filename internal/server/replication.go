package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/indexfile"
)

// Replication: read-replica scale-out for the read-dominant truss query
// workload. A primary started with -data-dir exposes three things —
//
//	GET /v1/replication/manifest                  every graph + its snapshot metadata
//	GET /v1/replication/graphs/{name}/indexfile   raw index.tix bytes (hydration)
//	GET /v1/graphs/{name}/wal?from=V              long-poll NDJSON tail of committed mutations
//
// — and a follower reconstructs the full read surface from them: hydrate
// by downloading and mmap-opening the indexfile (a file copy, not a WAL
// replay — the payoff of the snapshot-v2 format), then tail the WAL and
// apply each record through the same dynamic.Update + Patch path a local
// mutation takes. The per-graph monotonic Version is the whole protocol:
// records are streamed strictly in version order with no holes, a
// follower applies record v only on top of v-1, and any discontinuity —
// a rebuild (epoch bump), a compaction that truncated past the
// follower's position, a primary restored from older state — surfaces as
// an explicit resync line telling the follower to re-hydrate.
//
// The WAL tail streams only committed (installed) records: a record is
// visible to followers exactly when its version is visible to queries,
// so a follower can never get ahead of what the primary acknowledges.

// replHeartbeat is how often an idle WAL tail emits a heartbeat line.
// Heartbeats carry the current version, so a caught-up follower keeps an
// accurate lag reading without any mutation traffic, and dead
// connections are discovered within one period.
const replHeartbeat = 10 * time.Second

// WALLine is one NDJSON line of the replication tail. Exactly one of the
// three shapes is populated per line:
//
//	{"version":V,"adds":[[u,v],...],"dels":[[u,v],...]}   a committed mutation record
//	{"hb":true,"version":V}                               idle heartbeat (V = current version)
//	{"resync":true}                                       lineage break: re-hydrate and re-tail
//
// An {"error":"..."} line reports a terminal stream failure (e.g. the
// graph was removed). The follower package decodes this struct; sharing
// it keeps the wire shape from drifting.
type WALLine struct {
	Version uint64      `json:"version,omitempty"`
	Adds    [][2]uint32 `json:"adds,omitempty"`
	Dels    [][2]uint32 `json:"dels,omitempty"`
	HB      bool        `json:"hb,omitempty"`
	Resync  bool        `json:"resync,omitempty"`
	Error   string      `json:"error,omitempty"`
}

// ReplGraph is one graph in the replication manifest: the registry
// summary plus what a follower needs to plan hydration.
type ReplGraph struct {
	GraphInfo
	// SnapshotVersion is the version of the on-disk indexfile (what a
	// fresh hydration lands at; the WAL covers the distance to Version).
	SnapshotVersion uint64 `json:"snapshot_version"`
	// SnapshotBytes is the indexfile size — the hydration transfer cost.
	SnapshotBytes int64 `json:"snapshot_bytes"`
}

// replState fans out "this graph advanced" wakeups to blocked WAL tails.
// One channel per graph, closed and replaced on publish: watchers grab
// the channel before reading registry state, so a publish between the
// read and the wait still wakes them (no lost-wakeup window).
type replState struct {
	mu      sync.Mutex
	waiters map[string]chan struct{}
}

// watch returns a channel closed at name's next publish.
func (r *replState) watch(name string) <-chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.waiters == nil {
		r.waiters = map[string]chan struct{}{}
	}
	ch, ok := r.waiters[name]
	if !ok {
		ch = make(chan struct{})
		r.waiters[name] = ch
	}
	return ch
}

// publish wakes every watcher of name. Called with s.mu held (from
// storeLocked); lock order is s.mu before repl.mu, and watchers take
// only repl.mu, so this never deadlocks.
func (r *replState) publish(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ch, ok := r.waiters[name]; ok {
		close(ch)
		delete(r.waiters, name)
	}
}

// requireStore gates the replication endpoints on durability: without a
// data dir there is no indexfile to hydrate from and no WAL to tail.
func (s *Server) requireStore(w http.ResponseWriter) bool {
	if s.store == nil {
		WriteError(w, http.StatusNotImplemented,
			"replication requires a primary started with -data-dir")
		return false
	}
	return true
}

// handleReplManifest serves GET /v1/replication/manifest: every
// registered graph with its registry summary and snapshot metadata,
// sorted by name. Followers poll it to discover graphs to hydrate,
// graphs that disappeared, and each graph's current target version.
func (s *Server) handleReplManifest(w http.ResponseWriter, r *http.Request) {
	if !s.requireStore(w) {
		return
	}
	entries := s.Entries()
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	graphs := make([]ReplGraph, 0, len(entries))
	for _, e := range entries {
		rg := ReplGraph{GraphInfo: entryInfo(e)}
		if v, n, err := s.store.SnapshotInfo(e.Name); err == nil {
			rg.SnapshotVersion, rg.SnapshotBytes = v, n
		}
		graphs = append(graphs, rg)
	}
	WriteJSON(w, http.StatusOK, map[string]any{"graphs": graphs})
}

// handleReplIndexfile serves GET /v1/replication/graphs/{name}/indexfile:
// the raw index.tix bytes for hydration. The open file descriptor pins
// the inode, so a concurrent compaction's atomic rename cannot tear the
// transfer — the follower receives a complete snapshot at *some* version
// (it reads which one from the downloaded file's own metadata) and the
// WAL tail's contiguity check reconciles any distance from there.
func (s *Server) handleReplIndexfile(w http.ResponseWriter, r *http.Request) {
	if !s.requireStore(w) {
		return
	}
	name := r.PathValue("name")
	e, ok := s.Lookup(name)
	if !ok {
		WriteError(w, http.StatusNotFound, "no graph %q", name)
		return
	}
	f, err := os.Open(s.store.IndexPath(name))
	if errors.Is(err, os.ErrNotExist) {
		w.Header().Set("Retry-After", "1")
		WriteError(w, http.StatusServiceUnavailable, "graph %q has no snapshot yet", name)
		return
	}
	if err != nil {
		WriteError(w, http.StatusInternalServerError, "opening snapshot: %v", err)
		return
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		WriteError(w, http.StatusInternalServerError, "statting snapshot: %v", err)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("Content-Length", strconv.FormatInt(st.Size(), 10))
	h.Set("X-Truss-Epoch", strconv.Itoa(e.Epoch))
	w.WriteHeader(http.StatusOK)
	n, _ := io.Copy(w, f)
	s.metrics.replHydrations.Inc()
	s.metrics.replHydrationBytes.Add(n)
}

// handleWALTail serves GET /v1/graphs/{name}/wal?from=V: an NDJSON
// long-poll stream of the graph's committed mutation records with
// versions strictly greater than V, in order, with no holes. The handler
// re-reads the (compaction-bounded) WAL on each wakeup and streams only
// records the registry has installed, so visibility here matches query
// visibility exactly. Any condition under which contiguity from V cannot
// be proven — the epoch changed (rebuild), the WAL no longer reaches
// back to V+1 (compaction passed the follower), V is ahead of the graph
// (primary restored from older state) — ends the stream with a resync
// line instead of guessing.
func (s *Server) handleWALTail(w http.ResponseWriter, r *http.Request) {
	if !s.requireStore(w) {
		return
	}
	name := r.PathValue("name")
	e, ok := s.Lookup(name)
	if !ok {
		WriteError(w, http.StatusNotFound, "no graph %q", name)
		return
	}
	last := uint64(0)
	if raw := r.URL.Query().Get("from"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			WriteError(w, http.StatusBadRequest, "from must be a uint64 version")
			return
		}
		last = v
	}
	epoch0 := e.Epoch
	h := w.Header()
	h.Set("Content-Type", "application/x-ndjson")
	h.Set(versionHeader, strconv.FormatUint(e.Version, 10))
	w.WriteHeader(http.StatusOK)
	// The middleware's status recorder exposes flushing only through the
	// ResponseController's Unwrap chain, not a direct Flusher assertion.
	rc := http.NewResponseController(w)
	rc.Flush() // commit the headers: a caught-up tail may not write for a while
	enc := json.NewEncoder(w)
	send := func(l WALLine) bool {
		if enc.Encode(l) != nil {
			return false
		}
		return rc.Flush() == nil
	}
	resync := func() {
		s.metrics.replResyncs.Inc()
		send(WALLine{Resync: true})
	}
	s.metrics.replTails.Inc()
	defer s.metrics.replTails.Dec()
	ctx := r.Context()
	hb := time.NewTicker(replHeartbeat)
	defer hb.Stop()
	for {
		// Grab the wakeup channel before reading state: a publish landing
		// between the Lookup below and the select still closes this channel.
		wake := s.repl.watch(name)
		e, ok := s.Lookup(name)
		switch {
		case !ok:
			send(WALLine{Error: fmt.Sprintf("graph %q removed", name)})
			return
		case e.Epoch != epoch0:
			resync()
			return
		case last > e.Version:
			resync()
			return
		case e.Version > last:
			recs, err := s.store.WALRecordsAfter(name, last)
			if err != nil {
				send(WALLine{Error: fmt.Sprintf("reading WAL: %v", err)})
				return
			}
			streamed := false
			for _, rec := range recs {
				if rec.Version > e.Version {
					break // appended but not yet installed: not visible yet
				}
				if rec.Version != last+1 {
					resync() // hole: compaction moved past the follower
					return
				}
				if !send(WALLine{Version: rec.Version, Adds: toPairs(rec.Adds), Dels: toPairs(rec.Dels)}) {
					return
				}
				last = rec.Version
				streamed = true
				s.metrics.replRecords.Inc()
			}
			if streamed {
				continue // more may have landed while we streamed
			}
			// The entry is ahead of us but the WAL has nothing contiguous
			// to offer (compacted away, or install-before-append interleave
			// we cannot prove out). Only a fresh snapshot can bridge it.
			resync()
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-wake:
		case <-hb.C:
			if !send(WALLine{HB: true, Version: e.Version}) {
				return
			}
		}
	}
}

// toPairs converts canonical edges to the wire's [u,v] pair shape.
func toPairs(edges []graph.Edge) [][2]uint32 {
	if len(edges) == 0 {
		return nil
	}
	out := make([][2]uint32, len(edges))
	for i, e := range edges {
		out[i] = [2]uint32{e.U, e.V}
	}
	return out
}

// ErrReplicaGap is returned by ApplyReplicated when the record does not
// directly follow the graph's applied version — the follower's signal to
// throw the entry away and re-hydrate from the primary's snapshot.
var ErrReplicaGap = errors.New("replicated record does not follow the applied version")

// ApplyReplicated applies one replicated mutation record to name at
// exactly the stated version: records at or below the current version
// are skipped (idempotent redelivery after a reconnect resumes cleanly),
// a record more than one ahead is rejected with ErrReplicaGap, and the
// in-sequence record runs the same maintenance path a local flush does —
// dynamic.Update, copy-on-write Patch, WAL append before install (the
// follower's own durability matches the primary's discipline, which is
// what makes a follower restart resume instead of re-hydrate).
func (s *Server) ApplyReplicated(ctx context.Context, name string, version uint64, adds, dels []graph.Edge) error {
	lock := s.lockName(name)
	defer s.unlockName(name, lock)
	e, ok := s.Lookup(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoGraph, name)
	}
	if e.Index == nil {
		return fmt.Errorf("graph %q (%s): %w", name, e.State, ErrNotReady)
	}
	if version <= e.Version {
		return nil // already applied
	}
	if version != e.Version+1 {
		return fmt.Errorf("%w: record %d over applied %d", ErrReplicaGap, version, e.Version)
	}
	start := time.Now()
	res, err := dynamic.Update(ctx, e.Index.Graph(), e.Index.PhiView(),
		dynamic.Batch{Adds: adds, Dels: dels}, s.dynConfig())
	if err != nil {
		return err
	}
	patched := e.Index.Patch(res.G, res.Phi, res.KMax, res.Remap, res.Changed)
	if s.store != nil {
		walBytes, err := s.store.AppendMutation(name, version, adds, dels)
		if err != nil {
			return fmt.Errorf("graph %q: replicated record rejected, WAL append failed: %w", name, err)
		}
		s.metrics.walAppends.Inc()
		s.metrics.walSize(name).Set(walBytes)
		defer func() {
			if walBytes >= s.opts.walCompactBytes() {
				s.scheduleCompaction(name, e.Source, version, e.Epoch, patched)
			}
		}()
	}
	s.metrics.maints.Inc()
	s.metrics.maintDur.ObserveSince(start)
	s.metrics.maintChanged.Add(int64(res.Stats.Changed))
	ne := &Entry{
		Name:      name,
		State:     StateReady,
		Index:     patched,
		Source:    e.Source,
		LoadedAt:  time.Now(),
		BuildTime: e.BuildTime,
		Epoch:     e.Epoch,
		Version:   version,
	}
	if !s.install(name, ne, e.seq) {
		return fmt.Errorf("graph %q: replicated record superseded by a concurrent install", name)
	}
	return nil
}

// HydrateSnapshot replaces name's local state with a snapshot streamed
// from a primary: the bytes are written atomically as the graph's
// index.tix (any previous WAL belongs to the abandoned lineage and is
// dropped), the file is mmap-opened and fully checksum-verified — the
// bytes crossed a network — and the entry is installed at the snapshot's
// own version and the primary's epoch. Requires a data dir. The
// previous entry's mapping, if any, stays open for the life of the
// process (queries may still hold it), same as after a rebuild.
func (s *Server) HydrateSnapshot(name string, epoch int, r io.Reader) (*Entry, int64, error) {
	if s.store == nil {
		return nil, 0, errors.New("server: hydration requires a data dir")
	}
	lock := s.lockName(name)
	defer s.unlockName(name, lock)
	n, err := s.store.ReceiveIndexSnapshot(name, r)
	if err != nil {
		return nil, n, err
	}
	path := s.store.IndexPath(name)
	f, err := indexfile.Open(path)
	if err != nil {
		os.Remove(path)
		return nil, n, fmt.Errorf("server: hydrated snapshot unreadable: %w", err)
	}
	if err := f.Verify(); err != nil {
		f.Close()
		os.Remove(path)
		return nil, n, fmt.Errorf("server: hydrated snapshot corrupt: %w", err)
	}
	ix := f.Index()
	e := &Entry{
		Name:     name,
		State:    StateReady,
		Index:    ix,
		Source:   f.Meta().Source,
		LoadedAt: time.Now(),
		Epoch:    epoch,
		Version:  f.Meta().GraphVersion,
	}
	if !s.install(name, e, s.beginBuild()) {
		f.Close()
		return nil, n, fmt.Errorf("graph %q: hydration superseded by a concurrent install", name)
	}
	s.metrics.ixMapped.Add(f.MappedBytes())
	s.metrics.snapFormat(name).Set(SnapshotFormatV2)
	s.logf("graph %q hydrated at version %d (epoch %d): m=%d kmax=%d, %d bytes",
		name, e.Version, e.Epoch, ix.NumEdges(), ix.KMax(), n)
	return e, n, nil
}

// SetReadyProbe installs an extra readiness gate consulted by Ready()
// after the registry's own checks pass. The follower wires its
// caught-up-within-lag check here, so a replica's /readyz only admits
// traffic once its answers are close enough to the primary's.
func (s *Server) SetReadyProbe(probe func() (bool, []string)) {
	s.mu.Lock()
	s.readyProbe = probe
	s.mu.Unlock()
}

// rejectReadOnly answers mutations on a follower: 403 with a structured
// body carrying the primary's address, so a misconfigured writer learns
// where to go in one round-trip instead of a retry loop.
func (s *Server) rejectReadOnly(w http.ResponseWriter) bool {
	if s.opts.Follow == "" {
		return false
	}
	WriteJSON(w, http.StatusForbidden, map[string]string{
		"error":   "read-only replica: mutations must go to the primary",
		"primary": s.opts.Follow,
	})
	return true
}
