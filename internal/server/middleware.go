package server

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// The serving middleware stack, outermost first:
//
//	requestID → accessLog → metrics → admission → mux (+ /metrics, /readyz, pprof)
//
// Request IDs are assigned (or propagated) first so every later layer —
// access log lines, error responses, traces a client correlates — shares
// one identifier. The metrics layer wraps admission so shed requests are
// visible in the per-route counters as 429s, not silently dropped before
// measurement. Probe endpoints (/healthz, /readyz, /metrics, /debug/pprof)
// bypass admission: an operator diagnosing an overloaded server must not
// be shed by the very overload they are diagnosing.

// requestIDHeader carries the request ID in both directions.
const requestIDHeader = "X-Request-Id"

// Default connection-lifecycle timeouts for NewHTTPServer. A server
// without them holds a goroutine and a connection for as long as a slow
// (or deliberately slow — slowloris) client cares to drip bytes.
const (
	// DefaultReadHeaderTimeout bounds how long a client may take to send
	// the request headers. Headers are small; 5s is generous even over
	// bad mobile links.
	DefaultReadHeaderTimeout = 5 * time.Second
	// DefaultReadTimeout bounds the whole request read including the
	// body. Inline graph loads can be tens of MB of JSON, so this is
	// sized for a slow upload, not an interactive query.
	DefaultReadTimeout = 5 * time.Minute
	// DefaultIdleTimeout bounds how long a keep-alive connection may sit
	// between requests.
	DefaultIdleTimeout = 2 * time.Minute
)

// HTTPTimeouts configures NewHTTPServer. Zero values select the package
// defaults; negative values disable that timeout (streaming consumers
// with very slow readers may need it, but know what you are giving up).
type HTTPTimeouts struct {
	ReadHeader time.Duration
	Read       time.Duration
	Idle       time.Duration
}

// resolve maps the zero/negative convention onto http.Server's values.
func (t HTTPTimeouts) resolve() HTTPTimeouts {
	pick := func(v, def time.Duration) time.Duration {
		switch {
		case v == 0:
			return def
		case v < 0:
			return 0 // http.Server: zero means no timeout
		default:
			return v
		}
	}
	return HTTPTimeouts{
		ReadHeader: pick(t.ReadHeader, DefaultReadHeaderTimeout),
		Read:       pick(t.Read, DefaultReadTimeout),
		Idle:       pick(t.Idle, DefaultIdleTimeout),
	}
}

// NewHTTPServer returns an http.Server for h hardened against slow-client
// connection exhaustion: header, body-read, and keep-alive idle phases are
// all bounded (see the Default*Timeout constants). There is deliberately
// no WriteTimeout — /v1/graphs/{name}/edges streams arbitrarily large
// NDJSON bodies, and a write deadline would cut legitimate bulk reads;
// handlers needing one can set per-request deadlines via
// http.ResponseController.
func NewHTTPServer(h http.Handler, t HTTPTimeouts) *http.Server {
	r := t.resolve()
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: r.ReadHeader,
		ReadTimeout:       r.Read,
		IdleTimeout:       r.Idle,
	}
}

// idCounter sequences request IDs within a process.
var idCounter atomic.Uint64

// idPrefix distinguishes processes; set once at init from the wall clock.
var idPrefix = func() string {
	return strconv.FormatInt(time.Now().UnixNano()&0xffffffffff, 36)
}()

// nextRequestID returns a process-unique request ID. It is a few
// nanoseconds of atomic increment plus one small allocation — cheap enough
// for the hot path, unique enough to grep a log by.
func nextRequestID() string {
	return idPrefix + "-" + strconv.FormatUint(idCounter.Add(1), 36)
}

// statusRecorder captures the status code and bytes written by the inner
// handler. It deliberately does not implement http.Flusher/Hijacker
// passthroughs beyond Flush: the API streams NDJSON (needs Flush via the
// ResponseController path) but never hijacks.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// Unwrap lets http.ResponseController reach the underlying writer, so
// per-request deadlines and flushes keep working through the recorder.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// withRequestID assigns (or propagates a client-sent) request ID and
// reflects it in the response header. Client-sent IDs are accepted only
// when well-formed (see validRequestID): the ID is interpolated into
// access-log lines and response headers, so a hostile value could spoof
// log fields or split headers if reflected verbatim.
func withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(requestIDHeader)
		if !validRequestID(id) {
			id = nextRequestID()
			r.Header.Set(requestIDHeader, id)
		}
		w.Header().Set(requestIDHeader, id)
		next.ServeHTTP(w, r)
	})
}

// validRequestID bounds client-supplied request IDs to a log- and
// header-safe charset: 1-128 bytes of [A-Za-z0-9._-]. Anything else —
// spaces, quotes, control bytes — is replaced with a generated ID.
func validRequestID(id string) bool {
	if len(id) == 0 || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// accessLogger writes one structured (logfmt) line per request to a
// serialized writer.
type accessLogger struct {
	mu  sync.Mutex
	out io.Writer
}

// log writes one access-log line. Fields are logfmt-style key=value pairs:
// greppable raw, parseable by any structured-log shipper.
func (l *accessLogger) log(r *http.Request, status int, bytes int64, elapsed time.Duration, route string) {
	if route == "" {
		route = "-"
	}
	line := fmt.Sprintf("time=%s id=%s method=%s path=%q route=%q status=%d bytes=%d dur=%s remote=%q\n",
		time.Now().UTC().Format(time.RFC3339Nano),
		r.Header.Get(requestIDHeader),
		r.Method, r.URL.RequestURI(), route, status, bytes,
		elapsed.Round(time.Microsecond), r.RemoteAddr)
	l.mu.Lock()
	_, _ = io.WriteString(l.out, line)
	l.mu.Unlock()
}

// withObservation wraps next with the measurement layer: status/byte
// capture, per-route metrics, and (when logger is non-nil) access logging.
// The route label is the ServeMux pattern that matched (r.Pattern is
// populated by the mux during routing and visible here after next
// returns); unmatched and shed requests report "unrouted".
func withObservation(m *serverMetrics, logger *accessLogger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		m.inflight.Inc()
		// Deferred so a panicking handler (recovered per-connection by
		// net/http) cannot leak the gauge upward forever.
		defer m.inflight.Dec()
		next.ServeHTTP(rec, r)
		elapsed := time.Since(start)
		status := rec.status
		if status == 0 {
			status = http.StatusOK // handler wrote nothing: implicit 200
		}
		m.request(r.Pattern, status, elapsed)
		if logger != nil {
			logger.log(r, status, rec.bytes, elapsed, r.Pattern)
		}
	})
}

// admission is the bounded-concurrency load shedder: at most limit
// requests run the inner handler at once, and excess load is rejected
// immediately with 429 + Retry-After rather than queued into a latency
// collapse. Probe paths bypass the limiter.
type admission struct {
	limit    int64
	inflight atomic.Int64
	m        *serverMetrics
	next     http.Handler
}

// exemptFromAdmission reports whether a path must never be shed:
// operational probes and diagnostics stay reachable under overload, and
// so does replication — WAL tails are long-lived streams that would
// otherwise pin admission slots, and shedding a follower's hydration or
// tail under load is exactly backwards (the replicas are the capacity
// relief).
func exemptFromAdmission(path string) bool {
	switch path {
	case "/healthz", "/readyz", "/metrics":
		return true
	}
	if len(path) >= 16 && path[:16] == "/v1/replication/" {
		return true
	}
	if len(path) >= 4 && path[len(path)-4:] == "/wal" &&
		len(path) >= 11 && path[:11] == "/v1/graphs/" {
		return true
	}
	return len(path) >= 13 && path[:13] == "/debug/pprof/" || path == "/debug/pprof"
}

func (a *admission) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if a.limit <= 0 || exemptFromAdmission(r.URL.Path) {
		a.next.ServeHTTP(w, r)
		return
	}
	if n := a.inflight.Add(1); n > a.limit {
		a.inflight.Add(-1)
		a.m.shed.Inc()
		// Retry-After: 1 composes with the client package's read
		// retries — readers back off a beat and come back; mutations
		// surface the 429 to their caller unretried.
		w.Header().Set("Retry-After", "1")
		WriteError(w, http.StatusTooManyRequests,
			"server at capacity (%d requests in flight): retry shortly", a.limit)
		return
	}
	defer a.inflight.Add(-1)
	a.next.ServeHTTP(w, r)
}
