package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/indexfile"
	"repro/internal/obs"
)

// mutateJSON issues a mutation request and decodes the response.
func mutateJSON(t *testing.T, ts *httptest.Server, method, path string, body any, out any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(method, ts.URL+path, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

// trussOf queries one edge's truss number over HTTP.
func trussOf(t *testing.T, ts *httptest.Server, name string, u, v uint32) (int32, bool) {
	t.Helper()
	var resp struct {
		Found bool  `json:"found"`
		Truss int32 `json:"truss"`
	}
	if code := getJSON(t, ts, fmt.Sprintf("/v1/graphs/%s/truss?u=%d&v=%d", name, u, v), &resp); code != http.StatusOK {
		t.Fatalf("truss query: status %d", code)
	}
	return resp.Truss, resp.Found
}

func TestMutateEndpoints(t *testing.T) {
	s, ts := newTestServer(t)
	// A triangle plus a pendant edge.
	s.Build("g", graph.FromEdges([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 2, V: 3}}), "inline")

	if k, ok := trussOf(t, ts, "g", 0, 1); !ok || k != 3 {
		t.Fatalf("initial truss(0,1) = %d,%v", k, ok)
	}

	// Close the square 0-1-2-3 into K4 → every edge reaches truss 4.
	var mr struct {
		Version  uint64 `json:"version"`
		Changed  int    `json:"changed"`
		Fallback bool   `json:"fallback"`
	}
	code := mutateJSON(t, ts, http.MethodPost, "/v1/graphs/g/edges",
		map[string]any{"edges": [][2]uint32{{0, 3}, {1, 3}}}, &mr)
	if code != http.StatusOK {
		t.Fatalf("POST edges: status %d", code)
	}
	if mr.Version != 2 {
		t.Fatalf("version = %d, want 2", mr.Version)
	}
	if k, _ := trussOf(t, ts, "g", 0, 1); k != 4 {
		t.Fatalf("truss(0,1) after inserts = %d, want 4", k)
	}

	// Delete one K4 edge → back to truss 3.
	code = mutateJSON(t, ts, http.MethodDelete, "/v1/graphs/g/edges",
		map[string]any{"edges": [][2]uint32{{1, 3}}}, &mr)
	if code != http.StatusOK {
		t.Fatalf("DELETE edges: status %d", code)
	}
	if mr.Version != 3 {
		t.Fatalf("version = %d, want 3", mr.Version)
	}
	if k, _ := trussOf(t, ts, "g", 0, 1); k != 3 {
		t.Fatalf("truss(0,1) after delete = %d, want 3", k)
	}
	if _, ok := trussOf(t, ts, "g", 1, 3); ok {
		t.Fatal("deleted edge still resolves")
	}

	// Error paths.
	if code := mutateJSON(t, ts, http.MethodPost, "/v1/graphs/nope/edges",
		map[string]any{"edges": [][2]uint32{{0, 1}}}, nil); code != http.StatusNotFound {
		t.Fatalf("unknown graph: status %d", code)
	}
	if code := mutateJSON(t, ts, http.MethodPost, "/v1/graphs/g/edges",
		map[string]any{}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d", code)
	}
	if code := mutateJSON(t, ts, http.MethodDelete, "/v1/graphs/g/edges",
		map[string]any{"adds": [][2]uint32{{0, 1}}}, nil); code != http.StatusBadRequest {
		t.Fatalf("DELETE with adds: status %d", code)
	}
	if code := mutateJSON(t, ts, http.MethodPost, "/v1/graphs/g/edges",
		map[string]any{"edges": [][2]uint32{{0, 1 << 30}}}, nil); code != http.StatusBadRequest {
		t.Fatalf("oversized vertex ID: status %d", code)
	}
}

// TestMutateMatchesFreshDecomposition drives a mutation sequence over HTTP
// and diffs every edge's truss number against a fresh decomposition.
func TestMutateMatchesFreshDecomposition(t *testing.T) {
	s, ts := newTestServer(t)
	g := gen.ErdosRenyi(30, 140, 77)
	s.Build("g", g, "inline")

	adds := [][2]uint32{{0, 1}, {2, 3}, {4, 5}, {6, 7}, {31, 32}}
	code := mutateJSON(t, ts, http.MethodPost, "/v1/graphs/g/edges",
		map[string]any{"adds": adds, "dels": [][2]uint32{{0, 2}}}, nil)
	if code != http.StatusOK {
		t.Fatalf("mutation: status %d", code)
	}
	e, _ := s.Lookup("g")
	want := core.Decompose(e.Index.Graph())
	for id, p := range want.Phi {
		if e.Index.EdgeTruss(int32(id)) != p {
			t.Fatalf("edge %d: index says %d, fresh decomposition %d", id, e.Index.EdgeTruss(int32(id)), p)
		}
	}
}

func TestPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	g := gen.WithPlantedCliques(gen.ErdosRenyi(40, 160, 9), []int{6}, 9)

	// First life: build, mutate twice, remember the state.
	s1 := New(Options{Workers: 2, Logf: t.Logf, DataDir: dir})
	s1.Build("main", g, "inline")
	if _, _, err := s1.Mutate(context.Background(), "main",
		[]graph.Edge{{U: 1, V: 2}, {U: 50, V: 51}}, []graph.Edge{g.Edge(3)}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s1.Mutate(context.Background(), "main",
		[]graph.Edge{{U: 5, V: 9}}, nil); err != nil {
		t.Fatal(err)
	}
	// A second graph with no mutations at all.
	s1.Build("side", gen.PaperExample(), "inline")

	e1, _ := s1.Lookup("main")
	wantVersion := e1.Version
	wantPhi := append([]int32(nil), e1.Index.PhiView()...)
	wantEdges := e1.Index.Graph().Edges()
	if wantVersion != 3 {
		t.Fatalf("pre-restart version = %d, want 3", wantVersion)
	}
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Second life: recover from disk only — no Build calls.
	s2 := New(Options{Workers: 2, Logf: t.Logf, DataDir: dir})
	if err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	e2, ok := s2.Lookup("main")
	if !ok || e2.State != StateReady {
		t.Fatalf("main not recovered: %+v", e2)
	}
	if e2.Version != wantVersion {
		t.Fatalf("recovered version = %d, want %d", e2.Version, wantVersion)
	}
	if e2.Index.NumEdges() != len(wantPhi) {
		t.Fatalf("recovered m = %d, want %d", e2.Index.NumEdges(), len(wantPhi))
	}
	for id, p := range wantPhi {
		if e2.Index.Graph().Edge(int32(id)) != wantEdges[id] {
			t.Fatalf("edge %d differs after recovery", id)
		}
		if e2.Index.EdgeTruss(int32(id)) != p {
			t.Fatalf("phi of edge %d = %d after recovery, want %d", id, e2.Index.EdgeTruss(int32(id)), p)
		}
	}
	if e, ok := s2.Lookup("side"); !ok || e.State != StateReady || e.Version != 1 {
		t.Fatalf("side not recovered: %+v", e)
	}

	// Recovered graphs keep serving and mutating.
	ts := httptest.NewServer(s2.Handler())
	defer ts.Close()
	var mr struct {
		Version uint64 `json:"version"`
	}
	if code := mutateJSON(t, ts, http.MethodPost, "/v1/graphs/main/edges",
		map[string]any{"edges": [][2]uint32{{60, 61}}}, &mr); code != http.StatusOK {
		t.Fatalf("post-recovery mutation: status %d", code)
	}
	if mr.Version != wantVersion+1 {
		t.Fatalf("post-recovery version = %d, want %d", mr.Version, wantVersion+1)
	}
}

// TestRecoveryTornWAL appends garbage to the WAL (as a crash mid-append
// would) and checks recovery keeps the intact prefix.
func TestRecoveryTornWAL(t *testing.T) {
	dir := t.TempDir()
	s1 := New(Options{Workers: 1, Logf: t.Logf, DataDir: dir})
	s1.Build("g", gen.PaperExample(), "inline")
	if _, _, err := s1.Mutate(context.Background(), "g",
		[]graph.Edge{{U: 0, V: 9}}, nil); err != nil {
		t.Fatal(err)
	}
	e1, _ := s1.Lookup("g")

	walPath := filepath.Join(s1.store.graphDir("g"), walFile)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x55, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := New(Options{Workers: 1, Logf: t.Logf, DataDir: dir})
	if err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	e2, ok := s2.Lookup("g")
	if !ok || e2.Version != e1.Version {
		t.Fatalf("torn-WAL recovery: got %+v, want version %d", e2, e1.Version)
	}
	if e2.Index.NumEdges() != e1.Index.NumEdges() {
		t.Fatalf("m = %d, want %d", e2.Index.NumEdges(), e1.Index.NumEdges())
	}
}

// TestRecoveryCorruptSnapshot flips a byte in the index snapshot and checks
// the graph is skipped (not wrongly served) while others recover. Byte 20
// sits in a reserved header field, so the preamble checksum catches it at
// Open time — no Verify pass needed.
func TestRecoveryCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	s1 := New(Options{Workers: 1, Logf: t.Logf, DataDir: dir})
	s1.Build("bad", gen.PaperExample(), "inline")
	s1.Build("good", gen.PaperExample(), "inline")

	snapPath := filepath.Join(s1.store.graphDir("bad"), indexFile)
	raw, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[20] ^= 0xff
	if err := os.WriteFile(snapPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := New(Options{Workers: 1, Logf: t.Logf, DataDir: dir})
	if err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Lookup("bad"); ok {
		t.Fatal("corrupt snapshot was recovered")
	}
	if _, ok := s2.Lookup("good"); !ok {
		t.Fatal("intact graph was not recovered")
	}
}

// TestWALCompaction forces a tiny compaction threshold and checks the WAL
// folds into the snapshot while restarts stay faithful.
func TestWALCompaction(t *testing.T) {
	dir := t.TempDir()
	s1 := New(Options{Workers: 1, Logf: t.Logf, DataDir: dir, WALCompactBytes: 1})
	s1.Build("g", gen.PaperExample(), "inline")
	for i := uint32(0); i < 3; i++ {
		if _, _, err := s1.Mutate(context.Background(), "g",
			[]graph.Edge{{U: 20 + i, V: 21 + i}}, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Compaction runs off the mutation critical path now: poll for the
	// asynchronous fold instead of asserting it happened inline.
	walPath := filepath.Join(s1.store.graphDir("g"), walFile)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(walPath); os.IsNotExist(err) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("WAL not compacted away within deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
	e1, _ := s1.Lookup("g")

	s2 := New(Options{Workers: 1, Logf: t.Logf, DataDir: dir})
	if err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	e2, ok := s2.Lookup("g")
	if !ok || e2.Version != e1.Version || e2.Index.NumEdges() != e1.Index.NumEdges() {
		t.Fatalf("compacted recovery mismatch: %+v vs version %d m %d", e2, e1.Version, e1.Index.NumEdges())
	}
}

// TestMutateRebuildArbitration: rebuilds win over mutations. While a
// reload is in flight (building placeholder) Mutate refuses, and a
// mutation computed against the pre-rebuild entry that races the
// rebuild's publication is rejected by the sequence guard instead of
// clobbering the fresh decomposition.
func TestMutateRebuildArbitration(t *testing.T) {
	s := New(Options{Workers: 1, Logf: t.Logf})
	s.Build("g", gen.PaperExample(), "v1")

	// A rebuild placeholder is in flight: mutations must be refused even
	// though the previous index is still resident for queries.
	rebuildSeq := s.beginBuild()
	s.install("g", &Entry{Name: "g", State: StateBuilding, Source: "v2"}, rebuildSeq)
	if _, _, err := s.Mutate(context.Background(), "g", []graph.Edge{{U: 0, V: 9}}, nil); !errors.Is(err, ErrNotReady) {
		t.Fatalf("Mutate during rebuild: err = %v, want ErrNotReady", err)
	}

	// The rebuild publishes; a mutation based on the old entry's sequence
	// must not be installable over it. (Mutate re-reads the entry, so
	// drive install directly with the stale sequence.)
	s.build("g", gen.Managers(), "v2", rebuildSeq)
	e, _ := s.Lookup("g")
	if e.Source != "v2" {
		t.Fatalf("rebuild did not publish: %+v", e)
	}
	stale := &Entry{Name: "g", State: StateReady, Index: e.Index, Source: "v1", Version: 99}
	if s.install("g", stale, rebuildSeq-1) {
		t.Fatal("stale-sequence install was accepted over the rebuild")
	}

	// After the rebuild, mutations flow again and bump the version.
	ne, _, err := s.Mutate(context.Background(), "g", []graph.Edge{{U: 0, V: 50}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ne.Version != e.Version+1 || ne.Source != "v2" {
		t.Fatalf("post-rebuild mutation entry: %+v (want version %d on v2)", ne, e.Version+1)
	}
}

// TestRemoveEvictsMutationLock checks the per-name state maps — mutation
// locks, snapshot locks, and ingestion pipelines — do not grow without
// bound on a churning registry. Each iteration runs a mutation through
// the pipeline first, so the old TryLock-based eviction bug (a name
// whose lock was held by an in-flight flush stayed in the map forever)
// would be caught here.
func TestRemoveEvictsMutationLock(t *testing.T) {
	s := New(Options{Workers: 1, Logf: t.Logf})
	for i := 0; i < 50; i++ {
		name := fmt.Sprintf("g%d", i)
		s.Build(name, gen.PaperExample(), "inline")
		if _, _, err := s.Mutate(context.Background(), name, []graph.Edge{{U: 0, V: 9}}, nil); err != nil {
			t.Fatal(err)
		}
		s.Remove(name)
	}
	if n := s.names.size(); n != 0 {
		t.Fatalf("%d mutation locks leaked after removes", n)
	}
	if n := s.snaps.size(); n != 0 {
		t.Fatalf("%d snapshot locks leaked after removes", n)
	}
	s.mu.Lock()
	pipes := len(s.pipes)
	s.mu.Unlock()
	if pipes != 0 {
		t.Fatalf("%d ingestion pipelines leaked after removes", pipes)
	}
}

// TestRemoveDeletesPersistedState checks DELETE also forgets the disk copy.
func TestRemoveDeletesPersistedState(t *testing.T) {
	dir := t.TempDir()
	s1 := New(Options{Workers: 1, Logf: t.Logf, DataDir: dir})
	s1.Build("g", gen.PaperExample(), "inline")
	if !s1.Remove("g") {
		t.Fatal("remove failed")
	}
	s2 := New(Options{Workers: 1, Logf: t.Logf, DataDir: dir})
	if err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Lookup("g"); ok {
		t.Fatal("removed graph came back after restart")
	}
}

// TestRecoveryV2OpenPath: after a clean shutdown each graph dir holds only
// an index.tix, and the next process serves it straight off the mapping —
// no WAL replay, no re-peel, no Build — announcing the path in both the
// restart metrics and the access log. Mutations then patch copy-on-write
// over the mapped base.
func TestRecoveryV2OpenPath(t *testing.T) {
	dir := t.TempDir()
	s1 := New(Options{Workers: 1, Logf: t.Logf, DataDir: dir})
	s1.Build("a", gen.PaperExample(), "inline")
	s1.Build("b", gen.ErdosRenyi(30, 120, 3), "inline")
	ea, _ := s1.Lookup("a")
	wantTruss := ea.Index.EdgeTruss(0)
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(s1.store.graphDir("a"), snapshotFile)); !os.IsNotExist(err) {
		t.Fatalf("legacy snapshot written alongside indexfile: %v", err)
	}

	var accessLog bytes.Buffer
	s2 := New(Options{Workers: 1, Logf: t.Logf, DataDir: dir,
		Metrics: obs.NewRegistry(), AccessLog: &accessLog})
	if err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := s2.metrics.restartV2Open.Value(); got != 2 {
		t.Fatalf("restart_path{v2-open} = %d, want 2", got)
	}
	if got := s2.metrics.builds.Value(); got != 0 {
		t.Fatalf("builds during v2-open recovery = %d, want 0", got)
	}
	if got := s2.metrics.replayed.Value(); got != 0 {
		t.Fatalf("WAL batches replayed = %d, want 0", got)
	}
	if got := s2.metrics.ixMapped.Value(); got <= 0 {
		t.Fatalf("truss_indexfile_mapped_bytes = %d, want > 0", got)
	}
	if !strings.Contains(accessLog.String(), "restart_path=v2-open") {
		t.Fatalf("access log missing restart path:\n%s", accessLog.String())
	}
	e2, ok := s2.Lookup("a")
	if !ok || e2.State != StateReady || e2.Index.EdgeTruss(0) != wantTruss {
		t.Fatalf("mapped graph wrong: %+v", e2)
	}
	// The mapped entry accepts mutations: Patch overlays the mmap base.
	if _, _, err := s2.Mutate(context.Background(), "a",
		[]graph.Edge{{U: 0, V: 9}}, nil); err != nil {
		t.Fatalf("mutation over mapped index: %v", err)
	}
	e3, _ := s2.Lookup("a")
	want := core.Decompose(e3.Index.Graph())
	for id, p := range want.Phi {
		if e3.Index.EdgeTruss(int32(id)) != p {
			t.Fatalf("edge %d after patch over mmap: %d, want %d",
				id, e3.Index.EdgeTruss(int32(id)), p)
		}
	}
}

// TestRecoveryV1Migration: a legacy snapshot.bin recovers through the old
// replay-and-rebuild path exactly once — recovery rewrites it as an
// indexfile, so the next restart maps and goes.
func TestRecoveryV1Migration(t *testing.T) {
	dir := t.TempDir()
	res := core.Decompose(gen.PaperExample())

	// Fabricate a pre-migration graph dir: v1 snapshot, no indexfile.
	s0 := New(Options{Workers: 1, Logf: t.Logf, DataDir: dir})
	if err := s0.store.SaveSnapshot("legacy", "inline", 1, res.G, res.Phi, res.KMax); err != nil {
		t.Fatal(err)
	}
	gdir := s0.store.graphDir("legacy")
	if _, err := os.Stat(filepath.Join(gdir, indexFile)); !os.IsNotExist(err) {
		t.Fatalf("fixture already has an indexfile: %v", err)
	}

	s1 := New(Options{Workers: 1, Logf: t.Logf, DataDir: dir, Metrics: obs.NewRegistry()})
	if err := s1.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := s1.metrics.restartV1Replay.Value(); got != 1 {
		t.Fatalf("restart_path{v1-replay} = %d, want 1", got)
	}
	e, ok := s1.Lookup("legacy")
	if !ok || e.State != StateReady || e.Version != 1 {
		t.Fatalf("legacy graph not recovered: %+v", e)
	}
	for id, p := range res.Phi {
		if e.Index.EdgeTruss(int32(id)) != p {
			t.Fatalf("edge %d: %d, want %d", id, e.Index.EdgeTruss(int32(id)), p)
		}
	}
	// Migration happened: indexfile present, legacy snapshot gone.
	if _, err := os.Stat(filepath.Join(gdir, indexFile)); err != nil {
		t.Fatalf("migration did not write an indexfile: %v", err)
	}
	if _, err := os.Stat(filepath.Join(gdir, snapshotFile)); !os.IsNotExist(err) {
		t.Fatalf("legacy snapshot not removed by migration: %v", err)
	}

	// Second restart takes the fast path.
	s2 := New(Options{Workers: 1, Logf: t.Logf, DataDir: dir, Metrics: obs.NewRegistry()})
	if err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := s2.metrics.restartV2Open.Value(); got != 1 {
		t.Fatalf("post-migration restart_path{v2-open} = %d, want 1", got)
	}
}

// TestVerifySnapshotsCatchesBitRot: Open's O(kmax) validation deliberately
// skips data-section checksums (that's what keeps readiness independent of
// edge count), so rot inside a payload section maps cleanly by default.
// Options.VerifySnapshots opts into the full CRC sweep at recovery.
func TestVerifySnapshotsCatchesBitRot(t *testing.T) {
	dir := t.TempDir()
	s1 := New(Options{Workers: 1, Logf: t.Logf, DataDir: dir})
	s1.Build("g", gen.PaperExample(), "inline")
	path := filepath.Join(s1.store.graphDir("g"), indexFile)

	// Flip one bit in the phi payload — outside every open-time check.
	f, err := indexfile.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(-1)
	for _, sec := range f.Sections() {
		if sec.Name == "phi" {
			off = int64(sec.Off)
		}
	}
	f.Close()
	if off < 0 {
		t.Fatal("no phi section")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[off] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := New(Options{Workers: 1, Logf: t.Logf, DataDir: dir, Metrics: obs.NewRegistry()})
	if err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Lookup("g"); !ok {
		t.Fatal("structurally valid file should map without VerifySnapshots")
	}

	s3 := New(Options{Workers: 1, Logf: t.Logf, DataDir: dir,
		Metrics: obs.NewRegistry(), VerifySnapshots: true})
	if err := s3.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s3.Lookup("g"); ok {
		t.Fatal("VerifySnapshots served a bit-rotted snapshot")
	}
}
