package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/obs"
)

// TestReadVersionHeaderAndMinVersion: every read answered through an
// entry carries X-Truss-Version, and a request pinning a floor the entry
// has not reached yet gets 412 + Retry-After instead of a stale answer.
func TestReadVersionHeaderAndMinVersion(t *testing.T) {
	s := New(Options{Workers: 1, Logf: t.Logf, Metrics: obs.NewRegistry()})
	s.Build("g", gen.PaperExample(), "inline")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(min string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/graphs/g/histogram", nil)
		if err != nil {
			t.Fatal(err)
		}
		if min != "" {
			req.Header.Set("X-Truss-Min-Version", min)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := get(""); resp.StatusCode != 200 || resp.Header.Get("X-Truss-Version") != "1" {
		t.Fatalf("read: status %d version header %q, want 200 / 1",
			resp.StatusCode, resp.Header.Get("X-Truss-Version"))
	}
	// A satisfied floor answers normally.
	if resp := get("1"); resp.StatusCode != 200 {
		t.Fatalf("min-version 1 over version 1: status %d", resp.StatusCode)
	}
	// An unreachable floor is a 412 naming the entry's actual version.
	resp := get("2")
	if resp.StatusCode != http.StatusPreconditionFailed || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("min-version 2 over version 1: status %d retry-after %q",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	var body struct {
		Version uint64 `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Version != 1 {
		t.Fatalf("412 body version = %d (err %v), want 1", body.Version, err)
	}

	// The floor clears once a mutation advances the graph past it.
	if _, _, err := s.Mutate(context.Background(), "g",
		[]graph.Edge{{U: 90, V: 91}}, nil); err != nil {
		t.Fatal(err)
	}
	if resp := get("2"); resp.StatusCode != 200 || resp.Header.Get("X-Truss-Version") != "2" {
		t.Fatalf("after mutation: status %d version %q, want 200 / 2",
			resp.StatusCode, resp.Header.Get("X-Truss-Version"))
	}
}

// TestReplManifestAndIndexfile: the manifest advertises each graph's
// version and snapshot metadata, and the indexfile endpoint serves the
// exact on-disk bytes with the epoch in a header.
func TestReplManifestAndIndexfile(t *testing.T) {
	dir := t.TempDir()
	s := New(Options{Workers: 1, Logf: t.Logf, DataDir: dir, Metrics: obs.NewRegistry()})
	s.Build("g", gen.PaperExample(), "inline")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var man struct {
		Graphs []struct {
			Name            string `json:"name"`
			Version         uint64 `json:"version"`
			Epoch           int    `json:"epoch"`
			SnapshotVersion uint64 `json:"snapshot_version"`
			SnapshotBytes   int64  `json:"snapshot_bytes"`
		} `json:"graphs"`
	}
	if code := getJSON(t, ts, "/v1/replication/manifest", &man); code != 200 {
		t.Fatalf("manifest: status %d", code)
	}
	if len(man.Graphs) != 1 || man.Graphs[0].Name != "g" {
		t.Fatalf("manifest = %+v", man)
	}
	mg := man.Graphs[0]
	if mg.Version != 1 || mg.SnapshotVersion != 1 || mg.SnapshotBytes <= 0 {
		t.Fatalf("manifest entry = %+v", mg)
	}

	resp, err := http.Get(ts.URL + "/v1/replication/graphs/g/indexfile")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("indexfile: status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Truss-Epoch") != "1" {
		t.Fatalf("indexfile epoch header = %q, want 1", resp.Header.Get("X-Truss-Epoch"))
	}
	got := make([]byte, 0, mg.SnapshotBytes)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		got = append(got, buf[:n]...)
		if err != nil {
			break
		}
	}
	want, err := os.ReadFile(s.store.IndexPath("g"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || int64(len(got)) != mg.SnapshotBytes {
		t.Fatalf("indexfile bytes = %d, want %d (manifest said %d)",
			len(got), len(want), mg.SnapshotBytes)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("indexfile byte %d differs from disk", i)
		}
	}

	if code := getJSON(t, ts, "/v1/replication/graphs/nope/indexfile", nil); code != 404 {
		t.Fatalf("unknown graph indexfile: status %d", code)
	}
}

// TestReplicationRequiresStore: without a data dir there is nothing to
// replicate from, and the endpoints say so with 501.
func TestReplicationRequiresStore(t *testing.T) {
	s := New(Options{Workers: 1, Logf: t.Logf, Metrics: obs.NewRegistry()})
	s.Build("g", gen.PaperExample(), "inline")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, path := range []string{
		"/v1/replication/manifest",
		"/v1/replication/graphs/g/indexfile",
		"/v1/graphs/g/wal",
	} {
		if code := getJSON(t, ts, path, nil); code != http.StatusNotImplemented {
			t.Errorf("GET %s without store: status %d, want 501", path, code)
		}
	}
}

// tailLines opens a WAL tail and returns a line reader plus a closer.
func tailLines(t *testing.T, ts *httptest.Server, name string, from uint64) (func(timeout time.Duration) (WALLine, bool), func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/graphs/%s/wal?from=%d", ts.URL, name, from), nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		resp.Body.Close()
		cancel()
		t.Fatalf("wal tail: status %d", resp.StatusCode)
	}
	lines := make(chan WALLine, 16)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var l WALLine
			if json.Unmarshal(sc.Bytes(), &l) == nil {
				lines <- l
			}
		}
	}()
	next := func(timeout time.Duration) (WALLine, bool) {
		select {
		case l, ok := <-lines:
			return l, ok
		case <-time.After(timeout):
			return WALLine{}, false
		}
	}
	return next, func() { cancel(); resp.Body.Close() }
}

// TestWALTailStreamsAndLongPolls: a tail from version V first drains the
// backlog in order, then blocks and wakes when the next flush commits.
func TestWALTailStreamsAndLongPolls(t *testing.T) {
	dir := t.TempDir()
	s := New(Options{Workers: 1, Logf: t.Logf, DataDir: dir, Metrics: obs.NewRegistry()})
	s.Build("g", gen.PaperExample(), "inline")
	ctx := context.Background()
	if _, _, err := s.Mutate(ctx, "g", []graph.Edge{{U: 90, V: 91}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Mutate(ctx, "g", []graph.Edge{{U: 91, V: 92}}, []graph.Edge{{U: 90, V: 91}}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	next, done := tailLines(t, ts, "g", 1)
	defer done()
	// Backlog: versions 2 and 3, in order, with the right payloads.
	l2, ok := next(5 * time.Second)
	if !ok || l2.Version != 2 || len(l2.Adds) != 1 || l2.Adds[0] != [2]uint32{90, 91} {
		t.Fatalf("first record = %+v ok=%v, want version 2 add [90,91]", l2, ok)
	}
	l3, ok := next(5 * time.Second)
	if !ok || l3.Version != 3 || len(l3.Adds) != 1 || len(l3.Dels) != 1 {
		t.Fatalf("second record = %+v ok=%v, want version 3 with one add and one del", l3, ok)
	}

	// Caught up: nothing arrives until the next commit, which wakes the
	// long-poll without waiting for the heartbeat.
	if l, ok := next(200 * time.Millisecond); ok {
		t.Fatalf("unexpected line while caught up: %+v", l)
	}
	if _, _, err := s.Mutate(ctx, "g", []graph.Edge{{U: 92, V: 93}}, nil); err != nil {
		t.Fatal(err)
	}
	l4, ok := next(5 * time.Second)
	if !ok || l4.Version != 4 {
		t.Fatalf("live record = %+v ok=%v, want version 4", l4, ok)
	}
}

// TestWALTailResync: every unprovable-contiguity case ends the stream
// with an explicit resync line — a from ahead of the graph, a from below
// what the WAL still covers (the build snapshot consumed it), and a
// rebuild landing mid-tail (epoch change).
func TestWALTailResync(t *testing.T) {
	dir := t.TempDir()
	s := New(Options{Workers: 1, Logf: t.Logf, DataDir: dir, Metrics: obs.NewRegistry()})
	s.Build("g", gen.PaperExample(), "inline")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// from ahead of the graph: a primary restored from older state.
	next, done := tailLines(t, ts, "g", 99)
	if l, ok := next(5 * time.Second); !ok || !l.Resync {
		t.Fatalf("from=99: got %+v ok=%v, want resync", l, ok)
	}
	done()

	// from=0 against a freshly built graph: version 1 lives in the
	// snapshot, not the WAL, so only hydration can bridge it.
	next, done = tailLines(t, ts, "g", 0)
	if l, ok := next(5 * time.Second); !ok || !l.Resync {
		t.Fatalf("from=0 after build: got %+v ok=%v, want resync", l, ok)
	}
	done()

	// A caught-up tail sees a rebuild as a resync: the new epoch's
	// versions are a different lineage.
	next, done = tailLines(t, ts, "g", 1)
	defer done()
	if l, ok := next(200 * time.Millisecond); ok {
		t.Fatalf("unexpected line while caught up: %+v", l)
	}
	s.Build("g", gen.PaperExample(), "inline")
	if l, ok := next(5 * time.Second); !ok || !l.Resync {
		t.Fatalf("after rebuild: got %+v ok=%v, want resync", l, ok)
	}
}

// TestApplyReplicated: in-sequence records apply through the maintenance
// path, redelivered records are skipped, and a gap is rejected with
// ErrReplicaGap.
func TestApplyReplicated(t *testing.T) {
	dir := t.TempDir()
	s := New(Options{Workers: 1, Logf: t.Logf, DataDir: dir, Metrics: obs.NewRegistry()})
	s.Build("g", gen.PaperExample(), "inline")
	ctx := context.Background()

	if err := s.ApplyReplicated(ctx, "g", 3, []graph.Edge{{U: 90, V: 91}}, nil); !errors.Is(err, ErrReplicaGap) {
		t.Fatalf("gap record: err = %v, want ErrReplicaGap", err)
	}
	e, _ := s.Lookup("g")
	m1 := e.Index.NumEdges()
	if err := s.ApplyReplicated(ctx, "g", 2, []graph.Edge{{U: 90, V: 91}}, nil); err != nil {
		t.Fatal(err)
	}
	e, _ = s.Lookup("g")
	if e.Version != 2 || e.Index.NumEdges() != m1+1 {
		t.Fatalf("after apply: version=%d m=%d, want 2 / %d", e.Version, e.Index.NumEdges(), m1+1)
	}
	// Redelivery (reconnect overlap) is a no-op, not a double apply.
	if err := s.ApplyReplicated(ctx, "g", 2, []graph.Edge{{U: 91, V: 92}}, nil); err != nil {
		t.Fatal(err)
	}
	e, _ = s.Lookup("g")
	if e.Version != 2 || e.Index.NumEdges() != m1+1 {
		t.Fatalf("after redelivery: version=%d m=%d, want unchanged 2 / %d",
			e.Version, e.Index.NumEdges(), m1+1)
	}
	if err := s.ApplyReplicated(ctx, "nope", 1, nil, nil); !errors.Is(err, ErrNoGraph) {
		t.Fatalf("unknown graph: err = %v, want ErrNoGraph", err)
	}

	// The applied record went through the follower's own WAL: a restart
	// recovers to version 2 without any network.
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	s2 := New(Options{Workers: 1, Logf: t.Logf, DataDir: dir, Metrics: obs.NewRegistry()})
	if err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	e2, ok := s2.Lookup("g")
	if !ok || e2.Version != 2 || e2.Index.NumEdges() != m1+1 {
		t.Fatalf("recovered: %+v (m=%d), want version 2 m=%d", e2, e2.Index.NumEdges(), m1+1)
	}
}

// TestHydrateSnapshot: a snapshot streamed from a primary installs at
// the snapshot's own version and the caller's epoch, serving the same
// truss numbers the primary computed.
func TestHydrateSnapshot(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	p := New(Options{Workers: 1, Logf: t.Logf, DataDir: pdir, Metrics: obs.NewRegistry()})
	p.Build("g", gen.PaperExample(), "inline")
	pe, _ := p.Lookup("g")

	src, err := os.Open(p.store.IndexPath("g"))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	f := New(Options{Workers: 1, Logf: t.Logf, DataDir: fdir, Metrics: obs.NewRegistry()})
	e, n, err := f.HydrateSnapshot("g", 7, src)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 || e.Version != pe.Version || e.Epoch != 7 {
		t.Fatalf("hydrated: n=%d version=%d epoch=%d, want >0 / %d / 7", n, e.Version, e.Epoch, pe.Version)
	}
	if e.Index.NumEdges() != pe.Index.NumEdges() || e.Index.KMax() != pe.Index.KMax() {
		t.Fatalf("hydrated index m=%d kmax=%d, want %d/%d",
			e.Index.NumEdges(), e.Index.KMax(), pe.Index.NumEdges(), pe.Index.KMax())
	}
	for id := 0; id < pe.Index.NumEdges(); id++ {
		if e.Index.EdgeTruss(int32(id)) != pe.Index.EdgeTruss(int32(id)) {
			t.Fatalf("edge %d: follower phi %d != primary %d",
				id, e.Index.EdgeTruss(int32(id)), pe.Index.EdgeTruss(int32(id)))
		}
	}

	// Hydration is impossible without a local store to land the file in.
	nostore := New(Options{Workers: 1, Logf: t.Logf, Metrics: obs.NewRegistry()})
	if _, _, err := nostore.HydrateSnapshot("g", 1, src); err == nil {
		t.Fatal("HydrateSnapshot without a data dir should fail")
	}
}

// TestFollowerRejectsMutations: a server in follower mode answers every
// mutation endpoint with 403 and a structured body naming the primary,
// while its read surface keeps serving.
func TestFollowerRejectsMutations(t *testing.T) {
	s := New(Options{Workers: 1, Logf: t.Logf, Metrics: obs.NewRegistry(),
		Follow: "http://primary.example:8080"})
	s.Build("g", gen.PaperExample(), "inline")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	check := func(method, path string) {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("%s %s on follower: status %d, want 403", method, path, resp.StatusCode)
		}
		var body struct {
			Error   string `json:"error"`
			Primary string `json:"primary"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		if body.Primary != "http://primary.example:8080" || body.Error == "" {
			t.Fatalf("%s %s body = %+v, want error + primary address", method, path, body)
		}
	}
	check(http.MethodPost, "/v1/graphs/g")
	check(http.MethodDelete, "/v1/graphs/g")
	check(http.MethodPost, "/v1/graphs/g/edges")
	check(http.MethodDelete, "/v1/graphs/g/edges")
	check(http.MethodPost, "/v1/graphs/g/edges:stream")

	// Reads still serve.
	if code := getJSON(t, ts, "/v1/graphs/g/histogram", nil); code != 200 {
		t.Fatalf("read on follower: status %d", code)
	}
	if code := getJSON(t, ts, "/v1/graphs", nil); code != 200 {
		t.Fatalf("list on follower: status %d", code)
	}
}
