package server

import (
	"sync"
	"time"

	"repro/internal/ingest"
	"repro/internal/obs"
)

// serverMetrics is the server's instrument panel: every metric the serving
// stack records, pre-registered once per registry so hot paths never pay a
// family lookup. All families share the truss_ prefix; see the README's
// Operations section for the catalog.
type serverMetrics struct {
	reg *obs.Registry

	// HTTP layer. Request counters and latency histograms are labeled by
	// route pattern and status code; resolved series are cached in
	// lock-free maps so the steady-state per-request cost is two atomic
	// map loads plus the atomic adds themselves.
	inflight   *obs.Gauge
	shed       *obs.Counter
	routeCount sync.Map // routeKey -> *obs.Counter
	routeDur   sync.Map // string (route) -> *obs.Histogram

	// Build / compute path.
	builds     *obs.Counter
	buildFails *obs.Counter
	buildDur   *obs.Histogram
	buildLvls  *obs.Counter
	buildEdges *obs.Counter
	// PKT engine shape (zero when builds fall back to the serial peel).
	buildRounds   *obs.Counter
	buildFrontier *obs.Counter
	kernelMerge   *obs.Counter
	kernelProbe   *obs.Counter

	// Dynamic maintenance.
	maints        *obs.Counter
	maintDur      *obs.Histogram
	maintChanged  *obs.Counter
	maintRegion   *obs.Counter
	maintFallback *obs.Counter
	maintParallel *obs.Counter

	// Ingestion pipeline (group commit). The ingest package owns the
	// family definitions; the server shares one instance across all
	// per-graph pipelines so /metrics aggregates the whole firehose.
	ingest *ingest.Metrics

	// Durability (snapshot + WAL).
	snapSaves   *obs.Counter
	snapFails   *obs.Counter
	snapDur     *obs.Histogram
	walAppends  *obs.Counter
	compactions *obs.Counter
	recovered   *obs.Counter
	replayed    *obs.Counter

	// Indexfile serving (snapshot v2): open latency, bytes currently
	// mapped, and which path each recovered graph took back to serving.
	ixOpenDur       *obs.Histogram
	ixMapped        *obs.Gauge
	restartV2Open   *obs.Counter
	restartV2Replay *obs.Counter
	restartV1Replay *obs.Counter

	// Replication, primary side: live WAL tails, records streamed to
	// followers, hydrations served, resync signals sent.
	replTails          *obs.Gauge
	replRecords        *obs.Counter
	replHydrations     *obs.Counter
	replHydrationBytes *obs.Counter
	replResyncs        *obs.Counter

	// Registry state.
	graphsReady *obs.Gauge
}

// routeKey identifies one (route, status) request-counter series.
type routeKey struct {
	route string
	code  int
}

// newServerMetrics registers the serving metric families on reg.
func newServerMetrics(reg *obs.Registry) *serverMetrics {
	if reg == nil {
		reg = obs.Default()
	}
	return &serverMetrics{
		reg:      reg,
		inflight: reg.Gauge("truss_http_inflight", "HTTP requests currently in flight."),
		shed:     reg.Counter("truss_http_shed_total", "Requests rejected with 429 by the admission limiter."),

		builds:     reg.Counter("truss_build_total", "Completed decomposition builds."),
		buildFails: reg.Counter("truss_build_failures_total", "Decomposition builds that failed or were aborted."),
		buildDur:   reg.Histogram("truss_build_seconds", "Decomposition + indexing duration.", obs.WideBuckets),
		buildLvls:  reg.Counter("truss_build_levels_total", "Peeling levels visited across all builds."),
		buildEdges: reg.Counter("truss_build_edges_peeled_total", "Edges peeled (classified) across all builds."),
		buildRounds: reg.Counter("truss_build_pkt_rounds_total",
			"PKT bulk-synchronous sub-rounds executed across all builds."),
		buildFrontier: reg.Counter("truss_build_pkt_frontier_edges_total",
			"Edges peeled through PKT frontiers across all builds."),
		kernelMerge: reg.Counter("truss_build_pkt_kernel_dispatch_total",
			"Adaptive triangle-kernel strategy choices across all builds.", "kernel", "merge"),
		kernelProbe: reg.Counter("truss_build_pkt_kernel_dispatch_total",
			"Adaptive triangle-kernel strategy choices across all builds.", "kernel", "probe"),

		maints:        reg.Counter("truss_maintenance_total", "Incremental maintenance batches applied."),
		maintDur:      reg.Histogram("truss_maintenance_seconds", "Incremental maintenance duration.", nil),
		maintChanged:  reg.Counter("truss_maintenance_changed_edges_total", "Edges whose truss number changed under maintenance."),
		maintRegion:   reg.Counter("truss_maintenance_region_edges_total", "Edges re-peeled inside affected regions."),
		maintFallback: reg.Counter("truss_maintenance_fallbacks_total", "Maintenance batches that fell back to full recompute."),
		maintParallel: reg.Counter("truss_maintenance_parallel_peels_total",
			"Region re-peels dispatched onto the parallel bulk-synchronous peeler."),

		ingest: ingest.NewMetrics(reg),

		snapSaves:   reg.Counter("truss_snapshot_saves_total", "Durable snapshots written."),
		snapFails:   reg.Counter("truss_snapshot_failures_total", "Snapshot writes that failed."),
		snapDur:     reg.Histogram("truss_snapshot_seconds", "Snapshot write duration.", nil),
		walAppends:  reg.Counter("truss_wal_appends_total", "Mutation batches appended to WALs."),
		compactions: reg.Counter("truss_wal_compactions_total", "WALs folded into fresh snapshots."),
		recovered:   reg.Counter("truss_recovered_graphs_total", "Graphs restored from durable state at startup."),
		replayed:    reg.Counter("truss_wal_replayed_batches_total", "WAL mutation batches replayed during recovery."),

		ixOpenDur: reg.Histogram("truss_indexfile_open_seconds",
			"Time to open (map + validate) an index snapshot at recovery.", nil),
		ixMapped: reg.Gauge("truss_indexfile_mapped_bytes",
			"Bytes of index snapshots currently memory-mapped and serving."),
		restartV2Open: reg.Counter("truss_restart_path_total",
			"Recovered graphs by restart path: v2-open serves the mapped snapshot directly, "+
				"v2-replay patches WAL batches over it, v1-replay rebuilds from a legacy snapshot (then migrates).",
			"path", "v2-open"),
		restartV2Replay: reg.Counter("truss_restart_path_total",
			"Recovered graphs by restart path: v2-open serves the mapped snapshot directly, "+
				"v2-replay patches WAL batches over it, v1-replay rebuilds from a legacy snapshot (then migrates).",
			"path", "v2-replay"),
		restartV1Replay: reg.Counter("truss_restart_path_total",
			"Recovered graphs by restart path: v2-open serves the mapped snapshot directly, "+
				"v2-replay patches WAL batches over it, v1-replay rebuilds from a legacy snapshot (then migrates).",
			"path", "v1-replay"),

		replTails: reg.Gauge("truss_replication_tails_active",
			"WAL tail streams currently held open by followers."),
		replRecords: reg.Counter("truss_replication_records_streamed_total",
			"Committed mutation records streamed to followers."),
		replHydrations: reg.Counter("truss_replication_hydrations_served_total",
			"Snapshot downloads served to hydrating followers."),
		replHydrationBytes: reg.Counter("truss_replication_hydration_bytes_total",
			"Snapshot bytes streamed to hydrating followers."),
		replResyncs: reg.Counter("truss_replication_resyncs_signaled_total",
			"WAL tails ended with a resync signal (rebuild, compaction past the follower, or version regression)."),

		graphsReady: reg.Gauge("truss_graphs_ready", "Graphs currently resident and serving."),
	}
}

// request records one served request: the per-route/status counter and the
// per-route latency histogram. Unrouted requests (404s, admission sheds)
// are labeled "unrouted" so their volume is visible without exploding
// cardinality on attacker-chosen paths.
func (m *serverMetrics) request(route string, code int, elapsed time.Duration) {
	if route == "" {
		route = "unrouted"
	}
	key := routeKey{route, code}
	cv, ok := m.routeCount.Load(key)
	if !ok {
		cv, _ = m.routeCount.LoadOrStore(key,
			m.reg.Counter("truss_http_requests_total", "HTTP requests served, by route pattern and status code.",
				"route", route, "code", codeLabel(code)))
	}
	hv, ok := m.routeDur.Load(route)
	if !ok {
		hv, _ = m.routeDur.LoadOrStore(route,
			m.reg.Histogram("truss_http_request_seconds", "HTTP request latency by route pattern.", nil,
				"route", route))
	}
	cv.(*obs.Counter).Inc()
	hv.(*obs.Histogram).Observe(elapsed.Seconds())
}

// codeLabel is strconv.Itoa for the three-digit status-code domain, kept
// to avoid the import in this hot file.
func codeLabel(code int) string {
	if code >= 100 && code < 1000 {
		return string([]byte{byte('0' + code/100), byte('0' + code/10%10), byte('0' + code%10)})
	}
	var buf [8]byte
	i := len(buf)
	n := code
	if n <= 0 {
		return "0"
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// walSize returns the per-graph WAL size gauge — the compaction signal an
// operator watches. Cardinality is bounded by the operator's own registry
// names, never by request input.
func (m *serverMetrics) walSize(name string) *obs.Gauge {
	return m.reg.Gauge("truss_wal_size_bytes", "Current WAL size per graph, reset by compaction.", "graph", name)
}

// snapFormat returns the per-graph snapshot-format gauge (1 = legacy
// snapshot.bin, 2 = mmap-able indexfile). A fleet-wide min over this
// gauge tells an operator when every graph has migrated.
func (m *serverMetrics) snapFormat(name string) *obs.Gauge {
	return m.reg.Gauge("truss_snapshot_format_version", "Snapshot format version persisted per graph.", "graph", name)
}
