package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/obs"
)

// newOpsServer returns a server with its own metrics registry (so
// parallel tests never share counters) and one ready graph named "g".
func newOpsServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.Metrics == nil {
		opts.Metrics = obs.NewRegistry()
	}
	s := New(opts)
	t.Cleanup(func() { _ = s.Shutdown(t.Context()) })
	s.Build("g", gen.PaperExample(), "test")
	return s
}

func TestRequestIDPropagation(t *testing.T) {
	var logBuf bytes.Buffer
	s := newOpsServer(t, Options{AccessLog: &logBuf})
	h := s.Handler()

	// A client-supplied ID is honored and reflected.
	req := httptest.NewRequest("GET", "/healthz", nil)
	req.Header.Set("X-Request-Id", "client-chosen-42")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-Id"); got != "client-chosen-42" {
		t.Fatalf("client request ID not propagated: got %q", got)
	}

	// Absent IDs are generated, unique per request, and reach the access
	// log along with the structured fields.
	ids := map[string]bool{}
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
		id := rec.Header().Get("X-Request-Id")
		if id == "" {
			t.Fatal("no request ID generated")
		}
		ids[id] = true
	}
	if len(ids) != 3 {
		t.Fatalf("generated IDs not unique: %v", ids)
	}
	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("access log has %d lines, want 4:\n%s", len(lines), logBuf.String())
	}
	if !strings.Contains(lines[0], "id=client-chosen-42") {
		t.Errorf("access log missing client request ID: %q", lines[0])
	}
	for _, want := range []string{"method=GET", `path="/healthz"`, "status=200", `route="GET /healthz"`, "dur=", "bytes="} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("access log line missing %s: %q", want, lines[0])
		}
	}

	// Oversized or hostile client IDs are replaced, not reflected: the ID
	// lands in access-log lines and response headers, so spaces and quotes
	// would let a client forge log fields.
	for _, bad := range []string{strings.Repeat("x", 500), `x status=500 remote="10.0.0.1"`, "a\"b", "tab\tchar"} {
		req = httptest.NewRequest("GET", "/healthz", nil)
		req.Header.Set("X-Request-Id", bad)
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		got := rec.Header().Get("X-Request-Id")
		if got == bad || got == "" {
			t.Fatalf("malformed request ID %q reflected as %q, want a generated replacement", bad, got)
		}
	}
}

// TestShedPath drives the server past its in-flight limit
// deterministically: two slow POST bodies hold two request slots open at
// the admission layer, then every further API request must be shed with
// 429 + Retry-After while probe endpoints stay reachable, and the shed
// counter must match the observed rejections exactly.
func TestShedPath(t *testing.T) {
	reg := obs.NewRegistry()
	s := newOpsServer(t, Options{MaxInFlight: 2, Metrics: reg})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy both slots with requests whose bodies never finish arriving.
	hold := make([]net.Conn, 2)
	for i := range hold {
		c, err := net.Dial("tcp", ts.Listener.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		_, err = io.WriteString(c, "POST /v1/graphs/held HTTP/1.1\r\nHost: t\r\n"+
			"Content-Type: application/json\r\nContent-Length: 64\r\n\r\n{")
		if err != nil {
			t.Fatal(err)
		}
		hold[i] = c
	}
	waitFor(t, func() bool { return s.metrics.inflight.Value() == 2 }, "2 requests in flight")

	// Probes bypass admission even at capacity.
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s at capacity: status %d, want 200", path, resp.StatusCode)
		}
	}

	// API traffic is shed, with Retry-After, exactly counted.
	const sheds = 5
	for i := 0; i < sheds; i++ {
		resp, err := http.Get(ts.URL + "/v1/graphs/g/truss?u=0&v=1")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("request %d at capacity: status %d, want 429 (body %s)", i, resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("429 without Retry-After")
		}
		if !strings.Contains(string(body), "capacity") {
			t.Fatalf("429 body does not explain the shed: %s", body)
		}
	}
	if got := s.metrics.shed.Value(); got != sheds {
		t.Fatalf("shed counter = %d, want %d", got, sheds)
	}

	// Release the held slots; traffic flows again. Polls racing the
	// release may still be shed, so keep counting observed 429s — the
	// counter must track them exactly.
	for _, c := range hold {
		c.Close()
	}
	observed := int64(sheds)
	waitFor(t, func() bool {
		resp, err := http.Get(ts.URL + "/v1/graphs/g/truss?u=0&v=1")
		if err != nil {
			return false
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			observed++
		}
		return resp.StatusCode == http.StatusOK
	}, "traffic to resume after releasing held connections")
	if got := s.metrics.shed.Value(); got != observed {
		t.Fatalf("shed counter = %d, want %d observed 429s", got, observed)
	}

	// The sheds are visible in the per-route metrics as 429s.
	samples := scrape(t, ts.URL)
	if got := samples.Value("truss_http_shed_total"); got != float64(observed) {
		t.Fatalf("exposed shed counter = %g, want %d", got, observed)
	}
	if got := samples.Value("truss_http_requests_total", "route", "unrouted", "code", "429"); got != float64(observed) {
		t.Fatalf("unrouted 429 counter = %g, want %d", got, observed)
	}
}

// TestConcurrentLoadBelowLimit storms the server with more concurrency
// than CPUs but less than the in-flight limit: every request must succeed,
// zero must shed, and the per-route counters must equal the driven load.
func TestConcurrentLoadBelowLimit(t *testing.T) {
	reg := obs.NewRegistry()
	s := newOpsServer(t, Options{MaxInFlight: 256, Metrics: reg})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const workers, perWorker = 16, 40
	var failed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				resp, err := http.Get(ts.URL + "/v1/graphs/g/truss?u=0&v=1")
				if err != nil {
					failed.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if failed.Load() != 0 {
		t.Fatalf("%d requests failed below the in-flight limit", failed.Load())
	}
	if got := s.metrics.shed.Value(); got != 0 {
		t.Fatalf("shed %d requests below the in-flight limit", got)
	}
	samples := scrape(t, ts.URL)
	want := float64(workers * perWorker)
	if got := samples.Value("truss_http_requests_total",
		"route", "GET /v1/graphs/{name}/truss", "code", "200"); got != want {
		t.Fatalf("truss route counter = %g, want %g", got, want)
	}
	if got := samples.Value("truss_http_request_seconds_count",
		"route", "GET /v1/graphs/{name}/truss"); got != want {
		t.Fatalf("latency histogram count = %g, want %g", got, want)
	}
}

// TestMetricsEndpoint checks the live exposition end to end: strict-parse
// the scrape and verify the build instrumentation recorded the one build
// this server ran.
func TestMetricsEndpoint(t *testing.T) {
	s := newOpsServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Drive one query so a route series exists.
	resp, err := http.Get(ts.URL + "/v1/graphs/g/truss?u=0&v=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	samples := scrape(t, ts.URL)
	if got := samples.Value("truss_build_total"); got != 1 {
		t.Errorf("truss_build_total = %g, want 1", got)
	}
	wantEdges := float64(gen.PaperExample().NumEdges())
	if got := samples.Value("truss_build_edges_peeled_total"); got != wantEdges {
		t.Errorf("edges peeled = %g, want %g", got, wantEdges)
	}
	if samples.Value("truss_build_levels_total") < 1 {
		t.Error("no peeling levels recorded")
	}
	if got := samples.Value("truss_build_seconds_count"); got != 1 {
		t.Errorf("build duration count = %g, want 1", got)
	}
	if got := samples.Value("truss_graphs_ready"); got != 1 {
		t.Errorf("graphs ready gauge = %g, want 1", got)
	}

	// Content type advertises the exposition version.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, mresp.Body)
	mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics Content-Type = %q", ct)
	}

	// DisableMetricsEndpoint hides the route.
	s2 := newOpsServer(t, Options{DisableMetricsEndpoint: true})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp2, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled /metrics: status %d, want 404", resp2.StatusCode)
	}
}

// TestReadyzFlip walks the readiness lifecycle: ready when empty, not
// ready (naming the graph) while a first build is pending, ready again
// once it publishes, resident through a rebuild, and not ready during
// shutdown.
func TestReadyzFlip(t *testing.T) {
	s := New(Options{Metrics: obs.NewRegistry()})
	h := s.Handler()

	status := func() (int, map[string]any) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
		var body map[string]any
		_ = json.NewDecoder(rec.Body).Decode(&body)
		return rec.Code, body
	}

	if code, body := status(); code != http.StatusOK || body["ready"] != true {
		t.Fatalf("empty server: readyz = %d %v, want 200 ready", code, body)
	}

	// A first build in flight blocks readiness and is named.
	s.install("slow", &Entry{Name: "slow", State: StateBuilding}, s.beginBuild())
	code, body := status()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("building server: readyz = %d, want 503", code)
	}
	if pending, _ := body["pending"].([]any); len(pending) != 1 || pending[0] != "slow" {
		t.Fatalf("pending = %v, want [slow]", body["pending"])
	}

	// Publication flips it ready.
	s.Build("slow", gen.PaperExample(), "test")
	if code, _ := status(); code != http.StatusOK {
		t.Fatalf("after build: readyz = %d, want 200", code)
	}

	// A rebuild placeholder keeps the old index resident — still ready.
	s.install("slow", &Entry{Name: "slow", State: StateBuilding}, s.beginBuild())
	if code, _ := status(); code != http.StatusOK {
		t.Fatalf("during rebuild: readyz = %d, want 200 (old index serves)", code)
	}

	// Shutdown drains readiness so load balancers stop routing here.
	_ = s.Shutdown(t.Context())
	if code, _ := status(); code != http.StatusServiceUnavailable {
		t.Fatalf("after shutdown: readyz = %d, want 503", code)
	}
}

func TestPprofOptIn(t *testing.T) {
	s := newOpsServer(t, Options{EnablePprof: true})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("goroutine")) {
		t.Fatalf("pprof smoke: status %d body %.80s", resp.StatusCode, body)
	}

	// Off by default: profiles are internals, not a public endpoint.
	s2 := newOpsServer(t, Options{})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp2, err := http.Get(ts2.URL + "/debug/pprof/goroutine")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without opt-in: status %d, want 404", resp2.StatusCode)
	}
}

// TestHTTPServerTimeouts pins the slowloris hardening: defaults applied,
// negatives disable, and a client that stalls mid-header is disconnected
// once ReadHeaderTimeout fires.
func TestHTTPServerTimeouts(t *testing.T) {
	hs := NewHTTPServer(http.NewServeMux(), HTTPTimeouts{})
	if hs.ReadHeaderTimeout != DefaultReadHeaderTimeout {
		t.Errorf("ReadHeaderTimeout = %v, want %v", hs.ReadHeaderTimeout, DefaultReadHeaderTimeout)
	}
	if hs.ReadTimeout != DefaultReadTimeout {
		t.Errorf("ReadTimeout = %v, want %v", hs.ReadTimeout, DefaultReadTimeout)
	}
	if hs.IdleTimeout != DefaultIdleTimeout {
		t.Errorf("IdleTimeout = %v, want %v", hs.IdleTimeout, DefaultIdleTimeout)
	}
	hs = NewHTTPServer(http.NewServeMux(), HTTPTimeouts{ReadHeader: -1, Read: -1, Idle: -1})
	if hs.ReadHeaderTimeout != 0 || hs.ReadTimeout != 0 || hs.IdleTimeout != 0 {
		t.Errorf("negative timeouts not disabled: %v %v %v",
			hs.ReadHeaderTimeout, hs.ReadTimeout, hs.IdleTimeout)
	}

	// Live slowloris: stall after half a request line.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewHTTPServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}),
		HTTPTimeouts{ReadHeader: 150 * time.Millisecond})
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := io.WriteString(conn, "GET / HT"); err != nil {
		t.Fatal(err)
	}
	// The server may write a 408 before closing; drain until the close
	// (read error) and require it within bounded time — an unhardened
	// server would hold the stalled connection open indefinitely.
	start := time.Now()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 256)
	for {
		if _, err := conn.Read(buf); err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				t.Fatal("stalled connection still open after 5s (read header timeout not applied)")
			}
			break
		}
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("stalled connection lingered %v (read header timeout not applied)", elapsed)
	}
}

// scrape fetches and strictly parses the server's /metrics.
func scrape(t *testing.T, baseURL string) obs.Samples {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	samples, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("metrics exposition rejected by strict parser: %v", err)
	}
	return samples
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
