// Package kcore implements k-core decomposition with the O(m) bin-sort
// peeling algorithm of Batagelj and Zaversnik [5]. The paper uses k-core as
// the comparison point for k-truss (Section 7.4, Table 6): the kmax-truss is
// much smaller and much more clustered than the cmax-core, and every
// k-truss is a (k-1)-core.
package kcore

import (
	"repro/internal/graph"
)

// Result holds a core decomposition.
type Result struct {
	// Core[v] is the core number of vertex v: the largest k such that v
	// belongs to the k-core.
	Core []int32
	// CMax is the maximum core number (0 for an empty or edgeless graph).
	CMax int32
	g    *graph.Graph
}

// Decompose computes the core number of every vertex of g in O(m+n) time.
func Decompose(g *graph.Graph) *Result {
	n := g.NumVertices()
	res := &Result{Core: make([]int32, n), g: g}
	if n == 0 {
		return res
	}
	deg := make([]int32, n)
	maxDeg := int32(0)
	for v := 0; v < n; v++ {
		deg[v] = int32(g.Degree(uint32(v)))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bin sort vertices by degree: vert is the sorted vertex array, pos the
	// position of each vertex in vert, bin[d] the start of degree-d's range.
	bin := make([]int32, maxDeg+2)
	for v := 0; v < n; v++ {
		bin[deg[v]]++
	}
	start := int32(0)
	for d := int32(0); d <= maxDeg; d++ {
		cnt := bin[d]
		bin[d] = start
		start += cnt
	}
	bin[maxDeg+1] = start
	vert := make([]uint32, n)
	pos := make([]int32, n)
	cursor := make([]int32, maxDeg+1)
	copy(cursor, bin[:maxDeg+1])
	for v := 0; v < n; v++ {
		pos[v] = cursor[deg[v]]
		vert[pos[v]] = uint32(v)
		cursor[deg[v]]++
	}

	// Peel in degree order. Invariant: vertices left of i are removed; bins
	// partition the unremoved suffix by current degree.
	for i := 0; i < n; i++ {
		v := vert[i]
		res.Core[v] = deg[v]
		if deg[v] > res.CMax {
			res.CMax = deg[v]
		}
		for _, w := range g.Neighbors(v) {
			if deg[w] <= deg[v] {
				continue // already removed or peels at the same level
			}
			// Move w one bin down: swap with the first vertex of its bin.
			dw := deg[w]
			pw := pos[w]
			ps := bin[dw]
			s := vert[ps]
			if s != w {
				vert[ps], vert[pw] = w, s
				pos[w], pos[s] = ps, pw
			}
			bin[dw]++
			deg[w]--
		}
	}
	return res
}

// KCore returns the subgraph of g induced by vertices with core number at
// least k (the k-core). The result preserves vertex IDs.
func (r *Result) KCore(k int32) *graph.Graph {
	set := graph.NewVertexSet(len(r.Core))
	for v, c := range r.Core {
		if c >= k {
			set.Add(uint32(v))
		}
	}
	return graph.InducedSubgraph(r.g, set)
}

// MaxCore returns the cmax-core: the non-empty k-core with the largest k.
func (r *Result) MaxCore() *graph.Graph { return r.KCore(r.CMax) }

// Degeneracy returns the graph degeneracy, which equals CMax.
func (r *Result) Degeneracy() int32 { return r.CMax }

// VerifyKCore checks the defining property directly: in the k-core
// subgraph, every vertex has degree >= k, and the subgraph is maximal (no
// removed vertex has >= k neighbors inside it). Used by tests.
func VerifyKCore(g *graph.Graph, core []int32, k int32) bool {
	set := graph.NewVertexSet(g.NumVertices())
	for v, c := range core {
		if c >= k {
			set.Add(uint32(v))
		}
	}
	inDeg := func(v uint32) int32 {
		d := int32(0)
		for _, w := range g.Neighbors(v) {
			if set.Contains(w) {
				d++
			}
		}
		return d
	}
	for v := 0; v < g.NumVertices(); v++ {
		if set.Contains(uint32(v)) {
			if inDeg(uint32(v)) < k {
				return false
			}
		}
	}
	return true
}
