package kcore

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func BenchmarkDecompose(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	var edges []graph.Edge
	const n = 20000
	for i := 0; i < 200000; i++ {
		edges = append(edges, graph.Edge{U: uint32(r.Intn(n)), V: uint32(r.Intn(n))})
	}
	g := graph.FromEdges(edges)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := Decompose(g); res.CMax == 0 {
			b.Fatal("cmax 0")
		}
	}
}
