package kcore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func clique(n int) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, graph.Edge{U: uint32(i), V: uint32(j)})
		}
	}
	return graph.FromEdges(edges)
}

// naiveCore computes core numbers by repeated minimum-degree removal.
func naiveCore(g *graph.Graph) []int32 {
	n := g.NumVertices()
	deg := make([]int32, n)
	removed := make([]bool, n)
	for v := 0; v < n; v++ {
		deg[v] = int32(g.Degree(uint32(v)))
	}
	core := make([]int32, n)
	k := int32(0)
	for remaining := n; remaining > 0; {
		// Find the minimum-degree unremoved vertex.
		min := int32(1 << 30)
		minV := -1
		for v := 0; v < n; v++ {
			if !removed[v] && deg[v] < min {
				min = deg[v]
				minV = v
			}
		}
		if min > k {
			k = min
		}
		core[minV] = k
		removed[minV] = true
		remaining--
		for _, w := range g.Neighbors(uint32(minV)) {
			if !removed[w] {
				deg[w]--
			}
		}
	}
	return core
}

func TestDecomposeEmpty(t *testing.T) {
	res := Decompose(graph.NewBuilder(0).Build())
	if res.CMax != 0 || len(res.Core) != 0 {
		t.Fatal("empty graph decomposition wrong")
	}
}

func TestDecomposeClique(t *testing.T) {
	g := clique(6)
	res := Decompose(g)
	if res.CMax != 5 {
		t.Fatalf("K6 cmax = %d, want 5", res.CMax)
	}
	for v, c := range res.Core {
		if c != 5 {
			t.Fatalf("K6 core[%d] = %d", v, c)
		}
	}
	mc := res.MaxCore()
	if mc.NumEdges() != 15 {
		t.Fatalf("max core edges = %d, want 15", mc.NumEdges())
	}
	if res.Degeneracy() != 5 {
		t.Fatalf("degeneracy = %d", res.Degeneracy())
	}
}

func TestDecomposePath(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	res := Decompose(g)
	if res.CMax != 1 {
		t.Fatalf("path cmax = %d, want 1", res.CMax)
	}
}

func TestDecomposeCliquePlusTail(t *testing.T) {
	// K4 on {0..3} plus a tail 3-4-5.
	edges := []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 3},
		{U: 3, V: 4}, {U: 4, V: 5},
	}
	g := graph.FromEdges(edges)
	res := Decompose(g)
	want := []int32{3, 3, 3, 3, 1, 1}
	for v := range want {
		if res.Core[v] != want[v] {
			t.Fatalf("core = %v, want %v", res.Core, want)
		}
	}
	core3 := res.KCore(3)
	if core3.NumEdges() != 6 {
		t.Fatalf("3-core edges = %d, want 6", core3.NumEdges())
	}
}

func TestDecomposeMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		n := 3 + r.Intn(40)
		m := r.Intn(4 * n)
		var edges []graph.Edge
		for i := 0; i < m; i++ {
			edges = append(edges, graph.Edge{U: uint32(r.Intn(n)), V: uint32(r.Intn(n))})
		}
		g := graph.FromEdges(edges)
		fast := Decompose(g)
		slow := naiveCore(g)
		for v := range slow {
			if fast.Core[v] != slow[v] {
				t.Fatalf("trial %d vertex %d: fast=%d naive=%d", trial, v, fast.Core[v], slow[v])
			}
		}
	}
}

func TestKCorePropertyQuick(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%40) + 3
		m := int(mRaw % 160)
		r := rand.New(rand.NewSource(seed))
		var edges []graph.Edge
		for i := 0; i < m; i++ {
			edges = append(edges, graph.Edge{U: uint32(r.Intn(n)), V: uint32(r.Intn(n))})
		}
		g := graph.FromEdges(edges)
		res := Decompose(g)
		for k := int32(1); k <= res.CMax; k++ {
			if !VerifyKCore(g, res.Core, k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestKCoreNesting(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	var edges []graph.Edge
	for i := 0; i < 400; i++ {
		edges = append(edges, graph.Edge{U: uint32(r.Intn(60)), V: uint32(r.Intn(60))})
	}
	g := graph.FromEdges(edges)
	res := Decompose(g)
	prev := -1
	for k := int32(1); k <= res.CMax; k++ {
		c := res.KCore(k)
		if prev >= 0 && c.NumEdges() > prev {
			t.Fatalf("k-core grew from k=%d to k=%d", k-1, k)
		}
		prev = c.NumEdges()
	}
	if res.KCore(res.CMax).NumEdges() == 0 {
		t.Fatal("cmax-core is empty")
	}
	if res.KCore(res.CMax+1).NumEdges() != 0 {
		t.Fatal("(cmax+1)-core should be empty")
	}
}
