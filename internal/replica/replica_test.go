package replica

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/server"
)

// newPrimary builds a durable primary with one ready graph "g" and
// serves it over HTTP.
func newPrimary(t *testing.T) (*server.Server, *httptest.Server) {
	t.Helper()
	p := server.New(server.Options{
		Workers: 1, Logf: t.Logf, DataDir: t.TempDir(), Metrics: obs.NewRegistry(),
	})
	p.Build("g", gen.PaperExample(), "inline")
	ts := httptest.NewServer(p.Handler())
	t.Cleanup(ts.Close)
	return p, ts
}

// newFollower wires a fresh durable server to a Follower of primaryURL
// with test-speed intervals and starts Run.
func newFollower(t *testing.T, primaryURL, dataDir string) (*server.Server, *Follower, context.CancelFunc) {
	t.Helper()
	fsrv := server.New(server.Options{
		Workers: 1, Logf: t.Logf, DataDir: dataDir, Metrics: obs.NewRegistry(),
		Follow: primaryURL,
	})
	if err := fsrv.Recover(); err != nil {
		t.Fatal(err)
	}
	f, err := New(Config{
		Primary: primaryURL,
		Server:  fsrv,
		Refresh: 50 * time.Millisecond,
		Backoff: 10 * time.Millisecond,
		Logf:    t.Logf,
		Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = f.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("follower Run did not exit")
		}
	})
	return fsrv, f, cancel
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// atVersion reports whether s serves name at exactly version v.
func atVersion(s *server.Server, name string, v uint64) bool {
	e, ok := s.Lookup(name)
	return ok && e.State == server.StateReady && e.Index != nil && e.Version == v
}

// phiMap flattens an entry's decomposition to (edge -> truss number),
// keyed by endpoints so differing internal edge IDs cannot mask or fake
// a divergence.
func phiMap(t *testing.T, s *server.Server, name string) map[graph.Edge]int32 {
	t.Helper()
	e, ok := s.Lookup(name)
	if !ok || e.Index == nil {
		t.Fatalf("graph %q not resident", name)
	}
	out := make(map[graph.Edge]int32, e.Index.NumEdges())
	for id, edge := range e.Index.Graph().Edges() {
		out[edge] = e.Index.EdgeTruss(int32(id))
	}
	return out
}

// samePhi asserts two servers serve identical decompositions of name.
func samePhi(t *testing.T, a, b *server.Server, name string) {
	t.Helper()
	pa, pb := phiMap(t, a, name), phiMap(t, b, name)
	if len(pa) != len(pb) {
		t.Fatalf("graph %q: %d edges on primary, %d on follower", name, len(pa), len(pb))
	}
	for e, phi := range pa {
		if pb[e] != phi {
			t.Fatalf("graph %q edge %v: primary phi %d, follower %d", name, e, phi, pb[e])
		}
	}
}

// TestFollowerHydratesTailsAndServes is the end-to-end happy path:
// discover + hydrate from the manifest, apply live mutations through the
// WAL tail at the primary's versions, answer identically, report ready,
// and drop graphs the primary removes.
func TestFollowerHydratesTailsAndServes(t *testing.T) {
	p, ts := newPrimary(t)
	fsrv, f, _ := newFollower(t, ts.URL, t.TempDir())

	if ok, pending := f.Probe(); ok && len(pending) == 0 {
		// Probe may legitimately already be ready if the first sync won
		// the race; only a not-ready probe must explain itself.
		t.Log("follower ready before explicit wait (fast first sync)")
	}

	waitFor(t, 15*time.Second, "initial hydration", func() bool { return atVersion(fsrv, "g", 1) })
	samePhi(t, p, fsrv, "g")
	if f.m.hydrations.Value() != 1 {
		t.Fatalf("hydrations = %d, want 1", f.m.hydrations.Value())
	}

	// Live mutations flow through the tail, version by version.
	ctx := context.Background()
	if _, _, err := p.Mutate(ctx, "g", []graph.Edge{{U: 90, V: 91}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Mutate(ctx, "g", []graph.Edge{{U: 91, V: 92}, {U: 90, V: 92}}, nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "tail to version 3", func() bool { return atVersion(fsrv, "g", 3) })
	samePhi(t, p, fsrv, "g")
	if f.m.hydrations.Value() != 1 {
		t.Fatalf("hydrations after tailing = %d, want still 1 (records, not re-downloads)", f.m.hydrations.Value())
	}
	if f.m.records.Value() != 2 {
		t.Fatalf("records applied = %d, want 2", f.m.records.Value())
	}
	waitFor(t, 15*time.Second, "ready probe", func() bool { ok, _ := f.Probe(); return ok })

	// A graph the primary drops disappears from the follower too.
	p.Remove("g")
	waitFor(t, 15*time.Second, "removal to propagate", func() bool {
		_, ok := fsrv.Lookup("g")
		return !ok
	})
}

// TestFollowerRestartResumes: a follower restarted on its own data dir
// recovers locally and re-tails from its recovered version — zero
// re-hydrations — because every applied record went through its own WAL.
func TestFollowerRestartResumes(t *testing.T) {
	p, ts := newPrimary(t)
	ctx := context.Background()
	if _, _, err := p.Mutate(ctx, "g", []graph.Edge{{U: 90, V: 91}}, nil); err != nil {
		t.Fatal(err)
	}

	fdir := t.TempDir()
	fsrv1, f1, cancel1 := newFollower(t, ts.URL, fdir)
	waitFor(t, 15*time.Second, "first life to catch up", func() bool { return atVersion(fsrv1, "g", 2) })
	if f1.m.hydrations.Value() != 1 {
		t.Fatalf("first life hydrations = %d, want 1", f1.m.hydrations.Value())
	}
	cancel1()
	if err := fsrv1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// The primary moves on while the follower is down.
	if _, _, err := p.Mutate(ctx, "g", []graph.Edge{{U: 91, V: 92}}, nil); err != nil {
		t.Fatal(err)
	}

	// Second life on the same data dir: recovery puts the graph back at
	// version 2 before the Follower even connects, and the tail bridges
	// 2 -> 3 with records alone.
	fsrv2, f2, _ := newFollower(t, ts.URL, fdir)
	if !atVersion(fsrv2, "g", 2) {
		e, ok := fsrv2.Lookup("g")
		t.Fatalf("recovered entry = %+v (ok=%v), want ready at version 2", e, ok)
	}
	waitFor(t, 15*time.Second, "second life to catch up", func() bool { return atVersion(fsrv2, "g", 3) })
	samePhi(t, p, fsrv2, "g")
	if f2.m.hydrations.Value() != 0 {
		t.Fatalf("second life hydrations = %d, want 0 (resume, not re-download)", f2.m.hydrations.Value())
	}
}

// TestFollowerResyncsAfterRebuild: a rebuild on the primary is a lineage
// break — the tail gets an explicit resync and the follower re-hydrates
// into the new epoch instead of patching across it.
func TestFollowerResyncsAfterRebuild(t *testing.T) {
	p, ts := newPrimary(t)
	fsrv, f, _ := newFollower(t, ts.URL, t.TempDir())
	waitFor(t, 15*time.Second, "initial hydration", func() bool { return atVersion(fsrv, "g", 1) })

	// Replace the graph wholesale: new epoch, successor version, and a
	// decomposition the old lineage's WAL cannot reach.
	p.Build("g", gen.WithPlantedCliques(gen.ErdosRenyi(30, 90, 3), []int{5}, 3), "inline")
	pe, _ := p.Lookup("g")
	waitFor(t, 15*time.Second, "resync to new lineage", func() bool { return atVersion(fsrv, "g", pe.Version) })
	samePhi(t, p, fsrv, "g")
	if f.m.resyncs.Value() < 1 {
		t.Fatalf("resyncs = %d, want >= 1", f.m.resyncs.Value())
	}
	if f.m.hydrations.Value() < 2 {
		t.Fatalf("hydrations = %d, want >= 2 (initial + post-rebuild)", f.m.hydrations.Value())
	}
}

// TestProbeLagAccounting: Probe gates readiness on the manifest having
// been seen and on per-graph lag against LagMax.
func TestProbeLagAccounting(t *testing.T) {
	f, err := New(Config{
		Primary: "http://127.0.0.1:1",
		Server:  server.New(server.Options{Workers: 1, Metrics: obs.NewRegistry(), DataDir: t.TempDir()}),
		Metrics: obs.NewRegistry(),
		LagMax:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok, pending := f.Probe(); ok || len(pending) == 0 {
		t.Fatalf("probe before any manifest: ok=%v pending=%v, want not ready", ok, pending)
	}
	f.mu.Lock()
	f.manifestOK = true
	f.graphs["g"] = &graphState{applied: 5, target: 9}
	f.mu.Unlock()
	if ok, pending := f.Probe(); ok || len(pending) != 1 {
		t.Fatalf("probe with lag 4 > 1: ok=%v pending=%v, want one pending line", ok, pending)
	}
	f.mu.Lock()
	f.graphs["g"].applied = 8 // lag 1 == LagMax: within bound
	f.mu.Unlock()
	if ok, pending := f.Probe(); !ok {
		t.Fatalf("probe with lag at the bound: pending=%v, want ready", pending)
	}
}

// TestNewValidatesConfig: misconfiguration fails at New, not mid-Run.
func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{Primary: "http://x"}); err == nil {
		t.Error("New without a Server accepted")
	}
	srv := server.New(server.Options{Workers: 1, Metrics: obs.NewRegistry()})
	for _, bad := range []string{"", "ftp://host", "://nope"} {
		if _, err := New(Config{Primary: bad, Server: srv}); err == nil {
			t.Errorf("New(%q) accepted", bad)
		}
	}
	if _, err := New(Config{Primary: "http://localhost:9", Server: srv}); err != nil {
		t.Errorf("New rejected a valid config: %v", err)
	}
}
