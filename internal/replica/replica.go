// Package replica turns a server.Server into a read replica of a remote
// primary. A Follower discovers the primary's graphs from its
// replication manifest, hydrates each one by downloading and
// mmap-opening its indexfile (a file copy, not a replay), then holds a
// long-poll WAL tail open and applies committed mutation records
// through the server's ApplyReplicated — the same dynamic.Update +
// Patch path a local flush takes, at the same versions, so a follower's
// answers at version V are bit-identical to the primary's at V.
//
// The protocol is resumable from both ends: records are idempotent by
// version (redelivery after a reconnect is skipped, not double-applied)
// and the follower persists its own WAL, so a restart recovers locally
// and re-tails from its recovered version instead of re-downloading
// anything. When contiguity genuinely breaks — the primary rebuilt the
// graph, compacted past the follower's position, or was restored from
// older state — the primary sends an explicit resync line and the
// follower re-hydrates from the current snapshot.
package replica

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/server"
)

// Config configures a Follower.
type Config struct {
	// Primary is the primary's base URL (e.g. "http://primary:8080").
	Primary string
	// Server is the local registry the follower hydrates into and
	// applies records against. It must have a data dir (Options.DataDir):
	// the follower's resumability rests on its own durable WAL.
	Server *server.Server
	// LagMax is how many versions a graph may trail its primary target
	// before Probe reports not ready (0 = must be exactly caught up).
	LagMax uint64
	// Refresh is the manifest poll interval (0 = 2s). The manifest is
	// how new and removed graphs are discovered; version advancement
	// flows through the WAL tails, not the poll.
	Refresh time.Duration
	// Backoff is the reconnect backoff floor after a dropped tail or a
	// failed hydration (0 = 250ms, doubling to 5s).
	Backoff time.Duration
	// Logf, when non-nil, receives one line per lifecycle event.
	Logf func(format string, args ...any)
	// Metrics selects the registry for the follower's metric families
	// (nil = obs.Default()).
	Metrics *obs.Registry
	// HTTPClient overrides the transport (default: no overall timeout —
	// WAL tails are long-lived by design).
	HTTPClient *http.Client
}

// graphState tracks one replicated graph. applied/target are guarded by
// the Follower's mu; the tailer goroutine owns the stream itself.
type graphState struct {
	cancel  context.CancelFunc
	applied uint64 // last version applied locally
	target  uint64 // latest version the primary has advertised
	done    chan struct{}
}

// Follower replicates a primary's graphs into a local server. Create
// one with New, drive it with Run, and gate the local /readyz on Probe.
type Follower struct {
	cfg  Config
	base *url.URL
	hc   *http.Client
	m    *metrics

	mu         sync.Mutex
	graphs     map[string]*graphState
	manifestOK bool // at least one manifest fetch has succeeded
}

// metrics is the follower-side instrument panel.
type metrics struct {
	reg            *obs.Registry
	hydrations     *obs.Counter
	hydrationBytes *obs.Counter
	hydrationDur   *obs.Histogram
	reconnects     *obs.Counter
	records        *obs.Counter
	resyncs        *obs.Counter
}

func newMetrics(reg *obs.Registry) *metrics {
	if reg == nil {
		reg = obs.Default()
	}
	return &metrics{
		reg: reg,
		hydrations: reg.Counter("truss_replica_hydrations_total",
			"Snapshot hydrations completed (initial syncs plus resyncs)."),
		hydrationBytes: reg.Counter("truss_replica_hydration_bytes_total",
			"Snapshot bytes downloaded from the primary."),
		hydrationDur: reg.Histogram("truss_replica_hydration_seconds",
			"Snapshot download + mmap-open duration.", nil),
		reconnects: reg.Counter("truss_replica_tail_reconnects_total",
			"WAL tail streams re-established after a disconnect."),
		records: reg.Counter("truss_replica_records_applied_total",
			"Replicated mutation records applied locally."),
		resyncs: reg.Counter("truss_replica_resyncs_total",
			"Full re-hydrations forced by a primary resync signal or version gap."),
	}
}

// lag returns the per-graph lag gauge; applied the per-graph applied
// version. Cardinality is bounded by the primary's registry, which the
// operator controls.
func (m *metrics) lag(name string) *obs.Gauge {
	return m.reg.Gauge("truss_replica_lag_versions",
		"Versions this replica trails the primary, per graph.", "graph", name)
}

func (m *metrics) applied(name string) *obs.Gauge {
	return m.reg.Gauge("truss_replica_applied_version",
		"Last primary version applied locally, per graph.", "graph", name)
}

// New validates cfg and returns a Follower (no I/O yet; Run starts it).
func New(cfg Config) (*Follower, error) {
	if cfg.Server == nil {
		return nil, errors.New("replica: Config.Server is required")
	}
	u, err := url.Parse(cfg.Primary)
	if err != nil {
		return nil, fmt.Errorf("replica: parsing primary URL: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("replica: primary URL %q must be http or https", cfg.Primary)
	}
	u.Path = strings.TrimSuffix(u.Path, "/")
	if cfg.Refresh <= 0 {
		cfg.Refresh = 2 * time.Second
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 250 * time.Millisecond
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{} // no overall timeout: WAL tails are long-lived
	}
	return &Follower{
		cfg:    cfg,
		base:   u,
		hc:     hc,
		m:      newMetrics(cfg.Metrics),
		graphs: map[string]*graphState{},
	}, nil
}

func (f *Follower) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

// Run drives the follower until ctx is done: an immediate manifest sync,
// then one per refresh interval, with a per-graph tailer goroutine
// holding each WAL tail open in between. It returns ctx.Err() after
// every tailer has exited.
func (f *Follower) Run(ctx context.Context) error {
	t := time.NewTicker(f.cfg.Refresh)
	defer t.Stop()
	for {
		f.syncManifest(ctx)
		select {
		case <-ctx.Done():
			f.mu.Lock()
			states := make([]*graphState, 0, len(f.graphs))
			for _, st := range f.graphs {
				st.cancel()
				states = append(states, st)
			}
			f.mu.Unlock()
			for _, st := range states {
				<-st.done
			}
			return ctx.Err()
		case <-t.C:
		}
	}
}

// manifest mirrors the primary's /v1/replication/manifest body.
type manifest struct {
	Graphs []server.ReplGraph `json:"graphs"`
}

// syncManifest reconciles the local graph set against the primary's:
// new graphs get a tailer (which hydrates first), graphs gone from the
// primary are removed locally, and every present graph's target version
// is refreshed so lag stays honest even if its tail is wedged.
func (f *Follower) syncManifest(ctx context.Context) {
	var man manifest
	if err := f.getJSON(ctx, &man, "v1", "replication", "manifest"); err != nil {
		if ctx.Err() == nil {
			f.logf("replica: manifest fetch failed: %v", err)
		}
		return
	}
	seen := map[string]bool{}
	f.mu.Lock()
	f.manifestOK = true
	for _, rg := range man.Graphs {
		seen[rg.Name] = true
		st, ok := f.graphs[rg.Name]
		if !ok {
			tctx, cancel := context.WithCancel(ctx)
			st = &graphState{cancel: cancel, target: rg.Version, done: make(chan struct{})}
			f.graphs[rg.Name] = st
			go f.tail(tctx, rg.Name, st)
		} else if rg.Version > st.target {
			st.target = rg.Version
			f.m.lag(rg.Name).Set(int64(st.target - min(st.applied, st.target)))
		}
	}
	var dropped []string
	for name, st := range f.graphs {
		if !seen[name] {
			st.cancel()
			delete(f.graphs, name)
			dropped = append(dropped, name)
		}
	}
	f.mu.Unlock()
	for _, name := range dropped {
		f.cfg.Server.Remove(name)
		f.logf("replica: graph %q removed (gone from primary)", name)
	}
}

// note records an applied or advertised version for name and keeps the
// lag gauge current.
func (f *Follower) note(name string, st *graphState, applied, target uint64) {
	f.mu.Lock()
	if applied > st.applied {
		st.applied = applied
	}
	if target > st.target {
		st.target = target
	}
	appliedNow, targetNow := st.applied, st.target
	f.mu.Unlock()
	lag := uint64(0)
	if targetNow > appliedNow {
		lag = targetNow - appliedNow
	}
	f.m.applied(name).Set(int64(appliedNow))
	f.m.lag(name).Set(int64(lag))
}

// errResync tells the tailer contiguity broke and only a fresh snapshot
// recovers it; errGone tells it the graph no longer exists upstream.
var (
	errResync = errors.New("replica: primary signaled resync")
	errGone   = errors.New("replica: graph gone on primary")
)

// tail is the per-graph replication loop: ensure the graph is resident
// (hydrating if not), stream its WAL, and on any break either reconnect
// (transient), re-hydrate (resync/gap), or exit (removed/ctx done).
func (f *Follower) tail(ctx context.Context, name string, st *graphState) {
	defer close(st.done)
	backoff := f.cfg.Backoff
	for ctx.Err() == nil {
		e, resident := f.cfg.Server.Lookup(name)
		if !resident || e.Index == nil {
			if err := f.hydrate(ctx, name, st); err != nil {
				if ctx.Err() != nil {
					return
				}
				f.logf("replica: graph %q hydration failed: %v", name, err)
				if sleepCtx(ctx, backoff) != nil {
					return
				}
				backoff = nextBackoff(backoff)
			} else {
				backoff = f.cfg.Backoff
			}
			continue
		}
		// A recovered graph is already serving at its restored version:
		// account for it before the first record arrives, so a restarted
		// caught-up follower reports ready immediately.
		f.note(name, st, e.Version, 0)
		err := f.streamWAL(ctx, name, st, e.Version)
		switch {
		case ctx.Err() != nil:
			return
		case errors.Is(err, errGone):
			f.cfg.Server.Remove(name)
			f.logf("replica: graph %q removed (primary reports gone)", name)
			// Leave the loop to the manifest sync: it deletes our state
			// entry (or restarts us if the name reappears).
			if sleepCtx(ctx, f.cfg.Refresh) != nil {
				return
			}
		case errors.Is(err, errResync):
			f.m.resyncs.Inc()
			f.logf("replica: graph %q resyncing (lineage break)", name)
			if err := f.hydrate(ctx, name, st); err != nil && ctx.Err() == nil {
				f.logf("replica: graph %q re-hydration failed: %v", name, err)
				if sleepCtx(ctx, backoff) != nil {
					return
				}
				backoff = nextBackoff(backoff)
			} else {
				backoff = f.cfg.Backoff
			}
		default:
			f.m.reconnects.Inc()
			if err != nil {
				f.logf("replica: graph %q tail dropped: %v", name, err)
			}
			if sleepCtx(ctx, backoff) != nil {
				return
			}
			backoff = nextBackoff(backoff)
		}
	}
}

// hydrate downloads the primary's current snapshot of name and installs
// it locally via Server.HydrateSnapshot (atomic write, full checksum
// verify, mmap-open).
func (f *Follower) hydrate(ctx context.Context, name string, st *graphState) error {
	start := time.Now()
	resp, err := f.get(ctx, "", "v1", "replication", "graphs", name, "indexfile")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return errGone
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replica: snapshot download: HTTP %d", resp.StatusCode)
	}
	epoch, _ := strconv.Atoi(resp.Header.Get("X-Truss-Epoch"))
	e, n, err := f.cfg.Server.HydrateSnapshot(name, epoch, resp.Body)
	f.m.hydrationBytes.Add(n)
	if err != nil {
		return err
	}
	f.m.hydrations.Inc()
	f.m.hydrationDur.ObserveSince(start)
	f.note(name, st, e.Version, e.Version)
	f.logf("replica: graph %q hydrated at version %d (%d bytes, %s)",
		name, e.Version, n, time.Since(start).Round(time.Millisecond))
	return nil
}

// streamWAL holds one WAL tail open from version from, applying records
// as they arrive. It returns nil on a clean disconnect (reconnect),
// errResync/errGone for the caller to act on, or a transport error.
func (f *Follower) streamWAL(ctx context.Context, name string, st *graphState, from uint64) error {
	resp, err := f.get(ctx, "from="+strconv.FormatUint(from, 10), "v1", "graphs", name, "wal")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return errGone
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replica: WAL tail: HTTP %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec server.WALLine
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("replica: bad WAL line: %w", err)
		}
		switch {
		case rec.Error != "":
			if strings.Contains(rec.Error, "removed") {
				return errGone
			}
			return fmt.Errorf("replica: primary reports: %s", rec.Error)
		case rec.Resync:
			return errResync
		case rec.HB:
			f.note(name, st, 0, rec.Version)
		default:
			err := f.cfg.Server.ApplyReplicated(ctx, name, rec.Version, toEdges(rec.Adds), toEdges(rec.Dels))
			switch {
			case errors.Is(err, server.ErrReplicaGap):
				return errResync
			case errors.Is(err, server.ErrNoGraph), errors.Is(err, server.ErrNotReady):
				// Removed or replaced locally mid-stream; restart the loop
				// so the residency check decides what to do.
				return nil
			case err != nil:
				return err
			}
			f.m.records.Inc()
			f.note(name, st, rec.Version, rec.Version)
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return nil
}

// Probe is the readiness gate for Server.SetReadyProbe: ready once the
// manifest has been fetched at least once and every replicated graph is
// within LagMax versions of its primary target. A primary outage after
// the first sync does not drop readiness — the replica keeps serving
// the last state it has, which is the point of having replicas.
func (f *Follower) Probe() (bool, []string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.manifestOK {
		return false, []string{"replica: primary manifest not yet fetched"}
	}
	var pending []string
	for name, st := range f.graphs {
		lag := uint64(0)
		if st.target > st.applied {
			lag = st.target - st.applied
		}
		if lag > f.cfg.LagMax {
			pending = append(pending, fmt.Sprintf("replica %q lag %d > %d", name, lag, f.cfg.LagMax))
		}
	}
	sort.Strings(pending)
	return len(pending) == 0, pending
}

// get issues one GET against the primary.
func (f *Follower) get(ctx context.Context, query string, segments ...string) (*http.Response, error) {
	u := f.base.JoinPath(segments...)
	u.RawQuery = query
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return nil, err
	}
	return f.hc.Do(req)
}

// getJSON issues a GET and decodes a 200 JSON body into out.
func (f *Follower) getJSON(ctx context.Context, out any, segments ...string) error {
	resp, err := f.get(ctx, "", segments...)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replica: GET %s: HTTP %d", strings.Join(segments, "/"), resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// toEdges converts wire pairs to canonical graph edges.
func toEdges(pairs [][2]uint32) []graph.Edge {
	if len(pairs) == 0 {
		return nil
	}
	out := make([]graph.Edge, len(pairs))
	for i, p := range pairs {
		out[i] = graph.Edge{U: p[0], V: p[1]}
	}
	return out
}

// sleepCtx waits for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// nextBackoff doubles a delay up to a 5s ceiling.
func nextBackoff(d time.Duration) time.Duration {
	if d *= 2; d > 5*time.Second {
		return 5 * time.Second
	}
	return d
}
