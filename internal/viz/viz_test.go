package viz

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestWriteDOTPaperExample(t *testing.T) {
	g := gen.PaperExample()
	r := core.Decompose(g)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, r, "fig2"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "graph \"fig2\" {") {
		t.Fatalf("bad header: %q", out[:40])
	}
	if !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Fatal("unterminated graph")
	}
	// One edge line per edge, with the class recorded in the tooltip.
	if got := strings.Count(out, " -- "); got != g.NumEdges() {
		t.Fatalf("edge lines = %d, want %d", got, g.NumEdges())
	}
	for _, want := range []string{`tooltip="phi=2"`, `tooltip="phi=3"`, `tooltip="phi=4"`, `tooltip="phi=5"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %s", want)
		}
	}
	// The innermost class must be darkest; the 2-class lightest.
	if !strings.Contains(out, palette[len(palette)-1]) || !strings.Contains(out, palette[0]) {
		t.Fatal("palette extremes unused")
	}
}

func TestWriteDOTTrivial(t *testing.T) {
	r := core.Decompose(graph.FromEdges([]graph.Edge{{U: 0, V: 1}}))
	var buf bytes.Buffer
	if err := WriteDOT(&buf, r, "one"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0 -- 1") {
		t.Fatal("missing edge")
	}
}

func TestClassColorBounds(t *testing.T) {
	for kmax := int32(2); kmax <= 40; kmax++ {
		for k := int32(2); k <= kmax; k++ {
			c := classColor(k, kmax)
			found := false
			for _, p := range palette {
				if p == c {
					found = true
				}
			}
			if !found {
				t.Fatalf("classColor(%d,%d) = %q not in palette", k, kmax, c)
			}
		}
		if classColor(kmax, kmax) != palette[len(palette)-1] {
			t.Fatalf("kmax class should be darkest (kmax=%d)", kmax)
		}
		if kmax > 2 && classColor(2, kmax) != palette[0] {
			t.Fatalf("2-class should be lightest (kmax=%d)", kmax)
		}
	}
}
