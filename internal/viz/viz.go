// Package viz renders truss decompositions for the visualization and
// fingerprinting applications the paper's introduction cites: Graphviz DOT
// output with edges colored by k-class, so the truss hierarchy is visible
// at a glance (as in the paper's Figure 2 shading).
package viz

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/core"
)

// palette maps class ranks to Graphviz colors, innermost class darkest.
var palette = []string{
	"#bdbdbd", // lightest: lowest class
	"#9ecae1",
	"#6baed6",
	"#3182bd",
	"#08519c",
	"#08306b", // darkest: kmax
}

// classColor picks a palette color for class k within [2, kmax].
func classColor(k, kmax int32) string {
	if kmax <= 2 {
		return palette[len(palette)-1]
	}
	idx := int(int64(k-2) * int64(len(palette)-1) / int64(kmax-2))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(palette) {
		idx = len(palette) - 1
	}
	return palette[idx]
}

// WriteDOT renders r as an undirected Graphviz graph: edge color and pen
// width encode the truss number, and each edge carries a tooltip with its
// exact class. Vertices incident only to 2-class edges are faded.
func WriteDOT(w io.Writer, r *core.Result, name string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "graph %q {\n", name)
	fmt.Fprintf(bw, "  layout=neato;\n  overlap=false;\n  node [shape=circle, fontsize=10, width=0.25, fixedsize=true];\n")

	g := r.G
	// Vertex styling: strength = max truss number among incident edges.
	strength := make([]int32, g.NumVertices())
	for id, p := range r.Phi {
		e := g.Edge(int32(id))
		if p > strength[e.U] {
			strength[e.U] = p
		}
		if p > strength[e.V] {
			strength[e.V] = p
		}
	}
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(uint32(v)) == 0 {
			continue
		}
		style := ""
		if strength[v] <= 2 {
			style = ", color=\"#cccccc\", fontcolor=\"#999999\""
		}
		fmt.Fprintf(bw, "  %d [label=\"%d\"%s];\n", v, v, style)
	}
	for id, p := range r.Phi {
		e := g.Edge(int32(id))
		width := 1.0 + 0.5*float64(p-2)
		fmt.Fprintf(bw, "  %d -- %d [color=%q, penwidth=%.1f, tooltip=\"phi=%d\"];\n",
			e.U, e.V, classColor(p, r.KMax), width, p)
	}
	fmt.Fprintf(bw, "}\n")
	return bw.Flush()
}
