package triangle

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func benchGraph(seed int64) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	const n = 4000
	for i := 0; i < 40000; i++ {
		edges = append(edges, graph.Edge{U: uint32(r.Intn(n)), V: uint32(r.Intn(n))})
	}
	// A few dense pockets for triangle mass.
	for c := 0; c < 4; c++ {
		base := uint32(c * 50)
		for i := uint32(0); i < 25; i++ {
			for j := i + 1; j < 25; j++ {
				edges = append(edges, graph.Edge{U: base + i, V: base + j})
			}
		}
	}
	return graph.FromEdges(edges)
}

func BenchmarkSupports(b *testing.B) {
	g := benchGraph(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s := Supports(g); len(s) == 0 {
			b.Fatal("no supports")
		}
	}
}

func BenchmarkSupportsNaive(b *testing.B) {
	g := benchGraph(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s := SupportsNaive(g); len(s) == 0 {
			b.Fatal("no supports")
		}
	}
}

func BenchmarkSupportsParallel(b *testing.B) {
	g := benchGraph(1)
	for _, w := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if s := SupportsParallel(g, w); len(s) == 0 {
					b.Fatal("no supports")
				}
			}
		})
	}
}

func BenchmarkCount(b *testing.B) {
	g := benchGraph(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Count(g) == 0 {
			b.Fatal("no triangles")
		}
	}
}
