package triangle

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/graph"
)

// kernelTestGraph builds a graph with a wide degree spectrum: a hub wired
// to most vertices, a mid-degree clique, and random filler.
func kernelTestGraph(r *rand.Rand, n int) *graph.Graph {
	var edges []graph.Edge
	for v := uint32(1); v < uint32(n); v++ {
		if r.Intn(4) > 0 {
			edges = append(edges, graph.Edge{U: 0, V: v})
		}
	}
	for i := uint32(10); i < 18; i++ {
		for j := i + 1; j < 18; j++ {
			edges = append(edges, graph.Edge{U: i, V: j})
		}
	}
	for i := 0; i < 5*n; i++ {
		edges = append(edges, graph.Edge{U: uint32(r.Intn(n)), V: uint32(r.Intn(n))})
	}
	return graph.FromEdges(edges)
}

func TestKernelLookupMatchesEdgeID(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	g := kernelTestGraph(r, 200)
	k := NewKernel(g)
	// Every present edge, through both endpoint orders.
	for id, e := range g.Edges() {
		for _, pair := range [][2]uint32{{e.U, e.V}, {e.V, e.U}} {
			got, ok := k.Lookup(pair[0], pair[1])
			if !ok || got != int32(id) {
				t.Fatalf("Lookup(%d,%d) = %d,%v want %d", pair[0], pair[1], got, ok, id)
			}
		}
	}
	// Absent pairs agree with the graph.
	nv := g.NumVertices()
	for i := 0; i < 5000; i++ {
		u, v := uint32(r.Intn(nv)), uint32(r.Intn(nv))
		wantID, want := g.EdgeID(u, v)
		gotID, got := k.Lookup(u, v)
		if want != got || (want && wantID != gotID) {
			t.Fatalf("Lookup(%d,%d) = %d,%v; EdgeID = %d,%v", u, v, gotID, got, wantID, want)
		}
	}
}

func TestKernelEmptyGraph(t *testing.T) {
	k := NewKernel(graph.NewBuilder(0).Build())
	if _, ok := k.Lookup(0, 1); ok {
		t.Fatal("lookup in empty kernel")
	}
}

// liveSet collects the triangles ForEachLive reports as unordered partner
// pairs, for cross-strategy comparison.
func liveSet(enum func(dead func(int32) bool, fn func(euw, evw int32)), dead func(int32) bool) map[string]int {
	out := map[string]int{}
	enum(dead, func(a, b int32) {
		if a > b {
			a, b = b, a
		}
		out[fmt.Sprintf("%d-%d", a, b)]++
	})
	return out
}

// TestKernelStrategiesEquivalent forces both strategies over every edge of
// the same graph — with and without a dead set — and demands identical
// triangle sets, multiplicity included.
func TestKernelStrategiesEquivalent(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	g := kernelTestGraph(r, 150)
	k := NewKernel(g)
	m := g.NumEdges()

	noDead := func(int32) bool { return false }
	someDead := func(e int32) bool { return e%3 == 0 }

	for _, dead := range []func(int32) bool{noDead, someDead} {
		for id, e := range g.Edges() {
			merge := liveSet(func(d func(int32) bool, fn func(a, b int32)) {
				k.forEachLiveMerge(e.U, e.V, d, fn)
			}, dead)
			probe := liveSet(func(d func(int32) bool, fn func(a, b int32)) {
				k.forEachLiveProbe(e.U, e.V, d, fn)
			}, dead)
			// The probe path iterates u's adjacency, the merge path both;
			// swap sides and the sets must still agree.
			probeSwapped := liveSet(func(d func(int32) bool, fn func(a, b int32)) {
				k.forEachLiveProbe(e.V, e.U, d, fn)
			}, dead)
			if len(merge) != len(probe) || len(merge) != len(probeSwapped) {
				t.Fatalf("edge %d %v: merge %d probe %d swapped %d triangles",
					id, e, len(merge), len(probe), len(probeSwapped))
			}
			for key, cnt := range merge {
				if probe[key] != cnt || probeSwapped[key] != cnt {
					t.Fatalf("edge %d %v: triangle %s seen %d/%d/%d times",
						id, e, key, cnt, probe[key], probeSwapped[key])
				}
			}
		}
		_ = m
	}
}

// TestKernelDispatchBoundary pins the ProbeSkew dispatch rule: degrees
// straddling the threshold choose the expected strategy.
func TestKernelDispatchBoundary(t *testing.T) {
	// Build controlled degrees: vertex A with degree ProbeSkew*dB (probe
	// regime, boundary inclusive), vertex C with one less (merge regime).
	const dB = 3
	var edges []graph.Edge
	next := uint32(100)
	addFan := func(center uint32, deg int) {
		for i := 0; i < deg; i++ {
			edges = append(edges, graph.Edge{U: center, V: next})
			next++
		}
	}
	// b--a where deg(a) = ProbeSkew*dB including the (a,b) edge itself.
	a, b := uint32(0), uint32(1)
	edges = append(edges, graph.Edge{U: a, V: b})
	addFan(a, ProbeSkew*dB-1)
	addFan(b, dB-1)
	// d--c where deg(c) = ProbeSkew*dB - 1.
	c, d := uint32(2), uint32(3)
	edges = append(edges, graph.Edge{U: c, V: d})
	addFan(c, ProbeSkew*dB-2)
	addFan(d, dB-1)
	g := graph.FromEdges(edges)
	if g.Degree(a) != ProbeSkew*dB || g.Degree(b) != dB || g.Degree(c) != ProbeSkew*dB-1 {
		t.Fatalf("fan construction off: deg(a)=%d deg(b)=%d deg(c)=%d",
			g.Degree(a), g.Degree(b), g.Degree(c))
	}

	k := NewKernel(g)
	none := func(int32) bool { return false }
	k.ForEachLive(a, b, none, func(int32, int32) {})
	if mg, pr := k.Dispatches(); mg != 0 || pr != 1 {
		t.Fatalf("skew exactly ProbeSkew: merges %d probes %d, want probe", mg, pr)
	}
	k.ForEachLive(c, d, none, func(int32, int32) {})
	if mg, pr := k.Dispatches(); mg != 1 || pr != 1 {
		t.Fatalf("skew below ProbeSkew: merges %d probes %d, want merge", mg, pr)
	}
	// Dispatch is symmetric in argument order.
	k.ForEachLive(b, a, none, func(int32, int32) {})
	if mg, pr := k.Dispatches(); mg != 1 || pr != 2 {
		t.Fatalf("swapped args changed dispatch: merges %d probes %d", mg, pr)
	}
}

// TestKernelAgainstForEachOf checks the adaptive path end to end against
// the established per-edge enumerator on random graphs.
func TestKernelAgainstForEachOf(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for trial := 0; trial < 10; trial++ {
		n := 20 + r.Intn(80)
		var edges []graph.Edge
		for i := 0; i < 6*n; i++ {
			edges = append(edges, graph.Edge{U: uint32(r.Intn(n)), V: uint32(r.Intn(n))})
		}
		g := graph.FromEdges(edges)
		k := NewKernel(g)
		none := func(int32) bool { return false }
		for _, e := range g.Edges() {
			var want, got []string
			ForEachOf(g, e.U, e.V, func(a, b int32) {
				if a > b {
					a, b = b, a
				}
				want = append(want, fmt.Sprintf("%d-%d", a, b))
			})
			k.ForEachLive(e.U, e.V, none, func(a, b int32) {
				if a > b {
					a, b = b, a
				}
				got = append(got, fmt.Sprintf("%d-%d", a, b))
			})
			sort.Strings(want)
			sort.Strings(got)
			if len(want) != len(got) {
				t.Fatalf("trial %d edge %v: %d vs %d triangles", trial, e, len(want), len(got))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("trial %d edge %v: triangle %s vs %s", trial, e, want[i], got[i])
				}
			}
		}
	}
}
