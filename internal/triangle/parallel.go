package triangle

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// SupportsParallel computes sup(e) for every edge like Supports, fanning
// the oriented intersection loop across workers. Triangle discovery is
// embarrassingly parallel over source ranks; supports are accumulated with
// atomic adds. workers <= 0 selects GOMAXPROCS.
func SupportsParallel(g *graph.Graph, workers int) []int32 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m := g.NumEdges()
	if m == 0 {
		return make([]int32, 0)
	}
	if workers == 1 {
		return Supports(g)
	}
	return SupportsOriented(graph.BuildOrientedParallel(g, workers), workers)
}

// SupportsOriented computes sup(e) from a prebuilt degree-ordered view,
// so callers that already paid for the view (the PKT core) don't build it
// twice. workers <= 0 selects GOMAXPROCS; 1 runs serially without atomics.
func SupportsOriented(o *graph.Oriented, workers int) []int32 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := int32(len(o.Vert))
	m := len(o.EID)
	if m == 0 {
		return make([]int32, 0)
	}
	if workers == 1 {
		sup := make([]int32, m)
		forEachOrientedRange(o, 0, n, func(e1, e2, e3 int32) {
			sup[e1]++
			sup[e2]++
			sup[e3]++
		})
		return sup
	}

	asup := make([]atomic.Int32, m)
	var next atomic.Int64
	// Chunks follow ascending rank, so the heaviest out-lists (highest
	// ranks) land in the last chunks where the dynamic counter balances
	// them across whichever workers are free.
	const chunk = 256
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int32(next.Add(chunk)) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				forEachOrientedRange(o, lo, hi, func(e1, e2, e3 int32) {
					asup[e1].Add(1)
					asup[e2].Add(1)
					asup[e3].Add(1)
				})
			}
		}()
	}
	wg.Wait()
	sup := make([]int32, m)
	for i := range sup {
		sup[i] = asup[i].Load()
	}
	return sup
}
