package triangle

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// SupportsParallel computes sup(e) for every edge like Supports, fanning
// the oriented intersection loop across workers. Triangle discovery is
// embarrassingly parallel over source vertices; supports are accumulated
// with atomic adds. workers <= 0 selects GOMAXPROCS.
func SupportsParallel(g *graph.Graph, workers int) []int32 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := g.NumVertices()
	m := g.NumEdges()
	if n == 0 || m == 0 || workers == 1 {
		if m > 0 {
			return Supports(g)
		}
		return make([]int32, 0)
	}
	rank := Ranks(g)
	outOff, out := buildOriented(g, rank)

	asup := make([]atomic.Int32, m)
	var next atomic.Int64
	const chunk = 256
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(chunk)) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for u := lo; u < hi; u++ {
					du := out[outOff[u]:outOff[u+1]]
					for i := range du {
						v := du[i].w
						euv := du[i].eid
						dv := out[outOff[v]:outOff[v+1]]
						a, b := i+1, 0
						for a < len(du) && b < len(dv) {
							ra, rb := rank[du[a].w], rank[dv[b].w]
							switch {
							case ra < rb:
								a++
							case ra > rb:
								b++
							default:
								asup[euv].Add(1)
								asup[du[a].eid].Add(1)
								asup[dv[b].eid].Add(1)
								a++
								b++
							}
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	sup := make([]int32, m)
	for i := range sup {
		sup[i] = asup[i].Load()
	}
	return sup
}
