package triangle

import (
	"math/bits"
	"sync/atomic"

	"repro/internal/graph"
)

// ProbeSkew is the degree-skew threshold of the adaptive kernel: the
// hash-probe strategy is chosen for edge (u,v) when
// max(deg u, deg v) >= ProbeSkew * min(deg u, deg v). Below it the
// two-pointer merge-scan wins — a merge step costs a compare and two
// advances on cache-resident sorted arrays, while a probe costs a hash and
// a (possibly colliding) table read, so the probe only pays when it skips
// at least ~ProbeSkew merge steps per candidate.
const ProbeSkew = 8

// Kernel is the adaptive per-edge triangle enumerator of the PKT peeling
// core: for each frontier edge it lists the surviving triangles through
// that edge, choosing per edge between a merge-scan of the two endpoint
// adjacency lists and a hash probe of the closing edge through the
// lower-degree endpoint (the strategy mix Kabir & Madduri's PKT uses;
// degree skew decides which).
//
// The closing-edge lookups go through an open-addressing hash table over
// all m edges built once per decomposition — O(1) per probe instead of the
// O(log deg) binary search of Graph.EdgeID, which is the difference that
// makes hub-heavy graphs cheap to peel.
//
// The kernel is immutable after construction and safe for concurrent use;
// the dispatch counters are atomic.
type Kernel struct {
	g    *graph.Graph
	mask uint64
	keys []uint64 // packed edge key + 1; 0 marks an empty slot
	vals []int32  // edge ID parallel to keys
	// merges/probes count per-edge strategy dispatches (one increment per
	// enumerated edge, not per candidate — cheap enough to always keep).
	merges atomic.Int64
	probes atomic.Int64
}

// NewKernel indexes g's edges for closing-edge probes. Cost: O(m) time and
// ~16 bytes per edge at load factor <= 0.5.
func NewKernel(g *graph.Graph) *Kernel {
	m := g.NumEdges()
	size := 16
	if m > 0 {
		size = 1 << bits.Len(uint(2*m-1)) // next power of two >= 2m
		if size < 16 {
			size = 16
		}
	}
	k := &Kernel{
		g:    g,
		mask: uint64(size - 1),
		keys: make([]uint64, size),
		vals: make([]int32, size),
	}
	for id, e := range g.Edges() {
		k.insert(e.Key()+1, int32(id))
	}
	return k
}

// hashKey mixes a packed edge key (splitmix64 finalizer) so sequential
// vertex IDs spread across the table.
func hashKey(key uint64) uint64 {
	key ^= key >> 30
	key *= 0xbf58476d1ce4e5b9
	key ^= key >> 27
	key *= 0x94d049bb133111eb
	key ^= key >> 31
	return key
}

func (k *Kernel) insert(key uint64, val int32) {
	i := hashKey(key) & k.mask
	for k.keys[i] != 0 {
		i = (i + 1) & k.mask
	}
	k.keys[i] = key
	k.vals[i] = val
}

// Lookup returns the ID of edge (u,v) and whether it exists — Graph.EdgeID
// behind one hash probe.
func (k *Kernel) Lookup(u, v uint32) (int32, bool) {
	key := (graph.Edge{U: u, V: v}).Key() + 1
	i := hashKey(key) & k.mask
	for {
		cur := k.keys[i]
		if cur == key {
			return k.vals[i], true
		}
		if cur == 0 {
			return 0, false
		}
		i = (i + 1) & k.mask
	}
}

// Dispatches returns how many enumerated edges took the merge-scan and
// hash-probe strategies since construction.
func (k *Kernel) Dispatches() (merges, probes int64) {
	return k.merges.Load(), k.probes.Load()
}

// ForEachLive enumerates every triangle (u,v,w) of edge (u,v) whose two
// partner edges both satisfy !dead, invoking fn with their IDs (u-side
// first). dead must be safe to call concurrently and stable for edges it
// has reported dead (the PKT sub-round guarantee: deaths commit only at
// barriers).
func (k *Kernel) ForEachLive(u, v uint32, dead func(int32) bool, fn func(euw, evw int32)) {
	du, dv := k.g.Degree(u), k.g.Degree(v)
	if du > dv {
		u, v = v, u
		du, dv = dv, du
	}
	if dv >= ProbeSkew*du {
		k.probes.Add(1)
		k.forEachLiveProbe(u, v, dead, fn)
		return
	}
	k.merges.Add(1)
	k.forEachLiveMerge(u, v, dead, fn)
}

// forEachLiveProbe iterates the lower-degree endpoint's adjacency and hash
// probes the closing edge: O(min(du,dv)) probes, immune to the other
// endpoint's degree.
func (k *Kernel) forEachLiveProbe(u, v uint32, dead func(int32) bool, fn func(euw, evw int32)) {
	nbrs := k.g.Neighbors(u)
	eids := k.g.IncidentEdges(u)
	for i, w := range nbrs {
		if w == v {
			continue
		}
		euw := eids[i]
		if dead(euw) {
			continue
		}
		evw, ok := k.Lookup(v, w)
		if !ok || dead(evw) {
			continue
		}
		fn(euw, evw)
	}
}

// forEachLiveMerge two-pointer merges both sorted adjacency lists:
// O(du+dv) with no hashing at all, the cheaper plan when degrees are
// comparable.
func (k *Kernel) forEachLiveMerge(u, v uint32, dead func(int32) bool, fn func(euw, evw int32)) {
	un, ue := k.g.Neighbors(u), k.g.IncidentEdges(u)
	vn, ve := k.g.Neighbors(v), k.g.IncidentEdges(v)
	i, j := 0, 0
	for i < len(un) && j < len(vn) {
		switch {
		case un[i] < vn[j]:
			i++
		case un[i] > vn[j]:
			j++
		default:
			if w := un[i]; w != u && w != v {
				euw, evw := ue[i], ve[j]
				if !dead(euw) && !dead(evw) {
					fn(euw, evw)
				}
			}
			i++
			j++
		}
	}
}
