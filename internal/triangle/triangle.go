// Package triangle implements triangle counting and listing, the
// initialization step of every truss-decomposition algorithm in the paper
// (Step 2 of Algorithm 2 cites the in-memory triangle counting algorithms of
// Schank [27] and Latapy [20]).
//
// The main entry point, Supports, computes sup(e) for every edge in
// O(m^1.5) time using the oriented "compact forward" technique: edges are
// directed from lower to higher *rank* (degree order, ties by ID), and for
// each directed edge (u->v) the sorted out-neighbor lists of u and v are
// intersected. Every triangle is discovered exactly once, at its lowest-rank
// vertex.
package triangle

import (
	"sort"

	"repro/internal/graph"
)

// Supports returns sup(e) for every edge of g, indexed by edge ID.
func Supports(g *graph.Graph) []int32 {
	sup := make([]int32, g.NumEdges())
	ForEach(g, func(e1, e2, e3 int32) {
		sup[e1]++
		sup[e2]++
		sup[e3]++
	})
	return sup
}

// Count returns the total number of triangles in g.
func Count(g *graph.Graph) int64 {
	var total int64
	ForEach(g, func(_, _, _ int32) { total++ })
	return total
}

// ForEach lists every triangle of g exactly once, invoking fn with the three
// edge IDs of the triangle: (u,v), (u,w), (v,w) for the triangle's vertices
// in rank order u < v < w.
func ForEach(g *graph.Graph, fn func(e1, e2, e3 int32)) {
	if g.NumVertices() == 0 {
		return
	}
	ForEachOriented(graph.BuildOriented(g), fn)
}

// ForEachOriented is ForEach over a prebuilt degree-ordered view, for
// callers that reuse the view across passes (the PKT core builds it once
// for support initialization). The out-lists live in rank space and are
// sorted, so each directed edge u->v costs one linear merge of
// out(u) x out(v); every common out-neighbor w closes triangle (u,v,w)
// with u the lowest-rank vertex.
func ForEachOriented(o *graph.Oriented, fn func(e1, e2, e3 int32)) {
	forEachOrientedRange(o, 0, int32(len(o.Vert)), fn)
}

// forEachOrientedRange enumerates the triangles rooted at ranks [lo, hi):
// the unit of work the parallel support counter fans out over.
func forEachOrientedRange(o *graph.Oriented, lo, hi int32, fn func(e1, e2, e3 int32)) {
	for u := lo; u < hi; u++ {
		us, ue := o.Off[u], o.Off[u+1]
		for i := us; i < ue; i++ {
			v := o.Nbr[i]
			euv := o.EID[i]
			a, b := i+1, o.Off[v]
			ve := o.Off[v+1]
			for a < ue && b < ve {
				ra, rb := o.Nbr[a], o.Nbr[b]
				switch {
				case ra < rb:
					a++
				case ra > rb:
					b++
				default:
					fn(euv, o.EID[a], o.EID[b])
					a++
					b++
				}
			}
		}
	}
}

// Ranks returns a total order on vertices: rank[v] < rank[w] iff
// (deg(v), v) < (deg(w), w). Orienting edges by increasing rank bounds each
// out-degree by O(sqrt(m)), which gives the O(m^1.5) triangle bound.
func Ranks(g *graph.Graph) []int32 {
	n := g.NumVertices()
	order := make([]uint32, n)
	for i := range order {
		order[i] = uint32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di < dj
		}
		return order[i] < order[j]
	})
	rank := make([]int32, n)
	for r, v := range order {
		rank[v] = int32(r)
	}
	return rank
}

// SupportsNaive computes sup(e) by intersecting full neighbor lists for
// every edge. It is O(sum over edges of deg(u)+deg(v)) and serves as the
// reference implementation for tests, and as the support-initialization step
// of the baseline Algorithm 1.
func SupportsNaive(g *graph.Graph) []int32 {
	sup := make([]int32, g.NumEdges())
	for id, e := range g.Edges() {
		sup[id] = int32(CommonNeighbors(g, e.U, e.V, nil))
	}
	return sup
}

// CommonNeighbors merges the sorted adjacency lists of u and v, returning
// the number of common neighbors; if visit is non-nil it is invoked for each
// common neighbor w.
func CommonNeighbors(g *graph.Graph, u, v uint32, visit func(w uint32)) int {
	a, b := g.Neighbors(u), g.Neighbors(v)
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			if visit != nil {
				visit(a[i])
			}
			i++
			j++
		}
	}
	return c
}

// ForEachOf enumerates every triangle through edge (u,v), passing the two
// partner edge IDs (in no particular side order). It iterates the
// lower-degree endpoint's adjacency and probes the closing edge, so one
// call costs O(min(deg u, deg v) * log max(deg u, deg v)) — the per-edge
// counterpart of the whole-graph ForEach, used by the incremental
// maintenance and index-patching paths that only need triangles around a
// small set of edges.
func ForEachOf(g *graph.Graph, u, v uint32, fn func(euw, evw int32)) {
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	nbrs := g.Neighbors(u)
	eids := g.IncidentEdges(u)
	for i, w := range nbrs {
		if w == v {
			continue
		}
		if evw, ok := g.EdgeID(v, w); ok {
			fn(eids[i], evw)
		}
	}
}

// LocalCounts returns, for each vertex, the number of triangles through it.
// Used by the clustering-coefficient metric.
func LocalCounts(g *graph.Graph) []int64 {
	counts := make([]int64, g.NumVertices())
	ForEach(g, func(e1, e2, e3 int32) {
		// The three edges of a triangle cover its three vertices twice each;
		// identify the vertices from two of the edges.
		a := g.Edge(e1)
		b := g.Edge(e2)
		counts[a.U]++
		counts[a.V]++
		// The third vertex is the endpoint of e2 not shared with e1.
		var w uint32
		switch {
		case b.U != a.U && b.U != a.V:
			w = b.U
		default:
			w = b.V
		}
		counts[w]++
	})
	return counts
}
