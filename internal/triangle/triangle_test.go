package triangle

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func clique(n int) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, graph.Edge{U: uint32(i), V: uint32(j)})
		}
	}
	return graph.FromEdges(edges)
}

func path(n int) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i+1 < n; i++ {
		edges = append(edges, graph.Edge{U: uint32(i), V: uint32(i + 1)})
	}
	return graph.FromEdges(edges)
}

func TestCountClique(t *testing.T) {
	// K_n has C(n,3) triangles.
	for n := 3; n <= 10; n++ {
		g := clique(n)
		want := int64(n * (n - 1) * (n - 2) / 6)
		if got := Count(g); got != want {
			t.Fatalf("K_%d: Count = %d, want %d", n, got, want)
		}
	}
}

func TestCountTriangleFree(t *testing.T) {
	if got := Count(path(10)); got != 0 {
		t.Fatalf("path: Count = %d", got)
	}
	// Star graph.
	var edges []graph.Edge
	for i := 1; i <= 8; i++ {
		edges = append(edges, graph.Edge{U: 0, V: uint32(i)})
	}
	if got := Count(graph.FromEdges(edges)); got != 0 {
		t.Fatalf("star: Count = %d", got)
	}
	// Empty graph.
	if got := Count(graph.NewBuilder(0).Build()); got != 0 {
		t.Fatalf("empty: Count = %d", got)
	}
}

func TestSupportsClique(t *testing.T) {
	// In K_n every edge is in n-2 triangles.
	g := clique(6)
	sup := Supports(g)
	for id, s := range sup {
		if s != 4 {
			t.Fatalf("edge %v support = %d, want 4", g.Edge(int32(id)), s)
		}
	}
}

func TestSupportsMatchesNaiveRandom(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 3 + r.Intn(40)
		m := r.Intn(3 * n)
		var edges []graph.Edge
		for i := 0; i < m; i++ {
			edges = append(edges, graph.Edge{U: uint32(r.Intn(n)), V: uint32(r.Intn(n))})
		}
		g := graph.FromEdges(edges)
		fast := Supports(g)
		slow := SupportsNaive(g)
		for id := range fast {
			if fast[id] != slow[id] {
				t.Fatalf("trial %d edge %v: fast=%d naive=%d",
					trial, g.Edge(int32(id)), fast[id], slow[id])
			}
		}
	}
}

func TestForEachListsEachTriangleOnce(t *testing.T) {
	g := clique(5)
	seen := map[[3]int32]int{}
	ForEach(g, func(e1, e2, e3 int32) {
		k := [3]int32{e1, e2, e3}
		seen[k]++
	})
	if len(seen) != 10 {
		t.Fatalf("K_5: distinct triangles = %d, want 10", len(seen))
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("triangle %v listed %d times", k, c)
		}
	}
	// Each reported edge triple must actually form a triangle.
	ForEach(g, func(e1, e2, e3 int32) {
		vs := map[uint32]int{}
		for _, id := range []int32{e1, e2, e3} {
			e := g.Edge(id)
			vs[e.U]++
			vs[e.V]++
		}
		if len(vs) != 3 {
			t.Fatalf("edges %d,%d,%d do not form a triangle", e1, e2, e3)
		}
		for _, c := range vs {
			if c != 2 {
				t.Fatalf("vertex covered %d times in triangle", c)
			}
		}
	})
}

func TestSupportSumIsThreeTriangles(t *testing.T) {
	// Property: sum of supports == 3 * #triangles.
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%30) + 3
		m := int(mRaw % 150)
		r := rand.New(rand.NewSource(seed))
		var edges []graph.Edge
		for i := 0; i < m; i++ {
			edges = append(edges, graph.Edge{U: uint32(r.Intn(n)), V: uint32(r.Intn(n))})
		}
		g := graph.FromEdges(edges)
		sup := Supports(g)
		var sum int64
		for _, s := range sup {
			sum += int64(s)
		}
		return sum == 3*Count(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRanksPermutation(t *testing.T) {
	g := clique(4)
	rank := Ranks(g)
	seen := make([]bool, len(rank))
	for _, r := range rank {
		if r < 0 || int(r) >= len(rank) || seen[r] {
			t.Fatalf("ranks not a permutation: %v", rank)
		}
		seen[r] = true
	}
}

func TestRanksDegreeOrder(t *testing.T) {
	// Star plus pendant: center has max degree, so max rank.
	var edges []graph.Edge
	for i := 1; i <= 5; i++ {
		edges = append(edges, graph.Edge{U: 0, V: uint32(i)})
	}
	g := graph.FromEdges(edges)
	rank := Ranks(g)
	for v := 1; v <= 5; v++ {
		if rank[0] <= rank[v] {
			t.Fatalf("center rank %d not above leaf rank %d", rank[0], rank[v])
		}
	}
}

func TestCommonNeighborsVisit(t *testing.T) {
	g := clique(4)
	var ws []uint32
	c := CommonNeighbors(g, 0, 1, func(w uint32) { ws = append(ws, w) })
	if c != 2 || len(ws) != 2 {
		t.Fatalf("common neighbors of (0,1) in K4 = %d (%v)", c, ws)
	}
}

func TestLocalCounts(t *testing.T) {
	// Two triangles sharing vertex 0: (0,1,2) and (0,3,4).
	g := graph.FromEdges([]graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2},
		{U: 0, V: 3}, {U: 3, V: 4}, {U: 0, V: 4},
	})
	counts := LocalCounts(g)
	want := []int64{2, 1, 1, 1, 1}
	for v := range want {
		if counts[v] != want[v] {
			t.Fatalf("LocalCounts = %v, want %v", counts, want)
		}
	}
}

func TestLocalCountsSum(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	var edges []graph.Edge
	for i := 0; i < 300; i++ {
		edges = append(edges, graph.Edge{U: uint32(r.Intn(50)), V: uint32(r.Intn(50))})
	}
	g := graph.FromEdges(edges)
	counts := LocalCounts(g)
	var sum int64
	for _, c := range counts {
		sum += c
	}
	if sum != 3*Count(g) {
		t.Fatalf("sum of local counts %d != 3 * %d", sum, Count(g))
	}
}
