// Package partition implements the three graph-partitioning strategies of
// Chu and Cheng [13] that the paper's external-memory algorithms rely on
// (Step 3 of Algorithm 3, Step 1 of Procedure 6): split the active vertex
// set into parts P1..Pp such that each neighborhood subgraph NS(Pi) fits in
// the memory budget.
//
//   - Sequential: take vertices in ID order, closing a part when the
//     estimated NS size would exceed the budget. Fast, no guarantee on the
//     number of LowerBounding iterations.
//   - Randomized: like Sequential but over a seeded random permutation;
//     bounds iterations to O(m/M) with high probability and is the default.
//   - DominatingSet: greedily picks a dominating set as seeds, assigns every
//     vertex to a dominating neighbor, and packs seed groups into parts;
//     uses O(n) memory and bounds iterations deterministically.
//
// The NS(Pi) size estimate is sum of deg(v) over v in Pi, which upper-bounds
// the number of adjacency entries of NS(Pi) contributed by internal
// vertices; every edge of NS(Pi) is incident to Pi, so the edge count is at
// most that sum.
package partition

import (
	"fmt"
	"math/rand"
	"sort"
)

// Strategy selects a partitioning algorithm.
type Strategy int

const (
	// Sequential partitions vertices in increasing ID order.
	Sequential Strategy = iota
	// Randomized partitions a seeded random permutation of the vertices.
	Randomized
	// DominatingSet groups vertices around a greedy dominating set.
	DominatingSet
)

func (s Strategy) String() string {
	switch s {
	case Sequential:
		return "sequential"
	case Randomized:
		return "randomized"
	case DominatingSet:
		return "dominating-set"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Config parameterizes a partitioning run.
type Config struct {
	Strategy Strategy
	// Budget is the maximum estimated NS size per part, in adjacency
	// entries (sum of degrees). Values < 1 are treated as 1.
	Budget int64
	// Seed drives the Randomized strategy.
	Seed int64
}

// Input describes the active portion of a (possibly disk-resident) graph:
// degree per vertex and an activity mask. Degrees of inactive vertices are
// ignored.
type Input struct {
	Degree []int32
	Active func(v uint32) bool // nil means all vertices with Degree > 0
}

func (in Input) active(v uint32) bool {
	if in.Active != nil {
		return in.Active(v)
	}
	return in.Degree[v] > 0
}

// Parts is a list of vertex groups.
type Parts [][]uint32

// Partition splits the active vertices into parts whose estimated NS sizes
// respect cfg.Budget. A vertex whose own degree exceeds the budget forms a
// singleton part (its NS must be loaded regardless; callers stream such
// parts with the fallback procedures).
func Partition(in Input, cfg Config) Parts {
	if cfg.Budget < 1 {
		cfg.Budget = 1
	}
	switch cfg.Strategy {
	case DominatingSet:
		return dominatingSetPartition(in, cfg)
	case Randomized:
		order := activeVertices(in)
		r := rand.New(rand.NewSource(cfg.Seed))
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		return packSequential(order, in.Degree, cfg.Budget)
	default:
		return packSequential(activeVertices(in), in.Degree, cfg.Budget)
	}
}

func activeVertices(in Input) []uint32 {
	var out []uint32
	for v := range in.Degree {
		if in.active(uint32(v)) {
			out = append(out, uint32(v))
		}
	}
	return out
}

// packSequential greedily packs the given vertex order into budget-bounded
// parts.
func packSequential(order []uint32, degree []int32, budget int64) Parts {
	var parts Parts
	var cur []uint32
	var size int64
	for _, v := range order {
		d := int64(degree[v])
		if len(cur) > 0 && size+d > budget {
			parts = append(parts, cur)
			cur = nil
			size = 0
		}
		cur = append(cur, v)
		size += d
	}
	if len(cur) > 0 {
		parts = append(parts, cur)
	}
	return parts
}

// dominatingSetPartition implements the seeded strategy: a greedy dominating
// set over the active vertices (computed from adjacency implied by Nbr),
// then groups assigned by domination. Because the package works from degree
// arrays only (the graph may be on disk), the "domination" here degrades to
// degree-descending seed packing: seeds are chosen in degree-descending
// order and each part is filled with the next-largest vertices until the
// budget binds. This preserves the property the external algorithms need —
// high-degree hubs are spread across parts so no NS blows the budget — and
// keeps the package free of adjacency access.
func dominatingSetPartition(in Input, cfg Config) Parts {
	order := activeVertices(in)
	sort.Slice(order, func(i, j int) bool {
		di, dj := in.Degree[order[i]], in.Degree[order[j]]
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	// Round-robin the degree-sorted vertices across ceil(total/budget)
	// bins so each bin mixes hubs and leaves.
	var total int64
	for _, v := range order {
		total += int64(in.Degree[v])
	}
	nParts := int((total + cfg.Budget - 1) / cfg.Budget)
	if nParts < 1 {
		nParts = 1
	}
	parts := make(Parts, nParts)
	sizes := make([]int64, nParts)
	for _, v := range order {
		// Place into the currently smallest part (greedy balancing).
		best := 0
		for i := 1; i < nParts; i++ {
			if sizes[i] < sizes[best] {
				best = i
			}
		}
		parts[best] = append(parts[best], v)
		sizes[best] += int64(in.Degree[v])
	}
	// Split any part that still exceeds the budget (can happen when a
	// single vertex's degree exceeds it).
	var out Parts
	for _, p := range parts {
		out = append(out, packSequential(p, in.Degree, cfg.Budget)...)
	}
	return out
}

// Validate checks that parts are disjoint, cover exactly the active
// vertices, and that every multi-vertex part respects the budget. Used by
// tests and debug builds.
func Validate(in Input, cfg Config, parts Parts) error {
	seen := map[uint32]bool{}
	for pi, p := range parts {
		if len(p) == 0 {
			return fmt.Errorf("partition: empty part %d", pi)
		}
		var size int64
		for _, v := range p {
			if seen[v] {
				return fmt.Errorf("partition: vertex %d in multiple parts", v)
			}
			seen[v] = true
			size += int64(in.Degree[v])
		}
		if len(p) > 1 && size > cfg.Budget {
			return fmt.Errorf("partition: part %d size %d exceeds budget %d", pi, size, cfg.Budget)
		}
	}
	for v := range in.Degree {
		if in.active(uint32(v)) && !seen[uint32(v)] {
			return fmt.Errorf("partition: active vertex %d not covered", v)
		}
		if !in.active(uint32(v)) && seen[uint32(v)] {
			return fmt.Errorf("partition: inactive vertex %d included", v)
		}
	}
	return nil
}
