package partition

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomDegrees(r *rand.Rand, n int) []int32 {
	d := make([]int32, n)
	for i := range d {
		d[i] = int32(r.Intn(20))
	}
	return d
}

func TestStrategyString(t *testing.T) {
	if Sequential.String() != "sequential" ||
		Randomized.String() != "randomized" ||
		DominatingSet.String() != "dominating-set" {
		t.Fatal("bad strategy names")
	}
	if Strategy(99).String() == "" {
		t.Fatal("unknown strategy should still render")
	}
}

func TestPartitionAllStrategies(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	deg := randomDegrees(r, 200)
	for _, strat := range []Strategy{Sequential, Randomized, DominatingSet} {
		cfg := Config{Strategy: strat, Budget: 50, Seed: 7}
		in := Input{Degree: deg}
		parts := Partition(in, cfg)
		if err := Validate(in, cfg, parts); err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
	}
}

func TestPartitionRespectsActiveMask(t *testing.T) {
	deg := []int32{5, 5, 5, 5, 5}
	active := func(v uint32) bool { return v%2 == 0 }
	cfg := Config{Strategy: Sequential, Budget: 100}
	in := Input{Degree: deg, Active: active}
	parts := Partition(in, cfg)
	if err := Validate(in, cfg, parts); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != 3 {
		t.Fatalf("covered %d vertices, want 3", total)
	}
}

func TestPartitionSingletonOverBudget(t *testing.T) {
	// A vertex with degree above the budget must land in its own part.
	deg := []int32{1000, 2, 3}
	cfg := Config{Strategy: Sequential, Budget: 10}
	in := Input{Degree: deg}
	parts := Partition(in, cfg)
	if err := Validate(in, cfg, parts); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range parts {
		if len(p) == 1 && p[0] == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("hub not isolated: %v", parts)
	}
}

func TestPartitionZeroBudget(t *testing.T) {
	deg := []int32{1, 1}
	cfg := Config{Strategy: Sequential, Budget: 0}
	in := Input{Degree: deg}
	parts := Partition(in, cfg)
	if err := Validate(in, Config{Strategy: Sequential, Budget: 1}, parts); err != nil {
		t.Fatal(err)
	}
}

func TestRandomizedDeterministicPerSeed(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	deg := randomDegrees(r, 100)
	in := Input{Degree: deg}
	a := Partition(in, Config{Strategy: Randomized, Budget: 40, Seed: 1})
	b := Partition(in, Config{Strategy: Randomized, Budget: 40, Seed: 1})
	if len(a) != len(b) {
		t.Fatal("same seed produced different partitions")
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatal("same seed produced different partitions")
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("same seed produced different partitions")
			}
		}
	}
	c := Partition(in, Config{Strategy: Randomized, Budget: 40, Seed: 2})
	if err := Validate(in, Config{Strategy: Randomized, Budget: 40}, c); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAllStrategiesValid(t *testing.T) {
	f := func(seed int64, budgetRaw uint8, nRaw uint8, stratRaw uint8) bool {
		n := int(nRaw)%100 + 1
		budget := int64(budgetRaw)%100 + 1
		strat := Strategy(int(stratRaw) % 3)
		r := rand.New(rand.NewSource(seed))
		deg := randomDegrees(r, n)
		cfg := Config{Strategy: strat, Budget: budget, Seed: seed}
		in := Input{Degree: deg}
		parts := Partition(in, cfg)
		return Validate(in, cfg, parts) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestDominatingSetBalances(t *testing.T) {
	// Power-law-ish degrees: one huge hub plus many leaves. The dominating
	// strategy should isolate the hub and spread leaves across parts.
	deg := make([]int32, 101)
	deg[0] = 90
	for i := 1; i <= 100; i++ {
		deg[i] = 2
	}
	cfg := Config{Strategy: DominatingSet, Budget: 100}
	in := Input{Degree: deg}
	parts := Partition(in, cfg)
	if err := Validate(in, cfg, parts); err != nil {
		t.Fatal(err)
	}
	if len(parts) < 2 {
		t.Fatalf("expected multiple parts, got %d", len(parts))
	}
}
