package cluster

import (
	"fmt"
	"strings"
	"testing"
)

// shardSet builds an n-shard topology with loopback endpoints.
func shardSet(n int) *Topology {
	t := &Topology{}
	for i := 0; i < n; i++ {
		t.Shards = append(t.Shards, Shard{
			Name:    fmt.Sprintf("shard-%c", 'a'+i),
			Primary: fmt.Sprintf("http://127.0.0.1:%d", 9000+i),
		})
	}
	return t
}

// TestHRWBalance drives 10k graph names over 5 shards and demands the
// placement stay tight: the most-loaded shard holds at most 1.3x the
// least-loaded one's count. This is the property the splitmix64
// finalizer in Score exists for — raw FNV over near-identical names
// (graph-0001, graph-0002, ...) correlates and skews.
func TestHRWBalance(t *testing.T) {
	const names, shards = 10000, 5
	topo := shardSet(shards)
	counts := map[string]int{}
	for i := 0; i < names; i++ {
		owner, ok := topo.Owner(fmt.Sprintf("graph-%04d", i))
		if !ok {
			t.Fatal("Owner returned no shard for a non-empty topology")
		}
		counts[owner.Name]++
	}
	if len(counts) != shards {
		t.Fatalf("placement used %d of %d shards: %v", len(counts), shards, counts)
	}
	min, max := names, 0
	for _, n := range counts {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	ratio := float64(max) / float64(min)
	t.Logf("counts=%v max/min=%.3f", counts, ratio)
	if ratio > 1.3 {
		t.Fatalf("placement imbalance: max/min = %.3f > 1.3 (counts %v)", ratio, counts)
	}
}

// TestHRWMinimalMovement removes one of N shards and verifies the two
// halves of the rendezvous minimal-movement guarantee: every graph the
// removed shard did not own keeps its owner exactly, and the relocated
// fraction is ~1/N (the removed shard's share), not a wholesale
// reshuffle the way a naive hash-mod-N placement would move (N-1)/N.
func TestHRWMinimalMovement(t *testing.T) {
	const names, shards = 10000, 5
	full := shardSet(shards)
	for removed := 0; removed < shards; removed++ {
		reduced := &Topology{}
		reduced.Shards = append(reduced.Shards, full.Shards[:removed]...)
		reduced.Shards = append(reduced.Shards, full.Shards[removed+1:]...)
		removedName := full.Shards[removed].Name
		moved := 0
		for i := 0; i < names; i++ {
			g := fmt.Sprintf("graph-%04d", i)
			before, _ := full.Owner(g)
			after, _ := reduced.Owner(g)
			if before.Name == removedName {
				moved++
				continue
			}
			if after.Name != before.Name {
				t.Fatalf("removing %s moved %q from surviving shard %s to %s",
					removedName, g, before.Name, after.Name)
			}
		}
		frac := float64(moved) / names
		t.Logf("removing %s relocates %d/%d names (%.3f, ideal %.3f)",
			removedName, moved, names, frac, 1.0/shards)
		// The relocated share is exactly the removed shard's holding;
		// balance bounds it near 1/N. Allow the same slack the balance
		// test allows.
		if frac < 0.7/shards || frac > 1.3/shards {
			t.Fatalf("removing %s relocated %.3f of names; want ~%.3f",
				removedName, frac, 1.0/shards)
		}
	}
}

// TestOwnerDeterministic pins that placement is a pure function of
// (membership names, graph name) — independent of shard order and of
// the endpoints behind the names.
func TestOwnerDeterministic(t *testing.T) {
	a := &Topology{Shards: []Shard{
		{Name: "a", Primary: "http://h1:1"}, {Name: "b", Primary: "http://h2:1"}, {Name: "c", Primary: "http://h3:1"},
	}}
	b := &Topology{Shards: []Shard{ // same names, shuffled order, different endpoints
		{Name: "c", Primary: "http://x3:9"}, {Name: "a", Primary: "http://x1:9"}, {Name: "b", Primary: "http://x2:9"},
	}}
	for i := 0; i < 1000; i++ {
		g := fmt.Sprintf("g%d", i)
		oa, _ := a.Owner(g)
		ob, _ := b.Owner(g)
		if oa.Name != ob.Name {
			t.Fatalf("owner of %q depends on shard order: %s vs %s", g, oa.Name, ob.Name)
		}
	}
	if _, ok := (&Topology{}).Owner("g"); ok {
		t.Fatal("empty topology claimed an owner")
	}
}

func TestParseShards(t *testing.T) {
	topo, err := ParseShards("b=http://p2:8080, a=http://p1:8080;http://r1:8081;http://r2:8082")
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Shards) != 2 || topo.Shards[0].Name != "a" || topo.Shards[1].Name != "b" {
		t.Fatalf("want shards [a b] sorted by name, got %+v", topo.Shards)
	}
	if got := topo.Shards[0].Replicas; len(got) != 2 || got[0] != "http://r1:8081" {
		t.Fatalf("shard a replicas = %v", got)
	}
	if topo.Shards[1].Primary != "http://p2:8080" || len(topo.Shards[1].Replicas) != 0 {
		t.Fatalf("shard b = %+v", topo.Shards[1])
	}

	for _, bad := range []string{
		"",                            // no shards
		"a=",                          // empty endpoints
		"http://p1:8080",              // missing name=
		"a=ftp://p1:21",               // non-http scheme
		"a=http://p1:1,a=http://p2:2", // duplicate name
		"=http://p1:8080",             // empty name
	} {
		if _, err := ParseShards(bad); err == nil {
			t.Errorf("ParseShards(%q) accepted invalid spec", bad)
		}
	}
}

// TestTopologyETag pins that the ETag is stable for equal topologies,
// differs when membership differs, and is quoted (a valid strong ETag).
func TestTopologyETag(t *testing.T) {
	t1, _ := ParseShards("a=http://p1:1,b=http://p2:2")
	t2, _ := ParseShards("b=http://p2:2,a=http://p1:1") // same set, flag order swapped
	t3, _ := ParseShards("a=http://p1:1,b=http://p2:2,c=http://p3:3")
	if t1.ETag() != t2.ETag() {
		t.Fatalf("ETag depends on flag order: %s vs %s", t1.ETag(), t2.ETag())
	}
	if t1.ETag() == t3.ETag() {
		t.Fatal("different memberships share an ETag")
	}
	if !strings.HasPrefix(t1.ETag(), `"`) || !strings.HasSuffix(t1.ETag(), `"`) {
		t.Fatalf("ETag %s is not quoted", t1.ETag())
	}
}
