package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// Coordinator fronts a sharded cluster: per-graph traffic is proxied to
// the HRW owner with streaming passthrough, and the cluster-level
// endpoints — merged listings, aggregated readiness, the topology
// document — are answered locally.
//
//	GET  /healthz                    coordinator liveness
//	GET  /readyz                     aggregated shard readiness (degraded ≠ down)
//	GET  /metrics                    coordinator metrics (Prometheus text)
//	GET  /v1/cluster/topology        shard membership, ETag + If-None-Match
//	GET  /v1/graphs                  listing merged across all shards
//	*    /v1/graphs/{name}...        proxied to the owning shard
//	GET  /v1/replication/graphs/{name}/indexfile   proxied to the owner
//
// The proxy never buffers: every response flushes as the upstream
// writes (ReverseProxy FlushInterval -1), so the NDJSON firehose acks,
// the edges?k= stream, and the long-poll WAL tail all pass through with
// the same incremental delivery they have against a shard directly.
type Coordinator struct {
	topo    *Topology
	etag    string
	metrics *clusterMetrics
	client  *http.Client // fan-out probes and listing merges

	// One reverse proxy per shard, built once: ReverseProxy is stateless
	// per request, and sharing one instance per target keeps its
	// transport's connection pool warm across requests.
	proxies map[string]*httputil.ReverseProxy

	// probeTimeout bounds each per-shard readiness / listing fan-out
	// call; a hung shard must not hang the aggregate.
	probeTimeout time.Duration
}

// clusterMetrics is the coordinator's instrument panel, on the same
// internal/obs registry machinery the shards use so one scrape config
// covers the whole fleet.
type clusterMetrics struct {
	reg      *obs.Registry
	proxyDur map[string]*obs.Histogram // shard -> proxy latency
	shardUp  map[string]*obs.Gauge     // shard -> last probe result (1/0)
	proxyErr map[string]*obs.Counter   // shard -> upstream dial/transport failures

	// (shard, code) request counters, resolved lazily like the server's
	// per-route series.
	mu         sync.Mutex
	proxyCount map[string]*obs.Counter
}

func newClusterMetrics(reg *obs.Registry, t *Topology) *clusterMetrics {
	if reg == nil {
		reg = obs.Default()
	}
	m := &clusterMetrics{
		reg:        reg,
		proxyDur:   make(map[string]*obs.Histogram, len(t.Shards)),
		shardUp:    make(map[string]*obs.Gauge, len(t.Shards)),
		proxyErr:   make(map[string]*obs.Counter, len(t.Shards)),
		proxyCount: make(map[string]*obs.Counter),
	}
	for _, s := range t.Shards {
		m.proxyDur[s.Name] = reg.Histogram("truss_cluster_proxy_seconds",
			"Proxied request latency by owning shard.", nil, "shard", s.Name)
		m.shardUp[s.Name] = reg.Gauge("truss_cluster_shard_up",
			"1 when the shard's last readiness probe succeeded, else 0.", "shard", s.Name)
		m.proxyErr[s.Name] = reg.Counter("truss_cluster_proxy_errors_total",
			"Proxied requests that failed before an upstream response (dial/transport).", "shard", s.Name)
	}
	return m
}

// request records one proxied request's outcome.
func (m *clusterMetrics) request(shard string, code int, elapsed time.Duration) {
	key := shard + "\x00" + codeLabel(code)
	m.mu.Lock()
	c, ok := m.proxyCount[key]
	if !ok {
		c = m.reg.Counter("truss_cluster_proxy_requests_total",
			"Requests proxied to shards, by shard and status code.",
			"shard", shard, "code", codeLabel(code))
		m.proxyCount[key] = c
	}
	m.mu.Unlock()
	c.Inc()
	if h := m.proxyDur[shard]; h != nil {
		h.Observe(elapsed.Seconds())
	}
}

func codeLabel(code int) string {
	if code < 100 || code >= 1000 {
		return "000"
	}
	return string([]byte{byte('0' + code/100), byte('0' + code/10%10), byte('0' + code%10)})
}

// CoordinatorOptions configures NewCoordinator. The zero value of every
// field selects a sensible default.
type CoordinatorOptions struct {
	// Metrics is the registry coordinator families register on;
	// nil uses obs.Default().
	Metrics *obs.Registry
	// ProbeTimeout bounds each per-shard call during /readyz and
	// /v1/graphs fan-out; zero means 3s.
	ProbeTimeout time.Duration
}

// NewCoordinator builds a coordinator over a validated topology.
func NewCoordinator(t *Topology, opts CoordinatorOptions) (*Coordinator, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = 3 * time.Second
	}
	c := &Coordinator{
		topo:         t,
		etag:         t.ETag(),
		metrics:      newClusterMetrics(opts.Metrics, t),
		client:       &http.Client{},
		proxies:      make(map[string]*httputil.ReverseProxy, len(t.Shards)),
		probeTimeout: opts.ProbeTimeout,
	}
	for _, s := range t.Shards {
		target, err := url.Parse(s.Primary)
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %q: %w", s.Name, err)
		}
		shard := s.Name
		c.proxies[shard] = &httputil.ReverseProxy{
			Rewrite: func(pr *httputil.ProxyRequest) {
				pr.SetURL(target)
				pr.SetXForwarded()
			},
			// Negative FlushInterval flushes after every upstream write:
			// the proxied surface includes three incremental streams
			// (firehose acks, edges NDJSON, WAL long-poll) where
			// buffering would stall the far side.
			FlushInterval: -1,
			ErrorHandler: func(w http.ResponseWriter, r *http.Request, err error) {
				c.metrics.proxyErr[shard].Inc()
				c.metrics.shardUp[shard].Set(0)
				// 502 with the API's uniform error shape; the
				// shard-aware client treats it as failover-worthy.
				server.WriteError(w, http.StatusBadGateway,
					"shard %s unreachable: %v", shard, err)
			},
		}
	}
	return c, nil
}

// Topology returns the membership the coordinator was built with.
func (c *Coordinator) Topology() *Topology { return c.topo }

// Handler returns the coordinator's HTTP surface.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		server.WriteJSON(w, http.StatusOK, map[string]any{"ok": true, "shards": len(c.topo.Shards)})
	})
	mux.HandleFunc("GET /readyz", c.handleReady)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = c.metrics.reg.WritePrometheus(w)
	})
	mux.HandleFunc("GET /v1/cluster/topology", c.handleTopology)
	mux.HandleFunc("GET /v1/graphs", c.handleList)
	mux.HandleFunc("/v1/graphs/{name}", c.proxyGraph)
	mux.HandleFunc("/v1/graphs/{name}/", c.proxyGraph)
	// Follower hydration for a specific graph can ride through the
	// coordinator too (a follower attached to a shard usually talks to
	// its primary directly, but tooling that only knows the coordinator
	// still gets the bytes).
	mux.HandleFunc("GET /v1/replication/graphs/{name}/indexfile", c.proxyGraph)
	return mux
}

// proxyGraph routes one graph-scoped request to the HRW owner of the
// {name} path segment, with streaming passthrough.
func (c *Coordinator) proxyGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// The mux pattern /v1/graphs/{name}/ makes {name} greedy over the
	// rest of the path; the owner is keyed on the first segment only.
	if i := strings.IndexByte(name, '/'); i >= 0 {
		name = name[:i]
	}
	if name == "" {
		server.WriteError(w, http.StatusBadRequest, "missing graph name")
		return
	}
	owner, ok := c.topo.Owner(name)
	if !ok {
		server.WriteError(w, http.StatusServiceUnavailable, "cluster topology has no shards")
		return
	}
	w.Header().Set("X-Truss-Shard", owner.Name)
	if r.Body != nil && r.Body != http.NoBody {
		// The firehose is full duplex: the shard streams acks while the
		// client is still streaming records. Without this, the HTTP/1
		// server stops the proxy's upstream body copy at the first ack
		// write, stalling the session. Best-effort: HTTP/2 is already
		// duplex and returns an error here, which is fine to ignore.
		_ = http.NewResponseController(w).EnableFullDuplex()
	}
	start := time.Now()
	rec := &statusRecorder{ResponseWriter: w}
	c.proxies[owner.Name].ServeHTTP(rec, r)
	code := rec.status
	if code == 0 {
		code = http.StatusOK
	}
	if code < http.StatusBadGateway { // upstream answered, whatever it said
		c.metrics.shardUp[owner.Name].Set(1)
	}
	c.metrics.request(owner.Name, code, time.Since(start))
}

// statusRecorder captures the proxied status code. Unwrap keeps
// http.ResponseController working through it — ReverseProxy's
// per-write flushing depends on reaching the real writer.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(p)
}

func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// handleTopology serves the membership document with a strong ETag so a
// client refresh against an unchanged topology is one 304, no body.
func (c *Coordinator) handleTopology(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("ETag", c.etag)
	for _, cand := range strings.Split(r.Header.Get("If-None-Match"), ",") {
		if strings.TrimSpace(cand) == c.etag {
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	server.WriteJSON(w, http.StatusOK, c.topo)
}

// shardStatus is one shard's row in the /readyz aggregate.
type shardStatus struct {
	Shard string `json:"shard"`
	Ready bool   `json:"ready"`
	Error string `json:"error,omitempty"`
}

// handleReady aggregates shard readiness. Semantics are deliberately
// "degraded, not down": 200 with degraded=false when every shard is
// ready, 200 with degraded=true when at least one (but not all) is —
// the cluster still serves every graph the live shards own — and 503
// only when no shard is ready at all.
func (c *Coordinator) handleReady(w http.ResponseWriter, r *http.Request) {
	statuses := fanout(c, r.Context(), "/readyz", func(s Shard, resp *http.Response, err error) shardStatus {
		st := shardStatus{Shard: s.Name}
		switch {
		case err != nil:
			st.Error = err.Error()
		case resp.StatusCode != http.StatusOK:
			st.Error = fmt.Sprintf("readyz: HTTP %d", resp.StatusCode)
		default:
			st.Ready = true
		}
		return st
	})
	ready := 0
	for _, st := range statuses {
		up := int64(0)
		if st.Ready {
			up = 1
			ready++
		}
		c.metrics.shardUp[st.Shard].Set(up)
	}
	code := http.StatusOK
	if ready == 0 {
		code = http.StatusServiceUnavailable
	}
	server.WriteJSON(w, code, map[string]any{
		"ready":    ready == len(statuses),
		"degraded": ready > 0 && ready < len(statuses),
		"shards":   statuses,
	})
}

// handleList merges GET /v1/graphs across every shard. A down shard
// degrades the listing (its graphs are omitted and its name reported)
// rather than failing the whole call.
func (c *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	type listResult struct {
		shard  string
		graphs []server.GraphInfo
		err    error
	}
	results := fanout(c, r.Context(), "/v1/graphs", func(s Shard, resp *http.Response, err error) listResult {
		lr := listResult{shard: s.Name, err: err}
		if err != nil {
			return lr
		}
		if resp.StatusCode != http.StatusOK {
			lr.err = fmt.Errorf("HTTP %d", resp.StatusCode)
			return lr
		}
		var body struct {
			Graphs []server.GraphInfo `json:"graphs"`
		}
		lr.err = json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&body)
		lr.graphs = body.Graphs
		return lr
	})
	merged := []server.GraphInfo{} // never null on the wire, like a shard's own listing
	var missing []string
	for _, lr := range results {
		if lr.err != nil {
			missing = append(missing, lr.shard)
			continue
		}
		merged = append(merged, lr.graphs...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Name < merged[j].Name })
	body := map[string]any{"graphs": merged}
	if len(missing) > 0 {
		sort.Strings(missing)
		body["unavailable_shards"] = missing
	}
	server.WriteJSON(w, http.StatusOK, body)
}

// fanout issues GET path to every shard primary concurrently, bounded by
// probeTimeout, and maps each response through fn. Results keep shard
// order. fn owns interpreting err/resp; fanout closes the body.
func fanout[T any](c *Coordinator, ctx context.Context, path string, fn func(Shard, *http.Response, error) T) []T {
	out := make([]T, len(c.topo.Shards))
	var wg sync.WaitGroup
	for i, s := range c.topo.Shards {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cctx, cancel := context.WithTimeout(ctx, c.probeTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(cctx, http.MethodGet, s.Primary+path, nil)
			var resp *http.Response
			if err == nil {
				resp, err = c.client.Do(req)
			}
			out[i] = fn(s, resp, err)
			if resp != nil {
				_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	return out
}
