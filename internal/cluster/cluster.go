// Package cluster shards the graph registry across machines: a static
// membership list of shards (each one an ordinary trussd primary, with
// optional PR-9 followers behind it), rendezvous hashing to place each
// graph name on exactly one shard, and a Coordinator that proxies the
// whole per-graph HTTP surface to the owning shard while serving the
// cluster-level endpoints itself (merged listings, aggregated readiness,
// the topology document clients bootstrap from).
//
// Placement is rendezvous (highest-random-weight) hashing: a graph lives
// on the shard maximizing hash(shard, graph). Unlike a ring of virtual
// nodes there is no data structure to maintain or rebalance — membership
// is just the list — and it has the minimal-movement property consistent
// hashing is used for: removing one of N shards relocates only the ~1/N
// of graphs that shard owned, and every relocated graph moves to its
// second-highest scorer, never shuffling graphs between surviving shards.
//
// Sharding composes with replication rather than replacing it: each
// shard remains a full PR-9 primary, so the per-graph monotonic version
// counter — the consistency token behind X-Truss-Version — is scoped to
// the owning shard and keeps exactly its single-primary semantics.
// Nothing cluster-wide ever compares versions across graphs.
package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/url"
	"sort"
	"strings"
)

// Shard is one member of the cluster: a primary base URL and the base
// URLs of any read replicas following it. The Name is the hashing
// identity — it, not the URL, is what placement is computed from, so an
// operator can move a shard to new hardware (new URL, same name)
// without relocating a single graph.
type Shard struct {
	Name     string   `json:"name"`
	Primary  string   `json:"primary"`
	Replicas []string `json:"replicas,omitempty"`
}

// Topology is the cluster membership document: the static shard list the
// coordinator is started with, served to clients on
// GET /v1/cluster/topology so they can route directly.
type Topology struct {
	Shards []Shard `json:"shards"`
}

// fnvOffset and fnvPrime are the FNV-1a 64-bit parameters.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fnv1a folds s into an FNV-1a 64-bit running hash.
func fnv1a(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// mix64 is the splitmix64 finalizer: FNV alone correlates nearby keys
// (sequential graph names differ in one byte), and HRW needs the full
// 64-bit spread to keep the per-shard load ratio tight.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Score is the rendezvous weight of placing graph on shard: the graph
// lives on the shard with the highest score. Exported so the shard-aware
// client computes the same placement the coordinator does.
func Score(shard, graph string) uint64 {
	// The NUL separator keeps (shard="a", graph="bc") and (shard="ab",
	// graph="c") from hashing identically.
	return mix64(fnv1a(fnv1a(fnvOffset, shard)^fnvPrime, graph+"\x00"+shard))
}

// Owner returns the shard owning graph — the highest-random-weight
// member — and false when the topology is empty. Ties (astronomically
// unlikely with 64-bit scores) break toward the lexically smaller shard
// name so every participant agrees.
func (t *Topology) Owner(graph string) (Shard, bool) {
	if len(t.Shards) == 0 {
		return Shard{}, false
	}
	best := 0
	bestScore := Score(t.Shards[0].Name, graph)
	for i := 1; i < len(t.Shards); i++ {
		s := Score(t.Shards[i].Name, graph)
		if s > bestScore || (s == bestScore && t.Shards[i].Name < t.Shards[best].Name) {
			best, bestScore = i, s
		}
	}
	return t.Shards[best], true
}

// Shard returns the member with the given name.
func (t *Topology) Shard(name string) (Shard, bool) {
	for _, s := range t.Shards {
		if s.Name == name {
			return s, true
		}
	}
	return Shard{}, false
}

// ETag returns a strong entity tag over the canonical topology encoding.
// Clients cache the topology against it (If-None-Match → 304), so a
// static membership costs one fetch per client process.
func (t *Topology) ETag() string {
	blob, _ := json.Marshal(t)
	sum := sha256.Sum256(blob)
	return `"` + hex.EncodeToString(sum[:8]) + `"`
}

// Validate checks the topology is servable: at least one shard, no
// duplicate names, and every URL well-formed http(s).
func (t *Topology) Validate() error {
	if len(t.Shards) == 0 {
		return fmt.Errorf("cluster: topology has no shards")
	}
	seen := map[string]bool{}
	for _, s := range t.Shards {
		if s.Name == "" {
			return fmt.Errorf("cluster: shard with empty name")
		}
		if seen[s.Name] {
			return fmt.Errorf("cluster: duplicate shard name %q", s.Name)
		}
		seen[s.Name] = true
		for _, u := range append([]string{s.Primary}, s.Replicas...) {
			p, err := url.Parse(u)
			if err != nil || (p.Scheme != "http" && p.Scheme != "https") || p.Host == "" {
				return fmt.Errorf("cluster: shard %q: bad base URL %q", s.Name, u)
			}
		}
	}
	return nil
}

// ParseShards parses the -shards flag syntax: a comma-separated list of
// name=primary[;replica;...] members,
//
//	a=http://10.0.0.1:8080;http://10.0.0.2:8080,b=http://10.0.1.1:8080
//
// Shard order is normalized by name so the served topology (and its
// ETag) is independent of flag order.
func ParseShards(spec string) (*Topology, error) {
	t := &Topology{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, urls, ok := strings.Cut(part, "=")
		if !ok || name == "" || urls == "" {
			return nil, fmt.Errorf("cluster: bad shard %q: want name=primary[;replica...]", part)
		}
		endpoints := strings.Split(urls, ";")
		s := Shard{Name: name, Primary: strings.TrimSuffix(endpoints[0], "/")}
		for _, r := range endpoints[1:] {
			if r = strings.TrimSpace(r); r != "" {
				s.Replicas = append(s.Replicas, strings.TrimSuffix(r, "/"))
			}
		}
		t.Shards = append(t.Shards, s)
	}
	sort.Slice(t.Shards, func(i, j int) bool { return t.Shards[i].Name < t.Shards[j].Name })
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
