package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// newCoordinator builds a Coordinator over the given shards on a fresh
// metrics registry, served from an httptest.Server.
func newCoordinator(t *testing.T, topo *Topology) (*Coordinator, *httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	coord, err := NewCoordinator(topo, CoordinatorOptions{Metrics: reg, ProbeTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(coord.Handler())
	t.Cleanup(ts.Close)
	return coord, ts, reg
}

// TestProxyStreamingPassthrough is the no-buffering proof: an upstream
// shard writes one NDJSON line, flushes, and then blocks; the client
// must observe that first line through the coordinator while the
// upstream response is still open. A proxy that buffers the body (any
// non-negative FlushInterval without flush-on-write) fails this by
// timeout.
func TestProxyStreamingPassthrough(t *testing.T) {
	release := make(chan struct{})
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/graphs/g/edges" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"u":1,"v":2,"truss":3}`)
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		<-release // hold the stream open: the proxy must not wait for EOF
		fmt.Fprintln(w, `{"u":2,"v":3,"truss":3}`)
	}))
	defer upstream.Close()
	defer close(release)

	_, ts, _ := newCoordinator(t, &Topology{Shards: []Shard{{Name: "a", Primary: upstream.URL}}})
	resp, err := http.Get(ts.URL + "/v1/graphs/g/edges?k=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Truss-Shard"); got != "a" {
		t.Fatalf("X-Truss-Shard = %q, want %q", got, "a")
	}

	type line struct {
		s   string
		err error
	}
	first := make(chan line, 1)
	go func() {
		s, err := bufio.NewReader(resp.Body).ReadString('\n')
		first <- line{s, err}
	}()
	select {
	case l := <-first:
		if l.err != nil {
			t.Fatalf("reading first streamed line: %v", l.err)
		}
		if !strings.Contains(l.s, `"u":1`) {
			t.Fatalf("first line = %q", l.s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("first NDJSON line did not pass through the proxy while the upstream stream was still open: the coordinator is buffering")
	}
}

// TestProxyRoutesToOwner boots two recording upstreams and checks every
// graph-scoped request lands on its HRW owner — and nowhere else.
func TestProxyRoutesToOwner(t *testing.T) {
	hits := make(map[string]chan string)
	mk := func(name string) *httptest.Server {
		ch := make(chan string, 64)
		hits[name] = ch
		s := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ch <- r.URL.Path
			server.WriteJSON(w, http.StatusOK, map[string]any{"name": "x"})
		}))
		t.Cleanup(s.Close)
		return s
	}
	ua, ub := mk("a"), mk("b")
	topo := &Topology{Shards: []Shard{{Name: "a", Primary: ua.URL}, {Name: "b", Primary: ub.URL}}}
	_, ts, _ := newCoordinator(t, topo)

	for i := 0; i < 20; i++ {
		g := fmt.Sprintf("graph-%d", i)
		owner, _ := topo.Owner(g)
		resp, err := http.Get(ts.URL + "/v1/graphs/" + g + "/histogram")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if got := resp.Header.Get("X-Truss-Shard"); got != owner.Name {
			t.Fatalf("graph %s: X-Truss-Shard = %q, owner = %q", g, got, owner.Name)
		}
		select {
		case p := <-hits[owner.Name]:
			if want := "/v1/graphs/" + g + "/histogram"; p != want {
				t.Fatalf("owner %s saw path %q, want %q", owner.Name, p, want)
			}
		default:
			t.Fatalf("graph %s: owner %s saw no request", g, owner.Name)
		}
		for name, ch := range hits {
			select {
			case p := <-ch:
				t.Fatalf("graph %s: non-owner %s saw %q", g, name, p)
			default:
			}
		}
	}
}

// TestReadyAggregation covers the degraded-not-down readiness ladder:
// all shards ready → 200 ready; one of two down → 200 degraded (the
// cluster still serves the live shard's graphs); all down → 503.
func TestReadyAggregation(t *testing.T) {
	up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		server.WriteJSON(w, http.StatusOK, map[string]any{"ready": true})
	}))
	defer up.Close()
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		server.WriteError(w, http.StatusServiceUnavailable, "not ready")
	}))
	defer down.Close()

	check := func(t *testing.T, topo *Topology, wantCode int, wantReady, wantDegraded bool) {
		t.Helper()
		_, ts, reg := newCoordinator(t, topo)
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("readyz status = %d, want %d", resp.StatusCode, wantCode)
		}
		var body struct {
			Ready    bool          `json:"ready"`
			Degraded bool          `json:"degraded"`
			Shards   []shardStatus `json:"shards"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		if body.Ready != wantReady || body.Degraded != wantDegraded {
			t.Fatalf("readyz = ready:%v degraded:%v, want ready:%v degraded:%v (%+v)",
				body.Ready, body.Degraded, wantReady, wantDegraded, body.Shards)
		}
		// The probe also feeds truss_cluster_shard_up.
		var buf strings.Builder
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), "truss_cluster_shard_up") {
			t.Fatal("metrics missing truss_cluster_shard_up after a readiness probe")
		}
	}

	t.Run("all-ready", func(t *testing.T) {
		check(t, &Topology{Shards: []Shard{{Name: "a", Primary: up.URL}, {Name: "b", Primary: up.URL}}},
			http.StatusOK, true, false)
	})
	t.Run("degraded", func(t *testing.T) {
		check(t, &Topology{Shards: []Shard{{Name: "a", Primary: up.URL}, {Name: "b", Primary: down.URL}}},
			http.StatusOK, false, true)
	})
	t.Run("all-down", func(t *testing.T) {
		check(t, &Topology{Shards: []Shard{{Name: "a", Primary: down.URL}, {Name: "b", Primary: down.URL}}},
			http.StatusServiceUnavailable, false, false)
	})
}

// TestTopologyEndpoint pins the ETag contract: a fresh GET carries the
// document and tag; a conditional GET with the same tag is a 304.
func TestTopologyEndpoint(t *testing.T) {
	up := httptest.NewServer(http.NotFoundHandler())
	defer up.Close()
	topo := &Topology{Shards: []Shard{{Name: "a", Primary: up.URL, Replicas: []string{up.URL}}}}
	_, ts, _ := newCoordinator(t, topo)

	resp, err := http.Get(ts.URL + "/v1/cluster/topology")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if etag != topo.ETag() {
		t.Fatalf("ETag = %q, want %q", etag, topo.ETag())
	}
	var got Topology
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Shards) != 1 || got.Shards[0].Name != "a" || len(got.Shards[0].Replicas) != 1 {
		t.Fatalf("topology on the wire = %+v", got)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/cluster/topology", nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET = %d, want 304", resp2.StatusCode)
	}
}

// TestListMerge checks GET /v1/graphs merges shard listings sorted by
// name, and that a down shard degrades the listing (reported in
// unavailable_shards) instead of failing it.
func TestListMerge(t *testing.T) {
	mk := func(names ...string) *httptest.Server {
		s := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			var infos []server.GraphInfo
			for _, n := range names {
				infos = append(infos, server.GraphInfo{Name: n, State: "ready"})
			}
			server.WriteJSON(w, http.StatusOK, map[string]any{"graphs": infos})
		}))
		t.Cleanup(s.Close)
		return s
	}
	ua, ub := mk("zeta", "alpha"), mk("mid")
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from here on

	_, ts, _ := newCoordinator(t, &Topology{Shards: []Shard{
		{Name: "a", Primary: ua.URL}, {Name: "b", Primary: ub.URL}, {Name: "c", Primary: dead.URL},
	}})
	resp, err := http.Get(ts.URL + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Graphs      []server.GraphInfo `json:"graphs"`
		Unavailable []string           `json:"unavailable_shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, g := range body.Graphs {
		names = append(names, g.Name)
	}
	if want := []string{"alpha", "mid", "zeta"}; fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("merged listing = %v, want %v", names, want)
	}
	if len(body.Unavailable) != 1 || body.Unavailable[0] != "c" {
		t.Fatalf("unavailable_shards = %v, want [c]", body.Unavailable)
	}
}

// TestProxyMetrics checks the proxied-request counters land in the
// coordinator's /metrics exposition with shard and code labels, and
// that an unreachable shard increments the error counter and drops its
// up-gauge.
func TestProxyMetrics(t *testing.T) {
	up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		server.WriteJSON(w, http.StatusOK, map[string]any{"name": "g"})
	}))
	defer up.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()

	topo := &Topology{Shards: []Shard{{Name: "a", Primary: up.URL}, {Name: "b", Primary: dead.URL}}}
	_, ts, _ := newCoordinator(t, topo)

	// One graph per shard: find a name owned by each.
	byShard := map[string]string{}
	for i := 0; len(byShard) < 2; i++ {
		g := fmt.Sprintf("m-%d", i)
		o, _ := topo.Owner(g)
		if _, ok := byShard[o.Name]; !ok {
			byShard[o.Name] = g
		}
	}
	for _, g := range byShard {
		resp, err := http.Get(ts.URL + "/v1/graphs/" + g)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	samples, err := obs.ParseExposition(strings.NewReader(string(raw)))
	if err != nil {
		t.Fatalf("coordinator /metrics does not parse: %v", err)
	}
	if v := samples.Value("truss_cluster_proxy_requests_total", "shard", "a", "code", "200"); v != 1 {
		t.Fatalf("proxy_requests_total{shard=a,code=200} = %v, want 1", v)
	}
	if v := samples.Value("truss_cluster_proxy_errors_total", "shard", "b"); v != 1 {
		t.Fatalf("proxy_errors_total{shard=b} = %v, want 1", v)
	}
	if v := samples.Value("truss_cluster_shard_up", "shard", "b"); v != 0 {
		t.Fatalf("shard_up{shard=b} = %v, want 0", v)
	}
}

// TestProxyFirehoseDuplex proves the proxy is bidirectionally
// unbuffered: a firehose-shaped upstream acknowledges each NDJSON
// record as it arrives, and the client must observe the first ack
// while its request body is still open. This is the session shape of
// POST /v1/graphs/{name}/edges:stream, where the server streams
// per-chunk acks against a still-uploading body.
func TestProxyFirehoseDuplex(t *testing.T) {
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_ = http.NewResponseController(w).EnableFullDuplex()
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		sc := bufio.NewScanner(r.Body)
		for sc.Scan() {
			fmt.Fprintf(w, `{"ok":true,"echo":%q}`+"\n", sc.Text())
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
		}
	}))
	defer upstream.Close()

	_, ts, _ := newCoordinator(t, &Topology{Shards: []Shard{{Name: "a", Primary: upstream.URL}}})
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/graphs/g/edges:stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	respc := make(chan *http.Response, 1)
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			errc <- err
			return
		}
		respc <- resp
	}()
	if _, err := io.WriteString(pw, `{"op":"add","u":1,"v":2}`+"\n"); err != nil {
		t.Fatal(err)
	}
	var resp *http.Response
	select {
	case resp = <-respc:
	case err := <-errc:
		t.Fatalf("duplex request through proxy: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("no response headers while the request body is open: the proxy (or server) is not duplex")
	}
	defer resp.Body.Close()
	lines := make(chan string, 1)
	go func() {
		s, _ := bufio.NewReader(resp.Body).ReadString('\n')
		lines <- s
	}()
	select {
	case l := <-lines:
		if !strings.Contains(l, `"ok":true`) {
			t.Fatalf("first ack = %q", l)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no ack passed through while the request body was still open: the proxy is buffering the duplex stream")
	}
	pw.Close()
}
