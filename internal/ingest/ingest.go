// Package ingest converts the serving stack's write path from
// per-request to per-flush economics. A Pipeline accepts mutations from
// any number of producers through a bounded queue, coalesces everything
// that arrives inside one flush window (duplicates dedup, add+delete of
// the same edge cancels, the last operation per edge wins), and hands
// the surviving batch to a single Apply call — which group-commits it as
// one WAL append + fsync and one incremental maintenance pass. Every
// producer that contributed to the flush is then woken with the version
// its mutations became visible at, so the durability-before-visibility
// and monotonic-version contracts of the per-request path carry over
// unchanged: an acked version is on disk, and reading at it sees the
// acked mutations.
//
// Flush triggers, in the order they are checked:
//
//   - size: the collected batch reached MaxBatch mutations;
//   - sync: a producer demanded a barrier (Flush);
//   - window: FlushInterval elapsed since the first collected mutation;
//   - drain: with FlushInterval == 0 (adaptive group commit) the queue
//     stayed empty — a lone producer flushes immediately and pays no
//     added latency, while under concurrency the flusher holds a short
//     gather window (drainGather) whenever the queue dips empty, so the
//     producers the previous flush woke rejoin the batch instead of
//     fragmenting into tiny flushes;
//   - shutdown: Close drained the final batch.
//
// The pipeline is deliberately ignorant of graphs, WALs, and HTTP: Apply
// is a closure, so the package is testable with a counter and reusable
// by anything that wants group commit over a mutation stream.
package ingest

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
)

// Op is one mutation's direction.
type Op uint8

// Mutation operations.
const (
	// OpAdd inserts the edge (a no-op if it is already present).
	OpAdd Op = iota
	// OpDel deletes the edge (a no-op if it is absent).
	OpDel
)

// Mutation is one edge operation in arrival order.
type Mutation struct {
	Op   Op
	Edge graph.Edge
}

// Applied describes one group-committed flush from the perspective of
// the producers it woke.
type Applied struct {
	// Version is the graph version at which the flush's mutations are
	// visible (unchanged when the whole batch coalesced away).
	Version uint64
	// Submitted is the number of raw mutations collected into the flush.
	Submitted int
	// Adds and Dels count the coalesced mutations actually applied.
	Adds, Dels int
	// Payload carries the Apply implementation's own result through to
	// the producers (the server threads its registry entry and
	// maintenance stats here).
	Payload any
}

// Outcome is what each waiting producer receives when its flush lands.
type Outcome struct {
	Applied Applied
	Err     error
}

// ApplyFunc applies one coalesced batch atomically and returns the
// version it became visible at. It runs on the pipeline's flusher
// goroutine, one call at a time.
type ApplyFunc func(ctx context.Context, muts []Mutation) (Applied, error)

// Config configures a Pipeline. Apply is required; zero values elsewhere
// pick the defaults below.
type Config struct {
	// Name labels the pipeline's queue-depth gauge (the graph name).
	Name string
	// Apply group-commits one coalesced batch.
	Apply ApplyFunc
	// MaxBatch caps the mutations collected into one flush
	// (0 selects DefaultMaxBatch).
	MaxBatch int
	// MaxQueue bounds the submission queue; producers block (with
	// context) once it fills — backpressure instead of unbounded memory
	// (0 selects DefaultMaxQueue).
	MaxQueue int
	// FlushInterval is the group-commit window: how long the flusher
	// keeps collecting after the first mutation before applying. 0 is
	// adaptive group commit — flush once the queue stays empty across a
	// short gather window — which adds no latency for a lone producer
	// and batches at the full producer count under concurrency.
	FlushInterval time.Duration
	// Metrics, when non-nil, receives the truss_ingest_* instrumentation.
	Metrics *Metrics
}

// Pipeline defaults.
const (
	// DefaultMaxBatch bounds one flush to a region the incremental
	// maintainer handles well before its fallback threshold.
	DefaultMaxBatch = 8192
	// DefaultMaxQueue bounds queued submissions (not mutations).
	DefaultMaxQueue = 1024
	// drainGather is adaptive mode's group-commit gather window. When the
	// queue empties mid-collection but the pipeline is under concurrency
	// (this or the previous batch had more than one producer), the
	// producers the last flush woke are usually mid-resubmit, a few
	// scheduler quanta away — so the flusher waits this long for them
	// before committing, letting batches form at the full producer count
	// instead of whatever happened to race in. A lone producer never pays
	// it: with no concurrency signal the drain flush stays immediate.
	drainGather = 200 * time.Microsecond
)

func (c Config) maxBatch() int {
	if c.MaxBatch <= 0 {
		return DefaultMaxBatch
	}
	return c.MaxBatch
}

func (c Config) maxQueue() int {
	if c.MaxQueue <= 0 {
		return DefaultMaxQueue
	}
	return c.MaxQueue
}

// Flush reasons, as counted by truss_ingest_flushes_total.
const (
	FlushSize     = "size"
	FlushWindow   = "window"
	FlushDrain    = "drain"
	FlushSync     = "sync"
	FlushShutdown = "shutdown"
)

// FlushReasons lists every reason label, for metric pre-registration.
var FlushReasons = []string{FlushSize, FlushWindow, FlushDrain, FlushSync, FlushShutdown}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("ingest: pipeline closed")

// submission is one producer's contribution plus its wake-up channel.
type submission struct {
	muts []Mutation
	sync bool
	resp chan Outcome // buffered (cap 1): the flusher never blocks on a producer
}

// Pipeline is one graph's ingestion queue and flusher goroutine.
// Create with New; it runs until Close.
type Pipeline struct {
	cfg   Config
	subs  chan submission
	done  chan struct{}
	depth *obs.Gauge

	// lastBatch is the submission count of the previous flush — the
	// concurrency signal for adaptive drain gathering. Flusher-only.
	lastBatch int

	// mu guards closed and orders Submit's channel send against Close's
	// channel close: senders hold it shared, Close exclusively, so a send
	// can never race the close.
	mu     sync.RWMutex
	closed bool
}

// New starts a pipeline. Config.Apply must be non-nil.
func New(cfg Config) *Pipeline {
	if cfg.Apply == nil {
		panic("ingest: Config.Apply is required")
	}
	p := &Pipeline{
		cfg:  cfg,
		subs: make(chan submission, cfg.maxQueue()),
		done: make(chan struct{}),
	}
	if cfg.Metrics != nil {
		p.depth = cfg.Metrics.queueDepth(cfg.Name)
	}
	go p.run()
	return p
}

// Submit enqueues muts and blocks until the flush containing them lands,
// returning the version they became visible at. Mutations from
// concurrent Submit calls group-commit into one flush. If ctx expires
// while waiting, the mutations may still be applied by the in-flight
// flush — the caller merely stops waiting for the ack.
func (p *Pipeline) Submit(ctx context.Context, muts []Mutation) (Applied, error) {
	resp, err := p.submit(ctx, muts, false)
	if err != nil {
		return Applied{}, err
	}
	return p.wait(ctx, resp)
}

// SubmitAsync enqueues muts and returns the channel the flush outcome
// will be delivered on (exactly one Outcome, channel buffered). The
// firehose handler uses this to keep many batches in flight while
// acking them in order.
func (p *Pipeline) SubmitAsync(ctx context.Context, muts []Mutation) (<-chan Outcome, error) {
	return p.submit(ctx, muts, false)
}

// Flush submits a barrier: it forces everything queued before it (and
// the barrier itself) to flush immediately and waits for the result.
// With no pending mutations it still reports the current version.
func (p *Pipeline) Flush(ctx context.Context) (Applied, error) {
	resp, err := p.submit(ctx, nil, true)
	if err != nil {
		return Applied{}, err
	}
	return p.wait(ctx, resp)
}

func (p *Pipeline) wait(ctx context.Context, resp <-chan Outcome) (Applied, error) {
	select {
	case out := <-resp:
		return out.Applied, out.Err
	case <-ctx.Done():
		return Applied{}, ctx.Err()
	}
}

func (p *Pipeline) submit(ctx context.Context, muts []Mutation, sync bool) (chan Outcome, error) {
	sub := submission{muts: muts, sync: sync, resp: make(chan Outcome, 1)}
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return nil, ErrClosed
	}
	// A blocking send under the shared lock is safe: the flusher drains
	// the channel without ever taking p.mu, and Close (which wants the
	// exclusive lock) simply waits until in-flight sends land.
	select {
	case p.subs <- sub:
		if p.depth != nil {
			p.depth.Inc()
		}
		return sub.resp, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close stops accepting submissions, flushes everything already queued
// (reason "shutdown"), and waits for the flusher to exit, bounded by
// ctx. Safe to call more than once.
func (p *Pipeline) Close(ctx context.Context) error {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.subs)
	}
	p.mu.Unlock()
	select {
	case <-p.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// run is the flusher: collect a batch, apply it, wake the producers,
// repeat until the queue closes.
func (p *Pipeline) run() {
	defer close(p.done)
	var batch []submission
	var muts []Mutation
	for {
		first, ok := <-p.subs
		if !ok {
			return
		}
		batch, muts = batch[:0], muts[:0]
		var reason string
		batch, muts, reason = p.collect(first, batch, muts)
		p.flush(batch, muts, reason)
	}
}

// collect accumulates submissions after first until a flush trigger
// fires, returning the grown buffers and the trigger's reason.
func (p *Pipeline) collect(first submission, batch []submission, muts []Mutation) ([]submission, []Mutation, string) {
	add := func(s submission) bool {
		batch = append(batch, s)
		muts = append(muts, s.muts...)
		if p.depth != nil {
			p.depth.Dec()
		}
		return s.sync
	}
	if add(first) {
		return batch, muts, FlushSync
	}
	var window <-chan time.Time
	if p.cfg.FlushInterval > 0 {
		t := time.NewTimer(p.cfg.FlushInterval)
		defer t.Stop()
		window = t.C
	}
	maxBatch := p.cfg.maxBatch()
	for {
		if len(muts) >= maxBatch {
			return batch, muts, FlushSize
		}
		if window != nil {
			select {
			case s, ok := <-p.subs:
				if !ok {
					return batch, muts, FlushShutdown
				}
				if add(s) {
					return batch, muts, FlushSync
				}
			case <-window:
				return batch, muts, FlushWindow
			}
		} else {
			select {
			case s, ok := <-p.subs:
				if !ok {
					return batch, muts, FlushShutdown
				}
				if add(s) {
					return batch, muts, FlushSync
				}
				continue
			default:
			}
			// The queue went momentarily empty. Yield before believing it:
			// a producer's channel send schedules the blocked flusher with
			// handoff priority, so the flusher can wake, drain one
			// submission, and land here before the other producers the
			// previous flush woke have had any CPU to resubmit —
			// fragmenting group commits into singletons. Gosched hands the
			// processor to exactly those runnable producers, and costs a
			// few nanoseconds when there are none.
			runtime.Gosched()
			select {
			case s, ok := <-p.subs:
				if !ok {
					return batch, muts, FlushShutdown
				}
				if add(s) {
					return batch, muts, FlushSync
				}
				continue
			default:
			}
			// Still empty after the yield. Without a concurrency signal
			// this really is a lone producer: commit now, no added latency.
			if len(batch) <= 1 && p.lastBatch <= 1 {
				return batch, muts, FlushDrain
			}
			// Under concurrency a woken producer may be mid-Submit on
			// another processor; give stragglers one gather window before
			// concluding the queue is dry.
			t := time.NewTimer(drainGather)
			select {
			case s, ok := <-p.subs:
				t.Stop()
				if !ok {
					return batch, muts, FlushShutdown
				}
				if add(s) {
					return batch, muts, FlushSync
				}
			case <-t.C:
				return batch, muts, FlushDrain
			}
		}
	}
}

// flush applies one collected batch and fans the outcome to every
// producer that contributed to it.
func (p *Pipeline) flush(batch []submission, muts []Mutation, reason string) {
	start := time.Now()
	applied, err := p.cfg.Apply(context.Background(), muts)
	applied.Submitted = len(muts)
	if m := p.cfg.Metrics; m != nil {
		m.submitted.Add(int64(len(muts)))
		m.flushSize.Observe(float64(len(muts)))
		m.flushDur.ObserveSince(start)
		m.flushes(reason).Inc()
		if err != nil {
			m.failures.Inc()
		} else {
			m.applied.Add(int64(applied.Adds + applied.Dels))
		}
	}
	out := Outcome{Applied: applied, Err: err}
	for _, s := range batch {
		s.resp <- out
	}
	p.lastBatch = len(batch)
}
